#!/bin/sh
# Boots a sharpied daemon on a unix socket, runs the same protocol twice
# through the thin client (cold then warm), and asserts that:
#   * both runs exit 0 and print identical output modulo the --json
#     timing line (the warm verdict block is the stored cold one,
#     byte-exact -- the "identical invariant" acceptance gate);
#   * the daemon's cache_stats reports exactly one tier-1 hit;
#   * shutdown via --ctl drains the daemon cleanly (exit 0).
#
# usage: serve_smoke.sh <sharpied> <sharpie> <protocol.sharpie>
set -e

SHARPIED=$1
SHARPIE=$2
PROTO=$3

DIR=$(mktemp -d)
PID=
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

SOCK="$DIR/d.sock"
"$SHARPIED" --listen "unix:$SOCK" --store "$DIR/store" \
  > "$DIR/banner.txt" &
PID=$!

ok=
for _ in $(seq 1 100); do
  if grep -q "listening on" "$DIR/banner.txt" 2>/dev/null; then
    ok=1
    break
  fi
  sleep 0.1
done
[ -n "$ok" ] || { echo "daemon never came up"; exit 1; }

"$SHARPIE" "$PROTO" --server "unix:$SOCK" --json > "$DIR/cold.out"
"$SHARPIE" "$PROTO" --server "unix:$SOCK" --json > "$DIR/warm.out"

# The JSON line carries run-specific timings; everything else must match
# byte for byte (header + stored verdict block).
grep -v '^{' "$DIR/cold.out" > "$DIR/cold.v"
grep -v '^{' "$DIR/warm.out" > "$DIR/warm.v"
cmp "$DIR/cold.v" "$DIR/warm.v"

# The warm run must have been served from tier 1.
grep -q '"cache_lookup_seconds"' "$DIR/warm.out"
"$SHARPIED" --ctl "unix:$SOCK" --op cache_stats > "$DIR/stats.json"
grep -q '"t1_hits":1' "$DIR/stats.json"
grep -q '"t1_writes":1' "$DIR/stats.json"

"$SHARPIED" --ctl "unix:$SOCK" --op shutdown > /dev/null
wait "$PID"
PID=
echo "serve smoke: OK"
