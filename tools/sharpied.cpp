//===- tools/sharpied.cpp - The sharpie verification daemon ---------------===//
//
// Part of sharpie. Verification-as-a-service: a long-running daemon that
// accepts line-delimited JSON requests (see serve/Proto.h) over a Unix
// or TCP socket, shards verify work across a warm thread pool, and
// answers warm requests from the persistent two-tier result store
// (serve/Store.h).
//
//   sharpied --listen ADDR [--store DIR] [--request-workers N]
//            [--synth-workers N] [--max-request-seconds S]
//            [--queue-depth N] [--drain-timeout S] [--faults PLAN]
//            [--log-level quiet|info|debug|trace]
//            [--access-log FILE] [--slow-request-seconds S]
//            [--flight-recorder N] [--no-telemetry]
//
//   sharpied --ctl ADDR --op status|health|cache_stats|metrics|dump_trace|
//            shutdown [--format FMT] [--request ID]
//
// ADDR is "unix:/path/to.sock" or "HOST:PORT" (numeric IPv4; port 0 asks
// the kernel for a free port, printed in the banner). On startup the
// daemon prints exactly one line, "sharpied listening on <addr>", so
// scripts can wait for readiness. SIGINT/SIGTERM drain and exit 0.
//
// Overload policy (see serve/Server.h and DESIGN.md section 13): at most
// request-workers + queue-depth verifies are admitted; excess is shed
// with a retry_after_ms hint. --max-request-seconds is a *deadline from
// admission* -- queue wait counts. On SIGTERM the daemon stops
// admitting, gives in-flight work --drain-timeout seconds, cancels the
// rest, flushes the store, and exits 0. --faults scripts the serve-layer
// chaos sites (accept/wire_read/wire_write/store_read/store_write).
//
// Telemetry (see serve/Server.h): --access-log FILE appends one JSON
// line per finished request ("-" = stderr); --slow-request-seconds S
// arms a watchdog that flags still-running requests past S seconds;
// --flight-recorder N sets how many requests the bounded trace ring
// retains (default 32, 0 disables event capture); --no-telemetry turns
// the metrics registry and flight recorder off entirely (the
// overhead-bench baseline). The `metrics` ctl op takes --format
// json|prom (prom prints the raw Prometheus exposition); `dump_trace`
// takes --format perfetto|jsonl and --request ID (0 = all) and prints
// the trace document itself.
//
// The verify client side lives in the main CLI: `sharpie FILE --server
// ADDR` ships the protocol text to a daemon and replays its byte-exact
// output and exit code.
//
//===----------------------------------------------------------------------===//

#include "front/ExitCodes.h"
#include "obs/Obs.h"
#include "serve/Client.h"
#include "serve/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sharpie;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --listen ADDR [--store DIR] [--request-workers N]\n"
      "       [--synth-workers N] [--max-request-seconds S]\n"
      "       [--queue-depth N] [--drain-timeout S] [--faults PLAN]\n"
      "       [--log-level quiet|info|debug|trace]\n"
      "       [--access-log FILE] [--slow-request-seconds S]\n"
      "       [--flight-recorder N] [--no-telemetry]\n"
      "   or: %s --ctl ADDR --op status|health|cache_stats|metrics|"
      "dump_trace|shutdown\n"
      "       [--format json|prom|perfetto|jsonl] [--request ID]\n"
      "ADDR: unix:/path/to.sock or HOST:PORT\n",
      Argv0, Argv0);
}

serve::Server *ActiveServer = nullptr;

void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestShutdown();
}

int runCtl(const std::string &AddrSpec, const std::string &Op,
           const std::string &Format, uint64_t RequestId) {
  std::string Err;
  auto A = serve::parseAddr(AddrSpec, &Err);
  if (!A) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return front::ExitError;
  }
  serve::Client C;
  if (!C.connect(*A, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return front::ExitError;
  }
  serve::Json Req;
  Req["op"] = serve::Json(Op);
  if (!Format.empty())
    Req["format"] = serve::Json(Format);
  if (RequestId)
    Req["request"] = serve::Json(RequestId);
  serve::Json Resp;
  if (!C.roundTrip(Req, Resp, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return front::ExitError;
  }
  bool Ok = Resp.get("ok").asBool(false);
  // Text payloads print raw so the output pipes straight into a scraper
  // or Perfetto; everything else prints the JSON response.
  if (Ok && Op == "metrics" && Resp.get("format").asString() == "prom")
    std::printf("%s", Resp.get("text").asString().c_str());
  else if (Ok && Op == "dump_trace")
    std::printf("%s", Resp.get("trace").asString().c_str());
  else
    std::printf("%s\n", Resp.dump().c_str());
  return Ok ? 0 : front::ExitError;
}

int run(int argc, char **argv) {
  std::string Listen, Ctl, Op, Format;
  uint64_t RequestId = 0;
  serve::ServerOptions SO;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--listen") && I + 1 < argc)
      Listen = argv[++I];
    else if (!std::strcmp(argv[I], "--ctl") && I + 1 < argc)
      Ctl = argv[++I];
    else if (!std::strcmp(argv[I], "--op") && I + 1 < argc)
      Op = argv[++I];
    else if (!std::strcmp(argv[I], "--format") && I + 1 < argc)
      Format = argv[++I];
    else if (!std::strcmp(argv[I], "--request") && I + 1 < argc)
      RequestId =
          static_cast<uint64_t>(std::strtoull(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--store") && I + 1 < argc)
      SO.StoreDir = argv[++I];
    else if (!std::strcmp(argv[I], "--request-workers") && I + 1 < argc)
      SO.RequestWorkers =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--synth-workers") && I + 1 < argc)
      SO.SynthWorkers =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--max-request-seconds") && I + 1 < argc)
      SO.MaxRequestSeconds = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--queue-depth") && I + 1 < argc)
      SO.QueueDepth =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--drain-timeout") && I + 1 < argc)
      SO.DrainTimeoutSeconds = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--faults") && I + 1 < argc)
      SO.Faults = argv[++I];
    else if (!std::strcmp(argv[I], "--access-log") && I + 1 < argc)
      SO.AccessLogPath = argv[++I];
    else if (!std::strcmp(argv[I], "--slow-request-seconds") && I + 1 < argc)
      SO.SlowRequestSeconds = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--flight-recorder") && I + 1 < argc)
      SO.FlightCapacity =
          static_cast<size_t>(std::strtoull(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--no-telemetry"))
      SO.Telemetry = false;
    else if (!std::strcmp(argv[I], "--log-level") && I + 1 < argc) {
      std::string L = argv[++I];
      if (auto P = obs::parseLogLevel(L)) {
        SO.Level = *P;
      } else {
        std::fprintf(stderr, "error: bad log level '%s'\n", L.c_str());
        return front::ExitError;
      }
    } else if (!std::strcmp(argv[I], "--help") || !std::strcmp(argv[I], "-h")) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      usage(argv[0]);
      return front::ExitError;
    }
  }

  if (!Ctl.empty()) {
    if (Op != "status" && Op != "health" && Op != "cache_stats" &&
        Op != "metrics" && Op != "dump_trace" && Op != "shutdown") {
      std::fprintf(stderr, "error: --ctl needs --op status|health|"
                           "cache_stats|metrics|dump_trace|shutdown\n");
      return front::ExitError;
    }
    return runCtl(Ctl, Op, Format, RequestId);
  }
  if (Listen.empty()) {
    usage(argv[0]);
    return front::ExitError;
  }

  std::string Err;
  auto A = serve::parseAddr(Listen, &Err);
  if (!A) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return front::ExitError;
  }
  serve::Server S(SO);
  if (!S.listen(*A, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return front::ExitError;
  }
  ActiveServer = &S;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);
  std::printf("sharpied listening on %s\n", S.boundAddress().c_str());
  std::fflush(stdout);
  S.serve();
  ActiveServer = nullptr;
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return front::ExitError;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return front::ExitError;
  }
}
