//===- tools/sharpie.cpp - The sharpie CLI --------------------------------===//
//
// Part of sharpie. Loads a `.sharpie` protocol file, runs the full #Pi
// pipeline on it, and prints the synthesized invariant or the
// explicit-state counterexample trace.
//
//   sharpie <file.sharpie> [--workers N] [--json] [--verbose]
//           [--time-budget SECONDS] [--max-tuples N]
//           [--faults PLAN] [--no-supervise] [--no-incremental]
//           [--smt-timeout MS] [--trace-out FILE] [--events-out FILE]
//           [--log-level quiet|info|debug|trace] [--stats]
//
// Observability (see src/obs/): --trace-out writes a Chrome trace-event /
// Perfetto JSON with one track per search worker; --events-out a JSONL
// event stream; --log-level replaces --verbose (which maps to debug);
// --stats prints a per-phase stats table to stderr after the run. The
// SHARPIE_TRACE, SHARPIE_EVENTS and SHARPIE_LOG_LEVEL environment
// variables are flag equivalents for scripted sweeps.
//
// Resilience (see src/resil/): solver checks run supervised by default
// (per-check deadlines, retry with backoff, Z3<->MiniSolver fallback);
// --no-supervise restores the bare back end. --faults (or SHARPIE_FAULTS)
// takes a deterministic fault plan, e.g.
// "seed=7;smt_check:timeout@p=0.4;reduce:unknown@every=3", and is how the
// chaos tests drive the pipeline (see resil/Fault.h for the grammar).
// --smt-timeout overrides the per-check deadline in milliseconds (the
// base slice before backoff; default 30000).
//
// Performance: Houdini runs incrementally by default (assumption-based
// checks over per-atom indicators, unsat-core clause skipping, lazy
// relevancy-filtered axiom instantiation; SynthOptions::Incremental).
// --no-incremental restores the monolithic per-check rebuild -- the A/B
// baseline of BENCH_PR5.json. Both modes produce identical verdicts and
// invariants.
//
// Exit codes (deterministic, scriptable):
//   0  verified safe (invariant printed)
//   1  unsafe (explicit counterexample printed)
//   2  unknown: the search space was exhausted without a verdict
//   3  frontend error (parse/elaboration/I-O), message on stderr
//   4  inconclusive: no verdict AND some failure (timeout, skipped tuple,
//      injected fault, exhausted budget) may have hidden one; the report
//      lists failure classes and the best partial candidate
//
//===----------------------------------------------------------------------===//

#include "front/Front.h"
#include "logic/TermOps.h"
#include "obs/Cli.h"
#include "resil/Fault.h"
#include "synth/Synth.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sharpie;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.sharpie> [--workers N] [--json] [--verbose]"
               " [--time-budget SECONDS] [--max-tuples N]\n"
               "       [--faults PLAN] [--no-supervise] [--no-incremental]\n"
               "       [--smt-timeout MS]\n"
               "       %s\n"
               "exit codes: 0 safe, 1 unsafe, 2 unknown, 3 error,"
               " 4 inconclusive\n",
               Argv0, obs::CliObs::usageFragment());
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

int run(int argc, char **argv) {
  std::string File;
  bool Json = false, Verbose = false, NoSupervise = false;
  bool NoIncremental = false;
  unsigned Workers = 1;
  double TimeBudget = 0;
  unsigned MaxTuples = 0;
  unsigned SmtTimeoutMs = 0; // 0 = keep the SynthOptions default.
  std::string FaultSpec;
  if (const char *Env = std::getenv("SHARPIE_FAULTS"))
    FaultSpec = Env; // --faults below overrides the environment.
  obs::CliObs Obs;
  Obs.readEnv(); // Flags below override the environment.
  for (int I = 1; I < argc; ++I) {
    std::string ObsErr;
    if (Obs.parseArg(argc, argv, I, ObsErr)) {
      if (!ObsErr.empty()) {
        std::fprintf(stderr, "error: %s\n", ObsErr.c_str());
        usage(argv[0]);
        return 3;
      }
    } else if (!std::strcmp(argv[I], "--json"))
      Json = true;
    else if (!std::strcmp(argv[I], "--verbose"))
      Verbose = true;
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      Workers = static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--time-budget") && I + 1 < argc)
      TimeBudget = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--max-tuples") && I + 1 < argc)
      MaxTuples = static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--faults") && I + 1 < argc)
      FaultSpec = argv[++I];
    else if (!std::strcmp(argv[I], "--no-supervise"))
      NoSupervise = true;
    else if (!std::strcmp(argv[I], "--no-incremental"))
      NoIncremental = true;
    else if (!std::strcmp(argv[I], "--smt-timeout") && I + 1 < argc)
      SmtTimeoutMs =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--help") || !std::strcmp(argv[I], "-h")) {
      usage(argv[0]);
      return 0;
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      usage(argv[0]);
      return 3;
    } else if (File.empty())
      File = argv[I];
    else {
      std::fprintf(stderr, "error: more than one input file\n");
      usage(argv[0]);
      return 3;
    }
  }
  if (File.empty()) {
    usage(argv[0]);
    return 3;
  }
  // --verbose is the back-compat spelling of --log-level debug.
  if (Verbose &&
      static_cast<int>(Obs.Level) < static_cast<int>(obs::LogLevel::Debug))
    Obs.Level = obs::LogLevel::Debug;
  resil::FaultPlan Faults;
  if (!FaultSpec.empty()) {
    std::string FErr;
    if (auto P = resil::FaultPlan::parse(FaultSpec, &FErr))
      Faults = std::move(*P);
    else {
      std::fprintf(stderr, "error: bad fault plan: %s\n", FErr.c_str());
      return 3;
    }
  }
  std::unique_ptr<obs::Tracer> Tracer = Obs.makeTracer();

  // One clock for all reported times: total_seconds spans parse through
  // synthesis on this clock, so parse_seconds + synth_seconds <=
  // total_seconds always holds in the JSON.
  auto T0 = std::chrono::steady_clock::now();
  logic::TermManager M;
  front::LoadResult L = front::loadProtocolFile(
      M, File, Tracer ? Tracer->worker(0) : nullptr);
  if (!L.ok()) {
    std::fprintf(stderr, "%s\n", L.Error->render().c_str());
    return 3;
  }
  double ParseSeconds = secondsSince(T0);
  front::FrontBundle &B = *L.Bundle;

  std::printf("== %s ==\n", B.Sys->name().c_str());
  if (!B.Property.empty())
    std::printf("property: %s\n", B.Property.c_str());

  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.Trace = Tracer.get();
  Opts.Verbose = Verbose;
  Opts.NumWorkers = Workers;
  Opts.TimeBudgetSeconds = TimeBudget;
  if (MaxTuples)
    Opts.MaxTuples = MaxTuples;
  Opts.Supervise.Enabled = !NoSupervise;
  Opts.Incremental = !NoIncremental;
  if (SmtTimeoutMs)
    Opts.SmtTimeoutMs = SmtTimeoutMs;
  if (!Faults.empty())
    Opts.Faults = &Faults;

  auto T1 = std::chrono::steady_clock::now();
  synth::SynthResult Res = synth::synthesize(*B.Sys, Opts);
  double SynthSeconds = secondsSince(T1);
  double TotalSeconds = secondsSince(T0);

  if (Tracer) {
    std::string Err;
    if (!Obs.writeOutputs(*Tracer, Err))
      std::fprintf(stderr, "warning: %s\n", Err.c_str());
  }
  if (Obs.Stats)
    std::fprintf(stderr, "%s",
                 synth::renderStatsTable(Res.Stats, SynthSeconds).c_str());

  if (Json) {
    std::printf("{\"protocol\":\"%s\",\"file\":\"%s\",\"verified\":%s,"
                "\"found_cex\":%s,\"inconclusive\":%s,\"parse_seconds\":%.6f,"
                "\"synth_seconds\":%.3f,\"total_seconds\":%.3f,%s}\n",
                B.Sys->name().c_str(), File.c_str(),
                Res.Verified ? "true" : "false", Res.Cex ? "true" : "false",
                Res.Inconclusive ? "true" : "false", ParseSeconds,
                SynthSeconds, TotalSeconds,
                synth::statsJsonFields(Res.Stats).c_str());
  }

  if (Res.Verified) {
    std::printf("VERIFIED in %.2fs (%u tuples, %u SMT checks; parse %.1fms)\n",
                Res.Stats.Seconds, Res.Stats.TuplesTried, Res.Stats.SmtChecks,
                ParseSeconds * 1e3);
    std::printf("inferred cardinalities:\n");
    for (logic::Term S : Res.SetBodies)
      std::printf("  #{t | %s}\n", logic::toString(S).c_str());
    std::printf("invariant atoms (%zu):\n", Res.Atoms.size());
    for (logic::Term A : Res.Atoms)
      std::printf("  %s\n", logic::toString(A).c_str());
    return 0;
  }
  if (Res.Cex) {
    std::printf("UNSAFE: explicit counterexample (%zu steps):\n",
                Res.Cex->TransitionNames.size());
    for (const std::string &S : Res.Cex->TransitionNames)
      std::printf("  %s\n", S.c_str());
    if (B.ExpectSafe)
      std::printf("note: protocol declares 'expect safe'\n");
    return 1;
  }
  if (Res.Inconclusive) {
    std::printf("INCONCLUSIVE after %.2fs: %s\n", Res.Stats.Seconds,
                Res.Note.c_str());
    std::printf("%s", synth::renderInconclusiveReport(Res).c_str());
    return 4;
  }
  std::printf("UNKNOWN after %.2fs: %s\n", Res.Stats.Seconds,
              Res.Note.c_str());
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  // The frontend never lets exceptions escape, but keep the driver
  // airtight: any stray throw still exits with code 3 and a message.
  try {
    return run(argc, argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return 3;
  }
}
