//===- tools/sharpie.cpp - The sharpie CLI --------------------------------===//
//
// Part of sharpie. Loads a `.sharpie` protocol file, runs the full #Pi
// pipeline on it, and prints the synthesized invariant or the
// explicit-state counterexample trace.
//
//   sharpie <file.sharpie> [--workers N] [--json] [--verbose]
//           [--time-budget SECONDS] [--max-tuples N]
//
// Exit codes (deterministic, scriptable):
//   0  verified safe (invariant printed)
//   1  unsafe (explicit counterexample printed)
//   2  unknown: search or time budget exhausted without a verdict
//   3  frontend error (parse/elaboration/I-O), message on stderr
//
//===----------------------------------------------------------------------===//

#include "front/Front.h"
#include "logic/TermOps.h"
#include "synth/Synth.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sharpie;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.sharpie> [--workers N] [--json] [--verbose]"
               " [--time-budget SECONDS] [--max-tuples N]\n"
               "exit codes: 0 safe, 1 unsafe, 2 unknown/budget, 3 error\n",
               Argv0);
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

int run(int argc, char **argv) {
  std::string File;
  bool Json = false, Verbose = false;
  unsigned Workers = 1;
  double TimeBudget = 0;
  unsigned MaxTuples = 0;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json"))
      Json = true;
    else if (!std::strcmp(argv[I], "--verbose"))
      Verbose = true;
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      Workers = static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--time-budget") && I + 1 < argc)
      TimeBudget = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--max-tuples") && I + 1 < argc)
      MaxTuples = static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--help") || !std::strcmp(argv[I], "-h")) {
      usage(argv[0]);
      return 0;
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      usage(argv[0]);
      return 3;
    } else if (File.empty())
      File = argv[I];
    else {
      std::fprintf(stderr, "error: more than one input file\n");
      usage(argv[0]);
      return 3;
    }
  }
  if (File.empty()) {
    usage(argv[0]);
    return 3;
  }

  auto T0 = std::chrono::steady_clock::now();
  logic::TermManager M;
  front::LoadResult L = front::loadProtocolFile(M, File);
  if (!L.ok()) {
    std::fprintf(stderr, "%s\n", L.Error->render().c_str());
    return 3;
  }
  double ParseSeconds = secondsSince(T0);
  front::FrontBundle &B = *L.Bundle;

  std::printf("== %s ==\n", B.Sys->name().c_str());
  if (!B.Property.empty())
    std::printf("property: %s\n", B.Property.c_str());

  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.Verbose = Verbose;
  Opts.NumWorkers = Workers;
  Opts.TimeBudgetSeconds = TimeBudget;
  if (MaxTuples)
    Opts.MaxTuples = MaxTuples;

  auto T1 = std::chrono::steady_clock::now();
  synth::SynthResult Res = synth::synthesize(*B.Sys, Opts);
  double SynthSeconds = secondsSince(T1);

  if (Json) {
    const synth::SynthStats &S = Res.Stats;
    std::printf(
        "{\"protocol\":\"%s\",\"file\":\"%s\",\"workers\":%u,"
        "\"verified\":%s,\"found_cex\":%s,\"parse_seconds\":%.6f,"
        "\"synth_seconds\":%.3f,\"seconds\":%.3f,\"tuples_tried\":%u,"
        "\"smt_checks\":%u,\"cache_hits\":%u,\"cache_misses\":%u,"
        "\"worker_utilization\":%.3f}\n",
        B.Sys->name().c_str(), File.c_str(), S.NumWorkers,
        Res.Verified ? "true" : "false", Res.Cex ? "true" : "false",
        ParseSeconds, SynthSeconds, S.Seconds, S.TuplesTried, S.SmtChecks,
        S.CacheHits, S.CacheMisses, S.WorkerUtilization);
  }

  if (Res.Verified) {
    std::printf("VERIFIED in %.2fs (%u tuples, %u SMT checks; parse %.1fms)\n",
                Res.Stats.Seconds, Res.Stats.TuplesTried, Res.Stats.SmtChecks,
                ParseSeconds * 1e3);
    std::printf("inferred cardinalities:\n");
    for (logic::Term S : Res.SetBodies)
      std::printf("  #{t | %s}\n", logic::toString(S).c_str());
    std::printf("invariant atoms (%zu):\n", Res.Atoms.size());
    for (logic::Term A : Res.Atoms)
      std::printf("  %s\n", logic::toString(A).c_str());
    return 0;
  }
  if (Res.Cex) {
    std::printf("UNSAFE: explicit counterexample (%zu steps):\n",
                Res.Cex->TransitionNames.size());
    for (const std::string &S : Res.Cex->TransitionNames)
      std::printf("  %s\n", S.c_str());
    if (B.ExpectSafe)
      std::printf("note: protocol declares 'expect safe'\n");
    return 1;
  }
  std::printf("UNKNOWN after %.2fs: %s\n", Res.Stats.Seconds,
              Res.Note.c_str());
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  // The frontend never lets exceptions escape, but keep the driver
  // airtight: any stray throw still exits with code 3 and a message.
  try {
    return run(argc, argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return 3;
  }
}
