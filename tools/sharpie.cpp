//===- tools/sharpie.cpp - The sharpie CLI --------------------------------===//
//
// Part of sharpie. Loads a `.sharpie` protocol file, runs the full #Pi
// pipeline on it, and prints the synthesized invariant or the
// explicit-state counterexample trace.
//
//   sharpie <file.sharpie> [--workers N] [--json] [--verbose]
//           [--time-budget SECONDS] [--max-tuples N]
//           [--faults PLAN] [--no-supervise] [--no-incremental]
//           [--no-refine] [--refine-budget N]
//           [--smt-timeout MS] [--trace-out FILE] [--events-out FILE]
//           [--log-level quiet|info|debug|trace] [--stats]
//           [--server ADDR] [--store DIR]
//           [--retries N] [--retry-base-ms MS]
//
// Observability (see src/obs/): --trace-out writes a Chrome trace-event /
// Perfetto JSON with one track per search worker; --events-out a JSONL
// event stream; --log-level replaces --verbose (which maps to debug);
// --stats prints a per-phase stats table to stderr after the run. The
// SHARPIE_TRACE, SHARPIE_EVENTS and SHARPIE_LOG_LEVEL environment
// variables are flag equivalents for scripted sweeps.
//
// Resilience (see src/resil/): solver checks run supervised by default
// (per-check deadlines, retry with backoff, Z3<->MiniSolver fallback);
// --no-supervise restores the bare back end. --faults (or SHARPIE_FAULTS)
// takes a deterministic fault plan, e.g.
// "seed=7;smt_check:timeout@p=0.4;reduce:unknown@every=3", and is how the
// chaos tests drive the pipeline (see resil/Fault.h for the grammar).
// --smt-timeout overrides the per-check deadline in milliseconds (the
// base slice before backoff; default 30000).
//
// Performance: Houdini runs incrementally by default (assumption-based
// checks over per-atom indicators, unsat-core clause skipping, and
// model-guided instance refinement: the reduction defers the
// witness-bearing instances into a per-clause manifest and each
// surviving model asserts only the entries it violates;
// SynthOptions::Incremental / SynthOptions::Refine). --no-refine keeps
// the incremental context but falls back to the coarse whole-clause
// escalation of BENCH_PR5; --refine-budget N caps the refinement rounds
// per check before a full grounding (default 16). --no-incremental
// restores the monolithic per-check rebuild -- the A/B baseline of
// BENCH_PR5.json. All modes produce identical verdicts and invariants.
//
// Serving (see src/serve/): --server ADDR turns this binary into a thin
// client of a running `sharpied` daemon -- the file is parsed locally
// for fast diagnostics, then its text is shipped; the daemon's response
// replays here byte-exactly (same output, same exit code), warm results
// arriving from the daemon's persistent store. --store DIR gives a local
// (daemonless) run the same persistent cache: warm re-verifications of
// an already-solved protocol replay the stored verdict without solving.
//
// Thin-client resilience: requests are idempotent by content hash, so
// connect failures and overload sheds are retried --retries times
// (default 4) with exponential backoff from --retry-base-ms (default
// 100), deterministic jitter seeded by the protocol text, honoring the
// daemon's retry_after_ms hint. Retries exhausted while the daemon is
// still shedding exits 5 ("overloaded").
//
// With --server, the positional words `metrics` and `dump-trace` are
// telemetry ops instead of a file: `sharpie --server ADDR metrics
// [--format json|prom]` prints the daemon's cumulative metrics (JSON
// object, or Prometheus text exposition with --format prom);
// `sharpie --server ADDR dump-trace [--format perfetto|jsonl]
// [--request ID]` prints the flight recorder's retained request traces
// (a Perfetto-loadable document by default; --request selects one
// request id, 0/default dumps all).
//
// Exit codes (front/ExitCodes.h; deterministic, scriptable):
//   0  verified safe (invariant printed)
//   1  unsafe (explicit counterexample printed)
//   2  unknown: the search space was exhausted without a verdict
//   3  frontend error (parse/elaboration/I-O), message on stderr
//   4  inconclusive: no verdict AND some failure (timeout, skipped tuple,
//      injected fault, exhausted budget) may have hidden one; the report
//      lists failure classes and the best partial candidate
//   5  overloaded: the daemon shed the request and --retries were
//      exhausted; the request was never attempted, resubmit later
//
//===----------------------------------------------------------------------===//

#include "front/ExitCodes.h"
#include "front/Front.h"
#include "logic/TermOps.h"
#include "obs/Cli.h"
#include "resil/Fault.h"
#include "serve/Client.h"
#include "serve/Proto.h"
#include "serve/Store.h"
#include "synth/Synth.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace sharpie;
using front::ExitError;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.sharpie> [--workers N] [--json] [--verbose]"
               " [--time-budget SECONDS] [--max-tuples N]\n"
               "       [--faults PLAN] [--no-supervise] [--no-incremental]\n"
               "       [--no-refine] [--refine-budget N]\n"
               "       [--smt-timeout MS] [--server ADDR] [--store DIR]\n"
               "       [--retries N] [--retry-base-ms MS]\n"
               "       %s\n"
               "       %s --server ADDR metrics [--format json|prom]\n"
               "       %s --server ADDR dump-trace [--format perfetto|jsonl]"
               " [--request ID]\n"
               "exit codes: 0 safe, 1 unsafe, 2 unknown, 3 error,"
               " 4 inconclusive, 5 overloaded\n",
               Argv0, obs::CliObs::usageFragment(), Argv0, Argv0);
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

int run(int argc, char **argv) {
  std::string File;
  bool Json = false, Verbose = false, NoSupervise = false;
  bool NoIncremental = false;
  bool NoRefine = false;
  unsigned RefineBudget = 0; // 0 = keep the SynthOptions default.
  unsigned Workers = 1;
  double TimeBudget = 0;
  unsigned MaxTuples = 0;
  unsigned SmtTimeoutMs = 0; // 0 = keep the SynthOptions default.
  std::string FaultSpec;
  std::string ServerAddr;
  std::string StoreDir;
  std::string Format;       // --format, for the metrics/dump-trace ops.
  uint64_t RequestId = 0;   // --request, for dump-trace.
  serve::RetryPolicy Retry; // --retries / --retry-base-ms (thin client).
  if (const char *Env = std::getenv("SHARPIE_FAULTS"))
    FaultSpec = Env; // --faults below overrides the environment.
  obs::CliObs Obs;
  Obs.readEnv(); // Flags below override the environment.
  for (int I = 1; I < argc; ++I) {
    std::string ObsErr;
    if (Obs.parseArg(argc, argv, I, ObsErr)) {
      if (!ObsErr.empty()) {
        std::fprintf(stderr, "error: %s\n", ObsErr.c_str());
        usage(argv[0]);
        return ExitError;
      }
    } else if (!std::strcmp(argv[I], "--json"))
      Json = true;
    else if (!std::strcmp(argv[I], "--verbose"))
      Verbose = true;
    else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      Workers = static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--time-budget") && I + 1 < argc)
      TimeBudget = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--max-tuples") && I + 1 < argc)
      MaxTuples = static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--faults") && I + 1 < argc)
      FaultSpec = argv[++I];
    else if (!std::strcmp(argv[I], "--no-supervise"))
      NoSupervise = true;
    else if (!std::strcmp(argv[I], "--no-incremental"))
      NoIncremental = true;
    else if (!std::strcmp(argv[I], "--no-refine"))
      NoRefine = true;
    else if (!std::strcmp(argv[I], "--refine-budget") && I + 1 < argc)
      RefineBudget =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--smt-timeout") && I + 1 < argc)
      SmtTimeoutMs =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--server") && I + 1 < argc) {
      ServerAddr = argv[++I];
      // An empty ADDR (typically an unset shell variable) must not
      // silently degrade to a local run -- the modes are intentionally
      // indistinguishable by output, so the mixup would be invisible.
      if (ServerAddr.empty()) {
        std::fprintf(stderr, "error: --server needs a non-empty address "
                             "(unix:/path or host:port)\n");
        return ExitError;
      }
    }
    else if (!std::strcmp(argv[I], "--store") && I + 1 < argc)
      StoreDir = argv[++I];
    else if (!std::strcmp(argv[I], "--format") && I + 1 < argc)
      Format = argv[++I];
    else if (!std::strcmp(argv[I], "--request") && I + 1 < argc)
      RequestId =
          static_cast<uint64_t>(std::strtoull(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--retries") && I + 1 < argc)
      Retry.MaxRetries =
          static_cast<unsigned>(std::strtol(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--retry-base-ms") && I + 1 < argc)
      Retry.BaseMs = std::strtol(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--help") || !std::strcmp(argv[I], "-h")) {
      usage(argv[0]);
      return 0;
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      usage(argv[0]);
      return ExitError;
    } else if (File.empty())
      File = argv[I];
    else {
      std::fprintf(stderr, "error: more than one input file\n");
      usage(argv[0]);
      return ExitError;
    }
  }
  if (File.empty()) {
    usage(argv[0]);
    return ExitError;
  }
  // --verbose is the back-compat spelling of --log-level debug.
  if (Verbose &&
      static_cast<int>(Obs.Level) < static_cast<int>(obs::LogLevel::Debug))
    Obs.Level = obs::LogLevel::Debug;
  resil::FaultPlan Faults;
  if (!FaultSpec.empty()) {
    std::string FErr;
    if (auto P = resil::FaultPlan::parse(FaultSpec, &FErr))
      Faults = std::move(*P);
    else {
      std::fprintf(stderr, "error: bad fault plan: %s\n", FErr.c_str());
      return ExitError;
    }
  }

  // -- Telemetry ops (thin client) -------------------------------------------
  // `metrics` and `dump-trace` are daemon queries, not files: print the
  // scrape (Prometheus text with --format prom) or the flight-recorder
  // trace document and exit 0.
  if (!ServerAddr.empty() && (File == "metrics" || File == "dump-trace")) {
    bool Metrics = File == "metrics";
    std::string Err;
    auto A = serve::parseAddr(ServerAddr, &Err);
    if (!A) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitError;
    }
    serve::Json Req;
    Req["op"] = serve::Json(Metrics ? "metrics" : "dump_trace");
    if (!Format.empty())
      Req["format"] = serve::Json(Format);
    if (RequestId)
      Req["request"] = serve::Json(RequestId);
    serve::Client C;
    serve::Json RespJ;
    if (!C.connect(*A, Err) || !C.roundTrip(Req, RespJ, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitError;
    }
    if (!RespJ.get("ok").asBool()) {
      std::fprintf(stderr, "error: %s\n",
                   RespJ.get("error").asString().c_str());
      return ExitError;
    }
    std::string Out;
    if (Metrics && RespJ.get("format").asString() == "prom")
      Out = RespJ.get("text").asString(); // Raw exposition, scrapeable.
    else if (!Metrics)
      Out = RespJ.get("trace").asString(); // Perfetto/JSONL document.
    else
      Out = RespJ.dump() + "\n";
    std::fwrite(Out.data(), 1, Out.size(), stdout);
    return 0;
  }

  // -- Thin-client mode ------------------------------------------------------
  // Parse locally for fast, identical diagnostics; ship the text. The
  // daemon's response carries the complete stdout a local run would have
  // printed, so scripts cannot tell the difference.
  if (!ServerAddr.empty()) {
    std::ifstream In(File, std::ios::binary);
    std::ostringstream SS;
    SS << In.rdbuf();
    if (!In || In.bad()) {
      // Route through the frontend's file loader so the diagnostic text
      // matches a local run's exactly.
      logic::TermManager M;
      front::LoadResult L = front::loadProtocolFile(M, File);
      std::fprintf(stderr, "%s\n",
                   L.ok() ? ("error: cannot read '" + File + "'").c_str()
                          : L.Error->render().c_str());
      return ExitError;
    }
    std::string Text = SS.str();
    {
      logic::TermManager M;
      front::LoadResult L = front::loadProtocolString(M, Text, File);
      if (!L.ok()) {
        std::fprintf(stderr, "%s\n", L.Error->render().c_str());
        return ExitError;
      }
    }
    std::string Err;
    auto A = serve::parseAddr(ServerAddr, &Err);
    if (!A) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitError;
    }
    serve::VerifyRequest Req;
    Req.ProtocolText = std::move(Text);
    Req.File = File;
    Req.Workers = Workers;
    Req.TimeBudget = TimeBudget;
    Req.MaxTuples = MaxTuples;
    Req.SmtTimeoutMs = SmtTimeoutMs;
    Req.NoSupervise = NoSupervise;
    Req.NoIncremental = NoIncremental;
    Req.NoRefine = NoRefine;
    Req.RefineBudget = RefineBudget;
    Req.Faults = FaultSpec;
    Req.JsonLine = Json;
    // Verify requests are idempotent by content hash, so connect
    // failures and overload sheds retry with deterministic jitter keyed
    // on the protocol text: the schedule is reproducible per input, and
    // concurrent clients verifying different files decorrelate.
    serve::RetryPolicy Policy = Retry;
    if (!Policy.Seed) {
      uint64_t H = 1469598103934665603ULL; // FNV-1a over the text.
      for (unsigned char Ch : Req.ProtocolText)
        H = (H ^ Ch) * 1099511628211ULL;
      Policy.Seed = H;
    }
    serve::Json RespJ;
    serve::RetryOutcome Out =
        serve::requestWithRetry(*A, Req.encode(), Policy, RespJ);
    if (!Out.Ok) {
      std::fprintf(stderr, "error: %s (after %u attempt%s)\n",
                   Out.Err.c_str(), Out.Attempts,
                   Out.Attempts == 1 ? "" : "s");
      return ExitError;
    }
    if (RespJ.get("error").isString() && RespJ.get("exit").isNull()) {
      // Protocol-level rejection (bad request framing), not a verdict.
      std::fprintf(stderr, "error: %s\n",
                   RespJ.get("error").asString().c_str());
      return ExitError;
    }
    serve::VerifyResponse Resp = serve::VerifyResponse::decode(RespJ);
    std::fwrite(Resp.Output.data(), 1, Resp.Output.size(), stdout);
    if (!Resp.Error.empty())
      std::fwrite(Resp.Error.data(), 1, Resp.Error.size(), stderr);
    return Resp.Exit;
  }

  std::unique_ptr<obs::Tracer> Tracer = Obs.makeTracer();

  // One clock for all reported times: total_seconds spans parse through
  // synthesis on this clock, so parse_seconds + synth_seconds <=
  // total_seconds always holds in the JSON.
  auto T0 = std::chrono::steady_clock::now();
  logic::TermManager M;
  front::LoadResult L = front::loadProtocolFile(
      M, File, Tracer ? Tracer->worker(0) : nullptr);
  if (!L.ok()) {
    std::fprintf(stderr, "%s\n", L.Error->render().c_str());
    return ExitError;
  }
  double ParseSeconds = secondsSince(T0);
  front::FrontBundle &B = *L.Bundle;

  std::string Header = serve::renderHeader(B.Sys->name(), B.Property);
  std::fwrite(Header.data(), 1, Header.size(), stdout);
  std::fflush(stdout);

  // -- Persistent store (local mode) -----------------------------------------
  // Chaos runs bypass the store in both directions, mirroring the
  // daemon's policy: injected faults must neither read nor feed it.
  serve::ResultStore Store(Faults.empty() ? StoreDir : std::string());
  double CacheLookupSeconds = 0;
  front::CanonicalHash Hash = front::canonicalProblemHash(B);
  if (Store.enabled()) {
    auto TL = std::chrono::steady_clock::now();
    std::optional<serve::ResultStore::T1Entry> Hit = Store.lookup(Hash);
    CacheLookupSeconds = secondsSince(TL);
    if (Hit) {
      if (Json) {
        std::string JL = serve::renderJsonLine(
            B.Sys->name(), File, Hit->Exit == front::ExitVerified,
            Hit->Exit == front::ExitUnsafe, /*Inconclusive=*/false,
            ParseSeconds, CacheLookupSeconds, /*SynthSeconds=*/0.0,
            secondsSince(T0), Hit->StatsJson);
        std::fwrite(JL.data(), 1, JL.size(), stdout);
      }
      std::fwrite(Hit->Verdict.data(), 1, Hit->Verdict.size(), stdout);
      return Hit->Exit;
    }
  }
  engine::ReduceCache RC;
  if (Store.enabled()) {
    RC.enableSharing();
    Store.loadReduceCache(RC);
  }

  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Reduce.Card.Venn = B.NeedsVenn;
  Opts.Explicit = B.Explicit;
  Opts.Trace = Tracer.get();
  Opts.Verbose = Verbose;
  Opts.NumWorkers = Workers;
  Opts.TimeBudgetSeconds = TimeBudget;
  if (MaxTuples)
    Opts.MaxTuples = MaxTuples;
  Opts.Supervise.Enabled = !NoSupervise;
  Opts.Incremental = !NoIncremental;
  Opts.Refine = !NoRefine;
  if (RefineBudget)
    Opts.RefineBudget = RefineBudget;
  if (SmtTimeoutMs)
    Opts.SmtTimeoutMs = SmtTimeoutMs;
  if (!Faults.empty())
    Opts.Faults = &Faults;
  if (Store.enabled())
    Opts.ReuseReduceCache = &RC;

  auto T1 = std::chrono::steady_clock::now();
  synth::SynthResult Res = synth::synthesize(*B.Sys, Opts);
  double SynthSeconds = secondsSince(T1);
  double TotalSeconds = secondsSince(T0);
  Res.Stats.CacheLookupSeconds = CacheLookupSeconds;

  if (Tracer) {
    std::string Err;
    if (!Obs.writeOutputs(*Tracer, Err))
      std::fprintf(stderr, "warning: %s\n", Err.c_str());
  }
  if (Obs.Stats)
    std::fprintf(stderr, "%s",
                 synth::renderStatsTable(Res.Stats, SynthSeconds).c_str());

  if (Json) {
    std::string JL = serve::renderJsonLine(
        B.Sys->name(), File, Res.Verified, Res.Cex.has_value(),
        Res.Inconclusive, ParseSeconds, CacheLookupSeconds, SynthSeconds,
        TotalSeconds, synth::statsJsonFields(Res.Stats));
    std::fwrite(JL.data(), 1, JL.size(), stdout);
  }

  serve::RenderedVerdict V = serve::renderVerdict(Res, B.ExpectSafe,
                                                  ParseSeconds);
  std::fwrite(V.Text.data(), 1, V.Text.size(), stdout);

  if (Store.enabled() &&
      (V.Exit == front::ExitVerified || V.Exit == front::ExitUnsafe)) {
    serve::ResultStore::T1Entry E;
    E.Exit = V.Exit;
    E.Protocol = B.Sys->name();
    E.StatsJson = synth::statsJsonFields(Res.Stats);
    E.SynthSeconds = SynthSeconds;
    E.Verdict = V.Text;
    Store.store(Hash, E);
    Store.saveReduceCache(RC);
  }
  return V.Exit;
}

} // namespace

int main(int argc, char **argv) {
  // The frontend never lets exceptions escape, but keep the driver
  // airtight: any stray throw still exits with code 3 and a message.
  try {
    return run(argc, argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return ExitError;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return ExitError;
  }
}
