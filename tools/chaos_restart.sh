#!/bin/sh
# Crash-recovery chaos for the serving stack: SIGKILL a daemon in the
# middle of a verify and prove the persistent store survives. Asserts:
#   * a kill -9 mid-solve leaves the store loadable -- atomic writes
#     mean every tier-1/2 file is either the old version or the new
#     one, never torn (a fresh daemon on the same dir boots clean,
#     breaker closed);
#   * the verdict completed before the crash is still served warm
#     (tier-1 hit, byte-identical output) by the restarted daemon;
#   * the client caught mid-request fails with an error instead of
#     hanging (its retries find no daemon and give up).
#
# usage: chaos_restart.sh <sharpied> <sharpie> <protocol.sharpie>
set -e

SHARPIED=$1
SHARPIE=$2
PROTO=$3

DIR=$(mktemp -d)
PID=
CLIENT=
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null
  [ -n "$CLIENT" ] && kill "$CLIENT" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

boot() { # boot <sock> -> daemon pid in $PID
  : > "$DIR/banner.txt"
  "$SHARPIED" --listen "unix:$1" --store "$DIR/store" \
    > "$DIR/banner.txt" &
  PID=$!
  ok=
  for _ in $(seq 1 100); do
    if grep -q "listening on" "$DIR/banner.txt" 2>/dev/null; then
      ok=1
      break
    fi
    sleep 0.1
  done
  [ -n "$ok" ] || { echo "daemon never came up"; exit 1; }
}

# -- Phase 1: a settled verdict lands in the store ---------------------------
SOCK1="$DIR/d1.sock"
boot "$SOCK1"
"$SHARPIE" "$PROTO" --server "unix:$SOCK1" --json > "$DIR/cold.out"
grep -v '^{' "$DIR/cold.out" > "$DIR/cold.v"

# -- Phase 2: kill -9 mid-verify ---------------------------------------------
# Per-tuple latency faults keep the in-flight solve alive for seconds
# (a faulted request also bypasses the cache, so the warm slot from
# phase 1 is not consulted); the SIGKILL lands mid-solve.
"$SHARPIE" "$PROTO" --server "unix:$SOCK1" \
    --faults "worker_task:latency=5000@always" \
    --retries 1 --retry-base-ms 50 > /dev/null 2>&1 &
CLIENT=$!
sleep 1
kill -9 "$PID"
PID=

# The orphaned client must fail fast, not hang.
set +e
wait "$CLIENT"
STATUS=$?
set -e
CLIENT=
[ "$STATUS" -ne 0 ] || { echo "client exited 0 against a dead daemon"; exit 1; }

# -- Phase 3: restart on the same store --------------------------------------
SOCK2="$DIR/d2.sock"
boot "$SOCK2"

# The store loaded clean: breaker closed, no corruption incident.
"$SHARPIED" --ctl "unix:$SOCK2" --op health > "$DIR/health.json"
grep -q '"store_breaker":"closed"' "$DIR/health.json"
grep -q '"state":"ready"' "$DIR/health.json"

# The phase-1 verdict survived: warm tier-1 hit, byte-identical output.
"$SHARPIE" "$PROTO" --server "unix:$SOCK2" --json > "$DIR/warm.out"
grep -v '^{' "$DIR/warm.out" > "$DIR/warm.v"
cmp "$DIR/cold.v" "$DIR/warm.v"
"$SHARPIED" --ctl "unix:$SOCK2" --op cache_stats > "$DIR/stats.json"
grep -q '"t1_hits":1' "$DIR/stats.json"
grep -q '"t1_corrupt":0' "$DIR/stats.json"

"$SHARPIED" --ctl "unix:$SOCK2" --op shutdown > /dev/null
wait "$PID"
PID=
echo "chaos restart: OK"
