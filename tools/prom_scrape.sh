#!/usr/bin/env bash
# prom_scrape.sh -- fetch a sharpied daemon's Prometheus text exposition.
#
# Usage:
#   tools/prom_scrape.sh ADDR [OUT_FILE]
#
# ADDR is the daemon address ("unix:/path/to.sock" or "HOST:PORT").
# Prints the exposition to stdout (or OUT_FILE), exit 0 on success --
# the shape a Prometheus file-based scrape job or a cron textfile
# collector wants. Requires the sharpie binary next to this script's
# build tree or on PATH.
set -euo pipefail

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
  echo "usage: $0 ADDR [OUT_FILE]" >&2
  exit 2
fi
ADDR=$1
OUT=${2:-}

# Locate the sharpie client: PATH first, then the conventional build dir
# relative to this script.
HERE=$(cd "$(dirname "$0")" && pwd)
SHARPIE=$(command -v sharpie || true)
if [ -z "$SHARPIE" ]; then
  for CAND in "$HERE/../build/tools/sharpie" "$HERE/../build/sharpie"; do
    if [ -x "$CAND" ]; then SHARPIE=$CAND; break; fi
  done
fi
if [ -z "$SHARPIE" ]; then
  echo "error: sharpie binary not found (PATH or build/tools)" >&2
  exit 1
fi

if [ -n "$OUT" ]; then
  TMP=$(mktemp "${OUT}.XXXXXX")
  trap 'rm -f "$TMP"' EXIT
  "$SHARPIE" --server "$ADDR" metrics --format prom >"$TMP"
  mv "$TMP" "$OUT" # Atomic publish: scrapers never see a partial file.
  trap - EXIT
else
  exec "$SHARPIE" --server "$ADDR" metrics --format prom
fi
