#!/bin/sh
# Part of sharpie. Two modes:
#
#   tools/sweep.sh             quick health check: runs #Pi on every
#                              registered benchmark with a per-run timeout
#                              and prints one status line each;
#   tools/sweep.sh --bench-pr1 parallel-search benchmark: runs a protocol
#                              selection with NumWorkers in {1, max} and
#                              writes BENCH_PR1.json (one JSON object per
#                              protocol/worker-count run, carrying seconds,
#                              SMT check counts, and cache hit rates);
#   tools/sweep.sh --bench-pr2 frontend benchmark: runs the sharpie driver
#                              on every examples/protocols/*.sharpie file
#                              and writes BENCH_PR2.json (one JSON object
#                              per file, carrying parse+lower and synthesis
#                              wall times);
#   tools/sweep.sh --bench-pr3 observability benchmark: like --bench-pr2
#                              but with metrics collection on (--stats), so
#                              each line also carries the merged tracer
#                              counters (ctr_*: cache hits/misses, CARD
#                              axiom counts, ...) and latency histogram
#                              summaries (hist_*: smt_ms per phase,
#                              reduce_ms); writes BENCH_PR3.json.
#
# BIN points at the example_run_protocol binary, SHARPIE_BIN at the
# sharpie driver, TIMEOUT is per run.
BIN=${BIN:-build/examples/example_run_protocol}
SHARPIE_BIN=${SHARPIE_BIN:-build/tools/sharpie}
TIMEOUT=${TIMEOUT:-120}

if [ "$1" = "--bench-pr2" ] || [ "$1" = "--bench-pr3" ]; then
  if [ "$1" = "--bench-pr3" ]; then
    OUT=${OUT:-BENCH_PR3.json}
    STATS=--stats # Turns metrics collection on: ctr_*/hist_* JSON fields.
  else
    OUT=${OUT:-BENCH_PR2.json}
    STATS=
  fi
  PROTODIR=${PROTODIR:-examples/protocols}
  printf '{"meta":{"nproc":%s,"protodir":"%s"}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$PROTODIR" > "$OUT"
  for f in "$PROTODIR"/*.sharpie; do
    line=$(timeout "$TIMEOUT" "$SHARPIE_BIN" "$f" --json $STATS 2>/dev/null \
           | grep '^{' | head -1)
    if [ -n "$line" ]; then
      printf '%s\n' "$line" >> "$OUT"
    else
      printf '{"file":"%s","error":"timeout"}\n' "$f" >> "$OUT"
    fi
    printf '%-44s %s\n' "$f" "${line:-TIMEOUT}"
  done
  echo "wrote $OUT"
  exit 0
fi

if [ "$1" = "--bench-pr1" ]; then
  OUT=${OUT:-BENCH_PR1.json}
  # Multi-tuple protocols where the set-tuple search dominates, plus the
  # single-tuple ticket-mutex as a no-parallelism-available control.
  PROTOS=${PROTOS:-"ticket one-third filter ticket-mutex"}
  MAXW=${MAXW:-$(nproc 2>/dev/null || echo 4)}
  # First line records the host so speedup numbers are interpretable: on a
  # single-core machine workers interleave and "max" degenerates to 1.
  printf '{"meta":{"nproc":%s,"max_workers":%s}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$MAXW" > "$OUT"
  for name in $PROTOS; do
    for w in 1 "$MAXW"; do
      line=$(timeout "$TIMEOUT" "$BIN" "$name" --workers "$w" --json \
             | grep '^{' | head -1)
      if [ -n "$line" ]; then
        printf '%s\n' "$line" >> "$OUT"
      else
        printf '{"protocol":"%s","workers":%s,"error":"timeout"}\n' \
          "$name" "$w" >> "$OUT"
      fi
      printf '%-14s workers=%-3s %s\n' "$name" "$w" "${line:-TIMEOUT}"
    done
  done
  echo "wrote $OUT"
  exit 0
fi

for name in $($BIN --list); do
  start=$(date +%s%N)
  out=$(timeout "$TIMEOUT" "$BIN" "$name" 2>&1)
  code=$?
  end=$(date +%s%N)
  ms=$(( (end - start) / 1000000 ))
  status=$(printf '%s' "$out" | grep -oE 'VERIFIED|UNSAFE|NOT VERIFIED' | head -1)
  [ $code -eq 124 ] && status=TIMEOUT
  printf '%-22s %-14s %6dms\n' "$name" "${status:-ERROR}" "$ms"
done
