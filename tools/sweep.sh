#!/bin/sh
# Part of sharpie. Runs #Pi on every registered benchmark with a per-run
# timeout and prints one status line each -- the quick health check used
# during development (the bench/ binaries print the full paper tables).
BIN=${BIN:-build/examples/example_run_protocol}
TIMEOUT=${TIMEOUT:-120}
for name in $($BIN --list); do
  start=$(date +%s%N)
  out=$(timeout "$TIMEOUT" "$BIN" "$name" 2>&1)
  code=$?
  end=$(date +%s%N)
  ms=$(( (end - start) / 1000000 ))
  status=$(printf '%s' "$out" | grep -oE 'VERIFIED|UNSAFE|NOT VERIFIED' | head -1)
  [ $code -eq 124 ] && status=TIMEOUT
  printf '%-22s %-14s %6dms\n' "$name" "${status:-ERROR}" "$ms"
done
