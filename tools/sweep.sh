#!/bin/sh
# Part of sharpie. Two modes:
#
#   tools/sweep.sh             quick health check: runs #Pi on every
#                              registered benchmark with a per-run timeout
#                              and prints one status line each;
#   tools/sweep.sh --bench-pr1 parallel-search benchmark: runs a protocol
#                              selection with NumWorkers in {1, max} and
#                              writes BENCH_PR1.json (one JSON object per
#                              protocol/worker-count run, carrying seconds,
#                              SMT check counts, and cache hit rates);
#   tools/sweep.sh --bench-pr2 frontend benchmark: runs the sharpie driver
#                              on every examples/protocols/*.sharpie file
#                              and writes BENCH_PR2.json (one JSON object
#                              per file, carrying parse+lower and synthesis
#                              wall times);
#   tools/sweep.sh --bench-pr3 observability benchmark: like --bench-pr2
#                              but with metrics collection on (--stats), so
#                              each line also carries the merged tracer
#                              counters (ctr_*: cache hits/misses, CARD
#                              axiom counts, ...) and latency histogram
#                              summaries (hist_*: smt_ms per phase,
#                              reduce_ms); writes BENCH_PR3.json.
#   tools/sweep.sh --bench-pr4 resilience benchmark: runs a protocol
#                              selection three ways -- supervision off
#                              (--no-supervise), supervision on with no
#                              faults, and under a seeded fault plan --
#                              and writes BENCH_PR4.json. Each line
#                              carries the resilience counters
#                              (ctr_retries, ctr_fallbacks,
#                              ctr_faults_injected, ctr_tuples_skipped);
#                              comparing the first two modes' seconds
#                              bounds the supervision overhead (<2%
#                              expected when no faults fire).
#   tools/sweep.sh --bench-pr7 serving-stack benchmark: boots a sharpied
#                              daemon on a fresh store, runs each protocol
#                              twice through the thin client (cold, then
#                              warm) and writes BENCH_PR7.json. Each line
#                              carries both client wall times and the
#                              daemon-side total_seconds; the script diffs
#                              the timing-free output across the two runs
#                              (any difference fails the bench) and
#                              asserts the warm request is at least
#                              MIN_SPEEDUP (default 10) times faster than
#                              the cold one whenever the cold request took
#                              a measurable MIN_COLD seconds. The final
#                              meta line records the daemon's cache_stats
#                              counters (t1 hits/writes per protocol).
#   tools/sweep.sh --bench-pr8 telemetry-overhead benchmark: boots two
#                              sharpied daemons on fresh stores -- one
#                              with telemetry (default) and one with
#                              --no-telemetry -- runs PR8_PROTO cold and
#                              warm through each, and writes
#                              BENCH_PR8.json. Gates: the telemetry
#                              daemon's cold wall must stay within
#                              OVERHEAD_MAX percent (default 2, plus an
#                              ABS_SLACK noise floor) of the baseline;
#                              the metrics endpoint must expose the
#                              cold/warm requests in labeled counters;
#                              the flight recorder's measured bytes must
#                              sit under its configured ceiling. Also
#                              records the average Prometheus scrape
#                              latency and a dump_trace sanity probe.
#   tools/sweep.sh --bench-pr9 overload-discipline benchmark: boots a
#                              sharpied daemon with a small admission
#                              window (--request-workers 2
#                              --queue-depth 4) and fires 4x its
#                              capacity in concurrent slow verifies.
#                              Writes BENCH_PR9.json: shed-response
#                              client walls (the shed decision is
#                              connection-thread-only, so these stay
#                              near process-start cost), completed-
#                              request walls, storm wall, the mid-storm
#                              health probe, and the daemon's final
#                              shed counters. Gates: every client exits
#                              (zero hung), completed <= capacity,
#                              shed >= clients - capacity, and health
#                              answers ok mid-storm.
#   tools/sweep.sh --bench-pr10 model-guided refinement A/B/C: runs each
#                              protocol eager (--no-incremental), coarse
#                              (--no-refine) and with the default CEGAR
#                              refinement loop, and writes BENCH_PR10.json.
#                              Gates: byte-identical rendered invariants
#                              and verdicts across all three modes on
#                              every protocol, zero refinement-budget
#                              exhaustions, and on the headline protocol
#                              (ticket_lock) refine must be the fastest
#                              mode (EAGER_SPEEDUP / COARSE_SPEEDUP
#                              factors) with a mean Houdini check under
#                              HOUDINI_MS_BUDGET (a third of the
#                              BENCH_PR5 incremental baseline's 293ms)
#                              and >= CHECK_SPEEDUP leaner than the same
#                              run's coarse mode. Also reports the wall
#                              ratio against the recorded BENCH_PR5
#                              incremental baseline.
#   tools/sweep.sh --bench-pr5 incremental-Houdini A/B: runs each protocol
#                              in the default incremental mode and under
#                              --no-incremental (the monolithic baseline)
#                              and writes BENCH_PR5.json. Each line
#                              carries the Houdini-phase check count
#                              (hist_smt_ms.houdini count), the recheck
#                              split, the CARD axiom volumes, and the
#                              incremental counters (ctr_core_drops,
#                              ctr_solver_context_reuses,
#                              ctr_axioms_lazy_deferred); the script
#                              prints per-protocol speedups, diffs the
#                              rendered invariants across modes (any
#                              difference is a soundness bug and fails
#                              the bench), and asserts the incremental
#                              recheck stays under RECHECK_BUDGET seconds
#                              (the old monolithic path paid a multi-
#                              second axiom re-instantiation floor even
#                              on trivial protocols).
#
# BIN points at the example_run_protocol binary, SHARPIE_BIN at the
# sharpie driver, TIMEOUT is per run.
BIN=${BIN:-build/examples/example_run_protocol}
SHARPIE_BIN=${SHARPIE_BIN:-build/tools/sharpie}
TIMEOUT=${TIMEOUT:-120}

if [ "$1" = "--bench-pr2" ] || [ "$1" = "--bench-pr3" ]; then
  if [ "$1" = "--bench-pr3" ]; then
    OUT=${OUT:-BENCH_PR3.json}
    STATS=--stats # Turns metrics collection on: ctr_*/hist_* JSON fields.
  else
    OUT=${OUT:-BENCH_PR2.json}
    STATS=
  fi
  PROTODIR=${PROTODIR:-examples/protocols}
  printf '{"meta":{"nproc":%s,"protodir":"%s"}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$PROTODIR" > "$OUT"
  for f in "$PROTODIR"/*.sharpie; do
    line=$(timeout "$TIMEOUT" "$SHARPIE_BIN" "$f" --json $STATS 2>/dev/null \
           | grep '^{' | head -1)
    if [ -n "$line" ]; then
      printf '%s\n' "$line" >> "$OUT"
    else
      printf '{"file":"%s","error":"timeout"}\n' "$f" >> "$OUT"
    fi
    printf '%-44s %s\n' "$f" "${line:-TIMEOUT}"
  done
  echo "wrote $OUT"
  exit 0
fi

if [ "$1" = "--bench-pr4" ]; then
  OUT=${OUT:-BENCH_PR4.json}
  # A spread of search shapes: the two-tuple quick case, the single-tuple
  # control, and a Venn-heavy multi-tuple search where checks dominate.
  PROTOS=${PROTOS:-"increment ticket-mutex one-third"}
  # Injected-fault demonstration runs. Every ~5th SMT check answers
  # Unknown and escalates to the MiniSolver fallback; the plan runs on
  # small protocols whose fallback queries resolve in milliseconds -- on
  # check-heavy protocols each escalation can grind a full per-check
  # slice, which measures the fault plan, not the wrapper.
  FAULTS=${FAULTS:-"seed=1;smt_check:unknown@every=5"}
  FAULT_PROTOS=${FAULT_PROTOS:-"increment"}
  # Wall-clock deltas on a loaded host swamp a <2% effect; take the best
  # of REPS runs per mode so the overhead comparison sees the noise floor.
  REPS=${REPS:-3}
  printf '{"meta":{"nproc":%s,"faults":"%s","reps":%s}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$FAULTS" "$REPS" > "$OUT"
  run_mode() { # $1=protocol $2=mode $3=reps $4...=extra flags
    rm_name=$1; rm_mode=$2; rm_reps=$3; shift 3
    best=
    bestsecs=
    r=0
    while [ $r -lt "$rm_reps" ]; do
      r=$((r + 1))
      line=$(timeout "$TIMEOUT" "$BIN" "$rm_name" --stats --json "$@" \
             2>/dev/null | grep '^{' | head -1)
      secs=$(printf '%s' "$line" \
             | sed -n 's/.*"synth_seconds":\([0-9.]*\).*/\1/p')
      if [ -n "$secs" ] && { [ -z "$bestsecs" ] || \
           awk -v a="$secs" -v b="$bestsecs" 'BEGIN{exit !(a<b)}'; }; then
        best=$line
        bestsecs=$secs
      fi
    done
    if [ -n "$best" ]; then
      printf '{"mode":"%s",%s\n' "$rm_mode" "${best#?}" >> "$OUT"
    else
      printf '{"mode":"%s","protocol":"%s","error":"timeout"}\n' \
        "$rm_mode" "$rm_name" >> "$OUT"
    fi
    resil=$(printf '%s' "$best" | grep -oE \
      '"ctr_(retries|fallbacks|faults_injected|tuples_skipped)": [0-9]+' \
      | tr '\n' ' ')
    printf '%-14s %-10s %8ss  %s\n' "$rm_name" "$rm_mode" "${bestsecs:-?}" \
      "$resil"
  }
  for name in $PROTOS; do
    run_mode "$name" bare "$REPS" --no-supervise
    bare=$bestsecs
    run_mode "$name" supervised "$REPS"
    sup=$bestsecs
    if [ -n "$bare" ] && [ -n "$sup" ]; then
      awk -v b="$bare" -v s="$sup" -v n="$name" 'BEGIN {
        printf "%-14s supervision overhead: %+.2f%%\n", n, (s-b)/b*100 }'
    fi
  done
  for name in $FAULT_PROTOS; do
    run_mode "$name" faulted 1 --faults "$FAULTS"
  done
  echo "wrote $OUT"
  exit 0
fi

if [ "$1" = "--bench-pr5" ]; then
  OUT=${OUT:-BENCH_PR5.json}
  # The registry protocols run through example_run_protocol; ticket_lock
  # goes through the textual frontend so the A/B also covers the sharpie
  # driver's --no-incremental plumbing. ticket_lock is the headline case:
  # its full template search is where the monolithic loop burns hundreds
  # of Houdini-phase checks.
  PROTOS=${PROTOS:-"increment ticket-mutex one-third"}
  SHARPIE_PROTOS=${SHARPIE_PROTOS:-"examples/protocols/ticket_lock.sharpie"}
  PR5_TIMEOUT=${PR5_TIMEOUT:-300}
  # Pin for the recheck-floor fix: the monolithic recheck re-instantiates
  # every CARD axiom in a fresh solver and paid ~3-5s even on trivial
  # protocols (one-third: 5.1s); the incremental recheck reuses the live
  # context and must stay under this budget on every protocol.
  RECHECK_BUDGET=${RECHECK_BUDGET:-1.0}
  FAIL=0
  printf '{"meta":{"nproc":%s,"recheck_budget":%s,"timeout":%s}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$RECHECK_BUDGET" "$PR5_TIMEOUT" > "$OUT"
  pr5_run() { # $1=display name $2=mode $3...=command; fills p5_* globals
    p5_name=$1; p5_mode=$2; shift 2
    p5_out=$(timeout "$PR5_TIMEOUT" "$@" --stats --json 2>/dev/null)
    p5_line=$(printf '%s\n' "$p5_out" | grep '^{' | head -1)
    # Everything from "inferred cardinalities:" down is the rendered
    # invariant (set bodies + atoms) -- timing-free, so it diffs cleanly
    # across modes.
    p5_inv=$(printf '%s\n' "$p5_out" | sed -n '/^inferred cardinalities:/,$p')
    if [ -z "$p5_line" ]; then
      printf '{"mode":"%s","protocol":"%s","error":"timeout"}\n' \
        "$p5_mode" "$p5_name" >> "$OUT"
      p5_secs=; p5_houd=; p5_recheck=; p5_verified=
      printf '%-14s %-12s TIMEOUT\n' "$p5_name" "$p5_mode"
      FAIL=1
      return
    fi
    printf '{"mode":"%s",%s\n' "$p5_mode" "${p5_line#?}" >> "$OUT"
    p5_secs=$(printf '%s' "$p5_line" \
              | sed -n 's/.*"synth_seconds":\([0-9.]*\).*/\1/p')
    p5_houd=$(printf '%s' "$p5_line" \
              | sed -n 's/.*"hist_smt_ms\.houdini": {"count": \([0-9]*\).*/\1/p')
    p5_recheck=$(printf '%s' "$p5_line" \
                 | sed -n 's/.*"recheck_seconds": \([0-9.]*\).*/\1/p')
    p5_verified=$(printf '%s' "$p5_line" \
                  | sed -n 's/.*"verified":\(true\|false\).*/\1/p')
    p5_ctrs=$(printf '%s' "$p5_line" | grep -oE \
      '"ctr_(core_drops|solver_context_reuses|axioms_lazy_deferred)": [0-9]+' \
      | tr '\n' ' ')
    printf '%-14s %-12s %8ss  houdini_checks=%-5s recheck=%ss  %s\n' \
      "$p5_name" "$p5_mode" "${p5_secs:-?}" "${p5_houd:-?}" \
      "${p5_recheck:-?}" "$p5_ctrs"
  }
  pr5_ab() { # $1=display name $2...=command (without mode flags)
    ab_name=$1; shift
    pr5_run "$ab_name" incremental "$@"
    inc_secs=$p5_secs; inc_houd=$p5_houd
    inc_recheck=$p5_recheck; inc_inv=$p5_inv; inc_ok=$p5_verified
    pr5_run "$ab_name" monolithic "$@" --no-incremental
    if [ -z "$inc_secs" ] || [ -z "$p5_secs" ]; then
      return
    fi
    # Soundness gate: the incremental path is a pure perf feature, so a
    # verdict or invariant diff across modes fails the whole bench.
    if [ "$inc_ok" != "$p5_verified" ] || [ "$inc_inv" != "$p5_inv" ]; then
      printf '%-14s PARITY FAIL: verdict/invariant differs across modes\n' \
        "$ab_name"
      FAIL=1
    fi
    awk -v n="$ab_name" -v iw="$inc_secs" -v mw="$p5_secs" \
        -v ih="${inc_houd:-0}" -v mh="${p5_houd:-0}" 'BEGIN {
      if (iw > 0 && ih > 0)
        printf "%-14s speedup: wall %.2fx, houdini checks %.2fx\n",
               n, mw / iw, mh / ih }'
    if awk -v r="${inc_recheck:-0}" -v b="$RECHECK_BUDGET" \
           'BEGIN { exit !(r > b) }'; then
      printf '%-14s RECHECK BUDGET FAIL: %ss > %ss\n' \
        "$ab_name" "$inc_recheck" "$RECHECK_BUDGET"
      FAIL=1
    fi
  }
  for name in $PROTOS; do
    pr5_ab "$name" "$BIN" "$name"
  done
  for f in $SHARPIE_PROTOS; do
    pr5_ab "$(basename "$f" .sharpie)" "$SHARPIE_BIN" "$f"
  done
  echo "wrote $OUT"
  exit $FAIL
fi

if [ "$1" = "--bench-pr10" ]; then
  OUT=${OUT:-BENCH_PR10.json}
  # Three-way A/B/C around the model-guided refinement loop: eager
  # (--no-incremental: every clause fully grounded in a fresh context),
  # coarse (--no-refine: incremental contexts with the whole-clause
  # escalation of PR 5), and refine (the default CEGAR loop). ticket_lock
  # is the headline case: its full template search is formula-bound, and
  # the refinement loop is what keeps each Houdini check lean.
  PROTOS=${PROTOS:-"increment ticket-mutex one-third"}
  SHARPIE_PROTOS=${SHARPIE_PROTOS:-"examples/protocols/ticket_lock.sharpie"}
  PR10_TIMEOUT=${PR10_TIMEOUT:-300}
  HEADLINE=${HEADLINE:-ticket_lock}
  # Wall gates: on the headline protocol the refinement loop must be the
  # strictly fastest mode, by these factors. (Eager wall is long-tailed
  # on a loaded host -- 53-69s observed for the same binary -- so the
  # eager factor is set below the ~2.3x worst measured, not at the ~3x
  # best; the stable >=3x claim is gated on per-check cost below.)
  EAGER_SPEEDUP=${EAGER_SPEEDUP:-1.8}
  COARSE_SPEEDUP=${COARSE_SPEEDUP:-1.2}
  # Check-cost gates: the tentpole claim is that refinement kills the
  # per-check instance bloat. The refine-mode mean Houdini check on the
  # headline protocol must (a) sit under a third of the BENCH_PR5
  # incremental baseline (293ms mean on ticket_lock; see BENCH_PR5.json)
  # and (b) beat the same run's coarse-mode mean by CHECK_SPEEDUP
  # (measured ~7x; same host and load, so this ratio is noise-immune).
  HOUDINI_MS_BUDGET=${HOUDINI_MS_BUDGET:-98}
  CHECK_SPEEDUP=${CHECK_SPEEDUP:-3}
  # The recorded BENCH_PR5 incremental wall on the headline protocol, for
  # the cross-PR ratio report (measured fresh on whatever host ran PR 5).
  PR5_INC_WALL=${PR5_INC_WALL:-32.901}
  FAIL=0
  printf '{"meta":{"nproc":%s,"eager_speedup":%s,"coarse_speedup":%s,"check_speedup":%s,"houdini_ms_budget":%s,"pr5_inc_wall":%s,"timeout":%s}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$EAGER_SPEEDUP" "$COARSE_SPEEDUP" \
    "$CHECK_SPEEDUP" "$HOUDINI_MS_BUDGET" "$PR5_INC_WALL" "$PR10_TIMEOUT" \
    > "$OUT"
  pr10_run() { # $1=display name $2=mode $3...=command; fills p10_* globals
    p10_name=$1; p10_mode=$2; shift 2
    p10_out=$(timeout "$PR10_TIMEOUT" "$@" --stats --json 2>/dev/null)
    p10_line=$(printf '%s\n' "$p10_out" | grep '^{' | head -1)
    # Everything from "inferred cardinalities:" down is the rendered
    # invariant (set bodies + atoms) -- timing-free, so it diffs cleanly
    # across modes.
    p10_inv=$(printf '%s\n' "$p10_out" | sed -n '/^inferred cardinalities:/,$p')
    if [ -z "$p10_line" ]; then
      printf '{"mode":"%s","protocol":"%s","error":"timeout"}\n' \
        "$p10_mode" "$p10_name" >> "$OUT"
      p10_secs=; p10_houdini_mean=; p10_exhausted=; p10_verified=
      printf '%-14s %-8s TIMEOUT\n' "$p10_name" "$p10_mode"
      FAIL=1
      return
    fi
    printf '{"mode":"%s",%s\n' "$p10_mode" "${p10_line#?}" >> "$OUT"
    p10_secs=$(printf '%s' "$p10_line" \
               | sed -n 's/.*"synth_seconds":\([0-9.]*\).*/\1/p')
    p10_houdini_mean=$(printf '%s' "$p10_line" | sed -n \
      's/.*"hist_smt_ms\.houdini": {[^}]*"mean": \([0-9.]*\).*/\1/p')
    p10_exhausted=$(printf '%s' "$p10_line" \
      | sed -n 's/.*"ctr_refine_budget_exhausted": \([0-9]*\).*/\1/p')
    p10_verified=$(printf '%s' "$p10_line" \
                   | sed -n 's/.*"verified":\(true\|false\).*/\1/p')
    p10_ctrs=$(printf '%s' "$p10_line" | grep -oE \
      '"ctr_(refine_instances_asserted|refine_full_groundings|manifest_instances)": [0-9]+' \
      | tr '\n' ' ')
    printf '%-14s %-8s %8ss  houdini_mean=%-8sms %s\n' \
      "$p10_name" "$p10_mode" "${p10_secs:-?}" "${p10_houdini_mean:-?}" \
      "$p10_ctrs"
  }
  pr10_abc() { # $1=display name $2...=command (without mode flags)
    abc_name=$1; shift
    pr10_run "$abc_name" eager "$@" --no-incremental
    eag_secs=$p10_secs; eag_inv=$p10_inv; eag_ok=$p10_verified
    pr10_run "$abc_name" coarse "$@" --no-refine
    crs_secs=$p10_secs; crs_mean=$p10_houdini_mean
    crs_inv=$p10_inv; crs_ok=$p10_verified
    pr10_run "$abc_name" refine "$@"
    ref_secs=$p10_secs; ref_mean=$p10_houdini_mean
    # Soundness gate: refinement is a pure perf feature, so any verdict or
    # invariant difference across the three modes fails the whole bench.
    if [ "$eag_ok" != "$p10_verified" ] || [ "$crs_ok" != "$p10_verified" ] \
       || [ "$eag_inv" != "$p10_inv" ] || [ "$crs_inv" != "$p10_inv" ]; then
      printf '%-14s PARITY FAIL: verdict/invariant differs across modes\n' \
        "$abc_name"
      FAIL=1
    fi
    # Termination-path gate: the Fig. 6 family must converge inside the
    # refinement budget -- a nonzero exhaustion count means the loop only
    # terminated via the full-grounding fallback.
    if [ -n "$p10_exhausted" ] && [ "$p10_exhausted" -ne 0 ]; then
      printf '%-14s BUDGET FAIL: %s refinement budget exhaustions\n' \
        "$abc_name" "$p10_exhausted"
      FAIL=1
    fi
    if [ -z "$eag_secs" ] || [ -z "$ref_secs" ]; then
      return
    fi
    awk -v n="$abc_name" -v e="$eag_secs" -v c="${crs_secs:-0}" \
        -v r="$ref_secs" 'BEGIN {
      if (r > 0 && c > 0)
        printf "%-14s wall: %.2fx vs eager, %.2fx vs coarse\n", n, e/r, c/r
      else if (r > 0)
        printf "%-14s wall: %.2fx vs eager\n", n, e/r }'
    if [ "$abc_name" = "$HEADLINE" ]; then
      if awk -v e="$eag_secs" -v r="$ref_secs" -v k="$EAGER_SPEEDUP" \
             'BEGIN { exit !(r * k > e) }'; then
        printf '%-14s WALL FAIL: eager %ss / refine %ss < %sx\n' \
          "$abc_name" "$eag_secs" "$ref_secs" "$EAGER_SPEEDUP"
        FAIL=1
      fi
      if [ -z "$crs_secs" ] || \
         awk -v c="$crs_secs" -v r="$ref_secs" -v k="$COARSE_SPEEDUP" \
             'BEGIN { exit !(r * k > c) }'; then
        printf '%-14s WALL FAIL: coarse %ss / refine %ss < %sx\n' \
          "$abc_name" "${crs_secs:-?}" "$ref_secs" "$COARSE_SPEEDUP"
        FAIL=1
      fi
      if [ -z "$ref_mean" ] || \
         awk -v m="$ref_mean" -v b="$HOUDINI_MS_BUDGET" \
             'BEGIN { exit !(m > b) }'; then
        printf '%-14s CHECK FAIL: houdini mean %sms > %sms budget\n' \
          "$abc_name" "${ref_mean:-?}" "$HOUDINI_MS_BUDGET"
        FAIL=1
      fi
      if [ -z "$crs_mean" ] || [ -z "$ref_mean" ] || \
         awk -v c="$crs_mean" -v r="$ref_mean" -v k="$CHECK_SPEEDUP" \
             'BEGIN { exit !(r * k > c) }'; then
        printf '%-14s CHECK FAIL: coarse mean %sms / refine mean %sms < %sx\n' \
          "$abc_name" "${crs_mean:-?}" "${ref_mean:-?}" "$CHECK_SPEEDUP"
        FAIL=1
      else
        awk -v c="$crs_mean" -v r="$ref_mean" 'BEGIN {
          printf "%-14s houdini check mean: %.1fms vs %.1fms coarse (%.1fx)\n",
                 "", r, c, c / r }'
      fi
      awk -v p="$PR5_INC_WALL" -v r="$ref_secs" 'BEGIN {
        if (r > 0) printf "%-14s vs BENCH_PR5 incremental wall (%ss): %.2fx\n",
                          "", p, p / r }'
    fi
  }
  for name in $PROTOS; do
    pr10_abc "$name" "$BIN" "$name"
  done
  for f in $SHARPIE_PROTOS; do
    pr10_abc "$(basename "$f" .sharpie)" "$SHARPIE_BIN" "$f"
  done
  echo "wrote $OUT"
  exit $FAIL
fi

if [ "$1" = "--bench-pr7" ]; then
  OUT=${OUT:-BENCH_PR7.json}
  SHARPIED_BIN=${SHARPIED_BIN:-build/tools/sharpied}
  PROTODIR=${PROTODIR:-examples/protocols}
  # The quick protocol plus a search-heavy one: increment pins the fixed
  # per-request floor, ticket_lock shows the cache absorbing real work.
  PR7_PROTOS=${PR7_PROTOS:-"increment.sharpie ticket_lock.sharpie"}
  MIN_SPEEDUP=${MIN_SPEEDUP:-10}
  # Below this cold client wall the request is all fixed overhead (process
  # start, parse, framing -- identical cold and warm), so the speedup gate
  # would measure noise, not the cache.
  MIN_COLD=${MIN_COLD:-0.5}
  FAIL=0
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT
  SOCK="$WORK/sharpied.sock"
  "$SHARPIED_BIN" --listen "unix:$SOCK" --store "$WORK/store" \
    > "$WORK/daemon.log" 2>&1 &
  DPID=$!
  i=0
  while [ $i -lt 100 ]; do
    grep -q "listening on" "$WORK/daemon.log" 2>/dev/null && break
    kill -0 "$DPID" 2>/dev/null || { echo "daemon died:"; cat "$WORK/daemon.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
  done
  printf '{"meta":{"nproc":%s,"min_speedup":%s,"min_cold":%s}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$MIN_SPEEDUP" "$MIN_COLD" > "$OUT"
  pr7_wall() { # $1=outfile $2=protocol file; prints client wall seconds
    w0=$(date +%s%N)
    timeout "$TIMEOUT" "$SHARPIE_BIN" --server "unix:$SOCK" "$2" --json \
      > "$1" 2>/dev/null
    w1=$(date +%s%N)
    awk -v a="$w0" -v b="$w1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
  }
  for f in $PR7_PROTOS; do
    file="$PROTODIR/$f"
    name=$(basename "$f" .sharpie)
    cold_wall=$(pr7_wall "$WORK/cold.out" "$file")
    warm_wall=$(pr7_wall "$WORK/warm.out" "$file")
    cold_srv=$(grep '^{' "$WORK/cold.out" | head -1 \
               | sed -n 's/.*"total_seconds":\([0-9.]*\).*/\1/p')
    warm_srv=$(grep '^{' "$WORK/warm.out" | head -1 \
               | sed -n 's/.*"total_seconds":\([0-9.]*\).*/\1/p')
    if [ -z "$cold_srv" ] || [ -z "$warm_srv" ]; then
      printf '{"protocol":"%s","error":"no result"}\n' "$name" >> "$OUT"
      printf '%-14s FAIL: no result (timeout or daemon error)\n' "$name"
      FAIL=1
      continue
    fi
    # Parity gate: everything but the timing-bearing JSON line must be
    # byte-identical -- the warm run replays the stored verdict.
    parity=ok
    grep -v '^{' "$WORK/cold.out" > "$WORK/cold.inv"
    grep -v '^{' "$WORK/warm.out" > "$WORK/warm.inv"
    if ! cmp -s "$WORK/cold.inv" "$WORK/warm.inv"; then
      parity=differs
      printf '%-14s PARITY FAIL: warm output differs from cold\n' "$name"
      FAIL=1
    fi
    # Speedup over end-to-end client wall: the daemon-side warm time
    # underflows the wire format's millisecond resolution, the wall
    # includes it plus the (cache-independent) client overhead.
    speedup=$(awk -v c="$cold_wall" -v w="$warm_wall" \
      'BEGIN { printf "%.1f", (w > 0) ? c / w : 0 }')
    printf '{"protocol":"%s","cold_wall":%s,"warm_wall":%s,"cold_server_seconds":%s,"warm_server_seconds":%s,"speedup":%s,"parity":"%s"}\n' \
      "$name" "$cold_wall" "$warm_wall" "$cold_srv" "$warm_srv" \
      "$speedup" "$parity" >> "$OUT"
    printf '%-14s cold=%ss warm=%ss (server: %ss -> %ss, %sx)\n' \
      "$name" "$cold_wall" "$warm_wall" "$cold_srv" "$warm_srv" "$speedup"
    if awk -v c="$cold_wall" -v m="$MIN_COLD" 'BEGIN { exit !(c >= m) }' &&
       awk -v s="$speedup" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s < m) }'; then
      printf '%-14s SPEEDUP FAIL: %sx < %sx\n' "$name" "$speedup" "$MIN_SPEEDUP"
      FAIL=1
    fi
  done
  stats=$("$SHARPIED_BIN" --ctl "unix:$SOCK" --op cache_stats 2>/dev/null)
  printf '{"cache_stats":%s}\n' "${stats:-null}" >> "$OUT"
  echo "cache_stats: $stats"
  "$SHARPIED_BIN" --ctl "unix:$SOCK" --op shutdown > /dev/null 2>&1
  wait "$DPID" 2>/dev/null
  echo "wrote $OUT"
  exit $FAIL
fi

if [ "$1" = "--bench-pr8" ]; then
  OUT=${OUT:-BENCH_PR8.json}
  SHARPIED_BIN=${SHARPIED_BIN:-build/tools/sharpied}
  PROTODIR=${PROTODIR:-examples/protocols}
  # A search-heavy protocol: fixed request overhead is negligible against
  # the solve, so the A/B isolates the aggregation cost.
  PR8_PROTO=${PR8_PROTO:-ticket_lock.sharpie}
  OVERHEAD_MAX=${OVERHEAD_MAX:-2}   # percent of the baseline cold wall
  ABS_SLACK=${ABS_SLACK:-0.15}      # seconds; scheduler noise floor
  SCRAPES=${SCRAPES:-20}
  FAIL=0
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT

  pr8_boot() { # $1=sock $2=store $3=log $4=extra flags; sets BOOT_PID
    # shellcheck disable=SC2086
    "$SHARPIED_BIN" --listen "unix:$1" --store "$2" $4 > "$3" 2>&1 &
    BOOT_PID=$!
    i=0
    while [ $i -lt 100 ]; do
      grep -q "listening on" "$3" 2>/dev/null && break
      kill -0 "$BOOT_PID" 2>/dev/null || \
        { echo "daemon died:"; cat "$3"; exit 1; }
      sleep 0.1
      i=$((i + 1))
    done
  }
  pr8_wall() { # $1=sock $2=protocol file; prints client wall seconds
    w0=$(date +%s%N)
    timeout "$TIMEOUT" "$SHARPIE_BIN" --server "unix:$1" "$2" \
      > /dev/null 2>&1 || true
    w1=$(date +%s%N)
    awk -v a="$w0" -v b="$w1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
  }

  file="$PROTODIR/$PR8_PROTO"
  name=$(basename "$PR8_PROTO" .sharpie)
  printf '{"meta":{"nproc":%s,"protocol":"%s","overhead_max_pct":%s,"abs_slack_s":%s}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$name" "$OVERHEAD_MAX" "$ABS_SLACK" > "$OUT"

  # Baseline: telemetry stripped entirely.
  SOCK_B="$WORK/base.sock"
  pr8_boot "$SOCK_B" "$WORK/store_base" "$WORK/base.log" "--no-telemetry"
  PID_B=$BOOT_PID
  base_cold=$(pr8_wall "$SOCK_B" "$file")
  base_warm=$(pr8_wall "$SOCK_B" "$file")
  "$SHARPIED_BIN" --ctl "unix:$SOCK_B" --op shutdown > /dev/null 2>&1
  wait "$PID_B" 2>/dev/null

  # Telemetry on (defaults: registry + flight recorder + event capture).
  SOCK_T="$WORK/tele.sock"
  pr8_boot "$SOCK_T" "$WORK/store_tele" "$WORK/tele.log" ""
  PID_T=$BOOT_PID
  tele_cold=$(pr8_wall "$SOCK_T" "$file")
  tele_warm=$(pr8_wall "$SOCK_T" "$file")

  # Metrics endpoint: the cold solve and the tier-1 replay must be
  # visible in the labeled Prometheus counters.
  "$SHARPIE_BIN" --server "unix:$SOCK_T" metrics --format prom \
    > "$WORK/prom.txt" 2>/dev/null
  for want in \
    'sharpie_requests_total{outcome="verified",cache_tier="cold"} 1' \
    'sharpie_requests_total{outcome="verified",cache_tier="t1_hit"} 1' \
    '# TYPE sharpie_requests_total counter'; do
    if ! grep -qF "$want" "$WORK/prom.txt"; then
      printf 'METRICS FAIL: missing %s\n' "$want"
      FAIL=1
    fi
  done

  # Scrape latency: average over SCRAPES Prometheus pulls.
  s0=$(date +%s%N)
  i=0
  while [ $i -lt "$SCRAPES" ]; do
    "$SHARPIE_BIN" --server "unix:$SOCK_T" metrics --format prom > /dev/null 2>&1
    i=$((i + 1))
  done
  s1=$(date +%s%N)
  scrape_ms=$(awk -v a="$s0" -v b="$s1" -v n="$SCRAPES" \
    'BEGIN { printf "%.2f", (b - a) / 1e6 / n }')

  # Flight recorder: measured footprint under its configured ceiling,
  # and dump_trace yields a trace document for the past requests.
  gauges=$("$SHARPIE_BIN" --server "unix:$SOCK_T" metrics 2>/dev/null)
  fb=$(printf '%s' "$gauges" | sed -n 's/.*"flight_bytes":\([0-9.e+]*\).*/\1/p')
  fc=$(printf '%s' "$gauges" | sed -n 's/.*"flight_bytes_ceiling":\([0-9.e+]*\).*/\1/p')
  if [ -z "$fb" ] || [ -z "$fc" ] || \
     ! awk -v b="$fb" -v c="$fc" 'BEGIN { exit !(b <= c && c > 0) }'; then
    printf 'FLIGHT FAIL: bytes=%s ceiling=%s\n' "${fb:-?}" "${fc:-?}"
    FAIL=1
  fi
  if ! "$SHARPIED_BIN" --ctl "unix:$SOCK_T" --op dump_trace 2>/dev/null \
       | grep -q '"traceEvents"'; then
    echo "DUMP_TRACE FAIL: no trace document"
    FAIL=1
  fi
  "$SHARPIED_BIN" --ctl "unix:$SOCK_T" --op shutdown > /dev/null 2>&1
  wait "$PID_T" 2>/dev/null

  # Overhead gate: telemetry cold wall within OVERHEAD_MAX percent of the
  # baseline, with ABS_SLACK absorbing scheduler noise on fast solves.
  overhead_pct=$(awk -v t="$tele_cold" -v b="$base_cold" \
    'BEGIN { printf "%.2f", (b > 0) ? (t - b) * 100 / b : 0 }')
  if ! awk -v t="$tele_cold" -v b="$base_cold" -v m="$OVERHEAD_MAX" \
         -v s="$ABS_SLACK" \
         'BEGIN { exit !((t - b) <= b * m / 100 || (t - b) <= s) }'; then
    printf 'OVERHEAD FAIL: telemetry cold %ss vs baseline %ss (%s%%)\n' \
      "$tele_cold" "$base_cold" "$overhead_pct"
    FAIL=1
  fi

  printf '{"protocol":"%s","baseline_cold_wall":%s,"baseline_warm_wall":%s,"telemetry_cold_wall":%s,"telemetry_warm_wall":%s,"overhead_pct":%s,"scrape_ms":%s,"flight_bytes":%s,"flight_bytes_ceiling":%s}\n' \
    "$name" "$base_cold" "$base_warm" "$tele_cold" "$tele_warm" \
    "$overhead_pct" "$scrape_ms" "${fb:-0}" "${fc:-0}" >> "$OUT"
  printf '%-14s base cold=%ss warm=%ss | telemetry cold=%ss warm=%ss (%s%% overhead)\n' \
    "$name" "$base_cold" "$base_warm" "$tele_cold" "$tele_warm" "$overhead_pct"
  printf '%-14s scrape=%sms flight=%s/%s bytes\n' "$name" "$scrape_ms" \
    "${fb:-0}" "${fc:-0}"
  echo "wrote $OUT"
  exit $FAIL
fi

if [ "$1" = "--bench-pr9" ]; then
  OUT=${OUT:-BENCH_PR9.json}
  SHARPIED_BIN=${SHARPIED_BIN:-build/tools/sharpied}
  PROTODIR=${PROTODIR:-examples/protocols}
  PR9_PROTO=${PR9_PROTO:-increment.sharpie}
  WORKERS=${WORKERS:-2}
  QUEUE_DEPTH=${QUEUE_DEPTH:-4}
  CAPACITY=$((WORKERS + QUEUE_DEPTH))
  CLIENTS=${CLIENTS:-$((CAPACITY * 4))}
  # Per-tuple latency keeping each admitted solve slow enough that the
  # storm actually saturates the queue (a faulted request also bypasses
  # the cache, so identical texts cannot collapse into warm hits).
  HOLD_MS=${HOLD_MS:-2000}
  FAIL=0
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT

  SOCK="$WORK/sharpied.sock"
  "$SHARPIED_BIN" --listen "unix:$SOCK" --store "$WORK/store" \
    --request-workers "$WORKERS" --queue-depth "$QUEUE_DEPTH" \
    > "$WORK/daemon.log" 2>&1 &
  DPID=$!
  i=0
  while [ $i -lt 100 ]; do
    grep -q "listening on" "$WORK/daemon.log" 2>/dev/null && break
    kill -0 "$DPID" 2>/dev/null || \
      { echo "daemon died:"; cat "$WORK/daemon.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
  done

  file="$PROTODIR/$PR9_PROTO"
  printf '{"meta":{"nproc":%s,"protocol":"%s","request_workers":%s,"queue_depth":%s,"capacity":%s,"clients":%s,"hold_ms":%s}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$(basename "$PR9_PROTO" .sharpie)" \
    "$WORKERS" "$QUEUE_DEPTH" "$CAPACITY" "$CLIENTS" "$HOLD_MS" > "$OUT"

  # The storm: CLIENTS concurrent verifies, each with retries off so a
  # shed comes straight back as exit 5. Every client records its exit
  # code and wall; `timeout` turns a hung client into exit 124.
  storm0=$(date +%s%N)
  CPIDS=
  i=0
  while [ $i -lt "$CLIENTS" ]; do
    i=$((i + 1))
    (
      c0=$(date +%s%N)
      timeout "$TIMEOUT" "$SHARPIE_BIN" --server "unix:$SOCK" "$file" \
        --faults "worker_task:latency=${HOLD_MS}@always" \
        --retries 0 > /dev/null 2>&1
      code=$?
      c1=$(date +%s%N)
      awk -v a="$c0" -v b="$c1" -v c="$code" \
        'BEGIN { printf "%d %.3f\n", c, (b - a) / 1e9 }' \
        > "$WORK/client.$i"
    ) &
    CPIDS="$CPIDS $!"
  done

  # Mid-storm: introspection must answer while every worker is busy.
  sleep 1
  "$SHARPIED_BIN" --ctl "unix:$SOCK" --op health > "$WORK/health.json" 2>&1
  health=fail
  grep -q '"ok":true' "$WORK/health.json" && health=ok
  [ "$health" = ok ] || { echo "HEALTH FAIL: no answer mid-storm"; FAIL=1; }

  # Wait on the clients only -- a bare `wait` would also wait on the
  # daemon, which does not exit until the shutdown op below.
  for p in $CPIDS; do
    wait "$p" 2>/dev/null
  done
  storm1=$(date +%s%N)
  storm_wall=$(awk -v a="$storm0" -v b="$storm1" \
    'BEGIN { printf "%.3f", (b - a) / 1e9 }')

  # Classify the client outcomes.
  cat "$WORK"/client.* > "$WORK/clients.txt"
  summary=$(awk '
    { code = $1; wall = $2 }
    code == 0   { ok++;   okw[ok] = wall }
    code == 5   { shed++; sw[shed] = wall }
    code == 124 { hung++ }
    code != 0 && code != 5 && code != 124 { other++ }
    END {
      omin = omax = (ok ? okw[1] : 0)
      for (i = 1; i <= ok; i++) { if (okw[i] < omin) omin = okw[i]
                                  if (okw[i] > omax) omax = okw[i] }
      smin = smax = (shed ? sw[1] : 0); ssum = 0
      for (i = 1; i <= shed; i++) { if (sw[i] < smin) smin = sw[i]
                                    if (sw[i] > smax) smax = sw[i]
                                    ssum += sw[i] }
      printf "%d %d %d %d %.3f %.3f %.3f %.3f %.3f",
        ok+0, shed+0, hung+0, other+0, omin, omax, smin, smax,
        (shed ? ssum / shed : 0)
    }' "$WORK/clients.txt")
  ok=$(echo "$summary" | cut -d' ' -f1)
  shed=$(echo "$summary" | cut -d' ' -f2)
  hung=$(echo "$summary" | cut -d' ' -f3)
  other=$(echo "$summary" | cut -d' ' -f4)
  ok_min=$(echo "$summary" | cut -d' ' -f5)
  ok_max=$(echo "$summary" | cut -d' ' -f6)
  shed_min=$(echo "$summary" | cut -d' ' -f7)
  shed_max=$(echo "$summary" | cut -d' ' -f8)
  shed_mean=$(echo "$summary" | cut -d' ' -f9)

  # Gates: nothing hangs, nothing errors, the books balance, admission
  # held the line, and the surplus was shed.
  [ "$hung" -eq 0 ] || { echo "HUNG FAIL: $hung clients never returned"; FAIL=1; }
  [ "$other" -eq 0 ] || { echo "EXIT FAIL: $other clients exited oddly"; FAIL=1; }
  [ $((ok + shed + hung + other)) -eq "$CLIENTS" ] || \
    { echo "COUNT FAIL: $ok+$shed+$hung+$other != $CLIENTS"; FAIL=1; }
  [ "$ok" -le "$CAPACITY" ] || \
    { echo "ADMISSION FAIL: $ok completed > capacity $CAPACITY"; FAIL=1; }
  [ "$shed" -ge $((CLIENTS - CAPACITY)) ] || \
    { echo "SHED FAIL: only $shed shed of >= $((CLIENTS - CAPACITY))"; FAIL=1; }

  status=$("$SHARPIED_BIN" --ctl "unix:$SOCK" --op status 2>/dev/null)
  printf '{"storm_wall":%s,"completed":{"count":%s,"wall_min":%s,"wall_max":%s},"shed":{"count":%s,"wall_min":%s,"wall_mean":%s,"wall_max":%s},"hung":%s,"health_mid_storm":"%s"}\n' \
    "$storm_wall" "$ok" "$ok_min" "$ok_max" "$shed" "$shed_min" \
    "$shed_mean" "$shed_max" "$hung" "$health" >> "$OUT"
  printf '{"status":%s}\n' "${status:-null}" >> "$OUT"
  printf 'storm: %s clients -> %s completed, %s shed, %s hung in %ss\n' \
    "$CLIENTS" "$ok" "$shed" "$hung" "$storm_wall"
  printf 'shed wall: min=%ss mean=%ss max=%ss | completed wall: %ss..%ss\n' \
    "$shed_min" "$shed_mean" "$shed_max" "$ok_min" "$ok_max"
  printf 'health mid-storm: %s\n' "$health"

  "$SHARPIED_BIN" --ctl "unix:$SOCK" --op shutdown > /dev/null 2>&1
  wait "$DPID" 2>/dev/null
  echo "wrote $OUT"
  exit $FAIL
fi

if [ "$1" = "--bench-pr1" ]; then
  OUT=${OUT:-BENCH_PR1.json}
  # Multi-tuple protocols where the set-tuple search dominates, plus the
  # single-tuple ticket-mutex as a no-parallelism-available control.
  PROTOS=${PROTOS:-"ticket one-third filter ticket-mutex"}
  MAXW=${MAXW:-$(nproc 2>/dev/null || echo 4)}
  # First line records the host so speedup numbers are interpretable: on a
  # single-core machine workers interleave and "max" degenerates to 1.
  printf '{"meta":{"nproc":%s,"max_workers":%s}}\n' \
    "$(nproc 2>/dev/null || echo 0)" "$MAXW" > "$OUT"
  for name in $PROTOS; do
    for w in 1 "$MAXW"; do
      line=$(timeout "$TIMEOUT" "$BIN" "$name" --workers "$w" --json \
             | grep '^{' | head -1)
      if [ -n "$line" ]; then
        printf '%s\n' "$line" >> "$OUT"
      else
        printf '{"protocol":"%s","workers":%s,"error":"timeout"}\n' \
          "$name" "$w" >> "$OUT"
      fi
      printf '%-14s workers=%-3s %s\n' "$name" "$w" "${line:-TIMEOUT}"
    done
  done
  echo "wrote $OUT"
  exit 0
fi

for name in $($BIN --list); do
  start=$(date +%s%N)
  out=$(timeout "$TIMEOUT" "$BIN" "$name" 2>&1)
  code=$?
  end=$(date +%s%N)
  ms=$(( (end - start) / 1000000 ))
  status=$(printf '%s' "$out" | grep -oE 'VERIFIED|UNSAFE|NOT VERIFIED' | head -1)
  [ $code -eq 124 ] && status=TIMEOUT
  printf '%-22s %-14s %6dms\n' "$name" "${status:-ERROR}" "$ms"
done
