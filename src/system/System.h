//===- system/System.h - Parameterized system models ------------*- C++ -*-===//
//
// Part of sharpie. Models parameterized systems in the sense of paper
// Sec. 4: a tuple of global integer variables, a tuple of local variables
// modeled as arrays indexed by thread identifier, a constraint init(g, L),
// a local transition relation next_T, and a safety constraint safe(g, L).
//
// Asynchronous systems (Eq. 1) pick one mover t' and perform a point-wise
// update L' = L[t' <- l']; synchronous systems (the heard-of round model of
// the one-third rule) constrain every thread's post-state with a universally
// quantified per-thread relation. Guards and relations may freely use
// cardinality terms (the filter lock's guard and the one-third rule's round
// relation do).
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SYSTEM_SYSTEM_H
#define SHARPIE_SYSTEM_SYSTEM_H

#include "logic/Eval.h"
#include "logic/Term.h"
#include "logic/TermOps.h"

#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sharpie {
namespace sys {

enum class Composition { Async, Sync };

/// A structural misuse of the model-building API: wrong sort, wrong
/// composition mode, an undeclared variable, two writes to one array.
/// These paths are reachable from user input via the frontend's lowering,
/// so they throw instead of asserting -- release builds (NDEBUG) must
/// reject a broken model, not silently build formulas over it. The
/// frontend converts the throw into a positioned diagnostic.
class ModelError : public std::runtime_error {
public:
  explicit ModelError(const std::string &Msg) : std::runtime_error(Msg) {}
};

/// One guarded command of an asynchronous system, executed by the mover
/// thread; or, for synchronous systems, a whole-round relation.
struct Transition {
  std::string Name;
  /// Enabling condition over pre-state globals and reads at self().
  logic::Term Guard;
  /// Global updates: variable -> post value term. Missing globals framed.
  std::map<logic::Term, logic::Term> GlobalUpd;
  /// Local updates: array -> post value term (for the mover). Missing
  /// arrays framed.
  std::map<logic::Term, logic::Term> LocalUpd;
  /// Nondeterministic choice variables usable in Guard and updates. The
  /// symbolic semantics leaves them unconstrained; the explicit checker
  /// enumerates them (Int choices over [ChoiceLo, ChoiceHi], Tid choices
  /// over the thread domain).
  std::vector<logic::Term> Choices;
  std::vector<logic::Term> TidChoices;
  /// Point-wise writes at an arbitrary index (not necessarily the mover),
  /// e.g. a garbage collector coloring a nondeterministically chosen
  /// address: Arr[Idx] <- Val. At most one write per array per transition
  /// (the locality the update axiom exploits).
  struct ArrayWrite {
    logic::Term Arr;
    logic::Term Idx;
    logic::Term Val;
  };
  std::vector<ArrayWrite> Writes;
  /// Sync systems only: per-thread relation over pre and post state, with
  /// the thread denoted by self(). Set via ParamSystem::addSyncRound.
  logic::Term SyncRelation;
};

/// A parameterized protocol.
class ParamSystem {
public:
  ParamSystem(logic::TermManager &M, std::string Name,
              Composition Mode = Composition::Async);

  logic::TermManager &manager() const { return M; }
  const std::string &name() const { return SystemName; }
  Composition mode() const { return Mode; }

  // -- State ---------------------------------------------------------------

  /// Declares a global integer variable.
  logic::Term addGlobal(const std::string &Name);

  /// Declares a per-thread local variable (an array Tid -> Int).
  logic::Term addLocal(const std::string &Name);

  /// Declares \p N (a previously added global) as the symbolic number of
  /// threads, i.e. Def(N) = #{t | true}.
  void setSizeVar(logic::Term N);
  std::optional<logic::Term> sizeVar() const { return SizeVar; }

  const std::vector<logic::Term> &globals() const { return Globals; }
  const std::vector<logic::Term> &locals() const { return Locals; }

  /// The designated Tid variable denoting the acting thread in guards,
  /// updates and sync relations.
  logic::Term self() const { return Self; }

  /// Read of local array \p Arr at the acting thread.
  logic::Term my(logic::Term Arr) const;

  /// The post-state twin of a global or local variable.
  logic::Term post(logic::Term V) const;

  /// Substitution renaming every pre-state variable to its post twin.
  const logic::Subst &primeSubst() const { return Prime; }

  // -- Behaviour --------------------------------------------------------------

  void setInit(logic::Term Init) { InitFormula = Init; }
  void setSafe(logic::Term Safe) { SafeFormula = Safe; }
  logic::Term init() const { return InitFormula; }
  logic::Term safe() const { return SafeFormula; }

  /// Adds an asynchronous guarded command. Returns it for further setup.
  Transition &addTransition(const std::string &Name, logic::Term Guard);

  /// Adds a synchronous round: \p Relation constrains pre and post state of
  /// the thread denoted by self(); the round applies it to every thread.
  Transition &addSyncRound(const std::string &Name, logic::Term Relation);

  /// Creates a fresh nondeterministic Int choice for transition \p T.
  logic::Term addChoice(Transition &T, const std::string &Name);

  /// Creates a fresh nondeterministic Tid choice for transition \p T.
  logic::Term addTidChoice(Transition &T, const std::string &Name);

  const std::vector<Transition> &transitions() const { return Transitions; }

  // -- Symbolic semantics -----------------------------------------------------

  /// The full transition relation of \p T over pre and post state: guard,
  /// updates as store equations at self(), and frame equalities. For sync
  /// rounds: forall p: Relation[p] (plus global frame).
  logic::Term transitionFormula(const Transition &T) const;

  /// Pairs (K, Body) registering external cardinalities with the reduction
  /// pipeline; nonempty iff a size variable is set.
  std::vector<std::pair<logic::Term, logic::Term>> externalCounters() const;

  // -- Explicit-state hook -------------------------------------------------------

  using State = logic::FiniteModel;
  /// Optional protocol-provided initial states for the explicit checker
  /// (invoked with the instance size N). When absent, the all-zero state is
  /// used and validated against init().
  std::function<std::vector<State>(int64_t)> CustomInit;
  /// Optional protocol-provided successor function for the explicit
  /// checker (needed for sync rounds, whose generic inversion is hard).
  std::function<std::vector<State>(const State &)> CustomStepper;

  /// Hint for the explicit checker: inclusive range of values enumerated
  /// for choice variables.
  int64_t ChoiceLo = 0, ChoiceHi = 2;

  /// Rebuilds this system inside another TermManager. All formulas are
  /// structurally translated (variables correspond by name), so the clone
  /// is observationally identical for the symbolic pipeline. CustomInit and
  /// CustomStepper are NOT cloned: they close over terms of the original
  /// manager, and the explicit checker runs once on the original system
  /// (parallel workers only consume its states). The destination manager
  /// must outlive the clone.
  std::unique_ptr<ParamSystem> cloneInto(logic::TermManager &Dst) const;

private:
  logic::TermManager &M;
  std::string SystemName;
  Composition Mode;
  std::vector<logic::Term> Globals;
  std::vector<logic::Term> Locals;
  std::optional<logic::Term> SizeVar;
  logic::Term Self;
  logic::Term InitFormula;
  logic::Term SafeFormula;
  std::vector<Transition> Transitions;
  logic::Subst Prime;
  std::map<logic::Term, logic::Term> PostOf;
};

/// A proof obligation: \p Psi must be unsatisfiable.
struct Obligation {
  std::string Name;
  logic::Term Psi;
};

/// The three Horn clauses of the safety proof rule (paper Sec. 3) for a
/// *concrete* invariant candidate: (a) init /\ !Inv, (b) per transition
/// Inv /\ next /\ !Inv', (c) Inv /\ !safe. All must be unsat.
std::vector<Obligation> safetyObligations(const ParamSystem &Sys,
                                          logic::Term Inv);

} // namespace sys
} // namespace sharpie

#endif // SHARPIE_SYSTEM_SYSTEM_H
