//===- system/System.cpp - Parameterized system models -----------------------===//
//
// Part of sharpie. See System.h.
//
//===----------------------------------------------------------------------===//

#include "system/System.h"

using namespace sharpie;
using namespace sharpie::sys;
using logic::Kind;
using logic::Sort;
using logic::Subst;
using logic::Term;
using logic::TermManager;

ParamSystem::ParamSystem(TermManager &M, std::string Name, Composition Mode)
    : M(M), SystemName(std::move(Name)), Mode(Mode),
      Self(M.mkVar("self%" + SystemName, Sort::Tid)),
      InitFormula(M.mkTrue()), SafeFormula(M.mkTrue()) {}

Term ParamSystem::addGlobal(const std::string &Name) {
  Term V = M.mkVar(Name, Sort::Int);
  Term VP = M.mkVar(Name + "'", Sort::Int);
  Globals.push_back(V);
  Prime[V] = VP;
  PostOf[V] = VP;
  return V;
}

Term ParamSystem::addLocal(const std::string &Name) {
  Term V = M.mkVar(Name, Sort::Array);
  Term VP = M.mkVar(Name + "'", Sort::Array);
  Locals.push_back(V);
  Prime[V] = VP;
  PostOf[V] = VP;
  return V;
}

void ParamSystem::setSizeVar(Term N) {
  if (N.sort() != Sort::Int)
    throw ModelError("size variable '" + N->name() +
                     "' must be an Int global");
  SizeVar = N;
}

Term ParamSystem::my(Term Arr) const {
  if (Arr.sort() != Sort::Array)
    throw ModelError("my() expects a local array, got '" +
                     logic::toString(Arr) + "'");
  return M.mkRead(Arr, Self);
}

Term ParamSystem::post(Term V) const {
  auto It = PostOf.find(V);
  if (It == PostOf.end())
    throw ModelError("post() of undeclared variable '" + logic::toString(V) +
                     "' in system '" + SystemName + "'");
  return It->second;
}

Transition &ParamSystem::addTransition(const std::string &Name, Term Guard) {
  if (Mode != Composition::Async)
    throw ModelError("transition '" + Name +
                     "' on a synchronous system; use a round relation");
  Transition T;
  T.Name = Name;
  T.Guard = Guard;
  Transitions.push_back(std::move(T));
  return Transitions.back();
}

Transition &ParamSystem::addSyncRound(const std::string &Name,
                                      Term Relation) {
  if (Mode != Composition::Sync)
    throw ModelError("sync round '" + Name +
                     "' on an asynchronous system; use a transition");
  Transition T;
  T.Name = Name;
  T.Guard = M.mkTrue();
  T.SyncRelation = Relation;
  Transitions.push_back(std::move(T));
  return Transitions.back();
}

Term ParamSystem::addChoice(Transition &T, const std::string &Name) {
  Term C = M.freshVar("choice_" + Name, Sort::Int);
  T.Choices.push_back(C);
  return C;
}

Term ParamSystem::addTidChoice(Transition &T, const std::string &Name) {
  Term C = M.freshVar("tchoice_" + Name, Sort::Tid);
  T.TidChoices.push_back(C);
  return C;
}

Term ParamSystem::transitionFormula(const Transition &T) const {
  std::vector<Term> Conj;
  if (Mode == Composition::Sync) {
    if (T.SyncRelation.isNull())
      throw ModelError("sync round '" + T.Name + "' has no relation");
    // forall p: Relation[p]; globals framed unless updated.
    Term P = M.freshVar("p_rnd", Sort::Tid);
    Subst S;
    S[Self] = P;
    Conj.push_back(M.mkForall({P}, substitute(M, T.SyncRelation, S)));
  } else {
    Conj.push_back(T.Guard);
    for (Term L : Locals) {
      auto It = T.LocalUpd.find(L);
      if (It != T.LocalUpd.end()) {
        Conj.push_back(M.mkEq(post(L), M.mkStore(L, Self, It->second)));
        continue;
      }
      const Transition::ArrayWrite *W = nullptr;
      for (const Transition::ArrayWrite &AW : T.Writes)
        if (AW.Arr == L) {
          if (W)
            throw ModelError("transition '" + T.Name +
                             "' writes array '" + L->name() +
                             "' more than once");
          W = &AW;
        }
      if (W)
        Conj.push_back(M.mkEq(post(L), M.mkStore(L, W->Idx, W->Val)));
      else
        Conj.push_back(M.mkEq(post(L), L));
    }
  }
  for (Term G : Globals) {
    auto It = T.GlobalUpd.find(G);
    Conj.push_back(M.mkEq(post(G),
                          It != T.GlobalUpd.end() ? It->second : G));
  }
  return M.mkAnd(Conj);
}

std::unique_ptr<ParamSystem> ParamSystem::cloneInto(
    logic::TermManager &Dst) const {
  auto Out = std::make_unique<ParamSystem>(Dst, SystemName, Mode);
  logic::TermTranslator Tr(Dst);
  for (Term G : Globals)
    Out->addGlobal(G->name());
  for (Term L : Locals)
    Out->addLocal(L->name());
  if (SizeVar)
    Out->setSizeVar(Tr(*SizeVar));
  Out->setInit(Tr(InitFormula));
  Out->setSafe(Tr(SafeFormula));
  for (const Transition &T : Transitions) {
    Transition NT;
    NT.Name = T.Name;
    NT.Guard = Tr(T.Guard);
    for (const auto &[V, U] : T.GlobalUpd)
      NT.GlobalUpd[Tr(V)] = Tr(U);
    for (const auto &[V, U] : T.LocalUpd)
      NT.LocalUpd[Tr(V)] = Tr(U);
    for (Term C : T.Choices)
      NT.Choices.push_back(Tr(C));
    for (Term C : T.TidChoices)
      NT.TidChoices.push_back(Tr(C));
    for (const Transition::ArrayWrite &W : T.Writes)
      NT.Writes.push_back({Tr(W.Arr), Tr(W.Idx), Tr(W.Val)});
    if (!T.SyncRelation.isNull())
      NT.SyncRelation = Tr(T.SyncRelation);
    Out->Transitions.push_back(std::move(NT));
  }
  Out->ChoiceLo = ChoiceLo;
  Out->ChoiceHi = ChoiceHi;
  return Out;
}

std::vector<std::pair<Term, Term>> ParamSystem::externalCounters() const {
  std::vector<std::pair<Term, Term>> Out;
  if (SizeVar)
    Out.push_back({*SizeVar, M.mkTrue()});
  return Out;
}

std::vector<Obligation> sharpie::sys::safetyObligations(const ParamSystem &Sys,
                                                        Term Inv) {
  TermManager &M = Sys.manager();
  std::vector<Obligation> Out;
  Out.push_back({"init", M.mkAnd(Sys.init(), M.mkNot(Inv))});
  Term InvPost = substitute(M, Inv, Sys.primeSubst());
  for (const Transition &T : Sys.transitions())
    Out.push_back({"ind:" + T.Name,
                   M.mkAnd({Inv, Sys.transitionFormula(T),
                            M.mkNot(InvPost)})});
  Out.push_back({"safe", M.mkAnd(Inv, M.mkNot(Sys.safe()))});
  return Out;
}
