//===- resil/Fault.h - Deterministic fault injection ------------*- C++ -*-===//
//
// Part of sharpie. A seeded, replayable fault-injection harness for the
// resilience layer (resil/Resil.h): a FaultPlan names the faults to
// inject (timeouts, Unknowns, exceptions, latency) at the supervised
// sites (`smt_check`, `smt_check_assuming`, `reduce`, `worker_task`,
// `refine`), and a FaultInjector turns the plan into per-invocation
// decisions. The
// serving daemon (serve/Server.h) adds its own sites on top: `accept`,
// `wire_read`, `wire_write` on the connection path and `store_read`,
// `store_write` inside the result store -- same grammar, same
// determinism, scoped per server lifetime rather than per tuple.
//
// Determinism: every decision is a pure function of (plan seed, site
// name, scope, invocation index) hashed through splitmix64 -- no global
// RNG state, no wall clock. The synthesizer opens one scope per candidate
// tuple (scope = tuple rank + 1; scope 0 is driver setup), and the
// per-site invocation index resets at each scope, so a tuple draws the
// same faults no matter which worker claims it or in which order tuples
// complete. The one deliberate exception is the `worker=W` trigger, which
// keys on the physical worker rank to model "this machine is bad"
// scenarios; under a racy work cursor the set of tuples it hits varies
// run to run, and the chaos tests only assert verdict-or-inconclusive for
// such plans.
//
// Plan grammar (--faults / SHARPIE_FAULTS):
//
//   plan    := ["seed=" INT] (";" rule)*
//   rule    := site ":" kind ["@" trigger ("," trigger)*]
//   site    := "smt_check" | "smt_check_assuming" | "reduce"
//            | "worker_task" | "refine" | "accept" | "wire_read"
//            | "wire_write" | "store_read" | "store_write"
//                                                       (any name matches)
//   kind    := "timeout" | "unknown" | "throw" | "latency=" MS
//   trigger := "always" | "p=" FLOAT | "every=" N | "worker=" W
//
// A rule with no trigger fires always; multiple triggers on one rule must
// all hold. Example: "seed=7;smt_check:timeout@p=0.3;worker_task:throw@worker=0".
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_RESIL_FAULT_H
#define SHARPIE_RESIL_FAULT_H

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sharpie {
namespace resil {

enum class FaultKind : uint8_t { None, Timeout, Unknown, Throw, Latency };

const char *faultKindName(FaultKind K);

/// Thrown by the injection sites for FaultKind::Throw; the supervised
/// pipeline must contain it like any worker exception (tuple skipped,
/// search continues).
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(const std::string &Site)
      : std::runtime_error("injected fault at " + Site) {}
};

struct FaultRule {
  std::string Site;
  FaultKind Kind = FaultKind::None;
  unsigned LatencyMs = 0;  ///< For Kind == Latency.
  double Prob = -1;        ///< p=F trigger; < 0 means absent.
  uint64_t Every = 0;      ///< every=N trigger; 0 means absent.
  int Worker = -1;         ///< worker=W trigger; < 0 means absent.
};

/// A parsed fault plan. Plans are value types: workers copy them freely.
struct FaultPlan {
  uint64_t Seed = 0;
  std::vector<FaultRule> Rules;

  bool empty() const { return Rules.empty(); }

  /// Parses the grammar above. Returns nullopt and sets \p Err on a
  /// malformed spec.
  static std::optional<FaultPlan> parse(std::string_view Spec,
                                        std::string *Err = nullptr);
  /// Renders back to the grammar (parse(render()) == *this).
  std::string render() const;
};

/// One injection decision.
struct FaultDecision {
  FaultKind Kind = FaultKind::None;
  unsigned LatencyMs = 0;
};

/// Turns a FaultPlan into per-invocation decisions. One injector per
/// worker; not thread-safe (each worker owns its own, like its solver).
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan Plan) : Plan(std::move(Plan)) {}

  /// The physical worker rank the `worker=W` trigger compares against
  /// (0 = serial search / driver, parallel worker W = W).
  void setWorker(unsigned W) { Worker = W; }
  unsigned worker() const { return Worker; }

  /// Opens a deterministic decision scope (the synthesizer uses tuple
  /// rank + 1; 0 is the pre-search scope). Resets the per-site indices.
  void beginScope(uint64_t S);

  /// Consumes one invocation at \p Site and returns the decision. The
  /// first matching rule wins.
  FaultDecision next(const char *Site);

private:
  FaultPlan Plan;
  unsigned Worker = 0;
  uint64_t Scope = 0;
  /// Per-site invocation counts within the current scope. Sites are a
  /// handful of string literals; linear scan beats a map at this size.
  std::vector<std::pair<std::string, uint64_t>> Index;
};

} // namespace resil
} // namespace sharpie

#endif // SHARPIE_RESIL_FAULT_H
