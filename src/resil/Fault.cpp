//===- resil/Fault.cpp - Deterministic fault injection ------------------------===//
//
// Part of sharpie. See Fault.h.
//
//===----------------------------------------------------------------------===//

#include "resil/Fault.h"

#include <cstdlib>

using namespace sharpie;
using namespace sharpie::resil;

const char *sharpie::resil::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::None:
    return "none";
  case FaultKind::Timeout:
    return "timeout";
  case FaultKind::Unknown:
    return "unknown";
  case FaultKind::Throw:
    return "throw";
  case FaultKind::Latency:
    return "latency";
  }
  return "?";
}

// -- Plan parsing -------------------------------------------------------------

namespace {

bool parseU64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

bool parseF64(std::string_view S, double &Out) {
  if (S.empty())
    return false;
  std::string Buf(S);
  char *End = nullptr;
  Out = std::strtod(Buf.c_str(), &End);
  return End && *End == '\0';
}

std::optional<FaultPlan> err(std::string *E, const std::string &Msg) {
  if (E)
    *E = Msg;
  return std::nullopt;
}

} // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view Spec,
                                          std::string *Err) {
  FaultPlan P;
  size_t Pos = 0;
  bool First = true;
  while (Pos <= Spec.size()) {
    size_t Semi = Spec.find(';', Pos);
    std::string_view Part =
        Spec.substr(Pos, Semi == std::string_view::npos ? Semi : Semi - Pos);
    Pos = Semi == std::string_view::npos ? Spec.size() + 1 : Semi + 1;
    if (Part.empty()) {
      if (First)
        First = false;
      continue;
    }
    if (First && Part.substr(0, 5) == "seed=") {
      First = false;
      if (!parseU64(Part.substr(5), P.Seed))
        return err(Err, "fault plan: bad seed '" + std::string(Part) + "'");
      continue;
    }
    First = false;
    size_t Colon = Part.find(':');
    if (Colon == std::string_view::npos || Colon == 0)
      return err(Err, "fault plan: rule '" + std::string(Part) +
                          "' needs the form site:kind[@trigger]");
    FaultRule R;
    R.Site = std::string(Part.substr(0, Colon));
    std::string_view Rest = Part.substr(Colon + 1);
    size_t At = Rest.find('@');
    std::string_view KindS = Rest.substr(0, At);
    if (KindS == "timeout")
      R.Kind = FaultKind::Timeout;
    else if (KindS == "unknown")
      R.Kind = FaultKind::Unknown;
    else if (KindS == "throw")
      R.Kind = FaultKind::Throw;
    else if (KindS.substr(0, 8) == "latency=") {
      uint64_t Ms = 0;
      if (!parseU64(KindS.substr(8), Ms))
        return err(Err, "fault plan: bad latency '" + std::string(KindS) +
                            "'");
      R.Kind = FaultKind::Latency;
      R.LatencyMs = static_cast<unsigned>(Ms);
    } else
      return err(Err, "fault plan: unknown kind '" + std::string(KindS) +
                          "' (timeout|unknown|throw|latency=MS)");
    if (At != std::string_view::npos) {
      std::string_view Trig = Rest.substr(At + 1);
      size_t TPos = 0;
      while (TPos <= Trig.size()) {
        size_t Comma = Trig.find(',', TPos);
        std::string_view T = Trig.substr(
            TPos, Comma == std::string_view::npos ? Comma : Comma - TPos);
        TPos = Comma == std::string_view::npos ? Trig.size() + 1 : Comma + 1;
        if (T.empty())
          return err(Err, "fault plan: empty trigger in '" +
                              std::string(Part) + "'");
        if (T == "always") {
          // No constraint.
        } else if (T.substr(0, 2) == "p=") {
          if (!parseF64(T.substr(2), R.Prob) || R.Prob < 0 || R.Prob > 1)
            return err(Err, "fault plan: bad probability '" + std::string(T) +
                                "' (want p=0..1)");
        } else if (T.substr(0, 6) == "every=") {
          if (!parseU64(T.substr(6), R.Every) || R.Every == 0)
            return err(Err,
                       "fault plan: bad trigger '" + std::string(T) + "'");
        } else if (T.substr(0, 7) == "worker=") {
          uint64_t W = 0;
          if (!parseU64(T.substr(7), W))
            return err(Err,
                       "fault plan: bad trigger '" + std::string(T) + "'");
          R.Worker = static_cast<int>(W);
        } else
          return err(Err, "fault plan: unknown trigger '" + std::string(T) +
                              "' (always|p=F|every=N|worker=W)");
      }
    }
    P.Rules.push_back(std::move(R));
  }
  return P;
}

std::string FaultPlan::render() const {
  std::string Out = "seed=" + std::to_string(Seed);
  for (const FaultRule &R : Rules) {
    Out += ";" + R.Site + ":";
    if (R.Kind == FaultKind::Latency)
      Out += "latency=" + std::to_string(R.LatencyMs);
    else
      Out += faultKindName(R.Kind);
    std::vector<std::string> Trigs;
    if (R.Prob >= 0) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "p=%g", R.Prob);
      Trigs.push_back(Buf);
    }
    if (R.Every)
      Trigs.push_back("every=" + std::to_string(R.Every));
    if (R.Worker >= 0)
      Trigs.push_back("worker=" + std::to_string(R.Worker));
    if (Trigs.empty())
      Trigs.push_back("always");
    for (size_t I = 0; I < Trigs.size(); ++I)
      Out += (I ? "," : "@") + Trigs[I];
  }
  return Out;
}

// -- Injector -----------------------------------------------------------------

namespace {

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t hashStr(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ULL; // FNV-1a.
  for (char C : S)
    H = (H ^ static_cast<unsigned char>(C)) * 0x100000001b3ULL;
  return H;
}

} // namespace

void FaultInjector::beginScope(uint64_t S) {
  Scope = S;
  Index.clear();
}

FaultDecision FaultInjector::next(const char *Site) {
  uint64_t *Idx = nullptr;
  for (auto &[Name, I] : Index)
    if (Name == Site)
      Idx = &I;
  if (!Idx) {
    Index.emplace_back(Site, 0);
    Idx = &Index.back().second;
  }
  uint64_t I = (*Idx)++;
  for (const FaultRule &R : Plan.Rules) {
    if (R.Site != Site)
      continue;
    if (R.Worker >= 0 && static_cast<unsigned>(R.Worker) != Worker)
      continue;
    if (R.Every && (I + 1) % R.Every != 0)
      continue;
    if (R.Prob >= 0) {
      uint64_t H = splitmix64(Plan.Seed ^ hashStr(Site) ^
                              splitmix64(Scope * 0x9e3779b97f4a7c15ULL + I));
      double U = static_cast<double>(H >> 11) * 0x1.0p-53;
      if (U >= R.Prob)
        continue;
    }
    return {R.Kind, R.LatencyMs};
  }
  return {};
}
