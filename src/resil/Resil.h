//===- resil/Resil.h - Supervised SMT solving -------------------*- C++ -*-===//
//
// Part of sharpie. The resilience layer around smt::SmtSolver: quantified
// invariant checking is exactly the regime where back ends time out,
// answer Unknown, or throw, and a search that serves heavy traffic must
// degrade instead of hanging or aborting. SupervisedSolver wraps any
// back end and
//
//   * enforces a per-check deadline, clamped to the remaining global
//     time budget so no single check outlives the search;
//   * classifies every Unknown (timeout vs. incompleteness vs. injected
//     fault vs. budget exhaustion vs. solver exception);
//   * retries timeout-class Unknowns with exponential backoff -- the
//     "backoff" grows the per-attempt time slice, since an in-process
//     solver has nothing to recover from by merely waiting;
//   * escalates to the other back end (Z3 <-> MiniSolver) after the
//     bounded retries are spent, replaying the recorded assertion trail
//     into a fresh solver;
//   * counts every retry / fallback / injected fault into the obs layer
//     ("retries", "fallbacks", "faults_injected") and a ResilCounters
//     sink the synthesizer folds into SynthStats.
//
// Soundness is untouched: the wrapper only ever converts an Unknown into
// a Sat/Unsat obtained from a real solver run over the same assertions,
// or passes the Unknown through. Callers keep treating Unknown
// conservatively (candidate dropped, safety not declared).
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_RESIL_RESIL_H
#define SHARPIE_RESIL_RESIL_H

#include "resil/Fault.h"
#include "smt/SmtSolver.h"

#include <chrono>
#include <functional>

namespace sharpie {
namespace resil {

/// Why the last supervised check() returned Unknown.
enum class FailureClass : uint8_t {
  None,            ///< Last check answered Sat/Unsat.
  Timeout,         ///< Back end hit its per-check deadline.
  Incomplete,      ///< Query outside the back end's complete fragment.
  InjectedFault,   ///< A FaultPlan rule fired.
  SolverException, ///< The back end threw; contained here.
  BudgetExhausted, ///< Global TimeBudgetSeconds left no time to check.
  /// A persistent-store file (serve/Store.h) failed to parse: truncated
  /// write, version skew, or plain corruption. Always degrades to a cache
  /// miss -- the class exists so store incidents surface in the same
  /// taxonomy as solver incidents instead of as ad-hoc strings.
  CorruptStore,
};

const char *failureClassName(FailureClass C);

/// Retry / fallback / failure-class tallies, merged into SynthStats at
/// the end of a run. One sink per worker (single-writer, like the trace
/// buffers); the driver folds them.
struct ResilCounters {
  uint64_t Retries = 0;
  uint64_t Fallbacks = 0;
  uint64_t FaultsInjected = 0;
  uint64_t UnknownTimeout = 0;
  uint64_t UnknownIncomplete = 0;
  uint64_t SolverExceptions = 0;
};

struct SupervisionOptions {
  /// Master switch: disabled reproduces the bare back end (for overhead
  /// A/B runs; --no-supervise in the drivers).
  bool Enabled = true;
  /// Extra attempts on the primary back end after a timeout-class
  /// Unknown. Incompleteness is not retried (the fragment will not
  /// change); it escalates straight to the fallback.
  unsigned MaxRetries = 1;
  /// Per-retry multiplier on the per-check time slice.
  double BackoffFactor = 2.0;
  /// Hard cap on any single check's timeout, backoff included.
  unsigned MaxCheckTimeoutMs = 120000;
  /// Escalate to the cross-checking back end after retries are spent.
  bool CrossCheckFallback = true;
};

/// Supervised wrapper over an smt::SmtSolver. Records the assertion
/// trail (terms + frame stack) so a restarted or fallback solver can be
/// replayed to the exact current state. Single-threaded, like every
/// solver in this codebase.
class SupervisedSolver final : public smt::SmtSolver {
public:
  using Factory = std::function<std::unique_ptr<smt::SmtSolver>()>;

  /// \p Fallback may be null (no escalation). \p Sink, \p Faults and
  /// \p TB may be null. \p Deadline is the global search deadline
  /// (time_point::max() when unbudgeted); per-check timeouts are clamped
  /// to the time remaining before it.
  SupervisedSolver(std::unique_ptr<smt::SmtSolver> Primary, Factory Fallback,
                   SupervisionOptions Opts, ResilCounters *Sink,
                   FaultInjector *Faults, const char *Site,
                   obs::TraceBuffer *TB,
                   std::chrono::steady_clock::time_point Deadline);

  void push() override;
  void pop() override;
  void add(logic::Term T) override;
  smt::SatResult check() override;
  /// Supervised assumption-based check. Faults for this entry point fire
  /// at the dedicated `smt_check_assuming` site (not the wrapper's
  /// constructor site), so chaos plans can target core queries alone. On
  /// fallback escalation the recorded trail is replayed and the same
  /// assumption literals are passed to the fallback's checkAssuming.
  smt::SatResult
  checkAssuming(const std::vector<logic::Term> &Assumptions) override;
  /// Core of the solver that actually answered the last Unsat; falls
  /// back to the full assumption list (maximally conservative) when no
  /// back end produced a definite answer -- an injected fault or Unknown
  /// on a core query therefore degrades to "every assumption implicated",
  /// never to an unsound subset.
  std::vector<logic::Term> unsatCore() const override;
  std::unique_ptr<smt::SmtModel> model() override;
  /// Sets the base per-check time slice (before backoff and budget
  /// clamping). 0 disables the per-check timeout.
  void setTimeoutMs(unsigned Ms) override;

  /// Classification of the most recent check()'s Unknown (None after a
  /// Sat/Unsat answer).
  FailureClass lastFailure() const { return LastFailure; }

private:
  smt::SatResult checkOnce(smt::SmtSolver &S, unsigned EffTimeoutMs,
                           FailureClass &Class,
                           const std::vector<logic::Term> *Assumptions);
  smt::SatResult checkSupervised(const std::vector<logic::Term> *Assumptions);
  void applyTimeout(smt::SmtSolver &S, unsigned Ms, unsigned &Applied);
  void replayInto(smt::SmtSolver &S);
  long long remainingBudgetMs() const;
  void bump(uint64_t ResilCounters::*Field, const char *Ctr);

  std::unique_ptr<smt::SmtSolver> Primary;
  Factory MakeFallback;
  /// Live only between an escalated check and the next mutation: the
  /// trail replayed into it goes stale on add/push/pop, and keeping two
  /// solvers in lockstep would double assertion-translation cost on the
  /// fault-free path.
  std::unique_ptr<smt::SmtSolver> Fallback;
  /// The solver that produced the last Sat answer; model() reads it.
  smt::SmtSolver *Answered = nullptr;
  SupervisionOptions Opts;
  ResilCounters *Sink;
  FaultInjector *Faults;
  const char *Site;
  obs::TraceBuffer *TB;
  std::chrono::steady_clock::time_point Deadline;
  FailureClass LastFailure = FailureClass::None;
  unsigned BaseTimeoutMs = 0;
  unsigned PrimaryTimeoutApplied = ~0u;

  // Assertion trail for restart/fallback replay (frame scheme mirrors
  // MiniSolver's).
  std::vector<logic::Term> Trail;
  std::vector<size_t> Frames;
};

/// Classifies a back end's reasonUnknown() string: timeout/cancel/
/// resource words are Timeout, everything else Incomplete.
FailureClass classifyUnknownReason(std::string_view Reason);

} // namespace resil
} // namespace sharpie

#endif // SHARPIE_RESIL_RESIL_H
