//===- resil/Resil.cpp - Supervised SMT solving -------------------------------===//
//
// Part of sharpie. See Resil.h.
//
//===----------------------------------------------------------------------===//

#include "resil/Resil.h"

#include <algorithm>
#include <climits>
#include <thread>

using namespace sharpie;
using namespace sharpie::resil;
using smt::SatResult;

const char *sharpie::resil::failureClassName(FailureClass C) {
  switch (C) {
  case FailureClass::None:
    return "none";
  case FailureClass::Timeout:
    return "timeout";
  case FailureClass::Incomplete:
    return "incomplete";
  case FailureClass::InjectedFault:
    return "injected_fault";
  case FailureClass::SolverException:
    return "solver_exception";
  case FailureClass::BudgetExhausted:
    return "budget_exhausted";
  case FailureClass::CorruptStore:
    return "corrupt_store";
  }
  return "?";
}

FailureClass sharpie::resil::classifyUnknownReason(std::string_view Reason) {
  for (const char *W : {"timeout", "canceled", "cancelled", "budget",
                        "resource", "max. memory"})
    if (Reason.find(W) != std::string_view::npos)
      return FailureClass::Timeout;
  return FailureClass::Incomplete;
}

SupervisedSolver::SupervisedSolver(
    std::unique_ptr<smt::SmtSolver> Primary, Factory Fallback,
    SupervisionOptions Opts, ResilCounters *Sink, FaultInjector *Faults,
    const char *Site, obs::TraceBuffer *TB,
    std::chrono::steady_clock::time_point Deadline)
    : Primary(std::move(Primary)), MakeFallback(std::move(Fallback)),
      Opts(Opts), Sink(Sink), Faults(Faults), Site(Site), TB(TB),
      Deadline(Deadline) {}

void SupervisedSolver::bump(uint64_t ResilCounters::*Field, const char *Ctr) {
  if (Sink)
    ++(Sink->*Field);
  if (TB && Ctr)
    TB->counter(Ctr, 1);
}

void SupervisedSolver::push() {
  Frames.push_back(Trail.size());
  Fallback.reset();
  Answered = nullptr;
  Primary->push();
}

void SupervisedSolver::pop() {
  if (!Frames.empty()) {
    Trail.resize(Frames.back());
    Frames.pop_back();
  }
  Fallback.reset();
  Answered = nullptr;
  Primary->pop();
}

void SupervisedSolver::add(logic::Term T) {
  Trail.push_back(T);
  Fallback.reset();
  Answered = nullptr;
  Primary->add(T);
}

void SupervisedSolver::setTimeoutMs(unsigned Ms) { BaseTimeoutMs = Ms; }

std::unique_ptr<smt::SmtModel> SupervisedSolver::model() {
  return (Answered ? Answered : Primary.get())->model();
}

long long SupervisedSolver::remainingBudgetMs() const {
  if (Deadline == std::chrono::steady_clock::time_point::max())
    return LLONG_MAX;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Deadline - std::chrono::steady_clock::now())
      .count();
}

void SupervisedSolver::applyTimeout(smt::SmtSolver &S, unsigned Ms,
                                    unsigned &Applied) {
  // setTimeoutMs is not free on Z3 (a param-set per call); skip the call
  // when the effective value is unchanged -- on the fault-free path with
  // no global budget that is every check after the first.
  if (Ms == Applied || (Ms == 0 && Applied == ~0u))
    return;
  S.setTimeoutMs(Ms);
  Applied = Ms;
}

void SupervisedSolver::replayInto(smt::SmtSolver &S) {
  size_t Next = 0;
  for (size_t F = 0; F <= Frames.size(); ++F) {
    size_t End = F < Frames.size() ? Frames[F] : Trail.size();
    for (; Next < End; ++Next)
      S.add(Trail[Next]);
    if (F < Frames.size())
      S.push();
  }
}

SatResult SupervisedSolver::checkOnce(smt::SmtSolver &S, unsigned EffTimeoutMs,
                                      FailureClass &Class,
                                      const std::vector<logic::Term> *A) {
  // Assumption-based checks draw faults from their own site so a chaos
  // plan can stress core queries without also hitting plain checks.
  const char *EffSite = A ? "smt_check_assuming" : Site;
  if (Faults) {
    FaultDecision D = Faults->next(EffSite);
    switch (D.Kind) {
    case FaultKind::None:
      break;
    case FaultKind::Latency:
      bump(&ResilCounters::FaultsInjected, "faults_injected");
      std::this_thread::sleep_for(std::chrono::milliseconds(D.LatencyMs));
      break;
    case FaultKind::Throw:
      bump(&ResilCounters::FaultsInjected, "faults_injected");
      throw InjectedFault(EffSite);
    case FaultKind::Timeout:
      // An injected timeout is indistinguishable from a real one to the
      // retry loop: it is retried with backoff and may be rescued.
      bump(&ResilCounters::FaultsInjected, "faults_injected");
      Class = FailureClass::Timeout;
      return SatResult::Unknown;
    case FaultKind::Unknown:
      bump(&ResilCounters::FaultsInjected, "faults_injected");
      Class = FailureClass::InjectedFault;
      return SatResult::Unknown;
    }
  }
  unsigned Applied = ~0u;
  applyTimeout(S, EffTimeoutMs,
               &S == Primary.get() ? PrimaryTimeoutApplied : Applied);
  auto T0 = std::chrono::steady_clock::now();
  SatResult R;
  try {
    R = A ? S.checkAssuming(*A) : S.check();
  } catch (const std::exception &) {
    // Both back ends contain their own exceptions; this catches a truly
    // misbehaving solver so one check cannot abort the search.
    bump(&ResilCounters::SolverExceptions, nullptr);
    Class = FailureClass::SolverException;
    return SatResult::Unknown;
  }
  if (R == SatResult::Unknown) {
    Class = classifyUnknownReason(S.reasonUnknown());
    if (Class == FailureClass::Incomplete && EffTimeoutMs) {
      // No usable reason string: near-deadline elapsed time means timeout.
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
      if (Ms >= 0.9 * EffTimeoutMs)
        Class = FailureClass::Timeout;
    }
  }
  return R;
}

SatResult SupervisedSolver::check() {
  ++NumChecks;
  LastFailure = FailureClass::None;
  if (!Opts.Enabled)
    return Primary->check();
  return checkSupervised(nullptr);
}

SatResult
SupervisedSolver::checkAssuming(const std::vector<logic::Term> &A) {
  ++NumChecks;
  LastFailure = FailureClass::None;
  LastAssumptions = A;
  // Clear the answer pointer up front: a faulted/Unknown core query must
  // make unsatCore() fall back to the full assumption list, not a stale
  // core from an earlier answer.
  Answered = nullptr;
  if (!Opts.Enabled) {
    SatResult R = Primary->checkAssuming(A);
    if (R != SatResult::Unknown)
      Answered = Primary.get();
    return R;
  }
  return checkSupervised(&A);
}

std::vector<logic::Term> SupervisedSolver::unsatCore() const {
  return Answered ? Answered->unsatCore() : LastAssumptions;
}

SatResult
SupervisedSolver::checkSupervised(const std::vector<logic::Term> *A) {
  long long Rem = remainingBudgetMs();
  if (Rem <= 0) {
    LastFailure = FailureClass::BudgetExhausted;
    return SatResult::Unknown;
  }

  auto Effective = [&](double SliceMs, long long RemMs) -> unsigned {
    double Eff = SliceMs > 0
                     ? std::min(SliceMs, double(Opts.MaxCheckTimeoutMs))
                     : 0;
    if (RemMs != LLONG_MAX) {
      double R = std::max(1.0, double(RemMs));
      Eff = Eff > 0 ? std::min(Eff, R) : R;
    }
    return static_cast<unsigned>(Eff);
  };

  FailureClass Class = FailureClass::None;
  double Slice = BaseTimeoutMs;
  for (unsigned Attempt = 0;; ++Attempt) {
    SatResult R = checkOnce(*Primary, Effective(Slice, Rem), Class, A);
    if (R != SatResult::Unknown) {
      Answered = Primary.get();
      return R;
    }
    if (Class == FailureClass::Timeout)
      bump(&ResilCounters::UnknownTimeout, nullptr);
    else if (Class == FailureClass::Incomplete ||
             Class == FailureClass::InjectedFault)
      bump(&ResilCounters::UnknownIncomplete, nullptr);
    // Only timeout-class Unknowns are worth retrying on the same back
    // end: incompleteness is deterministic in the query.
    if (Class != FailureClass::Timeout || Attempt >= Opts.MaxRetries)
      break;
    Rem = remainingBudgetMs();
    if (Rem <= 0) {
      Class = FailureClass::BudgetExhausted;
      break;
    }
    bump(&ResilCounters::Retries, "retries");
    Slice = Slice > 0 ? Slice * Opts.BackoffFactor : Slice;
  }

  if (MakeFallback && Opts.CrossCheckFallback &&
      Class != FailureClass::BudgetExhausted) {
    Rem = remainingBudgetMs();
    if (Rem > 0) {
      bump(&ResilCounters::Fallbacks, "fallbacks");
      Fallback = MakeFallback();
      replayInto(*Fallback);
      FailureClass FbClass = FailureClass::None;
      SatResult R = checkOnce(*Fallback, Effective(BaseTimeoutMs, Rem),
                              FbClass, A);
      if (R != SatResult::Unknown) {
        Answered = Fallback.get();
        return R;
      }
      if (FbClass == FailureClass::Timeout)
        bump(&ResilCounters::UnknownTimeout, nullptr);
      else if (FbClass == FailureClass::Incomplete ||
               FbClass == FailureClass::InjectedFault)
        bump(&ResilCounters::UnknownIncomplete, nullptr);
    } else {
      Class = FailureClass::BudgetExhausted;
    }
  }

  LastFailure = Class == FailureClass::None ? FailureClass::Incomplete : Class;
  return SatResult::Unknown;
}
