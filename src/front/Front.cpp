//===- front/Front.cpp - Frontend entry points ----------------------------===//
//
// Part of sharpie. Ties lexer, parser and lowering together and funnels
// every failure mode - including I/O errors and stray exceptions from
// lower layers - into the single Diagnostic type, so drivers can always
// exit with code 3 and a rendered message.
//
//===----------------------------------------------------------------------===//

#include "front/Front.h"
#include "front/Lexer.h"
#include "front/Lower.h"
#include "front/Parser.h"
#include "system/System.h"

#include <fstream>
#include <sstream>

using namespace sharpie;
using namespace sharpie::front;

std::string Diagnostic::render() const {
  std::string Out = File;
  if (Line > 0) {
    Out += ":" + std::to_string(Line) + ":" + std::to_string(Col);
  }
  Out += ": error: " + Message;
  if (Line > 0 && !SourceLine.empty()) {
    Out += "\n  " + SourceLine + "\n  ";
    for (int I = 1; I < Col; ++I)
      Out += ' ';
    Out += '^';
  }
  return Out;
}

FrontBundle sharpie::front::parseProtocol(logic::TermManager &M,
                                          const std::string &Source,
                                          const std::string &FileName,
                                          obs::TraceBuffer *Trace) {
  obs::Span Sp(Trace, "parse", [&] { return FileName; });
  Lexer Lx(Source, FileName);
  Parser Ps(Lx);
  ProtocolAst Ast = Ps.parseProtocol();
  FrontBundle B = lowerProtocol(M, Ast, Lx);
  SHARPIE_LOGF(Trace, obs::LogLevel::Debug, "parse: %s ok", FileName.c_str());
  return B;
}

static LoadResult guarded(logic::TermManager &M, const std::string &Source,
                          const std::string &FileName,
                          obs::TraceBuffer *Trace) {
  LoadResult R;
  try {
    R.Bundle = parseProtocol(M, Source, FileName, Trace);
  } catch (const FrontError &E) {
    R.Error = E.diagnostic();
  } catch (const sys::ModelError &E) {
    // A lowering bug or a model shape the validators missed: still a
    // clean diagnostic, never an abort (the model layer throws instead
    // of asserting on user-reachable paths).
    R.Error = Diagnostic{FileName, 0, 0,
                         std::string("model error: ") + E.what(), ""};
  } catch (const std::exception &E) {
    R.Error = Diagnostic{FileName, 0, 0,
                         std::string("internal error: ") + E.what(), ""};
  } catch (...) {
    R.Error = Diagnostic{FileName, 0, 0, "internal error", ""};
  }
  return R;
}

LoadResult sharpie::front::loadProtocolString(logic::TermManager &M,
                                              const std::string &Source,
                                              const std::string &FileName,
                                              obs::TraceBuffer *Trace) {
  return guarded(M, Source, FileName, Trace);
}

LoadResult sharpie::front::loadProtocolFile(logic::TermManager &M,
                                            const std::string &Path,
                                            obs::TraceBuffer *Trace) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    LoadResult R;
    R.Error = Diagnostic{Path, 0, 0, "cannot open file", ""};
    return R;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return guarded(M, Buf.str(), Path, Trace);
}
