//===- front/Lexer.cpp - Tokens of the .sharpie language ------------------===//
//
// Part of sharpie.
//
//===----------------------------------------------------------------------===//

#include "front/Lexer.h"
#include "front/Front.h"

#include <cctype>
#include <map>

using namespace sharpie;
using namespace sharpie::front;

const char *sharpie::front::tokName(Tok T) {
  switch (T) {
  case Tok::Ident:
    return "identifier";
  case Tok::IntLit:
    return "integer literal";
  case Tok::StringLit:
    return "string literal";
  case Tok::KwProtocol:
    return "'protocol'";
  case Tok::KwSync:
    return "'sync'";
  case Tok::KwGlobal:
    return "'global'";
  case Tok::KwLocal:
    return "'local'";
  case Tok::KwSize:
    return "'size'";
  case Tok::KwInit:
    return "'init'";
  case Tok::KwSafe:
    return "'safe'";
  case Tok::KwUnsafe:
    return "'unsafe'";
  case Tok::KwTransition:
    return "'transition'";
  case Tok::KwRound:
    return "'round'";
  case Tok::KwRelation:
    return "'relation'";
  case Tok::KwGuard:
    return "'guard'";
  case Tok::KwChoice:
    return "'choice'";
  case Tok::KwTemplate:
    return "'template'";
  case Tok::KwSets:
    return "'sets'";
  case Tok::KwCheck:
    return "'check'";
  case Tok::KwThreads:
    return "'threads'";
  case Tok::KwMaxStates:
    return "'max_states'";
  case Tok::KwIntBound:
    return "'int_bound'";
  case Tok::KwChoiceRange:
    return "'choice_range'";
  case Tok::KwStart:
    return "'start'";
  case Tok::KwExpect:
    return "'expect'";
  case Tok::KwVenn:
    return "'venn'";
  case Tok::KwProperty:
    return "'property'";
  case Tok::KwForall:
    return "'forall'";
  case Tok::KwExists:
    return "'exists'";
  case Tok::KwTrue:
    return "'true'";
  case Tok::KwFalse:
    return "'false'";
  case Tok::KwSelf:
    return "'self'";
  case Tok::KwIte:
    return "'ite'";
  case Tok::KwInt:
    return "'int'";
  case Tok::KwTid:
    return "'tid'";
  case Tok::LBrace:
    return "'{'";
  case Tok::RBrace:
    return "'}'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBrack:
    return "'['";
  case Tok::RBrack:
    return "']'";
  case Tok::Semi:
    return "';'";
  case Tok::Colon:
    return "':'";
  case Tok::Comma:
    return "','";
  case Tok::Dot:
    return "'.'";
  case Tok::DotDot:
    return "'..'";
  case Tok::Pipe:
    return "'|'";
  case Tok::Hash:
    return "'#'";
  case Tok::Prime:
    return "'''";
  case Tok::Assign:
    return "':='";
  case Tok::Implies:
    return "'==>'";
  case Tok::AndAnd:
    return "'&&'";
  case Tok::OrOr:
    return "'||'";
  case Tok::Bang:
    return "'!'";
  case Tok::EqEq:
    return "'=='";
  case Tok::NotEq:
    return "'!='";
  case Tok::Le:
    return "'<='";
  case Tok::Lt:
    return "'<'";
  case Tok::Ge:
    return "'>='";
  case Tok::Gt:
    return "'>'";
  case Tok::Plus:
    return "'+'";
  case Tok::Minus:
    return "'-'";
  case Tok::Star:
    return "'*'";
  case Tok::End:
    return "end of input";
  }
  return "?";
}

static const std::map<std::string, Tok> &keywords() {
  static const std::map<std::string, Tok> KW = {
      {"protocol", Tok::KwProtocol},
      {"sync", Tok::KwSync},
      {"global", Tok::KwGlobal},
      {"local", Tok::KwLocal},
      {"size", Tok::KwSize},
      {"init", Tok::KwInit},
      {"safe", Tok::KwSafe},
      {"unsafe", Tok::KwUnsafe},
      {"transition", Tok::KwTransition},
      {"round", Tok::KwRound},
      {"relation", Tok::KwRelation},
      {"guard", Tok::KwGuard},
      {"choice", Tok::KwChoice},
      {"template", Tok::KwTemplate},
      {"sets", Tok::KwSets},
      {"check", Tok::KwCheck},
      {"threads", Tok::KwThreads},
      {"max_states", Tok::KwMaxStates},
      {"int_bound", Tok::KwIntBound},
      {"choice_range", Tok::KwChoiceRange},
      {"start", Tok::KwStart},
      {"expect", Tok::KwExpect},
      {"venn", Tok::KwVenn},
      {"property", Tok::KwProperty},
      {"forall", Tok::KwForall},
      {"exists", Tok::KwExists},
      {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},
      {"self", Tok::KwSelf},
      {"ite", Tok::KwIte},
      {"int", Tok::KwInt},
      {"tid", Tok::KwTid},
  };
  return KW;
}

Lexer::Lexer(const std::string &Source, const std::string &FileName)
    : FileName(FileName) {
  std::string Cur;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else
      Cur.push_back(C);
  }
  Lines.push_back(Cur);
  run(Source);
}

std::string Lexer::lineText(int Line) const {
  if (Line < 1 || Line > static_cast<int>(Lines.size()))
    return "";
  return Lines[static_cast<size_t>(Line - 1)];
}

void Lexer::run(const std::string &S) {
  size_t I = 0, N = S.size();
  int Line = 1, Col = 1;
  auto Fail = [&](int L, int C, const std::string &Msg) {
    throw FrontError(Diagnostic{FileName, L, C, Msg, lineText(L)});
  };
  auto Advance = [&](char C) {
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else
      ++Col;
    ++I;
  };
  auto Push = [&](Tok K, int L, int C, std::string Text = "",
                  int64_t V = 0) {
    Token T;
    T.K = K;
    T.Text = std::move(Text);
    T.IntVal = V;
    T.Line = L;
    T.Col = C;
    Tokens.push_back(std::move(T));
  };
  while (I < N) {
    char C = S[I];
    int L0 = Line, C0 = Col;
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance(C);
      continue;
    }
    if (C == '/' && I + 1 < N && S[I + 1] == '/') {
      while (I < N && S[I] != '\n')
        Advance(S[I]);
      continue;
    }
    if (C == '/' && I + 1 < N && S[I + 1] == '*') {
      Advance(S[I]);
      Advance(S[I]);
      bool Closed = false;
      while (I < N) {
        if (S[I] == '*' && I + 1 < N && S[I + 1] == '/') {
          Advance(S[I]);
          Advance(S[I]);
          Closed = true;
          break;
        }
        Advance(S[I]);
      }
      if (!Closed)
        Fail(L0, C0, "unterminated block comment");
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Id;
      while (I < N && (std::isalnum(static_cast<unsigned char>(S[I])) ||
                       S[I] == '_')) {
        Id.push_back(S[I]);
        Advance(S[I]);
      }
      auto It = keywords().find(Id);
      if (It != keywords().end())
        Push(It->second, L0, C0, Id);
      else
        Push(Tok::Ident, L0, C0, Id);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (I < N && std::isdigit(static_cast<unsigned char>(S[I]))) {
        int64_t D = S[I] - '0';
        if (V > (INT64_MAX - D) / 10)
          Fail(L0, C0, "integer literal out of range");
        V = V * 10 + D;
        Advance(S[I]);
      }
      Push(Tok::IntLit, L0, C0, "", V);
      continue;
    }
    if (C == '"') {
      Advance(C);
      std::string Text;
      bool Closed = false;
      while (I < N) {
        if (S[I] == '"') {
          Advance(S[I]);
          Closed = true;
          break;
        }
        if (S[I] == '\n')
          break;
        Text.push_back(S[I]);
        Advance(S[I]);
      }
      if (!Closed)
        Fail(L0, C0, "unterminated string literal");
      Push(Tok::StringLit, L0, C0, Text);
      continue;
    }
    auto Two = [&](char A, char B) {
      return C == A && I + 1 < N && S[I + 1] == B;
    };
    if (C == '=' && I + 2 < N && S[I + 1] == '=' && S[I + 2] == '>') {
      Advance(S[I]);
      Advance(S[I]);
      Advance(S[I]);
      Push(Tok::Implies, L0, C0);
      continue;
    }
    struct Pair {
      char A, B;
      Tok K;
    };
    static const Pair Pairs[] = {
        {':', '=', Tok::Assign}, {'=', '=', Tok::EqEq}, {'!', '=', Tok::NotEq},
        {'<', '=', Tok::Le},     {'>', '=', Tok::Ge},   {'&', '&', Tok::AndAnd},
        {'|', '|', Tok::OrOr},   {'.', '.', Tok::DotDot},
    };
    bool Matched = false;
    for (const Pair &P : Pairs)
      if (Two(P.A, P.B)) {
        Advance(S[I]);
        Advance(S[I]);
        Push(P.K, L0, C0);
        Matched = true;
        break;
      }
    if (Matched)
      continue;
    Tok K;
    switch (C) {
    case '{':
      K = Tok::LBrace;
      break;
    case '}':
      K = Tok::RBrace;
      break;
    case '(':
      K = Tok::LParen;
      break;
    case ')':
      K = Tok::RParen;
      break;
    case '[':
      K = Tok::LBrack;
      break;
    case ']':
      K = Tok::RBrack;
      break;
    case ';':
      K = Tok::Semi;
      break;
    case ':':
      K = Tok::Colon;
      break;
    case ',':
      K = Tok::Comma;
      break;
    case '.':
      K = Tok::Dot;
      break;
    case '|':
      K = Tok::Pipe;
      break;
    case '#':
      K = Tok::Hash;
      break;
    case '\'':
      K = Tok::Prime;
      break;
    case '!':
      K = Tok::Bang;
      break;
    case '<':
      K = Tok::Lt;
      break;
    case '>':
      K = Tok::Gt;
      break;
    case '+':
      K = Tok::Plus;
      break;
    case '-':
      K = Tok::Minus;
      break;
    case '*':
      K = Tok::Star;
      break;
    default:
      Fail(L0, C0, std::string("stray character '") + C + "' in input");
      return; // unreachable
    }
    Advance(C);
    Push(K, L0, C0);
  }
  Push(Tok::End, Line, Col);
}
