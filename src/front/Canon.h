//===- front/Canon.h - Canonical hashing of lowered protocols ---*- C++ -*-===//
//
// Part of sharpie. The content address of a verification problem: a
// 128-bit hash over the canonical text of the *lowered* system -- the
// sys::ParamSystem plus everything else that determines the verdict (the
// shape template, the quantifier guard, the Venn flag, the explicit
// instance). Hashing the lowered form, not the source text, gives the two
// stability properties the persistent result store needs:
//
//   * whitespace, comments and formatting edits of a `.sharpie` file do
//     not move the hash (the lexer already erased them);
//   * re-parsing, re-lowering, and sys::ParamSystem::cloneInto copies all
//     hash identically: the canonical text is built from variable names
//     and term structure via logic/TermIO.h, never from TermManager ids
//     or interning order, and map-ordered components (update maps) are
//     re-sorted by canonical key text.
//
// Conversely any semantic edit -- a guard tweak, a changed bound, one
// more transition -- lands in the canonical text and moves the hash.
// tests/serve_hash_test.cpp pins both directions.
//
// The hash is 128-bit FNV-1a (two independently seeded 64-bit lanes) over
// the canonical text: not cryptographic, but with 128 bits a accidental
// collision across cache entries is beyond the store's lifetime; the
// store treats the hash as the entry's full identity.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_FRONT_CANON_H
#define SHARPIE_FRONT_CANON_H

#include "front/Front.h"

#include <cstdint>
#include <string>

namespace sharpie {
namespace front {

/// A 128-bit content hash, printable as 32 lowercase hex digits.
struct CanonicalHash {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  std::string hex() const;
  bool operator==(const CanonicalHash &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const CanonicalHash &O) const { return !(*this == O); }
};

/// The canonical text of a lowered verification problem. Deterministic
/// and manager-independent; the hash below is FNV-1a over these bytes.
/// Exposed separately so tests can diff the text when a hash mismatch
/// needs explaining.
std::string canonicalProblemText(const sys::ParamSystem &Sys,
                                 const synth::ShapeTemplate &Shape,
                                 logic::Term QGuard,
                                 const explct::ExplicitOptions &Explicit,
                                 bool NeedsVenn, bool ExpectSafe);

CanonicalHash canonicalProblemHash(const sys::ParamSystem &Sys,
                                   const synth::ShapeTemplate &Shape,
                                   logic::Term QGuard,
                                   const explct::ExplicitOptions &Explicit,
                                   bool NeedsVenn, bool ExpectSafe);

/// Convenience over a frontend bundle.
CanonicalHash canonicalProblemHash(const FrontBundle &B);

} // namespace front
} // namespace sharpie

#endif // SHARPIE_FRONT_CANON_H
