//===- front/Ast.h - Untyped syntax tree of .sharpie files ------*- C++ -*-===//
//
// Part of sharpie. The parser produces this untyped tree; all name
// resolution and sort checking happens in the lowering pass (Lower.cpp),
// which turns it into logic::Terms inside a sys::ParamSystem. Every node
// carries the source location of its first token for diagnostics.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_FRONT_AST_H
#define SHARPIE_FRONT_AST_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sharpie {
namespace front {

struct Loc {
  int Line = 0, Col = 0;
};

enum class ExKind : uint8_t {
  IntLit,  ///< IntVal.
  BoolLit, ///< BoolVal.
  Name,    ///< Ident (resolved during lowering). Post=true for name'.
  SelfRef, ///< The acting thread.
  Read,    ///< Ident "[" Kids[0] "]". Post=true for name'[i].
  Card,    ///< #{Binders[0] | Kids[0]}.
  Quant,   ///< forall/exists Binders. Kids[0]. IsForall selects.
  Binary,  ///< Op over Kids[0], Kids[1].
  Unary,   ///< Op over Kids[0]  ("!" or "-").
  Ite,     ///< ite(Kids[0], Kids[1], Kids[2]).
};

/// A bound variable with an optional sort annotation (default tid).
struct Binder {
  std::string Name;
  bool IsInt = false;
  Loc L;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExKind K = ExKind::IntLit;
  Loc L;
  int64_t IntVal = 0;
  bool BoolVal = false;
  bool IsForall = true;
  bool Post = false;      ///< Name/Read refer to the post-state twin.
  std::string Name;       ///< Name/Read target.
  std::string Op;         ///< Binary/Unary operator spelling.
  std::vector<Binder> Binders;
  std::vector<ExprPtr> Kids;
};

/// `target := value;` or `target[index] := value;`.
struct UpdateStmt {
  Loc L;
  std::string Target;
  bool HasIndex = false;
  ExprPtr Index; ///< Null for scalar targets.
  ExprPtr Value;
};

struct ChoiceDecl {
  Loc L;
  std::string Name;
  bool IsInt = true;
};

/// An async `transition` or a sync `round` (IsRound).
struct TransitionAst {
  Loc L;
  std::string Name;
  bool IsRound = false;
  ExprPtr Guard;    ///< Null means true.
  ExprPtr Relation; ///< Rounds only.
  Loc RelationLoc;
  std::vector<ChoiceDecl> Choices;
  std::vector<UpdateStmt> Updates;
};

struct TemplateAst {
  Loc L;
  unsigned NumSets = 0;
  std::vector<Binder> Quantifiers;
  ExprPtr Guard; ///< QGuard over the quantifier names; null = none.
};

struct StartAssign {
  Loc L;
  std::string Name;
  int64_t Value = 0;
};

struct CheckAst {
  Loc L;
  std::optional<int64_t> Threads, MaxStates, IntBound;
  std::optional<std::pair<int64_t, int64_t>> ChoiceRange;
  bool HasStart = false;
  std::vector<StartAssign> Start;
};

struct VarDecl {
  Loc L;
  std::string Name;
  bool IsLocal = false;
  bool IsSize = false; ///< `size n;` - global n is #threads.
};

struct ProtocolAst {
  Loc L;
  std::string Name;
  bool Sync = false;
  std::vector<VarDecl> Vars;
  ExprPtr Init; ///< Null means true.
  ExprPtr Safe; ///< Null means true.
  std::vector<TransitionAst> Transitions;
  std::optional<TemplateAst> Template;
  std::optional<CheckAst> Check;
  bool ExpectSafe = true;
  bool NeedsVenn = false;
  std::string Property;
};

} // namespace front
} // namespace sharpie

#endif // SHARPIE_FRONT_AST_H
