//===- front/Lower.cpp - AST -> ParamSystem elaboration -------------------===//
//
// Part of sharpie.
//
//===----------------------------------------------------------------------===//

#include "front/Lower.h"

#include "logic/TermOps.h"

#include <map>

using namespace sharpie;
using namespace sharpie::front;
using logic::Sort;
using logic::Term;
using logic::TermManager;

namespace {

/// Lower-case sort spelling for messages ("int", "tid", "bool", "array").
const char *sortWord(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "bool";
  case Sort::Int:
    return "int";
  case Sort::Tid:
    return "tid";
  case Sort::Array:
    return "array";
  }
  return "?";
}

/// Lexical scoping context for one expression.
struct ExprCtx {
  bool AllowSelf = false;
  bool AllowPost = false;
  bool TemplateScope = false; ///< Resolve template quantifiers, not locals.
  const std::map<std::string, Term> *Choices = nullptr;
};

class Lowerer {
public:
  Lowerer(TermManager &M, const ProtocolAst &P, const Lexer &Lx)
      : M(M), P(P), Lx(Lx) {}

  FrontBundle run();

private:
  [[noreturn]] void fail(Loc L, const std::string &Msg) const {
    throw FrontError(
        Diagnostic{Lx.file(), L.Line, L.Col, Msg, Lx.lineText(L.Line)});
  }

  Term lower(const Expr &E, const ExprCtx &C);
  Term lowerBool(const Expr &E, const ExprCtx &C, const char *What);
  void pushBinder(const Binder &B, std::vector<Term> &Vars);
  void popBinders(size_t Count);
  void lowerTransition(const TransitionAst &T);
  void lowerTemplate(const TemplateAst &T, FrontBundle &B);
  void lowerCheck(const CheckAst &C, FrontBundle &B);

  TermManager &M;
  const ProtocolAst &P;
  const Lexer &Lx;
  std::unique_ptr<sys::ParamSystem> Sys;
  std::map<std::string, Term> Globals;
  std::map<std::string, Term> Locals;
  /// Template quantifier name -> formal (set by lowerTemplate).
  std::map<std::string, Term> TemplateQ;
  /// Innermost-last stack of quantifier/card binders.
  std::vector<std::pair<std::string, Term>> Bound;
};

FrontBundle Lowerer::run() {
  FrontBundle B;
  Sys = std::make_unique<sys::ParamSystem>(
      M, P.Name, P.Sync ? sys::Composition::Sync : sys::Composition::Async);

  for (const VarDecl &D : P.Vars) {
    if (Globals.count(D.Name) || Locals.count(D.Name))
      fail(D.L, "duplicate declaration of '" + D.Name + "'");
    if (D.IsLocal)
      Locals[D.Name] = Sys->addLocal(D.Name);
    else {
      Term G = Sys->addGlobal(D.Name);
      Globals[D.Name] = G;
      if (D.IsSize) {
        if (Sys->sizeVar())
          fail(D.L, "duplicate 'size' declaration ('" +
                        (*Sys->sizeVar())->name() + "' is already the size)");
        Sys->setSizeVar(G);
      }
    }
  }

  ExprCtx StateCtx; // init/safe: plain state formulas.
  if (P.Init)
    Sys->setInit(lowerBool(*P.Init, StateCtx, "init"));
  if (P.Safe)
    Sys->setSafe(lowerBool(*P.Safe, StateCtx, "safe"));

  for (const TransitionAst &T : P.Transitions)
    lowerTransition(T);

  if (P.Template)
    lowerTemplate(*P.Template, B);
  if (P.Check)
    lowerCheck(*P.Check, B);

  B.ExpectSafe = P.ExpectSafe;
  B.NeedsVenn = P.NeedsVenn;
  B.Property = P.Property;
  B.Sys = std::move(Sys);
  return B;
}

// -- Expressions --------------------------------------------------------------

Term Lowerer::lowerBool(const Expr &E, const ExprCtx &C, const char *What) {
  Term T = lower(E, C);
  if (T.sort() != Sort::Bool)
    fail(E.L, std::string(What) + " must be a formula, got sort " +
                  sortWord(T.sort()));
  return T;
}

void Lowerer::pushBinder(const Binder &B, std::vector<Term> &Vars) {
  if (Globals.count(B.Name) || Locals.count(B.Name))
    fail(B.L, "binder '" + B.Name + "' shadows a declared variable");
  for (const auto &[Name, V] : Bound)
    if (Name == B.Name)
      fail(B.L, "binder '" + B.Name + "' shadows an outer binder");
  Term V = M.mkVar(B.Name, B.IsInt ? Sort::Int : Sort::Tid);
  Bound.emplace_back(B.Name, V);
  Vars.push_back(V);
}

void Lowerer::popBinders(size_t Count) {
  Bound.resize(Bound.size() - Count);
}

Term Lowerer::lower(const Expr &E, const ExprCtx &C) {
  switch (E.K) {
  case ExKind::IntLit:
    return M.mkInt(E.IntVal);
  case ExKind::BoolLit:
    return M.mkBool(E.BoolVal);
  case ExKind::SelfRef:
    if (!C.AllowSelf)
      fail(E.L, "'self' is only allowed inside a transition or round");
    return Sys->self();
  case ExKind::Name: {
    if (E.Post) {
      if (!C.AllowPost)
        fail(E.L, "post-state '" + E.Name +
                      "'' is only allowed inside a round relation");
      auto G = Globals.find(E.Name);
      if (G != Globals.end())
        return Sys->post(G->second);
      if (Locals.count(E.Name))
        fail(E.L, "post-state local '" + E.Name +
                      "'' needs an index, e.g. " + E.Name + "'[self]");
      fail(E.L, "unknown variable '" + E.Name + "'");
    }
    for (auto It = Bound.rbegin(); It != Bound.rend(); ++It)
      if (It->first == E.Name)
        return It->second;
    if (C.Choices) {
      auto It = C.Choices->find(E.Name);
      if (It != C.Choices->end())
        return It->second;
    }
    if (C.TemplateScope) {
      auto It = TemplateQ.find(E.Name);
      if (It != TemplateQ.end())
        return It->second;
    }
    if (auto It = Globals.find(E.Name); It != Globals.end())
      return It->second;
    if (Locals.count(E.Name))
      fail(E.L, "local array '" + E.Name +
                    "' cannot be used without an index");
    fail(E.L, "unknown variable '" + E.Name + "'");
  }
  case ExKind::Read: {
    auto It = Locals.find(E.Name);
    if (It == Locals.end()) {
      if (Globals.count(E.Name))
        fail(E.L, "'" + E.Name + "' is a global and cannot be indexed");
      fail(E.L, "unknown variable '" + E.Name + "'");
    }
    if (E.Post && !C.AllowPost)
      fail(E.L, "post-state '" + E.Name +
                    "'' is only allowed inside a round relation");
    Term Idx = lower(*E.Kids[0], C);
    if (Idx.sort() != Sort::Tid)
      fail(E.Kids[0]->L, "array index must be a thread identifier, got " +
                             std::string(sortWord(Idx.sort())));
    Term Arr = E.Post ? Sys->post(It->second) : It->second;
    return M.mkRead(Arr, Idx);
  }
  case ExKind::Card: {
    const Binder &B = E.Binders[0];
    if (B.IsInt)
      fail(B.L, "cardinality must bind a thread variable ('" + B.Name +
                    "' is declared int)");
    std::vector<Term> Vars;
    pushBinder(B, Vars);
    Term Body = lowerBool(*E.Kids[0], C, "cardinality body");
    popBinders(1);
    return M.mkCard(Vars[0], Body);
  }
  case ExKind::Quant: {
    std::vector<Term> Vars;
    for (const Binder &B : E.Binders)
      pushBinder(B, Vars);
    Term Body = lowerBool(*E.Kids[0], C, "quantifier body");
    popBinders(E.Binders.size());
    return E.IsForall ? M.mkForall(Vars, Body) : M.mkExists(Vars, Body);
  }
  case ExKind::Ite: {
    Term Cond = lowerBool(*E.Kids[0], C, "ite condition");
    Term Then = lower(*E.Kids[1], C);
    Term Else = lower(*E.Kids[2], C);
    if (Then.sort() != Sort::Int || Else.sort() != Sort::Int)
      fail(E.L, "ite branches must be int, got " +
                    std::string(sortWord(Then.sort())) + " and " +
                    sortWord(Else.sort()));
    return M.mkIte(Cond, Then, Else);
  }
  case ExKind::Unary: {
    Term A = lower(*E.Kids[0], C);
    if (E.Op == "!") {
      if (A.sort() != Sort::Bool)
        fail(E.L, "operator '!' expects a bool operand, got " +
                      std::string(sortWord(A.sort())));
      return M.mkNot(A);
    }
    if (A.sort() != Sort::Int)
      fail(E.L, "operator '-' expects an int operand, got " +
                    std::string(sortWord(A.sort())));
    return M.mkNeg(A);
  }
  case ExKind::Binary: {
    Term A = lower(*E.Kids[0], C);
    Term B = lower(*E.Kids[1], C);
    const std::string &Op = E.Op;
    auto WantBool = [&]() {
      if (A.sort() != Sort::Bool || B.sort() != Sort::Bool)
        fail(E.L, "operator '" + Op + "' expects bool operands, got " +
                      sortWord(A.sort()) + " and " + sortWord(B.sort()));
    };
    auto WantInt = [&]() {
      if (A.sort() != Sort::Int || B.sort() != Sort::Int)
        fail(E.L, "operator '" + Op + "' expects int operands, got " +
                      sortWord(A.sort()) + " and " + sortWord(B.sort()));
    };
    if (Op == "&&") {
      WantBool();
      return M.mkAnd(A, B);
    }
    if (Op == "||") {
      WantBool();
      return M.mkOr(A, B);
    }
    if (Op == "==>") {
      WantBool();
      return M.mkImplies(A, B);
    }
    if (Op == "==" || Op == "!=") {
      if (A.sort() != B.sort() ||
          (A.sort() != Sort::Int && A.sort() != Sort::Tid))
        fail(E.L, "operands of '" + Op +
                      "' must both be int or both tid, got " +
                      sortWord(A.sort()) + " and " + sortWord(B.sort()));
      return Op == "==" ? M.mkEq(A, B) : M.mkNe(A, B);
    }
    if (Op == "<=" || Op == "<" || Op == ">=" || Op == ">") {
      WantInt();
      if (Op == "<=")
        return M.mkLe(A, B);
      if (Op == "<")
        return M.mkLt(A, B);
      if (Op == ">=")
        return M.mkGe(A, B);
      return M.mkGt(A, B);
    }
    if (Op == "+") {
      WantInt();
      return M.mkAdd(A, B);
    }
    if (Op == "-") {
      WantInt();
      return M.mkSub(A, B);
    }
    // "*"
    WantInt();
    if (A.kind() != logic::Kind::IntConst && B.kind() != logic::Kind::IntConst)
      fail(E.L, "operator '*' needs a constant operand (the theory is "
                "linear arithmetic)");
    return M.mkMul(A, B);
  }
  }
  fail(E.L, "internal: unhandled expression kind");
}

// -- Transitions and rounds ---------------------------------------------------

void Lowerer::lowerTransition(const TransitionAst &T) {
  std::map<std::string, Term> Choices;
  sys::Transition &Tr = T.IsRound ? Sys->addSyncRound(T.Name, M.mkTrue())
                                  : Sys->addTransition(T.Name, M.mkTrue());
  for (const ChoiceDecl &C : T.Choices) {
    if (Globals.count(C.Name) || Locals.count(C.Name))
      fail(C.L, "choice '" + C.Name + "' shadows a declared variable");
    if (Choices.count(C.Name))
      fail(C.L, "duplicate choice '" + C.Name + "' in transition '" +
                    T.Name + "'");
    Choices[C.Name] = C.IsInt ? Sys->addChoice(Tr, C.Name)
                              : Sys->addTidChoice(Tr, C.Name);
  }

  ExprCtx C;
  C.AllowSelf = true;
  C.Choices = &Choices;

  if (T.IsRound) {
    if (!T.Relation)
      fail(T.L, "round '" + T.Name + "' needs a 'relation' entry");
    ExprCtx RC = C;
    RC.AllowPost = true;
    Tr.SyncRelation = lowerBool(*T.Relation, RC, "relation");
  } else if (T.Guard) {
    Tr.Guard = lowerBool(*T.Guard, C, "guard");
  }

  for (const UpdateStmt &U : T.Updates) {
    Term Val = lower(*U.Value, C);
    if (auto It = Globals.find(U.Target); It != Globals.end()) {
      if (U.HasIndex)
        fail(U.L, "'" + U.Target + "' is a global and cannot be indexed");
      if (Val.sort() != Sort::Int)
        fail(U.Value->L, "update of '" + U.Target + "' must be int, got " +
                             std::string(sortWord(Val.sort())));
      if (Tr.GlobalUpd.count(It->second))
        fail(U.L, "duplicate update of '" + U.Target + "' in '" + T.Name +
                      "'");
      Tr.GlobalUpd[It->second] = Val;
      continue;
    }
    auto It = Locals.find(U.Target);
    if (It == Locals.end())
      fail(U.L, "assignment to undeclared variable '" + U.Target + "'");
    if (T.IsRound)
      fail(U.L, "'" + U.Target + "' is a per-thread array; in a round, "
                                 "update it inside the relation via '" +
                    U.Target + "''");
    if (!U.HasIndex)
      fail(U.L, "'" + U.Target + "' is a per-thread array; write '" +
                    U.Target + "[self] := ...'");
    if (Val.sort() != Sort::Int)
      fail(U.Value->L, "update of '" + U.Target + "' must be int, got " +
                           std::string(sortWord(Val.sort())));
    bool Conflicts = Tr.LocalUpd.count(It->second) > 0;
    for (const sys::Transition::ArrayWrite &W : Tr.Writes)
      Conflicts = Conflicts || W.Arr == It->second;
    if (Conflicts)
      fail(U.L, "conflicting updates to '" + U.Target + "' in '" + T.Name +
                    "' (one write per array per transition)");
    if (U.Index->K == ExKind::SelfRef) {
      Tr.LocalUpd[It->second] = Val;
    } else {
      Term Idx = lower(*U.Index, C);
      if (Idx.sort() != Sort::Tid)
        fail(U.Index->L, "array index must be a thread identifier, got " +
                             std::string(sortWord(Idx.sort())));
      Tr.Writes.push_back({It->second, Idx, Val});
    }
  }
}

// -- Template and check sections ----------------------------------------------

void Lowerer::lowerTemplate(const TemplateAst &T, FrontBundle &B) {
  // Bound the shape before formals are built: a huge set count would blow
  // up the tuple search space (and the release build would previously
  // sail past a debug-only assert downstream).
  if (T.NumSets > 8)
    fail(T.L, "template declares " + std::to_string(T.NumSets) +
                  " cardinality sets; at most 8 supported");
  B.Shape.NumSets = T.NumSets;
  for (const Binder &Q : T.Quantifiers)
    B.Shape.Quantifiers.push_back(Q.IsInt ? Sort::Int : Sort::Tid);
  synth::Formals F = synth::makeFormals(M, B.Shape);
  for (size_t I = 0; I < T.Quantifiers.size(); ++I) {
    const Binder &Q = T.Quantifiers[I];
    if (Globals.count(Q.Name) || Locals.count(Q.Name))
      fail(Q.L, "template quantifier '" + Q.Name +
                    "' shadows a declared variable");
    if (TemplateQ.count(Q.Name))
      fail(Q.L, "duplicate template quantifier '" + Q.Name + "'");
    TemplateQ[Q.Name] = F.Q[I];
  }
  if (T.Guard) {
    ExprCtx C;
    C.TemplateScope = true;
    B.QGuard = lowerBool(*T.Guard, C, "template guard");
  }
}

void Lowerer::lowerCheck(const CheckAst &C, FrontBundle &B) {
  // Validate the check parameters here, with a source position, instead
  // of letting them reach the explicit checker raw: a negative
  // max_states used to wrap through the unsigned cast into a near-2^32
  // exploration cap, and a negative thread count aborted in debug builds
  // and looped in release ones.
  if (C.Threads && (*C.Threads < 1 || *C.Threads > 16))
    fail(C.L, "check threads must be between 1 and 16, got " +
                  std::to_string(*C.Threads));
  if (C.MaxStates && *C.MaxStates < 1)
    fail(C.L, "check max_states must be positive, got " +
                  std::to_string(*C.MaxStates));
  if (C.IntBound && *C.IntBound < 1)
    fail(C.L, "check int_bound must be positive, got " +
                  std::to_string(*C.IntBound));
  if (C.ChoiceRange && C.ChoiceRange->first > C.ChoiceRange->second)
    fail(C.L, "check choice_range is empty: " +
                  std::to_string(C.ChoiceRange->first) + " > " +
                  std::to_string(C.ChoiceRange->second));
  if (C.Threads)
    B.Explicit.NumThreads = *C.Threads;
  if (C.MaxStates)
    B.Explicit.MaxStates = static_cast<unsigned>(*C.MaxStates);
  if (C.IntBound)
    B.Explicit.IntBound = *C.IntBound;
  if (C.ChoiceRange) {
    Sys->ChoiceLo = C.ChoiceRange->first;
    Sys->ChoiceHi = C.ChoiceRange->second;
  }
  if (!C.HasStart)
    return;

  // The `start` block defines one uniform initial state for the explicit
  // checker: every global its assigned value (default 0; a declared size
  // variable defaults to the instance size N), every local the assigned
  // value at all threads (default 0).
  std::map<std::string, int64_t> Values;
  for (const StartAssign &A : C.Start) {
    if (!Globals.count(A.Name) && !Locals.count(A.Name))
      fail(A.L, "unknown variable '" + A.Name + "'");
    if (Values.count(A.Name))
      fail(A.L, "duplicate start value for '" + A.Name + "'");
    Values[A.Name] = A.Value;
  }
  sys::ParamSystem *S = Sys.get();
  Sys->CustomInit = [S, Values](int64_t N) {
    sys::ParamSystem::State St;
    St.DomainSize = N;
    for (Term G : S->globals()) {
      auto It = Values.find(G->name());
      int64_t V = It != Values.end() ? It->second : 0;
      if (It == Values.end() && S->sizeVar() && *S->sizeVar() == G)
        V = N;
      St.Scalars[G] = V;
    }
    for (Term L : S->locals()) {
      auto It = Values.find(L->name());
      St.Arrays[L] = std::vector<int64_t>(
          static_cast<size_t>(N), It != Values.end() ? It->second : 0);
    }
    return std::vector<sys::ParamSystem::State>{St};
  };
}

} // namespace

FrontBundle sharpie::front::lowerProtocol(TermManager &M,
                                          const ProtocolAst &P,
                                          const Lexer &Lx) {
  return Lowerer(M, P, Lx).run();
}
