//===- front/Lexer.h - Tokens of the .sharpie language ----------*- C++ -*-===//
//
// Part of sharpie. Hand-written lexer for the protocol language. Tracks
// 1-based line/column positions and keeps the source split into lines so
// diagnostics can quote the offending line.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_FRONT_LEXER_H
#define SHARPIE_FRONT_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace sharpie {
namespace front {

enum class Tok : uint8_t {
  // Literals and names.
  Ident,
  IntLit,
  StringLit,
  // Structural keywords.
  KwProtocol,
  KwSync,
  KwGlobal,
  KwLocal,
  KwSize,
  KwInit,
  KwSafe,
  KwUnsafe,
  KwTransition,
  KwRound,
  KwRelation,
  KwGuard,
  KwChoice,
  KwTemplate,
  KwSets,
  KwCheck,
  KwThreads,
  KwMaxStates,
  KwIntBound,
  KwChoiceRange,
  KwStart,
  KwExpect,
  KwVenn,
  KwProperty,
  // Expression keywords.
  KwForall,
  KwExists,
  KwTrue,
  KwFalse,
  KwSelf,
  KwIte,
  KwInt,
  KwTid,
  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBrack,
  RBrack,
  Semi,
  Colon,
  Comma,
  Dot,
  DotDot,
  Pipe,
  Hash,
  Prime,
  Assign,  // :=
  Implies, // ==>
  AndAnd,
  OrOr,
  Bang,
  EqEq,
  NotEq,
  Le,
  Lt,
  Ge,
  Gt,
  Plus,
  Minus,
  Star,
  End, // end of input
};

/// Printable spelling of a token kind ("';'", "identifier", ...).
const char *tokName(Tok T);

struct Token {
  Tok K = Tok::End;
  std::string Text;   ///< Identifier spelling / string literal contents.
  int64_t IntVal = 0; ///< For IntLit.
  int Line = 1, Col = 1;
};

/// Tokenizes \p Source completely. Throws FrontError on lexical errors
/// (stray characters, unterminated strings or comments, overflowing
/// integer literals).
class Lexer {
public:
  Lexer(const std::string &Source, const std::string &FileName);

  const std::vector<Token> &tokens() const { return Tokens; }
  const std::vector<std::string> &lines() const { return Lines; }
  const std::string &file() const { return FileName; }

  /// The text of 1-based line \p Line ("" when out of range).
  std::string lineText(int Line) const;

private:
  void run(const std::string &Source);

  std::string FileName;
  std::vector<Token> Tokens;
  std::vector<std::string> Lines;
};

} // namespace front
} // namespace sharpie

#endif // SHARPIE_FRONT_LEXER_H
