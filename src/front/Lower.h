//===- front/Lower.h - AST -> ParamSystem elaboration -----------*- C++ -*-===//
//
// Part of sharpie. Lowers a parsed ProtocolAst into a FrontBundle:
// declarations become ParamSystem globals/locals, expressions become
// logic::Terms (fully sort-checked here, since the TermManager builders
// assert rather than report), transitions become guarded commands with
// global/local updates, point-wise array writes and nondet choices, rounds
// become sync relations over primed state, the template block becomes a
// synth::ShapeTemplate plus QGuard over synth::makeFormals' formals, and
// the check block configures the explicit instance (including a uniform
// CustomInit built from the `start` assignments). See DESIGN.md,
// "Protocol language", for the lowering rules.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_FRONT_LOWER_H
#define SHARPIE_FRONT_LOWER_H

#include "front/Ast.h"
#include "front/Front.h"
#include "front/Lexer.h"

namespace sharpie {
namespace front {

/// Elaborates \p P into \p M. Throws FrontError on any semantic error;
/// \p Lx supplies the file name and source lines for diagnostics.
FrontBundle lowerProtocol(logic::TermManager &M, const ProtocolAst &P,
                          const Lexer &Lx);

} // namespace front
} // namespace sharpie

#endif // SHARPIE_FRONT_LOWER_H
