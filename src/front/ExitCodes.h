//===- front/ExitCodes.h - Deterministic driver exit codes ------*- C++ -*-===//
//
// Part of sharpie. The one definition of the pipeline's scriptable exit
// codes, shared by every surface that reports a verdict: the `sharpie`
// CLI, `example_run_protocol`, the `sharpied` daemon and its thin-client
// mode (`sharpie --server`). The values are a wire contract -- scripts,
// the ctest entries and sweep.sh key on them -- so they are pinned by
// tests/exit_codes_test.cpp and must never be renumbered.
//
//   0  verified safe (invariant printed)
//   1  unsafe (explicit counterexample printed)
//   2  unknown: the search space was exhausted without a verdict
//   3  frontend error (parse/elaboration/I-O/protocol), message on stderr
//   4  inconclusive: no verdict AND some recorded failure (timeout,
//      skipped tuple, injected fault, exhausted budget) may have hidden
//      one
//   5  overloaded: the daemon shed the request (admission queue full or
//      draining) and the client exhausted its retry budget; the request
//      was never attempted, so resubmitting later is always safe
//
// `example_run_protocol` layers expected-outcome semantics on top (a
// counterexample on a protocol declared `expect unsafe` exits 0, and its
// code 2 doubles as "usage error"), but draws the raw values from here.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_FRONT_EXITCODES_H
#define SHARPIE_FRONT_EXITCODES_H

namespace sharpie {
namespace front {

enum ExitCode : int {
  ExitVerified = 0,
  ExitUnsafe = 1,
  ExitUnknown = 2,
  ExitError = 3,
  ExitInconclusive = 4,
  ExitOverloaded = 5,
};

/// Short machine-readable verdict names, one per exit code; used by the
/// serving protocol (serve/Proto.h) and the bench scripts.
inline const char *exitCodeName(int Code) {
  switch (Code) {
  case ExitVerified:
    return "verified";
  case ExitUnsafe:
    return "unsafe";
  case ExitUnknown:
    return "unknown";
  case ExitError:
    return "error";
  case ExitInconclusive:
    return "inconclusive";
  case ExitOverloaded:
    return "overloaded";
  default:
    return "invalid";
  }
}

} // namespace front
} // namespace sharpie

#endif // SHARPIE_FRONT_EXITCODES_H
