//===- front/Front.h - Textual protocol frontend ----------------*- C++ -*-===//
//
// Part of sharpie. Public entry points of the `.sharpie` protocol language:
// a textual format covering everything protocols/Protocols.h expresses in
// C++ — globals, thread-local arrays, async guarded commands and sync
// rounds, nondeterministic choices, point-wise array writes, cardinality
// guards #{t | phi}, a shape template with quantifier guard, and the
// explicit-check instance — elaborated into a sys::ParamSystem plus
// synth::ShapeTemplate ready for synth::synthesize().
//
// Error handling contract: every frontend failure — lexical, syntactic,
// sort/elaboration, or I/O — is reported through the single Diagnostic
// type carrying file:line:col and the offending source line. The throwing
// API raises FrontError (which wraps a Diagnostic); the load* wrappers
// never throw, so CLI drivers can always exit with code 3 and a message.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_FRONT_FRONT_H
#define SHARPIE_FRONT_FRONT_H

#include "explicit/Explicit.h"
#include "obs/Obs.h"
#include "synth/Grammar.h"
#include "system/System.h"

#include <exception>
#include <memory>
#include <optional>
#include <string>

namespace sharpie {
namespace front {

/// A frontend error: position, message, and the offending source line.
struct Diagnostic {
  std::string File;
  int Line = 0; ///< 1-based; 0 when no position applies (e.g. I/O errors).
  int Col = 0;  ///< 1-based.
  std::string Message;
  std::string SourceLine; ///< Text of line \p Line, when available.

  /// "file:line:col: error: message\n  <source line>\n  ^" (the position
  /// and snippet are omitted when unavailable).
  std::string render() const;
};

/// The one exception type of the frontend. Everything the lexer, parser and
/// lowering pass can reject is thrown as a FrontError; the load* wrappers
/// below convert it (and any foreign exception) into a Diagnostic result.
class FrontError : public std::exception {
public:
  explicit FrontError(Diagnostic D)
      : Diag(std::move(D)), Rendered(Diag.render()) {}
  const Diagnostic &diagnostic() const { return Diag; }
  const char *what() const noexcept override { return Rendered.c_str(); }

private:
  Diagnostic Diag;
  std::string Rendered;
};

/// The elaborated protocol: mirrors protocols::ProtocolBundle minus the
/// paper-reported reference columns.
struct FrontBundle {
  std::unique_ptr<sys::ParamSystem> Sys;
  synth::ShapeTemplate Shape;
  logic::Term QGuard;               ///< Over synth::makeFormals' formals.
  explct::ExplicitOptions Explicit; ///< Suggested validation instance.
  bool ExpectSafe = true;           ///< `expect unsafe;` flips this.
  bool NeedsVenn = false;           ///< `venn;` (paper Sec. 5.2 examples).
  std::string Property;             ///< `property "...";`, if any.
};

/// Parses and elaborates \p Source into \p M. Throws FrontError.
/// \p Trace, when non-null, receives a "parse" span named after the file.
FrontBundle parseProtocol(logic::TermManager &M, const std::string &Source,
                          const std::string &FileName,
                          obs::TraceBuffer *Trace = nullptr);

/// Result of the non-throwing loaders: exactly one of Bundle/Error is set.
struct LoadResult {
  std::optional<FrontBundle> Bundle;
  std::optional<Diagnostic> Error;
  bool ok() const { return Bundle.has_value(); }
};

/// Reads \p Path and elaborates it. Never throws: I/O failures, frontend
/// errors and any stray exception all land in LoadResult::Error.
LoadResult loadProtocolFile(logic::TermManager &M, const std::string &Path,
                            obs::TraceBuffer *Trace = nullptr);

/// Same, over an in-memory string (used by the tests).
LoadResult loadProtocolString(logic::TermManager &M, const std::string &Source,
                              const std::string &FileName = "<string>",
                              obs::TraceBuffer *Trace = nullptr);

} // namespace front
} // namespace sharpie

#endif // SHARPIE_FRONT_FRONT_H
