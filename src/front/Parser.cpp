//===- front/Parser.cpp - Recursive-descent .sharpie parser ---------------===//
//
// Part of sharpie.
//
//===----------------------------------------------------------------------===//

#include "front/Parser.h"
#include "front/Front.h"

using namespace sharpie;
using namespace sharpie::front;

static Loc locOf(const Token &T) { return Loc{T.Line, T.Col}; }

/// "identifier 'foo'" / "';'" / "end of input" - the actual-token half of
/// an "expected X, got Y" message.
static std::string describe(const Token &T) {
  if (T.K == Tok::Ident)
    return "identifier '" + T.Text + "'";
  if (T.K == Tok::IntLit)
    return "integer literal " + std::to_string(T.IntVal);
  return tokName(T.K);
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Ts.size())
    I = Ts.size() - 1; // The End token.
  return Ts[I];
}

const Token &Parser::advance() {
  const Token &T = peek();
  if (Pos + 1 < Ts.size())
    ++Pos;
  return T;
}

void Parser::fail(const Token &T, const std::string &Msg) const {
  throw FrontError(
      Diagnostic{Lx.file(), T.Line, T.Col, Msg, Lx.lineText(T.Line)});
}

const Token &Parser::expect(Tok K) {
  if (!at(K))
    fail(peek(), std::string("expected ") + tokName(K) + ", got " +
                     describe(peek()));
  return advance();
}

// -- Items --------------------------------------------------------------------

ProtocolAst Parser::parseProtocol() {
  ProtocolAst P;
  P.L = locOf(peek());
  expect(Tok::KwProtocol);
  P.Name = expect(Tok::Ident).Text;
  if (at(Tok::KwSync)) {
    advance();
    P.Sync = true;
  }
  expect(Tok::LBrace);
  while (!at(Tok::RBrace)) {
    if (at(Tok::End))
      fail(peek(), "unexpected end of input inside 'protocol' (missing '}')");
    parseItem(P);
  }
  expect(Tok::RBrace);
  if (!at(Tok::End))
    fail(peek(), "expected end of input after protocol, got " +
                     describe(peek()));
  return P;
}

void Parser::parseItem(ProtocolAst &P) {
  const Token &T = peek();
  switch (T.K) {
  case Tok::KwGlobal:
  case Tok::KwLocal:
  case Tok::KwSize:
    parseVarDecl(P);
    return;
  case Tok::KwInit: {
    advance();
    expect(Tok::Colon);
    if (P.Init)
      fail(T, "duplicate 'init' section");
    P.Init = parseExpr();
    expect(Tok::Semi);
    return;
  }
  case Tok::KwSafe: {
    advance();
    expect(Tok::Colon);
    if (P.Safe)
      fail(T, "duplicate 'safe' section");
    P.Safe = parseExpr();
    expect(Tok::Semi);
    return;
  }
  case Tok::KwTransition:
  case Tok::KwRound: {
    bool IsRound = T.K == Tok::KwRound;
    if (IsRound && !P.Sync)
      fail(T, "'round' requires a sync protocol (declare 'protocol " +
                  P.Name + " sync')");
    if (!IsRound && P.Sync)
      fail(T, "'transition' is not allowed in a sync protocol; use 'round'");
    TransitionAst Tr = parseTransition(IsRound);
    for (const TransitionAst &Prev : P.Transitions)
      if (Prev.Name == Tr.Name)
        fail(T, "duplicate transition '" + Tr.Name + "'");
    P.Transitions.push_back(std::move(Tr));
    return;
  }
  case Tok::KwTemplate: {
    if (P.Template)
      fail(T, "duplicate 'template' section");
    P.Template = parseTemplate();
    return;
  }
  case Tok::KwCheck: {
    if (P.Check)
      fail(T, "duplicate 'check' section");
    P.Check = parseCheck();
    return;
  }
  case Tok::KwExpect: {
    advance();
    if (at(Tok::KwSafe))
      P.ExpectSafe = true;
    else if (at(Tok::KwUnsafe))
      P.ExpectSafe = false;
    else
      fail(peek(), "expected 'safe' or 'unsafe' after 'expect', got " +
                       describe(peek()));
    advance();
    expect(Tok::Semi);
    return;
  }
  case Tok::KwVenn: {
    advance();
    P.NeedsVenn = true;
    expect(Tok::Semi);
    return;
  }
  case Tok::KwProperty: {
    advance();
    P.Property = expect(Tok::StringLit).Text;
    expect(Tok::Semi);
    return;
  }
  default:
    fail(T, "expected a protocol item (declaration, init, safe, transition, "
            "template, check, expect, venn, property), got " +
                describe(T));
  }
}

void Parser::parseVarDecl(ProtocolAst &P) {
  VarDecl D;
  D.L = locOf(peek());
  Tok K = advance().K;
  D.IsLocal = K == Tok::KwLocal;
  D.IsSize = K == Tok::KwSize;
  D.Name = expect(Tok::Ident).Text;
  expect(Tok::Semi);
  P.Vars.push_back(std::move(D));
}

TransitionAst Parser::parseTransition(bool IsRound) {
  TransitionAst Tr;
  Tr.L = locOf(peek());
  advance(); // 'transition' / 'round'
  Tr.IsRound = IsRound;
  Tr.Name = expect(Tok::Ident).Text;
  expect(Tok::LBrace);
  while (!at(Tok::RBrace)) {
    const Token &T = peek();
    switch (T.K) {
    case Tok::KwGuard: {
      if (IsRound)
        fail(T, "'guard' is not allowed in a round; put the condition in "
                "the relation");
      advance();
      expect(Tok::Colon);
      ExprPtr G = parseExpr();
      expect(Tok::Semi);
      if (!Tr.Guard)
        Tr.Guard = std::move(G);
      else {
        // Multiple guard lines conjoin.
        auto And = std::make_unique<Expr>();
        And->K = ExKind::Binary;
        And->L = Tr.Guard->L;
        And->Op = "&&";
        And->Kids.push_back(std::move(Tr.Guard));
        And->Kids.push_back(std::move(G));
        Tr.Guard = std::move(And);
      }
      break;
    }
    case Tok::KwRelation: {
      if (!IsRound)
        fail(T, "'relation' is only allowed in a round");
      advance();
      expect(Tok::Colon);
      if (Tr.Relation)
        fail(T, "duplicate 'relation' in round '" + Tr.Name + "'");
      Tr.RelationLoc = locOf(T);
      Tr.Relation = parseExpr();
      expect(Tok::Semi);
      break;
    }
    case Tok::KwChoice: {
      if (IsRound)
        fail(T, "'choice' is not allowed in a round");
      advance();
      ChoiceDecl C;
      C.L = locOf(peek());
      C.Name = expect(Tok::Ident).Text;
      expect(Tok::Colon);
      if (at(Tok::KwInt))
        C.IsInt = true;
      else if (at(Tok::KwTid))
        C.IsInt = false;
      else
        fail(peek(), "expected 'int' or 'tid' as choice sort, got " +
                         describe(peek()));
      advance();
      expect(Tok::Semi);
      Tr.Choices.push_back(std::move(C));
      break;
    }
    case Tok::Ident: {
      UpdateStmt U;
      U.L = locOf(T);
      U.Target = advance().Text;
      if (at(Tok::LBrack)) {
        advance();
        U.HasIndex = true;
        U.Index = parseExpr();
        expect(Tok::RBrack);
      }
      expect(Tok::Assign);
      U.Value = parseExpr();
      expect(Tok::Semi);
      Tr.Updates.push_back(std::move(U));
      break;
    }
    case Tok::End:
      fail(T, "unexpected end of input inside '" + Tr.Name +
                  "' (missing '}')");
    default:
      fail(T, std::string("expected a ") +
                  (IsRound ? "round item (relation or an update)"
                           : "transition item (guard, choice, or an update)") +
                  ", got " + describe(T));
    }
  }
  expect(Tok::RBrace);
  return Tr;
}

TemplateAst Parser::parseTemplate() {
  TemplateAst T;
  T.L = locOf(peek());
  advance(); // 'template'
  expect(Tok::LBrace);
  bool HaveSets = false;
  while (!at(Tok::RBrace)) {
    const Token &Tk = peek();
    switch (Tk.K) {
    case Tok::KwSets: {
      advance();
      expect(Tok::Colon);
      if (HaveSets)
        fail(Tk, "duplicate 'sets' entry in template");
      const Token &N = expect(Tok::IntLit);
      T.NumSets = static_cast<unsigned>(N.IntVal);
      HaveSets = true;
      expect(Tok::Semi);
      break;
    }
    case Tok::KwForall: {
      advance();
      T.Quantifiers.push_back(parseBinder(/*DefaultInt=*/false));
      expect(Tok::Semi);
      break;
    }
    case Tok::KwGuard: {
      advance();
      expect(Tok::Colon);
      if (T.Guard)
        fail(Tk, "duplicate 'guard' entry in template");
      T.Guard = parseExpr();
      expect(Tok::Semi);
      break;
    }
    case Tok::End:
      fail(Tk, "unexpected end of input inside 'template' (missing '}')");
    default:
      fail(Tk, "expected a template item (sets, forall, guard), got " +
                   describe(Tk));
    }
  }
  expect(Tok::RBrace);
  return T;
}

CheckAst Parser::parseCheck() {
  CheckAst C;
  C.L = locOf(peek());
  advance(); // 'check'
  expect(Tok::LBrace);
  auto IntEntry = [&](std::optional<int64_t> &Slot, const char *What) {
    const Token &T = peek();
    advance();
    expect(Tok::Colon);
    if (Slot)
      fail(T, std::string("duplicate '") + What + "' entry in check");
    Slot = parseIntArg();
    expect(Tok::Semi);
  };
  while (!at(Tok::RBrace)) {
    const Token &Tk = peek();
    switch (Tk.K) {
    case Tok::KwThreads:
      IntEntry(C.Threads, "threads");
      break;
    case Tok::KwMaxStates:
      IntEntry(C.MaxStates, "max_states");
      break;
    case Tok::KwIntBound:
      IntEntry(C.IntBound, "int_bound");
      break;
    case Tok::KwChoiceRange: {
      advance();
      expect(Tok::Colon);
      if (C.ChoiceRange)
        fail(Tk, "duplicate 'choice_range' entry in check");
      int64_t Lo = parseIntArg();
      expect(Tok::DotDot);
      int64_t Hi = parseIntArg();
      C.ChoiceRange = {Lo, Hi};
      expect(Tok::Semi);
      break;
    }
    case Tok::KwStart: {
      advance();
      if (C.HasStart)
        fail(Tk, "duplicate 'start' block in check");
      C.HasStart = true;
      expect(Tok::LBrace);
      while (!at(Tok::RBrace)) {
        StartAssign A;
        A.L = locOf(peek());
        A.Name = expect(Tok::Ident).Text;
        expect(Tok::Assign);
        A.Value = parseIntArg();
        expect(Tok::Semi);
        C.Start.push_back(std::move(A));
      }
      expect(Tok::RBrace);
      break;
    }
    case Tok::End:
      fail(Tk, "unexpected end of input inside 'check' (missing '}')");
    default:
      fail(Tk, "expected a check item (threads, max_states, int_bound, "
               "choice_range, start), got " +
                   describe(Tk));
    }
  }
  expect(Tok::RBrace);
  return C;
}

Binder Parser::parseBinder(bool DefaultInt) {
  Binder B;
  B.L = locOf(peek());
  B.Name = expect(Tok::Ident).Text;
  B.IsInt = DefaultInt;
  if (at(Tok::Colon)) {
    advance();
    if (at(Tok::KwInt))
      B.IsInt = true;
    else if (at(Tok::KwTid))
      B.IsInt = false;
    else
      fail(peek(),
           "expected 'int' or 'tid' as binder sort, got " + describe(peek()));
    advance();
  }
  return B;
}

int64_t Parser::parseIntArg() {
  bool Negate = false;
  if (at(Tok::Minus)) {
    advance();
    Negate = true;
  }
  const Token &T = expect(Tok::IntLit);
  return Negate ? -T.IntVal : T.IntVal;
}

// -- Expressions --------------------------------------------------------------

ExprPtr Parser::parseExpr() {
  if (at(Tok::KwForall) || at(Tok::KwExists)) {
    auto E = std::make_unique<Expr>();
    E->K = ExKind::Quant;
    E->L = locOf(peek());
    E->IsForall = at(Tok::KwForall);
    advance();
    E->Binders.push_back(parseBinder(false));
    while (at(Tok::Comma)) {
      advance();
      E->Binders.push_back(parseBinder(false));
    }
    expect(Tok::Dot);
    E->Kids.push_back(parseExpr()); // Body extends as far right as possible.
    return E;
  }
  ExprPtr L = parseOr();
  if (at(Tok::Implies)) {
    auto E = std::make_unique<Expr>();
    E->K = ExKind::Binary;
    E->L = locOf(peek());
    E->Op = "==>";
    advance();
    E->Kids.push_back(std::move(L));
    E->Kids.push_back(parseExpr()); // Right-associative.
    return E;
  }
  return L;
}

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (at(Tok::OrOr)) {
    auto E = std::make_unique<Expr>();
    E->K = ExKind::Binary;
    E->L = locOf(peek());
    E->Op = "||";
    advance();
    E->Kids.push_back(std::move(L));
    E->Kids.push_back(parseAnd());
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseCmp();
  while (at(Tok::AndAnd)) {
    auto E = std::make_unique<Expr>();
    E->K = ExKind::Binary;
    E->L = locOf(peek());
    E->Op = "&&";
    advance();
    E->Kids.push_back(std::move(L));
    E->Kids.push_back(parseCmp());
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseCmp() {
  ExprPtr L = parseAdd();
  const char *Op = nullptr;
  switch (peek().K) {
  case Tok::EqEq:
    Op = "==";
    break;
  case Tok::NotEq:
    Op = "!=";
    break;
  case Tok::Le:
    Op = "<=";
    break;
  case Tok::Lt:
    Op = "<";
    break;
  case Tok::Ge:
    Op = ">=";
    break;
  case Tok::Gt:
    Op = ">";
    break;
  default:
    return L;
  }
  auto E = std::make_unique<Expr>();
  E->K = ExKind::Binary;
  E->L = locOf(peek());
  E->Op = Op;
  advance();
  E->Kids.push_back(std::move(L));
  E->Kids.push_back(parseAdd());
  return E;
}

ExprPtr Parser::parseAdd() {
  ExprPtr L = parseMul();
  while (at(Tok::Plus) || at(Tok::Minus)) {
    auto E = std::make_unique<Expr>();
    E->K = ExKind::Binary;
    E->L = locOf(peek());
    E->Op = at(Tok::Plus) ? "+" : "-";
    advance();
    E->Kids.push_back(std::move(L));
    E->Kids.push_back(parseMul());
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseMul() {
  ExprPtr L = parseUnary();
  while (at(Tok::Star)) {
    auto E = std::make_unique<Expr>();
    E->K = ExKind::Binary;
    E->L = locOf(peek());
    E->Op = "*";
    advance();
    E->Kids.push_back(std::move(L));
    E->Kids.push_back(parseUnary());
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  if (at(Tok::KwForall) || at(Tok::KwExists))
    return parseExpr(); // Quantifier as an operand; body extends right.
  if (at(Tok::Bang) || at(Tok::Minus)) {
    auto E = std::make_unique<Expr>();
    E->K = ExKind::Unary;
    E->L = locOf(peek());
    E->Op = at(Tok::Bang) ? "!" : "-";
    advance();
    E->Kids.push_back(parseUnary());
    return E;
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  const Token &T = peek();
  auto E = std::make_unique<Expr>();
  E->L = locOf(T);
  switch (T.K) {
  case Tok::IntLit:
    E->K = ExKind::IntLit;
    E->IntVal = T.IntVal;
    advance();
    return E;
  case Tok::KwTrue:
  case Tok::KwFalse:
    E->K = ExKind::BoolLit;
    E->BoolVal = T.K == Tok::KwTrue;
    advance();
    return E;
  case Tok::KwSelf:
    E->K = ExKind::SelfRef;
    advance();
    return E;
  case Tok::KwIte: {
    advance();
    E->K = ExKind::Ite;
    expect(Tok::LParen);
    E->Kids.push_back(parseExpr());
    expect(Tok::Comma);
    E->Kids.push_back(parseExpr());
    expect(Tok::Comma);
    E->Kids.push_back(parseExpr());
    expect(Tok::RParen);
    return E;
  }
  case Tok::LParen: {
    advance();
    ExprPtr Inner = parseExpr();
    expect(Tok::RParen);
    return Inner;
  }
  case Tok::Hash: {
    advance();
    E->K = ExKind::Card;
    expect(Tok::LBrace);
    E->Binders.push_back(parseBinder(false));
    expect(Tok::Pipe);
    E->Kids.push_back(parseExpr());
    expect(Tok::RBrace);
    return E;
  }
  case Tok::Ident: {
    E->Name = advance().Text;
    if (at(Tok::Prime)) {
      advance();
      E->Post = true;
    }
    if (at(Tok::LBrack)) {
      advance();
      E->K = ExKind::Read;
      E->Kids.push_back(parseExpr());
      expect(Tok::RBrack);
    } else
      E->K = ExKind::Name;
    return E;
  }
  default:
    fail(T, "expected an expression, got " + describe(T));
  }
}
