//===- front/Parser.h - Recursive-descent .sharpie parser -------*- C++ -*-===//
//
// Part of sharpie. Grammar (see DESIGN.md, "Protocol language", for the
// full EBNF). The parser is a plain recursive-descent over the token
// stream; it builds the untyped AST of Ast.h and reports every syntax
// error as a FrontError.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_FRONT_PARSER_H
#define SHARPIE_FRONT_PARSER_H

#include "front/Ast.h"
#include "front/Lexer.h"

namespace sharpie {
namespace front {

class Parser {
public:
  explicit Parser(const Lexer &Lx) : Lx(Lx), Ts(Lx.tokens()) {}

  /// Parses one complete protocol; input must be exhausted afterwards.
  ProtocolAst parseProtocol();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool at(Tok K) const { return peek().K == K; }
  const Token &expect(Tok K);
  [[noreturn]] void fail(const Token &T, const std::string &Msg) const;

  // Items.
  void parseItem(ProtocolAst &P);
  void parseVarDecl(ProtocolAst &P);
  TransitionAst parseTransition(bool IsRound);
  TemplateAst parseTemplate();
  CheckAst parseCheck();

  // Expressions, lowest to highest precedence.
  ExprPtr parseExpr();    // quantifiers + implication (right-assoc)
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseCmp();
  ExprPtr parseAdd();
  ExprPtr parseMul();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  Binder parseBinder(bool DefaultInt);
  int64_t parseIntArg(); // possibly negated integer literal

  const Lexer &Lx;
  const std::vector<Token> &Ts;
  size_t Pos = 0;
};

} // namespace front
} // namespace sharpie

#endif // SHARPIE_FRONT_PARSER_H
