//===- front/Canon.cpp - Canonical hashing of lowered protocols ---------------===//
//
// Part of sharpie. See Canon.h.
//
//===----------------------------------------------------------------------===//

#include "front/Canon.h"

#include "logic/TermIO.h"

#include <algorithm>
#include <cstdio>

using namespace sharpie;
using namespace sharpie::front;
using logic::Term;

namespace {

void field(std::string &Out, const char *Key, const std::string &Val) {
  Out += Key;
  Out += '=';
  Out += Val;
  Out += '\n';
}

void termField(std::string &Out, const char *Key, Term T) {
  field(Out, Key, logic::serializeTerm(T));
}

/// Update maps are keyed by Term, i.e. by manager interning order; the
/// canonical form re-sorts entries by the serialized key so two managers
/// that interned the same variables in different orders agree.
void updateMap(std::string &Out, const char *Key,
               const std::map<Term, Term> &Upd) {
  std::vector<std::pair<std::string, std::string>> Rows;
  Rows.reserve(Upd.size());
  for (const auto &[V, Val] : Upd)
    Rows.emplace_back(logic::serializeTerm(V), logic::serializeTerm(Val));
  std::sort(Rows.begin(), Rows.end());
  for (const auto &[K, V] : Rows) {
    Out += Key;
    Out += '[';
    Out += K;
    Out += "]=";
    Out += V;
    Out += '\n';
  }
}

} // namespace

std::string CanonicalHash::hex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

std::string sharpie::front::canonicalProblemText(
    const sys::ParamSystem &Sys, const synth::ShapeTemplate &Shape,
    Term QGuard, const explct::ExplicitOptions &Explicit, bool NeedsVenn,
    bool ExpectSafe) {
  std::string Out;
  field(Out, "canon", "sharpie-canon-v1");
  field(Out, "name", Sys.name());
  field(Out, "mode", Sys.mode() == sys::Composition::Async ? "async" : "sync");
  for (Term G : Sys.globals())
    field(Out, "global", G->name());
  for (Term L : Sys.locals())
    field(Out, "local", L->name());
  field(Out, "size_var",
        Sys.sizeVar() ? (*Sys.sizeVar())->name() : std::string("-"));
  termField(Out, "init", Sys.init());
  termField(Out, "safe", Sys.safe());
  for (const sys::Transition &T : Sys.transitions()) {
    field(Out, "transition", T.Name);
    termField(Out, "guard", T.Guard);
    updateMap(Out, "gupd", T.GlobalUpd);
    updateMap(Out, "lupd", T.LocalUpd);
    for (Term C : T.Choices)
      field(Out, "choice", C->name());
    for (Term C : T.TidChoices)
      field(Out, "tid_choice", C->name());
    for (const sys::Transition::ArrayWrite &W : T.Writes) {
      termField(Out, "write_arr", W.Arr);
      termField(Out, "write_idx", W.Idx);
      termField(Out, "write_val", W.Val);
    }
    termField(Out, "sync", T.SyncRelation);
  }
  field(Out, "choice_lo", std::to_string(Sys.ChoiceLo));
  field(Out, "choice_hi", std::to_string(Sys.ChoiceHi));
  field(Out, "shape_sets", std::to_string(Shape.NumSets));
  for (logic::Sort S : Shape.Quantifiers)
    field(Out, "shape_quant", logic::sortName(S));
  termField(Out, "qguard", QGuard);
  field(Out, "venn", NeedsVenn ? "1" : "0");
  field(Out, "expect_safe", ExpectSafe ? "1" : "0");
  field(Out, "explicit_threads", std::to_string(Explicit.NumThreads));
  field(Out, "explicit_max_states", std::to_string(Explicit.MaxStates));
  field(Out, "explicit_int_bound", std::to_string(Explicit.IntBound));
  return Out;
}

CanonicalHash sharpie::front::canonicalProblemHash(
    const sys::ParamSystem &Sys, const synth::ShapeTemplate &Shape,
    Term QGuard, const explct::ExplicitOptions &Explicit, bool NeedsVenn,
    bool ExpectSafe) {
  std::string Text =
      canonicalProblemText(Sys, Shape, QGuard, Explicit, NeedsVenn, ExpectSafe);
  // FNV-1a, two independently seeded 64-bit lanes.
  uint64_t Hi = 0xcbf29ce484222325ULL;
  uint64_t Lo = 0x6c62272e07bb0142ULL;
  for (unsigned char C : Text) {
    Hi = (Hi ^ C) * 0x100000001b3ULL;
    Lo = (Lo ^ (C + 0x9eULL)) * 0x100000001b3ULL;
  }
  return {Hi, Lo};
}

CanonicalHash sharpie::front::canonicalProblemHash(const FrontBundle &B) {
  return canonicalProblemHash(*B.Sys, B.Shape, B.QGuard, B.Explicit,
                              B.NeedsVenn, B.ExpectSafe);
}
