//===- serve/Proto.cpp - The sharpied wire protocol ---------------------------===//
//
// Part of sharpie. See Proto.h.
//
//===----------------------------------------------------------------------===//

#include "serve/Proto.h"

#include "front/ExitCodes.h"
#include "logic/TermOps.h"

#include <cstdio>
#include <cstdlib>

using namespace sharpie;
using namespace sharpie::serve;

Json VerifyRequest::encode() const {
  Json J;
  J["op"] = Json("verify");
  J["protocol_text"] = Json(ProtocolText);
  J["file"] = Json(File);
  J["workers"] = Json(Workers);
  J["time_budget"] = Json(TimeBudget);
  J["max_tuples"] = Json(MaxTuples);
  J["smt_timeout_ms"] = Json(SmtTimeoutMs);
  J["no_supervise"] = Json(NoSupervise);
  J["no_incremental"] = Json(NoIncremental);
  J["no_refine"] = Json(NoRefine);
  J["refine_budget"] = Json(RefineBudget);
  J["faults"] = Json(Faults);
  J["json"] = Json(JsonLine);
  return J;
}

VerifyRequest VerifyRequest::decode(const serve::Json &J) {
  VerifyRequest R;
  R.ProtocolText = J.get("protocol_text").asString();
  R.File = J.get("file").asString();
  R.Workers = static_cast<unsigned>(J.get("workers").asInt(1));
  R.TimeBudget = J.get("time_budget").asDouble(0);
  R.MaxTuples = static_cast<unsigned>(J.get("max_tuples").asInt(0));
  R.SmtTimeoutMs = static_cast<unsigned>(J.get("smt_timeout_ms").asInt(0));
  R.NoSupervise = J.get("no_supervise").asBool(false);
  R.NoIncremental = J.get("no_incremental").asBool(false);
  R.NoRefine = J.get("no_refine").asBool(false);
  R.RefineBudget = static_cast<unsigned>(J.get("refine_budget").asInt(0));
  R.Faults = J.get("faults").asString();
  R.JsonLine = J.get("json").asBool(false);
  return R;
}

Json VerifyResponse::encode() const {
  Json J;
  J["ok"] = Json(Exit != front::ExitError && Exit != front::ExitOverloaded);
  J["exit"] = Json(Exit);
  J["verdict"] = Json(std::string(front::exitCodeName(Exit)));
  J["output"] = Json(Output);
  J["error"] = Json(Error);
  J["cache"] = Json(Cache);
  J["hash"] = Json(Hash);
  J["cache_lookup_seconds"] = Json(CacheLookupSeconds);
  J["server_seconds"] = Json(ServerSeconds);
  J["disposition"] = Json(Disposition);
  if (Overloaded) {
    J["overloaded"] = Json(true);
    J["retry_after_ms"] = Json(RetryAfterMs);
  }
  return J;
}

VerifyResponse VerifyResponse::decode(const serve::Json &J) {
  VerifyResponse R;
  R.Exit = static_cast<int>(J.get("exit").asInt(front::ExitError));
  R.Output = J.get("output").asString();
  R.Error = J.get("error").asString();
  R.Cache = J.get("cache").asString();
  R.Hash = J.get("hash").asString();
  R.CacheLookupSeconds = J.get("cache_lookup_seconds").asDouble(0);
  R.ServerSeconds = J.get("server_seconds").asDouble(0);
  R.Overloaded = J.get("overloaded").asBool(false);
  R.RetryAfterMs = J.get("retry_after_ms").asInt(0);
  std::string D = J.get("disposition").asString();
  if (!D.empty())
    R.Disposition = D;
  return R;
}

std::string sharpie::serve::renderHeader(const std::string &Name,
                                         const std::string &Property) {
  std::string Out = "== " + Name + " ==\n";
  if (!Property.empty())
    Out += "property: " + Property + "\n";
  return Out;
}

std::string sharpie::serve::renderJsonLine(
    const std::string &Protocol, const std::string &File, bool Verified,
    bool FoundCex, bool Inconclusive, double ParseSeconds,
    double CacheLookupSeconds, double SynthSeconds, double TotalSeconds,
    const std::string &StatsJson) {
  char Buf[256];
  std::string Out = "{\"protocol\":\"" + Protocol + "\",\"file\":\"" + File +
                    "\",\"verified\":" + (Verified ? "true" : "false") +
                    ",\"found_cex\":" + (FoundCex ? "true" : "false") +
                    ",\"inconclusive\":" + (Inconclusive ? "true" : "false");
  std::snprintf(Buf, sizeof(Buf),
                ",\"parse_seconds\":%.6f,\"cache_lookup_seconds\":%.6f,"
                "\"synth_seconds\":%.3f,\"total_seconds\":%.3f,",
                ParseSeconds, CacheLookupSeconds, SynthSeconds, TotalSeconds);
  Out += Buf;
  Out += StatsJson;
  Out += "}\n";
  return Out;
}

RenderedVerdict sharpie::serve::renderVerdict(const synth::SynthResult &Res,
                                              bool ExpectSafe,
                                              double ParseSeconds) {
  RenderedVerdict V;
  char Buf[256];
  if (Res.Verified) {
    V.Exit = front::ExitVerified;
    std::snprintf(Buf, sizeof(Buf),
                  "VERIFIED in %.2fs (%u tuples, %u SMT checks; parse "
                  "%.1fms)\n",
                  Res.Stats.Seconds, Res.Stats.TuplesTried,
                  Res.Stats.SmtChecks, ParseSeconds * 1e3);
    V.Text = Buf;
    V.Text += "inferred cardinalities:\n";
    for (logic::Term S : Res.SetBodies)
      V.Text += "  #{t | " + logic::toString(S) + "}\n";
    V.Text += "invariant atoms (" + std::to_string(Res.Atoms.size()) + "):\n";
    for (logic::Term A : Res.Atoms)
      V.Text += "  " + logic::toString(A) + "\n";
    return V;
  }
  if (Res.Cex) {
    V.Exit = front::ExitUnsafe;
    V.Text = "UNSAFE: explicit counterexample (" +
             std::to_string(Res.Cex->TransitionNames.size()) + " steps):\n";
    for (const std::string &S : Res.Cex->TransitionNames)
      V.Text += "  " + S + "\n";
    if (ExpectSafe)
      V.Text += "note: protocol declares 'expect safe'\n";
    return V;
  }
  if (Res.Inconclusive) {
    V.Exit = front::ExitInconclusive;
    std::snprintf(Buf, sizeof(Buf), "INCONCLUSIVE after %.2fs: ",
                  Res.Stats.Seconds);
    V.Text = Buf + Res.Note + "\n";
    V.Text += synth::renderInconclusiveReport(Res);
    return V;
  }
  V.Exit = front::ExitUnknown;
  std::snprintf(Buf, sizeof(Buf), "UNKNOWN after %.2fs: ", Res.Stats.Seconds);
  V.Text = Buf + Res.Note + "\n";
  return V;
}

std::optional<Addr> sharpie::serve::parseAddr(const std::string &Spec,
                                              std::string *Err) {
  Addr A;
  if (Spec.rfind("unix:", 0) == 0) {
    A.IsUnix = true;
    A.Path = Spec.substr(5);
    if (A.Path.empty()) {
      if (Err)
        *Err = "empty unix socket path in '" + Spec + "'";
      return std::nullopt;
    }
    return A;
  }
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon + 1 >= Spec.size()) {
    if (Err)
      *Err = "address '" + Spec + "' is neither unix:PATH nor HOST:PORT";
    return std::nullopt;
  }
  A.Host = Spec.substr(0, Colon);
  if (A.Host.empty())
    A.Host = "127.0.0.1";
  char *End = nullptr;
  // Port 0 is legal for the daemon: the kernel assigns one and listen()
  // reflects it into boundAddress() (printed in the startup banner).
  long Port = std::strtol(Spec.c_str() + Colon + 1, &End, 10);
  if (End == Spec.c_str() + Colon + 1 || *End != 0 || Port < 0 ||
      Port > 65535) {
    if (Err)
      *Err = "bad port in '" + Spec + "'";
    return std::nullopt;
  }
  A.Port = static_cast<int>(Port);
  return A;
}
