//===- serve/Store.h - Persistent two-tier result store ---------*- C++ -*-===//
//
// Part of sharpie. The on-disk memory of the serving stack (and of
// `sharpie --store DIR` local runs). Two tiers, both versioned text
// formats, both written atomically (temp file + rename in the same
// directory) and both corruption-tolerant on load: a truncated, garbled
// or wrong-version file reads as a cache miss -- never an error, never a
// wrong result -- and the incident is counted and classified as
// resil::FailureClass::CorruptStore.
//
//   tier 1   <dir>/t1/<hash>.entry
//            Final verdicts keyed by front::CanonicalHash of the lowered
//            problem (see front/Canon.h for what the hash covers and why
//            it is stable across reformatting, re-parsing and cloning).
//            An entry stores the exit code, the rendered verdict block
//            and the stats JSON fragment of the original solve, so a warm
//            verify replays the identical invariant. Only settled
//            verdicts are stored: exit 0 (verified) and exit 1 (unsafe).
//            Unknown/inconclusive outcomes are budget- and
//            machine-dependent, and fault-injected runs are chaos, so
//            neither is ever written -- the cache can serve stale
//            timings, never a stale verdict.
//
//   tier 2   <dir>/t2/reduce.cache
//            The shared-mode engine::ReduceCache, serialized with its own
//            content-keyed format (engine/Reduce.h, "Persistence"): every
//            entry travels with its key terms, so a cache written by one
//            process re-keys and serves hits in any other.
//
// Invalidation is by construction: tier 1 keys include the canon format
// version (front/Canon.h bumps "sharpie-canon-v1" on any semantic
// change), tier-1/2 file formats carry their own version headers, and
// tier-2 keys include the reduce-options fingerprint. Nothing is ever
// rewritten in place, so a crashed writer leaves either the old file or
// a stray temp file, both safe.
//
// Self-protection (PR 9): corruption-tolerant is not the same as
// corruption-resilient. A store on a sick disk can serve an endless
// stream of corrupt reads, each costing a file read plus a failed parse
// on the request path. Two defenses:
//
//   * self-healing: a tier-1 entry that fails to parse is unlinked on
//     the spot (counted T1Healed), so the next lookup of that hash is a
//     clean miss and the slot can be rewritten by the next solve;
//   * circuit breaker: BreakerThreshold *consecutive* CorruptStore
//     incidents trip the breaker open -- lookups and writes bypass the
//     disk entirely (counted Bypassed) and the daemon keeps serving,
//     just cold. After BreakerCooldownSeconds it goes half-open and
//     lets probes through; the first non-corrupt operation closes it,
//     another corrupt one re-trips it. State is visible through the
//     `health` wire op and the breaker gauges.
//
// Deterministic fault injection enters through setFaultHook(): the
// server installs a hook that consults its resil::FaultPlan for the
// `store_read` / `store_write` sites, so chaos tests can script corrupt
// streaks without touching the disk.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_STORE_H
#define SHARPIE_SERVE_STORE_H

#include "engine/Reduce.h"
#include "front/Canon.h"

#include <functional>
#include <mutex>
#include <optional>
#include <string>

namespace sharpie {
namespace serve {

/// Store activity counters (cache_stats responses, bench scripts).
struct StoreStats {
  uint64_t T1Hits = 0;
  uint64_t T1Misses = 0;
  uint64_t T1Writes = 0;
  uint64_t T1Corrupt = 0; ///< Entry files that failed to parse (each also
                          ///< counted as a miss).
  uint64_t T2Entries = 0; ///< Entries merged by the last tier-2 load.
  uint64_t T2Corrupt = 0; ///< Tier-2 loads that hit corruption (the
                          ///< parsed prefix was still merged).
  uint64_t T1Healed = 0;  ///< Corrupt tier-1 entry files unlinked.
  uint64_t Bypassed = 0;  ///< Lookups/writes skipped by an open breaker.
  uint64_t BreakerTrips = 0; ///< Closed/half-open -> open transitions.
};

class ResultStore {
public:
  /// A settled verdict, exactly what a warm verify needs to replay.
  struct T1Entry {
    int Exit = 0;              ///< front::ExitVerified or ExitUnsafe.
    std::string Protocol;      ///< System name (diagnostics only).
    std::string StatsJson;     ///< statsJsonFields() of the original solve.
    double SynthSeconds = 0;   ///< Original solve wall time.
    std::string Verdict;       ///< Rendered verdict block, byte-exact.
  };

  /// Opens (creating directories as needed) the store rooted at \p Dir.
  /// An empty \p Dir makes a disabled store: every lookup misses, every
  /// write is a no-op -- callers need no "is there a store?" branching.
  explicit ResultStore(std::string Dir);

  bool enabled() const { return !Dir.empty(); }
  const std::string &dir() const { return Dir; }

  /// Tier-1 lookup. Counts a hit or a miss; a malformed entry file counts
  /// T1Corrupt too and reads as a miss.
  std::optional<T1Entry> lookup(const front::CanonicalHash &H);

  /// Tier-1 write (atomic temp+rename). Returns false on I/O failure
  /// (the store keeps serving; persistence is best-effort by design).
  bool store(const front::CanonicalHash &H, const T1Entry &E);

  /// Tier-2: merges the on-disk reduce cache into \p C (which must be in
  /// shared mode). Corruption keeps the parsed prefix and counts
  /// T2Corrupt; \p Note, when non-null, receives a classified
  /// "corrupt_store: ..." description for logging.
  size_t loadReduceCache(engine::ReduceCache &C, std::string *Note = nullptr);

  /// Tier-2: serializes \p C to disk (atomic). Returns entries written,
  /// or 0 on I/O failure or an empty/unshared cache.
  size_t saveReduceCache(const engine::ReduceCache &C);

  StoreStats stats() const;

  /// Circuit-breaker tuning; defaults suit a long-running daemon, tests
  /// shrink the cooldown. Set before serving starts.
  struct Tuning {
    int BreakerThreshold = 3; ///< Consecutive CorruptStore incidents
                              ///< that trip the breaker (<=0 disables).
    double BreakerCooldownSeconds = 30.0; ///< Open -> half-open delay.
  };
  void setTuning(const Tuning &T);

  /// Fault hook for the `store_read` / `store_write` sites: called with
  /// the site name before each disk touch; returning true injects a
  /// CorruptStore incident (the disk is never touched). Install before
  /// serving starts; the hook itself must be thread-safe (it is called
  /// outside the store mutex so latency faults don't serialize).
  using FaultHook = std::function<bool(const char *Site)>;
  void setFaultHook(FaultHook H) { Hook = std::move(H); }

  enum class BreakerState : unsigned { Closed, Open, HalfOpen };
  /// Current state, re-evaluating the cooldown ("open" becomes
  /// "half_open" once elapsed). Names: closed / open / half_open.
  const char *breakerStateName() const;
  uint64_t breakerTrips() const;

private:
  std::string t1Path(const front::CanonicalHash &H) const;

  /// True when the breaker blocks disk access right now; may move
  /// Open -> HalfOpen when the cooldown has elapsed. Caller holds Mu.
  bool breakerBlockedLocked();
  /// Feeds one CorruptStore incident to the breaker. Caller holds Mu.
  void noteCorruptLocked();
  /// Feeds one healthy disk operation (hit, clean miss, successful
  /// write): resets the streak and closes a half-open breaker.
  void noteOkLocked();

  std::string Dir; ///< Empty = disabled.
  FaultHook Hook;  ///< Null unless fault injection is scripted.
  mutable std::mutex Mu;
  StoreStats S;
  Tuning Tune;
  BreakerState Breaker = BreakerState::Closed;
  int CorruptStreak = 0;
  double TripAtSeconds = 0; ///< Monotonic time of the last trip.
};

} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_STORE_H
