//===- serve/Store.h - Persistent two-tier result store ---------*- C++ -*-===//
//
// Part of sharpie. The on-disk memory of the serving stack (and of
// `sharpie --store DIR` local runs). Two tiers, both versioned text
// formats, both written atomically (temp file + rename in the same
// directory) and both corruption-tolerant on load: a truncated, garbled
// or wrong-version file reads as a cache miss -- never an error, never a
// wrong result -- and the incident is counted and classified as
// resil::FailureClass::CorruptStore.
//
//   tier 1   <dir>/t1/<hash>.entry
//            Final verdicts keyed by front::CanonicalHash of the lowered
//            problem (see front/Canon.h for what the hash covers and why
//            it is stable across reformatting, re-parsing and cloning).
//            An entry stores the exit code, the rendered verdict block
//            and the stats JSON fragment of the original solve, so a warm
//            verify replays the identical invariant. Only settled
//            verdicts are stored: exit 0 (verified) and exit 1 (unsafe).
//            Unknown/inconclusive outcomes are budget- and
//            machine-dependent, and fault-injected runs are chaos, so
//            neither is ever written -- the cache can serve stale
//            timings, never a stale verdict.
//
//   tier 2   <dir>/t2/reduce.cache
//            The shared-mode engine::ReduceCache, serialized with its own
//            content-keyed format (engine/Reduce.h, "Persistence"): every
//            entry travels with its key terms, so a cache written by one
//            process re-keys and serves hits in any other.
//
// Invalidation is by construction: tier 1 keys include the canon format
// version (front/Canon.h bumps "sharpie-canon-v1" on any semantic
// change), tier-1/2 file formats carry their own version headers, and
// tier-2 keys include the reduce-options fingerprint. Nothing is ever
// rewritten in place, so a crashed writer leaves either the old file or
// a stray temp file, both safe.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_STORE_H
#define SHARPIE_SERVE_STORE_H

#include "engine/Reduce.h"
#include "front/Canon.h"

#include <mutex>
#include <optional>
#include <string>

namespace sharpie {
namespace serve {

/// Store activity counters (cache_stats responses, bench scripts).
struct StoreStats {
  uint64_t T1Hits = 0;
  uint64_t T1Misses = 0;
  uint64_t T1Writes = 0;
  uint64_t T1Corrupt = 0; ///< Entry files that failed to parse (each also
                          ///< counted as a miss).
  uint64_t T2Entries = 0; ///< Entries merged by the last tier-2 load.
  uint64_t T2Corrupt = 0; ///< Tier-2 loads that hit corruption (the
                          ///< parsed prefix was still merged).
};

class ResultStore {
public:
  /// A settled verdict, exactly what a warm verify needs to replay.
  struct T1Entry {
    int Exit = 0;              ///< front::ExitVerified or ExitUnsafe.
    std::string Protocol;      ///< System name (diagnostics only).
    std::string StatsJson;     ///< statsJsonFields() of the original solve.
    double SynthSeconds = 0;   ///< Original solve wall time.
    std::string Verdict;       ///< Rendered verdict block, byte-exact.
  };

  /// Opens (creating directories as needed) the store rooted at \p Dir.
  /// An empty \p Dir makes a disabled store: every lookup misses, every
  /// write is a no-op -- callers need no "is there a store?" branching.
  explicit ResultStore(std::string Dir);

  bool enabled() const { return !Dir.empty(); }
  const std::string &dir() const { return Dir; }

  /// Tier-1 lookup. Counts a hit or a miss; a malformed entry file counts
  /// T1Corrupt too and reads as a miss.
  std::optional<T1Entry> lookup(const front::CanonicalHash &H);

  /// Tier-1 write (atomic temp+rename). Returns false on I/O failure
  /// (the store keeps serving; persistence is best-effort by design).
  bool store(const front::CanonicalHash &H, const T1Entry &E);

  /// Tier-2: merges the on-disk reduce cache into \p C (which must be in
  /// shared mode). Corruption keeps the parsed prefix and counts
  /// T2Corrupt; \p Note, when non-null, receives a classified
  /// "corrupt_store: ..." description for logging.
  size_t loadReduceCache(engine::ReduceCache &C, std::string *Note = nullptr);

  /// Tier-2: serializes \p C to disk (atomic). Returns entries written,
  /// or 0 on I/O failure or an empty/unshared cache.
  size_t saveReduceCache(const engine::ReduceCache &C);

  StoreStats stats() const;

private:
  std::string t1Path(const front::CanonicalHash &H) const;

  std::string Dir; ///< Empty = disabled.
  mutable std::mutex Mu;
  StoreStats S;
};

} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_STORE_H
