//===- serve/Client.h - Thin client for the sharpied protocol ---*- C++ -*-===//
//
// Part of sharpie. The socket side of `sharpie --server` and
// `sharpied --ctl`: connect, send one JSON line, read one JSON line.
// Deliberately synchronous and stateless beyond the fd -- all protocol
// semantics live in serve/Proto.h.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_CLIENT_H
#define SHARPIE_SERVE_CLIENT_H

#include "serve/Proto.h"

#include <string>

namespace sharpie {
namespace serve {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p A. False with \p Err on failure.
  bool connect(const Addr &A, std::string &Err);

  /// Sends \p J as one line and reads the one-line response into
  /// \p Response. False with \p Err on socket failure or a malformed
  /// response.
  bool roundTrip(const Json &J, Json &Response, std::string &Err);

  void close();

private:
  int Fd = -1;
  std::string RecvBuf;
};

} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_CLIENT_H
