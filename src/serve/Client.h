//===- serve/Client.h - Thin client for the sharpied protocol ---*- C++ -*-===//
//
// Part of sharpie. The socket side of `sharpie --server` and
// `sharpied --ctl`: connect, send one JSON line, read one JSON line.
// Deliberately synchronous and stateless beyond the fd -- all protocol
// semantics live in serve/Proto.h.
//
// Resilience (PR 9): verify requests are idempotent by content hash (the
// daemon answers a repeat from the store), so the client may retry
// freely. requestWithRetry() handles the two transient failures a
// healthy deployment produces -- connect refused (daemon restarting) and
// overloaded sheds -- with exponential backoff plus *deterministic*
// jitter: the schedule is a pure function of (seed, attempt), so tests
// pin it exactly and two clients with different seeds still decorrelate.
// A shed response's retry_after_ms hint is a floor on the next delay;
// the daemon knows its queue better than the client's guess.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_CLIENT_H
#define SHARPIE_SERVE_CLIENT_H

#include "serve/Proto.h"

#include <string>

namespace sharpie {
namespace serve {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p A. False with \p Err on failure.
  bool connect(const Addr &A, std::string &Err);

  /// Sends \p J as one line and reads the one-line response into
  /// \p Response. False with \p Err on socket failure or a malformed
  /// response.
  bool roundTrip(const Json &J, Json &Response, std::string &Err);

  void close();

private:
  int Fd = -1;
  std::string RecvBuf;
};

/// Deterministic retry schedule for connect failures and overload sheds.
struct RetryPolicy {
  unsigned MaxRetries = 4;    ///< Retries after the first attempt.
  int64_t BaseMs = 100;       ///< Backoff before the first retry.
  int64_t MaxDelayMs = 30000; ///< Per-delay ceiling.
  uint64_t Seed = 0; ///< Jitter key; derive from the content hash so
                     ///< concurrent clients decorrelate deterministically.
};

/// Pure backoff computation: the delay before retry \p Attempt (1-based).
/// BaseMs * 2^(Attempt-1), scaled by a deterministic jitter factor in
/// [0.75, 1.25) keyed on (Seed, Attempt) via splitmix64, floored by the
/// server's \p RetryAfterMs hint, capped at MaxDelayMs. No RNG state, no
/// wall clock: a fixed (policy, attempt) pair always yields the same
/// delay, which the backoff test pins.
int64_t backoffDelayMs(const RetryPolicy &P, unsigned Attempt,
                       int64_t RetryAfterMs);

/// One logical request with the full retry discipline: (re)connect and
/// round-trip, retrying connect failures, dropped connections and
/// overloaded sheds up to P.MaxRetries times, sleeping backoffDelayMs()
/// between attempts. Returns the final response (which may still be an
/// overloaded shed -- the caller maps that to front::ExitOverloaded).
struct RetryOutcome {
  bool Ok = false;         ///< A response was obtained (even a shed).
  bool Overloaded = false; ///< Final response was an overload shed.
  unsigned Attempts = 1;   ///< Total attempts made.
  std::string Err;         ///< Transport error when !Ok.
};
RetryOutcome requestWithRetry(const Addr &A, const Json &Request,
                              const RetryPolicy &P, Json &Response);

} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_CLIENT_H
