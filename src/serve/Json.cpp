//===- serve/Json.cpp - Minimal JSON for the wire protocol --------------------===//
//
// Part of sharpie. See Json.h.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace sharpie;
using namespace sharpie::serve;

const Json &Json::get(const std::string &Key) const {
  static const Json Null;
  if (Ty != Type::Object)
    return Null;
  auto It = O.find(Key);
  return It == O.end() ? Null : It->second;
}

Json &Json::operator[](const std::string &Key) {
  if (Ty == Type::Null)
    Ty = Type::Object;
  return O[Key];
}

namespace {

void dumpString(const std::string &S, std::string &Out) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

void dumpValue(const Json &V, std::string &Out) {
  switch (V.type()) {
  case Json::Type::Null:
    Out += "null";
    break;
  case Json::Type::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case Json::Type::Int:
    Out += std::to_string(V.asInt());
    break;
  case Json::Type::Double: {
    double D = V.asDouble();
    if (!std::isfinite(D)) { // No NaN/Inf in JSON; degrade to null.
      Out += "null";
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.9g", D);
    Out += Buf;
    break;
  }
  case Json::Type::String:
    dumpString(V.asString(), Out);
    break;
  case Json::Type::Array: {
    Out += '[';
    bool First = true;
    for (const Json &E : V.asArray()) {
      if (!First)
        Out += ',';
      First = false;
      dumpValue(E, Out);
    }
    Out += ']';
    break;
  }
  case Json::Type::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[K, E] : V.asObject()) {
      if (!First)
        Out += ',';
      First = false;
      dumpString(K, Out);
      Out += ':';
      dumpValue(E, Out);
    }
    Out += '}';
    break;
  }
  }
}

/// Recursive-descent parser. Every path that rejects input sets Err and
/// returns null; nothing throws.
struct Parser {
  std::string_view In;
  size_t Pos = 0;
  std::string Err;
  static constexpr int MaxDepth = 64;

  bool fail(const std::string &Why) {
    if (Err.empty())
      Err = Why + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < In.size() && (In[Pos] == ' ' || In[Pos] == '\t' ||
                               In[Pos] == '\n' || In[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Word) {
    if (In.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= In.size() || In[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < In.size()) {
      char C = In[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= In.size())
          return fail("truncated escape");
        char E = In[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > In.size())
            return fail("truncated \\u escape");
          unsigned V = 0;
          for (int I = 0; I < 4; ++I) {
            char H = In[Pos++];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs land as two
          // replacement-ish 3-byte sequences; the protocol never emits
          // them, this is input tolerance only).
          if (V < 0x80) {
            Out += static_cast<char>(V);
          } else if (V < 0x800) {
            Out += static_cast<char>(0xC0 | (V >> 6));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (V >> 12));
            Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape character");
        }
      } else {
        Out += C;
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(Json &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= In.size())
      return fail("unexpected end of input");
    char C = In[Pos];
    if (C == 'n')
      return literal("null") ? (Out = Json(), true) : fail("bad literal");
    if (C == 't')
      return literal("true") ? (Out = Json(true), true) : fail("bad literal");
    if (C == 'f')
      return literal("false") ? (Out = Json(false), true)
                              : fail("bad literal");
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    if (C == '[') {
      ++Pos;
      JsonArray A;
      skipWs();
      if (Pos < In.size() && In[Pos] == ']') {
        ++Pos;
        Out = Json(std::move(A));
        return true;
      }
      while (true) {
        Json E;
        if (!parseValue(E, Depth + 1))
          return false;
        A.push_back(std::move(E));
        skipWs();
        if (Pos < In.size() && In[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < In.size() && In[Pos] == ']') {
          ++Pos;
          Out = Json(std::move(A));
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++Pos;
      JsonObject O;
      skipWs();
      if (Pos < In.size() && In[Pos] == '}') {
        ++Pos;
        Out = Json(std::move(O));
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= In.size() || In[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        Json V;
        if (!parseValue(V, Depth + 1))
          return false;
        O[std::move(Key)] = std::move(V);
        skipWs();
        if (Pos < In.size() && In[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < In.size() && In[Pos] == '}') {
          ++Pos;
          Out = Json(std::move(O));
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      size_t Start = Pos;
      if (In[Pos] == '-')
        ++Pos;
      bool IsInt = true;
      while (Pos < In.size() &&
             (std::isdigit(static_cast<unsigned char>(In[Pos])) ||
              In[Pos] == '.' || In[Pos] == 'e' || In[Pos] == 'E' ||
              In[Pos] == '+' || In[Pos] == '-')) {
        if (In[Pos] == '.' || In[Pos] == 'e' || In[Pos] == 'E')
          IsInt = false;
        ++Pos;
      }
      std::string Num(In.substr(Start, Pos - Start));
      if (Num.empty() || Num == "-")
        return fail("bad number");
      errno = 0;
      char *End = nullptr;
      if (IsInt) {
        long long V = std::strtoll(Num.c_str(), &End, 10);
        if (*End == 0 && errno == 0) {
          Out = Json(static_cast<int64_t>(V));
          return true;
        }
        // Out-of-range integer: fall through to double.
      }
      errno = 0;
      double D = std::strtod(Num.c_str(), &End);
      if (*End != 0 || errno != 0 || !std::isfinite(D))
        return fail("bad number");
      Out = Json(D);
      return true;
    }
    return fail("unexpected character");
  }
};

} // namespace

std::string Json::dump() const {
  std::string Out;
  dumpValue(*this, Out);
  return Out;
}

Json sharpie::serve::parseJson(std::string_view Text, std::string *Err) {
  Parser P{Text};
  Json Out;
  if (!P.parseValue(Out, 0)) {
    if (Err)
      *Err = P.Err;
    return Json();
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Err)
      *Err = "trailing characters at offset " + std::to_string(P.Pos);
    return Json();
  }
  return Out;
}
