//===- serve/Json.h - Minimal JSON for the wire protocol --------*- C++ -*-===//
//
// Part of sharpie. A deliberately small JSON value type for the sharpied
// line protocol: objects, arrays, strings, doubles, integers, booleans,
// null. One value per line on the wire (serialization never emits raw
// newlines; they are escaped inside strings), so framing is `\n` and a
// parse never needs lookahead across lines.
//
// The parser is defensive in the same way logic/TermIO.h is: any
// malformed input yields an error string, never a crash or an exception
// -- the daemon parses bytes from arbitrary clients. Depth is bounded.
//
// Not a general JSON library on purpose: no comments, no NaN/Inf, no
// \uXXXX surrogate pairs beyond the BMP pass-through, integers beyond
// int64 fall back to double.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_JSON_H
#define SHARPIE_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sharpie {
namespace serve {

class Json;
using JsonObject = std::map<std::string, Json>;
using JsonArray = std::vector<Json>;

class Json {
public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : Ty(Type::Null) {}
  Json(bool B) : Ty(Type::Bool), B(B) {}
  Json(int64_t I) : Ty(Type::Int), I(I) {}
  Json(int I) : Ty(Type::Int), I(I) {}
  Json(unsigned I) : Ty(Type::Int), I(I) {}
  Json(uint64_t I) : Ty(Type::Int), I(static_cast<int64_t>(I)) {}
  Json(double D) : Ty(Type::Double), D(D) {}
  Json(const char *S) : Ty(Type::String), S(S) {}
  Json(std::string S) : Ty(Type::String), S(std::move(S)) {}
  Json(JsonArray A) : Ty(Type::Array), A(std::move(A)) {}
  Json(JsonObject O) : Ty(Type::Object), O(std::move(O)) {}

  Type type() const { return Ty; }
  bool isNull() const { return Ty == Type::Null; }
  bool isObject() const { return Ty == Type::Object; }
  bool isArray() const { return Ty == Type::Array; }
  bool isString() const { return Ty == Type::String; }

  /// Typed accessors with defaults -- lenient on purpose: a request
  /// missing a field reads as the default rather than faulting, and the
  /// handler validates semantically.
  bool asBool(bool Default = false) const {
    return Ty == Type::Bool ? B : Default;
  }
  int64_t asInt(int64_t Default = 0) const {
    if (Ty == Type::Int)
      return I;
    if (Ty == Type::Double)
      return static_cast<int64_t>(D);
    return Default;
  }
  double asDouble(double Default = 0) const {
    if (Ty == Type::Double)
      return D;
    if (Ty == Type::Int)
      return static_cast<double>(I);
    return Default;
  }
  const std::string &asString() const {
    static const std::string Empty;
    return Ty == Type::String ? S : Empty;
  }
  const JsonArray &asArray() const {
    static const JsonArray Empty;
    return Ty == Type::Array ? A : Empty;
  }
  const JsonObject &asObject() const {
    static const JsonObject Empty;
    return Ty == Type::Object ? O : Empty;
  }

  /// Object field lookup; returns a null Json when absent or not an
  /// object.
  const Json &get(const std::string &Key) const;

  /// Mutable object field access (makes this an object if null).
  Json &operator[](const std::string &Key);

  /// Compact single-line serialization. Strings escape `"`, `\`, control
  /// characters and newlines, so the output never contains a raw '\n'.
  std::string dump() const;

private:
  Type Ty;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  JsonArray A;
  JsonObject O;
};

/// Parses one JSON value from \p Text (whole-string: trailing garbage is
/// an error). On failure returns null and sets \p Err when non-null.
/// Never throws; depth-bounded.
Json parseJson(std::string_view Text, std::string *Err = nullptr);

} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_JSON_H
