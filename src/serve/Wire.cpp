//===- serve/Wire.cpp - Signal-safe socket I/O primitives ---------------------===//
//
// Part of sharpie. See Wire.h.
//
//===----------------------------------------------------------------------===//

#include "serve/Wire.h"

#include <cerrno>
#include <sys/socket.h>

using namespace sharpie;
using namespace sharpie::serve;

ssize_t wire::readSome(int Fd, void *Buf, size_t Len) {
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, Len, 0);
    if (N >= 0)
      return N;
    if (errno == EINTR)
      continue;
    return -1;
  }
}

bool wire::writeAll(int Fd, std::string_view Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false; // 0 or a real error: the peer is gone.
  }
  return true;
}

int wire::acceptRetry(int ListenFd) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd >= 0)
      return Fd;
    if (errno == EINTR)
      continue;
    if (errno == ECONNABORTED || errno == EPROTO || errno == EAGAIN ||
        errno == EWOULDBLOCK)
      return -2;
    return -1;
  }
}
