//===- serve/Server.cpp - The sharpied verification server --------------------===//
//
// Part of sharpie. See Server.h.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "front/ExitCodes.h"
#include "front/Front.h"
#include "resil/Fault.h"

#include <arpa/inet.h>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sharpie;
using namespace sharpie::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Store(Opts.StoreDir),
      Pool(Opts.RequestWorkers ? Opts.RequestWorkers : 1),
      Start(std::chrono::steady_clock::now()) {
  // The reduce cache is shared-mode from birth: requests run on pool
  // threads with private managers, exactly the cross-manager case.
  RC.enableSharing();
  // A corrupt tier-2 file degrades to whatever prefix parsed; the note
  // surfaces through status/cache_stats rather than a log line (the
  // daemon may be running --log-level quiet).
  Store.loadReduceCache(RC, &StartupNote);
}

Server::~Server() {
  requestShutdown();
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (std::thread &T : Conns)
      if (T.joinable())
        T.join();
    Conns.clear();
  }
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (!UnixPath.empty())
    ::unlink(UnixPath.c_str());
}

VerifyResponse Server::verify(const VerifyRequest &Req,
                              const engine::CancellationToken *Cancel) {
  uint64_t Id = NextRequestId.fetch_add(1);
  InFlight.fetch_add(1);
  struct InFlightGuard {
    std::atomic<uint64_t> &F;
    std::atomic<uint64_t> &S;
    ~InFlightGuard() {
      F.fetch_sub(1);
      S.fetch_add(1);
    }
  } Guard{InFlight, Served};

  auto T0 = std::chrono::steady_clock::now();
  VerifyResponse Resp;

  // Per-request observability: its own tracer, log lines tagged with the
  // request id so interleaved requests stay attributable.
  obs::TracerConfig TC;
  TC.Level = Opts.Level;
  TC.LogPrefix = "r" + std::to_string(Id);
  obs::Tracer Tracer(TC);
  obs::TraceBuffer *TB = Tracer.worker(0);
  obs::Span Sp(TB, "serve_verify");

  resil::FaultPlan Faults;
  if (!Req.Faults.empty()) {
    std::string FErr;
    if (auto P = resil::FaultPlan::parse(Req.Faults, &FErr)) {
      Faults = std::move(*P);
    } else {
      Resp.Exit = front::ExitError;
      Resp.Error = "error: bad fault plan: " + FErr + "\n";
      Resp.ServerSeconds = secondsSince(T0);
      return Resp;
    }
  }

  logic::TermManager M;
  front::LoadResult L = front::loadProtocolString(M, Req.ProtocolText,
                                                  Req.File, TB);
  if (!L.ok()) {
    Resp.Exit = front::ExitError;
    Resp.Error = L.Error->render() + "\n";
    Resp.ServerSeconds = secondsSince(T0);
    return Resp;
  }
  double ParseSeconds = secondsSince(T0);
  front::FrontBundle &B = *L.Bundle;

  Resp.Hash = front::canonicalProblemHash(B).hex();
  std::string Header = renderHeader(B.Sys->name(), B.Property);

  // Chaos requests bypass both cache tiers: injected faults make the run
  // non-canonical, and nothing a fault produced may be served later.
  bool Cacheable = Req.Faults.empty();

  // -- Tier 1 ----------------------------------------------------------------
  front::CanonicalHash H = front::canonicalProblemHash(B);
  if (Cacheable && Store.enabled()) {
    auto TL = std::chrono::steady_clock::now();
    std::optional<ResultStore::T1Entry> Hit = Store.lookup(H);
    Resp.CacheLookupSeconds = secondsSince(TL);
    TB->counter(Hit ? "serve_t1_hits" : "serve_t1_misses", 1);
    if (Hit) {
      Resp.Exit = Hit->Exit;
      Resp.Cache = "hit";
      Resp.Output = Header;
      if (Req.JsonLine)
        Resp.Output += renderJsonLine(
            B.Sys->name(), Req.File, Hit->Exit == front::ExitVerified,
            Hit->Exit == front::ExitUnsafe, /*Inconclusive=*/false,
            ParseSeconds, Resp.CacheLookupSeconds, /*SynthSeconds=*/0.0,
            secondsSince(T0), Hit->StatsJson);
      Resp.Output += Hit->Verdict;
      Resp.ServerSeconds = secondsSince(T0);
      return Resp;
    }
    Resp.Cache = "miss";
  }

  // -- Solve -----------------------------------------------------------------
  synth::SynthOptions SO;
  SO.Shape = B.Shape;
  SO.QGuard = B.QGuard;
  SO.Reduce.Card.Venn = B.NeedsVenn;
  SO.Explicit = B.Explicit;
  SO.Trace = &Tracer;
  SO.NumWorkers = Req.Workers;
  if (Opts.SynthWorkers &&
      (Req.Workers == 0 || Req.Workers > Opts.SynthWorkers))
    SO.NumWorkers = Opts.SynthWorkers;
  SO.TimeBudgetSeconds = Req.TimeBudget;
  if (Opts.MaxRequestSeconds > 0 &&
      (SO.TimeBudgetSeconds <= 0 ||
       SO.TimeBudgetSeconds > Opts.MaxRequestSeconds))
    SO.TimeBudgetSeconds = Opts.MaxRequestSeconds;
  if (Req.MaxTuples)
    SO.MaxTuples = Req.MaxTuples;
  SO.Supervise.Enabled = !Req.NoSupervise;
  SO.Incremental = !Req.NoIncremental;
  if (Req.SmtTimeoutMs)
    SO.SmtTimeoutMs = Req.SmtTimeoutMs;
  if (!Faults.empty())
    SO.Faults = &Faults;
  SO.Cancel = Cancel;
  if (Cacheable)
    SO.ReuseReduceCache = &RC; // Tier 2: warm across requests.

  auto T1 = std::chrono::steady_clock::now();
  synth::SynthResult Res = synth::synthesize(*B.Sys, SO);
  double SynthSeconds = secondsSince(T1);

  RenderedVerdict V = renderVerdict(Res, B.ExpectSafe, ParseSeconds);
  Resp.Exit = V.Exit;
  Resp.Output = Header;
  if (Req.JsonLine)
    Resp.Output += renderJsonLine(
        B.Sys->name(), Req.File, Res.Verified, Res.Cex.has_value(),
        Res.Inconclusive, ParseSeconds, Resp.CacheLookupSeconds, SynthSeconds,
        secondsSince(T0), synth::statsJsonFields(Res.Stats));
  Resp.Output += V.Text;

  // -- Write-back ------------------------------------------------------------
  // Settled verdicts only, and never from a cancelled run (a disconnect
  // mid-solve must not publish a partial result).
  bool Cancelled = Cancel && Cancel->cancelled();
  if (Cacheable && Store.enabled() && !Cancelled &&
      (V.Exit == front::ExitVerified || V.Exit == front::ExitUnsafe)) {
    ResultStore::T1Entry E;
    E.Exit = V.Exit;
    E.Protocol = B.Sys->name();
    E.StatsJson = synth::statsJsonFields(Res.Stats);
    E.SynthSeconds = SynthSeconds;
    E.Verdict = V.Text;
    Store.store(H, E);
    Store.saveReduceCache(RC);
  }

  Resp.ServerSeconds = secondsSince(T0);
  return Resp;
}

Json Server::handle(const Json &Request,
                    const engine::CancellationToken *Cancel) {
  const std::string &Op = Request.get("op").asString();
  if (Op == "verify")
    return verify(VerifyRequest::decode(Request), Cancel).encode();
  if (Op == "status")
    return statusJson();
  if (Op == "cache_stats")
    return cacheStatsJson();
  if (Op == "shutdown") {
    requestShutdown();
    Json J;
    J["ok"] = Json(true);
    J["shutting_down"] = Json(true);
    return J;
  }
  Json J;
  J["ok"] = Json(false);
  J["error"] = Json("unknown op '" + Op + "'");
  return J;
}

Json Server::statusJson() const {
  Json J;
  J["ok"] = Json(true);
  J["uptime_seconds"] = Json(secondsSince(Start));
  J["served"] = Json(Served.load());
  J["in_flight"] = Json(InFlight.load());
  J["request_workers"] = Json(Pool.size());
  J["store_enabled"] = Json(Store.enabled());
  J["store_dir"] = Json(Store.dir());
  if (!StartupNote.empty())
    J["store_note"] = Json(StartupNote);
  return J;
}

Json Server::cacheStatsJson() const {
  StoreStats S = Store.stats();
  Json J;
  J["ok"] = Json(true);
  J["t1_hits"] = Json(S.T1Hits);
  J["t1_misses"] = Json(S.T1Misses);
  J["t1_writes"] = Json(S.T1Writes);
  J["t1_corrupt"] = Json(S.T1Corrupt);
  J["t2_loaded"] = Json(S.T2Entries);
  J["t2_corrupt"] = Json(S.T2Corrupt);
  J["t2_live_entries"] = Json(static_cast<uint64_t>(RC.size()));
  J["t2_hits"] = Json(RC.hits());
  J["t2_misses"] = Json(RC.misses());
  return J;
}

// -- Socket front end --------------------------------------------------------

bool Server::listen(const Addr &A, std::string &Err) {
  if (A.IsUnix) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_un SA{};
    SA.sun_family = AF_UNIX;
    if (A.Path.size() >= sizeof(SA.sun_path)) {
      Err = "unix socket path too long: " + A.Path;
      return false;
    }
    std::strncpy(SA.sun_path, A.Path.c_str(), sizeof(SA.sun_path) - 1);
    ::unlink(A.Path.c_str()); // Stale socket from a previous daemon.
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) < 0) {
      Err = "bind " + A.Path + ": " + std::strerror(errno);
      return false;
    }
    UnixPath = A.Path;
    Bound = "unix:" + A.Path;
  } else {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in SA{};
    SA.sin_family = AF_INET;
    SA.sin_port = htons(static_cast<uint16_t>(A.Port));
    if (::inet_pton(AF_INET, A.Host.c_str(), &SA.sin_addr) != 1) {
      Err = "bad host '" + A.Host + "' (numeric IPv4 only)";
      return false;
    }
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) < 0) {
      Err = "bind " + A.Host + ":" + std::to_string(A.Port) + ": " +
            std::strerror(errno);
      return false;
    }
    sockaddr_in Actual{};
    socklen_t Len = sizeof(Actual);
    ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Actual), &Len);
    Bound = A.Host + ":" + std::to_string(ntohs(Actual.sin_port));
  }
  if (::listen(ListenFd, 16) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void Server::serve() {
  while (!shutdownRequested()) {
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, 200 /*ms*/);
    if (N <= 0)
      continue; // Timeout or EINTR: re-check the shutdown flag.
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> Lock(ConnsMu);
    Conns.emplace_back([this, Fd] { handleConnection(Fd); });
  }
  // Let in-flight connections finish before the dtor tears down state.
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (std::thread &T : Conns)
      if (T.joinable())
        T.join();
    Conns.clear();
  }
  Pool.wait();
}

void Server::handleConnection(int Fd) {
  std::string Buf;
  char Chunk[4096];
  bool Open = true;
  while (Open && !shutdownRequested()) {
    // Frame one line.
    size_t Nl;
    while ((Nl = Buf.find('\n')) == std::string::npos) {
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0) {
        Open = false;
        break;
      }
      Buf.append(Chunk, static_cast<size_t>(N));
      if (Buf.size() > (64u << 20)) { // Runaway client; drop it.
        Open = false;
        break;
      }
    }
    if (!Open)
      break;
    std::string Line = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    if (Line.empty())
      continue;

    std::string PErr;
    Json Req = parseJson(Line, &PErr);
    Json Resp;
    if (!PErr.empty()) {
      Resp["ok"] = Json(false);
      Resp["error"] = Json("bad request: " + PErr);
    } else {
      // Ship the work to the warm pool; this thread watches the socket
      // so a vanished client cancels its request instead of occupying a
      // pool worker to completion.
      struct Pending {
        std::mutex M;
        std::condition_variable CV;
        bool Done = false;
        Json Resp;
      };
      auto P = std::make_shared<Pending>();
      auto Tok = std::make_shared<engine::CancellationToken>();
      Pool.submit([this, Req, P, Tok] {
        Json R = handle(Req, Tok.get());
        std::lock_guard<std::mutex> Lock(P->M);
        P->Resp = std::move(R);
        P->Done = true;
        P->CV.notify_all();
      });
      bool ClientGone = false;
      {
        std::unique_lock<std::mutex> Lock(P->M);
        while (!P->Done) {
          P->CV.wait_for(Lock, std::chrono::milliseconds(100));
          if (P->Done)
            break;
          Lock.unlock();
          // EOF probe: a readable-but-empty socket means the client hung
          // up (it owes us nothing until our response).
          char Peek;
          ssize_t R = ::recv(Fd, &Peek, 1, MSG_PEEK | MSG_DONTWAIT);
          if (R == 0 && !ClientGone) {
            ClientGone = true;
            Tok->cancel();
          }
          Lock.lock();
        }
        Resp = P->Resp;
      }
      if (ClientGone)
        break;
    }
    std::string Out = Resp.dump();
    Out += '\n';
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
      if (N <= 0) {
        Open = false;
        break;
      }
      Off += static_cast<size_t>(N);
    }
  }
  ::close(Fd);
}
