//===- serve/Server.cpp - The sharpied verification server --------------------===//
//
// Part of sharpie. See Server.h.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "front/ExitCodes.h"
#include "front/Front.h"
#include "resil/Fault.h"
#include "serve/Wire.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cstring>
#include <memory>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sharpie;
using namespace sharpie::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Store(Opts.StoreDir),
      Pool(Opts.RequestWorkers ? Opts.RequestWorkers : 1),
      Flight(obs::FlightRecorder::Config{
          Opts.Telemetry ? Opts.FlightCapacity : 0, 4096, 96}),
      Start(std::chrono::steady_clock::now()) {
  Store.setTuning(Opts.StoreTuning);
  if (!Opts.Faults.empty()) {
    std::string FErr;
    if (auto P = resil::FaultPlan::parse(Opts.Faults, &FErr)) {
      ServeInj.emplace(std::move(*P));
      ServeInj->beginScope(0); // One scope for the daemon lifetime.
      // The store consults the same plan for its sites; the hook runs
      // outside the store mutex, so the latency sleep in serveFault()
      // cannot serialize lookups.
      Store.setFaultHook([this](const char *Site) {
        return serveFault(Site) != resil::FaultKind::None;
      });
    } else {
      if (!StartupNote.empty())
        StartupNote += "; ";
      StartupNote += "bad serve fault plan ignored: " + FErr;
    }
  }

  // The reduce cache is shared-mode from birth: requests run on pool
  // threads with private managers, exactly the cross-manager case.
  RC.enableSharing();
  // A corrupt tier-2 file degrades to whatever prefix parsed; the note
  // surfaces through status/cache_stats rather than a log line (the
  // daemon may be running --log-level quiet).
  Store.loadReduceCache(RC, &StartupNote);

  if (!Opts.AccessLogPath.empty()) {
    if (Opts.AccessLogPath == "-") {
      AccessLog = stderr;
    } else {
      AccessLog = std::fopen(Opts.AccessLogPath.c_str(), "a");
      if (AccessLog) {
        OwnAccessLog = true;
      } else {
        if (!StartupNote.empty())
          StartupNote += "; ";
        StartupNote += "access log '" + Opts.AccessLogPath + "' not writable";
      }
    }
  }
  if (Opts.SlowRequestSeconds > 0)
    Watchdog = std::thread([this] { watchdogLoop(); });
}

Server::~Server() {
  requestShutdown();
  {
    std::lock_guard<std::mutex> Lock(WatchdogMu);
    WatchdogStop = true;
  }
  WatchdogCV.notify_all();
  if (Watchdog.joinable())
    Watchdog.join();
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (std::thread &T : Conns)
      if (T.joinable())
        T.join();
    Conns.clear();
  }
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (!UnixPath.empty())
    ::unlink(UnixPath.c_str());
  if (AccessLog && OwnAccessLog)
    std::fclose(AccessLog);
}

void Server::requestShutdown() { ShutdownFlag.store(true); }

unsigned Server::admissionCapacity() const {
  return (Opts.RequestWorkers ? Opts.RequestWorkers : 1) + Opts.QueueDepth;
}

int64_t Server::retryAfterMsHint() const {
  // Expected time until a queue slot frees: mean observed service time
  // times the per-worker backlog. Before any request completes, assume
  // 500ms -- wrong is fine, the client's exponential backoff dominates
  // after the first retry. Clamped so a hint is never a busy-loop (50ms
  // floor) nor a give-up signal (30s ceiling).
  uint64_t Cnt = ServiceCount.load();
  double MeanMs = Cnt ? ServiceMicros.load() / 1000.0 / Cnt : 500.0;
  unsigned Workers = Opts.RequestWorkers ? Opts.RequestWorkers : 1;
  uint64_t Adm = Admitted.load();
  double PerWorkerBacklog =
      Adm > Workers ? static_cast<double>(Adm - Workers) / Workers : 1.0;
  double Hint = MeanMs * PerWorkerBacklog;
  return static_cast<int64_t>(std::min(30000.0, std::max(50.0, Hint)));
}

Json Server::shedResponse(const char *Why) {
  VerifyResponse R;
  R.Exit = front::ExitOverloaded;
  R.Overloaded = true;
  R.RetryAfterMs = retryAfterMsHint();
  R.Disposition = Why;
  R.Error = std::string("error: server ") +
            (std::string(Why) == "draining" ? "is draining"
                                            : "overloaded (queue full)") +
            "; retry after " + std::to_string(R.RetryAfterMs) + "ms\n";
  if (Opts.Telemetry) {
    Registry.bump("requests_shed");
    if (AccessLog) {
      Json L;
      L["event"] = Json("request");
      L["id"] = Json(NextRequestId.fetch_add(1));
      L["disposition"] = Json(std::string(Why));
      L["retry_after_ms"] = Json(R.RetryAfterMs);
      L["admitted"] = Json(Admitted.load());
      L["capacity"] = Json(static_cast<uint64_t>(admissionCapacity()));
      writeAccessLine(L.dump());
    }
  }
  return R.encode();
}

resil::FaultKind Server::serveFault(const char *Site) {
  if (!ServeInj)
    return resil::FaultKind::None;
  resil::FaultDecision D;
  {
    std::lock_guard<std::mutex> Lock(FaultMu);
    D = ServeInj->next(Site);
  }
  if (D.Kind == resil::FaultKind::None)
    return D.Kind;
  if (Opts.Telemetry)
    Registry.bump("serve_faults_injected");
  if (D.Kind == resil::FaultKind::Latency) {
    std::this_thread::sleep_for(std::chrono::milliseconds(D.LatencyMs));
    return resil::FaultKind::None; // Slow, not broken.
  }
  return D.Kind;
}

uint64_t Server::registerToken(std::shared_ptr<engine::CancellationToken> T) {
  std::lock_guard<std::mutex> Lock(TokMu);
  uint64_t Id = NextTokId++;
  LiveToks[Id] = std::move(T);
  return Id;
}

void Server::unregisterToken(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(TokMu);
  LiveToks.erase(Id);
}

void Server::syncBreakerTrips() {
  if (!Opts.Telemetry)
    return;
  uint64_t Now = Store.breakerTrips();
  std::lock_guard<std::mutex> Lock(TripsMu);
  if (Now > BreakerTripsSeen) {
    Registry.bump("breaker_trips", static_cast<int64_t>(Now - BreakerTripsSeen));
    BreakerTripsSeen = Now;
  }
}

void Server::drain() {
  DrainingFlag.store(true);
  ShutdownFlag.store(true);
  if (Drained.exchange(true))
    return; // Idempotent: serve() and the dtor may both get here.

  auto DrainStart = std::chrono::steady_clock::now();
  auto SettleWait = [&](double Seconds) {
    auto Until = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(Seconds);
    while (Admitted.load() > 0 && std::chrono::steady_clock::now() < Until)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return Admitted.load() == 0;
  };

  uint64_t Cancelled = 0;
  if (!SettleWait(Opts.DrainTimeoutSeconds)) {
    // Timeout: cancel the stragglers. The synthesis observes the token
    // at its next budget poll, so give it a generous second window --
    // but never hang forever on a wedged request.
    {
      std::lock_guard<std::mutex> Lock(TokMu);
      for (auto &[Id, Tok] : LiveToks)
        if (Tok && !Tok->cancelled()) {
          Tok->cancel();
          ++Cancelled;
        }
    }
    if (Cancelled && Opts.Telemetry)
      Registry.bump("drain_cancelled", static_cast<int64_t>(Cancelled));
    SettleWait(std::max(5.0, Opts.DrainTimeoutSeconds));
  }

  // Flush: tier-2 cache to disk (best effort; the t1 entries were
  // written at their verdicts) and the access log. Metrics live in
  // memory and die with the process by design -- the final scrape
  // already happened or never will.
  if (Store.enabled())
    Store.saveReduceCache(RC);
  if (Opts.Telemetry && AccessLog) {
    Json L;
    L["event"] = Json("drain");
    L["drain_seconds"] =
        Json(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           DrainStart)
                 .count());
    L["cancelled"] = Json(Cancelled);
    L["remaining"] = Json(Admitted.load());
    writeAccessLine(L.dump());
    std::lock_guard<std::mutex> Lock(AccessLogMu);
    std::fflush(AccessLog);
  }
}

obs::Outcome Server::outcomeForExit(int Exit) {
  switch (Exit) {
  case front::ExitVerified:
    return obs::Outcome::Verified;
  case front::ExitUnsafe:
    return obs::Outcome::NotVerified;
  case front::ExitUnknown:
  case front::ExitInconclusive:
    return obs::Outcome::Inconclusive;
  default:
    return obs::Outcome::Error;
  }
}

void Server::writeAccessLine(const std::string &Line) {
  if (!AccessLog)
    return;
  std::lock_guard<std::mutex> Lock(AccessLogMu);
  std::fwrite(Line.data(), 1, Line.size(), AccessLog);
  std::fwrite("\n", 1, 1, AccessLog);
  std::fflush(AccessLog);
}

void Server::watchdogLoop() {
  // Poll a few times per threshold so a slow request is flagged promptly
  // without burning CPU on tight thresholds.
  auto Interval = std::chrono::duration<double>(Opts.SlowRequestSeconds / 4);
  auto Poll = std::chrono::duration_cast<std::chrono::milliseconds>(Interval);
  if (Poll < std::chrono::milliseconds(5))
    Poll = std::chrono::milliseconds(5);
  if (Poll > std::chrono::milliseconds(200))
    Poll = std::chrono::milliseconds(200);

  std::unique_lock<std::mutex> Lock(WatchdogMu);
  while (!WatchdogStop) {
    WatchdogCV.wait_for(Lock, Poll);
    if (WatchdogStop)
      break;
    Lock.unlock();
    auto Now = std::chrono::steady_clock::now();
    std::vector<std::string> Lines;
    {
      std::lock_guard<std::mutex> L(LiveMu);
      for (auto &[Id, LR] : Live) {
        double Elapsed =
            std::chrono::duration<double>(Now - LR->Start).count();
        if (Elapsed <= Opts.SlowRequestSeconds || LR->Slow.load())
          continue;
        // The watchdog only touches the request's atomics -- the live
        // "span stack" it reports is the phase the owner last published,
        // never the owner-private TraceBuffer.
        const char *Phase = LR->Phase.load();
        LR->SlowPhase.store(Phase);
        LR->Slow.store(true);
        SlowRequests.fetch_add(1);
        Json J;
        J["event"] = Json("slow_request");
        J["id"] = Json(Id);
        J["phase"] = Json(Phase);
        J["elapsed_seconds"] = Json(Elapsed);
        J["threshold_seconds"] = Json(Opts.SlowRequestSeconds);
        Lines.push_back(J.dump());
      }
    }
    for (const std::string &L : Lines)
      writeAccessLine(L);
    Lock.lock();
  }
}

VerifyResponse Server::verify(const VerifyRequest &Req,
                              const engine::CancellationToken *Cancel,
                              std::chrono::steady_clock::time_point Arrival) {
  uint64_t Id = NextRequestId.fetch_add(1);
  InFlight.fetch_add(1);
  struct InFlightGuard {
    std::atomic<uint64_t> &F;
    std::atomic<uint64_t> &S;
    ~InFlightGuard() {
      F.fetch_sub(1);
      S.fetch_add(1);
    }
  } Guard{InFlight, Served};

  auto T0 = std::chrono::steady_clock::now();
  if (Arrival == std::chrono::steady_clock::time_point{})
    Arrival = T0; // Direct call: no queue wait to charge.

  // Per-request observability: its own tracer, log lines tagged with the
  // request id so interleaved requests stay attributable. The epoch is
  // pinned to the request arrival so flight-recorder dumps from
  // different requests are comparable (every request starts at t=0),
  // and the event cap bounds the recorder's memory per request.
  bool CollectEvents = Opts.Telemetry && Opts.FlightCapacity > 0;
  obs::TracerConfig TC;
  TC.Level = Opts.Level;
  TC.LogPrefix = "r" + std::to_string(Id);
  TC.EpochAt = T0;
  TC.CollectEvents = CollectEvents;
  if (CollectEvents)
    TC.MaxEvents = static_cast<uint32_t>(Flight.config().MaxEventsPerRequest);
  obs::Tracer Tracer(TC);
  obs::TraceBuffer *TB = Tracer.worker(0);

  // Register with the watchdog for the duration of the request.
  LiveRequest LR;
  LR.Id = Id;
  LR.Start = T0;
  struct LiveGuard {
    Server &Srv;
    uint64_t Id;
    bool Armed;
    ~LiveGuard() {
      if (!Armed)
        return;
      std::lock_guard<std::mutex> L(Srv.LiveMu);
      Srv.Live.erase(Id);
    }
  } LG{*this, Id, Opts.SlowRequestSeconds > 0};
  if (LG.Armed) {
    std::lock_guard<std::mutex> L(LiveMu);
    Live[Id] = &LR;
  }

  double ParseSeconds = 0, SynthSeconds = 0;
  VerifyResponse Resp;
  {
    obs::Span Sp(TB, "request");
    Resp = verifyImpl(Id, Req, Cancel, Tracer, TB, T0, LR, ParseSeconds,
                      SynthSeconds, Arrival);
  }
  // The owner thread stamps the watchdog's verdict into the trace at
  // completion -- deterministically placed (after the request span), so
  // tests can assert on it without racing the watchdog.
  if (LR.Slow.load()) {
    const char *Phase = LR.SlowPhase.load();
    TB->instant("slow_request", Phase ? Phase : "request",
                static_cast<int64_t>(secondsSince(T0) * 1000));
  }
  Resp.ServerSeconds = secondsSince(T0);

  // Disposition: how the request left the server. A cancelled token
  // means the client vanished (EOF probe) or drain() pulled the plug.
  if (Resp.Disposition == "ok" && Cancel && Cancel->cancelled())
    Resp.Disposition = DrainingFlag.load() ? "drain_cancelled" : "cancelled";

  // Feed the retry_after_ms estimator with real service times (not shed
  // or deadline-expired rejections, which finish in microseconds and
  // would talk the hint down to its floor).
  if (!Resp.Overloaded) {
    ServiceMicros.fetch_add(static_cast<uint64_t>(Resp.ServerSeconds * 1e6));
    ServiceCount.fetch_add(1);
  }
  syncBreakerTrips();

  if (Opts.Telemetry) {
    obs::MetricsSummary MS = Tracer.metrics();
    obs::Outcome O = outcomeForExit(Resp.Exit);
    obs::CacheTier Tier = obs::CacheTier::Cold;
    if (Resp.Cache == "hit") {
      Tier = obs::CacheTier::T1Hit;
    } else if (const int64_t *H = MS.counter("reduce_cache_hits");
               H && *H > 0) {
      Tier = obs::CacheTier::T2Warm;
    }
    Registry.record(O, Tier, MS, Resp.ServerSeconds);

    if (CollectEvents) {
      obs::FlightRecord FR;
      FR.RequestId = Id;
      FR.Hash = Resp.Hash;
      FR.Outcome = obs::outcomeName(O);
      FR.TotalSeconds = Resp.ServerSeconds;
      FR.DroppedEvents = Tracer.droppedEvents();
      FR.Events = Tracer.mergedEvents();
      Flight.record(std::move(FR));
    }

    if (AccessLog) {
      Json L;
      L["event"] = Json("request");
      L["id"] = Json(Id);
      L["hash"] = Json(Resp.Hash);
      L["outcome"] = Json(obs::outcomeName(O));
      L["cache_tier"] = Json(obs::cacheTierName(Tier));
      L["parse_seconds"] = Json(ParseSeconds);
      L["cache_lookup_seconds"] = Json(Resp.CacheLookupSeconds);
      L["synth_seconds"] = Json(SynthSeconds);
      L["server_seconds"] = Json(Resp.ServerSeconds);
      L["workers"] = Json(Tracer.workerCount());
      L["dropped_events"] = Json(Tracer.droppedEvents());
      L["slow"] = Json(LR.Slow.load());
      L["disposition"] = Json(Resp.Disposition);
      L["queue_seconds"] =
          Json(std::chrono::duration<double>(T0 - Arrival).count());
      writeAccessLine(L.dump());
    }
  }
  return Resp;
}

VerifyResponse Server::verifyImpl(uint64_t Id, const VerifyRequest &Req,
                                  const engine::CancellationToken *Cancel,
                                  obs::Tracer &Tracer, obs::TraceBuffer *TB,
                                  std::chrono::steady_clock::time_point T0,
                                  LiveRequest &Live, double &ParseSeconds,
                                  double &SynthSeconds,
                                  std::chrono::steady_clock::time_point Arrival) {
  (void)Id;
  VerifyResponse Resp;

  // Deadline propagation: the clock started at admission, so time spent
  // waiting for a worker is already gone. A request whose whole budget
  // evaporated in the queue is rejected before parsing a byte -- the
  // worker moves straight on to one that can still make its deadline.
  double QueueSeconds = std::chrono::duration<double>(T0 - Arrival).count();
  double RemainingSeconds = 0; // 0 = no ceiling.
  if (Opts.MaxRequestSeconds > 0) {
    RemainingSeconds = Opts.MaxRequestSeconds - QueueSeconds;
    if (RemainingSeconds <= 0) {
      Resp.Exit = front::ExitOverloaded;
      Resp.Overloaded = true;
      Resp.RetryAfterMs = retryAfterMsHint();
      Resp.Disposition = "deadline";
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf),
                    "error: deadline exceeded in queue (waited %.2fs of a "
                    "%.2fs budget); retry after %lldms\n",
                    QueueSeconds, Opts.MaxRequestSeconds,
                    static_cast<long long>(Resp.RetryAfterMs));
      Resp.Error = Buf;
      Resp.ServerSeconds = secondsSince(T0);
      return Resp;
    }
  }

  resil::FaultPlan Faults;
  if (!Req.Faults.empty()) {
    std::string FErr;
    if (auto P = resil::FaultPlan::parse(Req.Faults, &FErr)) {
      Faults = std::move(*P);
    } else {
      Resp.Exit = front::ExitError;
      Resp.Error = "error: bad fault plan: " + FErr + "\n";
      Resp.ServerSeconds = secondsSince(T0);
      return Resp;
    }
  }

  Live.Phase.store("parse");
  logic::TermManager M;
  front::LoadResult L = [&] {
    obs::Span ParseSp(TB, "parse");
    return front::loadProtocolString(M, Req.ProtocolText, Req.File, TB);
  }();
  if (!L.ok()) {
    Resp.Exit = front::ExitError;
    Resp.Error = L.Error->render() + "\n";
    Resp.ServerSeconds = secondsSince(T0);
    return Resp;
  }
  ParseSeconds = secondsSince(T0);
  front::FrontBundle &B = *L.Bundle;

  // Chaos requests bypass both cache tiers: injected faults make the run
  // non-canonical, and nothing a fault produced may be served later.
  bool Cacheable = Req.Faults.empty();

  // -- Tier 1 ----------------------------------------------------------------
  Live.Phase.store("hash_lookup");
  front::CanonicalHash H;
  {
    obs::Span LookupSp(TB, "hash_lookup");
    H = front::canonicalProblemHash(B);
    Resp.Hash = H.hex();
    if (Cacheable && Store.enabled()) {
      auto TL = std::chrono::steady_clock::now();
      std::optional<ResultStore::T1Entry> Hit = Store.lookup(H);
      Resp.CacheLookupSeconds = secondsSince(TL);
      TB->counter(Hit ? "serve_t1_hits" : "serve_t1_misses", 1);
      if (Hit) {
        Resp.Exit = Hit->Exit;
        Resp.Cache = "hit";
        Resp.Output = renderHeader(B.Sys->name(), B.Property);
        if (Req.JsonLine)
          Resp.Output += renderJsonLine(
              B.Sys->name(), Req.File, Hit->Exit == front::ExitVerified,
              Hit->Exit == front::ExitUnsafe, /*Inconclusive=*/false,
              ParseSeconds, Resp.CacheLookupSeconds, /*SynthSeconds=*/0.0,
              secondsSince(T0), Hit->StatsJson);
        Resp.Output += Hit->Verdict;
        Resp.ServerSeconds = secondsSince(T0);
        return Resp;
      }
      Resp.Cache = "miss";
    }
  }
  std::string Header = renderHeader(B.Sys->name(), B.Property);

  // -- Solve -----------------------------------------------------------------
  Live.Phase.store("synth");
  synth::SynthOptions SO;
  SO.Shape = B.Shape;
  SO.QGuard = B.QGuard;
  SO.Reduce.Card.Venn = B.NeedsVenn;
  SO.Explicit = B.Explicit;
  SO.Trace = &Tracer;
  SO.NumWorkers = Req.Workers;
  if (Opts.SynthWorkers &&
      (Req.Workers == 0 || Req.Workers > Opts.SynthWorkers))
    SO.NumWorkers = Opts.SynthWorkers;
  SO.TimeBudgetSeconds = Req.TimeBudget;
  // Clamp by what is left of the deadline, not the full ceiling: queue
  // wait already spent part of it (RemainingSeconds > 0 was checked at
  // entry).
  if (RemainingSeconds > 0 && (SO.TimeBudgetSeconds <= 0 ||
                               SO.TimeBudgetSeconds > RemainingSeconds))
    SO.TimeBudgetSeconds = RemainingSeconds;
  if (Req.MaxTuples)
    SO.MaxTuples = Req.MaxTuples;
  SO.Supervise.Enabled = !Req.NoSupervise;
  SO.Incremental = !Req.NoIncremental;
  // Mode knobs never change the verdict or the invariant (the modes are
  // equivalence-checked by the parity suite), so the tier-1 cache key
  // stays the canonical problem hash alone.
  SO.Refine = !Req.NoRefine;
  if (Req.RefineBudget)
    SO.RefineBudget = Req.RefineBudget;
  if (Req.SmtTimeoutMs)
    SO.SmtTimeoutMs = Req.SmtTimeoutMs;
  if (!Faults.empty())
    SO.Faults = &Faults;
  SO.Cancel = Cancel;
  if (Cacheable)
    SO.ReuseReduceCache = &RC; // Tier 2: warm across requests.

  auto T1 = std::chrono::steady_clock::now();
  synth::SynthResult Res;
  {
    obs::Span SynthSp(TB, "synth");
    Res = synth::synthesize(*B.Sys, SO);
  }
  SynthSeconds = secondsSince(T1);

  Live.Phase.store("render");
  obs::Span RenderSp(TB, "render");
  RenderedVerdict V = renderVerdict(Res, B.ExpectSafe, ParseSeconds);
  Resp.Exit = V.Exit;
  Resp.Output = Header;
  if (Req.JsonLine)
    Resp.Output += renderJsonLine(
        B.Sys->name(), Req.File, Res.Verified, Res.Cex.has_value(),
        Res.Inconclusive, ParseSeconds, Resp.CacheLookupSeconds, SynthSeconds,
        secondsSince(T0), synth::statsJsonFields(Res.Stats));
  Resp.Output += V.Text;

  // -- Write-back ------------------------------------------------------------
  // Settled verdicts only, and never from a cancelled run (a disconnect
  // mid-solve must not publish a partial result).
  bool Cancelled = Cancel && Cancel->cancelled();
  if (Cacheable && Store.enabled() && !Cancelled &&
      (V.Exit == front::ExitVerified || V.Exit == front::ExitUnsafe)) {
    ResultStore::T1Entry E;
    E.Exit = V.Exit;
    E.Protocol = B.Sys->name();
    E.StatsJson = synth::statsJsonFields(Res.Stats);
    E.SynthSeconds = SynthSeconds;
    E.Verdict = V.Text;
    Store.store(H, E);
    Store.saveReduceCache(RC);
  }

  Resp.ServerSeconds = secondsSince(T0);
  return Resp;
}

Json Server::handle(const Json &Request,
                    const engine::CancellationToken *Cancel) {
  const std::string &Op = Request.get("op").asString();
  if (Op == "verify")
    return verify(VerifyRequest::decode(Request), Cancel).encode();
  if (Op == "status")
    return statusJson();
  if (Op == "health")
    return healthJson();
  if (Op == "cache_stats")
    return cacheStatsJson();
  if (Op == "metrics") {
    const std::string &F = Request.get("format").asString();
    if (F == "prom" || F == "prometheus") {
      Json J;
      J["ok"] = Json(true);
      J["format"] = Json("prom");
      J["text"] = Json(metricsProm());
      return J;
    }
    if (!F.empty() && F != "json") {
      Json J;
      J["ok"] = Json(false);
      J["error"] = Json("unknown metrics format '" + F + "' (json|prom)");
      return J;
    }
    return metricsJson();
  }
  if (Op == "dump_trace")
    return dumpTraceJson(
        static_cast<uint64_t>(Request.get("request").asInt(0)),
        Request.get("format").asString());
  if (Op == "shutdown") {
    requestShutdown();
    Json J;
    J["ok"] = Json(true);
    J["shutting_down"] = Json(true);
    return J;
  }
  Json J;
  J["ok"] = Json(false);
  J["error"] = Json("unknown op '" + Op + "'");
  return J;
}

Json Server::dispatch(const Json &Request) {
  const std::string &Op = Request.get("op").asString();
  // Cheap ops answer inline on the calling (connection) thread: they
  // must stay responsive precisely when every pool worker is busy.
  if (Op != "verify")
    return handle(Request);

  // Admission: reserve a slot or shed, before the pool queue ever sees
  // the request. fetch_add-then-check keeps the race window harmless --
  // two simultaneous arrivals at the boundary shed at most one request
  // early, never admit one late.
  if (DrainingFlag.load())
    return shedResponse("draining");
  if (Admitted.fetch_add(1) >= admissionCapacity()) {
    Admitted.fetch_sub(1);
    return shedResponse("shed");
  }
  auto Arrival = std::chrono::steady_clock::now();

  struct Pending {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    Json Resp;
  };
  auto P = std::make_shared<Pending>();
  auto Tok = std::make_shared<engine::CancellationToken>();
  uint64_t TokId = registerToken(Tok);
  VerifyRequest VR = VerifyRequest::decode(Request);
  Pool.submit([this, VR = std::move(VR), P, Tok, Arrival] {
    Json R = verify(VR, Tok.get(), Arrival).encode();
    std::lock_guard<std::mutex> Lock(P->M);
    P->Resp = std::move(R);
    P->Done = true;
    P->CV.notify_all();
  });
  Json Resp;
  {
    std::unique_lock<std::mutex> Lock(P->M);
    P->CV.wait(Lock, [&] { return P->Done; });
    Resp = P->Resp;
  }
  unregisterToken(TokId);
  Admitted.fetch_sub(1);
  return Resp;
}

Json Server::statusJson() const {
  StoreStats SS = Store.stats();
  Json J;
  J["ok"] = Json(true);
  J["uptime_seconds"] = Json(secondsSince(Start));
  J["served"] = Json(Served.load());
  J["in_flight"] = Json(InFlight.load());
  J["request_workers"] = Json(Pool.size());
  J["store_enabled"] = Json(Store.enabled());
  J["store_dir"] = Json(Store.dir());
  J["telemetry"] = Json(Opts.Telemetry);
  // Cumulative engine counters over all recorded requests, plus the
  // store-tier traffic -- enough to see daemon health at a glance
  // without a full metrics scrape.
  J["ctr_retries"] = Json(Registry.counterSum("retries"));
  J["ctr_fallbacks"] = Json(Registry.counterSum("fallbacks"));
  J["ctr_tuples_skipped"] = Json(Registry.counterSum("tuples_skipped"));
  J["t1_hits"] = Json(SS.T1Hits);
  J["t1_misses"] = Json(SS.T1Misses);
  J["t2_hits"] = Json(RC.hits());
  J["t2_misses"] = Json(RC.misses());
  J["slow_requests"] = Json(SlowRequests.load());
  J["draining"] = Json(DrainingFlag.load());
  J["admitted"] = Json(Admitted.load());
  J["admission_capacity"] = Json(static_cast<uint64_t>(admissionCapacity()));
  J["store_breaker"] = Json(std::string(Store.breakerStateName()));
  J["breaker_trips"] = Json(Store.breakerTrips());
  J["ctr_requests_shed"] = Json(Registry.counterSum("requests_shed"));
  J["ctr_drain_cancelled"] = Json(Registry.counterSum("drain_cancelled"));
  if (!StartupNote.empty())
    J["store_note"] = Json(StartupNote);
  return J;
}

Json Server::healthJson() const {
  uint64_t Adm = Admitted.load();
  unsigned Cap = admissionCapacity();
  bool IsDraining = DrainingFlag.load();
  Json J;
  J["ok"] = Json(true);
  J["state"] = Json(std::string(IsDraining ? "draining"
                                : Adm >= Cap ? "overloaded"
                                             : "ready"));
  J["draining"] = Json(IsDraining);
  J["admitted"] = Json(Adm);
  J["admission_capacity"] = Json(static_cast<uint64_t>(Cap));
  J["in_flight"] = Json(InFlight.load());
  J["retry_after_ms"] = Json(retryAfterMsHint());
  J["store_enabled"] = Json(Store.enabled());
  J["store_breaker"] = Json(std::string(Store.breakerStateName()));
  J["breaker_trips"] = Json(Store.breakerTrips());
  return J;
}

Json Server::cacheStatsJson() const {
  StoreStats S = Store.stats();
  Json J;
  J["ok"] = Json(true);
  J["t1_hits"] = Json(S.T1Hits);
  J["t1_misses"] = Json(S.T1Misses);
  J["t1_writes"] = Json(S.T1Writes);
  J["t1_corrupt"] = Json(S.T1Corrupt);
  J["t2_loaded"] = Json(S.T2Entries);
  J["t2_corrupt"] = Json(S.T2Corrupt);
  J["t2_live_entries"] = Json(static_cast<uint64_t>(RC.size()));
  J["t2_hits"] = Json(RC.hits());
  J["t2_misses"] = Json(RC.misses());
  return J;
}

std::vector<obs::PromGauge> Server::gauges() const {
  std::vector<obs::PromGauge> G;
  auto Add = [&](const char *Name, const char *Help, double Value) {
    G.push_back({Name, Help, Value, {}});
  };
  Add("uptime_seconds", "Seconds since daemon start.", secondsSince(Start));
  Add("served_requests", "Requests completed since start.",
      static_cast<double>(Served.load()));
  Add("in_flight_requests", "Verify requests currently executing.",
      static_cast<double>(InFlight.load()));
  unsigned Pending = Pool.pending();
  unsigned Size = Pool.size();
  Add("request_queue_depth", "Jobs waiting behind the busy request pool.",
      static_cast<double>(Pending > Size ? Pending - Size : 0));
  Add("request_pool_utilization", "Busy request workers / pool size.",
      Size ? static_cast<double>(std::min(Pending, Size)) / Size : 0.0);
  Add("store_t2_live_entries", "Reduce-cache entries resident in memory.",
      static_cast<double>(RC.size()));
  Add("flight_retained_requests", "Requests held by the flight recorder.",
      static_cast<double>(Flight.retained()));
  Add("flight_bytes", "Approximate flight-recorder memory footprint.",
      static_cast<double>(Flight.approxBytes()));
  Add("flight_bytes_ceiling",
      "Configured upper bound on flight-recorder memory.",
      static_cast<double>(Flight.memoryCeilingBytes()));
  Add("slow_requests", "Requests that exceeded --slow-request-seconds.",
      static_cast<double>(SlowRequests.load()));
  Add("admitted_requests", "Verify requests admitted (queued + executing).",
      static_cast<double>(Admitted.load()));
  Add("admission_capacity", "Request workers + admission queue depth.",
      static_cast<double>(admissionCapacity()));
  Add("draining", "1 while the daemon is draining, else 0.",
      DrainingFlag.load() ? 1.0 : 0.0);
  Add("store_breaker_open",
      "1 while the store circuit breaker blocks disk access, else 0.",
      std::string(Store.breakerStateName()) == "open" ? 1.0 : 0.0);
  Add("store_breaker_trips", "Times the store circuit breaker tripped open.",
      static_cast<double>(Store.breakerTrips()));
  obs::PromGauge Info;
  Info.Name = "server_info";
  Info.Help = "Daemon identity; the value is always 1.";
  Info.Value = 1;
  Info.Labels = {{"store_dir", Store.dir()}, {"bound", Bound}};
  G.push_back(std::move(Info));
  return G;
}

Json Server::metricsJson() const {
  obs::MetricsRegistry::Snapshot S = Registry.snapshot();
  Json J;
  J["ok"] = Json(true);
  J["telemetry"] = Json(Opts.Telemetry);

  Json Reqs, Secs;
  for (unsigned O = 0; O < obs::NumOutcomes; ++O) {
    Json RowR, RowS;
    for (unsigned T = 0; T < obs::NumCacheTiers; ++T) {
      const char *TN = obs::cacheTierName(static_cast<obs::CacheTier>(T));
      RowR[TN] = Json(S.Requests[O][T]);
      RowS[TN] = Json(S.RequestSeconds[O][T]);
    }
    const char *ON = obs::outcomeName(static_cast<obs::Outcome>(O));
    Reqs[ON] = std::move(RowR);
    Secs[ON] = std::move(RowS);
  }
  J["requests"] = std::move(Reqs);
  J["request_seconds"] = std::move(Secs);

  Json Ctrs;
  for (const auto &[N, V] : S.Counters)
    Ctrs[N] = Json(V);
  J["counters"] = std::move(Ctrs);

  Json Hists;
  for (const auto &[N, H] : S.Hists) {
    Json HJ;
    HJ["count"] = Json(H.Count);
    HJ["min"] = Json(H.Min);
    HJ["max"] = Json(H.Max);
    HJ["mean"] = Json(H.mean());
    HJ["p50"] = Json(H.P50);
    HJ["p90"] = Json(H.P90);
    HJ["p99"] = Json(H.P99);
    Hists[N] = std::move(HJ);
  }
  J["hists"] = std::move(Hists);

  Json Gs;
  for (const obs::PromGauge &G : gauges())
    Gs[G.Name] = Json(G.Value);
  J["gauges"] = std::move(Gs);
  return J;
}

std::string Server::metricsProm() const {
  return obs::renderProm(Registry.snapshot(), gauges());
}

Json Server::dumpTraceJson(uint64_t RequestId,
                           const std::string &Format) const {
  Json J;
  std::string F = Format.empty() ? "perfetto" : Format;
  std::vector<obs::FlightRecord> Recs = Flight.dump(RequestId);
  if (F == "perfetto" || F == "chrome") {
    J["trace"] = Json(renderFlightTrace(Recs));
    F = "perfetto";
  } else if (F == "jsonl") {
    J["trace"] = Json(renderFlightJsonl(Recs));
  } else {
    J["ok"] = Json(false);
    J["error"] = Json("unknown trace format '" + F + "' (perfetto|jsonl)");
    return J;
  }
  J["ok"] = Json(true);
  J["format"] = Json(F);
  J["retained"] = Json(static_cast<uint64_t>(Flight.retained()));
  J["matched"] = Json(static_cast<uint64_t>(Recs.size()));
  return J;
}

// -- Socket front end --------------------------------------------------------

bool Server::listen(const Addr &A, std::string &Err) {
  if (A.IsUnix) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_un SA{};
    SA.sun_family = AF_UNIX;
    if (A.Path.size() >= sizeof(SA.sun_path)) {
      Err = "unix socket path too long: " + A.Path;
      return false;
    }
    std::strncpy(SA.sun_path, A.Path.c_str(), sizeof(SA.sun_path) - 1);
    ::unlink(A.Path.c_str()); // Stale socket from a previous daemon.
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) < 0) {
      Err = "bind " + A.Path + ": " + std::strerror(errno);
      return false;
    }
    UnixPath = A.Path;
    Bound = "unix:" + A.Path;
  } else {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in SA{};
    SA.sin_family = AF_INET;
    SA.sin_port = htons(static_cast<uint16_t>(A.Port));
    if (::inet_pton(AF_INET, A.Host.c_str(), &SA.sin_addr) != 1) {
      Err = "bad host '" + A.Host + "' (numeric IPv4 only)";
      return false;
    }
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) < 0) {
      Err = "bind " + A.Host + ":" + std::to_string(A.Port) + ": " +
            std::strerror(errno);
      return false;
    }
    sockaddr_in Actual{};
    socklen_t Len = sizeof(Actual);
    ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Actual), &Len);
    Bound = A.Host + ":" + std::to_string(ntohs(Actual.sin_port));
  }
  if (::listen(ListenFd, 16) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void Server::serve() {
  while (!shutdownRequested()) {
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, 200 /*ms*/);
    if (N <= 0)
      continue; // Timeout or EINTR: re-check the shutdown flag.
    int Fd = wire::acceptRetry(ListenFd);
    if (Fd == -2)
      continue; // Transient (aborted handshake): back to poll.
    if (Fd < 0)
      continue;
    // `accept` fault site: an injected failure drops the connection on
    // the floor (the client sees a reset and retries); latency holds
    // the accept loop itself, modeling a starved acceptor.
    if (serveFault("accept") != resil::FaultKind::None) {
      ::close(Fd);
      continue;
    }
    std::lock_guard<std::mutex> Lock(ConnsMu);
    Conns.emplace_back([this, Fd] { handleConnection(Fd); });
  }
  // Graceful drain: no new admissions, in-flight work finishes or is
  // cancelled under the drain timeout, store + access log flushed.
  drain();
  // Let in-flight connections finish before the dtor tears down state.
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (std::thread &T : Conns)
      if (T.joinable())
        T.join();
    Conns.clear();
  }
  Pool.wait();
}

void Server::handleConnection(int Fd) {
  std::string Buf;
  char Chunk[4096];
  bool Open = true;
  while (Open && !shutdownRequested()) {
    // Frame one line. The read waits in poll() slices, not a blocking
    // recv(): an idle keep-alive connection must notice shutdown and
    // release its thread, or drain would hang on the join.
    size_t Nl;
    while ((Nl = Buf.find('\n')) == std::string::npos) {
      pollfd P{Fd, POLLIN, 0};
      int PR = ::poll(&P, 1, 100 /*ms*/);
      if (shutdownRequested()) {
        Open = false;
        break;
      }
      if (PR == 0)
        continue;
      if (PR < 0) {
        if (errno == EINTR)
          continue;
        Open = false;
        break;
      }
      // `wire_read` fault site: any failure kind severs the connection
      // (a torn read is unrecoverable for line framing anyway).
      if (serveFault("wire_read") != resil::FaultKind::None) {
        Open = false;
        break;
      }
      ssize_t N = wire::readSome(Fd, Chunk, sizeof(Chunk));
      if (N <= 0) {
        Open = false;
        break;
      }
      Buf.append(Chunk, static_cast<size_t>(N));
      if (Buf.size() > (64u << 20)) { // Runaway client; drop it.
        Open = false;
        break;
      }
    }
    if (!Open)
      break;
    std::string Line = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    if (Line.empty())
      continue;

    std::string PErr;
    Json Req = parseJson(Line, &PErr);
    Json Resp;
    if (!PErr.empty()) {
      Resp["ok"] = Json(false);
      Resp["error"] = Json("bad request: " + PErr);
    } else if (Req.get("op").asString() != "verify") {
      // Cheap ops (status/health/metrics/...) answer inline: they must
      // work precisely when the pool is saturated.
      Resp = dispatch(Req);
    } else if (DrainingFlag.load()) {
      Resp = shedResponse("draining");
    } else if (Admitted.fetch_add(1) >= admissionCapacity()) {
      // Admission happens here, on the connection thread, so the pool
      // queue stays bounded no matter how many clients pile on.
      Admitted.fetch_sub(1);
      Resp = shedResponse("shed");
    } else {
      // Admitted: ship the work to the warm pool; this thread watches
      // the socket so a vanished client cancels its request instead of
      // occupying a pool worker to completion. The deadline clock
      // starts now -- queue wait is the request's problem, not the next
      // one's.
      auto Arrival = std::chrono::steady_clock::now();
      struct Pending {
        std::mutex M;
        std::condition_variable CV;
        bool Done = false;
        Json Resp;
      };
      auto P = std::make_shared<Pending>();
      auto Tok = std::make_shared<engine::CancellationToken>();
      uint64_t TokId = registerToken(Tok);
      VerifyRequest VR = VerifyRequest::decode(Req);
      Pool.submit([this, VR = std::move(VR), P, Tok, Arrival] {
        Json R = verify(VR, Tok.get(), Arrival).encode();
        std::lock_guard<std::mutex> Lock(P->M);
        P->Resp = std::move(R);
        P->Done = true;
        P->CV.notify_all();
      });
      bool ClientGone = false;
      {
        std::unique_lock<std::mutex> Lock(P->M);
        while (!P->Done) {
          P->CV.wait_for(Lock, std::chrono::milliseconds(100));
          if (P->Done)
            break;
          Lock.unlock();
          // EOF probe: a readable-but-empty socket means the client hung
          // up (it owes us nothing until our response).
          char Peek;
          ssize_t R = ::recv(Fd, &Peek, 1, MSG_PEEK | MSG_DONTWAIT);
          if (R == 0 && !ClientGone) {
            ClientGone = true;
            Tok->cancel();
          }
          Lock.lock();
        }
        Resp = P->Resp;
      }
      unregisterToken(TokId);
      Admitted.fetch_sub(1);
      if (ClientGone)
        break;
    }
    // `wire_write` fault site, then the EINTR/short-write-safe send.
    if (serveFault("wire_write") != resil::FaultKind::None) {
      Open = false;
      break;
    }
    std::string Out = Resp.dump();
    Out += '\n';
    if (!wire::writeAll(Fd, Out))
      Open = false;
  }
  ::close(Fd);
}
