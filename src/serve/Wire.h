//===- serve/Wire.h - Signal-safe socket I/O primitives ---------*- C++ -*-===//
//
// Part of sharpie. The one place raw recv/send/accept is allowed to
// happen in the serving stack. POSIX stream I/O has two sharp edges a
// line-delimited JSON protocol must not expose:
//
//   * partial writes: send() may accept any prefix of the buffer, and a
//     naive caller that treats a short count as success ships half a
//     JSON line -- the peer's framing then glues the next message onto
//     the torn one and every subsequent exchange is garbage;
//   * EINTR: any blocking call can be interrupted by a signal (the
//     daemon installs SIGTERM/SIGINT handlers for graceful drain, so
//     interruptions are routine, not exotic) and must be retried, not
//     treated as a connection error.
//
// These helpers loop until the full buffer moved, the peer hung up, or
// a real error occurred. Both the daemon (serve/Server.cpp) and the
// thin client (serve/Client.cpp) frame exclusively through them.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_WIRE_H
#define SHARPIE_SERVE_WIRE_H

#include <cstddef>
#include <string_view>
#include <sys/types.h>

namespace sharpie {
namespace serve {
namespace wire {

/// recv() retrying EINTR. Returns >0 bytes read, 0 on orderly peer
/// shutdown, -1 on a real error (errno preserved).
ssize_t readSome(int Fd, void *Buf, size_t Len);

/// Sends the whole of \p Data, looping over short writes and retrying
/// EINTR, with MSG_NOSIGNAL (a dead peer is a return value, never a
/// SIGPIPE). False on error or peer hangup.
bool writeAll(int Fd, std::string_view Data);

/// accept() retrying EINTR and the transient per-connection errnos
/// (ECONNABORTED, EPROTO): a client that connected and vanished before
/// we accepted must not look like a listener failure. Returns the new
/// fd, or -1 on a real error / -2 on a retryable one (caller re-polls).
int acceptRetry(int ListenFd);

} // namespace wire
} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_WIRE_H
