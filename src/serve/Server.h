//===- serve/Server.h - The sharpied verification server --------*- C++ -*-===//
//
// Part of sharpie. The long-running daemon behind `sharpied`: accepts
// line-delimited JSON requests (serve/Proto.h) over a Unix or TCP
// socket, runs verifications on a warm engine::ThreadPool, and answers
// from / feeds the persistent two-tier result store (serve/Store.h).
//
// Layering: the socket front end is a thin shell -- every operation is
// also a plain method (verify(), handle(), statusJson(), ...) so the
// tests drive a Server in-process with no sockets or subprocesses, and
// the request semantics cannot drift from the wire semantics.
//
// Concurrency model: one OS thread per accepted connection does framing
// only; verify work is submitted to the request pool (RequestWorkers
// threads, warm for the daemon's lifetime). While a verify is in
// flight its connection thread polls the socket; EOF (client gone)
// cancels the request's engine::CancellationToken, which the synthesis
// observes at every budget poll (SynthOptions::Cancel) -- a disconnected
// client stops burning CPU within one poll interval. Each request gets
// its own obs::Tracer (log lines tagged "r<id>") and SynthOptions; the
// shared state is the store, the cross-request reduce cache, and the
// counters, each behind its own lock.
//
// Telemetry (on by default, Opts.Telemetry=false strips it all):
//
//   * every finished request folds its per-request MetricsSummary into
//     the process-wide obs::MetricsRegistry, labeled by outcome and by
//     the cache tier that answered it; the `metrics` op exposes the
//     cumulative state as JSON or Prometheus text;
//   * every request's event stream is captured into a bounded
//     obs::FlightRecorder (fixed memory: ring of FlightCapacity
//     requests, MaxEvents-capped tracers), dumped by `dump_trace`;
//   * with --access-log, one structured JSON line per finished request;
//   * with --slow-request-seconds, a watchdog thread flags requests
//     exceeding the threshold while still running (access-log line with
//     the live phase) and the owner thread stamps a `slow_request`
//     instant into the trace at completion.
//
// The per-request tracer respects the obs single-owner rule: the
// watchdog never touches TraceBuffers, only the request's atomics in
// the live-request table.
//
// Overload discipline (PR 9): quantified-SMT check times are long-tailed
// -- a single request can legitimately run for minutes -- so the daemon
// must bound what it promises:
//
//   * admission control: at most RequestWorkers + QueueDepth verify
//     requests are admitted (executing + waiting). Excess requests are
//     shed *on the connection thread*, before ever touching the pool
//     queue, with a structured overloaded response whose retry_after_ms
//     hint comes from the observed mean service time times the queue
//     excess (cheap ops -- status, health, metrics -- are also answered
//     on the connection thread, so introspection stays responsive while
//     every worker is busy);
//   * deadline propagation: a request's clock starts at *admission*, so
//     queue wait counts against MaxRequestSeconds. What is left when a
//     worker picks the request up becomes its synthesis budget; a
//     request whose deadline expired while queued is rejected without
//     burning the worker (disposition "deadline");
//   * graceful drain: requestShutdown() (SIGTERM/SIGINT) stops
//     admissions ("draining" sheds), lets in-flight work finish for
//     DrainTimeoutSeconds, then cancels the stragglers through their
//     registered cancellation tokens, flushes the store and the access
//     log, and serve() returns so the driver can exit 0;
//   * fault injection: Opts.Faults scripts the serve-layer sites
//     (accept / wire_read / wire_write via a mutex-wrapped
//     FaultInjector, store_read / store_write via the store's fault
//     hook), and the store's circuit breaker (serve/Store.h) keeps a
//     corrupting disk from taxing the request path.
//
// Every terminal path writes an access-log line with a `disposition`
// field: ok, shed, draining, deadline, cancelled, drain_cancelled.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_SERVER_H
#define SHARPIE_SERVE_SERVER_H

#include "engine/Pool.h"
#include "obs/Flight.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "resil/Fault.h"
#include "serve/Proto.h"
#include "serve/Store.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace sharpie {
namespace serve {

struct ServerOptions {
  /// Store directory; empty runs the daemon memory-only (tier 2 still
  /// warms across requests in-process, nothing persists).
  std::string StoreDir;
  /// Verify requests processed concurrently (the warm pool's size).
  unsigned RequestWorkers = 2;
  /// Cap on a single request's synthesis workers; requests asking for
  /// more (or for 0 = all cores) are clamped to this.
  unsigned SynthWorkers = 1;
  /// Hard ceiling on any request's time budget; 0 = no ceiling. A
  /// request with no budget of its own gets exactly this ceiling.
  double MaxRequestSeconds = 0;
  obs::LogLevel Level = obs::LogLevel::Quiet;

  /// Structured access log: one JSON line per finished request (plus
  /// watchdog slow-request lines). Empty = disabled; "-" = stderr.
  std::string AccessLogPath;
  /// Requests running longer than this are flagged by the watchdog and
  /// stamped with a slow_request instant. 0 = watchdog disabled.
  double SlowRequestSeconds = 0;
  /// Requests retained by the flight recorder; 0 disables event
  /// capture entirely (metrics still aggregate).
  size_t FlightCapacity = 32;
  /// Master switch (--no-telemetry): false disables the registry, the
  /// flight recorder and per-request event collection -- the A/B
  /// baseline for the telemetry-overhead bench.
  bool Telemetry = true;

  /// Admission queue depth: verify requests allowed to *wait* behind a
  /// fully busy pool. Total admitted capacity is RequestWorkers +
  /// QueueDepth; anything past that is shed with retry_after_ms.
  unsigned QueueDepth = 8;
  /// Graceful drain: seconds in-flight requests get to finish after
  /// shutdown before their cancellation tokens fire. 0 = cancel
  /// immediately.
  double DrainTimeoutSeconds = 5.0;
  /// Serve-layer fault plan (resil/Fault.h grammar over the sites
  /// accept / wire_read / wire_write / store_read / store_write).
  /// Empty = no injection. Chaos-test only.
  std::string Faults;
  /// Store circuit-breaker tuning (threshold/cooldown).
  ResultStore::Tuning StoreTuning;
};

class Server {
public:
  explicit Server(ServerOptions O);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  // -- In-process API --------------------------------------------------------

  /// Runs one verify request start to finish on the calling thread
  /// (parse, tier-1 lookup, synthesis, store write-back). \p Cancel,
  /// when non-null, aborts the synthesis cooperatively. \p Arrival,
  /// when set, is the admission time: the elapsed queue wait is charged
  /// against MaxRequestSeconds and an already-expired deadline rejects
  /// the request without solving (default = now, i.e. no queue wait).
  VerifyResponse verify(const VerifyRequest &R,
                        const engine::CancellationToken *Cancel = nullptr,
                        std::chrono::steady_clock::time_point Arrival =
                            std::chrono::steady_clock::time_point{});

  /// Dispatches one decoded request to its handler; always returns a
  /// response object (unknown ops get {"ok":false,"error":...}).
  /// Bypasses admission control -- the direct entry for tests and for
  /// already-admitted pool work.
  Json handle(const Json &Request,
              const engine::CancellationToken *Cancel = nullptr);

  /// The full daemon request path minus the socket: cheap ops inline,
  /// verify through admission control + the warm pool, sheds when the
  /// queue is full or the server is draining. What handleConnection()
  /// runs per line; public so tests drive overload and drain
  /// in-process.
  Json dispatch(const Json &Request);

  Json statusJson() const;
  Json cacheStatsJson() const;

  /// The `health` op: ready/draining/overloaded, admission load, store
  /// breaker state. Lock-light by design (atomics + one store mutex).
  Json healthJson() const;

  /// The `metrics` op: cumulative request counts/seconds by
  /// outcome x cache tier, counter sums, merged histograms, gauges.
  Json metricsJson() const;
  /// Prometheus text exposition of the same state.
  std::string metricsProm() const;
  /// Point-in-time server gauges (in-flight, queue depth, pool
  /// utilization, store sizes, flight-recorder footprint, ...).
  std::vector<obs::PromGauge> gauges() const;

  /// The `dump_trace` op: flight-recorder contents as a Perfetto trace
  /// document or JSONL. \p RequestId 0 = all retained requests.
  Json dumpTraceJson(uint64_t RequestId = 0,
                     const std::string &Format = "perfetto") const;

  ResultStore &store() { return Store; }
  const obs::MetricsRegistry &registry() const { return Registry; }
  const obs::FlightRecorder &flight() const { return Flight; }
  uint64_t slowRequests() const { return SlowRequests.load(); }

  void requestShutdown();
  bool shutdownRequested() const { return ShutdownFlag.load(); }

  /// Graceful drain (idempotent): stop admitting, wait up to
  /// DrainTimeoutSeconds for admitted requests, cancel the stragglers,
  /// wait for them to observe it, flush store + access log. serve()
  /// runs this after the accept loop; in-process tests call it
  /// directly.
  void drain();
  bool draining() const { return DrainingFlag.load(); }

  /// Verify requests currently admitted (queued + executing).
  uint64_t admitted() const { return Admitted.load(); }
  /// RequestWorkers + QueueDepth.
  unsigned admissionCapacity() const;
  /// The backoff hint a shed response would carry right now.
  int64_t retryAfterMsHint() const;

  // -- Socket front end ------------------------------------------------------

  /// Binds and listens on \p A. Returns false with \p Err on failure.
  /// For TCP port 0 the kernel-assigned port is reflected into
  /// boundAddress().
  bool listen(const Addr &A, std::string &Err);

  /// The address actually bound ("unix:<path>" or "<host>:<port>");
  /// empty before listen().
  const std::string &boundAddress() const { return Bound; }

  /// Accept loop; returns after requestShutdown() (checked a few times a
  /// second) once in-flight connections finish.
  void serve();

private:
  /// Watchdog's view of a running request. The owning request thread
  /// publishes its current phase; the watchdog only reads/writes these
  /// atomics (never the request's TraceBuffers).
  struct LiveRequest {
    uint64_t Id = 0;
    std::chrono::steady_clock::time_point Start;
    std::atomic<const char *> Phase{"request"};
    std::atomic<bool> Slow{false};
    /// Phase observed by the watchdog when it flagged the request.
    std::atomic<const char *> SlowPhase{nullptr};
  };

  void handleConnection(int Fd);
  VerifyResponse verifyImpl(uint64_t Id, const VerifyRequest &Req,
                            const engine::CancellationToken *Cancel,
                            obs::Tracer &Tracer, obs::TraceBuffer *TB,
                            std::chrono::steady_clock::time_point T0,
                            LiveRequest &Live, double &ParseSeconds,
                            double &SynthSeconds,
                            std::chrono::steady_clock::time_point Arrival);
  void writeAccessLine(const std::string &Line);
  void watchdogLoop();
  static obs::Outcome outcomeForExit(int Exit);

  /// Builds the structured shed response (exit 5, retry_after_ms) and
  /// writes its access-log line. \p Why is "shed" or "draining".
  Json shedResponse(const char *Why);
  /// Mutex-wrapped serve-site fault decision; FaultKind::None when no
  /// plan is installed or the site doesn't fire. Latency faults sleep
  /// here (outside every lock) and then report None.
  resil::FaultKind serveFault(const char *Site);
  /// Registers/unregisters a cancellable in-flight request so drain()
  /// can reach it.
  uint64_t registerToken(std::shared_ptr<engine::CancellationToken> T);
  void unregisterToken(uint64_t Id);
  /// Folds newly observed store breaker trips into the registry
  /// (called from non-const request paths; the registry counter backs
  /// ctr_breaker_trips).
  void syncBreakerTrips();

  ServerOptions Opts;
  ResultStore Store;
  /// Cross-request reduce cache (tier 2), shared mode from birth; loaded
  /// from / saved to the store around each uncached solve.
  engine::ReduceCache RC;
  engine::ThreadPool Pool;

  obs::MetricsRegistry Registry;
  obs::FlightRecorder Flight;
  FILE *AccessLog = nullptr;
  bool OwnAccessLog = false; ///< False when AccessLog is stderr.
  std::mutex AccessLogMu;
  std::atomic<uint64_t> SlowRequests{0};

  mutable std::mutex LiveMu;
  std::map<uint64_t, LiveRequest *> Live;
  std::thread Watchdog;
  std::mutex WatchdogMu;
  std::condition_variable WatchdogCV;
  bool WatchdogStop = false;

  std::atomic<bool> ShutdownFlag{false};
  std::atomic<bool> DrainingFlag{false};
  std::atomic<bool> Drained{false}; ///< drain() already ran to the end.
  std::atomic<uint64_t> NextRequestId{1};
  std::atomic<uint64_t> Served{0};
  std::atomic<uint64_t> InFlight{0};
  std::chrono::steady_clock::time_point Start;

  /// Admission accounting: verify requests admitted and not yet done
  /// (queued + executing); dispatch() sheds when a fetch_add would pass
  /// admissionCapacity().
  std::atomic<uint64_t> Admitted{0};
  /// Completed-request service time (microseconds / count) feeding the
  /// retry_after_ms estimate. Atomics: touched once per request.
  std::atomic<uint64_t> ServiceMicros{0};
  std::atomic<uint64_t> ServiceCount{0};

  /// In-flight cancellation tokens, so drain() can cancel work it did
  /// not start. Keyed by a private id (not the request id: tokens are
  /// registered before the request id exists).
  std::mutex TokMu;
  std::map<uint64_t, std::shared_ptr<engine::CancellationToken>> LiveToks;
  uint64_t NextTokId = 1;

  /// Serve-layer fault injection (sites accept/wire_read/wire_write and
  /// the store hook). One injector for the whole daemon behind a mutex:
  /// FaultInjector is single-owner by contract, and these sites are off
  /// the synthesis hot path.
  std::mutex FaultMu;
  std::optional<resil::FaultInjector> ServeInj;

  std::mutex TripsMu;
  uint64_t BreakerTripsSeen = 0;

  /// Corrupt-store note from the startup tier-2 load; shown in status.
  std::string StartupNote;

  int ListenFd = -1;
  std::string Bound;
  std::string UnixPath; ///< For unlink on shutdown.
  std::vector<std::thread> Conns;
  std::mutex ConnsMu;
};

} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_SERVER_H
