//===- serve/Server.h - The sharpied verification server --------*- C++ -*-===//
//
// Part of sharpie. The long-running daemon behind `sharpied`: accepts
// line-delimited JSON requests (serve/Proto.h) over a Unix or TCP
// socket, runs verifications on a warm engine::ThreadPool, and answers
// from / feeds the persistent two-tier result store (serve/Store.h).
//
// Layering: the socket front end is a thin shell -- every operation is
// also a plain method (verify(), handle(), statusJson(), ...) so the
// tests drive a Server in-process with no sockets or subprocesses, and
// the request semantics cannot drift from the wire semantics.
//
// Concurrency model: one OS thread per accepted connection does framing
// only; verify work is submitted to the request pool (RequestWorkers
// threads, warm for the daemon's lifetime). While a verify is in
// flight its connection thread polls the socket; EOF (client gone)
// cancels the request's engine::CancellationToken, which the synthesis
// observes at every budget poll (SynthOptions::Cancel) -- a disconnected
// client stops burning CPU within one poll interval. Each request gets
// its own obs::Tracer (log lines tagged "r<id>") and SynthOptions; the
// shared state is the store, the cross-request reduce cache, and the
// counters, each behind its own lock.
//
// Telemetry (on by default, Opts.Telemetry=false strips it all):
//
//   * every finished request folds its per-request MetricsSummary into
//     the process-wide obs::MetricsRegistry, labeled by outcome and by
//     the cache tier that answered it; the `metrics` op exposes the
//     cumulative state as JSON or Prometheus text;
//   * every request's event stream is captured into a bounded
//     obs::FlightRecorder (fixed memory: ring of FlightCapacity
//     requests, MaxEvents-capped tracers), dumped by `dump_trace`;
//   * with --access-log, one structured JSON line per finished request;
//   * with --slow-request-seconds, a watchdog thread flags requests
//     exceeding the threshold while still running (access-log line with
//     the live phase) and the owner thread stamps a `slow_request`
//     instant into the trace at completion.
//
// The per-request tracer respects the obs single-owner rule: the
// watchdog never touches TraceBuffers, only the request's atomics in
// the live-request table.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_SERVER_H
#define SHARPIE_SERVE_SERVER_H

#include "engine/Pool.h"
#include "obs/Flight.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "serve/Proto.h"
#include "serve/Store.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace sharpie {
namespace serve {

struct ServerOptions {
  /// Store directory; empty runs the daemon memory-only (tier 2 still
  /// warms across requests in-process, nothing persists).
  std::string StoreDir;
  /// Verify requests processed concurrently (the warm pool's size).
  unsigned RequestWorkers = 2;
  /// Cap on a single request's synthesis workers; requests asking for
  /// more (or for 0 = all cores) are clamped to this.
  unsigned SynthWorkers = 1;
  /// Hard ceiling on any request's time budget; 0 = no ceiling. A
  /// request with no budget of its own gets exactly this ceiling.
  double MaxRequestSeconds = 0;
  obs::LogLevel Level = obs::LogLevel::Quiet;

  /// Structured access log: one JSON line per finished request (plus
  /// watchdog slow-request lines). Empty = disabled; "-" = stderr.
  std::string AccessLogPath;
  /// Requests running longer than this are flagged by the watchdog and
  /// stamped with a slow_request instant. 0 = watchdog disabled.
  double SlowRequestSeconds = 0;
  /// Requests retained by the flight recorder; 0 disables event
  /// capture entirely (metrics still aggregate).
  size_t FlightCapacity = 32;
  /// Master switch (--no-telemetry): false disables the registry, the
  /// flight recorder and per-request event collection -- the A/B
  /// baseline for the telemetry-overhead bench.
  bool Telemetry = true;
};

class Server {
public:
  explicit Server(ServerOptions O);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  // -- In-process API --------------------------------------------------------

  /// Runs one verify request start to finish on the calling thread
  /// (parse, tier-1 lookup, synthesis, store write-back). \p Cancel,
  /// when non-null, aborts the synthesis cooperatively.
  VerifyResponse verify(const VerifyRequest &R,
                        const engine::CancellationToken *Cancel = nullptr);

  /// Dispatches one decoded request to its handler; always returns a
  /// response object (unknown ops get {"ok":false,"error":...}).
  Json handle(const Json &Request,
              const engine::CancellationToken *Cancel = nullptr);

  Json statusJson() const;
  Json cacheStatsJson() const;

  /// The `metrics` op: cumulative request counts/seconds by
  /// outcome x cache tier, counter sums, merged histograms, gauges.
  Json metricsJson() const;
  /// Prometheus text exposition of the same state.
  std::string metricsProm() const;
  /// Point-in-time server gauges (in-flight, queue depth, pool
  /// utilization, store sizes, flight-recorder footprint, ...).
  std::vector<obs::PromGauge> gauges() const;

  /// The `dump_trace` op: flight-recorder contents as a Perfetto trace
  /// document or JSONL. \p RequestId 0 = all retained requests.
  Json dumpTraceJson(uint64_t RequestId = 0,
                     const std::string &Format = "perfetto") const;

  ResultStore &store() { return Store; }
  const obs::MetricsRegistry &registry() const { return Registry; }
  const obs::FlightRecorder &flight() const { return Flight; }
  uint64_t slowRequests() const { return SlowRequests.load(); }

  void requestShutdown();
  bool shutdownRequested() const { return ShutdownFlag.load(); }

  // -- Socket front end ------------------------------------------------------

  /// Binds and listens on \p A. Returns false with \p Err on failure.
  /// For TCP port 0 the kernel-assigned port is reflected into
  /// boundAddress().
  bool listen(const Addr &A, std::string &Err);

  /// The address actually bound ("unix:<path>" or "<host>:<port>");
  /// empty before listen().
  const std::string &boundAddress() const { return Bound; }

  /// Accept loop; returns after requestShutdown() (checked a few times a
  /// second) once in-flight connections finish.
  void serve();

private:
  /// Watchdog's view of a running request. The owning request thread
  /// publishes its current phase; the watchdog only reads/writes these
  /// atomics (never the request's TraceBuffers).
  struct LiveRequest {
    uint64_t Id = 0;
    std::chrono::steady_clock::time_point Start;
    std::atomic<const char *> Phase{"request"};
    std::atomic<bool> Slow{false};
    /// Phase observed by the watchdog when it flagged the request.
    std::atomic<const char *> SlowPhase{nullptr};
  };

  void handleConnection(int Fd);
  VerifyResponse verifyImpl(uint64_t Id, const VerifyRequest &Req,
                            const engine::CancellationToken *Cancel,
                            obs::Tracer &Tracer, obs::TraceBuffer *TB,
                            std::chrono::steady_clock::time_point T0,
                            LiveRequest &Live, double &ParseSeconds,
                            double &SynthSeconds);
  void writeAccessLine(const std::string &Line);
  void watchdogLoop();
  static obs::Outcome outcomeForExit(int Exit);

  ServerOptions Opts;
  ResultStore Store;
  /// Cross-request reduce cache (tier 2), shared mode from birth; loaded
  /// from / saved to the store around each uncached solve.
  engine::ReduceCache RC;
  engine::ThreadPool Pool;

  obs::MetricsRegistry Registry;
  obs::FlightRecorder Flight;
  FILE *AccessLog = nullptr;
  bool OwnAccessLog = false; ///< False when AccessLog is stderr.
  std::mutex AccessLogMu;
  std::atomic<uint64_t> SlowRequests{0};

  mutable std::mutex LiveMu;
  std::map<uint64_t, LiveRequest *> Live;
  std::thread Watchdog;
  std::mutex WatchdogMu;
  std::condition_variable WatchdogCV;
  bool WatchdogStop = false;

  std::atomic<bool> ShutdownFlag{false};
  std::atomic<uint64_t> NextRequestId{1};
  std::atomic<uint64_t> Served{0};
  std::atomic<uint64_t> InFlight{0};
  std::chrono::steady_clock::time_point Start;

  /// Corrupt-store note from the startup tier-2 load; shown in status.
  std::string StartupNote;

  int ListenFd = -1;
  std::string Bound;
  std::string UnixPath; ///< For unlink on shutdown.
  std::vector<std::thread> Conns;
  std::mutex ConnsMu;
};

} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_SERVER_H
