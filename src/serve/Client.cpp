//===- serve/Client.cpp - Thin client for the sharpied protocol ---------------===//
//
// Part of sharpie. See Client.h.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sharpie;
using namespace sharpie::serve;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  RecvBuf.clear();
}

bool Client::connect(const Addr &A, std::string &Err) {
  close();
  if (A.IsUnix) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_un SA{};
    SA.sun_family = AF_UNIX;
    if (A.Path.size() >= sizeof(SA.sun_path)) {
      Err = "unix socket path too long: " + A.Path;
      close();
      return false;
    }
    std::strncpy(SA.sun_path, A.Path.c_str(), sizeof(SA.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) < 0) {
      Err = "connect " + A.Path + ": " + std::strerror(errno);
      close();
      return false;
    }
    return true;
  }
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in SA{};
  SA.sin_family = AF_INET;
  SA.sin_port = htons(static_cast<uint16_t>(A.Port));
  if (::inet_pton(AF_INET, A.Host.c_str(), &SA.sin_addr) != 1) {
    Err = "bad host '" + A.Host + "' (numeric IPv4 only)";
    close();
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) < 0) {
    Err = "connect " + A.Host + ":" + std::to_string(A.Port) + ": " +
          std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::roundTrip(const Json &J, Json &Response, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  std::string Out = J.dump();
  Out += '\n';
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  char Chunk[4096];
  size_t Nl;
  while ((Nl = RecvBuf.find('\n')) == std::string::npos) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0) {
      Err = "server closed the connection";
      return false;
    }
    if (N < 0) {
      Err = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    RecvBuf.append(Chunk, static_cast<size_t>(N));
  }
  std::string Line = RecvBuf.substr(0, Nl);
  RecvBuf.erase(0, Nl + 1);
  std::string PErr;
  Response = parseJson(Line, &PErr);
  if (!PErr.empty()) {
    Err = "malformed response: " + PErr;
    return false;
  }
  return true;
}
