//===- serve/Client.cpp - Thin client for the sharpied protocol ---------------===//
//
// Part of sharpie. See Client.h.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "serve/Wire.h"

#include <arpa/inet.h>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace sharpie;
using namespace sharpie::serve;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  RecvBuf.clear();
}

bool Client::connect(const Addr &A, std::string &Err) {
  close();
  if (A.IsUnix) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_un SA{};
    SA.sun_family = AF_UNIX;
    if (A.Path.size() >= sizeof(SA.sun_path)) {
      Err = "unix socket path too long: " + A.Path;
      close();
      return false;
    }
    std::strncpy(SA.sun_path, A.Path.c_str(), sizeof(SA.sun_path) - 1);
    int R;
    do {
      R = ::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA));
    } while (R < 0 && errno == EINTR);
    if (R < 0) {
      Err = "connect " + A.Path + ": " + std::strerror(errno);
      close();
      return false;
    }
    return true;
  }
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in SA{};
  SA.sin_family = AF_INET;
  SA.sin_port = htons(static_cast<uint16_t>(A.Port));
  if (::inet_pton(AF_INET, A.Host.c_str(), &SA.sin_addr) != 1) {
    Err = "bad host '" + A.Host + "' (numeric IPv4 only)";
    close();
    return false;
  }
  int R;
  do {
    R = ::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA));
  } while (R < 0 && errno == EINTR);
  if (R < 0) {
    Err = "connect " + A.Host + ":" + std::to_string(A.Port) + ": " +
          std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::roundTrip(const Json &J, Json &Response, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  std::string Out = J.dump();
  Out += '\n';
  if (!wire::writeAll(Fd, Out)) {
    Err = std::string("send: ") + std::strerror(errno);
    return false;
  }
  char Chunk[4096];
  size_t Nl;
  while ((Nl = RecvBuf.find('\n')) == std::string::npos) {
    ssize_t N = wire::readSome(Fd, Chunk, sizeof(Chunk));
    if (N == 0) {
      Err = "server closed the connection";
      return false;
    }
    if (N < 0) {
      Err = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    RecvBuf.append(Chunk, static_cast<size_t>(N));
  }
  std::string Line = RecvBuf.substr(0, Nl);
  RecvBuf.erase(0, Nl + 1);
  std::string PErr;
  Response = parseJson(Line, &PErr);
  if (!PErr.empty()) {
    Err = "malformed response: " + PErr;
    return false;
  }
  return true;
}

// -- Retry discipline --------------------------------------------------------

namespace {
// Same mixer the fault injector uses (resil/Fault.cpp): decisions stay a
// pure function of their key, which is all "deterministic jitter" means.
uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}
} // namespace

int64_t sharpie::serve::backoffDelayMs(const RetryPolicy &P, unsigned Attempt,
                                       int64_t RetryAfterMs) {
  if (Attempt == 0)
    return 0;
  unsigned Shift = Attempt - 1 > 20 ? 20 : Attempt - 1;
  double Exp = static_cast<double>(P.BaseMs) * static_cast<double>(1u << Shift);
  // Jitter factor in [0.75, 1.25): +/-25% is enough to decorrelate a
  // thundering herd without making the schedule unrecognizable.
  uint64_t Key = splitmix64(P.Seed * 0x100000001b3ULL + Attempt);
  double Frac = static_cast<double>(Key >> 11) * (1.0 / 9007199254740992.0);
  int64_t Delay = static_cast<int64_t>(Exp * (0.75 + 0.5 * Frac));
  if (Delay < RetryAfterMs)
    Delay = RetryAfterMs; // The daemon's hint is a floor, never ignored.
  if (Delay > P.MaxDelayMs)
    Delay = P.MaxDelayMs;
  return Delay;
}

RetryOutcome sharpie::serve::requestWithRetry(const Addr &A,
                                              const Json &Request,
                                              const RetryPolicy &P,
                                              Json &Response) {
  RetryOutcome Out;
  int64_t RetryAfterMs = 0;
  for (unsigned Attempt = 0;; ++Attempt) {
    Out.Attempts = Attempt + 1;
    Client C;
    std::string Err;
    bool Got = C.connect(A, Err) && C.roundTrip(Request, Response, Err);
    if (Got) {
      Out.Ok = true;
      Out.Overloaded = Response.get("overloaded").asBool(false);
      if (!Out.Overloaded)
        return Out; // Success (or a settled error): done.
      RetryAfterMs = Response.get("retry_after_ms").asInt(0);
    } else {
      Out.Ok = false;
      Out.Overloaded = false;
      Out.Err = Err;
      RetryAfterMs = 0;
    }
    if (Attempt >= P.MaxRetries)
      return Out; // Budget exhausted; the last outcome stands.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoffDelayMs(P, Attempt + 1, RetryAfterMs)));
  }
}
