//===- serve/Store.cpp - Persistent two-tier result store ---------------------===//
//
// Part of sharpie. See Store.h.
//
//===----------------------------------------------------------------------===//

#include "serve/Store.h"

#include "resil/Resil.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

namespace {
/// Monotonic seconds for breaker cooldown arithmetic.
double monoSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

using namespace sharpie;
using namespace sharpie::serve;

namespace {

constexpr const char *T1Magic = "sharpie-store-t1 v1";
constexpr const char *T2Magic = "sharpie-store-t2 v1";

bool makeDir(const std::string &Path) {
  return ::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST;
}

/// Reads a whole file; empty optional when unreadable. Missing files are
/// the common case (every cold lookup), so no diagnostics here.
std::optional<std::string> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad())
    return std::nullopt;
  return SS.str();
}

/// Atomic publish: write next to the target, fsync-free rename over it.
/// A crash mid-write leaves the temp file; a crash mid-rename leaves
/// either the old or the new file -- both parse or miss cleanly.
bool writeAtomic(const std::string &Path, const std::string &Data) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Data;
    Out.flush();
    if (!Out) {
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

/// One "key value" line from a header section; value may be empty.
bool headerLine(std::istringstream &In, const char *Key, std::string &Val) {
  std::string Line;
  if (!std::getline(In, Line))
    return false;
  std::string Prefix = std::string(Key) + " ";
  if (Line.rfind(Prefix, 0) != 0)
    return false;
  Val = Line.substr(Prefix.size());
  return true;
}

} // namespace

ResultStore::ResultStore(std::string Dir_) : Dir(std::move(Dir_)) {
  if (Dir.empty())
    return;
  // Best-effort: if directory creation fails every write fails loudly
  // (store() returns false) while lookups just miss.
  makeDir(Dir);
  makeDir(Dir + "/t1");
  makeDir(Dir + "/t2");
}

std::string ResultStore::t1Path(const front::CanonicalHash &H) const {
  return Dir + "/t1/" + H.hex() + ".entry";
}

std::optional<ResultStore::T1Entry>
ResultStore::lookup(const front::CanonicalHash &H) {
  if (!enabled())
    return std::nullopt;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (breakerBlockedLocked()) {
      ++S.T1Misses;
      ++S.Bypassed;
      return std::nullopt;
    }
  }
  bool Injected = Hook && Hook("store_read");
  std::optional<std::string> Data =
      Injected ? std::nullopt : slurp(t1Path(H));
  std::lock_guard<std::mutex> Lock(Mu);
  if (Injected) {
    ++S.T1Misses;
    ++S.T1Corrupt;
    noteCorruptLocked();
    return std::nullopt;
  }
  if (!Data) {
    ++S.T1Misses;
    noteOkLocked();
    return std::nullopt;
  }
  auto Corrupt = [&]() -> std::optional<T1Entry> {
    ++S.T1Misses;
    ++S.T1Corrupt;
    noteCorruptLocked();
    // Self-heal: the file can never parse again, so keep it from taxing
    // every future lookup of this hash. The slot becomes a clean miss
    // and the next solve rewrites it.
    if (std::remove(t1Path(H).c_str()) == 0)
      ++S.T1Healed;
    return std::nullopt;
  };
  std::istringstream In(*Data);
  std::string Line, Val;
  if (!std::getline(In, Line) || Line != T1Magic)
    return Corrupt();
  T1Entry E;
  if (!headerLine(In, "hash", Val) || Val != H.hex())
    return Corrupt(); // Renamed or cross-linked entry file.
  if (!headerLine(In, "protocol", E.Protocol))
    return Corrupt();
  if (!headerLine(In, "exit", Val))
    return Corrupt();
  char *End = nullptr;
  long Exit = std::strtol(Val.c_str(), &End, 10);
  // The store only ever holds settled verdicts; anything else in the
  // exit field is corruption, not a new feature.
  if (End == Val.c_str() || *End != 0 || (Exit != 0 && Exit != 1))
    return Corrupt();
  E.Exit = static_cast<int>(Exit);
  if (!headerLine(In, "synth_seconds", Val))
    return Corrupt();
  errno = 0;
  E.SynthSeconds = std::strtod(Val.c_str(), &End);
  if (End == Val.c_str() || *End != 0 || errno != 0)
    return Corrupt();
  if (!headerLine(In, "stats", E.StatsJson))
    return Corrupt();
  if (!headerLine(In, "verdict_bytes", Val))
    return Corrupt();
  unsigned long NBytes = std::strtoul(Val.c_str(), &End, 10);
  if (End == Val.c_str() || *End != 0 || NBytes > (16u << 20))
    return Corrupt();
  std::streampos Pos = In.tellg();
  if (Pos < 0 ||
      static_cast<size_t>(Pos) + NBytes + 4 /* "\nend" */ > Data->size())
    return Corrupt(); // Truncated verdict payload.
  E.Verdict = Data->substr(static_cast<size_t>(Pos), NBytes);
  std::string_view Tail(*Data);
  Tail.remove_prefix(static_cast<size_t>(Pos) + NBytes);
  if (Tail.rfind("\nend\n", 0) != 0)
    return Corrupt();
  ++S.T1Hits;
  noteOkLocked();
  return E;
}

bool ResultStore::store(const front::CanonicalHash &H, const T1Entry &E) {
  if (!enabled())
    return false;
  if (E.Exit != 0 && E.Exit != 1)
    return false; // Only settled verdicts; see Store.h.
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (breakerBlockedLocked()) {
      ++S.Bypassed;
      return false;
    }
  }
  if (Hook && Hook("store_write")) {
    std::lock_guard<std::mutex> Lock(Mu);
    noteCorruptLocked();
    return false;
  }
  std::string Out;
  Out += T1Magic;
  Out += "\nhash " + H.hex();
  Out += "\nprotocol " + E.Protocol;
  Out += "\nexit " + std::to_string(E.Exit);
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6f", E.SynthSeconds);
  Out += std::string("\nsynth_seconds ") + Buf;
  Out += "\nstats " + E.StatsJson;
  Out += "\nverdict_bytes " + std::to_string(E.Verdict.size());
  Out += "\n" + E.Verdict;
  Out += "\nend\n";
  bool Ok = writeAtomic(t1Path(H), Out);
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ok) {
    ++S.T1Writes;
    noteOkLocked();
  }
  return Ok;
}

size_t ResultStore::loadReduceCache(engine::ReduceCache &C,
                                    std::string *Note) {
  if (!enabled())
    return 0;
  std::optional<std::string> Data = slurp(Dir + "/t2/reduce.cache");
  if (!Data)
    return 0; // Cold store: nothing to merge, nothing to report.
  std::string_view Body(*Data);
  std::string Magic = std::string(T2Magic) + "\n";
  if (Body.rfind(Magic, 0) != 0) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.T2Corrupt;
    noteCorruptLocked();
    if (Note)
      *Note = std::string(resil::failureClassName(
                  resil::FailureClass::CorruptStore)) +
              ": tier-2 cache has wrong or missing version header";
    return 0;
  }
  Body.remove_prefix(Magic.size());
  std::string CorruptNote;
  size_t N = C.deserializeShared(Body, &CorruptNote);
  std::lock_guard<std::mutex> Lock(Mu);
  S.T2Entries = N;
  if (!CorruptNote.empty()) {
    ++S.T2Corrupt;
    noteCorruptLocked();
    if (Note)
      *Note = std::string(resil::failureClassName(
                  resil::FailureClass::CorruptStore)) +
              ": tier-2 cache: " + CorruptNote;
  }
  return N;
}

size_t ResultStore::saveReduceCache(const engine::ReduceCache &C) {
  if (!enabled())
    return 0;
  std::string Out = std::string(T2Magic) + "\n";
  size_t N = C.serializeShared(Out);
  if (N == 0)
    return 0;
  if (!writeAtomic(Dir + "/t2/reduce.cache", Out))
    return 0;
  return N;
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

void ResultStore::setTuning(const Tuning &T) {
  std::lock_guard<std::mutex> Lock(Mu);
  Tune = T;
}

bool ResultStore::breakerBlockedLocked() {
  if (Breaker != BreakerState::Open)
    return false;
  if (monoSeconds() - TripAtSeconds < Tune.BreakerCooldownSeconds)
    return true;
  Breaker = BreakerState::HalfOpen; // Cooldown over: let probes through.
  return false;
}

void ResultStore::noteCorruptLocked() {
  if (Tune.BreakerThreshold <= 0)
    return;
  ++CorruptStreak;
  // A half-open probe that comes back corrupt re-trips immediately; a
  // closed breaker waits for the full streak.
  if (Breaker == BreakerState::HalfOpen ||
      (Breaker == BreakerState::Closed &&
       CorruptStreak >= Tune.BreakerThreshold)) {
    Breaker = BreakerState::Open;
    TripAtSeconds = monoSeconds();
    CorruptStreak = 0;
    ++S.BreakerTrips;
  }
}

void ResultStore::noteOkLocked() {
  CorruptStreak = 0;
  if (Breaker == BreakerState::HalfOpen)
    Breaker = BreakerState::Closed;
}

const char *ResultStore::breakerStateName() const {
  std::lock_guard<std::mutex> Lock(Mu);
  switch (Breaker) {
  case BreakerState::Closed:
    return "closed";
  case BreakerState::Open:
    // Report the cooldown transition without mutating state in a const
    // accessor; the next lookup/store performs the real move.
    return monoSeconds() - TripAtSeconds < Tune.BreakerCooldownSeconds
               ? "open"
               : "half_open";
  case BreakerState::HalfOpen:
    return "half_open";
  }
  return "?";
}

uint64_t ResultStore::breakerTrips() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S.BreakerTrips;
}
