//===- serve/Proto.h - The sharpied wire protocol ---------------*- C++ -*-===//
//
// Part of sharpie. Line-delimited JSON over a stream socket: the client
// sends one JSON object per line, the daemon answers with one JSON
// object per line, in order. Operations (field "op"):
//
//   verify       {"op":"verify","protocol_text":...,"file":...,
//                 "workers":N,"time_budget":S,"max_tuples":N,
//                 "smt_timeout_ms":N,"no_supervise":B,"no_incremental":B,
//                 "no_refine":B,"refine_budget":N,
//                 "faults":"...","json":B}
//             -> {"ok":true,"exit":E,"verdict":"verified",
//                 "output":"<full stdout text>","error":"",
//                 "cache":"hit|miss|off","hash":"<32hex>",
//                 "cache_lookup_seconds":F,"server_seconds":F}
//   status       -> uptime, requests in flight / served, workers,
//                   cumulative ctr_* sums, store-tier hit/miss traffic
//   cache_stats  -> StoreStats + tier-2 entry count
//   metrics      {"op":"metrics","format":"json|prom"} -> cumulative
//                   outcome x cache-tier request counts/seconds, counter
//                   sums, merged histograms and server gauges; "prom"
//                   answers {"ok":true,"text":"<exposition>"} instead
//   dump_trace   {"op":"dump_trace","format":"perfetto|jsonl",
//                 "request":ID} -> {"ok":true,"trace":"<document>"},
//                   the flight recorder's retained requests (ID 0 = all)
//   health       -> {"ok":true,"state":"ready|draining|overloaded",
//                   "admitted":N,"admission_capacity":N,
//                   "store_breaker":"closed|open|half_open",...}; cheap
//                   and answered inline on the connection thread, so it
//                   stays responsive while every worker is busy
//   shutdown     -> {"ok":true}; the daemon drains and exits
//
// Overload: a verify that arrives with the admission queue full (or the
// daemon draining) is *shed* -- answered immediately with
// {"ok":false,"exit":5,"verdict":"overloaded","overloaded":true,
// "retry_after_ms":N,...} and never executed. retry_after_ms is derived
// from observed service times and the queue's current excess; requests
// are idempotent by content hash, so clients retry safely after the
// hint. Responses also carry "disposition": how the request left the
// server ("ok", "shed", "draining", "deadline", "cancelled",
// "drain_cancelled").
//
// The protocol ships *source text*, not terms: the daemon re-parses and
// re-lowers, which is cheap, keeps the wire format trivially stable, and
// lets the content hash (front/Canon.h) guarantee that reformatted
// sources still hit the cache. The "output" field carries the complete,
// byte-exact stdout a local `sharpie` run would print -- both sides
// render through the functions below, so `sharpie --server` is
// indistinguishable from `sharpie` to scripts and humans (same
// diagnostics, same exit codes; see front/ExitCodes.h).
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SERVE_PROTO_H
#define SHARPIE_SERVE_PROTO_H

#include "serve/Json.h"
#include "synth/Synth.h"

#include <optional>
#include <string>

namespace sharpie {
namespace serve {

/// A verify request, as parsed from the wire or built by the thin
/// client. Field-for-field the `sharpie` CLI's knobs.
struct VerifyRequest {
  std::string ProtocolText;
  std::string File; ///< Display name only (diagnostics, JSON line).
  unsigned Workers = 1;
  double TimeBudget = 0;
  unsigned MaxTuples = 0;    ///< 0 = SynthOptions default.
  unsigned SmtTimeoutMs = 0; ///< 0 = SynthOptions default.
  bool NoSupervise = false;
  bool NoIncremental = false;
  bool NoRefine = false;     ///< Coarse lazy escalation, no CEGAR loop.
  unsigned RefineBudget = 0; ///< 0 = SynthOptions default.
  std::string Faults;    ///< FaultPlan spec; empty = none.
  bool JsonLine = false; ///< Client passed --json: include the JSON line.

  serve::Json encode() const;
  static VerifyRequest decode(const serve::Json &J);
};

/// A verify response. `Output` is the full stdout text; `Error` the
/// stderr text (non-empty exactly when Exit == front::ExitError).
struct VerifyResponse {
  int Exit = 3;
  std::string Output;
  std::string Error;
  std::string Cache = "off"; ///< "hit", "miss", or "off".
  std::string Hash;          ///< Canonical hash hex; empty on parse error.
  double CacheLookupSeconds = 0;
  double ServerSeconds = 0; ///< Daemon-side wall time for the request.
  bool Overloaded = false;  ///< Shed (queue full / draining / deadline
                            ///< expired in queue); never executed.
  int64_t RetryAfterMs = 0; ///< Backoff hint; meaningful when Overloaded.
  std::string Disposition = "ok"; ///< ok|shed|draining|deadline|cancelled|
                                  ///< drain_cancelled (access-log field).

  serve::Json encode() const;
  static VerifyResponse decode(const serve::Json &J);
};

// -- Shared rendering --------------------------------------------------------
//
// The one implementation of the driver's human-readable output. The CLI
// prints these strings; the daemon ships them in VerifyResponse::Output.

/// "== name ==" banner plus the optional property line.
std::string renderHeader(const std::string &Name, const std::string &Property);

/// The machine-readable --json result line (trailing newline included).
/// \p StatsJson is synth::statsJsonFields() output.
std::string renderJsonLine(const std::string &Protocol,
                           const std::string &File, bool Verified,
                           bool FoundCex, bool Inconclusive,
                           double ParseSeconds, double CacheLookupSeconds,
                           double SynthSeconds, double TotalSeconds,
                           const std::string &StatsJson);

/// The verdict block (VERIFIED/UNSAFE/INCONCLUSIVE/UNKNOWN) plus the
/// matching exit code.
struct RenderedVerdict {
  int Exit = 2;
  std::string Text;
};
RenderedVerdict renderVerdict(const synth::SynthResult &Res, bool ExpectSafe,
                              double ParseSeconds);

// -- Addresses ---------------------------------------------------------------

/// "unix:<path>" or "<host>:<port>". The daemon listens on, and the thin
/// client connects to, the same syntax.
struct Addr {
  bool IsUnix = false;
  std::string Path; ///< Unix-domain socket path.
  std::string Host;
  int Port = 0;
};
std::optional<Addr> parseAddr(const std::string &Spec, std::string *Err);

} // namespace serve
} // namespace sharpie

#endif // SHARPIE_SERVE_PROTO_H
