//===- smt/MiniSolver.cpp - From-scratch DPLL(T) solver -------------------------===//
//
// Part of sharpie. A self-contained SMT solver for the ground fragment the
// reduction pipeline produces: boolean structure over linear integer
// arithmetic atoms and array reads. Used to cross-check the Z3 back end
// (tests/smt_cross_test.cpp) and as a fallback oracle.
//
// Pipeline:
//   1. Lowering: array equalities (g = store(f, j, v), g = f) harvested
//      from top-level conjuncts define rewrite rules; reads over defined
//      arrays become case splits, reads over base arrays become fresh
//      variables with Ackermann congruence constraints; Int-sorted ite
//      terms are lifted into fresh variables.
//   2. Tseitin encoding of the boolean structure over atom literals.
//   3. CDCL: unit propagation, first-UIP conflict learning, restarts-free
//      activity-ordered decisions.
//   4. Theory: at a full assignment the asserted arithmetic literals are
//      checked by simplex + branch-and-bound (Simplex.h); infeasible
//      assignments are excluded by a (deletion-minimized) theory conflict
//      clause.
//
// Anything outside the fragment (quantifiers, cardinalities, non-linear
// multiplication, array equalities below disjunctions) yields Unknown --
// never a wrong verdict.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "logic/TermOps.h"
#include "smt/Simplex.h"

#include <algorithm>
#include <chrono>
#include <map>

using namespace sharpie;
using namespace sharpie::smt;
using logic::Kind;
using logic::Sort;
using logic::Term;
using logic::TermManager;

namespace {

/// A linear polynomial sum Coeffs[v]*v + Const over solver variables.
struct Poly {
  std::map<unsigned, int64_t> Coeffs;
  int64_t Const = 0;

  Poly operator+(const Poly &O) const {
    Poly R = *this;
    R.Const += O.Const;
    for (auto &[V, C] : O.Coeffs) {
      R.Coeffs[V] += C;
      if (R.Coeffs[V] == 0)
        R.Coeffs.erase(V);
    }
    return R;
  }
  Poly negate() const {
    Poly R;
    R.Const = -Const;
    for (auto &[V, C] : Coeffs)
      R.Coeffs[V] = -C;
    return R;
  }
  Poly scale(int64_t K) const {
    Poly R;
    if (K == 0)
      return R;
    R.Const = Const * K;
    for (auto &[V, C] : Coeffs)
      R.Coeffs[V] = C * K;
    return R;
  }
  bool isConst() const { return Coeffs.empty(); }
};

/// Literal encoding: variable index v, literal 2v (positive) / 2v+1.
using Lit = unsigned;
inline Lit mkLit(unsigned V, bool Neg) { return 2 * V + (Neg ? 1 : 0); }
inline unsigned litVar(Lit L) { return L >> 1; }
inline bool litNeg(Lit L) { return L & 1; }
inline Lit litNot(Lit L) { return L ^ 1; }

/// An arithmetic atom in normalized form: Poly <= 0 (over integers).
struct Atom {
  Poly P;
  bool IsArith = false; ///< False: pure boolean variable.
};

class MiniSolverImpl final : public SmtSolver {
public:
  explicit MiniSolverImpl(TermManager &M) : M(M) {}

  void push() override { Frames.push_back(Assertions.size()); }
  void pop() override {
    assert(!Frames.empty() && "pop without push");
    Assertions.resize(Frames.back());
    Frames.pop_back();
  }
  void add(Term T) override { Assertions.push_back(T); }

  SatResult check() override;
  SatResult checkAssuming(const std::vector<Term> &A) override;
  std::unique_ptr<SmtModel> model() override;
  void setTimeoutMs(unsigned Ms) override { TimeoutMs = Ms; }
  std::string reasonUnknown() const override { return Reason; }

private:
  friend class MiniModel;

  // -- Lowering --------------------------------------------------------------
  bool lower(Term Root, std::vector<Term> &SideConditions);
  std::optional<Poly> linearize(Term T, std::vector<Term> &Side);
  unsigned numericVar(Term T);
  std::optional<Term> rewriteRead(Term ReadT);

  // -- Encoding --------------------------------------------------------------
  unsigned freshBoolVar() {
    Atoms.push_back({});
    return static_cast<unsigned>(Atoms.size() - 1);
  }
  unsigned atomVar(const Poly &P);
  std::optional<Lit> encode(Term T, std::vector<Term> &Side);
  void addClause(std::vector<Lit> C);

  // -- CDCL + theory ------------------------------------------------------------
  SatResult solve();
  bool propagate(size_t &ConflictClause);
  bool theoryCheck(std::vector<Lit> &ConflictOut);

  TermManager &M;
  std::vector<Term> Assertions;
  std::vector<size_t> Frames;

  // Numeric variables.
  std::map<Term, unsigned> NumVarOf;   ///< Var/loweread read -> id.
  std::vector<Term> NumVarTerm;
  // Array definitions from top-level equalities: array var -> (kind).
  struct ArrayDef {
    Term Base;  ///< Defined equal to Base ...
    Term Index; ///< ... except at Index (null for plain aliasing) ...
    Term Value; ///< ... where it is Value.
  };
  std::map<Term, ArrayDef> ArrayDefs;
  std::map<Term, Term> ReadVarFor; ///< Base read term -> fresh Int var.

  // Boolean atoms/literals.
  std::vector<Atom> Atoms;
  std::map<Term, unsigned> BoolVarOf;
  std::map<std::pair<std::vector<std::pair<unsigned, int64_t>>, int64_t>,
           unsigned>
      AtomCache;
  std::vector<std::vector<Lit>> Clauses;

  // Result model.
  std::vector<int64_t> NumModel;
  std::vector<int8_t> BoolModel;
  bool HaveModel = false;
  bool TheoryUnknown = false; ///< Simplex budget/overflow hit.

  // Soft per-check timeout (0 = none). The CDCL loop polls the deadline
  // every few iterations and answers Unknown past it -- the same contract
  // as Z3's soft timeout, so SynthOptions.SmtTimeoutMs is honored by both
  // back ends.
  unsigned TimeoutMs = 0;
  std::chrono::steady_clock::time_point CheckDeadline;
  std::string Reason; ///< reasonUnknown() of the last Unknown answer.
  bool pastDeadline() const {
    return TimeoutMs != 0 &&
           std::chrono::steady_clock::now() > CheckDeadline;
  }
};

// -- Lowering ---------------------------------------------------------------------

unsigned MiniSolverImpl::numericVar(Term T) {
  auto It = NumVarOf.find(T);
  if (It != NumVarOf.end())
    return It->second;
  unsigned Id = static_cast<unsigned>(NumVarTerm.size());
  NumVarOf.emplace(T, Id);
  NumVarTerm.push_back(T);
  return Id;
}

std::optional<Term> MiniSolverImpl::rewriteRead(Term ReadT) {
  // Rewrites read(g, x) through the array-definition chain into an
  // ite-free term when indices decide syntactically, or an ite otherwise.
  Term Arr = ReadT->kid(0);
  Term Idx = ReadT->kid(1);
  unsigned Steps = 0;
  while (Arr.kind() == Kind::Var) {
    auto It = ArrayDefs.find(Arr);
    if (It == ArrayDefs.end())
      break;
    if (++Steps > 64)
      return std::nullopt; // Cyclic definitions: give up.
    const ArrayDef &D = It->second;
    if (D.Index.isNull()) {
      Arr = D.Base;
      continue;
    }
    if (D.Index == Idx)
      return D.Value;
    // Unknown aliasing: produce an ite for the encoder to lift.
    Term Rest = M.mkRead(D.Base, Idx);
    return M.mkIte(M.mkEq(Idx, D.Index), D.Value, Rest);
  }
  if (Arr.kind() != Kind::Var)
    return std::nullopt;
  // Base read: uninterpreted; a fresh variable per distinct read term.
  Term Key = M.mkRead(Arr, Idx);
  auto It = ReadVarFor.find(Key);
  if (It != ReadVarFor.end())
    return It->second;
  Term Fresh = M.freshVar("mini_rd", Sort::Int);
  ReadVarFor.emplace(Key, Fresh);
  return Fresh;
}

std::optional<Poly> MiniSolverImpl::linearize(Term T,
                                              std::vector<Term> &Side) {
  const logic::Node *N = T.node();
  switch (N->kind()) {
  case Kind::Var: {
    Poly P;
    P.Coeffs[numericVar(T)] = 1;
    return P;
  }
  case Kind::IntConst: {
    Poly P;
    P.Const = N->value();
    return P;
  }
  case Kind::Add: {
    Poly P;
    for (Term K : N->kids()) {
      auto Q = linearize(K, Side);
      if (!Q)
        return std::nullopt;
      P = P + *Q;
    }
    return P;
  }
  case Kind::Sub: {
    auto A = linearize(N->kid(0), Side), B = linearize(N->kid(1), Side);
    if (!A || !B)
      return std::nullopt;
    return *A + B->negate();
  }
  case Kind::Neg: {
    auto A = linearize(N->kid(0), Side);
    if (!A)
      return std::nullopt;
    return A->negate();
  }
  case Kind::Mul: {
    auto A = linearize(N->kid(0), Side), B = linearize(N->kid(1), Side);
    if (!A || !B)
      return std::nullopt;
    if (A->isConst())
      return B->scale(A->Const);
    if (B->isConst())
      return A->scale(B->Const);
    return std::nullopt; // Non-linear.
  }
  case Kind::Read: {
    auto R = rewriteRead(T);
    if (!R)
      return std::nullopt;
    if (*R == T)
      return std::nullopt;
    return linearize(*R, Side);
  }
  case Kind::Ite: {
    // Lift: fresh v with (c -> v = a) /\ (!c -> v = b).
    Term V = M.freshVar("mini_ite", Sort::Int);
    Side.push_back(M.mkAnd(
        M.mkImplies(N->kid(0), M.mkEq(V, N->kid(1))),
        M.mkImplies(M.mkNot(N->kid(0)), M.mkEq(V, N->kid(2)))));
    Poly P;
    P.Coeffs[numericVar(V)] = 1;
    return P;
  }
  default:
    return std::nullopt;
  }
}

// -- Encoding -----------------------------------------------------------------------

unsigned MiniSolverImpl::atomVar(const Poly &P) {
  std::vector<std::pair<unsigned, int64_t>> Key(P.Coeffs.begin(),
                                                P.Coeffs.end());
  auto CacheKey = std::make_pair(Key, P.Const);
  auto It = AtomCache.find(CacheKey);
  if (It != AtomCache.end())
    return It->second;
  unsigned V = freshBoolVar();
  Atoms[V].P = P;
  Atoms[V].IsArith = true;
  AtomCache.emplace(CacheKey, V);
  return V;
}

void MiniSolverImpl::addClause(std::vector<Lit> C) {
  std::sort(C.begin(), C.end());
  C.erase(std::unique(C.begin(), C.end()), C.end());
  for (size_t I = 0; I + 1 < C.size(); ++I)
    if (C[I] == litNot(C[I + 1]))
      return; // Tautology.
  Clauses.push_back(std::move(C));
}

std::optional<Lit> MiniSolverImpl::encode(Term T, std::vector<Term> &Side) {
  const logic::Node *N = T.node();
  switch (N->kind()) {
  case Kind::BoolConst: {
    // Encode as a fresh variable pinned by a unit clause.
    unsigned V = freshBoolVar();
    addClause({mkLit(V, N->value() == 0)});
    return mkLit(V, false);
  }
  case Kind::Var: {
    auto It = BoolVarOf.find(T);
    if (It != BoolVarOf.end())
      return mkLit(It->second, false);
    unsigned V = freshBoolVar();
    BoolVarOf.emplace(T, V);
    return mkLit(V, false);
  }
  case Kind::Not: {
    auto L = encode(N->kid(0), Side);
    if (!L)
      return std::nullopt;
    return litNot(*L);
  }
  case Kind::And:
  case Kind::Or: {
    bool IsAnd = N->kind() == Kind::And;
    std::vector<Lit> Ls;
    for (Term K : N->kids()) {
      auto L = encode(K, Side);
      if (!L)
        return std::nullopt;
      Ls.push_back(*L);
    }
    unsigned V = freshBoolVar();
    Lit Out = mkLit(V, false);
    // Tseitin: v <-> AND(ls) or v <-> OR(ls).
    if (IsAnd) {
      std::vector<Lit> Big{Out};
      for (Lit L : Ls) {
        addClause({litNot(Out), L});
        Big.push_back(litNot(L));
      }
      addClause(Big);
    } else {
      std::vector<Lit> Big{litNot(Out)};
      for (Lit L : Ls) {
        addClause({Out, litNot(L)});
        Big.push_back(L);
      }
      addClause(Big);
    }
    return Out;
  }
  case Kind::Implies: {
    return encode(M.mkOr(M.mkNot(N->kid(0)), N->kid(1)), Side);
  }
  case Kind::Ite: {
    assert(N->kid(1).sort() == Sort::Bool && "Int ite reaches encode");
    return encode(M.mkOr(M.mkAnd(N->kid(0), N->kid(1)),
                         M.mkAnd(M.mkNot(N->kid(0)), N->kid(2))),
                  Side);
  }
  case Kind::Eq: {
    if (N->kid(0).sort() == Sort::Array) {
      // Array equalities must have been consumed by the definition pass.
      return std::nullopt;
    }
    // a = b  <=>  a <= b /\ b <= a.
    return encode(M.mkAnd(M.mkLe(N->kid(0), N->kid(1)),
                          M.mkLe(N->kid(1), N->kid(0))),
                  Side);
  }
  case Kind::Le:
  case Kind::Lt: {
    auto A = linearize(N->kid(0), Side), B = linearize(N->kid(1), Side);
    if (!A || !B)
      return std::nullopt;
    // a <= b  =>  a - b <= 0;   a < b  =>  a - b + 1 <= 0 (integers).
    Poly P = *A + B->negate();
    if (N->kind() == Kind::Lt)
      P.Const += 1;
    if (P.isConst()) {
      unsigned V = freshBoolVar();
      addClause({mkLit(V, P.Const > 0)});
      return mkLit(V, false);
    }
    return mkLit(atomVar(P), false);
  }
  case Kind::Forall:
  case Kind::Exists:
  case Kind::Card:
    return std::nullopt; // Outside the ground fragment.
  default:
    return std::nullopt;
  }
}

bool MiniSolverImpl::lower(Term Root, std::vector<Term> &SideConditions) {
  // Harvest array definitions from top-level conjuncts.
  std::vector<Term> Conjs = Root.kind() == Kind::And
                                ? Root->kids()
                                : std::vector<Term>{Root};
  for (Term C : Conjs) {
    if (C.kind() != Kind::Eq || C->kid(0).sort() != Sort::Array)
      continue;
    Term L = C->kid(0), R = C->kid(1);
    if (L.kind() != Kind::Var)
      std::swap(L, R);
    if (L.kind() != Kind::Var)
      return false;
    if (ArrayDefs.count(L)) {
      // Second definition for the same array: treat as alias check only if
      // identical, otherwise out of fragment.
      return false;
    }
    if (R.kind() == Kind::Var) {
      ArrayDefs[L] = {R, Term(), Term()};
    } else if (R.kind() == Kind::Store && R->kid(0).kind() == Kind::Var) {
      ArrayDefs[L] = {R->kid(0), R->kid(1), R->kid(2)};
    } else {
      return false;
    }
    (void)SideConditions;
  }
  // Array equalities below disjunctions are out of fragment.
  std::set<Term> DeepArrayEqs = logic::collectSubterms(Root, [&](Term T) {
    return T.kind() == Kind::Eq && T->kid(0).sort() == Sort::Array;
  });
  for (Term E : DeepArrayEqs) {
    bool TopLevel =
        std::find(Conjs.begin(), Conjs.end(), E) != Conjs.end();
    if (!TopLevel)
      return false;
  }
  return true;
}

// -- CDCL ------------------------------------------------------------------------

namespace cdcl {

struct SolverState {
  std::vector<std::vector<Lit>> *Clauses;
  std::vector<int8_t> Assign;          ///< Per var: -1 unassigned, 0/1.
  std::vector<unsigned> Level;
  std::vector<size_t> Reason;          ///< Clause index or SIZE_MAX.
  std::vector<Lit> Trail;
  std::vector<size_t> TrailLim;
  std::vector<double> Activity;
  double ActivityInc = 1.0;
  size_t PropHead = 0;

  unsigned numVars() const { return static_cast<unsigned>(Assign.size()); }
  unsigned decisionLevel() const {
    return static_cast<unsigned>(TrailLim.size());
  }
  bool value(Lit L) const {
    int8_t A = Assign[litVar(L)];
    assert(A >= 0);
    return litNeg(L) ? !A : A;
  }
  bool isAssigned(Lit L) const { return Assign[litVar(L)] >= 0; }
  bool isTrue(Lit L) const { return isAssigned(L) && value(L); }
  bool isFalse(Lit L) const { return isAssigned(L) && !value(L); }

  void enqueue(Lit L, size_t ReasonClause) {
    unsigned V = litVar(L);
    Assign[V] = litNeg(L) ? 0 : 1;
    Level[V] = decisionLevel();
    Reason[V] = ReasonClause;
    Trail.push_back(L);
  }

  void cancelUntil(unsigned Lvl) {
    if (decisionLevel() <= Lvl)
      return;
    size_t Bound = TrailLim[Lvl];
    for (size_t I = Trail.size(); I > Bound; --I)
      Assign[litVar(Trail[I - 1])] = -1;
    Trail.resize(Bound);
    TrailLim.resize(Lvl);
    PropHead = std::min(PropHead, Trail.size());
  }

  void bump(unsigned V) {
    Activity[V] += ActivityInc;
    if (Activity[V] > 1e100) {
      for (double &A : Activity)
        A *= 1e-100;
      ActivityInc *= 1e-100;
    }
  }
};

} // namespace cdcl

bool MiniSolverImpl::theoryCheck(std::vector<Lit> &ConflictOut) {
  // Collect asserted arithmetic literals (current full assignment stored in
  // BoolModel) and check feasibility; on infeasibility produce a minimized
  // conflict clause. Returns true when consistent.
  std::vector<std::pair<unsigned, bool>> Asserted; // (atom var, positive)
  for (unsigned V = 0; V < Atoms.size(); ++V)
    if (Atoms[V].IsArith && BoolModel[V] >= 0)
      Asserted.push_back({V, BoolModel[V] == 1});

  auto Feasible =
      [&](const std::vector<std::pair<unsigned, bool>> &Subset,
          std::vector<int64_t> *ModelOut) {
        std::vector<LinearConstraint> Cs;
        for (auto [V, Pos] : Subset) {
          const Poly &P = Atoms[V].P;
          LinearConstraint C;
          if (Pos) { // P <= 0.
            for (auto &[Var, Coef] : P.Coeffs)
              C.Coeffs[Var] = Rational(Coef);
            C.Rhs = Rational(-P.Const);
          } else { // !(P <= 0): -P + 1 <= 0.
            for (auto &[Var, Coef] : P.Coeffs)
              C.Coeffs[Var] = Rational(-Coef);
            C.Rhs = Rational(P.Const - 1);
          }
          Cs.push_back(std::move(C));
        }
        return checkIntegerFeasible(
            static_cast<unsigned>(NumVarTerm.size()), Cs, ModelOut);
      };

  SimplexResult R = Feasible(Asserted, &NumModel);
  if (R == SimplexResult::Feasible)
    return true;
  // Treat Unknown pessimistically as conflict over everything; the caller
  // maps an empty model to SatResult::Unknown via the flag below.
  TheoryUnknown = R == SimplexResult::Unknown;
  // Deletion-based minimization of the conflict set.
  std::vector<std::pair<unsigned, bool>> Core = Asserted;
  if (R == SimplexResult::Infeasible && Core.size() <= 40) {
    for (size_t I = 0; I < Core.size();) {
      std::vector<std::pair<unsigned, bool>> Trial = Core;
      Trial.erase(Trial.begin() + I);
      if (Feasible(Trial, nullptr) == SimplexResult::Infeasible)
        Core = std::move(Trial);
      else
        ++I;
    }
  }
  ConflictOut.clear();
  for (auto [V, Pos] : Core)
    ConflictOut.push_back(mkLit(V, Pos)); // Negation of the assignment.
  return false;
}

SatResult MiniSolverImpl::solve() {
  using cdcl::SolverState;
  SolverState S;
  S.Clauses = &Clauses;
  unsigned NV = static_cast<unsigned>(Atoms.size());
  S.Assign.assign(NV, -1);
  S.Level.assign(NV, 0);
  S.Reason.assign(NV, SIZE_MAX);
  S.Activity.assign(NV, 0.0);

  auto Propagate = [&](size_t &Conflict) {
    // Naive clause-scan propagation (clause sets here are modest).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t CI = 0; CI < Clauses.size(); ++CI) {
        const std::vector<Lit> &C = Clauses[CI];
        Lit Unit = 0;
        unsigned Unassigned = 0;
        bool Satisfied = false;
        for (Lit L : C) {
          if (S.isTrue(L)) {
            Satisfied = true;
            break;
          }
          if (!S.isAssigned(L)) {
            ++Unassigned;
            Unit = L;
          }
        }
        if (Satisfied)
          continue;
        if (Unassigned == 0) {
          Conflict = CI;
          return false;
        }
        if (Unassigned == 1) {
          S.enqueue(Unit, CI);
          Changed = true;
        }
      }
    }
    return true;
  };

  auto Analyze = [&](size_t ConflictClause, std::vector<Lit> &Learnt,
                     unsigned &BackLevel) {
    // First-UIP resolution.
    std::vector<bool> Seen(NV, false);
    Learnt.clear();
    Learnt.push_back(0); // Placeholder for the asserting literal.
    unsigned Counter = 0;
    Lit P = UINT32_MAX;
    std::vector<Lit> Reason = Clauses[ConflictClause];
    size_t Index = S.Trail.size();
    for (;;) {
      for (Lit Q : Reason) {
        if (P != UINT32_MAX && Q == litNot(P))
          continue;
        unsigned V = litVar(Q);
        if (Seen[V] || S.Level[V] == 0)
          continue;
        Seen[V] = true;
        S.bump(V);
        if (S.Level[V] == S.decisionLevel())
          ++Counter;
        else
          Learnt.push_back(Q);
      }
      // Pick the next trail literal at the current level.
      while (Index > 0 && !Seen[litVar(S.Trail[Index - 1])])
        --Index;
      if (Index == 0)
        break;
      P = S.Trail[--Index];
      Seen[litVar(P)] = false;
      if (--Counter == 0)
        break;
      size_t RC = S.Reason[litVar(P)];
      if (RC == SIZE_MAX)
        break;
      Reason = Clauses[RC];
    }
    Learnt[0] = litNot(P);
    BackLevel = 0;
    for (size_t I = 1; I < Learnt.size(); ++I)
      BackLevel = std::max(BackLevel, S.Level[litVar(Learnt[I])]);
  };

  uint64_t Conflicts = 0;
  uint64_t Iters = 0;
  for (;;) {
    if ((++Iters & 63) == 0 && pastDeadline()) {
      Reason = "timeout";
      return SatResult::Unknown;
    }
    size_t ConflictClause = SIZE_MAX;
    if (!Propagate(ConflictClause)) {
      if (S.decisionLevel() == 0)
        return SatResult::Unsat;
      if (++Conflicts > 200000) {
        Reason = "conflict budget exceeded";
        return SatResult::Unknown;
      }
      std::vector<Lit> Learnt;
      unsigned BackLevel = 0;
      Analyze(ConflictClause, Learnt, BackLevel);
      S.cancelUntil(BackLevel);
      if (Learnt.size() == 1) {
        S.cancelUntil(0);
        if (S.isFalse(Learnt[0]))
          return SatResult::Unsat;
        Clauses.push_back(Learnt);
        if (!S.isAssigned(Learnt[0]))
          S.enqueue(Learnt[0], Clauses.size() - 1);
      } else {
        Clauses.push_back(Learnt);
        if (!S.isAssigned(Learnt[0]))
          S.enqueue(Learnt[0], Clauses.size() - 1);
      }
      S.ActivityInc *= 1.05;
      continue;
    }
    // Find an unassigned variable (highest activity).
    unsigned Best = UINT32_MAX;
    for (unsigned V = 0; V < NV; ++V)
      if (S.Assign[V] < 0 &&
          (Best == UINT32_MAX || S.Activity[V] > S.Activity[Best]))
        Best = V;
    if (Best == UINT32_MAX) {
      // Full assignment: theory check.
      BoolModel.assign(NV, -1);
      for (unsigned V = 0; V < NV; ++V)
        BoolModel[V] = S.Assign[V];
      std::vector<Lit> Conflict;
      TheoryUnknown = false;
      if (theoryCheck(Conflict))
        return SatResult::Sat;
      if (TheoryUnknown) {
        Reason = "incomplete: arithmetic budget or overflow";
        return SatResult::Unknown;
      }
      // Exclude this theory-inconsistent assignment and restart the search
      // from level 0 (simple and complete: each learnt theory clause
      // excludes at least the current assignment).
      addClause(Conflict);
      S.cancelUntil(0);
      continue;
    }
    S.TrailLim.push_back(S.Trail.size());
    S.enqueue(mkLit(Best, S.Activity[Best] == 0.0), SIZE_MAX);
  }
}

// MiniSolver re-encodes the assertion set from scratch on every check, so
// there is no persistent CDCL trail to attach assumptions to: the base
// push/add/check/pop emulation is already the natural implementation.
// This override improves on the base's full-list core by deletion
// minimization -- re-check without each assumption in turn and drop the
// ones that were not needed -- bounded so a pathological assumption list
// cannot multiply the check cost. A superset of a minimal core is always
// a sound (conservative) answer, so every bound below only costs
// precision, never correctness.
SatResult MiniSolverImpl::checkAssuming(const std::vector<Term> &A) {
  SatResult R = SmtSolver::checkAssuming(A);
  constexpr size_t MaxMinimizeAssumptions = 16;
  if (R != SatResult::Unsat || A.size() <= 1 ||
      A.size() > MaxMinimizeAssumptions)
    return R;
  std::vector<Term> Core = A;
  for (size_t I = 0; I < Core.size() && !pastDeadline();) {
    push();
    for (size_t J = 0; J < Core.size(); ++J)
      if (J != I)
        add(Core[J]);
    SatResult Trial = check();
    pop();
    if (Trial == SatResult::Unsat)
      Core.erase(Core.begin() + static_cast<ptrdiff_t>(I));
    else
      ++I;
  }
  LastAssumptions = Core; // unsatCore() reports the minimized set.
  return SatResult::Unsat;
}

SatResult MiniSolverImpl::check() {
  ++NumChecks;
  Reason.clear();
  CheckDeadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  // Reset per-check state.
  NumVarOf.clear();
  NumVarTerm.clear();
  ArrayDefs.clear();
  ReadVarFor.clear();
  Atoms.clear();
  BoolVarOf.clear();
  AtomCache.clear();
  Clauses.clear();
  HaveModel = false;

  Term Root = M.mkAnd(Assertions);
  if (Root.kind() == Kind::BoolConst) {
    HaveModel = Root->value() != 0; // Trivial (empty) model.
    return Root->value() ? SatResult::Sat : SatResult::Unsat;
  }

  std::vector<Term> Side;
  if (!lower(Root, Side)) {
    Reason = "incomplete: outside the ground fragment";
    return SatResult::Unknown;
  }

  // Encode the root and all side conditions produced during lowering
  // (lowering may generate more side conditions while encoding them).
  std::vector<Lit> Roots;
  std::vector<Term> Pending{Root};
  size_t Emitted = 0;
  while (Emitted < Pending.size()) {
    Term T = Pending[Emitted++];
    // Skip top-level array equalities (consumed as definitions).
    if (T.kind() == Kind::And) {
      std::vector<Term> Keep;
      for (Term K : T->kids())
        if (!(K.kind() == Kind::Eq && K->kid(0).sort() == Sort::Array))
          Keep.push_back(K);
      T = M.mkAnd(Keep);
    }
    if (T.kind() == Kind::Eq && T->kid(0).sort() == Sort::Array)
      continue;
    std::vector<Term> NewSide;
    auto L = encode(T, NewSide);
    if (!L) {
      Reason = "incomplete: outside the ground fragment";
      return SatResult::Unknown;
    }
    Roots.push_back(*L);
    for (Term NS : NewSide)
      Pending.push_back(NS);
  }
  for (Lit L : Roots)
    addClause({L});

  // Ackermann congruence for base reads over the same array.
  {
    std::vector<std::pair<Term, Term>> Reads(ReadVarFor.begin(),
                                             ReadVarFor.end());
    for (size_t I = 0; I < Reads.size(); ++I)
      for (size_t J = I + 1; J < Reads.size(); ++J) {
        Term R1 = Reads[I].first, R2 = Reads[J].first;
        if (R1->kid(0) != R2->kid(0))
          continue;
        Term Cong = M.mkImplies(M.mkEq(R1->kid(1), R2->kid(1)),
                                M.mkEq(Reads[I].second, Reads[J].second));
        std::vector<Term> NoSide;
        auto L = encode(Cong, NoSide);
        if (!L || !NoSide.empty()) {
          Reason = "incomplete: outside the ground fragment";
          return SatResult::Unknown;
        }
        addClause({*L});
      }
  }

  SatResult R = solve();
  HaveModel = R == SatResult::Sat;
  return R;
}

// -- Model ---------------------------------------------------------------------------

class MiniModel final : public SmtModel {
public:
  explicit MiniModel(MiniSolverImpl &S) : S(S) {}

  std::optional<int64_t> evalInt(Term T) override {
    std::vector<Term> Side;
    auto P = S.linearize(T, Side);
    if (!P || !Side.empty())
      return std::nullopt;
    int64_t V = P->Const;
    for (auto &[Var, Coef] : P->Coeffs) {
      if (Var >= S.NumModel.size())
        return std::nullopt;
      V += Coef * S.NumModel[Var];
    }
    return V;
  }

  std::optional<bool> evalBool(Term T) override {
    const logic::Node *N = T.node();
    switch (N->kind()) {
    case Kind::BoolConst:
      return N->value() != 0;
    case Kind::Var: {
      auto It = S.BoolVarOf.find(T);
      if (It == S.BoolVarOf.end() || S.BoolModel[It->second] < 0)
        return std::nullopt;
      return S.BoolModel[It->second] == 1;
    }
    case Kind::Not: {
      auto B = evalBool(N->kid(0));
      return B ? std::optional<bool>(!*B) : std::nullopt;
    }
    case Kind::And: {
      for (Term K : N->kids()) {
        auto B = evalBool(K);
        if (!B)
          return std::nullopt;
        if (!*B)
          return false;
      }
      return true;
    }
    case Kind::Or: {
      for (Term K : N->kids()) {
        auto B = evalBool(K);
        if (!B)
          return std::nullopt;
        if (*B)
          return true;
      }
      return false;
    }
    case Kind::Implies: {
      auto A = evalBool(N->kid(0));
      if (A && !*A)
        return true;
      auto B = evalBool(N->kid(1));
      if (!A || !B)
        return std::nullopt;
      return !*A || *B;
    }
    case Kind::Eq:
    case Kind::Le:
    case Kind::Lt: {
      auto A = evalInt(N->kid(0)), B = evalInt(N->kid(1));
      if (!A || !B)
        return std::nullopt;
      if (N->kind() == Kind::Eq)
        return *A == *B;
      return N->kind() == Kind::Le ? *A <= *B : *A < *B;
    }
    default:
      return std::nullopt;
    }
  }

private:
  MiniSolverImpl &S;
};

std::unique_ptr<SmtModel> MiniSolverImpl::model() {
  if (!HaveModel)
    return nullptr;
  return std::make_unique<MiniModel>(*this);
}

} // namespace

std::unique_ptr<SmtSolver> sharpie::smt::makeMiniSolver(TermManager &M) {
  return std::make_unique<MiniSolverImpl>(M);
}
