//===- smt/Rational.h - Exact rational arithmetic ---------------*- C++ -*-===//
//
// Part of sharpie. Small exact rationals over int64 with overflow
// detection, used by the MiniSolver's simplex core. On overflow the
// arithmetic raises a sticky flag that the solver turns into an Unknown
// answer -- never a wrong one.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SMT_RATIONAL_H
#define SHARPIE_SMT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <numeric>

namespace sharpie {
namespace smt {

/// An exact rational Num/Den with Den > 0, normalized. Overflow in any
/// operation sets the thread-local overflow flag (see rationalOverflowed).
class Rational {
public:
  Rational() = default;
  Rational(int64_t N) : Num(N) {}
  Rational(int64_t N, int64_t D) : Num(N), Den(D) { normalize(); }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isInteger() const { return Den == 1; }
  int64_t floor() const {
    if (Num >= 0 || Num % Den == 0)
      return Num / Den;
    return Num / Den - 1;
  }
  int64_t ceil() const {
    if (Num <= 0 || Num % Den == 0)
      return Num / Den;
    return Num / Den + 1;
  }

  static bool &overflowFlag() {
    thread_local bool Flag = false;
    return Flag;
  }

  Rational operator+(const Rational &O) const {
    return Rational(addMul(mul(Num, O.Den), mul(O.Num, Den)),
                    mul(Den, O.Den));
  }
  Rational operator-(const Rational &O) const {
    return Rational(addMul(mul(Num, O.Den), -mul(O.Num, Den)),
                    mul(Den, O.Den));
  }
  Rational operator*(const Rational &O) const {
    return Rational(mul(Num, O.Num), mul(Den, O.Den));
  }
  Rational operator/(const Rational &O) const {
    assert(O.Num != 0 && "division by zero");
    int64_t N = mul(Num, O.Den);
    int64_t D = mul(Den, O.Num);
    return Rational(N, D);
  }
  Rational operator-() const { return Rational(-Num, Den); }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const {
    return mul(Num, O.Den) < mul(O.Num, Den);
  }
  bool operator<=(const Rational &O) const {
    return mul(Num, O.Den) <= mul(O.Num, Den);
  }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return O <= *this; }

  bool isZero() const { return Num == 0; }

private:
  void normalize() {
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    assert(Den != 0 && "zero denominator");
    int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
  }

  static int64_t mul(int64_t A, int64_t B) {
    int64_t R;
    if (__builtin_mul_overflow(A, B, &R))
      overflowFlag() = true;
    return R;
  }
  static int64_t addMul(int64_t A, int64_t B) {
    int64_t R;
    if (__builtin_add_overflow(A, B, &R))
      overflowFlag() = true;
    return R;
  }

  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace smt
} // namespace sharpie

#endif // SHARPIE_SMT_RATIONAL_H
