//===- smt/Simplex.h - Simplex for linear integer arithmetic ----*- C++ -*-===//
//
// Part of sharpie. A from-scratch general simplex in the style of
// Dutertre & de Moura (CAV 2006), over exact rationals, with
// branch-and-bound for integer feasibility. This is the theory core of the
// MiniSolver; all numeric variables of the combined theory are integers,
// so strict bounds never arise (x < c is normalized to x <= c-1 upstream).
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SMT_SIMPLEX_H
#define SHARPIE_SMT_SIMPLEX_H

#include "smt/Rational.h"

#include <map>
#include <optional>
#include <vector>

namespace sharpie {
namespace smt {

/// Feasibility of a conjunction of linear constraints.
enum class SimplexResult { Feasible, Infeasible, Unknown };

/// A linear constraint sum_i Coeffs[i] * Var_i (<= | =) Rhs.
struct LinearConstraint {
  std::map<unsigned, Rational> Coeffs; ///< Variable id -> coefficient.
  Rational Rhs;
  bool IsEquality = false;
};

/// Checks feasibility of \p Constraints over \p NumVars integer variables.
/// \p MaxBranchNodes bounds the branch-and-bound tree; overruns (and
/// rational overflow) yield Unknown. On Feasible, \p ModelOut (if non-null)
/// receives integer values for all variables.
SimplexResult
checkIntegerFeasible(unsigned NumVars,
                     const std::vector<LinearConstraint> &Constraints,
                     std::vector<int64_t> *ModelOut = nullptr,
                     unsigned MaxBranchNodes = 2000);

/// Rational-relaxation-only check (exposed for tests and for the
/// branch-and-bound driver itself).
SimplexResult
checkRationalFeasible(unsigned NumVars,
                      const std::vector<LinearConstraint> &Constraints,
                      std::vector<Rational> *ModelOut = nullptr);

} // namespace smt
} // namespace sharpie

#endif // SHARPIE_SMT_SIMPLEX_H
