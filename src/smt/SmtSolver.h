//===- smt/SmtSolver.h - SMT back-end interface -----------------*- C++ -*-===//
//
// Part of sharpie. The quantifier-free SMT oracle used after ELIMCARD and
// quantifier instantiation have reduced proof obligations to the
// quantifier- and cardinality-free combined theory (paper Sec. 3, 5.1).
// Two implementations exist: Z3Solver (libz3) and MiniSolver (from-scratch
// DPLL(T), used for cross-checking).
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SMT_SMTSOLVER_H
#define SHARPIE_SMT_SMTSOLVER_H

#include "logic/Term.h"
#include "obs/Obs.h"

#include <chrono>
#include <memory>
#include <optional>

namespace sharpie {
namespace smt {

enum class SatResult { Sat, Unsat, Unknown };
enum class Validity { Valid, Invalid, Unknown };

const char *satResultName(SatResult R);

/// A satisfying assignment handle. Valid only until the owning solver is
/// mutated (add/pop) or destroyed.
class SmtModel {
public:
  virtual ~SmtModel();

  /// Evaluates a ground Int- or Tid-sorted term in the model. Returns
  /// nullopt when the model cannot interpret the term.
  virtual std::optional<int64_t> evalInt(logic::Term T) = 0;

  /// Evaluates a ground formula in the model.
  virtual std::optional<bool> evalBool(logic::Term T) = 0;
};

/// Incremental SMT solver interface over logic::Term.
class SmtSolver {
public:
  virtual ~SmtSolver();

  virtual void push() = 0;
  virtual void pop() = 0;

  /// Asserts formula \p T. Card terms must have been eliminated; quantifiers
  /// are accepted (back ends may answer Unknown on them).
  virtual void add(logic::Term T) = 0;

  virtual SatResult check() = 0;

  /// Checks satisfiability of the current assertions conjoined with
  /// \p Assumptions (Bool-sorted literals: variables or their negations).
  /// Unlike add(), the assumptions do not persist -- the next check sees
  /// only the asserted stack -- which is what makes Houdini-style candidate
  /// pruning incremental: the clause set is asserted once and each
  /// iteration just varies the assumption literals. The base implementation
  /// emulates the call with push/add/check/pop; back ends override it with
  /// a native mechanism (Z3: check-sat-assuming) where one exists.
  virtual SatResult checkAssuming(const std::vector<logic::Term> &Assumptions);

  /// After a checkAssuming() that answered Unsat: a subset of the passed
  /// assumptions sufficient for unsatisfiability (an unsat core). The core
  /// need not be minimal; returning the full assumption list is always a
  /// correct (maximally conservative) answer, and is what the base
  /// emulation does. Undefined after Sat/Unknown or after plain check().
  virtual std::vector<logic::Term> unsatCore() const { return LastAssumptions; }

  /// Returns the model after a Sat answer; nullptr otherwise.
  virtual std::unique_ptr<SmtModel> model() = 0;

  /// Sets a per-check soft timeout. 0 disables the timeout.
  virtual void setTimeoutMs(unsigned Ms) = 0;

  /// After a check() that answered Unknown: a short lower-case reason
  /// ("timeout", "incomplete: ...", Z3's reason_unknown text). Empty when
  /// the back end has nothing to say; undefined after Sat/Unsat. The
  /// resilience layer (resil/Resil.h) classifies Unknowns with this.
  virtual std::string reasonUnknown() const { return std::string(); }

  /// Number of check()/checkAssuming() calls, for benchmark statistics.
  unsigned numChecks() const { return NumChecks; }

protected:
  unsigned NumChecks = 0;
  /// Assumptions of the most recent checkAssuming(), kept so the default
  /// unsatCore() can answer conservatively.
  std::vector<logic::Term> LastAssumptions;
};

/// Creates a Z3-backed solver over \p M. The manager must outlive the
/// solver.
std::unique_ptr<SmtSolver> makeZ3Solver(logic::TermManager &M);

/// Creates the from-scratch MiniSolver (see smt/MiniSolver.h) over \p M.
std::unique_ptr<SmtSolver> makeMiniSolver(logic::TermManager &M);

/// Convenience: checks validity of \p T (i.e. unsatisfiability of its
/// negation) under the solver's current assertions (push/pop scoped).
Validity checkValid(SmtSolver &S, logic::TermManager &M, logic::Term T);

/// Instrumented check(): wraps the call in an "smt_check" span on \p Trace
/// (no-op when null), samples the latency into the global "smt_ms"
/// histogram and, when \p PhaseHist is non-null, into that per-phase
/// histogram too (e.g. "smt_ms.houdini"). \p Detail annotates the span.
inline SatResult checkTraced(SmtSolver &S, obs::TraceBuffer *Trace,
                             const char *PhaseHist = nullptr,
                             const char *Detail = "") {
  if (!Trace)
    return S.check();
  obs::Span Sp(Trace, "smt_check", [&] { return std::string(Detail); });
  auto T0 = std::chrono::steady_clock::now();
  SatResult R = S.check();
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  Trace->sample("smt_ms", Ms);
  if (PhaseHist)
    Trace->sample(PhaseHist, Ms);
  Trace->counter("smt_checks", 1);
  return R;
}

/// Instrumented checkAssuming(): like checkTraced, but the latency also
/// lands in the "smt_ms.assume" histogram, so the assumption-based
/// (incremental Houdini) checks are separable from monolithic ones in the
/// stats table and --json output.
inline SatResult checkAssumingTraced(SmtSolver &S,
                                     const std::vector<logic::Term> &A,
                                     obs::TraceBuffer *Trace,
                                     const char *PhaseHist = nullptr,
                                     const char *Detail = "") {
  if (!Trace)
    return S.checkAssuming(A);
  obs::Span Sp(Trace, "smt_check", [&] { return std::string(Detail); });
  auto T0 = std::chrono::steady_clock::now();
  SatResult R = S.checkAssuming(A);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  Trace->sample("smt_ms", Ms);
  Trace->sample("smt_ms.assume", Ms);
  if (PhaseHist)
    Trace->sample(PhaseHist, Ms);
  Trace->counter("smt_checks", 1);
  return R;
}

} // namespace smt
} // namespace sharpie

#endif // SHARPIE_SMT_SMTSOLVER_H
