//===- smt/Simplex.cpp - Simplex for linear integer arithmetic ------------------===//
//
// Part of sharpie. See Simplex.h. The tableau follows Dutertre & de Moura:
// every constraint gets a slack variable s = sum c_i x_i with bounds
// derived from the relation; basic variables are defined by tableau rows
// over the non-basic ones; a violated basic bound is repaired by pivoting
// with Bland's rule (which guarantees termination).
//
//===----------------------------------------------------------------------===//

#include "smt/Simplex.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace sharpie;
using namespace sharpie::smt;

namespace {

struct Bounds {
  std::optional<Rational> Lo, Hi;
};

/// Dense-tableau simplex instance.
class Tableau {
public:
  Tableau(unsigned NumStructural,
          const std::vector<LinearConstraint> &Constraints)
      : NumStructural(NumStructural) {
    unsigned Total = NumStructural + Constraints.size();
    VarBounds.resize(Total);
    Value.assign(Total, Rational(0));
    IsBasic.assign(Total, false);
    RowOf.assign(Total, UINT32_MAX);

    // One row per constraint: slack = sum coeffs.
    for (unsigned I = 0; I < Constraints.size(); ++I) {
      const LinearConstraint &C = Constraints[I];
      unsigned Slack = NumStructural + I;
      std::vector<Rational> Row(Total, Rational(0));
      for (const auto &[V, Coef] : C.Coeffs) {
        assert(V < NumStructural && "constraint over unknown variable");
        Row[V] = Coef;
      }
      Rows.push_back(std::move(Row));
      BasicOf.push_back(Slack);
      IsBasic[Slack] = true;
      RowOf[Slack] = I;
      if (C.IsEquality) {
        VarBounds[Slack].Lo = C.Rhs;
        VarBounds[Slack].Hi = C.Rhs;
      } else {
        VarBounds[Slack].Hi = C.Rhs;
      }
    }
    recomputeBasics();
  }

  void setBound(unsigned V, std::optional<Rational> Lo,
                std::optional<Rational> Hi) {
    if (Lo && (!VarBounds[V].Lo || *Lo > *VarBounds[V].Lo))
      VarBounds[V].Lo = Lo;
    if (Hi && (!VarBounds[V].Hi || *Hi < *VarBounds[V].Hi))
      VarBounds[V].Hi = Hi;
  }

  /// The core check loop. Returns Feasible/Infeasible/Unknown (overflow).
  SimplexResult solve() {
    Rational::overflowFlag() = false;
    // Clamp non-basic variables into their bounds first.
    for (unsigned V = 0; V < Value.size(); ++V) {
      if (IsBasic[V])
        continue;
      if (VarBounds[V].Lo && Value[V] < *VarBounds[V].Lo)
        updateNonBasic(V, *VarBounds[V].Lo);
      if (VarBounds[V].Hi && Value[V] > *VarBounds[V].Hi)
        updateNonBasic(V, *VarBounds[V].Hi);
    }
    unsigned Iters = 0;
    for (;;) {
      if (Rational::overflowFlag())
        return SimplexResult::Unknown;
      if (++Iters > 100000)
        return SimplexResult::Unknown;
      // Find the smallest basic variable violating a bound (Bland).
      unsigned Bad = UINT32_MAX;
      bool NeedsIncrease = false;
      for (unsigned R = 0; R < Rows.size(); ++R) {
        unsigned B = BasicOf[R];
        if (VarBounds[B].Lo && Value[B] < *VarBounds[B].Lo) {
          if (B < Bad) {
            Bad = B;
            NeedsIncrease = true;
          }
        } else if (VarBounds[B].Hi && Value[B] > *VarBounds[B].Hi) {
          if (B < Bad) {
            Bad = B;
            NeedsIncrease = false;
          }
        }
      }
      if (Bad == UINT32_MAX)
        return SimplexResult::Feasible;
      unsigned R = RowOf[Bad];
      // Find the smallest suitable non-basic variable to pivot with.
      unsigned Pivot = UINT32_MAX;
      for (unsigned V = 0; V < Value.size(); ++V) {
        if (IsBasic[V] || Rows[R][V].isZero())
          continue;
        const Rational &A = Rows[R][V];
        bool CanUse;
        if (NeedsIncrease)
          CanUse = (A > Rational(0) && canIncrease(V)) ||
                   (A < Rational(0) && canDecrease(V));
        else
          CanUse = (A > Rational(0) && canDecrease(V)) ||
                   (A < Rational(0) && canIncrease(V));
        if (CanUse && V < Pivot)
          Pivot = V;
      }
      if (Pivot == UINT32_MAX)
        return SimplexResult::Infeasible;
      Rational Target = NeedsIncrease ? *VarBounds[Bad].Lo
                                      : *VarBounds[Bad].Hi;
      pivotAndUpdate(Bad, Pivot, Target);
    }
  }

  Rational value(unsigned V) const { return Value[V]; }

private:
  bool canIncrease(unsigned V) const {
    return !VarBounds[V].Hi || Value[V] < *VarBounds[V].Hi;
  }
  bool canDecrease(unsigned V) const {
    return !VarBounds[V].Lo || Value[V] > *VarBounds[V].Lo;
  }

  void recomputeBasics() {
    for (unsigned R = 0; R < Rows.size(); ++R) {
      Rational Sum(0);
      for (unsigned V = 0; V < Value.size(); ++V)
        if (!IsBasic[V] && !Rows[R][V].isZero())
          Sum = Sum + Rows[R][V] * Value[V];
      Value[BasicOf[R]] = Sum;
    }
  }

  void updateNonBasic(unsigned V, Rational NewVal) {
    Rational Delta = NewVal - Value[V];
    Value[V] = NewVal;
    for (unsigned R = 0; R < Rows.size(); ++R)
      if (!Rows[R][V].isZero())
        Value[BasicOf[R]] = Value[BasicOf[R]] + Rows[R][V] * Delta;
  }

  /// Pivots basic variable \p B (in row RowOf[B]) with non-basic \p N and
  /// sets B's value to \p Target.
  void pivotAndUpdate(unsigned B, unsigned N, Rational Target) {
    unsigned R = RowOf[B];
    Rational A = Rows[R][N];
    Rational Theta = (Target - Value[B]) / A;
    Value[B] = Target;
    Value[N] = Value[N] + Theta;
    for (unsigned R2 = 0; R2 < Rows.size(); ++R2)
      if (R2 != R && !Rows[R2][N].isZero())
        Value[BasicOf[R2]] =
            Value[BasicOf[R2]] + Rows[R2][N] * Theta;

    // Rewrite row R to define N: B = sum(row) => N = (B - rest)/A.
    std::vector<Rational> &Row = Rows[R];
    std::vector<Rational> NewRow(Row.size(), Rational(0));
    for (unsigned V = 0; V < Row.size(); ++V) {
      if (V == N)
        continue;
      if (!Row[V].isZero())
        NewRow[V] = -(Row[V] / A);
    }
    NewRow[B] = Rational(1) / A;
    Row = NewRow;
    IsBasic[B] = false;
    IsBasic[N] = true;
    RowOf[N] = R;
    RowOf[B] = UINT32_MAX;
    BasicOf[R] = N;

    // Substitute N out of all other rows.
    for (unsigned R2 = 0; R2 < Rows.size(); ++R2) {
      if (R2 == R)
        continue;
      Rational C = Rows[R2][N];
      if (C.isZero())
        continue;
      for (unsigned V = 0; V < Row.size(); ++V) {
        if (V == N) {
          Rows[R2][V] = Rational(0);
          continue;
        }
        if (!Row[V].isZero())
          Rows[R2][V] = Rows[R2][V] + C * Row[V];
      }
    }
  }

  unsigned NumStructural;
  std::vector<std::vector<Rational>> Rows;
  std::vector<unsigned> BasicOf;
  std::vector<Bounds> VarBounds;
  std::vector<Rational> Value;
  std::vector<bool> IsBasic;
  std::vector<unsigned> RowOf;
};

} // namespace

SimplexResult sharpie::smt::checkRationalFeasible(
    unsigned NumVars, const std::vector<LinearConstraint> &Constraints,
    std::vector<Rational> *ModelOut) {
  Tableau T(NumVars, Constraints);
  SimplexResult R = T.solve();
  if (R == SimplexResult::Feasible && ModelOut) {
    ModelOut->clear();
    for (unsigned V = 0; V < NumVars; ++V)
      ModelOut->push_back(T.value(V));
  }
  return R;
}

namespace {

SimplexResult branchAndBound(unsigned NumVars,
                             std::vector<LinearConstraint> Constraints,
                             std::vector<int64_t> *ModelOut,
                             unsigned &Budget, unsigned Depth) {
  // The depth cap bounds the tableau growth along one branch (each level
  // adds a constraint); deep branches signal an unbounded fractional ray.
  if (Budget == 0 || Depth > 40)
    return SimplexResult::Unknown;
  --Budget;
  std::vector<Rational> Model;
  SimplexResult R = checkRationalFeasible(NumVars, Constraints, &Model);
  if (R != SimplexResult::Feasible)
    return R;
  // Find a fractional variable.
  unsigned Frac = UINT32_MAX;
  for (unsigned V = 0; V < NumVars; ++V)
    if (!Model[V].isInteger()) {
      Frac = V;
      break;
    }
  if (Frac == UINT32_MAX) {
    if (ModelOut) {
      ModelOut->clear();
      for (unsigned V = 0; V < NumVars; ++V)
        ModelOut->push_back(Model[V].num());
    }
    return SimplexResult::Feasible;
  }
  // Branch x <= floor / x >= ceil.
  bool SawUnknown = false;
  {
    std::vector<LinearConstraint> Left = Constraints;
    LinearConstraint C;
    C.Coeffs[Frac] = Rational(1);
    C.Rhs = Rational(Model[Frac].floor());
    Left.push_back(C);
    SimplexResult LR = branchAndBound(NumVars, std::move(Left), ModelOut,
                                      Budget, Depth + 1);
    if (LR == SimplexResult::Feasible)
      return LR;
    SawUnknown |= LR == SimplexResult::Unknown;
  }
  {
    std::vector<LinearConstraint> Right = Constraints;
    LinearConstraint C;
    C.Coeffs[Frac] = Rational(-1);
    C.Rhs = Rational(-Model[Frac].ceil());
    Right.push_back(C);
    SimplexResult RR = branchAndBound(NumVars, std::move(Right), ModelOut,
                                      Budget, Depth + 1);
    if (RR == SimplexResult::Feasible)
      return RR;
    SawUnknown |= RR == SimplexResult::Unknown;
  }
  return SawUnknown ? SimplexResult::Unknown : SimplexResult::Infeasible;
}

} // namespace

SimplexResult sharpie::smt::checkIntegerFeasible(
    unsigned NumVars, const std::vector<LinearConstraint> &Constraints,
    std::vector<int64_t> *ModelOut, unsigned MaxBranchNodes) {
  // GCD test: an equality with integral coefficients whose gcd does not
  // divide the right-hand side has no integer solution. (Branch-and-bound
  // alone cannot refute e.g. 3x + 3y = 7: it branches forever along the
  // fractional ray.)
  for (const LinearConstraint &C : Constraints) {
    if (!C.IsEquality || C.Coeffs.empty())
      continue;
    bool AllInt = C.Rhs.isInteger();
    int64_t G = 0;
    for (const auto &[V, K] : C.Coeffs) {
      (void)V;
      if (!K.isInteger()) {
        AllInt = false;
        break;
      }
      G = std::gcd(G, K.num() < 0 ? -K.num() : K.num());
    }
    if (AllInt && G > 1 && C.Rhs.num() % G != 0)
      return SimplexResult::Infeasible;
  }
  unsigned Budget = MaxBranchNodes;
  return branchAndBound(NumVars, Constraints, ModelOut, Budget, 0);
}
