//===- smt/Z3Solver.cpp - Z3 back end ---------------------------------------===//
//
// Part of sharpie. Translates logic::Term into Z3 expressions. Sort mapping:
// Int -> Int, Tid -> Int (thread identifiers are opaque indices; mapping to
// Int only widens the model class and is sound for validity checking),
// Array -> (Array Int Int).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "logic/TermOps.h"

#include <map>
#include <z3++.h>

using namespace sharpie;
using namespace sharpie::smt;
using logic::Kind;
using logic::Sort;
using logic::Term;

const char *sharpie::smt::satResultName(SatResult R) {
  switch (R) {
  case SatResult::Sat:
    return "sat";
  case SatResult::Unsat:
    return "unsat";
  case SatResult::Unknown:
    return "unknown";
  }
  return "?";
}

SmtModel::~SmtModel() = default;
SmtSolver::~SmtSolver() = default;

// Default emulation for back ends without a native check-sat-assuming: the
// assumptions ride on a throwaway frame. The frame is popped before
// returning -- model() stays valid on back ends whose models are decoupled
// from the assertion stack (MiniSolver), and back ends where it is not
// (Z3) override this with the native call anyway. The core defaults to the
// full assumption list via unsatCore()'s base implementation.
SatResult SmtSolver::checkAssuming(const std::vector<logic::Term> &A) {
  LastAssumptions = A;
  push();
  for (logic::Term T : A)
    add(T);
  SatResult R = check(); // Counts toward NumChecks via the inner call.
  pop();
  return R;
}

namespace {

/// Translates terms to Z3 expressions with caching.
class Z3Translator {
public:
  explicit Z3Translator(z3::context &C) : C(C) {}

  z3::expr toZ3(Term T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    z3::expr E = translate(T);
    Cache.emplace(T, E);
    return E;
  }

private:
  z3::expr translate(Term T) {
    const logic::Node *N = T.node();
    switch (N->kind()) {
    case Kind::Var:
      return mkVar(T);
    case Kind::IntConst:
      return C.int_val(static_cast<int64_t>(N->value()));
    case Kind::BoolConst:
      return C.bool_val(N->value() != 0);
    case Kind::Add: {
      z3::expr E = toZ3(N->kid(0));
      for (unsigned I = 1; I < N->numKids(); ++I)
        E = E + toZ3(N->kid(I));
      return E;
    }
    case Kind::Sub:
      return toZ3(N->kid(0)) - toZ3(N->kid(1));
    case Kind::Neg:
      return -toZ3(N->kid(0));
    case Kind::Mul:
      return toZ3(N->kid(0)) * toZ3(N->kid(1));
    case Kind::Ite:
      return z3::ite(toZ3(N->kid(0)), toZ3(N->kid(1)), toZ3(N->kid(2)));
    case Kind::Read:
      return z3::select(toZ3(N->kid(0)), toZ3(N->kid(1)));
    case Kind::Store:
      return z3::store(toZ3(N->kid(0)), toZ3(N->kid(1)), toZ3(N->kid(2)));
    case Kind::Eq:
      return toZ3(N->kid(0)) == toZ3(N->kid(1));
    case Kind::Le:
      return toZ3(N->kid(0)) <= toZ3(N->kid(1));
    case Kind::Lt:
      return toZ3(N->kid(0)) < toZ3(N->kid(1));
    case Kind::And: {
      z3::expr_vector V(C);
      for (Term K : N->kids())
        V.push_back(toZ3(K));
      return z3::mk_and(V);
    }
    case Kind::Or: {
      z3::expr_vector V(C);
      for (Term K : N->kids())
        V.push_back(toZ3(K));
      return z3::mk_or(V);
    }
    case Kind::Not:
      return !toZ3(N->kid(0));
    case Kind::Implies:
      return z3::implies(toZ3(N->kid(0)), toZ3(N->kid(1)));
    case Kind::Forall:
    case Kind::Exists: {
      z3::expr_vector Bound(C);
      for (Term B : N->binders())
        Bound.push_back(mkVar(B));
      z3::expr Body = toZ3(N->body());
      return N->kind() == Kind::Forall ? z3::forall(Bound, Body)
                                       : z3::exists(Bound, Body);
    }
    case Kind::Card:
      assert(false && "Card term reached the SMT back end; run ELIMCARD");
      return C.int_val(0);
    }
    assert(false && "unhandled kind");
    return C.int_val(0);
  }

  z3::expr mkVar(Term T) {
    const std::string &Name = T->name();
    switch (T.sort()) {
    case Sort::Bool:
      return C.bool_const(Name.c_str());
    case Sort::Int:
    case Sort::Tid:
      return C.int_const(Name.c_str());
    case Sort::Array:
      return C.constant(Name.c_str(),
                        C.array_sort(C.int_sort(), C.int_sort()));
    }
    assert(false && "unhandled sort");
    return C.int_val(0);
  }

  z3::context &C;
  std::map<Term, z3::expr> Cache;
};

class Z3Model final : public SmtModel {
public:
  Z3Model(z3::model Model, std::shared_ptr<Z3Translator> Tr)
      : Model(std::move(Model)), Tr(std::move(Tr)) {}

  std::optional<int64_t> evalInt(Term T) override {
    try {
      z3::expr E = Model.eval(Tr->toZ3(T), /*model_completion=*/true);
      if (!E.is_numeral())
        return std::nullopt;
      return E.get_numeral_int64();
    } catch (const z3::exception &) {
      return std::nullopt;
    }
  }

  std::optional<bool> evalBool(Term T) override {
    try {
      z3::expr E = Model.eval(Tr->toZ3(T), /*model_completion=*/true);
      if (E.is_true())
        return true;
      if (E.is_false())
        return false;
      return std::nullopt;
    } catch (const z3::exception &) {
      return std::nullopt;
    }
  }

private:
  z3::model Model;
  std::shared_ptr<Z3Translator> Tr;
};

class Z3SolverImpl final : public SmtSolver {
public:
  explicit Z3SolverImpl(logic::TermManager &M)
      : M(M), Solver(Ctx), Tr(std::make_shared<Z3Translator>(Ctx)) {
    (void)this->M;
  }

  void push() override { Solver.push(); }
  void pop() override { Solver.pop(); }

  void add(Term T) override {
    assert(T.sort() == Sort::Bool && "asserting a non-formula");
    Solver.add(Tr->toZ3(T));
  }

  SatResult check() override {
    ++NumChecks;
    LastReason.clear();
    try {
      switch (Solver.check()) {
      case z3::sat:
        return SatResult::Sat;
      case z3::unsat:
        return SatResult::Unsat;
      case z3::unknown:
        LastReason = Solver.reason_unknown();
        return SatResult::Unknown;
      }
    } catch (const z3::exception &E) {
      LastReason = std::string("z3 exception: ") + E.msg();
      return SatResult::Unknown;
    }
    return SatResult::Unknown;
  }

  SatResult checkAssuming(const std::vector<Term> &A) override {
    ++NumChecks;
    LastReason.clear();
    LastAssumptions = A;
    LastCore.clear();
    try {
      z3::expr_vector V(Ctx);
      for (Term T : A)
        V.push_back(Tr->toZ3(T));
      z3::check_result R = Solver.check(V);
      if (R == z3::unsat) {
        // Map the core literals back to Terms by AST identity: toZ3 is
        // cached, so re-translating an assumption yields the exact ast Z3
        // reported in the core.
        z3::expr_vector Core = Solver.unsat_core();
        for (unsigned I = 0; I < Core.size(); ++I) {
          Z3_ast CA = static_cast<Z3_ast>(Core[static_cast<int>(I)]);
          for (Term T : A)
            if (static_cast<Z3_ast>(Tr->toZ3(T)) == CA) {
              LastCore.push_back(T);
              break;
            }
        }
        return SatResult::Unsat;
      }
      if (R == z3::sat)
        return SatResult::Sat;
      LastReason = Solver.reason_unknown();
      return SatResult::Unknown;
    } catch (const z3::exception &E) {
      LastReason = std::string("z3 exception: ") + E.msg();
      return SatResult::Unknown;
    }
  }

  std::vector<Term> unsatCore() const override { return LastCore; }

  std::string reasonUnknown() const override { return LastReason; }

  std::unique_ptr<SmtModel> model() override {
    try {
      return std::make_unique<Z3Model>(Solver.get_model(), Tr);
    } catch (const z3::exception &) {
      return nullptr;
    }
  }

  void setTimeoutMs(unsigned Ms) override {
    z3::params P(Ctx);
    // Z3's timeout param treats 0 as "0 ms", not "disabled"; the
    // interface contract (SmtSolver.h) says 0 disables, and MiniSolver
    // already honors that, so map 0 to Z3's no-timeout sentinel.
    P.set("timeout", Ms ? Ms : 4294967295u);
    Solver.set(P);
  }

private:
  logic::TermManager &M;
  z3::context Ctx;
  z3::solver Solver;
  std::shared_ptr<Z3Translator> Tr;
  std::string LastReason;
  std::vector<Term> LastCore;
};

} // namespace

std::unique_ptr<SmtSolver> sharpie::smt::makeZ3Solver(logic::TermManager &M) {
  return std::make_unique<Z3SolverImpl>(M);
}

Validity sharpie::smt::checkValid(SmtSolver &S, logic::TermManager &M,
                                  Term T) {
  S.push();
  S.add(M.mkNot(T));
  SatResult R = S.check();
  S.pop();
  switch (R) {
  case SatResult::Unsat:
    return Validity::Valid;
  case SatResult::Sat:
    return Validity::Invalid;
  case SatResult::Unknown:
    return Validity::Unknown;
  }
  return Validity::Unknown;
}
