//===- protocols/TreeGc.cpp - tree traverse and garbage collection -------------===//
//
// Part of sharpie. The remaining Figure 6 upper-table benchmarks: the tree
// traversal counting routine of [Farzan et al. 2014] and the tri-colour
// mark-and-sweep garbage collector of paper Fig. 8.
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"

using namespace sharpie;
using namespace sharpie::protocols;
using logic::Sort;
using logic::Term;
using logic::TermManager;
using sys::ParamSystem;
using sys::Transition;

// -- tree traverse [Farzan et al. 2014] ---------------------------------------------
//
// Worker threads consume pending subtrees of a binary tree: an internal
// node spawns two subtrees (nodes++, pending++ net), a leaf retires one
// (leaves++, pending--). In any full binary tree, leaves = nodes + 1; the
// traversal witnesses it when the work list drains. The paper proves this
// cardinality-free; the invariant is the linear relation
// leaves + pending = nodes + 1.

ProtocolBundle protocols::makeTreeTraverse(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "tree-traverse");
  ParamSystem &S = *B.Sys;
  Term Nodes = S.addGlobal("nodes");
  Term Leaves = S.addGlobal("leaves");
  Term Pending = S.addGlobal("pending");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  S.setInit(M.mkAnd({M.mkEq(Nodes, M.mkInt(0)), M.mkEq(Leaves, M.mkInt(0)),
                     M.mkEq(Pending, M.mkInt(1)),
                     M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))}));
  Transition &Internal = S.addTransition(
      "internal", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(1)),
                          M.mkGe(Pending, M.mkInt(1))));
  Internal.GlobalUpd[Nodes] = M.mkAdd(Nodes, M.mkInt(1));
  Internal.GlobalUpd[Pending] = M.mkAdd(Pending, M.mkInt(1));
  Transition &Leaf = S.addTransition(
      "leaf", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(1)),
                      M.mkGe(Pending, M.mkInt(1))));
  Leaf.GlobalUpd[Leaves] = M.mkAdd(Leaves, M.mkInt(1));
  Leaf.GlobalUpd[Pending] = M.mkSub(Pending, M.mkInt(1));
  S.setSafe(M.mkImplies(M.mkEq(Pending, M.mkInt(0)),
                        M.mkEq(Leaves, M.mkAdd(Nodes, M.mkInt(1)))));

  S.CustomInit = [&S, PC, Pending](int64_t N) {
    sys::ParamSystem::State St;
    St.DomainSize = N;
    for (Term G : S.globals())
      St.Scalars[G] = 0;
    St.Scalars[Pending] = 1;
    St.Arrays[PC] = std::vector<int64_t>(static_cast<size_t>(N), 1);
    return std::vector<sys::ParamSystem::State>{St};
  };
  B.Shape = {0, {}};
  B.Explicit.NumThreads = 2;
  B.Explicit.MaxStates = 3000;
  B.Property = "pending = 0 -> leaves = nodes + 1";
  B.PaperTime = "4.2s";
  B.PaperCards = "- (cardinality-free)";
  return B;
}

// -- garbage collection (paper Fig. 8) ----------------------------------------------------
//
// Tri-colour mark-and-sweep: mutators grey white nodes under a lock; a
// single marker thread (folded into globals) first greys white nodes and
// then blackens grey ones, also under the lock. The colour array is
// indexed by the parametric address space; WHITE=0, GRAY=1, BLACK=2. The
// auxiliary global mono stays 1 as long as no write ever lightened a
// node's colour -- monotonicity of the collector, which hinges on the
// mutual exclusion that the property also asserts. The marker's
// acquire/act/release is collapsed into one atomic step; this removes only
// marker-holds-lock interleavings, in which no mutator can be in its
// critical region (see DESIGN.md).

ProtocolBundle protocols::makeGarbageCollection(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "garbage-collection");
  ParamSystem &S = *B.Sys;
  Term Lock = S.addGlobal("lock");   // 0 free, 1 held by a mutator.
  Term Mono = S.addGlobal("mono");   // 1 while all writes darkened.
  Term Phase = S.addGlobal("phase"); // Marker: 1 greying, 2 blackening.
  Term PC = S.addLocal("pc");
  Term Color = S.addLocal("color");
  Term T = M.mkVar("ti", Sort::Tid);

  S.setInit(M.mkAnd({M.mkEq(Lock, M.mkInt(0)), M.mkEq(Mono, M.mkInt(1)),
                     M.mkEq(Phase, M.mkInt(1)),
                     M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))}));

  // Mutator: 1 idle; 2..4 critical region (acquire, write, release point).
  Transition &Acq = S.addTransition(
      "mut-acquire", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(1)),
                             M.mkEq(Lock, M.mkInt(0))));
  Acq.GlobalUpd[Lock] = M.mkInt(1);
  Acq.LocalUpd[PC] = M.mkInt(2);

  Transition &Write = S.addTransition("mut-write",
                                      M.mkEq(S.my(PC), M.mkInt(2)));
  Term Addr = S.addTidChoice(Write, "addr");
  Term Old = M.mkRead(Color, Addr);
  // WHITE -> GRAY, anything else unchanged; mono tracks darkening.
  Term NewColor = M.mkIte(M.mkEq(Old, M.mkInt(0)), M.mkInt(1), Old);
  Write.Writes.push_back({Color, Addr, NewColor});
  Write.GlobalUpd[Mono] =
      M.mkIte(M.mkLt(NewColor, Old), M.mkInt(0), Mono);
  Write.LocalUpd[PC] = M.mkInt(3);

  Transition &Settle = S.addTransition("mut-settle",
                                       M.mkEq(S.my(PC), M.mkInt(3)));
  Settle.LocalUpd[PC] = M.mkInt(4);
  Transition &Rel = S.addTransition("mut-release",
                                    M.mkEq(S.my(PC), M.mkInt(4)));
  Rel.GlobalUpd[Lock] = M.mkInt(0);
  Rel.LocalUpd[PC] = M.mkInt(1);

  // Marker, phase 1: grey some white node (atomic acquire/act/release,
  // enabled only while the lock is free).
  Transition &Grey = S.addTransition(
      "marker-grey", M.mkAnd(M.mkEq(Lock, M.mkInt(0)),
                             M.mkEq(Phase, M.mkInt(1))));
  Term GAddr = S.addTidChoice(Grey, "gaddr");
  Term GOld = M.mkRead(Color, GAddr);
  Term GNew = M.mkIte(M.mkEq(GOld, M.mkInt(0)), M.mkInt(1), GOld);
  Grey.Writes.push_back({Color, GAddr, GNew});
  Grey.GlobalUpd[Mono] = M.mkIte(M.mkLt(GNew, GOld), M.mkInt(0), Mono);

  // Marker finishes the greying sweep.
  Transition &Flip = S.addTransition("marker-flip",
                                     M.mkEq(Phase, M.mkInt(1)));
  Flip.GlobalUpd[Phase] = M.mkInt(2);

  // Marker, phase 2: blacken a grey node.
  Transition &Black = S.addTransition(
      "marker-blacken", M.mkAnd(M.mkEq(Lock, M.mkInt(0)),
                                M.mkEq(Phase, M.mkInt(2))));
  Term BAddr = S.addTidChoice(Black, "baddr");
  Term BOld = M.mkRead(Color, BAddr);
  Term BNew = M.mkIte(M.mkEq(BOld, M.mkInt(1)), M.mkInt(2), BOld);
  Black.Writes.push_back({Color, BAddr, BNew});
  Black.GlobalUpd[Mono] = M.mkIte(M.mkLt(BNew, BOld), M.mkInt(0), Mono);

  // Property (paper Fig. 6): mutator mutual exclusion and monotonicity.
  S.setSafe(M.mkAnd(
      M.mkLe(M.mkCard(T, M.mkAnd(M.mkGe(M.mkRead(PC, T), M.mkInt(2)),
                                 M.mkLe(M.mkRead(PC, T), M.mkInt(4)))),
             M.mkInt(1)),
      M.mkEq(Mono, M.mkInt(1))));

  S.CustomInit = [&S, PC, Mono, Phase](int64_t N) {
    sys::ParamSystem::State St;
    St.DomainSize = N;
    for (Term G : S.globals())
      St.Scalars[G] = 0;
    St.Scalars[Mono] = 1;
    St.Scalars[Phase] = 1;
    for (Term L : S.locals())
      St.Arrays[L] = std::vector<int64_t>(static_cast<size_t>(N), 0);
    St.Arrays[PC].assign(static_cast<size_t>(N), 1);
    return std::vector<sys::ParamSystem::State>{St};
  };
  B.Shape = {1, {}};
  B.Explicit.NumThreads = 3;
  B.Explicit.MaxStates = 40000;
  B.Property = "#{t | 2 <= pc(t) <= 4} <= 1 /\\ mono = 1";
  B.PaperCards = "#{t | 2 <= pc(t) <= 4}";
  B.PaperTime = "10.1s";
  return B;
}
