//===- protocols/Protocols.h - Benchmark protocol models --------*- C++ -*-===//
//
// Part of sharpie. Executable models of every benchmark in the paper's
// evaluation (Sec. 7, Figures 6, 7 and 9), each bundled with the shape
// template the paper marks for it, a suggested explicit-checking instance,
// and the paper-reported data used by the bench harness.
//
// One TermManager per bundle: protocols reuse plain variable names (pc, n,
// ...), so two bundles must never share a manager.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_PROTOCOLS_PROTOCOLS_H
#define SHARPIE_PROTOCOLS_PROTOCOLS_H

#include "synth/Synth.h"
#include "system/System.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace sharpie {
namespace protocols {

/// A benchmark: the system, its template, and paper-reported reference data.
struct ProtocolBundle {
  std::unique_ptr<sys::ParamSystem> Sys;
  synth::ShapeTemplate Shape;
  logic::Term QGuard;                  ///< Over synth::formalsFor(M, Shape).
  explct::ExplicitOptions Explicit;    ///< Suggested validation instance.
  bool ExpectSafe = true;              ///< Buggy variants set false.
  bool NeedsVenn = false;              ///< Paper Sec. 5.2 examples.
  std::string PaperTime;               ///< #Pi column of the paper's table.
  std::string ComparatorTime;          ///< Competitor column, if any.
  std::string PaperCards;              ///< "Inferred cardinalities" column.
  std::string Property;                ///< Printable property description.
};

using BundleFactory =
    std::function<ProtocolBundle(logic::TermManager &)>;

// -- Paper Sec. 3 -------------------------------------------------------------

/// The increment program of the informal overview: every thread bumps a
/// shared counter once; a thread past its increment witnesses a > 0.
ProtocolBundle makeIncrement(logic::TermManager &M);

// -- Figure 6, upper table ------------------------------------------------------

ProtocolBundle makeIntro(logic::TermManager &M);         // [Farzan et al.]
ProtocolBundle makeBluetooth(logic::TermManager &M);     // [Farzan et al.]
ProtocolBundle makeTreeTraverse(logic::TermManager &M);  // [Farzan et al.]
ProtocolBundle makeCache(logic::TermManager &M);         // [Yongjian]
ProtocolBundle makeGarbageCollection(logic::TermManager &M); // Fig. 8

// -- Figure 6, lower table ------------------------------------------------------

ProtocolBundle makeTicketLock(logic::TermManager &M);    // Fig. 1
ProtocolBundle makeFilterLock(logic::TermManager &M);    // Fig. 2
ProtocolBundle makeOneThird(logic::TermManager &M);      // Fig. 3

// -- Figure 7 (comparison with [Ganjei et al. 2015]) -------------------------------

ProtocolBundle makeMax(logic::TermManager &M, bool Barrier);
ProtocolBundle makeReaderWriter(logic::TermManager &M, bool Correct);
ProtocolBundle makeParentChild(logic::TermManager &M, bool Barrier);
ProtocolBundle makeSimpBar(logic::TermManager &M, bool Barrier);
ProtocolBundle makeDynBarrier(logic::TermManager &M, bool Barrier);
ProtocolBundle makeAsMany(logic::TermManager &M, bool Correct);

// -- Figure 9, upper table (comparison with [Abdulla et al. 2007]) ------------------

ProtocolBundle makeSimplifiedBakery(logic::TermManager &M);
ProtocolBundle makeLamportBakery(logic::TermManager &M);
ProtocolBundle makeBogusBakery(logic::TermManager &M);
ProtocolBundle makeTicketMutex(logic::TermManager &M);

// -- Figure 9, lower table (comparison with [Sanchez et al. 2012]) -------------------

ProtocolBundle makeBarrier(logic::TermManager &M);
ProtocolBundle makeCentralBarrier(logic::TermManager &M);
ProtocolBundle makeWorkStealing(logic::TermManager &M);
ProtocolBundle makeDiningPhilosophers(logic::TermManager &M);
ProtocolBundle makeRobot(logic::TermManager &M, int Rows, int Cols);

} // namespace protocols
} // namespace sharpie

#endif // SHARPIE_PROTOCOLS_PROTOCOLS_H
