//===- protocols/Bakery.cpp - Figure 9 upper-table benchmarks ------------------===//
//
// Part of sharpie. Cardinality-free mutual exclusion protocols compared
// against [Abdulla et al., CAV 2007] in the paper's Fig. 9 (upper table):
// Simplified Bakery, Lamport's Bakery, Bogus Bakery (a buggy variant), and
// Ticket Mutex in the universally-guarded formulation (a thread enters when
// its ticket is minimal). All use templates with two Tid quantifiers and no
// cardinalities.
//
// Abdulla et al.'s models use global (universally quantified) transition
// guards; our ParamSystem guards admit arbitrary quantified formulas, so
// the encodings below are direct. Ticket draws pick a fresh value strictly
// above every current ticket via a nondeterministic choice constrained by a
// universal guard.
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"

using namespace sharpie;
using namespace sharpie::protocols;
using logic::Sort;
using logic::Term;
using logic::TermManager;
using sys::ParamSystem;
using sys::Transition;

namespace {

sys::ParamSystem::State baseState(const ParamSystem &S, int64_t N, Term PC) {
  sys::ParamSystem::State St;
  St.DomainSize = N;
  for (Term G : S.globals())
    St.Scalars[G] = 0;
  for (Term L : S.locals())
    St.Arrays[L] = std::vector<int64_t>(static_cast<size_t>(N),
                                        L == PC ? 1 : 0);
  return St;
}

} // namespace

// -- Simplified Bakery -----------------------------------------------------------

ProtocolBundle protocols::makeSimplifiedBakery(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "simplified-bakery");
  ParamSystem &S = *B.Sys;
  Term PC = S.addLocal("pc");
  Term Num = S.addLocal("num");
  Term T = M.mkVar("ti", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);

  // 1 idle (num = 0), 2 competing, 3 critical section.
  S.setInit(M.mkForall({T}, M.mkAnd(M.mkEq(M.mkRead(PC, T), M.mkInt(1)),
                                    M.mkEq(M.mkRead(Num, T), M.mkInt(0)))));
  Transition &Take = S.addTransition("take", M.mkEq(S.my(PC), M.mkInt(1)));
  Term C = S.addChoice(Take, "num");
  Take.Guard = M.mkAnd(
      Take.Guard,
      M.mkForall({U}, M.mkLt(M.mkRead(Num, U), C)));
  Take.LocalUpd[Num] = C;
  Take.LocalUpd[PC] = M.mkInt(2);
  // Enter when every other thread is idle or holds a larger number.
  Transition &Enter = S.addTransition(
      "enter",
      M.mkAnd(M.mkEq(S.my(PC), M.mkInt(2)),
              M.mkForall({U}, M.mkImplies(
                                  M.mkNe(U, S.self()),
                                  M.mkOr(M.mkEq(M.mkRead(PC, U), M.mkInt(1)),
                                         M.mkLt(S.my(Num),
                                                M.mkRead(Num, U)))))));
  Enter.LocalUpd[PC] = M.mkInt(3);
  Transition &Leave = S.addTransition("leave", M.mkEq(S.my(PC), M.mkInt(3)));
  Leave.LocalUpd[PC] = M.mkInt(1);
  Leave.LocalUpd[Num] = M.mkInt(0);

  Term Q1 = M.mkVar("p1", Sort::Tid), Q2 = M.mkVar("p2", Sort::Tid);
  S.setSafe(M.mkForall(
      {Q1, Q2},
      M.mkImplies(M.mkNe(Q1, Q2),
                  M.mkNot(M.mkAnd(M.mkEq(M.mkRead(PC, Q1), M.mkInt(3)),
                                  M.mkEq(M.mkRead(PC, Q2), M.mkInt(3)))))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{baseState(S, N, PC)};
  };
  S.ChoiceLo = 1;
  S.ChoiceHi = 4;
  B.Shape = {0, {Sort::Tid, Sort::Tid}};
  B.Explicit.NumThreads = 3;
  B.Explicit.MaxStates = 4000;
  B.Property = "mutual exclusion of location 3";
  B.PaperTime = "0.4s";
  B.ComparatorTime = "0.8s (real) / 0.3s (int)";
  return B;
}

// -- Lamport's Bakery (with the choosing flag) -----------------------------------------

namespace {

ProtocolBundle makeBakeryVariant(TermManager &M, bool Bogus) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(
      M, Bogus ? "bogus-bakery" : "lamport-bakery");
  ParamSystem &S = *B.Sys;
  Term PC = S.addLocal("pc");
  Term Num = S.addLocal("num");
  Term Ch = S.addLocal("ch");
  Term Tmp = S.addLocal("tmp");
  Term Prio = S.addLocal("prio"); // Distinct ids for the tie-break.
  Term T = M.mkVar("ti", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);

  // Locations: 1 idle, 2 choosing (reads the maximum), 3 about to write
  // its number, 4 competing, 5 critical section. The number computation is
  // split into a read (2 -> 3) and a write (3 -> 4); two threads choosing
  // concurrently can therefore pick the same number -- Lamport breaks the
  // tie with thread ids (modeled as a distinct "prio" local, since the
  // two-sorted theory gives Tid no order). The bogus variant drops the
  // choosing-flag wait from the entry guard, the classic bakery bug: a
  // thread may pass a competitor whose number is computed but not yet
  // visible, and the tie-break then lets the competitor in as well.
  S.setInit(M.mkAnd(
      {M.mkForall({T}, M.mkAnd({M.mkEq(M.mkRead(PC, T), M.mkInt(1)),
                                M.mkEq(M.mkRead(Num, T), M.mkInt(0)),
                                M.mkEq(M.mkRead(Ch, T), M.mkInt(0)),
                                M.mkGe(M.mkRead(Prio, T), M.mkInt(0))})),
       M.mkForall({T, U},
                  M.mkImplies(M.mkNe(T, U),
                              M.mkNe(M.mkRead(Prio, T),
                                     M.mkRead(Prio, U))))}));
  Transition &Start = S.addTransition("start", M.mkEq(S.my(PC), M.mkInt(1)));
  Start.LocalUpd[Ch] = M.mkInt(1);
  Start.LocalUpd[PC] = M.mkInt(2);
  // Read the maximum of the *written* numbers; a concurrent chooser's
  // number is not yet visible.
  Transition &Read = S.addTransition("read", M.mkEq(S.my(PC), M.mkInt(2)));
  Term C = S.addChoice(Read, "num");
  Read.Guard = M.mkAnd(Read.Guard,
                       M.mkForall({U}, M.mkLt(M.mkRead(Num, U), C)));
  Read.LocalUpd[Tmp] = C;
  Read.LocalUpd[PC] = M.mkInt(3);
  Transition &Write = S.addTransition("write", M.mkEq(S.my(PC), M.mkInt(3)));
  Write.LocalUpd[Num] = S.my(Tmp);
  Write.LocalUpd[Ch] = M.mkInt(0);
  Write.LocalUpd[PC] = M.mkInt(4);
  // Enter when (correct version only:) nobody is mid-choice, and everyone
  // else is idle, has a larger number, or loses the tie on priority.
  Term Others = M.mkForall(
      {U},
      M.mkImplies(
          M.mkNe(U, S.self()),
          M.mkAnd(Bogus ? M.mkTrue() : M.mkEq(M.mkRead(Ch, U), M.mkInt(0)),
                  M.mkOr({M.mkEq(M.mkRead(Num, U), M.mkInt(0)),
                          M.mkLt(S.my(Num), M.mkRead(Num, U)),
                          M.mkAnd(M.mkEq(S.my(Num), M.mkRead(Num, U)),
                                  M.mkLt(S.my(Prio),
                                         M.mkRead(Prio, U)))}))));
  Transition &Enter = S.addTransition(
      "enter", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(4)), Others));
  Enter.LocalUpd[PC] = M.mkInt(5);
  Transition &Leave = S.addTransition("leave", M.mkEq(S.my(PC), M.mkInt(5)));
  Leave.LocalUpd[PC] = M.mkInt(1);
  Leave.LocalUpd[Num] = M.mkInt(0);

  Term Q1 = M.mkVar("p1", Sort::Tid), Q2 = M.mkVar("p2", Sort::Tid);
  S.setSafe(M.mkForall(
      {Q1, Q2},
      M.mkImplies(M.mkNe(Q1, Q2),
                  M.mkNot(M.mkAnd(M.mkEq(M.mkRead(PC, Q1), M.mkInt(5)),
                                  M.mkEq(M.mkRead(PC, Q2), M.mkInt(5)))))));

  S.CustomInit = [&S, PC, Prio](int64_t N) {
    sys::ParamSystem::State St = baseState(S, N, PC);
    std::vector<int64_t> P;
    for (int64_t I = 0; I < N; ++I)
      P.push_back(I);
    St.Arrays[Prio] = P;
    return std::vector<sys::ParamSystem::State>{St};
  };
  S.ChoiceLo = 1;
  S.ChoiceHi = 3;
  B.Shape = {0, {Sort::Tid, Sort::Tid}};
  B.Explicit.NumThreads = 3;
  B.Explicit.MaxStates = 60000;
  B.ExpectSafe = !Bogus;
  B.Property = "mutual exclusion of location 5";
  B.PaperTime = Bogus ? "0.6s" : "0.5s";
  B.ComparatorTime =
      Bogus ? "0.8s (real) / 11s (int)" : "2.1s (real) / 2s (int)";
  return B;
}

} // namespace

ProtocolBundle protocols::makeLamportBakery(TermManager &M) {
  return makeBakeryVariant(M, /*Bogus=*/false);
}

ProtocolBundle protocols::makeBogusBakery(TermManager &M) {
  return makeBakeryVariant(M, /*Bogus=*/true);
}

// -- Ticket Mutex (universally guarded formulation) ------------------------------------------

ProtocolBundle protocols::makeTicketMutex(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "ticket-mutex");
  ParamSystem &S = *B.Sys;
  Term PC = S.addLocal("pc");
  Term Mv = S.addLocal("m");
  Term T = M.mkVar("ti", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);

  // The [Abdulla et al. 2007] formulation: the universally quantified
  // guards express directly that a drawn ticket is fresh and that the
  // entering thread's ticket is minimal among competitors (paper Sec. 7.1,
  // footnote 2 discussion).
  S.setInit(M.mkForall({T}, M.mkAnd(M.mkEq(M.mkRead(PC, T), M.mkInt(1)),
                                    M.mkEq(M.mkRead(Mv, T), M.mkInt(0)))));
  Transition &Draw = S.addTransition("draw", M.mkEq(S.my(PC), M.mkInt(1)));
  Term C = S.addChoice(Draw, "tk");
  Draw.Guard = M.mkAnd(Draw.Guard,
                       M.mkForall({U}, M.mkLt(M.mkRead(Mv, U), C)));
  Draw.LocalUpd[Mv] = C;
  Draw.LocalUpd[PC] = M.mkInt(2);
  Transition &Enter = S.addTransition(
      "enter",
      M.mkAnd(M.mkEq(S.my(PC), M.mkInt(2)),
              M.mkForall({U}, M.mkImplies(
                                  M.mkNe(U, S.self()),
                                  M.mkOr(M.mkEq(M.mkRead(PC, U), M.mkInt(1)),
                                         M.mkLt(S.my(Mv),
                                                M.mkRead(Mv, U)))))));
  Enter.LocalUpd[PC] = M.mkInt(3);
  Transition &Leave = S.addTransition("leave", M.mkEq(S.my(PC), M.mkInt(3)));
  Leave.LocalUpd[PC] = M.mkInt(1);
  Leave.LocalUpd[Mv] = M.mkInt(0);

  Term Q1 = M.mkVar("p1", Sort::Tid), Q2 = M.mkVar("p2", Sort::Tid);
  S.setSafe(M.mkForall(
      {Q1, Q2},
      M.mkImplies(M.mkNe(Q1, Q2),
                  M.mkNot(M.mkAnd(M.mkEq(M.mkRead(PC, Q1), M.mkInt(3)),
                                  M.mkEq(M.mkRead(PC, Q2), M.mkInt(3)))))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{baseState(S, N, PC)};
  };
  S.ChoiceLo = 1;
  S.ChoiceHi = 4;
  B.Shape = {0, {Sort::Tid, Sort::Tid}};
  B.Explicit.NumThreads = 3;
  B.Explicit.MaxStates = 4000;
  B.Property = "mutual exclusion of location 3";
  B.PaperTime = "0.5s";
  B.ComparatorTime = "0.3s (real) / 1.6s (int)";
  return B;
}
