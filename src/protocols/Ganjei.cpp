//===- protocols/Ganjei.cpp - Figure 7 benchmarks (vs. Ganjei et al.) ----------===//
//
// Part of sharpie. The twelve barrier/lock benchmarks of the comparison
// with [Ganjei et al., VMCAI 2015] (paper Fig. 7), each in a correct and a
// buggy ("-nobar"/"-bug") variant run with the same template.
//
// The PACMAN tool's benchmark sources are not distributed with the paper;
// the models here are reconstructions that preserve each benchmark's name,
// property, synchronization idiom (counting barriers, flags, locks) and
// the correct/buggy split of the table (see DESIGN.md). Buggy variants are
// confirmed unsafe by the explicit checker.
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"

using namespace sharpie;
using namespace sharpie::protocols;
using logic::Sort;
using logic::Term;
using logic::TermManager;
using sys::ParamSystem;
using sys::Transition;

namespace {

sys::ParamSystem::State zeroState(const ParamSystem &S, int64_t N,
                                  Term PcArr, int64_t Pc0) {
  sys::ParamSystem::State St;
  St.DomainSize = N;
  for (Term G : S.globals())
    St.Scalars[G] = 0;
  for (Term L : S.locals())
    St.Arrays[L] = std::vector<int64_t>(static_cast<size_t>(N),
                                        L == PcArr ? Pc0 : 0);
  return St;
}

/// Barrier guard: nobody at or before location \p Loc.
Term noneAtOrBefore(TermManager &M, Term PC, int64_t Loc) {
  Term U = M.mkVar("u", Sort::Tid);
  return M.mkEq(M.mkCard(U, M.mkLe(M.mkRead(PC, U), M.mkInt(Loc))),
                M.mkInt(0));
}

} // namespace

// -- max: two counting phases separated by barriers ---------------------------------
//
// Phase 1 counts arrivals into prev, phase 2 into max. With both barriers,
// a thread reaching location 5 witnesses that every thread finished phase 2,
// so prev (bounded by the number of threads) cannot exceed max. Without the
// barriers a fast thread reaches 5 while max is still behind prev.

ProtocolBundle protocols::makeMax(TermManager &M, bool Barrier) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(
      M, Barrier ? "max" : "max-nobar");
  ParamSystem &S = *B.Sys;
  Term Prev = S.addGlobal("prev");
  Term Max = S.addGlobal("max");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  S.setInit(M.mkAnd({M.mkEq(Prev, M.mkInt(0)), M.mkEq(Max, M.mkInt(0)),
                     M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))}));
  Transition &P1 = S.addTransition("phase1", M.mkEq(S.my(PC), M.mkInt(1)));
  P1.GlobalUpd[Prev] = M.mkAdd(Prev, M.mkInt(1));
  P1.LocalUpd[PC] = M.mkInt(2);
  Transition &Bar1 = S.addTransition(
      "barrier1", Barrier ? M.mkAnd(M.mkEq(S.my(PC), M.mkInt(2)),
                                    noneAtOrBefore(M, PC, 1))
                          : M.mkEq(S.my(PC), M.mkInt(2)));
  Bar1.LocalUpd[PC] = M.mkInt(3);
  Transition &P2 = S.addTransition("phase2", M.mkEq(S.my(PC), M.mkInt(3)));
  P2.GlobalUpd[Max] = M.mkAdd(Max, M.mkInt(1));
  P2.LocalUpd[PC] = M.mkInt(4);
  Transition &Bar2 = S.addTransition(
      "barrier2", Barrier ? M.mkAnd(M.mkEq(S.my(PC), M.mkInt(4)),
                                    noneAtOrBefore(M, PC, 3))
                          : M.mkEq(S.my(PC), M.mkInt(4)));
  Bar2.LocalUpd[PC] = M.mkInt(5);
  S.setSafe(M.mkForall(
      {T}, M.mkImplies(M.mkEq(M.mkRead(PC, T), M.mkInt(5)),
                       M.mkLe(Prev, Max))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{zeroState(S, N, PC, 1)};
  };
  B.Shape = {3, {Sort::Tid}};
  B.Explicit.NumThreads = 3;
  B.ExpectSafe = Barrier;
  B.Property = "exists t: pc(t) = 5 -> prev <= max";
  B.PaperTime = Barrier ? "4.2s" : "7.2s";
  B.ComparatorTime = Barrier ? "192s" : "24s";
  B.PaperCards =
      Barrier ? "#{t|pc(t)<=2}, #{t|pc(t)<=3}, #{t|pc(t)>=5}" : "";
  return B;
}

// -- reader/writer: a cardinality-free lock ---------------------------------------------

ProtocolBundle protocols::makeReaderWriter(TermManager &M, bool Correct) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(
      M, Correct ? "reader/writer" : "reader/writer-bug");
  ParamSystem &S = *B.Sys;
  Term RC = S.addGlobal("readcount");
  Term Wr = S.addGlobal("writing"); // -1 idle, 1 writer active.
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  // Locations: 1 idle, 2 reading, 3 writing.
  S.setInit(M.mkAnd({M.mkEq(RC, M.mkInt(0)), M.mkEq(Wr, M.mkInt(-1)),
                     M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))}));
  Transition &RAcq = S.addTransition(
      "read-acquire",
      Correct ? M.mkAnd(M.mkEq(S.my(PC), M.mkInt(1)), M.mkEq(Wr, M.mkInt(-1)))
              : M.mkEq(S.my(PC), M.mkInt(1))); // Bug: ignores the writer.
  RAcq.GlobalUpd[RC] = M.mkAdd(RC, M.mkInt(1));
  RAcq.LocalUpd[PC] = M.mkInt(2);
  Transition &RRel = S.addTransition("read-release",
                                     M.mkEq(S.my(PC), M.mkInt(2)));
  RRel.GlobalUpd[RC] = M.mkSub(RC, M.mkInt(1));
  RRel.LocalUpd[PC] = M.mkInt(1);
  Transition &WAcq = S.addTransition(
      "write-acquire", M.mkAnd({M.mkEq(S.my(PC), M.mkInt(1)),
                                M.mkEq(RC, M.mkInt(0)),
                                M.mkEq(Wr, M.mkInt(-1))}));
  WAcq.GlobalUpd[Wr] = M.mkInt(1);
  WAcq.LocalUpd[PC] = M.mkInt(3);
  Transition &WRel = S.addTransition("write-release",
                                     M.mkEq(S.my(PC), M.mkInt(3)));
  WRel.GlobalUpd[Wr] = M.mkInt(-1);
  WRel.LocalUpd[PC] = M.mkInt(1);
  S.setSafe(M.mkImplies(M.mkGt(RC, M.mkInt(0)), M.mkEq(Wr, M.mkInt(-1))));

  S.CustomInit = [&S, PC, Wr](int64_t N) {
    sys::ParamSystem::State St = zeroState(S, N, PC, 1);
    St.Scalars[Wr] = -1;
    return std::vector<sys::ParamSystem::State>{St};
  };
  B.Shape = {0, {}};
  B.Explicit.NumThreads = 3;
  B.ExpectSafe = Correct;
  B.Property = "readcount > 0 -> writing = -1";
  B.PaperTime = Correct ? "0.4s" : "0.5s";
  B.ComparatorTime = Correct ? "38s" : "11s";
  return B;
}

// -- parent/child: allocation protected by a counting barrier ----------------------------

ProtocolBundle protocols::makeParentChild(TermManager &M, bool Barrier) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(
      M, Barrier ? "parent/child" : "parent/child-nobar");
  ParamSystem &S = *B.Sys;
  Term Alloc = S.addGlobal("alloc");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);

  // Children: 1 waiting, 2 entering, 3 using the resource, 4 done. The
  // parent role is folded into global actions: allocate before any child
  // enters, deallocate only once no child is inside (the "-nobar" bug
  // drops that wait).
  S.setInit(M.mkAnd(M.mkEq(Alloc, M.mkInt(0)),
                    M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))));
  Transition &All = S.addTransition("allocate", M.mkEq(Alloc, M.mkInt(0)));
  All.GlobalUpd[Alloc] = M.mkInt(1);
  Transition &Enter = S.addTransition(
      "child-enter", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(1)),
                             M.mkEq(Alloc, M.mkInt(1))));
  Enter.LocalUpd[PC] = M.mkInt(2);
  Transition &Use = S.addTransition("child-use",
                                    M.mkEq(S.my(PC), M.mkInt(2)));
  Use.LocalUpd[PC] = M.mkInt(3);
  Transition &Done = S.addTransition("child-done",
                                     M.mkEq(S.my(PC), M.mkInt(3)));
  Done.LocalUpd[PC] = M.mkInt(4);
  Term InsideEmpty =
      M.mkEq(M.mkCard(U, M.mkAnd(M.mkGe(M.mkRead(PC, U), M.mkInt(2)),
                                 M.mkLe(M.mkRead(PC, U), M.mkInt(3)))),
             M.mkInt(0));
  Transition &Dealloc = S.addTransition(
      "deallocate", Barrier ? M.mkAnd(M.mkEq(Alloc, M.mkInt(1)), InsideEmpty)
                            : M.mkEq(Alloc, M.mkInt(1)));
  Dealloc.GlobalUpd[Alloc] = M.mkInt(0);
  S.setSafe(M.mkForall(
      {T}, M.mkImplies(M.mkEq(M.mkRead(PC, T), M.mkInt(3)),
                       M.mkEq(Alloc, M.mkInt(1)))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{zeroState(S, N, PC, 1)};
  };
  B.Shape = {1, {}};
  B.Explicit.NumThreads = 3;
  B.ExpectSafe = Barrier;
  B.Property = "exists t: pc(t) = 3 -> alloc = 1";
  B.PaperTime = Barrier ? "1.2s" : "1.8s";
  B.ComparatorTime = Barrier ? "73s" : "3s";
  B.PaperCards = Barrier ? "#{t | 2 <= pc(t) <= 3}" : "";
  return B;
}

// -- simp-bar: a flag initialized by everyone, then set after a barrier -----------------------

ProtocolBundle protocols::makeSimpBar(TermManager &M, bool Barrier) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(
      M, Barrier ? "simp-bar" : "simp-nobar");
  ParamSystem &S = *B.Sys;
  Term Fl = S.addGlobal("fl");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  // 1: fl := 0 (per-thread init); 2: barrier; 3: fl := 1; 4 -> 5: done.
  // A thread at 5 must see fl = 1; without the barrier a laggard's reset
  // at 1 clobbers the flag.
  S.setInit(M.mkAnd(M.mkEq(Fl, M.mkInt(0)),
                    M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))));
  Transition &InitF = S.addTransition("reset", M.mkEq(S.my(PC), M.mkInt(1)));
  InitF.GlobalUpd[Fl] = M.mkInt(0);
  InitF.LocalUpd[PC] = M.mkInt(2);
  Transition &Bar = S.addTransition(
      "barrier", Barrier ? M.mkAnd(M.mkEq(S.my(PC), M.mkInt(2)),
                                   noneAtOrBefore(M, PC, 1))
                         : M.mkEq(S.my(PC), M.mkInt(2)));
  Bar.LocalUpd[PC] = M.mkInt(3);
  Transition &SetF = S.addTransition("set", M.mkEq(S.my(PC), M.mkInt(3)));
  SetF.GlobalUpd[Fl] = M.mkInt(1);
  SetF.LocalUpd[PC] = M.mkInt(4);
  Transition &Fin = S.addTransition("finish", M.mkEq(S.my(PC), M.mkInt(4)));
  Fin.LocalUpd[PC] = M.mkInt(5);
  S.setSafe(M.mkForall(
      {T}, M.mkImplies(M.mkEq(M.mkRead(PC, T), M.mkInt(5)),
                       M.mkEq(Fl, M.mkInt(1)))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{zeroState(S, N, PC, 1)};
  };
  B.Shape = {3, {}};
  B.Explicit.NumThreads = 3;
  B.ExpectSafe = Barrier;
  B.Property = "exists t: pc(t) = 5 -> fl = 1";
  B.PaperTime = Barrier ? "26.7s" : "4.2s";
  B.ComparatorTime = Barrier ? "93s" : "13s";
  B.PaperCards =
      Barrier ? "#{t|pc(t)<=3}, #{t|pc(t)<=2}, #{t|pc(t)=5}" : "";
  return B;
}

// -- dyn-barrier: dynamic arrival counting --------------------------------------------------

ProtocolBundle protocols::makeDynBarrier(TermManager &M, bool Barrier) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(
      M, Barrier ? "dyn-barrier" : "dyn-barrier-nobar");
  ParamSystem &S = *B.Sys;
  Term Rel = S.addGlobal("rel");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  // 1: work, 2: arrive, 3: wait for release, 4: past the barrier. The
  // release fires only when every thread has arrived (no thread at <= 2).
  S.setInit(M.mkAnd(M.mkEq(Rel, M.mkInt(0)),
                    M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))));
  Transition &Work = S.addTransition("work", M.mkEq(S.my(PC), M.mkInt(1)));
  Work.LocalUpd[PC] = M.mkInt(2);
  Transition &Arrive = S.addTransition("arrive",
                                       M.mkEq(S.my(PC), M.mkInt(2)));
  Arrive.LocalUpd[PC] = M.mkInt(3);
  Transition &Release = S.addTransition(
      "release", Barrier ? M.mkAnd(M.mkEq(Rel, M.mkInt(0)),
                                   noneAtOrBefore(M, PC, 2))
                         : M.mkEq(Rel, M.mkInt(0)));
  Release.GlobalUpd[Rel] = M.mkInt(1);
  Transition &Pass = S.addTransition(
      "pass", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(3)), M.mkEq(Rel, M.mkInt(1))));
  Pass.LocalUpd[PC] = M.mkInt(4);
  // Property (paper table): once released, no thread is still early.
  S.setSafe(M.mkImplies(
      M.mkEq(Rel, M.mkInt(1)),
      M.mkLe(M.mkCard(T, M.mkLe(M.mkRead(PC, T), M.mkInt(2))),
             M.mkInt(0))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{zeroState(S, N, PC, 1)};
  };
  B.Shape = {2, {}};
  B.Explicit.NumThreads = 3;
  B.ExpectSafe = Barrier;
  B.Property = "rel = 1 -> #{t | pc(t) <= 2} <= 0";
  B.PaperTime = Barrier ? "1.3s" : "1.4s";
  B.ComparatorTime = Barrier ? "8s" : "3s";
  B.PaperCards = Barrier ? "#{t|pc(t)<=2}, #{t|pc(t)>=4}" : "";
  return B;
}

// -- as-many: two counters advanced in lock step per thread -----------------------------------

ProtocolBundle protocols::makeAsMany(TermManager &M, bool Correct) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(
      M, Correct ? "as-many" : "as-many-bug");
  ParamSystem &S = *B.Sys;
  Term C1 = S.addGlobal("c1");
  Term C2 = S.addGlobal("c2");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  // 1: c1++; 2: c2++ (the bug bumps c1 again); 3: done. The counters agree
  // whenever no thread is between its two increments.
  S.setInit(M.mkAnd({M.mkEq(C1, M.mkInt(0)), M.mkEq(C2, M.mkInt(0)),
                     M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))}));
  Transition &S1 = S.addTransition("first", M.mkEq(S.my(PC), M.mkInt(1)));
  S1.GlobalUpd[C1] = M.mkAdd(C1, M.mkInt(1));
  S1.LocalUpd[PC] = M.mkInt(2);
  Transition &S2 = S.addTransition("second", M.mkEq(S.my(PC), M.mkInt(2)));
  S2.GlobalUpd[Correct ? C2 : C1] =
      M.mkAdd(Correct ? C2 : C1, M.mkInt(1));
  S2.LocalUpd[PC] = M.mkInt(3);
  S.setSafe(M.mkImplies(
      M.mkEq(M.mkCard(T, M.mkEq(M.mkRead(PC, T), M.mkInt(2))), M.mkInt(0)),
      M.mkEq(C1, C2)));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{zeroState(S, N, PC, 1)};
  };
  B.Shape = {1, {}};
  B.Explicit.NumThreads = 3;
  B.ExpectSafe = Correct;
  B.Property = "#{t | pc(t) = 2} = 0 -> c1 = c2";
  B.PaperTime = Correct ? "0.5s" : "0.7s";
  B.ComparatorTime = Correct ? "62s" : "2s";
  B.PaperCards = Correct ? "#{t | pc(t) >= 2}" : "";
  return B;
}
