//===- protocols/Sanchez.cpp - Figure 9 lower-table benchmarks -----------------===//
//
// Part of sharpie. Benchmarks of the comparison with [Sanchez et al., SAS
// 2012] (paper Fig. 9, lower table): two barrier variants, a work stealing
// loop, dining philosophers, and the robot swarm on an R x C grid. The
// originals' sources are not distributed; these are reconstructions that
// preserve the benchmark names, the synchronization idiom, and the number
// of quantifiers the paper's templates mark (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"

using namespace sharpie;
using namespace sharpie::protocols;
using logic::Sort;
using logic::Term;
using logic::TermManager;
using sys::ParamSystem;
using sys::Transition;

namespace {

sys::ParamSystem::State plainState(const ParamSystem &S, int64_t N, Term PC,
                                   int64_t Pc0) {
  sys::ParamSystem::State St;
  St.DomainSize = N;
  for (Term G : S.globals())
    St.Scalars[G] = 0;
  for (Term L : S.locals())
    St.Arrays[L] = std::vector<int64_t>(static_cast<size_t>(N),
                                        L == PC ? Pc0 : 0);
  return St;
}

} // namespace

// -- barrier: one-shot counting barrier ------------------------------------------------
//
// Threads arrive (1 -> 2) bumping cnt; the gate opens once cnt reaches n.
// Property: nobody is past the gate while someone has not arrived.

ProtocolBundle protocols::makeBarrier(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "barrier");
  ParamSystem &S = *B.Sys;
  Term N = S.addGlobal("n");
  Term Cnt = S.addGlobal("cnt");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);
  S.setSizeVar(N);

  S.setInit(M.mkAnd(M.mkEq(Cnt, M.mkInt(0)),
                    M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))));
  Transition &Arrive = S.addTransition("arrive",
                                       M.mkEq(S.my(PC), M.mkInt(1)));
  Arrive.GlobalUpd[Cnt] = M.mkAdd(Cnt, M.mkInt(1));
  Arrive.LocalUpd[PC] = M.mkInt(2);
  Transition &Pass = S.addTransition(
      "pass", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(2)), M.mkGe(Cnt, N)));
  Pass.LocalUpd[PC] = M.mkInt(3);
  Term Q1 = M.mkVar("p1", Sort::Tid), Q2 = M.mkVar("p2", Sort::Tid);
  S.setSafe(M.mkForall(
      {Q1, Q2}, M.mkNot(M.mkAnd(M.mkEq(M.mkRead(PC, Q1), M.mkInt(3)),
                                M.mkEq(M.mkRead(PC, Q2), M.mkInt(1))))));

  S.CustomInit = [&S, PC](int64_t Nv) {
    return std::vector<sys::ParamSystem::State>{plainState(S, Nv, PC, 1)};
  };
  // The proof counts arrivals: cnt = #{t | pc(t) >= 2} (the paper's Fig. 9
  // runs are cardinality-free; our engine proves this benchmark with one
  // counting set, see EXPERIMENTS.md).
  B.Shape = {2, {Sort::Tid}};
  B.Explicit.NumThreads = 3;
  B.Property = "no thread past the barrier while another has not arrived";
  B.PaperTime = "0.4s";
  B.ComparatorTime = "I 0.1s / P 0.1s / O 0.1s";
  return B;
}

// -- central barrier: arrivals released by a central coordinator --------------------------

ProtocolBundle protocols::makeCentralBarrier(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "central-barrier");
  ParamSystem &S = *B.Sys;
  Term N = S.addGlobal("n");
  Term Cnt = S.addGlobal("cnt");
  Term Go = S.addGlobal("go");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);
  S.setSizeVar(N);

  // 1 working, 2 arrived/waiting, 3 released. The central coordinator
  // (folded into a global action) raises go once cnt = n.
  S.setInit(M.mkAnd({M.mkEq(Cnt, M.mkInt(0)), M.mkEq(Go, M.mkInt(0)),
                     M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))}));
  Transition &Arrive = S.addTransition("arrive",
                                       M.mkEq(S.my(PC), M.mkInt(1)));
  Arrive.GlobalUpd[Cnt] = M.mkAdd(Cnt, M.mkInt(1));
  Arrive.LocalUpd[PC] = M.mkInt(2);
  Transition &Release = S.addTransition(
      "release", M.mkAnd(M.mkEq(Go, M.mkInt(0)), M.mkGe(Cnt, N)));
  Release.GlobalUpd[Go] = M.mkInt(1);
  Transition &Pass = S.addTransition(
      "pass", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(2)), M.mkEq(Go, M.mkInt(1))));
  Pass.LocalUpd[PC] = M.mkInt(3);
  Term Q1 = M.mkVar("p1", Sort::Tid), Q2 = M.mkVar("p2", Sort::Tid);
  S.setSafe(M.mkForall(
      {Q1, Q2}, M.mkNot(M.mkAnd(M.mkEq(M.mkRead(PC, Q1), M.mkInt(3)),
                                M.mkEq(M.mkRead(PC, Q2), M.mkInt(1))))));

  S.CustomInit = [&S, PC](int64_t Nv) {
    return std::vector<sys::ParamSystem::State>{plainState(S, Nv, PC, 1)};
  };
  B.Shape = {2, {Sort::Tid}};
  B.Explicit.NumThreads = 3;
  B.Property = "no released thread while another has not arrived";
  B.PaperTime = "0.4s";
  B.ComparatorTime = "I 0.1s / P 1.1s / O 6.2s";
  return B;
}

// -- work stealing: unique item assignment via an atomic fetch-and-increment -----------------

ProtocolBundle protocols::makeWorkStealing(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "work-stealing");
  ParamSystem &S = *B.Sys;
  Term Next = S.addGlobal("next");
  Term PC = S.addLocal("pc");
  Term Item = S.addLocal("item");
  Term T = M.mkVar("ti", Sort::Tid);

  // 1 idle, 2 processing item(t). Grabbing an item is an atomic
  // fetch-and-increment of next.
  S.setInit(M.mkAnd(M.mkEq(Next, M.mkInt(0)),
                    M.mkForall({T}, M.mkAnd(M.mkEq(M.mkRead(PC, T),
                                                   M.mkInt(1)),
                                            M.mkEq(M.mkRead(Item, T),
                                                   M.mkInt(-1))))));
  Transition &Grab = S.addTransition("grab", M.mkEq(S.my(PC), M.mkInt(1)));
  Grab.LocalUpd[Item] = Next;
  Grab.GlobalUpd[Next] = M.mkAdd(Next, M.mkInt(1));
  Grab.LocalUpd[PC] = M.mkInt(2);
  Transition &Done = S.addTransition("done", M.mkEq(S.my(PC), M.mkInt(2)));
  Done.LocalUpd[PC] = M.mkInt(1);
  Done.LocalUpd[Item] = M.mkInt(-1);
  Term Q1 = M.mkVar("p1", Sort::Tid), Q2 = M.mkVar("p2", Sort::Tid);
  S.setSafe(M.mkForall(
      {Q1, Q2},
      M.mkImplies(M.mkAnd({M.mkNe(Q1, Q2),
                           M.mkEq(M.mkRead(PC, Q1), M.mkInt(2)),
                           M.mkEq(M.mkRead(PC, Q2), M.mkInt(2))}),
                  M.mkNe(M.mkRead(Item, Q1), M.mkRead(Item, Q2)))));

  S.CustomInit = [&S, PC, Item](int64_t Nv) {
    sys::ParamSystem::State St = plainState(S, Nv, PC, 1);
    St.Arrays[Item].assign(static_cast<size_t>(Nv), -1);
    return std::vector<sys::ParamSystem::State>{St};
  };
  B.Shape = {0, {Sort::Tid, Sort::Tid}};
  B.Explicit.NumThreads = 3;
  B.Explicit.MaxStates = 4000;
  B.Property = "no two active threads process the same item";
  B.PaperTime = "0.5s";
  B.ComparatorTime = "I 0.1s / P 0.1s / O 6.2s";
  return B;
}

// -- dining philosophers: waiter with a stick pool --------------------------------------------

ProtocolBundle protocols::makeDiningPhilosophers(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "dining-philosophers");
  ParamSystem &S = *B.Sys;
  Term N = S.addGlobal("n");
  Term Sticks = S.addGlobal("sticks");
  Term Eating = S.addGlobal("eating");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);
  S.setSizeVar(N);

  // A philosopher picks up two sticks from the pool of n to eat; the
  // waiter-style pool abstracts the ring topology (thread identifiers have
  // no successor arithmetic in the two-sorted theory, Sec. 5).
  S.setInit(M.mkAnd({M.mkEq(Sticks, N), M.mkEq(Eating, M.mkInt(0)),
                     M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))}));
  Transition &Sit = S.addTransition(
      "sit", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(1)),
                     M.mkGe(Sticks, M.mkInt(2))));
  Sit.GlobalUpd[Sticks] = M.mkSub(Sticks, M.mkInt(2));
  Sit.GlobalUpd[Eating] = M.mkAdd(Eating, M.mkInt(1));
  Sit.LocalUpd[PC] = M.mkInt(2);
  Transition &Up = S.addTransition("up", M.mkEq(S.my(PC), M.mkInt(2)));
  Up.GlobalUpd[Sticks] = M.mkAdd(Sticks, M.mkInt(2));
  Up.GlobalUpd[Eating] = M.mkSub(Eating, M.mkInt(1));
  Up.LocalUpd[PC] = M.mkInt(1);
  // At most floor(n/2) philosophers eat at once.
  S.setSafe(M.mkLe(M.mkMul(M.mkInt(2), Eating), N));

  S.CustomInit = [&S, PC, Sticks, N](int64_t Nv) {
    sys::ParamSystem::State St = plainState(S, Nv, PC, 1);
    St.Scalars[Sticks] = Nv;
    return std::vector<sys::ParamSystem::State>{St};
  };
  B.Shape = {0, {}};
  B.Explicit.NumThreads = 4;
  B.Property = "2 * eating <= n";
  B.PaperTime = "8.2s";
  B.ComparatorTime = "I 0.1s / P 6.3s / O 20s";
  return B;
}

// -- robot swarm on an R x C grid -----------------------------------------------------------------

ProtocolBundle protocols::makeRobot(TermManager &M, int Rows, int Cols) {
  ProtocolBundle B;
  std::string Name =
      "robot " + std::to_string(Rows) + "x" + std::to_string(Cols);
  B.Sys = std::make_unique<ParamSystem>(M, Name);
  ParamSystem &S = *B.Sys;
  Term X = S.addLocal("x");
  Term Y = S.addLocal("y");
  Term T = M.mkVar("ti", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);
  Term Q1 = M.mkVar("p1", Sort::Tid), Q2 = M.mkVar("p2", Sort::Tid);

  Term Distinct = M.mkForall(
      {Q1, Q2},
      M.mkImplies(M.mkNe(Q1, Q2),
                  M.mkOr(M.mkNe(M.mkRead(X, Q1), M.mkRead(X, Q2)),
                         M.mkNe(M.mkRead(Y, Q1), M.mkRead(Y, Q2)))));
  Term InGrid = M.mkForall(
      {T}, M.mkAnd({M.mkGe(M.mkRead(X, T), M.mkInt(0)),
                    M.mkLt(M.mkRead(X, T), M.mkInt(Rows)),
                    M.mkGe(M.mkRead(Y, T), M.mkInt(0)),
                    M.mkLt(M.mkRead(Y, T), M.mkInt(Cols))}));
  S.setInit(M.mkAnd(Distinct, InGrid));

  // Four moves; a robot steps onto a cell only if it is free.
  struct Move {
    const char *Name;
    int DX, DY;
  };
  for (const Move &Mv : {Move{"right", 1, 0}, Move{"left", -1, 0},
                         Move{"up", 0, 1}, Move{"down", 0, -1}}) {
    Term NX = M.mkAdd(S.my(X), M.mkInt(Mv.DX));
    Term NY = M.mkAdd(S.my(Y), M.mkInt(Mv.DY));
    Term Free = M.mkForall(
        {U}, M.mkImplies(M.mkNe(U, S.self()),
                         M.mkOr(M.mkNe(M.mkRead(X, U), NX),
                                M.mkNe(M.mkRead(Y, U), NY))));
    Term Bounds = M.mkAnd({M.mkGe(NX, M.mkInt(0)),
                           M.mkLt(NX, M.mkInt(Rows)),
                           M.mkGe(NY, M.mkInt(0)),
                           M.mkLt(NY, M.mkInt(Cols))});
    Transition &Tr = S.addTransition(Mv.Name, M.mkAnd(Bounds, Free));
    Tr.LocalUpd[X] = NX;
    Tr.LocalUpd[Y] = NY;
  }
  S.setSafe(Distinct);

  S.CustomInit = [&S, X, Y, Rows, Cols](int64_t Nv) {
    // Place robots on the first N cells in row-major order.
    std::vector<sys::ParamSystem::State> Out;
    sys::ParamSystem::State St;
    St.DomainSize = Nv;
    std::vector<int64_t> Xs, Ys;
    for (int64_t I = 0; I < Nv; ++I) {
      Xs.push_back((I / Cols) % Rows);
      Ys.push_back(I % Cols);
    }
    St.Arrays[X] = Xs;
    St.Arrays[Y] = Ys;
    Out.push_back(std::move(St));
    return Out;
  };
  B.Shape = {0, {Sort::Tid, Sort::Tid}};
  B.Explicit.NumThreads = std::min<int64_t>(3, Rows * Cols);
  B.Explicit.MaxStates = 30000;
  B.Property = "no two robots occupy the same cell";
  if (Rows == 2 && Cols == 2)
    B.PaperTime = "2.8s";
  else if (Rows == 2 && Cols == 3)
    B.PaperTime = "16.1s";
  else if (Rows == 3 && Cols == 3)
    B.PaperTime = "34.0s";
  else if (Rows == 4 && Cols == 4)
    B.PaperTime = "TO";
  return B;
}
