//===- protocols/CaseStudies.cpp - Figure 6 lower-table case studies ----------===//
//
// Part of sharpie. The three flagship case studies of paper Sec. 2:
// the ticket lock (Fig. 1), the filter lock (Fig. 2), and the one-third
// rule consensus protocol in the heard-of model (Fig. 3). All three need
// the Venn decomposition (paper Sec. 5.2).
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"

#include <algorithm>
#include <map>

using namespace sharpie;
using namespace sharpie::protocols;
using logic::Sort;
using logic::Term;
using logic::TermManager;
using sys::ParamSystem;
using sys::Transition;

// -- Ticket lock (paper Fig. 1) -----------------------------------------------------

ProtocolBundle protocols::makeTicketLock(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "ticket");
  ParamSystem &S = *B.Sys;
  Term Tick = S.addGlobal("tick"); // the ticket dispenser t of Fig. 1
  Term Serv = S.addGlobal("serv"); // the service counter s of Fig. 1
  Term PC = S.addLocal("pc");
  Term Mv = S.addLocal("m");
  Term T = M.mkVar("ti", Sort::Tid);

  // Locations: 1 before lock(), 2 spinning on m > s, 3 critical section.
  S.setInit(M.mkAnd(
      {M.mkEq(Tick, M.mkInt(0)), M.mkEq(Serv, M.mkInt(0)),
       M.mkForall({T}, M.mkAnd(M.mkEq(M.mkRead(PC, T), M.mkInt(1)),
                               M.mkEq(M.mkRead(Mv, T), M.mkInt(-1))))}));

  Transition &Draw = S.addTransition("draw", M.mkEq(S.my(PC), M.mkInt(1)));
  Draw.LocalUpd[Mv] = Tick;
  Draw.LocalUpd[PC] = M.mkInt(2);
  Draw.GlobalUpd[Tick] = M.mkAdd(Tick, M.mkInt(1));

  Transition &Enter = S.addTransition(
      "enter", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(2)),
                       M.mkLe(S.my(Mv), Serv)));
  Enter.LocalUpd[PC] = M.mkInt(3);

  Transition &Leave = S.addTransition("leave", M.mkEq(S.my(PC), M.mkInt(3)));
  Leave.LocalUpd[PC] = M.mkInt(1);
  Leave.GlobalUpd[Serv] = M.mkAdd(Serv, M.mkInt(1));

  S.setSafe(M.mkLe(M.mkCard(T, M.mkEq(M.mkRead(PC, T), M.mkInt(3))),
                   M.mkInt(1)));

  S.CustomInit = [&S, PC, Mv](int64_t N) {
    sys::ParamSystem::State St;
    St.DomainSize = N;
    for (Term G : S.globals())
      St.Scalars[G] = 0;
    St.Arrays[PC] = std::vector<int64_t>(static_cast<size_t>(N), 1);
    St.Arrays[Mv] = std::vector<int64_t>(static_cast<size_t>(N), -1);
    return std::vector<sys::ParamSystem::State>{St};
  };

  B.Shape = {3, {Sort::Int}};
  synth::Formals F = synth::formalsFor(M, B.Shape);
  B.QGuard = M.mkGe(F.Q[0], M.mkInt(0)); // Tickets are non-negative.
  B.Explicit.NumThreads = 3;
  B.Explicit.MaxStates = 6000; // Counters grow without bound; prefix only.
  B.NeedsVenn = true;
  B.Property = "#{t | pc(t) = 3} <= 1";
  B.PaperCards =
      "#{t | m(t) <= s /\\ pc(t) = 2}, #{t | pc(t) = 3}, #{t | m(t) = q}";
  B.PaperTime = "20.9s";
  return B;
}

// -- Filter lock (paper Fig. 2) ---------------------------------------------------------

ProtocolBundle protocols::makeFilterLock(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "filter");
  ParamSystem &S = *B.Sys;
  Term N = S.addGlobal("n");
  Term Lv = S.addLocal("lv"); // Current level of each thread.
  Term T = M.mkVar("ti", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);
  S.setSizeVar(N);

  S.setInit(M.mkAnd(M.mkGe(N, M.mkInt(2)),
                    M.mkForall({T}, M.mkEq(M.mkRead(Lv, T), M.mkInt(0)))));

  // Fig. 2 line 5: a thread at level i < n-1 may advance to i+1 when either
  // nobody is above i, or at least two threads sit at i. (The thread's
  // level variable lv doubles as its loop counter i.)
  Term I = S.my(Lv);
  Term NoneAbove =
      M.mkEq(M.mkCard(U, M.mkGt(M.mkRead(Lv, U), I)), M.mkInt(0));
  Term TwoHere =
      M.mkGe(M.mkCard(U, M.mkEq(M.mkRead(Lv, U), I)), M.mkInt(2));
  Transition &Adv = S.addTransition(
      "advance", M.mkAnd(M.mkLt(I, M.mkSub(N, M.mkInt(1))),
                         M.mkOr(NoneAbove, TwoHere)));
  Adv.LocalUpd[Lv] = M.mkAdd(I, M.mkInt(1));

  S.setSafe(M.mkLe(
      M.mkCard(T, M.mkEq(M.mkRead(Lv, T), M.mkSub(N, M.mkInt(1)))),
      M.mkInt(1)));

  S.CustomInit = [&S, Lv, N](int64_t Nv) {
    sys::ParamSystem::State St;
    St.DomainSize = Nv;
    St.Scalars[N] = Nv;
    St.Arrays[Lv] = std::vector<int64_t>(static_cast<size_t>(Nv), 0);
    return std::vector<sys::ParamSystem::State>{St};
  };

  B.Shape = {1, {Sort::Int}};
  synth::Formals F = synth::formalsFor(M, B.Shape);
  B.QGuard = M.mkAnd(M.mkGe(F.Q[0], M.mkInt(0)),
                     M.mkLe(F.Q[0], M.mkSub(N, M.mkInt(1))));
  B.Explicit.NumThreads = 4;
  B.NeedsVenn = true;
  B.Property = "#{t | lv(t) = n-1} <= 1";
  B.PaperCards = "#{t | lv(t) >= q}";
  B.PaperTime = "27.5s";
  return B;
}

// -- One-third rule (paper Fig. 3) ----------------------------------------------------------

ProtocolBundle protocols::makeOneThird(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "one-third");
  ParamSystem &S = *B.Sys;
  Term N = S.addGlobal("n");
  Term X = S.addLocal("x");     // Current candidate value.
  Term Res = S.addLocal("res"); // Decision (-1 = undecided).
  Term T = M.mkVar("ti", Sort::Tid);
  S.setSizeVar(N);

  S.setInit(M.mkAnd(
      M.mkGe(N, M.mkInt(1)),
      M.mkForall({T}, M.mkAnd(M.mkGe(M.mkRead(X, T), M.mkInt(0)),
                              M.mkEq(M.mkRead(Res, T), M.mkInt(-1))))));

  // Heard-of round, soundly abstracted. Symbolically the round is
  // interleaved per process (the standard asynchronous reading of
  // communication-closed rounds): a process that heard > 2n/3 of the
  // others adopts a value w that (i) some process proposed and (ii) is
  // forced whenever a value holds a two-thirds majority (with > 2n/3
  // messages received, the majority value is the unique most-often
  // received one); it decides iff > 2n/3 processes sent w. The explicit
  // checker (CustomStepper below) exhaustively executes the *synchronous*
  // round semantics, and the synthesized invariant is re-checked against
  // those states, validating the abstraction (see DESIGN.md).
  Term V = M.mkVar("v_val", Sort::Int);
  auto CountX = [&](Term Val) {
    Term U = M.mkVar("u", Sort::Tid);
    return M.mkCard(U, M.mkEq(M.mkRead(X, U), Val));
  };
  auto TwoThirds = [&](Term K) {
    return M.mkGt(M.mkMul(M.mkInt(3), K), M.mkMul(M.mkInt(2), N));
  };

  Transition &Upd = S.addTransition("update", M.mkTrue());
  Term W = S.addChoice(Upd, "w");
  Upd.Guard = M.mkAnd(
      M.mkGe(CountX(W), M.mkInt(1)),
      M.mkForall({V}, M.mkImplies(TwoThirds(CountX(V)), M.mkEq(W, V))));
  Upd.LocalUpd[X] = W;

  Transition &Dec = S.addTransition("decide", M.mkTrue());
  Term WD = S.addChoice(Dec, "wd");
  Dec.Guard = M.mkAnd(
      {TwoThirds(CountX(WD)),
       M.mkForall({V}, M.mkImplies(TwoThirds(CountX(V)), M.mkEq(WD, V)))});
  Dec.LocalUpd[X] = WD;
  Dec.LocalUpd[Res] = WD;

  // Agreement: two decided processes agree.
  Term Q1 = M.mkVar("p1", Sort::Tid), Q2 = M.mkVar("p2", Sort::Tid);
  S.setSafe(M.mkForall(
      {Q1, Q2},
      M.mkImplies(M.mkAnd(M.mkGe(M.mkRead(Res, Q1), M.mkInt(0)),
                          M.mkGe(M.mkRead(Res, Q2), M.mkInt(0))),
                  M.mkEq(M.mkRead(Res, Q1), M.mkRead(Res, Q2)))));

  S.CustomInit = [&S, X, Res, N](int64_t Nv) {
    std::vector<sys::ParamSystem::State> Out;
    // Enumerate initial proposals over {0, 1}.
    for (int64_t Bits = 0; Bits < (1 << Nv); ++Bits) {
      sys::ParamSystem::State St;
      St.DomainSize = Nv;
      St.Scalars[N] = Nv;
      std::vector<int64_t> Xs, Rs;
      for (int64_t I = 0; I < Nv; ++I) {
        Xs.push_back((Bits >> I) & 1);
        Rs.push_back(-1);
      }
      St.Arrays[X] = Xs;
      St.Arrays[Res] = Rs;
      Out.push_back(std::move(St));
    }
    return Out;
  };

  S.CustomStepper = [&S, X, Res, N](const sys::ParamSystem::State &St) {
    int64_t Nv = St.DomainSize;
    const std::vector<int64_t> &Xs = St.Arrays.at(X);
    const std::vector<int64_t> &Rs = St.Arrays.at(Res);
    std::map<int64_t, int64_t> Count;
    for (int64_t V2 : Xs)
      ++Count[V2];
    // The value forced on updaters, if any (unique when it exists).
    std::optional<int64_t> Forced;
    for (auto &[Val, C] : Count)
      if (3 * C > 2 * Nv)
        Forced = Val;
    // Per-process options: skip, or adopt w (forced or any proposed value)
    // with or without deciding (deciding requires the 2/3 majority of w).
    struct Opt {
      int64_t Xv, Rv;
    };
    std::vector<std::vector<Opt>> PerProc(Nv);
    for (int64_t Pi = 0; Pi < Nv; ++Pi) {
      PerProc[Pi].push_back({Xs[Pi], Rs[Pi]}); // skip
      std::vector<int64_t> Ws;
      if (Forced)
        Ws.push_back(*Forced);
      else
        for (auto &[Val, C] : Count)
          Ws.push_back(Val);
      for (int64_t W : Ws) {
        PerProc[Pi].push_back({W, Rs[Pi]});
        if (3 * Count[W] > 2 * Nv)
          PerProc[Pi].push_back({W, W});
      }
    }
    std::vector<sys::ParamSystem::State> Out;
    std::vector<size_t> Pick(Nv, 0);
    for (;;) {
      sys::ParamSystem::State Nx = St;
      std::vector<int64_t> &NX = Nx.Arrays[X];
      std::vector<int64_t> &NR = Nx.Arrays[Res];
      for (int64_t Pi = 0; Pi < Nv; ++Pi) {
        NX[Pi] = PerProc[Pi][Pick[Pi]].Xv;
        NR[Pi] = PerProc[Pi][Pick[Pi]].Rv;
      }
      Out.push_back(std::move(Nx));
      int64_t I = 0;
      while (I < Nv && ++Pick[I] == PerProc[I].size()) {
        Pick[I] = 0;
        ++I;
      }
      if (I == Nv)
        break;
    }
    return Out;
  };

  B.Shape = {1, {Sort::Tid}};
  B.Explicit.NumThreads = 3;
  B.Explicit.MaxStates = 20000;
  B.NeedsVenn = true;
  B.Property = "agreement (+ validity, irrevocability via the invariant)";
  B.PaperCards = "#{t | x(t) = x(q)}";
  B.PaperTime = "0.8s";
  return B;
}
