//===- protocols/Basic.cpp - Sec. 3 + Figure 6 upper-table protocols ----------===//
//
// Part of sharpie. Models: the increment program (paper Sec. 3), and the
// Figure 6 upper-table benchmarks intro, bluetooth, cache. (tree traverse,
// garbage collection live in their own files; the lower table is in
// CaseStudies.cpp.)
//
//===----------------------------------------------------------------------===//

#include "protocols/Protocols.h"

using namespace sharpie;
using namespace sharpie::protocols;
using logic::Sort;
using logic::Term;
using logic::TermManager;
using sys::ParamSystem;
using sys::Transition;

namespace {

/// Builds the canonical initial state: every thread at location \p Pc0,
/// every other local at \p LocalDefault, all globals zero unless overridden.
sys::ParamSystem::State
uniformState(const ParamSystem &S, int64_t N, int64_t Pc0, Term PcArr,
             int64_t LocalDefault = 0,
             const std::map<Term, int64_t> &GlobalOverride = {}) {
  sys::ParamSystem::State St;
  St.DomainSize = N;
  for (Term G : S.globals()) {
    auto It = GlobalOverride.find(G);
    St.Scalars[G] = It != GlobalOverride.end() ? It->second : 0;
  }
  for (Term L : S.locals())
    St.Arrays[L] = std::vector<int64_t>(
        static_cast<size_t>(N), L == PcArr ? Pc0 : LocalDefault);
  return St;
}

} // namespace

// -- Increment (paper Sec. 3) ------------------------------------------------------

ProtocolBundle protocols::makeIncrement(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "increment");
  ParamSystem &S = *B.Sys;
  Term A = S.addGlobal("a");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  S.setInit(M.mkAnd(M.mkEq(A, M.mkInt(0)),
                    M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))));
  Transition &Inc = S.addTransition(
      "inc", M.mkEq(S.my(PC), M.mkInt(1)));
  Inc.GlobalUpd[A] = M.mkAdd(A, M.mkInt(1));
  Inc.LocalUpd[PC] = M.mkInt(2);
  S.setSafe(M.mkForall(
      {T}, M.mkImplies(M.mkGe(M.mkRead(PC, T), M.mkInt(2)),
                       M.mkGt(A, M.mkInt(0)))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{uniformState(S, N, 1, PC)};
  };
  B.Shape = {1, {}};
  B.Explicit.NumThreads = 3;
  B.Property = "(exists t: pc(t) >= 2) -> a > 0";
  B.PaperCards = "#{t | pc(t) >= 2}";
  return B;
}

// -- intro [Farzan et al. 2014] ------------------------------------------------------

ProtocolBundle protocols::makeIntro(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "intro");
  ParamSystem &S = *B.Sys;
  Term A = S.addGlobal("a");
  Term Bv = S.addGlobal("b");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  // Each thread: 1: a++; 2: b++; 3: done. A thread sitting at 2 witnesses
  // strictly more a-increments than b-increments.
  S.setInit(M.mkAnd({M.mkEq(A, M.mkInt(0)), M.mkEq(Bv, M.mkInt(0)),
                     M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))}));
  Transition &T1 = S.addTransition("incA", M.mkEq(S.my(PC), M.mkInt(1)));
  T1.GlobalUpd[A] = M.mkAdd(A, M.mkInt(1));
  T1.LocalUpd[PC] = M.mkInt(2);
  Transition &T2 = S.addTransition("incB", M.mkEq(S.my(PC), M.mkInt(2)));
  T2.GlobalUpd[Bv] = M.mkAdd(Bv, M.mkInt(1));
  T2.LocalUpd[PC] = M.mkInt(3);
  S.setSafe(M.mkForall(
      {T}, M.mkImplies(M.mkEq(M.mkRead(PC, T), M.mkInt(2)),
                       M.mkLt(Bv, A))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{uniformState(S, N, 1, PC)};
  };
  B.Shape = {1, {}};
  B.Explicit.NumThreads = 3;
  B.Property = "(exists t: pc(t) = 2) -> b < a";
  B.PaperCards = "#{t | pc(t) = 2}";
  B.PaperTime = "1.2s";
  return B;
}

// -- bluetooth [Farzan et al. 2014] -----------------------------------------------------

ProtocolBundle protocols::makeBluetooth(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "bluetooth");
  ParamSystem &S = *B.Sys;
  // st: 0 = driver running, 1 = stopped. The single stopping thread is
  // folded into the globals; workers are the parameterized processes.
  Term St = S.addGlobal("st");
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);

  S.setInit(M.mkAnd(M.mkEq(St, M.mkInt(0)),
                    M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1)))));
  // Worker enters the driver only while it is running.
  Transition &Enter = S.addTransition(
      "enter", M.mkAnd(M.mkEq(S.my(PC), M.mkInt(1)),
                       M.mkEq(St, M.mkInt(0))));
  Enter.LocalUpd[PC] = M.mkInt(2);
  // Worker leaves the driver.
  Transition &Leave = S.addTransition("leave", M.mkEq(S.my(PC), M.mkInt(2)));
  Leave.LocalUpd[PC] = M.mkInt(3);
  // The stopper completes the stop only when no worker is active.
  Term U = M.mkVar("u", Sort::Tid);
  Transition &Stop = S.addTransition(
      "stop", M.mkAnd(M.mkEq(St, M.mkInt(0)),
                      M.mkEq(M.mkCard(U, M.mkEq(M.mkRead(PC, U), M.mkInt(2))),
                             M.mkInt(0))));
  Stop.GlobalUpd[St] = M.mkInt(1);
  S.setSafe(M.mkForall(
      {T}, M.mkImplies(M.mkEq(M.mkRead(PC, T), M.mkInt(2)),
                       M.mkEq(St, M.mkInt(0)))));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{uniformState(S, N, 1, PC)};
  };
  B.Shape = {1, {}};
  B.Explicit.NumThreads = 3;
  B.Property = "(exists t: pc(t) = 2) -> st = 0";
  B.PaperCards = "#{t | pc(t) = 2}";
  B.PaperTime = "1.6s";
  return B;
}

// -- cache [Yongjian] -------------------------------------------------------------------

ProtocolBundle protocols::makeCache(TermManager &M) {
  ProtocolBundle B;
  B.Sys = std::make_unique<ParamSystem>(M, "cache");
  ParamSystem &S = *B.Sys;
  // Locations: 1 invalid, 2 shared (requested), 3 exclusive. Exclusive
  // access is granted atomically when no other cache holds the line
  // exclusively; mutual exclusion of location 3 is the coherence property.
  // (The cited tech report is unavailable; this is a faithful-in-spirit
  // reconstruction, see DESIGN.md.)
  Term PC = S.addLocal("pc");
  Term T = M.mkVar("ti", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);

  S.setInit(M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1))));
  Transition &Req = S.addTransition("request", M.mkEq(S.my(PC), M.mkInt(1)));
  Req.LocalUpd[PC] = M.mkInt(2);
  Transition &Grant = S.addTransition(
      "grant",
      M.mkAnd(M.mkEq(S.my(PC), M.mkInt(2)),
              M.mkEq(M.mkCard(U, M.mkGe(M.mkRead(PC, U), M.mkInt(3))),
                     M.mkInt(0))));
  Grant.LocalUpd[PC] = M.mkInt(3);
  Transition &Drop = S.addTransition("invalidate",
                                     M.mkEq(S.my(PC), M.mkInt(3)));
  Drop.LocalUpd[PC] = M.mkInt(1);
  S.setSafe(M.mkLe(M.mkCard(T, M.mkEq(M.mkRead(PC, T), M.mkInt(3))),
                   M.mkInt(1)));

  S.CustomInit = [&S, PC](int64_t N) {
    return std::vector<sys::ParamSystem::State>{uniformState(S, N, 1, PC)};
  };
  B.Shape = {1, {}};
  B.Explicit.NumThreads = 3;
  B.Property = "#{t | pc(t) = 3} <= 1";
  B.PaperCards = "#{t | pc(t) >= 3}";
  B.PaperTime = "0.7s";
  return B;
}
