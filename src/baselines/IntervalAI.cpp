//===- baselines/IntervalAI.cpp - Interval abstract interpretation --------------===//
//
// Part of sharpie. See IntervalAI.h.
//
//===----------------------------------------------------------------------===//

#include "baselines/IntervalAI.h"

#include "logic/TermOps.h"

#include <chrono>
#include <map>

using namespace sharpie;
using namespace sharpie::baselines;
using logic::Kind;
using logic::Sort;
using logic::Term;
using sys::ParamSystem;
using sys::Transition;

namespace {

constexpr int64_t NegInf = INT64_MIN / 4;
constexpr int64_t PosInf = INT64_MAX / 4;

/// A (possibly unbounded) integer interval. Empty iff Lo > Hi.
struct Itv {
  int64_t Lo = PosInf, Hi = NegInf; ///< Default: bottom.

  static Itv exact(int64_t V) { return {V, V}; }
  static Itv range(int64_t L, int64_t H) { return {L, H}; }
  static Itv top() { return {NegInf, PosInf}; }

  bool empty() const { return Lo > Hi; }
  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }

  Itv join(const Itv &O) const {
    return {std::min(Lo, O.Lo), std::max(Hi, O.Hi)};
  }
  Itv widen(const Itv &O) const {
    Itv R = join(O);
    if (O.Lo < Lo)
      R.Lo = NegInf;
    if (O.Hi > Hi)
      R.Hi = PosInf;
    return R;
  }
  Itv operator+(const Itv &O) const {
    if (empty() || O.empty())
      return Itv();
    return {Lo <= NegInf || O.Lo <= NegInf ? NegInf : Lo + O.Lo,
            Hi >= PosInf || O.Hi >= PosInf ? PosInf : Hi + O.Hi};
  }
  Itv operator-(const Itv &O) const {
    if (empty() || O.empty())
      return Itv();
    return {Lo <= NegInf || O.Hi >= PosInf ? NegInf : Lo - O.Hi,
            Hi >= PosInf || O.Lo <= NegInf ? PosInf : Hi - O.Lo};
  }
  Itv scaled(int64_t K) const {
    if (empty())
      return Itv();
    auto S = [K](int64_t V) {
      if (V <= NegInf)
        return K >= 0 ? NegInf : PosInf;
      if (V >= PosInf)
        return K >= 0 ? PosInf : NegInf;
      return V * K;
    };
    int64_t A = S(Lo), B = S(Hi);
    return {std::min(A, B), std::max(A, B)};
  }

  bool operator==(const Itv &O) const { return Lo == O.Lo && Hi == O.Hi; }
};

enum class Tri { False, True, Maybe };

Tri triNot(Tri B) {
  if (B == Tri::Maybe)
    return Tri::Maybe;
  return B == Tri::True ? Tri::False : Tri::True;
}

/// Interval comparison A ? B.
Tri cmp(const Itv &A, const Itv &B, Kind K) {
  if (A.empty() || B.empty())
    return Tri::True; // Vacuous under an empty environment.
  switch (K) {
  case Kind::Le:
    if (A.Hi <= B.Lo)
      return Tri::True;
    if (A.Lo > B.Hi)
      return Tri::False;
    return Tri::Maybe;
  case Kind::Lt:
    if (A.Hi < B.Lo)
      return Tri::True;
    if (A.Lo >= B.Hi)
      return Tri::False;
    return Tri::Maybe;
  default: // Eq
    if (A.Lo == A.Hi && B.Lo == B.Hi && A.Lo == B.Lo)
      return Tri::True;
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Tri::False;
    return Tri::Maybe;
  }
}

class Interpreter {
public:
  Interpreter(const ParamSystem &Sys, const IntervalAIOptions &Opts)
      : Sys(Sys), M(Sys.manager()), Opts(Opts) {}

  IntervalAIResult run();

private:
  struct AbsState {
    std::vector<Itv> ClassCount; ///< Per class (threads in that class).
    std::vector<Itv> Globals;

    bool operator==(const AbsState &O) const {
      return ClassCount == O.ClassCount && Globals == O.Globals;
    }
  };

  size_t internClass(const std::vector<int64_t> &Vals) {
    auto It = ClassIndex.find(Vals);
    if (It != ClassIndex.end())
      return It->second;
    size_t Id = Classes.size();
    ClassIndex.emplace(Vals, Id);
    Classes.push_back(Vals);
    return Id;
  }

  struct Env {
    const AbsState *S;
    std::map<Term, Itv> Bound; ///< Reads at the mover / choices.
  };

  Itv evalInt(Term T, const Env &E) {
    const logic::Node *N = T.node();
    switch (N->kind()) {
    case Kind::Var: {
      auto It = E.Bound.find(T);
      if (It != E.Bound.end())
        return It->second;
      for (size_t I = 0; I < Sys.globals().size(); ++I)
        if (Sys.globals()[I] == T)
          return E.S->Globals[I];
      return Itv::top();
    }
    case Kind::IntConst:
      return Itv::exact(N->value());
    case Kind::Add: {
      Itv R = Itv::exact(0);
      for (Term K : N->kids())
        R = R + evalInt(K, E);
      return R;
    }
    case Kind::Sub:
      return evalInt(N->kid(0), E) - evalInt(N->kid(1), E);
    case Kind::Neg:
      return evalInt(N->kid(0), E).scaled(-1);
    case Kind::Mul: {
      Term A = N->kid(0), B = N->kid(1);
      if (A.kind() == Kind::IntConst)
        return evalInt(B, E).scaled(A->value());
      if (B.kind() == Kind::IntConst)
        return evalInt(A, E).scaled(B->value());
      return Itv::top();
    }
    case Kind::Ite: {
      Tri C = evalBool(N->kid(0), E);
      if (C == Tri::True)
        return evalInt(N->kid(1), E);
      if (C == Tri::False)
        return evalInt(N->kid(2), E);
      return evalInt(N->kid(1), E).join(evalInt(N->kid(2), E));
    }
    case Kind::Read: {
      auto It = E.Bound.find(T);
      if (It != E.Bound.end())
        return It->second;
      return Itv::top();
    }
    case Kind::Card: {
      Term BV = T->binders()[0];
      Itv Sum = Itv::exact(0);
      for (size_t C = 0; C < Classes.size(); ++C) {
        const Itv &Cnt = E.S->ClassCount[C];
        if (Cnt.empty() || Cnt.Hi <= 0)
          continue;
        Env Inner = *&E;
        for (size_t L = 0; L < Sys.locals().size(); ++L)
          Inner.Bound[M.mkRead(Sys.locals()[L], BV)] =
              Itv::exact(Classes[C][L]);
        Tri B = evalBool(T->body(), Inner);
        if (B == Tri::False)
          continue;
        Itv Contribution = Cnt;
        if (Contribution.Lo < 0)
          Contribution.Lo = 0;
        if (B == Tri::Maybe)
          Contribution.Lo = 0; // May contribute nothing.
        Sum = Sum + Contribution;
      }
      return Sum;
    }
    default:
      return Itv::top();
    }
  }

  Tri evalBool(Term T, const Env &E) {
    const logic::Node *N = T.node();
    switch (N->kind()) {
    case Kind::BoolConst:
      return N->value() ? Tri::True : Tri::False;
    case Kind::Eq:
    case Kind::Le:
    case Kind::Lt:
      if (N->kid(0).sort() == Sort::Array)
        return Tri::Maybe;
      return cmp(evalInt(N->kid(0), E), evalInt(N->kid(1), E), N->kind());
    case Kind::Not:
      return triNot(evalBool(N->kid(0), E));
    case Kind::And: {
      Tri R = Tri::True;
      for (Term K : N->kids()) {
        Tri B = evalBool(K, E);
        if (B == Tri::False)
          return Tri::False;
        if (B == Tri::Maybe)
          R = Tri::Maybe;
      }
      return R;
    }
    case Kind::Or: {
      Tri R = Tri::False;
      for (Term K : N->kids()) {
        Tri B = evalBool(K, E);
        if (B == Tri::True)
          return Tri::True;
        if (B == Tri::Maybe)
          R = Tri::Maybe;
      }
      return R;
    }
    case Kind::Implies: {
      Tri A = evalBool(N->kid(0), E);
      if (A == Tri::False)
        return Tri::True;
      Tri B = evalBool(N->kid(1), E);
      if (A == Tri::True)
        return B;
      return B == Tri::True ? Tri::True : Tri::Maybe;
    }
    case Kind::Forall:
    case Kind::Exists: {
      if (N->binders().size() != 1 || N->binders()[0].sort() != Sort::Tid)
        return Tri::Maybe;
      bool IsForall = N->kind() == Kind::Forall;
      Term BV = N->binders()[0];
      Tri Acc = IsForall ? Tri::True : Tri::False;
      for (size_t C = 0; C < Classes.size(); ++C) {
        const Itv &Cnt = E.S->ClassCount[C];
        if (Cnt.empty() || Cnt.Hi <= 0)
          continue;
        Env Inner = E;
        for (size_t L = 0; L < Sys.locals().size(); ++L)
          Inner.Bound[M.mkRead(Sys.locals()[L], BV)] =
              Itv::exact(Classes[C][L]);
        Tri B = evalBool(N->body(), Inner);
        // A class with Lo = 0 may be empty; definite answers require
        // definite inhabitation.
        bool DefinitelyInhabited = Cnt.Lo >= 1;
        if (IsForall) {
          if (B == Tri::False && DefinitelyInhabited)
            return Tri::False;
          if (B != Tri::True)
            Acc = Tri::Maybe;
        } else {
          if (B == Tri::True && DefinitelyInhabited)
            return Tri::True;
          if (B != Tri::False)
            Acc = Tri::Maybe;
        }
      }
      return Acc;
    }
    default:
      return Tri::Maybe;
    }
  }

  const ParamSystem &Sys;
  logic::TermManager &M;
  IntervalAIOptions Opts;
  std::map<std::vector<int64_t>, size_t> ClassIndex;
  std::vector<std::vector<int64_t>> Classes;
};

IntervalAIResult Interpreter::run() {
  auto Start = std::chrono::steady_clock::now();
  IntervalAIResult Res;
  auto Finish = [&](IntervalVerdict V, std::string Note) {
    Res.Verdict = V;
    Res.Note = std::move(Note);
    Res.NumClasses = static_cast<unsigned>(Classes.size());
    Res.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    return Res;
  };

  if (Sys.mode() != sys::Composition::Async || !Sys.CustomInit)
    return Finish(IntervalVerdict::Unsupported,
                  "needs an async system with CustomInit");
  for (const Transition &T : Sys.transitions())
    if (!T.Writes.empty() || !T.TidChoices.empty())
      return Finish(IntervalVerdict::Unsupported,
                    "non-mover array writes unsupported");

  // Initial abstract state from the N=2 instance, counts widened to
  // [0, inf) for the initial class (any number of threads).
  AbsState S;
  {
    std::vector<sys::ParamSystem::State> Inits = Sys.CustomInit(2);
    if (Inits.empty())
      return Finish(IntervalVerdict::Unsupported, "no initial state");
    for (const sys::ParamSystem::State &I : Inits) {
      std::vector<int64_t> Class0;
      for (Term L : Sys.locals()) {
        auto It = I.Arrays.find(L);
        Class0.push_back(It != I.Arrays.end() && !It->second.empty()
                             ? It->second[0]
                             : 0);
      }
      size_t C0 = internClass(Class0);
      S.ClassCount.resize(Classes.size(), Itv::exact(0));
      S.ClassCount[C0] = Itv::range(0, PosInf);
      S.Globals.resize(Sys.globals().size(), Itv());
      for (size_t G = 0; G < Sys.globals().size(); ++G) {
        auto It = I.Scalars.find(Sys.globals()[G]);
        S.Globals[G] =
            S.Globals[G].join(Itv::exact(It != I.Scalars.end() ? It->second
                                                               : 0));
      }
    }
    // The size variable can be any count.
    if (Sys.sizeVar())
      for (size_t G = 0; G < Sys.globals().size(); ++G)
        if (Sys.globals()[G] == *Sys.sizeVar())
          S.Globals[G] = Itv::range(0, PosInf);
  }

  for (unsigned Iter = 0; Iter < Opts.MaxIterations; ++Iter) {
    ++Res.NumIterations;
    AbsState Next = S;
    Next.ClassCount.resize(Classes.size(), Itv::exact(0));

    bool GrewClasses = false;
    for (const Transition &T : Sys.transitions()) {
      for (size_t C = 0; C < Classes.size(); ++C) {
        const Itv &Cnt = S.ClassCount[C];
        if (Cnt.empty() || Cnt.Hi <= 0)
          continue;
        // Choices range over the configured interval.
        Env E{&S, {}};
        for (size_t L = 0; L < Sys.locals().size(); ++L)
          E.Bound[M.mkRead(Sys.locals()[L], Sys.self())] =
              Itv::exact(Classes[C][L]);
        for (Term Ch : T.Choices)
          E.Bound[Ch] = Itv::range(Sys.ChoiceLo, Sys.ChoiceHi);
        if (evalBool(T.Guard, E) == Tri::False)
          continue;
        // Local updates must resolve to exact values to pick the target
        // class; interval-valued targets fan out over the bounded range.
        std::vector<std::vector<int64_t>> Targets{Classes[C]};
        bool Ok = true;
        for (size_t L = 0; L < Sys.locals().size() && Ok; ++L) {
          auto It = T.LocalUpd.find(Sys.locals()[L]);
          if (It == T.LocalUpd.end())
            continue;
          Itv V = evalInt(It->second, E);
          if (V.Lo < Opts.ValueLo || V.Hi > Opts.ValueHi) {
            Ok = false;
            break;
          }
          std::vector<std::vector<int64_t>> Fan;
          for (const std::vector<int64_t> &Tg : Targets)
            for (int64_t X = V.Lo; X <= V.Hi; ++X) {
              std::vector<int64_t> T2 = Tg;
              T2[L] = X;
              Fan.push_back(std::move(T2));
            }
          Targets = std::move(Fan);
        }
        if (!Ok)
          return Finish(IntervalVerdict::Unknown,
                        "local value escaped the finite range");
        for (const std::vector<int64_t> &Tg : Targets) {
          size_t NC = internClass(Tg);
          if (NC >= Next.ClassCount.size()) {
            Next.ClassCount.resize(Classes.size(), Itv::exact(0));
            GrewClasses = true;
          }
          // Source possibly decremented, target possibly incremented:
          // counts become ranges.
          Itv &Tgt = Next.ClassCount[NC];
          Itv Inc = Tgt + Itv::range(0, 1);
          Tgt = Tgt.join(Inc);
          Itv &Src = Next.ClassCount[C];
          Itv Dec = Src + Itv::range(-1, 0);
          if (Dec.Lo < 0)
            Dec.Lo = 0;
          Src = Src.join(Dec);
        }
        // Global updates join in.
        for (size_t G = 0; G < Sys.globals().size(); ++G) {
          auto It = T.GlobalUpd.find(Sys.globals()[G]);
          if (It == T.GlobalUpd.end())
            continue;
          Next.Globals[G] = Next.Globals[G].join(evalInt(It->second, E));
        }
      }
    }

    AbsState Joined = Next;
    if (Iter >= Opts.WidenAfter) {
      for (size_t C = 0; C < Joined.ClassCount.size(); ++C)
        Joined.ClassCount[C] = S.ClassCount[C].widen(Next.ClassCount[C]);
      for (size_t G = 0; G < Joined.Globals.size(); ++G)
        Joined.Globals[G] = S.Globals[G].widen(Next.Globals[G]);
    }
    if (!GrewClasses && Joined == S)
      break;
    S = Joined;
  }

  // Verdict at the fixpoint.
  Env E{&S, {}};
  Tri Safe = evalBool(Sys.safe(), E);
  return Finish(Safe == Tri::True ? IntervalVerdict::Safe
                                  : IntervalVerdict::Unknown,
                Safe == Tri::True ? "interval fixpoint proves the property"
                                  : "interval fixpoint too coarse");
}

} // namespace

IntervalAIResult
sharpie::baselines::checkByIntervalAI(const ParamSystem &Sys,
                                      const IntervalAIOptions &Opts) {
  return Interpreter(Sys, Opts).run();
}
