//===- baselines/CounterAbs.cpp - Counter-abstraction baseline -----------------===//
//
// Part of sharpie. See CounterAbs.h.
//
//===----------------------------------------------------------------------===//

#include "baselines/CounterAbs.h"

#include "logic/TermOps.h"

#include <chrono>
#include <deque>
#include <map>

using namespace sharpie;
using namespace sharpie::baselines;
using logic::Kind;
using logic::Sort;
using logic::Term;
using sys::ParamSystem;
using sys::Transition;

namespace {

/// Three-valued booleans for may-semantics.
enum class TriBool { False, True, Maybe };

TriBool triNot(TriBool B) {
  if (B == TriBool::Maybe)
    return TriBool::Maybe;
  return B == TriBool::True ? TriBool::False : TriBool::True;
}

/// A possibly right-open interval of counts.
struct Range {
  int64_t Lo = 0;
  int64_t Hi = 0;      ///< Meaningful only when !Open.
  bool Open = false;   ///< True: [Lo, infinity).

  static Range exact(int64_t V) { return {V, V, false}; }
};

/// One abstract configuration: a {0,1,2,omega} counter per discovered
/// local-valuation class, plus concrete (bounded) global values.
struct AbstractState {
  std::vector<int8_t> Counters; ///< Indexed by class id; 3 = omega.
  std::vector<int64_t> Globals;

  bool operator<(const AbstractState &O) const {
    if (Counters != O.Counters)
      return Counters < O.Counters;
    return Globals < O.Globals;
  }
};

constexpr int8_t OmegaCtr = 3;
constexpr int64_t BigSentinel = INT64_MAX / 2; ///< Widened global value.

/// The checker. Classes (tuples of local values) are interned on the fly.
class Checker {
public:
  Checker(const ParamSystem &Sys, const CounterAbsOptions &Opts)
      : Sys(Sys), M(Sys.manager()), Opts(Opts) {}

  CounterAbsResult run();

private:
  size_t internClass(const std::vector<int64_t> &Vals) {
    auto It = ClassIndex.find(Vals);
    if (It != ClassIndex.end())
      return It->second;
    size_t Id = Classes.size();
    ClassIndex.emplace(Vals, Id);
    Classes.push_back(Vals);
    return Id;
  }

  // -- Abstract evaluation -------------------------------------------------
  //
  // Scalars evaluate concretely (globals are concrete, the mover's locals
  // come from its class); cardinalities evaluate to count Ranges; formulas
  // evaluate three-valued.

  struct Env {
    const AbstractState *S;
    /// Mover binding: local array -> value (from the mover's class), plus
    /// choice values. Tid-sorted variables cannot be evaluated here.
    std::map<Term, int64_t> Scalars;
  };

  std::optional<int64_t> evalInt(Term T, const Env &E) {
    const logic::Node *N = T.node();
    switch (N->kind()) {
    case Kind::Var: {
      auto It = E.Scalars.find(T);
      if (It != E.Scalars.end())
        return It->second;
      for (size_t I = 0; I < Sys.globals().size(); ++I)
        if (Sys.globals()[I] == T) {
          if (E.S->Globals[I] == BigSentinel)
            return std::nullopt; // Widened: value unknown.
          return E.S->Globals[I];
        }
      return std::nullopt;
    }
    case Kind::IntConst:
      return N->value();
    case Kind::Add: {
      int64_t Sum = 0;
      for (Term K : N->kids()) {
        auto V = evalInt(K, E);
        if (!V)
          return std::nullopt;
        Sum += *V;
      }
      return Sum;
    }
    case Kind::Sub: {
      auto A = evalInt(N->kid(0), E), B = evalInt(N->kid(1), E);
      if (!A || !B)
        return std::nullopt;
      return *A - *B;
    }
    case Kind::Neg: {
      auto A = evalInt(N->kid(0), E);
      return A ? std::optional<int64_t>(-*A) : std::nullopt;
    }
    case Kind::Mul: {
      auto A = evalInt(N->kid(0), E), B = evalInt(N->kid(1), E);
      if (!A || !B)
        return std::nullopt;
      return *A * *B;
    }
    case Kind::Ite: {
      TriBool C = evalBool(N->kid(0), E);
      if (C == TriBool::True)
        return evalInt(N->kid(1), E);
      if (C == TriBool::False)
        return evalInt(N->kid(2), E);
      return std::nullopt;
    }
    case Kind::Read: {
      // Reads are concrete only when pre-bound (mover's or a quantified
      // thread's class): keyed by the whole read term.
      auto It = E.Scalars.find(T);
      if (It != E.Scalars.end())
        return It->second;
      return std::nullopt;
    }
    default:
      return std::nullopt;
    }
  }

  std::optional<Range> evalCard(Term T, const Env &E) {
    assert(T.kind() == Kind::Card && "evalCard expects a Card term");
    Term BV = T->binders()[0];
    Range R;
    for (size_t C = 0; C < Classes.size(); ++C) {
      int8_t Cnt = C < E.S->Counters.size() ? E.S->Counters[C] : 0;
      if (Cnt == 0)
        continue;
      // Evaluate the body with the bound thread drawn from class C.
      Env Inner = E;
      for (size_t L = 0; L < Sys.locals().size(); ++L)
        Inner.Scalars[M.mkRead(Sys.locals()[L], BV)] = Classes[C][L];
      TriBool B = evalBool(T->body(), Inner);
      if (B == TriBool::False)
        continue;
      if (B == TriBool::Maybe)
        return std::nullopt;
      if (Cnt == OmegaCtr)
        R.Open = true;
      R.Lo += Cnt == OmegaCtr ? 3 : Cnt;
      R.Hi += Cnt == OmegaCtr ? 3 : Cnt;
    }
    return R;
  }

  std::optional<int64_t> evalScalarOrRead(Term T, const Env &E) {
    return evalInt(T, E);
  }

  TriBool cmpRange(const Range &R, int64_t C, Kind K, bool CardLeft) {
    // Compare #set (range R) against constant C.
    auto Test = [&](int64_t V) {
      if (K == Kind::Eq)
        return V == C;
      if (K == Kind::Le)
        return CardLeft ? V <= C : C <= V;
      return CardLeft ? V < C : C < V;
    };
    bool CanTrue = false, CanFalse = false;
    if (R.Open) {
      // Values R.Lo, R.Lo+1, ... : test a prefix and the tail behaviour.
      for (int64_t V = R.Lo; V <= R.Lo + 4; ++V)
        (Test(V) ? CanTrue : CanFalse) = true;
      // Monotone beyond: for <=/</= against a constant the answer is
      // eventually constant; the prefix above covers the flip.
      CanFalse = CanFalse || !Test(R.Lo + 5);
      CanTrue = CanTrue || Test(R.Lo + 5);
    } else {
      for (int64_t V = R.Lo; V <= R.Hi; ++V)
        (Test(V) ? CanTrue : CanFalse) = true;
    }
    if (CanTrue && CanFalse)
      return TriBool::Maybe;
    return CanTrue ? TriBool::True : TriBool::False;
  }

  TriBool evalBool(Term T, const Env &E) {
    const logic::Node *N = T.node();
    switch (N->kind()) {
    case Kind::BoolConst:
      return N->value() ? TriBool::True : TriBool::False;
    case Kind::Eq:
    case Kind::Le:
    case Kind::Lt: {
      Term A = N->kid(0), B = N->kid(1);
      // Cardinality comparisons against a concrete side.
      if (A.kind() == Kind::Card || B.kind() == Kind::Card) {
        bool CardLeft = A.kind() == Kind::Card;
        Term CardT = CardLeft ? A : B;
        Term Other = CardLeft ? B : A;
        auto R = evalCard(CardT, E);
        auto C = evalScalarOrRead(Other, E);
        if (!R || !C)
          return TriBool::Maybe;
        return cmpRange(*R, *C, N->kind(), CardLeft);
      }
      auto VA = evalScalarOrRead(A, E), VB = evalScalarOrRead(B, E);
      if (!VA || !VB)
        return TriBool::Maybe;
      bool V = N->kind() == Kind::Eq   ? *VA == *VB
               : N->kind() == Kind::Le ? *VA <= *VB
                                       : *VA < *VB;
      return V ? TriBool::True : TriBool::False;
    }
    case Kind::And: {
      TriBool R = TriBool::True;
      for (Term K : N->kids()) {
        TriBool B = evalBool(K, E);
        if (B == TriBool::False)
          return TriBool::False;
        if (B == TriBool::Maybe)
          R = TriBool::Maybe;
      }
      return R;
    }
    case Kind::Or: {
      TriBool R = TriBool::False;
      for (Term K : N->kids()) {
        TriBool B = evalBool(K, E);
        if (B == TriBool::True)
          return TriBool::True;
        if (B == TriBool::Maybe)
          R = TriBool::Maybe;
      }
      return R;
    }
    case Kind::Not:
      return triNot(evalBool(N->kid(0), E));
    case Kind::Implies: {
      TriBool A = evalBool(N->kid(0), E);
      if (A == TriBool::False)
        return TriBool::True;
      TriBool B = evalBool(N->kid(1), E);
      if (A == TriBool::True)
        return B;
      return B == TriBool::True ? TriBool::True : TriBool::Maybe;
    }
    case Kind::Forall:
    case Kind::Exists: {
      // Quantification over threads = over inhabited classes.
      bool IsForall = N->kind() == Kind::Forall;
      if (N->binders().size() != 1 ||
          N->binders()[0].sort() != Sort::Tid)
        return TriBool::Maybe;
      Term BV = N->binders()[0];
      TriBool Acc = IsForall ? TriBool::True : TriBool::False;
      for (size_t C = 0; C < Classes.size(); ++C) {
        int8_t Cnt =
            C < E.S->Counters.size() ? E.S->Counters[C] : 0;
        if (Cnt == 0)
          continue;
        Env Inner = E;
        for (size_t L = 0; L < Sys.locals().size(); ++L)
          Inner.Scalars[M.mkRead(Sys.locals()[L], BV)] = Classes[C][L];
        TriBool B = evalBool(N->body(), Inner);
        if (IsForall) {
          if (B == TriBool::False)
            return TriBool::False;
          if (B == TriBool::Maybe)
            Acc = TriBool::Maybe;
        } else {
          if (B == TriBool::True)
            return TriBool::True;
          if (B == TriBool::Maybe)
            Acc = TriBool::Maybe;
        }
      }
      return Acc;
    }
    default:
      return TriBool::Maybe;
    }
  }

  const ParamSystem &Sys;
  logic::TermManager &M;
  CounterAbsOptions Opts;
  std::map<std::vector<int64_t>, size_t> ClassIndex;
  std::vector<std::vector<int64_t>> Classes;
};

CounterAbsResult Checker::run() {
  auto Start = std::chrono::steady_clock::now();
  CounterAbsResult Res;
  auto Finish = [&](CounterVerdict V, std::string Note) {
    Res.Verdict = V;
    Res.Note = std::move(Note);
    Res.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    return Res;
  };

  if (Sys.mode() != sys::Composition::Async)
    return Finish(CounterVerdict::Unsupported, "sync systems unsupported");
  for (const Transition &T : Sys.transitions())
    if (!T.Writes.empty() || !T.TidChoices.empty())
      return Finish(CounterVerdict::Unsupported,
                    "non-mover array writes unsupported");

  // Initial abstract state: all threads in the class given by CustomInit's
  // first state (locals of thread 0), counted omega; globals from it too.
  if (!Sys.CustomInit)
    return Finish(CounterVerdict::Unsupported, "needs CustomInit");
  std::vector<sys::ParamSystem::State> Inits = Sys.CustomInit(2);
  std::set<AbstractState> Visited;
  std::deque<AbstractState> Queue;
  for (const sys::ParamSystem::State &I : Inits) {
    AbstractState A;
    std::vector<int64_t> Class0;
    for (Term L : Sys.locals()) {
      auto It = I.Arrays.find(L);
      Class0.push_back(It != I.Arrays.end() && !It->second.empty()
                           ? It->second[0]
                           : 0);
    }
    size_t C0 = internClass(Class0);
    A.Counters.resize(Classes.size(), 0);
    A.Counters[C0] = OmegaCtr;
    for (Term G : Sys.globals()) {
      auto It = I.Scalars.find(G);
      A.Globals.push_back(It != I.Scalars.end() ? It->second : 0);
    }
    if (Visited.insert(A).second)
      Queue.push_back(A);
  }

  while (!Queue.empty()) {
    if (Visited.size() > Opts.MaxStates)
      return Finish(CounterVerdict::Unknown, "state budget exhausted");
    AbstractState Cur = Queue.front();
    Queue.pop_front();
    Cur.Counters.resize(Classes.size(), 0);

    // Property check (must hold definitely).
    Env E{&Cur, {}};
    if (evalBool(Sys.safe(), E) != TriBool::True)
      return Finish(CounterVerdict::Unknown,
                    "possible property violation (may be spurious)");

    // Fire each transition from each inhabited class, enumerating choices.
    // (Snapshot the class count: successor computation may intern new
    // classes, which are uninhabited in Cur by construction.)
    size_t NumClassesNow = Cur.Counters.size();
    for (const Transition &T : Sys.transitions()) {
      for (size_t C = 0; C < NumClassesNow; ++C) {
        if (Cur.Counters[C] == 0)
          continue;
        std::vector<int64_t> ChoiceVals(T.Choices.size(), Sys.ChoiceLo);
        for (;;) {
          Env ME{&Cur, {}};
          for (size_t L = 0; L < Sys.locals().size(); ++L)
            ME.Scalars[M.mkRead(Sys.locals()[L], Sys.self())] =
                Classes[C][L];
          // Also key by array for evalCard's inner binding style.
          for (size_t I = 0; I < T.Choices.size(); ++I)
            ME.Scalars[T.Choices[I]] = ChoiceVals[I];
          TriBool G = evalBool(T.Guard, ME);
          if (G != TriBool::False) {
            // Compute successor(s).
            std::vector<int64_t> NewClass = Classes[C];
            bool Ok = true;
            for (size_t L = 0; L < Sys.locals().size(); ++L) {
              auto It = T.LocalUpd.find(Sys.locals()[L]);
              if (It == T.LocalUpd.end())
                continue;
              auto V = evalInt(It->second, ME);
              if (!V || *V < Opts.ValueLo || *V > Opts.ValueHi) {
                Ok = false;
                break;
              }
              NewClass[L] = *V;
            }
            std::vector<int64_t> NewGlobals = Cur.Globals;
            for (size_t Gi = 0; Ok && Gi < Sys.globals().size(); ++Gi) {
              auto It = T.GlobalUpd.find(Sys.globals()[Gi]);
              if (It == T.GlobalUpd.end())
                continue;
              auto V = evalInt(It->second, ME);
              // Globals escaping the range (or computed from an already
              // widened value) are widened to the Big sentinel, which
              // evaluates as "unknown" from then on -- sound, but weakens
              // every property over that global (the eager-counter methods
              // this baseline models track such counters symbolically; see
              // EXPERIMENTS.md).
              NewGlobals[Gi] =
                  (!V || *V < Opts.ValueLo || *V > Opts.ValueHi)
                      ? BigSentinel
                      : *V;
            }
            if (!Ok)
              return Finish(CounterVerdict::Unknown,
                            "local value escaped the finite range");
            size_t NC = internClass(NewClass);
            // Decrement source (omega splits into {2, omega}), increment
            // target.
            std::vector<int8_t> DecOptions;
            if (Cur.Counters[C] == OmegaCtr) {
              DecOptions = {2, OmegaCtr};
            } else {
              DecOptions = {static_cast<int8_t>(Cur.Counters[C] - 1)};
            }
            for (int8_t Dec : DecOptions) {
              AbstractState Next = Cur;
              Next.Counters.resize(Classes.size(), 0);
              Next.Counters[C] = Dec;
              // When NC == C the increment below re-adds the mover to the
              // already-decremented source counter.
              int8_t &Tgt = Next.Counters[NC];
              Tgt = Tgt >= 2 ? OmegaCtr : Tgt + 1;
              Next.Globals = NewGlobals;
              if (Visited.insert(Next).second)
                Queue.push_back(Next);
            }
          }
          // Advance choice vector.
          size_t I = 0;
          while (I < ChoiceVals.size() && ++ChoiceVals[I] > Sys.ChoiceHi) {
            ChoiceVals[I] = Sys.ChoiceLo;
            ++I;
          }
          if (I == ChoiceVals.size())
            break;
          if (ChoiceVals.empty())
            break;
        }
      }
    }
  }

  Res.NumAbstractStates = static_cast<unsigned>(Visited.size());
  return Finish(CounterVerdict::Safe, "abstract fixpoint reached");
}

} // namespace

CounterAbsResult
sharpie::baselines::checkByCounterAbstraction(const ParamSystem &Sys,
                                              const CounterAbsOptions &Opts) {
  return Checker(Sys, Opts).run();
}
