//===- baselines/IntervalAI.h - Interval abstract interpretation -*- C++ -*-===//
//
// Part of sharpie. A from-scratch interval abstract interpreter over the
// counter abstraction of a parameterized system -- the stand-in for the
// interval-domain column of [Sanchez et al., SAS 2012] in the paper's
// Fig. 9 (lower table).
//
// The abstract domain maps every discovered local-valuation class to an
// interval of thread counts and every global to an interval of values; a
// single abstract element is iterated to a post fixpoint with widening.
// Guards evaluate three-valued over intervals; the verdict is Safe only
// when the property definitely holds at the fixpoint.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_BASELINES_INTERVALAI_H
#define SHARPIE_BASELINES_INTERVALAI_H

#include "system/System.h"

#include <string>

namespace sharpie {
namespace baselines {

enum class IntervalVerdict { Safe, Unknown, Unsupported };

struct IntervalAIOptions {
  int64_t ValueLo = -2, ValueHi = 8; ///< Representable local values.
  unsigned MaxIterations = 200;
  unsigned WidenAfter = 12;
};

struct IntervalAIResult {
  IntervalVerdict Verdict = IntervalVerdict::Unknown;
  unsigned NumClasses = 0;
  unsigned NumIterations = 0;
  double Seconds = 0;
  std::string Note;
};

/// Runs the interval abstract interpreter on \p Sys.
IntervalAIResult checkByIntervalAI(const sys::ParamSystem &Sys,
                                   const IntervalAIOptions &Opts = {});

} // namespace baselines
} // namespace sharpie

#endif // SHARPIE_BASELINES_INTERVALAI_H
