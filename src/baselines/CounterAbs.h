//===- baselines/CounterAbs.h - Counter-abstraction baseline ----*- C++ -*-===//
//
// Part of sharpie. A from-scratch counter-abstraction model checker in the
// style of [Ganjei et al., VMCAI 2015] / [Pnueli et al., CAV 2002]: the
// comparator of the paper's Fig. 7.
//
// Local states are grouped into finitely many *classes* (valuations of the
// per-thread locals, which must range over a finite set -- all Fig. 7
// benchmarks have pc-only locals). The abstract state maps each class and
// each global to a {0, 1, 2, omega} counter; omega absorbs any count >= 3.
// Transitions fire on classes with non-zero count; guards are evaluated
// three-valued, and may-transitions are explored, so the abstraction
// over-approximates: "safe" verdicts are sound for every number of
// threads, property violations only yield "unknown" (the trace may be
// spurious).
//
// Unlike #Pi, the abstraction tracks a counter for *every* class eagerly
// and supports no universal quantification -- the two restrictions the
// paper's Sec. 8 discussion attributes to this line of work.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_BASELINES_COUNTERABS_H
#define SHARPIE_BASELINES_COUNTERABS_H

#include "system/System.h"

#include <optional>
#include <string>

namespace sharpie {
namespace baselines {

enum class CounterVerdict { Safe, Unknown, Unsupported };

struct CounterAbsOptions {
  /// Counter values are {0, 1, 2, omega=3}; omega means "3 or more".
  int64_t Omega = 3;
  /// Inclusive bounds on representable local/global values; systems whose
  /// reachable values escape the bound are reported Unsupported.
  int64_t ValueLo = -1, ValueHi = 6;
  unsigned MaxStates = 200000;
};

struct CounterAbsResult {
  CounterVerdict Verdict = CounterVerdict::Unknown;
  unsigned NumAbstractStates = 0;
  double Seconds = 0;
  std::string Note;
};

/// Runs the counter-abstraction model checker on \p Sys.
CounterAbsResult checkByCounterAbstraction(const sys::ParamSystem &Sys,
                                           const CounterAbsOptions &Opts = {});

} // namespace baselines
} // namespace sharpie

#endif // SHARPIE_BASELINES_COUNTERABS_H
