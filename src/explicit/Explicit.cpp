//===- explicit/Explicit.cpp - Explicit-state model checker ------------------===//
//
// Part of sharpie. See Explicit.h.
//
//===----------------------------------------------------------------------===//

#include "explicit/Explicit.h"

#include <deque>
#include <map>

using namespace sharpie;
using namespace sharpie::explct;
using logic::Evaluator;
using logic::FiniteModel;
using logic::Term;
using sys::ParamSystem;
using sys::Transition;

namespace {

/// Canonical fingerprint of a state for the visited set.
std::vector<int64_t> fingerprint(const ParamSystem &Sys,
                                 const FiniteModel &S) {
  std::vector<int64_t> Key;
  for (Term G : Sys.globals()) {
    auto It = S.Scalars.find(G);
    Key.push_back(It != S.Scalars.end() ? It->second : 0);
  }
  for (Term L : Sys.locals()) {
    auto It = S.Arrays.find(L);
    if (It == S.Arrays.end()) {
      Key.insert(Key.end(), static_cast<size_t>(S.DomainSize), 0);
      continue;
    }
    std::vector<int64_t> A = It->second;
    A.resize(static_cast<size_t>(S.DomainSize), 0);
    Key.insert(Key.end(), A.begin(), A.end());
  }
  return Key;
}

/// Generic successor generation for asynchronous guarded commands.
class AsyncStepper {
public:
  AsyncStepper(const ParamSystem &Sys, int64_t IntBound)
      : Sys(Sys), IntBound(IntBound) {}

  std::vector<std::pair<std::string, FiniteModel>>
  successors(const FiniteModel &S) {
    std::vector<std::pair<std::string, FiniteModel>> Out;
    for (const Transition &T : Sys.transitions())
      for (int64_t Mover = 0; Mover < S.DomainSize; ++Mover)
        stepWithChoices(S, T, Mover, 0, Out);
    return Out;
  }

private:
  void stepWithChoices(const FiniteModel &S, const Transition &T,
                       int64_t Mover, size_t ChoiceIdx,
                       std::vector<std::pair<std::string, FiniteModel>> &Out) {
    if (ChoiceIdx < T.Choices.size() + T.TidChoices.size()) {
      bool IsInt = ChoiceIdx < T.Choices.size();
      Term C = IsInt ? T.Choices[ChoiceIdx]
                     : T.TidChoices[ChoiceIdx - T.Choices.size()];
      int64_t Lo = IsInt ? Sys.ChoiceLo : 0;
      int64_t Hi = IsInt ? Sys.ChoiceHi : S.DomainSize - 1;
      for (int64_t V = Lo; V <= Hi; ++V) {
        ChoiceVals[C] = V;
        stepWithChoices(S, T, Mover, ChoiceIdx + 1, Out);
      }
      ChoiceVals.erase(C);
      return;
    }
    FiniteModel Env = S;
    Env.IntBound = IntBound;
    Env.Scalars[Sys.self()] = Mover;
    for (const auto &[C, V] : ChoiceVals)
      Env.Scalars[C] = V;
    Evaluator Ev(Env);
    if (!Ev.evalBool(T.Guard))
      return;
    FiniteModel Next = S;
    for (Term G : Sys.globals()) {
      auto It = T.GlobalUpd.find(G);
      if (It != T.GlobalUpd.end())
        Next.Scalars[G] = Ev.evalInt(It->second);
    }
    for (Term L : Sys.locals()) {
      auto It = T.LocalUpd.find(L);
      if (It == T.LocalUpd.end())
        continue;
      std::vector<int64_t> &A = Next.Arrays[L];
      A.resize(static_cast<size_t>(S.DomainSize), 0);
      A[static_cast<size_t>(Mover)] = Ev.evalInt(It->second);
    }
    for (const Transition::ArrayWrite &W : T.Writes) {
      int64_t Idx = Ev.evalInt(W.Idx);
      assert(Idx >= 0 && Idx < S.DomainSize && "array write out of domain");
      std::vector<int64_t> &A = Next.Arrays[W.Arr];
      A.resize(static_cast<size_t>(S.DomainSize), 0);
      A[static_cast<size_t>(Idx)] = Ev.evalInt(W.Val);
    }
    Out.push_back({T.Name, std::move(Next)});
  }

  const ParamSystem &Sys;
  int64_t IntBound;
  std::map<Term, int64_t> ChoiceVals;
};

} // namespace

ExplicitResult sharpie::explct::explore(const ParamSystem &Sys,
                                        const ExplicitOptions &Opts,
                                        obs::TraceBuffer *Trace) {
  obs::Span Sp(Trace, "explicit", [&] {
    return "N=" + std::to_string(Opts.NumThreads);
  });
  ExplicitResult Res;

  std::vector<FiniteModel> Initials;
  if (Sys.CustomInit) {
    Initials = Sys.CustomInit(Opts.NumThreads);
  } else {
    FiniteModel S;
    S.DomainSize = Opts.NumThreads;
    for (Term G : Sys.globals())
      S.Scalars[G] = 0;
    for (Term L : Sys.locals())
      S.Arrays[L] =
          std::vector<int64_t>(static_cast<size_t>(Opts.NumThreads), 0);
    Initials.push_back(std::move(S));
  }
  for (FiniteModel &S : Initials) {
    S.DomainSize = Opts.NumThreads;
    S.IntBound = Opts.IntBound;
    if (Sys.sizeVar())
      S.Scalars[*Sys.sizeVar()] = Opts.NumThreads;
#ifndef NDEBUG
    Evaluator Ev(S);
    assert(Ev.evalBool(Sys.init()) && "initial state violates init()");
#endif
  }

  AsyncStepper Generic(Sys, Opts.IntBound);
  std::map<std::vector<int64_t>, size_t> Visited;
  struct Node {
    FiniteModel S;
    size_t Parent;
    std::string Via;
  };
  std::vector<Node> Nodes;
  std::deque<size_t> Queue;

  auto Enqueue = [&](FiniteModel S, size_t Parent, const std::string &Via) {
    auto Key = fingerprint(Sys, S);
    if (Visited.count(Key))
      return;
    Visited.emplace(std::move(Key), Nodes.size());
    Nodes.push_back({std::move(S), Parent, Via});
    Queue.push_back(Nodes.size() - 1);
  };

  for (FiniteModel &S : Initials)
    Enqueue(std::move(S), SIZE_MAX, "");

  Res.Exhausted = true;
  while (!Queue.empty()) {
    if (Nodes.size() > Opts.MaxStates) {
      Res.Exhausted = false;
      break;
    }
    size_t Cur = Queue.front();
    Queue.pop_front();
    // Safety check.
    {
      Evaluator Ev(Nodes[Cur].S);
      if (!Ev.evalBool(Sys.safe())) {
        Res.Safe = false;
        Counterexample Cex;
        Cex.BadState = Nodes[Cur].S;
        for (size_t I = Cur; I != SIZE_MAX && !Nodes[I].Via.empty();
             I = Nodes[I].Parent)
          Cex.TransitionNames.push_back(Nodes[I].Via);
        std::reverse(Cex.TransitionNames.begin(), Cex.TransitionNames.end());
        Res.Cex = std::move(Cex);
        Res.Exhausted = false;
        break;
      }
    }
    std::vector<std::pair<std::string, FiniteModel>> Succs;
    if (Sys.CustomStepper) {
      for (FiniteModel &S : Sys.CustomStepper(Nodes[Cur].S))
        Succs.push_back({"round", std::move(S)});
    } else {
      Succs = Generic.successors(Nodes[Cur].S);
    }
    for (auto &[Via, S] : Succs) {
      S.DomainSize = Opts.NumThreads;
      S.IntBound = Opts.IntBound;
      Enqueue(std::move(S), Cur, Via);
    }
  }

  Res.NumStates = static_cast<unsigned>(Nodes.size());
  Res.States.reserve(Nodes.size());
  for (Node &N : Nodes)
    Res.States.push_back(std::move(N.S));
  if (Trace) {
    Trace->counter("explicit_states", Res.NumStates);
    if (Res.Cex)
      Trace->instant("explicit_cex",
                     Res.Cex->TransitionNames.empty()
                         ? std::string("initial state")
                         : Res.Cex->TransitionNames.back(),
                     static_cast<int64_t>(Res.Cex->TransitionNames.size()));
    SHARPIE_LOGF(Trace, obs::LogLevel::Debug,
                 "explicit: %u states, exhausted=%d, safe=%d", Res.NumStates,
                 Res.Exhausted ? 1 : 0, Res.Safe ? 1 : 0);
  }
  return Res;
}

bool sharpie::explct::holdsInAll(
    const std::vector<ParamSystem::State> &States, Term Phi) {
  for (const ParamSystem::State &S : States) {
    Evaluator Ev(S);
    if (!Ev.evalBool(Phi))
      return false;
  }
  return true;
}
