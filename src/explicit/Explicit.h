//===- explicit/Explicit.h - Explicit-state model checker -------*- C++ -*-===//
//
// Part of sharpie. Enumerates the reachable states of a finite instance
// (N threads) of a parameterized system by breadth-first search, evaluating
// guards, updates, cardinalities and quantifiers with the reference
// finite-model semantics of logic/Eval.h.
//
// Three uses: (1) validating protocol models (correct versions stay safe,
// buggy variants produce concrete counterexample traces), (2) cross-checking
// synthesized invariants against every reachable state, and (3) cheaply
// pre-filtering candidate invariant atoms before any SMT solving (an atom
// violated in a reachable state of the N=2 or N=3 instance can never be
// part of an invariant of the parameterized family).
//
// The search is exact but bounded (MaxStates); systems with unbounded data
// (e.g. the ticket lock's growing counters) explore a finite prefix, which
// keeps uses (1)-(3) sound: every explored state is genuinely reachable.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_EXPLICIT_EXPLICIT_H
#define SHARPIE_EXPLICIT_EXPLICIT_H

#include "obs/Obs.h"
#include "system/System.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sharpie {
namespace explct {

struct ExplicitOptions {
  int64_t NumThreads = 3;      ///< Instance size N.
  unsigned MaxStates = 50000;  ///< Exploration cap.
  int64_t IntBound = 6;        ///< Range for Int-sorted quantifier evaluation.
};

struct Counterexample {
  std::vector<std::string> TransitionNames; ///< Path from an initial state.
  sys::ParamSystem::State BadState;
};

struct ExplicitResult {
  bool Exhausted = false;   ///< True if the full reachable set was explored.
  bool Safe = true;         ///< No explored state violates the property.
  unsigned NumStates = 0;
  std::optional<Counterexample> Cex;
  /// The explored states (capped at MaxStates).
  std::vector<sys::ParamSystem::State> States;
};

/// Explores the N-thread instance of \p Sys. Initial states come from
/// Sys.CustomInit if set, otherwise from the all-zero state (validated
/// against Sys.init()). Successors come from Sys.CustomStepper if set,
/// otherwise from the generic asynchronous interpretation of the guarded
/// commands (choice variables enumerated over [Sys.ChoiceLo, Sys.ChoiceHi]).
/// \p Trace, when non-null, receives an "explicit" span, the
/// "explicit_states" counter and an instant event on a counterexample.
ExplicitResult explore(const sys::ParamSystem &Sys,
                       const ExplicitOptions &Opts = {},
                       obs::TraceBuffer *Trace = nullptr);

/// Evaluates formula \p Phi in every state of \p States; returns false on
/// the first violation. Used to cross-check synthesized invariants.
bool holdsInAll(const std::vector<sys::ParamSystem::State> &States,
                logic::Term Phi);

} // namespace explct
} // namespace sharpie

#endif // SHARPIE_EXPLICIT_EXPLICIT_H
