//===- card/Card.cpp - Cardinality elimination (ELIMCARD) -------------------===//
//
// Part of sharpie. See Card.h.
//
//===----------------------------------------------------------------------===//

#include "card/Card.h"

#include "logic/TermOps.h"

#include <algorithm>

using namespace sharpie;
using namespace sharpie::card;
using logic::Kind;
using logic::Sort;
using logic::Subst;
using logic::Term;
using logic::TermManager;

logic::Term sharpie::card::indicator(TermManager &M, Term Phi, Term K) {
  return M.mkOr(M.mkAnd(Phi, M.mkEq(K, M.mkInt(1))),
                M.mkAnd(M.mkNot(Phi), M.mkEq(K, M.mkInt(0))));
}

// -- CardDef -------------------------------------------------------------------

Term CardDef::at(TermManager &M, Term Idx) const {
  Subst S;
  S[BoundVar] = Idx;
  return logic::substitute(M, Body, S);
}

bool CardDef::indexedOnlyByBoundVar() const {
  std::set<Term> Reads = logic::collectSubterms(
      Body, [](Term T) { return T.kind() == Kind::Read; });
  for (Term R : Reads)
    if (R->kid(1) != BoundVar)
      return false;
  // The update axiom additionally requires that the set predicate does not
  // itself contain array updates or nested cardinalities.
  if (logic::containsKind(Body, Kind::Store) ||
      logic::containsKind(Body, Kind::Card))
    return false;
  return true;
}

// -- CardRegistry ----------------------------------------------------------------

CardRegistry::CardRegistry(TermManager &M)
    : M(M), CanonVar(M.mkVar("%card_t", Sort::Tid)) {}

const CardDef &CardRegistry::defFor(Term CardTerm) {
  assert(CardTerm.kind() == Kind::Card && "defFor expects a Card term");
  Term BV = CardTerm->binders()[0];
  Term Body = CardTerm->body();
  if (BV != CanonVar) {
    Subst S;
    S[BV] = CanonVar;
    Body = logic::substitute(M, Body, S);
  }
  auto It = IndexByBody.find(Body);
  if (It == IndexByBody.end()) {
    CardDef D;
    D.K = M.freshVar("card_k", Sort::Int);
    D.BoundVar = CanonVar;
    D.Body = Body;
    It = IndexByBody.emplace(Body, Defs.size()).first;
    Defs.push_back(D);
  }
  Replacements[CardTerm] = Defs[It->second].K;
  return Defs[It->second];
}

std::optional<Term> CardRegistry::omegaK() const {
  for (const CardDef &D : Defs)
    if (D.Body.kind() == Kind::BoolConst && D.Body->value())
      return D.K;
  return std::nullopt;
}

const CardDef &CardRegistry::registerExternal(Term K, Term Body) {
  assert(K.sort() == Sort::Int && "external counter must be Int-sorted");
  auto It = IndexByBody.find(Body);
  if (It != IndexByBody.end())
    return Defs[It->second];
  CardDef D;
  D.K = K;
  D.BoundVar = CanonVar;
  D.Body = Body;
  IndexByBody.emplace(Body, Defs.size());
  Defs.push_back(D);
  // Map the literal #-term to the external counter too, so occurrences of
  // e.g. #{t | true} in properties resolve to the system size variable.
  Replacements[M.mkCard(CanonVar, Body)] = K;
  return Defs.back();
}

// -- AxiomEngine ------------------------------------------------------------------

AxiomEngine::AxiomEngine(TermManager &M, CardRegistry &Reg,
                         const AxiomOptions &Opts,
                         smt::SmtSolver *VennOracle)
    : M(M), Reg(Reg), Opts(Opts), VennOracle(VennOracle) {}

void AxiomEngine::setContext(Term Facts) {
  Context = Facts;
  ContextVarEqs.clear();
  if (Facts.isNull())
    return;
  std::vector<Term> Conjs = Facts.kind() == Kind::And
                                ? Facts->kids()
                                : std::vector<Term>{Facts};
  ChangedGlobalRenames.clear();
  for (Term C : Conjs) {
    if (C.kind() != Kind::Eq)
      continue;
    Term L = C->kid(0), R = C->kid(1);
    if (L.kind() != Kind::Var)
      std::swap(L, R);
    if (L.kind() != Kind::Var)
      continue;
    if (R.kind() == Kind::Var && R.sort() == L.sort() &&
        (L.sort() == Sort::Int || L.sort() == Sort::Array)) {
      // Frame equality (g' = g or unchanged array A' = A).
      ContextVarEqs.push_back({L, R});
      continue;
    }
    // g' = e(g): every Int variable of e is a rename candidate g -> g'.
    if (L.sort() == Sort::Int && R.sort() == Sort::Int)
      for (Term V : logic::freeVars(R))
        if (V.sort() == Sort::Int)
          ChangedGlobalRenames.push_back({V, L});
  }
}

std::vector<Term>
AxiomEngine::emitNew(const std::vector<Term> &UpdateEqs,
                     std::vector<Term> *Deferred) {
  std::vector<Term> Out;
  PartitionAll = Deferred != nullptr;
  size_t D0 = Deferred ? Deferred->size() : 0;
  size_t N = Reg.defs().size();
  if (N > Opts.MaxDefs) {
    N = Opts.MaxDefs;
    Stats.Complete = false;
  }
  for (size_t I = 0; I < N; ++I) {
    const CardDef &A = Reg.defs()[I];
    // Relevancy-filtered slots are marked emitted and counted deferred:
    // within one engine the relevant set is fixed, and the escalation
    // path re-reduces with a fresh, unfiltered engine, so there is never
    // a second chance this engine would owe the skipped instance to.
    // Partition mode instead emits every slot and routes by shape.
    bool RelA = relevant(A);
    if (EmittedUnary.insert(A.K.id()).second) {
      if (RelA) {
        size_t B0 = Out.size();
        size_t DB = Deferred ? Deferred->size() : 0;
        emitUnary(A, Out, Deferred);
        Stats.NumUnary += static_cast<unsigned>(
            Out.size() - B0 + (Deferred ? Deferred->size() - DB : 0));
      } else {
        ++Stats.NumDeferred;
      }
    }
    for (size_t J = 0; J < N; ++J) {
      if (I == J)
        continue;
      const CardDef &B = Reg.defs()[J];
      bool RelPair = RelA && relevant(B);
      if (Opts.Pairwise &&
          EmittedPairs.insert({A.K.id(), B.K.id()}).second) {
        if (RelPair) {
          size_t B0 = Out.size();
          size_t DB = Deferred ? Deferred->size() : 0;
          emitPair(A, B, Out, Deferred);
          Stats.NumPairwise += static_cast<unsigned>(
              Out.size() - B0 + (Deferred ? Deferred->size() - DB : 0));
        } else {
          ++Stats.NumDeferred;
        }
      }
      if (Opts.Update && RelPair)
        emitUpdate(A, B, UpdateEqs, Out, Deferred);
    }
  }
  if (Opts.Venn && Reg.defs().size() > VennDefsCovered) {
    size_t B0 = Out.size();
    emitVenn(Out);
    Stats.NumVennAxioms += static_cast<unsigned>(Out.size() - B0);
  }
  Stats.NumAxioms += static_cast<unsigned>(
      Out.size() + (Deferred ? Deferred->size() - D0 : 0));
  if (Deferred)
    Stats.NumDeferred += static_cast<unsigned>(Deferred->size() - D0);
  return Out;
}

void AxiomEngine::emitUnary(const CardDef &D, std::vector<Term> &Out,
                            std::vector<Term> *Deferred) {
  // Witness-bearing instances are the manifest candidates in partition
  // mode: each mints a fresh Tid constant (or carries a universal) that
  // the surrounding clause would re-expand over.
  std::vector<Term> &Wit = Deferred ? *Deferred : Out;
  // CARD>=0.
  Out.push_back(M.mkLe(M.mkInt(0), D.K));
  // CARD_0, skolemized NNF of (forall t: !phi) -> k <= 0:
  //   phi(c) \/ k <= 0 for a fresh witness c.
  Term C = M.freshVar("wit", Sort::Tid);
  Wit.push_back(M.mkOr(D.at(M, C), M.mkLe(D.K, M.mkInt(0))));
  // CARD>0: (exists t: phi) -> k > 0, i.e. (forall t: !phi) \/ k > 0.
  Wit.push_back(M.mkOr(M.mkForall({Reg.canonicalBoundVar()}, M.mkNot(D.Body)),
                       M.mkLt(M.mkInt(0), D.K)));
}

void AxiomEngine::emitPair(const CardDef &A, const CardDef &B,
                           std::vector<Term> &Out,
                           std::vector<Term> *Deferred) {
  std::vector<Term> &Wit = Deferred ? *Deferred : Out;
  // CARD<=, skolemized NNF of (forall t: a -> b) -> ka <= kb:
  //   (a(c) /\ !b(c)) \/ ka <= kb.
  Term C = M.freshVar("wit", Sort::Tid);
  Wit.push_back(M.mkOr(M.mkAnd(A.at(M, C), M.mkNot(B.at(M, C))),
                       M.mkLe(A.K, B.K)));
  // CARD<: ((forall t: a -> b) /\ (exists t: !a /\ b)) -> ka < kb, in
  // skolemized NNF: (a(c') /\ !b(c')) \/ (forall t: a \/ !b) \/ ka < kb.
  Term C2 = M.freshVar("wit", Sort::Tid);
  Wit.push_back(
      M.mkOr({M.mkAnd(A.at(M, C2), M.mkNot(B.at(M, C2))),
              M.mkForall({Reg.canonicalBoundVar()},
                         M.mkOr(A.Body, M.mkNot(B.Body))),
              M.mkLt(A.K, B.K)}));

  // CARD-DISJOINT (derived from the Venn decomposition): two sets of shape
  // {t | f(t) = e1} and {t | f(t) = e2} over the same array are disjoint
  // unless e1 = e2, so their counts sum to at most the universe. This is
  // the pigeonhole that the one-third rule's agreement proof rests on
  // (paper Sec. 5.2, Example 2). Requires a registered universe size.
  if (A.K.id() < B.K.id()) {
    std::optional<Term> Omega = Reg.omegaK();
    if (Omega && A.Body.kind() == Kind::Eq && B.Body.kind() == Kind::Eq) {
      auto Split = [&](Term Body) -> std::pair<Term, Term> {
        Term L = Body.node()->kid(0), R = Body.node()->kid(1);
        if (R.kind() == Kind::Read && R->kid(1) == Reg.canonicalBoundVar())
          std::swap(L, R);
        if (L.kind() == Kind::Read && L->kid(1) == Reg.canonicalBoundVar())
          return {L->kid(0), R};
        return {Term(), Term()};
      };
      auto [FA, EA] = Split(A.Body);
      auto [FB, EB] = Split(B.Body);
      if (FA && FA == FB && EA.sort() == Sort::Int &&
          EB.sort() == Sort::Int)
        Out.push_back(M.mkOr(M.mkEq(EA, EB),
                             M.mkLe(M.mkAdd(A.K, B.K), *Omega)));
    }
  }
}

namespace {

/// One array update g = f[j <- v] harvested from the obligation.
struct UpdateEq {
  Term Eq;   ///< The original equation (used as a guard).
  Term F;    ///< Pre-state array variable.
  Term G;    ///< Post-state array variable.
  Term J;    ///< Updated index.
};

std::vector<UpdateEq> parseUpdates(const std::vector<Term> &Eqs) {
  std::vector<UpdateEq> Out;
  for (Term E : Eqs) {
    if (E.kind() != Kind::Eq)
      continue;
    Term L = E->kid(0), R = E->kid(1);
    if (L.kind() != Kind::Store)
      std::swap(L, R);
    if (L.kind() != Kind::Store || R.kind() != Kind::Var)
      continue;
    if (L->kid(0).kind() != Kind::Var)
      continue;
    Out.push_back({E, L->kid(0), R, L->kid(1)});
  }
  return Out;
}

} // namespace

void AxiomEngine::emitUpdate(const CardDef &A, const CardDef &B,
                             const std::vector<Term> &UpdateEqs,
                             std::vector<Term> &Out,
                             std::vector<Term> *Deferred) {
  if (!A.indexedOnlyByBoundVar() || !B.indexedOnlyByBoundVar())
    return;
  std::vector<UpdateEq> Updates = parseUpdates(UpdateEqs);
  // Group the updates by their index term; simultaneous point-wise updates
  // of several local arrays at the same thread are one locality event.
  std::map<Term, std::vector<UpdateEq>> ByIndex;
  for (const UpdateEq &U : Updates)
    ByIndex[U.J].push_back(U);

  std::set<Term> AVars = logic::freeVars(A.Body);
  std::set<Term> BVars = logic::freeVars(B.Body);
  for (const auto &[J, Group] : ByIndex) {
    // Substitute g for f for every update in the group whose pre-array
    // occurs in A's body; if the result is exactly B's body, the only
    // difference between the two sets is the update at J.
    Subst S;
    std::vector<Term> Guards;
    for (const UpdateEq &U : Group) {
      if (!AVars.count(U.F))
        continue;
      if (S.count(U.F))
        return; // Conflicting updates of one array: bail out.
      S[U.F] = U.G;
      Guards.push_back(U.Eq);
    }
    if (S.empty())
      continue;
    // Bridge scalar variables across context frame equalities: a post-state
    // set body mentions serv' even when serv' = serv is framed, and the
    // rule is sound as long as the axiom instance is guarded by the
    // equalities used (paper's side condition "phi' = phi[g/f]" modulo
    // variables that provably coincide).
    for (const auto &[V1, V2] : ContextVarEqs) {
      if (AVars.count(V1) && !BVars.count(V1) && BVars.count(V2) &&
          !S.count(V1)) {
        S[V1] = V2;
        Guards.push_back(M.mkEq(V1, V2));
      } else if (AVars.count(V2) && !BVars.count(V2) && BVars.count(V1) &&
                 !S.count(V2)) {
        S[V2] = V1;
        Guards.push_back(M.mkEq(V1, V2));
      }
    }
    if (logic::substitute(M, A.Body, S) != B.Body) {
      // Near miss: the bodies may correspond with a *moved threshold*
      // (a global that the transition changed). Such pairs do not admit
      // the update axiom, but they are exactly where the CARD-COVER rule
      // earns its keep.
      Subst S2 = S;
      for (const auto &[From, To] : ChangedGlobalRenames)
        if (AVars.count(From) && !BVars.count(From) && BVars.count(To) &&
            !S2.count(From))
          S2[From] = To;
      if (S2.size() != S.size() &&
          logic::substitute(M, A.Body, S2) == B.Body) {
        // The threshold may have moved either way; both cover directions
        // are sound, so emit both. Cover instances are witness-bearing,
        // hence manifest-routed in partition mode.
        std::vector<Term> &CoverOut = Deferred ? *Deferred : Out;
        emitCover(A, B, CoverOut);
        emitCover(B, A, CoverOut);
      }
      continue;
    }
    if (!EmittedUpdates
             .insert({A.K.id(), B.K.id(), J.id()})
             .second)
      continue;
    // CARD-UPD (paper Fig. 4c), guarded by the update equations so that
    // equations harvested from below disjunctions remain sound:
    //   guards -> 1(b(j), d+) /\ 1(a(j), d-) /\ kb = ka + d+ - d-.
    Term DPlus = M.freshVar("delta_plus", Sort::Int);
    Term DMinus = M.freshVar("delta_minus", Sort::Int);
    Term Rel = M.mkAnd({indicator(M, B.at(M, J), DPlus),
                        indicator(M, A.at(M, J), DMinus),
                        M.mkEq(B.K, M.mkAdd({A.K, DPlus, M.mkNeg(DMinus)}))});
    Out.push_back(M.mkImplies(M.mkAnd(Guards), Rel));
    ++Stats.NumUpdateMatches;
    ++Stats.NumUpdate;
  }
}

void AxiomEngine::emitCover(const CardDef &A, const CardDef &B,
                            std::vector<Term> &Out) {
  size_t N = std::min<size_t>(Reg.defs().size(), Opts.MaxDefs);
  for (size_t I = 0; I < N; ++I) {
    const CardDef &C = Reg.defs()[I];
    if (C.K == A.K || C.K == B.K)
      continue;
    if (!EmittedCovers.insert({A.K.id(), B.K.id(), C.K.id()}).second)
      continue;
    // Skolemized NNF of (forall t: a -> b \/ c) -> ka <= kb + kc.
    Term W = M.freshVar("wit", Sort::Tid);
    Out.push_back(M.mkOr(
        M.mkAnd({A.at(M, W), M.mkNot(B.at(M, W)), M.mkNot(C.at(M, W))}),
        M.mkLe(A.K, M.mkAdd(B.K, C.K))));
    ++Stats.NumCover;
  }
}

void AxiomEngine::emitVenn(std::vector<Term> &Out) {
  VennDefsCovered = Reg.defs().size();
  if (!VennOracle) {
    Stats.Complete = false;
    return;
  }
  // Predicate pool P: the conjuncts of every definition's body. Bodies
  // share the canonical bound variable, so conjuncts can be compared
  // structurally.
  std::vector<Term> P;
  std::map<Term, size_t> PIndex;
  auto AddPred = [&](Term Conjunct) {
    if (Conjunct.kind() == Kind::BoolConst)
      return;
    if (PIndex.emplace(Conjunct, P.size()).second)
      P.push_back(Conjunct);
  };
  size_t NDefs = std::min<size_t>(Reg.defs().size(), Opts.MaxDefs);
  std::vector<std::vector<size_t>> DefConjuncts(NDefs);
  for (size_t I = 0; I < NDefs; ++I) {
    if (!relevant(Reg.defs()[I]))
      continue; // Stays out of the region pool and gets no sum equation.
    Term Body = Reg.defs()[I].Body;
    std::vector<Term> Cs =
        Body.kind() == Kind::And ? Body->kids() : std::vector<Term>{Body};
    for (Term C : Cs) {
      AddPred(C);
      if (C.kind() != Kind::BoolConst)
        DefConjuncts[I].push_back(PIndex[C]);
    }
  }
  if (P.empty())
    return;
  if (P.size() > Opts.MaxVennPreds) {
    Stats.Complete = false;
    return;
  }
  // Enumerate the satisfiable regions (truth valuations of P) with the
  // oracle. Must be exhaustive for the sum equations to be sound; abort on
  // a budget overrun or an unknown answer.
  std::vector<std::vector<bool>> Regions;
  VennOracle->push();
  if (!Context.isNull())
    VennOracle->add(Context);
  bool Exhaustive = false;
  while (Regions.size() <= Opts.MaxVennRegions) {
    smt::SatResult R = VennOracle->check();
    if (R == smt::SatResult::Unsat) {
      Exhaustive = true;
      break;
    }
    if (R != smt::SatResult::Sat)
      break;
    std::unique_ptr<smt::SmtModel> Model = VennOracle->model();
    if (!Model)
      break;
    std::vector<bool> Val(P.size());
    bool Ok = true;
    for (size_t I = 0; I < P.size(); ++I) {
      std::optional<bool> B = Model->evalBool(P[I]);
      if (!B) {
        Ok = false;
        break;
      }
      Val[I] = *B;
    }
    if (!Ok)
      break;
    Regions.push_back(Val);
    // Block this valuation.
    std::vector<Term> Block;
    for (size_t I = 0; I < P.size(); ++I)
      Block.push_back(Val[I] ? M.mkNot(P[I]) : P[I]);
    VennOracle->add(M.mkOr(Block));
  }
  VennOracle->pop();
  if (!Exhaustive) {
    Stats.Complete = false;
    return;
  }
  Stats.VennApplied = true;
  Stats.NumVennRegions = static_cast<unsigned>(Regions.size());
  // One fresh non-negative counter per region; each definition's k is the
  // sum of the regions below its conjunct set. The universal set (empty
  // conjunct list, e.g. the external Def(n) = #{t | true}) sums them all.
  std::vector<Term> RegionVars;
  for (size_t R = 0; R < Regions.size(); ++R) {
    Term V = M.freshVar("venn_r", Sort::Int);
    RegionVars.push_back(V);
    Out.push_back(M.mkLe(M.mkInt(0), V));
  }
  for (size_t I = 0; I < NDefs; ++I) {
    if (!relevant(Reg.defs()[I]))
      continue;
    std::vector<Term> Sum;
    for (size_t R = 0; R < Regions.size(); ++R) {
      bool Compatible = true;
      for (size_t C : DefConjuncts[I])
        if (!Regions[R][C]) {
          Compatible = false;
          break;
        }
      if (Compatible)
        Sum.push_back(RegionVars[R]);
    }
    Term Rhs = Sum.empty() ? M.mkInt(0) : M.mkAdd(Sum);
    Out.push_back(M.mkEq(Reg.defs()[I].K, Rhs));
  }
}
