//===- card/Card.h - Cardinality elimination (ELIMCARD) ---------*- C++ -*-===//
//
// Part of sharpie. Implements the cardinality axiomatization of paper
// Sec. 5: every cardinality term #{t | phi} is mapped to a fresh integer
// variable k (the bookkeeping function Def), and the information lost by
// the abstraction is recovered by instantiating axiom schemata:
//
//   CARD<=   (forall t: phi -> phi')                        ->  k <= l
//   CARD<    (forall t: phi -> phi') /\ (exists t: !phi /\ phi') -> k < l
//   CARD-UPD g = f[j <- _] in Delta, phi' = phi[g/f]:
//            1(phi'(j), d+) /\ 1(phi(j), d-) /\ l = k + d+ - d-
//
// plus the derived rules CARD>=0, CARD_0 ("empty set has cardinality 0"),
// CARD>0 ("inhabited set has positive cardinality"), and bounds against the
// universal set Omega when the system has a symbolic size. When order
// constraints are not enough, a Venn decomposition over the (conjunctive)
// set-defining predicates adds region variables and sum equations
// (paper Sec. 5.2); satisfiable regions are enumerated with an SMT oracle
// so that e.g. linearly ordered predicates yield linearly many regions.
//
// Note on CARD<: the paper's Fig. 4b displays only the existential premise;
// as stated that is unsound (phi = {1}, phi' = {2} satisfies the premise
// with equal cardinalities), so we implement the evidently intended rule
// with the subset premise of CARD<= conjoined.
//
// Axiom instances are produced in skolemized NNF: their existential
// premises become fresh Tid constants, which deliberately enlarges the
// instantiation index set of the surrounding clause (engine/Reduce.cpp
// re-expands universal facts over them).
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_CARD_CARD_H
#define SHARPIE_CARD_CARD_H

#include "logic/Term.h"
#include "smt/SmtSolver.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace sharpie {
namespace card {

/// One entry of the bookkeeping function: Def(K) = #{BoundVar | Body}.
/// Bodies are canonicalized to a shared bound variable so that cardinality
/// terms differing only in the bound variable's name share one definition.
struct CardDef {
  logic::Term K;        ///< The fresh Int variable standing for the count.
  logic::Term BoundVar; ///< Canonical bound variable (shared by all defs).
  logic::Term Body;     ///< Canonical set-defining formula.

  /// The membership predicate evaluated at index \p Idx: Body[Idx/BoundVar].
  logic::Term at(logic::TermManager &M, logic::Term Idx) const;

  /// True if every array read in Body is indexed directly by BoundVar
  /// (paper Remark 1); required for the update axiom.
  bool indexedOnlyByBoundVar() const;
};

/// Interns cardinality definitions and hands out their k variables.
class CardRegistry {
public:
  explicit CardRegistry(logic::TermManager &M);

  /// Returns the definition for a Card term, creating it on first sight.
  const CardDef &defFor(logic::Term CardTerm);

  /// Registers a definition for an externally provided counter, e.g.
  /// Def(n) = #{t | true} for a system of symbolic size n. Returns its def.
  const CardDef &registerExternal(logic::Term K, logic::Term Body);

  const std::vector<CardDef> &defs() const { return Defs; }

  /// The counter of the universal set #{t | true}, if registered (the
  /// system's size variable).
  std::optional<logic::Term> omegaK() const;

  /// Maps every Card term ever seen (in its original form) to its k var.
  const std::map<logic::Term, logic::Term> &replacements() const {
    return Replacements;
  }

  logic::Term canonicalBoundVar() const { return CanonVar; }

private:
  logic::TermManager &M;
  logic::Term CanonVar;
  std::map<logic::Term, size_t> IndexByBody;    ///< canonical body -> def.
  std::vector<CardDef> Defs;
  std::map<logic::Term, logic::Term> Replacements;
};

struct AxiomOptions {
  bool Pairwise = true;     ///< CARD<= / CARD< between all def pairs.
  bool Update = true;       ///< CARD-UPD against store equations.
  bool Venn = false;        ///< Venn decomposition (paper Sec. 5.2).
  /// Lazy instantiation: emit axioms only for definitions whose counter
  /// was marked relevant via AxiomEngine::setRelevant (typically the
  /// cardinalities occurring in the obligation itself, as opposed to the
  /// store-variant and witness definitions minted during axiom emission).
  /// Skipped instances are tallied in AxiomStats::NumDeferred. Dropping
  /// axioms only weakens the reduction, so a filtered Unsat is still a
  /// proof; a filtered Sat may be spurious and must be confirmed against
  /// the full axiom set (the synthesizer's escalation / recheck does so).
  bool RelevancyFilter = false;
  unsigned MaxVennRegions = 192;
  unsigned MaxVennPreds = 24;
  unsigned MaxDefs = 48;    ///< Stop generating axioms beyond this many defs.
};

struct AxiomStats {
  unsigned NumAxioms = 0;
  unsigned NumUpdateMatches = 0;
  unsigned NumVennRegions = 0;
  bool VennApplied = false;
  bool Complete = true; ///< False if MaxDefs or MaxVennRegions truncated.

  // Per-rule instance counts (sum <= NumAxioms only because NumAxioms also
  // counts Venn sum equations): exported as obs counters so a trace shows
  // which CARD schema dominates an obligation's reduction.
  unsigned NumUnary = 0;    ///< CARD>=0 / CARD_0 / CARD>0.
  unsigned NumPairwise = 0; ///< CARD<= / CARD< / CARD-DISJOINT.
  unsigned NumUpdate = 0;   ///< CARD-UPD.
  unsigned NumCover = 0;    ///< CARD-COVER.
  unsigned NumVennAxioms = 0; ///< Venn region variables' sum equations.
  /// Emission slots skipped by AxiomOptions::RelevancyFilter (one per
  /// suppressed unary batch / pair), or, in partition mode, the number of
  /// axiom instances routed into the deferred manifest. The
  /// "axioms_lazy_deferred" counter.
  unsigned NumDeferred = 0;
};

/// Generates cardinality axiom instances incrementally. Create one engine
/// per proof obligation; call emitNew() after each batch of definitions has
/// been added to the registry. Only axioms not yet emitted are returned.
class AxiomEngine {
public:
  AxiomEngine(logic::TermManager &M, CardRegistry &Reg,
              const AxiomOptions &Opts, smt::SmtSolver *VennOracle);

  /// Installs ground facts known to hold in every model of the obligation
  /// (top-level quantifier-free conjuncts: update equations, guards).
  /// The Venn region enumeration asserts them, pruning regions that are
  /// impossible *in context* -- e.g. with m' = m and s' = s + 1 the region
  /// "m'(c) <= s' but neither m(c) <= s nor m(c) = s+1" dies, which yields
  /// the subadditivity facts the ticket lock proof needs. Variable-variable
  /// equalities (frame conditions g' = g) additionally let the update axiom
  /// bridge pre- and post-state set bodies.
  void setContext(logic::Term Facts);

  /// Marks the counters (CardDef::K ids) the relevancy filter keeps. Only
  /// consulted when AxiomOptions::RelevancyFilter is set; must be called
  /// before the first emitNew(). Definitions minted later (axiom
  /// witnesses, store variants) are irrelevant unless their K id is in
  /// \p Ks, which is the point of the filter.
  void setRelevant(std::set<uint32_t> Ks) { RelevantKs = std::move(Ks); }

  /// Emits axioms for all current definitions against the update equations
  /// in \p UpdateEqs (terms of shape g = store(f, j, v), used *guardedly*:
  /// each update axiom is emitted as an implication from its equations, so
  /// equations harvested from below disjunctions stay sound).
  ///
  /// With \p Deferred non-null the engine runs in *partition mode* (the
  /// model-guided refinement path, engine/Reduce.cpp): every axiom family
  /// is materialized individually instead of all-or-nothing, the relevancy
  /// filter is ignored, and each instance is routed by shape -- ground
  /// axioms (CARD>=0, CARD-UPD, CARD-DISJOINT, Venn regions and sums) into
  /// the returned vector, witness-bearing ones (CARD_0, CARD>0, CARD<=,
  /// CARD<, CARD-COVER; the instance-bloat source, each minting a fresh
  /// Tid constant or universal) into \p Deferred. By construction
  /// returned AND deferred equals the unfiltered emission, so asserting
  /// the deferred part later recovers the full reduction exactly.
  std::vector<logic::Term> emitNew(const std::vector<logic::Term> &UpdateEqs,
                                   std::vector<logic::Term> *Deferred = nullptr);

  const AxiomStats &stats() const { return Stats; }

private:
  void emitUnary(const CardDef &D, std::vector<logic::Term> &Out,
                 std::vector<logic::Term> *Deferred);
  void emitPair(const CardDef &A, const CardDef &B,
                std::vector<logic::Term> &Out,
                std::vector<logic::Term> *Deferred);
  void emitUpdate(const CardDef &A, const CardDef &B,
                  const std::vector<logic::Term> &UpdateEqs,
                  std::vector<logic::Term> &Out,
                  std::vector<logic::Term> *Deferred);
  /// CARD-COVER, a derived 3-set consequence of the Venn decomposition:
  /// (forall t: a -> b \/ c) -> ka <= kb + kc, emitted in skolemized NNF
  /// for pairs (a, b) that an update relates with a *moved threshold*
  /// (e.g. {m <= s} before and {m <= s+1} after the unlock) against every
  /// third set c. Unconditionally sound; the pair detection is only a
  /// relevance filter that keeps the instance count linear.
  void emitCover(const CardDef &A, const CardDef &B,
                 std::vector<logic::Term> &Out);
  void emitVenn(std::vector<logic::Term> &Out);
  /// True when partition mode (see emitNew) treats every def as relevant.
  bool PartitionAll = false;
  bool relevant(const CardDef &D) const {
    return PartitionAll || !Opts.RelevancyFilter ||
           RelevantKs.count(D.K.id()) != 0;
  }

  logic::TermManager &M;
  CardRegistry &Reg;
  AxiomOptions Opts;
  smt::SmtSolver *VennOracle;
  logic::Term Context;
  /// Variable pairs equated by top-level context facts (frame conditions).
  std::vector<std::pair<logic::Term, logic::Term>> ContextVarEqs;
  AxiomStats Stats;
  std::set<uint32_t> RelevantKs; ///< See setRelevant().
  std::set<std::pair<uint32_t, uint32_t>> EmittedPairs; ///< by K ids.
  std::set<uint32_t> EmittedUnary;
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> EmittedUpdates;
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> EmittedCovers;
  /// Pre -> post renames for globals changed by the transition, harvested
  /// from context equalities g' = e(g).
  std::vector<std::pair<logic::Term, logic::Term>> ChangedGlobalRenames;
  size_t VennDefsCovered = 0; ///< #defs included in the last Venn pass.
};

/// The indicator relation of paper Sec. 5:
/// 1(phi, k) := (phi /\ k = 1) \/ (!phi /\ k = 0).
logic::Term indicator(logic::TermManager &M, logic::Term Phi, logic::Term K);

} // namespace card
} // namespace sharpie

#endif // SHARPIE_CARD_CARD_H
