//===- engine/Pool.cpp - Fixed thread pool and cancellation -------------------===//
//
// Part of sharpie. See Pool.h.
//
//===----------------------------------------------------------------------===//

#include "engine/Pool.h"

using namespace sharpie;
using namespace sharpie::engine;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> L(Mu);
    Shutdown = true;
  }
  JobReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> L(Mu);
    Jobs.push(std::move(Job));
    ++Pending;
  }
  JobReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(Mu);
  AllIdle.wait(L, [this] { return Pending == 0; });
}

std::string ThreadPool::firstJobError() const {
  std::unique_lock<std::mutex> L(Mu);
  return FirstError;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> L(Mu);
      JobReady.wait(L, [this] { return Shutdown || !Jobs.empty(); });
      if (Jobs.empty())
        return; // Shutdown with a drained queue.
      Job = std::move(Jobs.front());
      Jobs.pop();
    }
    const char *Err = nullptr;
    std::string What;
    try {
      Job();
    } catch (const std::exception &E) {
      What = E.what();
      Err = What.c_str();
    } catch (...) {
      Err = "unknown exception";
    }
    {
      std::unique_lock<std::mutex> L(Mu);
      if (Err) {
        Failures.fetch_add(1, std::memory_order_relaxed);
        if (FirstError.empty())
          FirstError = Err;
      }
      if (--Pending == 0)
        AllIdle.notify_all();
    }
  }
}

unsigned ThreadPool::effectiveWorkers(unsigned NumWorkers) {
  if (NumWorkers != 0)
    return NumWorkers;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}
