//===- engine/Reduce.h - Obligation reduction pipeline ----------*- C++ -*-===//
//
// Part of sharpie. Reduces a satisfiability obligation Psi in the combined
// theory (arithmetic + arrays + cardinalities + restricted quantifiers) to
// a ground, cardinality-free formula that the SMT back end can decide:
//
//   1. NNF + skolemization of existentials (quant/).
//   2. Iterated rounds of:
//      a. expansion of universals over the current Tid/Int index sets,
//      b. ELIMCARD: intern every (now ground) cardinality term and emit
//         the cardinality axioms (card/); axiom witnesses enlarge the Tid
//         index set, which is why the loop re-expands.
//   3. Replacement of every cardinality term by its k variable.
//
// Every step preserves "reduced formula unsat => Psi unsat", so proving a
// verification condition via the reduction is sound (paper Theorem 1); lost
// precision is tracked in ReduceResult::Complete.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_ENGINE_REDUCE_H
#define SHARPIE_ENGINE_REDUCE_H

#include "card/Card.h"
#include "obs/Obs.h"
#include "quant/Quant.h"
#include "smt/SmtSolver.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

namespace sharpie {
namespace engine {

struct ReduceOptions {
  card::AxiomOptions Card;
  quant::ExpandOptions Expand;
  unsigned MaxRounds = 3;
  /// Cap on axiom-witness constants added to the index set of the
  /// obligation's own universals. Each witness instance of a quantified
  /// invariant mints fresh cardinality definitions, so an uncapped set
  /// makes the reduction quadratic-by-round; truncation only weakens the
  /// reduction (sound).
  unsigned MaxWitnessInstances = 32;
  /// Model-guided refinement mode (the CEGAR instantiation loop in
  /// synth/Synth.cpp): run the *full* reduction pipeline -- every axiom
  /// family materialized, the full witness cascade, full instantiation
  /// domains, no relevancy skipping -- but route each conjunct either into
  /// ReduceResult::Ground (the core) or into the deferred-instance
  /// manifest ReduceResult::Deferred, such that Ground AND the manifest is
  /// logically the unpartitioned full reduction. Routed out are the
  /// witness-bearing CARD axioms and the obligation instances that bind
  /// axiom-witness constants (the instance-bloat sources); Unsat on the
  /// core alone is therefore sound, and a model that satisfies every
  /// manifest entry is a genuine model of the full reduction.
  bool DeferManifest = false;
};

struct ReduceResult {
  logic::Term Ground;     ///< Quantifier- and cardinality-free formula.
  bool Complete = true;   ///< False if any step weakened the obligation.
  unsigned NumRounds = 0;
  unsigned NumAxioms = 0;
  unsigned NumInstances = 0;
  /// CARD-axiom slots skipped by card::AxiomOptions::RelevancyFilter plus
  /// quantifier instances skipped by quant::ExpandOptions::RelevancyFilter
  /// (split kept below); 0 outside lazy mode. A nonzero value means Ground
  /// is a *weakening* of the full reduction: Unsat is still a proof, Sat
  /// must be confirmed against an unfiltered reduction.
  unsigned NumDeferred = 0;
  unsigned NumFilteredInstances = 0;
  unsigned NumVennRegions = 0;
  bool VennApplied = false;
  /// Maps every cardinality term seen to the k variable standing for it.
  std::map<logic::Term, logic::Term> CardVars;
  /// ReduceOptions::DeferManifest only: the deferred-instance manifest.
  /// Each entry is ground and cardinality-free (card terms replaced via
  /// CardVars like Ground itself), deduplicated, and not already a
  /// conjunct of Ground. Ground AND all entries == the full reduction;
  /// empty outside manifest mode.
  std::vector<logic::Term> Deferred;
};

/// A stable fingerprint of every knob that changes reduceToGround's output
/// for a fixed input term. Part of the reduction-cache key: results cached
/// under one axiom configuration must not be served under another.
uint64_t reduceOptionsFingerprint(const ReduceOptions &Opts);

/// Memoizes reduceToGround results. The cache key combines the hash-consed
/// id of the input formula (which already encodes the full clause: the
/// transition, the set-tuple measurements, and the placeholder wiring, so
/// equal ids mean equal obligations within one TermManager), the ids of the
/// external counters and extra index terms, and the axiom-configuration
/// fingerprint. A cache is bound to the single TermManager whose term ids
/// it stores; in the parallel search every worker owns one, so no locking
/// is needed. Entries pin their ReduceResult terms alive through the
/// manager, making hits a pure lookup.
///
/// When do hits occur? NOT within one synthesis run: the ranked tuple
/// enumeration is duplicate-free and every clause formula embeds its
/// tuple's measurement terms, so each of a run's reduction inputs is
/// distinct by construction and a single run reports CacheHits == 0 (the
/// all-zero cache_hits columns of BENCH_PR1/PR2 are expected, not a
/// keying bug). The cache pays off exactly when the same obligation is
/// rebuilt: re-verifying a protocol in the same TermManager (deterministic
/// clause-variable naming makes the clauses pointer-identical -- share a
/// cache across runs via SynthOptions::ReuseReduceCache), or re-reducing a
/// pinned FixedSetBodies tuple. tests/reduce_cache_test.cpp pins both the
/// zero-hit single-run expectation and the cross-run hit path.
class ReduceCache {
public:
  /// Returns the cached result for the key, or nullptr. Counts a hit or a
  /// miss accordingly.
  const ReduceResult *lookup(uint64_t Key);
  void insert(uint64_t Key, ReduceResult R);

  /// Builds the cache key for a reduceToGround call.
  static uint64_t
  keyFor(logic::Term Psi, const ReduceOptions &Opts,
         const std::vector<std::pair<logic::Term, logic::Term>>
             &ExternalCounters,
         const std::vector<logic::Term> &ExtraIndexTerms);

  /// Hit/miss tallies. In shared mode these take the cache mutex, so a
  /// cache_stats probe may race live workers safely.
  unsigned hits() const;
  unsigned misses() const;

  /// Flips the cache into shared (cross-manager) mode for the parallel
  /// search. Entries move into a private TermManager owned by the cache,
  /// so they outlive any worker and never race the workers' managers;
  /// keys become ids of the host-translated key terms, which makes them
  /// manager-independent without hash-collision risk. Existing id-mode
  /// entries are keyed in their producer's manager and cannot be carried
  /// over; they are dropped. Idempotent.
  void enableSharing();
  bool isShared() const { return HostM != nullptr; }

  /// Shared-mode lookup: translates the key terms into the host, and on a
  /// hit materializes the entry in \p M with every freshVar-minted
  /// variable ("!" names: witnesses, skolems, k/venn counters)
  /// re-skolemized through M.freshVar, so two entries -- or one entry hit
  /// twice -- can never alias skolems inside one solver context.
  /// Thread-safe; counts a hit or a miss.
  std::optional<ReduceResult>
  lookupShared(logic::TermManager &M, logic::Term Psi,
               const ReduceOptions &Opts,
               const std::vector<std::pair<logic::Term, logic::Term>>
                   &ExternalCounters,
               const std::vector<logic::Term> &ExtraIndexTerms);

  /// Shared-mode insert: stores \p R translated into the host manager.
  /// First writer wins on a key collision between racing workers (the
  /// results are equivalent up to skolem names). Thread-safe.
  void insertShared(logic::Term Psi, const ReduceOptions &Opts,
                    const std::vector<std::pair<logic::Term, logic::Term>>
                        &ExternalCounters,
                    const std::vector<logic::Term> &ExtraIndexTerms,
                    const ReduceResult &R);

  // -- Persistence (the serving stack's tier-2 store, serve/Store.h) ---------
  //
  // Shared-mode entries round-trip through a line-based text encoding:
  // every entry carries its key material (the host-translated Psi, the
  // options fingerprint, external counters, extra index terms) alongside
  // the ReduceResult, both serialized with logic/TermIO.h. Loading parses
  // the key terms into this cache's host manager and recomputes the id
  // key exactly as lookupShared would, so a cache written by one process
  // serves hits in another: the keys are content, not ids. The id-based
  // keys of Entries are process-local; only the text form travels.

  /// Serializes every shared-mode entry (text, deterministic order).
  /// Returns the number of entries written. Thread-safe; id mode writes
  /// nothing (its keys are not portable by design).
  size_t serializeShared(std::string &Out) const;

  /// Parses entries serialized by serializeShared and merges them into
  /// this cache (which must already be in shared mode; existing entries
  /// win on key collisions). Corruption-tolerant: a malformed entry stops
  /// the load at that point -- everything already parsed stays, nothing
  /// throws, and \p CorruptNote (when non-null) records what was wrong.
  /// Returns the number of entries merged. Thread-safe.
  size_t deserializeShared(std::string_view In,
                           std::string *CorruptNote = nullptr);

  /// Number of live entries (diagnostics / cache_stats).
  size_t size() const;

private:
  /// The content identity of a shared entry, retained so the entry can be
  /// re-keyed after a round trip through disk (terms live in HostM).
  struct SharedKey {
    logic::Term Psi;
    uint64_t OptsFp = 0;
    std::vector<std::pair<logic::Term, logic::Term>> Counters;
    std::vector<logic::Term> Extra;
  };

  std::map<uint64_t, ReduceResult> Entries;
  /// Shared mode only: key material per entry, same keys as Entries.
  std::map<uint64_t, SharedKey> KeyParts;
  unsigned Hits = 0;
  unsigned Misses = 0;
  /// Non-null exactly in shared mode. The mutex guards Entries, KeyParts,
  /// the counters, and every translation touching HostM.
  std::unique_ptr<logic::TermManager> HostM;
  std::unique_ptr<std::mutex> Mu;
};

/// Reduces the satisfiability obligation \p Psi to a ground formula.
/// \p VennOracle is used to enumerate Venn regions when Opts.Card.Venn is
/// set (it must be a solver over the same TermManager, and its assertion
/// state is preserved via push/pop). \p ExternalCounters registers
/// externally named cardinalities, e.g. {n, true-body} declares
/// Def(n) = #{t | true} for a system of symbolic size n.
/// \p ExtraIndexTerms are additional instantiation terms (Tid- or
/// Int-sorted) merged into the index sets -- e.g. template-quantifier
/// instances that appear only inside placeholder substitutions and hence
/// not in \p Psi itself. \p Trace, when non-null, receives a "reduce"
/// span, a latency sample ("reduce_ms") and per-CARD-rule axiom counters.
ReduceResult
reduceToGround(logic::TermManager &M, logic::Term Psi,
               const ReduceOptions &Opts, smt::SmtSolver *VennOracle,
               const std::vector<std::pair<logic::Term, logic::Term>>
                   &ExternalCounters = {},
               const std::vector<logic::Term> &ExtraIndexTerms = {},
               obs::TraceBuffer *Trace = nullptr);

/// Memoizing front end to reduceToGround. \p Cache may be null (plain
/// call). On a hit the cached ReduceResult is returned without touching
/// the oracle; on a miss the reduction runs and the result is stored.
/// \p Trace additionally counts "reduce_cache_hits"/"reduce_cache_misses".
ReduceResult
reduceToGroundCached(ReduceCache *Cache, logic::TermManager &M,
                     logic::Term Psi, const ReduceOptions &Opts,
                     smt::SmtSolver *VennOracle,
                     const std::vector<std::pair<logic::Term, logic::Term>>
                         &ExternalCounters = {},
                     const std::vector<logic::Term> &ExtraIndexTerms = {},
                     obs::TraceBuffer *Trace = nullptr);

} // namespace engine
} // namespace sharpie

#endif // SHARPIE_ENGINE_REDUCE_H
