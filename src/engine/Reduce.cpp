//===- engine/Reduce.cpp - Obligation reduction pipeline ---------------------===//
//
// Part of sharpie. See Reduce.h.
//
//===----------------------------------------------------------------------===//

#include "engine/Reduce.h"

#include "logic/TermIO.h"
#include "logic/TermOps.h"

#include <cassert>
#include <cstdio>

using namespace sharpie;
using namespace sharpie::engine;
using logic::Kind;
using logic::Sort;
using logic::Term;
using logic::TermManager;

ReduceResult sharpie::engine::reduceToGround(
    TermManager &M, Term Psi, const ReduceOptions &Opts,
    smt::SmtSolver *VennOracle,
    const std::vector<std::pair<Term, Term>> &ExternalCounters,
    const std::vector<Term> &ExtraIndexTerms, obs::TraceBuffer *Trace) {
  obs::Span Sp(Trace, "reduce");
  auto T0 = std::chrono::steady_clock::now();
  ReduceResult Res;

  quant::SkolemResult SK = quant::skolemize(M, Psi);
  Res.Complete &= SK.Complete;

  card::CardRegistry Reg(M);
  for (const auto &[K, Body] : ExternalCounters)
    Reg.registerExternal(K, Body);
  card::AxiomEngine AE(M, Reg, Opts.Card, VennOracle);

  // Ground facts for context-aware Venn pruning: top-level conjuncts of the
  // skolemized matrix that are quantifier-, disjunction- and Card-free hold
  // in every model of the obligation.
  {
    std::vector<Term> Facts;
    std::vector<Term> Conjs = SK.Formula.kind() == Kind::And
                                  ? SK.Formula->kids()
                                  : std::vector<Term>{SK.Formula};
    for (Term C : Conjs) {
      if (logic::containsKind(C, Kind::Card) ||
          logic::containsKind(C, Kind::Forall) ||
          logic::containsKind(C, Kind::Exists) ||
          logic::containsKind(C, Kind::Or))
        continue;
      Facts.push_back(C);
    }
    AE.setContext(M.mkAnd(Facts));
  }

  // Update equations are harvested once from the skolemized matrix; the
  // update axiom guards on them, so their position (even below a
  // disjunction) does not matter for soundness.
  std::set<Term> UpdateEqSet = logic::collectSubterms(SK.Formula, [](Term T) {
    if (T.kind() != Kind::Eq)
      return false;
    return T->kid(0).kind() == Kind::Store || T->kid(1).kind() == Kind::Store;
  });
  std::vector<Term> UpdateEqs(UpdateEqSet.begin(), UpdateEqSet.end());

  // Primary index terms: the Tid variables of the obligation itself
  // (movers, head skolems, property witnesses). Axiom instances introduce
  // their own witness constants; universals *inside axioms* are expanded
  // over primary terms only -- the facts about a witness always come from
  // the obligation's own universals (which are expanded over everything),
  // never from another axiom's universal, and this asymmetry is what keeps
  // the reduction quadratic rather than cubic in the number of defs.
  std::set<Term> PrimarySet = quant::tidIndexTerms(SK.Formula);
  for (Term E : ExtraIndexTerms)
    if (E.sort() == Sort::Tid)
      PrimarySet.insert(E);
  if (PrimarySet.empty())
    PrimarySet.insert(M.freshVar("any_t", Sort::Tid));
  std::vector<Term> Primary(PrimarySet.begin(), PrimarySet.end());

  std::set<Term> IntSet = quant::intIndexTerms(SK.Formula);
  for (Term E : ExtraIndexTerms)
    if (E.sort() == Sort::Int)
      IntSet.insert(E);
  // Bare Int variables are not index terms (see intIndexTerms), but the
  // skolem constants of the obligation are pivotal instances (e.g. the
  // witness of a negated quantified invariant).
  for (Term Sk : SK.Skolems)
    if (Sk.sort() == Sort::Int)
      IntSet.insert(Sk);
  std::vector<Term> IntTerms(IntSet.begin(), IntSet.end());

  // Manifest mode (Opts.DeferManifest) runs the same fixed-point loop as
  // the full reduction -- same axiom emission order, same witness cascade,
  // same (full) instantiation domains -- but splits every conjunct stream
  // in two: CoreAxioms/Expanded go into Ground, DefAxioms and the
  // witness-binding obligation instances into the manifest. The per-round
  // state is recomputed from scratch exactly like Expanded is today, so
  // core AND manifest stays the full expansion at every round.
  std::vector<Term> CoreAxioms;
  std::vector<Term> DefAxioms;
  std::vector<Term> DeferredConjs;
  Term Expanded = SK.Formula;
  quant::ExpandOptions OrigExpand = Opts.Expand;
  if (Opts.DeferManifest) {
    OrigExpand.CollectDeferred = true;
    OrigExpand.CoreTids = &Primary;
  }
  // Collects the ground card terms of a formula into the registry.
  auto InternCards = [&](Term T) {
    std::set<Term> Cards = logic::collectSubterms(
        T, [](Term S) { return S.kind() == Kind::Card; });
    for (Term C : Cards)
      Reg.defFor(C);
  };
  for (unsigned Round = 0;; ++Round) {
    Res.NumRounds = Round + 1;
    std::vector<Term> AllAxioms = CoreAxioms;
    AllAxioms.insert(AllAxioms.end(), DefAxioms.begin(), DefAxioms.end());
    Term AxiomConj = M.mkAnd(AllAxioms);

    std::vector<Term> TidAll = Primary;
    {
      std::set<Term> WitSet = quant::tidIndexTerms(AxiomConj);
      unsigned Added = 0;
      for (Term W : WitSet) {
        if (PrimarySet.count(W))
          continue;
        if (Added++ >= Opts.MaxWitnessInstances) {
          Res.Complete = false;
          break;
        }
        TidAll.push_back(W);
      }
    }

    quant::ExpandResult ExOrig =
        quant::expandForalls(M, SK.Formula, TidAll, IntTerms, OrigExpand);
    quant::ExpandResult ExAx = quant::expandForalls(
        M, M.mkAnd(CoreAxioms), Primary, IntTerms, Opts.Expand);
    quant::ExpandResult ExDef = quant::expandForalls(
        M, M.mkAnd(DefAxioms), Primary, IntTerms, Opts.Expand);
    Res.Complete &= ExOrig.Complete && ExAx.Complete && ExDef.Complete;
    Res.NumInstances =
        ExOrig.NumInstances + ExAx.NumInstances + ExDef.NumInstances;
    Res.NumFilteredInstances = ExOrig.NumFiltered + ExAx.NumFiltered;
    Expanded = M.mkAnd(ExOrig.Formula, ExAx.Formula);
    std::vector<Term> OrigDeferred = std::move(ExOrig.Deferred);
    DeferredConjs = OrigDeferred;
    if (ExDef.Formula.kind() == Kind::And)
      for (Term K : ExDef.Formula->kids())
        DeferredConjs.push_back(K);
    else if (!DefAxioms.empty())
      DeferredConjs.push_back(ExDef.Formula);

    // Intern every cardinality term that the expansion made ground; the
    // manifest's card terms must resolve through the same registry.
    InternCards(Expanded);
    for (Term D : DeferredConjs)
      InternCards(D);

    if (Round == 0 && Opts.Card.RelevancyFilter) {
      // Lazy mode: the relevant counters are exactly the definitions in
      // play before any axiom has been emitted -- the obligation's own
      // cardinalities plus the external counters (the system size). Defs
      // minted later (axiom witnesses, store variants) are the ones the
      // filter exists to keep out.
      std::set<uint32_t> Relevant;
      for (const card::CardDef &D : Reg.defs())
        Relevant.insert(D.K.id());
      AE.setRelevant(std::move(Relevant));
    }

    size_t DefBefore = DefAxioms.size();
    std::vector<Term> NewAxioms =
        AE.emitNew(UpdateEqs, Opts.DeferManifest ? &DefAxioms : nullptr);
    if (NewAxioms.empty() && DefAxioms.size() == DefBefore)
      break;
    CoreAxioms.insert(CoreAxioms.end(), NewAxioms.begin(), NewAxioms.end());
    if (Round + 1 >= Opts.MaxRounds) {
      // Out of rounds with axioms pending: one final expansion so the new
      // axioms' quantifier-free parts are at least conjoined.
      quant::ExpandResult ExFinal = quant::expandForalls(
          M, M.mkAnd(CoreAxioms), Primary, IntTerms, Opts.Expand);
      Res.Complete &= ExFinal.Complete;
      Expanded = M.mkAnd(ExOrig.Formula, ExFinal.Formula);
      InternCards(Expanded);
      if (Opts.DeferManifest) {
        quant::ExpandResult ExFinalDef = quant::expandForalls(
            M, M.mkAnd(DefAxioms), Primary, IntTerms, Opts.Expand);
        Res.Complete &= ExFinalDef.Complete;
        DeferredConjs = std::move(OrigDeferred);
        if (ExFinalDef.Formula.kind() == Kind::And)
          for (Term K : ExFinalDef.Formula->kids())
            DeferredConjs.push_back(K);
        else if (!DefAxioms.empty())
          DeferredConjs.push_back(ExFinalDef.Formula);
        for (Term D : DeferredConjs)
          InternCards(D);
      }
      break;
    }
  }

  Res.NumAxioms = AE.stats().NumAxioms;
  Res.NumDeferred = AE.stats().NumDeferred;
  Res.NumVennRegions = AE.stats().NumVennRegions;
  Res.VennApplied = AE.stats().VennApplied;
  Res.Complete &= AE.stats().Complete;
  Res.CardVars = Reg.replacements();
  Res.Ground = logic::replaceAll(M, Expanded, Res.CardVars);
  assert(!logic::containsKind(Res.Ground, Kind::Card) &&
         "cardinality term survived the reduction");
  if (Opts.DeferManifest) {
    // Finalize the manifest: card-replace, flatten to conjuncts, drop
    // trivially-true items and items already conjoined in Ground, and
    // deduplicate (preserving order, which keys the deterministic clause
    // naming the cache relies on).
    std::set<Term> GroundConjs;
    if (Res.Ground.kind() == Kind::And)
      for (Term K : Res.Ground->kids())
        GroundConjs.insert(K);
    else
      GroundConjs.insert(Res.Ground);
    std::set<Term> Seen;
    for (Term D : DeferredConjs) {
      Term G = logic::replaceAll(M, D, Res.CardVars);
      assert(!logic::containsKind(G, Kind::Card) &&
             "cardinality term survived in the deferred manifest");
      std::vector<Term> Items =
          G.kind() == Kind::And ? G->kids() : std::vector<Term>{G};
      for (Term I : Items) {
        if (I.kind() == Kind::BoolConst && I->value())
          continue;
        if (GroundConjs.count(I) || !Seen.insert(I).second)
          continue;
        Res.Deferred.push_back(I);
      }
    }
  }
  if (Trace) {
    const card::AxiomStats &AS = AE.stats();
    Trace->counter("card_axioms.unary", AS.NumUnary);
    Trace->counter("card_axioms.pairwise", AS.NumPairwise);
    Trace->counter("card_axioms.update", AS.NumUpdate);
    Trace->counter("card_axioms.cover", AS.NumCover);
    Trace->counter("card_axioms.venn", AS.NumVennAxioms);
    Trace->counter("axioms_lazy_deferred",
                   AS.NumDeferred + Res.NumFilteredInstances);
    Trace->counter("quant_instances", Res.NumInstances);
    Trace->counter("quant_instances_filtered", Res.NumFilteredInstances);
    if (!Res.Deferred.empty())
      Trace->counter("manifest_instances",
                     static_cast<unsigned>(Res.Deferred.size()));
    // Ground-formula size proxy: the number of distinct atomic
    // comparisons after reduction, the knob that actually drives SMT
    // check cost (and the histogram operators watch for blowup).
    std::set<Term> Atoms = logic::collectSubterms(Res.Ground, [](Term T) {
      return T.kind() == Kind::Eq || T.kind() == Kind::Le ||
             T.kind() == Kind::Lt;
    });
    Trace->sample("formula_atoms", static_cast<double>(Atoms.size()));
    Trace->sample("reduce_ms",
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count());
  }
  return Res;
}

// -- Reduction cache ---------------------------------------------------------

namespace {
inline uint64_t hashMix(uint64_t H, uint64_t V) {
  // splitmix64-style mixing; good avalanche for composite keys.
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}
} // namespace

uint64_t sharpie::engine::reduceOptionsFingerprint(const ReduceOptions &O) {
  uint64_t H = 0;
  H = hashMix(H, O.Card.Pairwise);
  H = hashMix(H, O.Card.Update);
  H = hashMix(H, O.Card.Venn);
  H = hashMix(H, O.Card.RelevancyFilter);
  H = hashMix(H, O.Expand.RelevancyFilter);
  H = hashMix(H, O.Card.MaxVennRegions);
  H = hashMix(H, O.Card.MaxVennPreds);
  H = hashMix(H, O.Card.MaxDefs);
  H = hashMix(H, O.Expand.MaxInstantiations);
  H = hashMix(H, O.Expand.MaxIntTerms);
  H = hashMix(H, O.MaxRounds);
  H = hashMix(H, O.MaxWitnessInstances);
  H = hashMix(H, O.DeferManifest);
  return H;
}

namespace {
/// The id-key over pre-fingerprinted options: shared between keyFor and
/// the persistence path, which stores the fingerprint (not the options)
/// on disk.
uint64_t keyFromParts(Term Psi, uint64_t OptsFp,
                      const std::vector<std::pair<Term, Term>> &EC,
                      const std::vector<Term> &EIT) {
  uint64_t H = hashMix(0, Psi.isNull() ? ~0ULL : Psi.id());
  H = hashMix(H, OptsFp);
  for (const auto &[K, Body] : EC) {
    H = hashMix(H, K.id());
    H = hashMix(H, Body.id());
  }
  for (Term E : EIT)
    H = hashMix(H, E.id());
  return H;
}
} // namespace

uint64_t sharpie::engine::ReduceCache::keyFor(
    Term Psi, const ReduceOptions &Opts,
    const std::vector<std::pair<Term, Term>> &ExternalCounters,
    const std::vector<Term> &ExtraIndexTerms) {
  return keyFromParts(Psi, reduceOptionsFingerprint(Opts), ExternalCounters,
                      ExtraIndexTerms);
}

const ReduceResult *sharpie::engine::ReduceCache::lookup(uint64_t Key) {
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  return &It->second;
}

void sharpie::engine::ReduceCache::insert(uint64_t Key, ReduceResult R) {
  Entries.emplace(Key, std::move(R));
}

void sharpie::engine::ReduceCache::enableSharing() {
  if (HostM)
    return;
  // Id-mode entries are keyed by term ids of whichever manager produced
  // them; the shared key space is the host's, so they cannot be told
  // apart from colliding foreign keys. Drop them.
  Entries.clear();
  HostM = std::make_unique<logic::TermManager>();
  Mu = std::make_unique<std::mutex>();
}

namespace {
/// Translates the (Psi, options, externals) key into the host manager and
/// keys on the translated ids: two structurally equal obligations from
/// different managers intern to the same host nodes, so the key is
/// manager-independent and exact. Caller holds the cache mutex.
uint64_t sharedKey(logic::TermTranslator &In, Term Psi,
                   const ReduceOptions &Opts,
                   const std::vector<std::pair<Term, Term>> &ExternalCounters,
                   const std::vector<Term> &ExtraIndexTerms) {
  std::vector<std::pair<Term, Term>> HostEC;
  HostEC.reserve(ExternalCounters.size());
  for (const auto &[K, Body] : ExternalCounters)
    HostEC.emplace_back(In(K), In(Body));
  std::vector<Term> HostEIT;
  HostEIT.reserve(ExtraIndexTerms.size());
  for (Term E : ExtraIndexTerms)
    HostEIT.push_back(In(E));
  return ReduceCache::keyFor(In(Psi), Opts, HostEC, HostEIT);
}
} // namespace

std::optional<ReduceResult> sharpie::engine::ReduceCache::lookupShared(
    logic::TermManager &M, Term Psi, const ReduceOptions &Opts,
    const std::vector<std::pair<Term, Term>> &ExternalCounters,
    const std::vector<Term> &ExtraIndexTerms) {
  assert(HostM && "lookupShared before enableSharing");
  std::lock_guard<std::mutex> Lock(*Mu);
  logic::TermTranslator In(*HostM);
  uint64_t Key = sharedKey(In, Psi, Opts, ExternalCounters, ExtraIndexTerms);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Misses;
    return std::nullopt;
  }
  ++Hits;
  // Materialize in the consumer's manager. Every "!" variable in the
  // entry is a per-reduction freshVar mint (witness, skolem, card_k,
  // venn_r, ...); re-skolemizing it keeps this use disjoint from every
  // other formula living in M -- exactly what a fresh reduction would
  // have produced. The memo inside Out maps each entry variable to one
  // fresh name, so the ground and the CardVars stay mutually consistent.
  logic::TermTranslator Out(M);
  Out.MapVar = [&M](Term V) -> Term {
    const std::string &Name = V->name();
    size_t Bang = Name.find('!');
    if (Bang == std::string::npos)
      return Term();
    return M.freshVar(Name.substr(0, Bang), V.sort());
  };
  ReduceResult R = It->second;
  R.Ground = Out(R.Ground);
  R.CardVars.clear();
  for (const auto &[C, K] : It->second.CardVars)
    R.CardVars[Out(C)] = Out(K);
  // The manifest rides the same memoized translator, so its skolems stay
  // consistent with Ground and CardVars.
  R.Deferred.clear();
  for (Term D : It->second.Deferred)
    R.Deferred.push_back(Out(D));
  return R;
}

void sharpie::engine::ReduceCache::insertShared(
    Term Psi, const ReduceOptions &Opts,
    const std::vector<std::pair<Term, Term>> &ExternalCounters,
    const std::vector<Term> &ExtraIndexTerms, const ReduceResult &R) {
  assert(HostM && "insertShared before enableSharing");
  std::lock_guard<std::mutex> Lock(*Mu);
  logic::TermTranslator In(*HostM);
  uint64_t Key = sharedKey(In, Psi, Opts, ExternalCounters, ExtraIndexTerms);
  if (Entries.count(Key))
    return;
  ReduceResult Host = R;
  Host.Ground = In(R.Ground);
  Host.CardVars.clear();
  for (const auto &[C, K] : R.CardVars)
    Host.CardVars[In(C)] = In(K);
  Host.Deferred.clear();
  for (Term D : R.Deferred)
    Host.Deferred.push_back(In(D));
  Entries.emplace(Key, std::move(Host));
  // Retain the content identity so the entry can be re-keyed after a
  // round trip through the persistent store (the translator memoizes, so
  // re-running it over the key terms is a lookup, not a rebuild).
  SharedKey SK;
  SK.Psi = In(Psi);
  SK.OptsFp = reduceOptionsFingerprint(Opts);
  for (const auto &[K2, Body] : ExternalCounters)
    SK.Counters.emplace_back(In(K2), In(Body));
  for (Term E : ExtraIndexTerms)
    SK.Extra.push_back(In(E));
  KeyParts.emplace(Key, std::move(SK));
}

size_t sharpie::engine::ReduceCache::size() const {
  if (Mu) {
    std::lock_guard<std::mutex> Lock(*Mu);
    return Entries.size();
  }
  return Entries.size();
}

unsigned sharpie::engine::ReduceCache::hits() const {
  if (Mu) {
    std::lock_guard<std::mutex> Lock(*Mu);
    return Hits;
  }
  return Hits;
}

unsigned sharpie::engine::ReduceCache::misses() const {
  if (Mu) {
    std::lock_guard<std::mutex> Lock(*Mu);
    return Misses;
  }
  return Misses;
}

size_t sharpie::engine::ReduceCache::serializeShared(std::string &Out) const {
  if (!HostM)
    return 0;
  std::lock_guard<std::mutex> Lock(*Mu);
  size_t N = 0;
  char Buf[128];
  for (const auto &[Key, R] : Entries) {
    auto KP = KeyParts.find(Key);
    if (KP == KeyParts.end())
      continue; // Entry without key material cannot be re-keyed; skip.
    const SharedKey &SK = KP->second;
    Out += "entry v1\n";
    std::snprintf(Buf, sizeof(Buf), "fp %llx\n",
                  static_cast<unsigned long long>(SK.OptsFp));
    Out += Buf;
    Out += "psi " + logic::serializeTerm(SK.Psi) + "\n";
    Out += "nec " + std::to_string(SK.Counters.size()) + "\n";
    for (const auto &[K2, Body] : SK.Counters) {
      Out += "eck " + logic::serializeTerm(K2) + "\n";
      Out += "ecb " + logic::serializeTerm(Body) + "\n";
    }
    Out += "neit " + std::to_string(SK.Extra.size()) + "\n";
    for (Term E : SK.Extra)
      Out += "eit " + logic::serializeTerm(E) + "\n";
    Out += "ground " + logic::serializeTerm(R.Ground) + "\n";
    // The manifest lines are optional (absent for non-manifest entries),
    // so caches written before manifest mode existed still parse.
    if (!R.Deferred.empty()) {
      Out += "ndef " + std::to_string(R.Deferred.size()) + "\n";
      for (Term D : R.Deferred)
        Out += "def " + logic::serializeTerm(D) + "\n";
    }
    std::snprintf(Buf, sizeof(Buf), "meta %d %u %u %u %u %u %u %d\n",
                  R.Complete ? 1 : 0, R.NumRounds, R.NumAxioms, R.NumInstances,
                  R.NumDeferred, R.NumFilteredInstances, R.NumVennRegions,
                  R.VennApplied ? 1 : 0);
    Out += Buf;
    Out += "ncv " + std::to_string(R.CardVars.size()) + "\n";
    for (const auto &[C, K2] : R.CardVars) {
      Out += "cvk " + logic::serializeTerm(C) + "\n";
      Out += "cvv " + logic::serializeTerm(K2) + "\n";
    }
    Out += "end\n";
    ++N;
  }
  return N;
}

namespace {
/// Line cursor over the serialized cache text. Each line is "tag rest".
struct LineCursor {
  std::string_view In;
  size_t Pos = 0;

  bool next(std::string_view &Tag, std::string_view &Rest) {
    if (Pos >= In.size())
      return false;
    size_t Eol = In.find('\n', Pos);
    std::string_view Line =
        In.substr(Pos, Eol == std::string_view::npos ? Eol : Eol - Pos);
    Pos = Eol == std::string_view::npos ? In.size() : Eol + 1;
    size_t Sp = Line.find(' ');
    Tag = Line.substr(0, Sp);
    Rest = Sp == std::string_view::npos ? std::string_view() : Line.substr(Sp + 1);
    return true;
  }
};

bool parseCount(std::string_view S, size_t Max, size_t &N) {
  if (S.empty() || S.size() > 9 ||
      S.find_first_not_of("0123456789") != std::string_view::npos)
    return false;
  N = 0;
  for (char C : S)
    N = N * 10 + static_cast<size_t>(C - '0');
  return N <= Max;
}
} // namespace

size_t sharpie::engine::ReduceCache::deserializeShared(
    std::string_view In, std::string *CorruptNote) {
  if (!HostM) {
    if (CorruptNote)
      *CorruptNote = "cache not in shared mode";
    return 0;
  }
  std::lock_guard<std::mutex> Lock(*Mu);
  LineCursor LC{In};
  size_t Merged = 0;
  std::string_view Tag, Rest;
  auto Corrupt = [&](const std::string &Why) {
    if (CorruptNote)
      *CorruptNote = Why + " (entry " + std::to_string(Merged + 1) + ")";
    return Merged;
  };
  // Every term parse goes through the sort-validating reader; a failure
  // anywhere abandons the rest of the stream but keeps prior entries --
  // a truncated or garbage tail costs hits, never correctness.
  auto ParseTerm = [&](std::string_view Text, bool AllowNull,
                       Term &T) -> bool {
    std::string TErr;
    T = logic::deserializeTerm(*HostM, Text, &TErr);
    return !T.isNull() || (AllowNull && TErr.empty());
  };
  while (LC.next(Tag, Rest)) {
    if (Tag.empty() && Rest.empty())
      continue; // Blank line between entries.
    if (Tag != "entry" || Rest != "v1")
      return Corrupt("expected 'entry v1'");
    SharedKey SK;
    ReduceResult R;
    if (!LC.next(Tag, Rest) || Tag != "fp" || Rest.empty() ||
        Rest.size() > 16 ||
        Rest.find_first_not_of("0123456789abcdef") != std::string_view::npos)
      return Corrupt("bad fp line");
    SK.OptsFp = 0;
    for (char C : Rest)
      SK.OptsFp = SK.OptsFp * 16 +
                  static_cast<uint64_t>(C <= '9' ? C - '0' : C - 'a' + 10);
    if (!LC.next(Tag, Rest) || Tag != "psi" || !ParseTerm(Rest, false, SK.Psi))
      return Corrupt("bad psi term");
    size_t NEc = 0;
    if (!LC.next(Tag, Rest) || Tag != "nec" || !parseCount(Rest, 4096, NEc))
      return Corrupt("bad nec count");
    for (size_t I = 0; I < NEc; ++I) {
      Term K2, Body;
      if (!LC.next(Tag, Rest) || Tag != "eck" || !ParseTerm(Rest, false, K2))
        return Corrupt("bad eck term");
      if (!LC.next(Tag, Rest) || Tag != "ecb" || !ParseTerm(Rest, false, Body))
        return Corrupt("bad ecb term");
      SK.Counters.emplace_back(K2, Body);
    }
    size_t NEit = 0;
    if (!LC.next(Tag, Rest) || Tag != "neit" || !parseCount(Rest, 65536, NEit))
      return Corrupt("bad neit count");
    for (size_t I = 0; I < NEit; ++I) {
      Term E;
      if (!LC.next(Tag, Rest) || Tag != "eit" || !ParseTerm(Rest, false, E))
        return Corrupt("bad eit term");
      SK.Extra.push_back(E);
    }
    if (!LC.next(Tag, Rest) || Tag != "ground" ||
        !ParseTerm(Rest, false, R.Ground))
      return Corrupt("bad ground term");
    if (!LC.next(Tag, Rest))
      return Corrupt("truncated after ground");
    if (Tag == "ndef") {
      size_t NDef = 0;
      if (!parseCount(Rest, 1 << 20, NDef))
        return Corrupt("bad ndef count");
      for (size_t I = 0; I < NDef; ++I) {
        Term D;
        if (!LC.next(Tag, Rest) || Tag != "def" || !ParseTerm(Rest, false, D))
          return Corrupt("bad def term");
        R.Deferred.push_back(D);
      }
      if (!LC.next(Tag, Rest))
        return Corrupt("truncated after manifest");
    }
    if (Tag != "meta")
      return Corrupt("bad meta line");
    {
      int Complete = 0, VennApplied = 0;
      unsigned Rounds = 0, Axioms = 0, Insts = 0, Deferred = 0, Filtered = 0,
               VennRegions = 0;
      if (std::sscanf(std::string(Rest).c_str(), "%d %u %u %u %u %u %u %d",
                      &Complete, &Rounds, &Axioms, &Insts, &Deferred,
                      &Filtered, &VennRegions, &VennApplied) != 8)
        return Corrupt("bad meta fields");
      R.Complete = Complete != 0;
      R.NumRounds = Rounds;
      R.NumAxioms = Axioms;
      R.NumInstances = Insts;
      R.NumDeferred = Deferred;
      R.NumFilteredInstances = Filtered;
      R.NumVennRegions = VennRegions;
      R.VennApplied = VennApplied != 0;
    }
    size_t NCv = 0;
    if (!LC.next(Tag, Rest) || Tag != "ncv" || !parseCount(Rest, 65536, NCv))
      return Corrupt("bad ncv count");
    for (size_t I = 0; I < NCv; ++I) {
      Term C, K2;
      if (!LC.next(Tag, Rest) || Tag != "cvk" || !ParseTerm(Rest, false, C))
        return Corrupt("bad cvk term");
      if (!LC.next(Tag, Rest) || Tag != "cvv" || !ParseTerm(Rest, false, K2))
        return Corrupt("bad cvv term");
      R.CardVars[C] = K2;
    }
    if (!LC.next(Tag, Rest) || Tag != "end")
      return Corrupt("missing end marker");
    uint64_t Key = keyFromParts(SK.Psi, SK.OptsFp, SK.Counters, SK.Extra);
    if (!Entries.count(Key)) {
      Entries.emplace(Key, std::move(R));
      KeyParts.emplace(Key, std::move(SK));
      ++Merged;
    }
  }
  return Merged;
}

ReduceResult sharpie::engine::reduceToGroundCached(
    ReduceCache *Cache, TermManager &M, Term Psi, const ReduceOptions &Opts,
    smt::SmtSolver *VennOracle,
    const std::vector<std::pair<Term, Term>> &ExternalCounters,
    const std::vector<Term> &ExtraIndexTerms, obs::TraceBuffer *Trace) {
  if (!Cache)
    return reduceToGround(M, Psi, Opts, VennOracle, ExternalCounters,
                          ExtraIndexTerms, Trace);
  if (Cache->isShared()) {
    if (std::optional<ReduceResult> Hit = Cache->lookupShared(
            M, Psi, Opts, ExternalCounters, ExtraIndexTerms)) {
      if (Trace)
        Trace->counter("reduce_cache_hits", 1);
      return std::move(*Hit);
    }
    if (Trace)
      Trace->counter("reduce_cache_misses", 1);
    ReduceResult R = reduceToGround(M, Psi, Opts, VennOracle,
                                    ExternalCounters, ExtraIndexTerms, Trace);
    Cache->insertShared(Psi, Opts, ExternalCounters, ExtraIndexTerms, R);
    return R;
  }
  uint64_t Key =
      ReduceCache::keyFor(Psi, Opts, ExternalCounters, ExtraIndexTerms);
  if (const ReduceResult *Hit = Cache->lookup(Key)) {
    if (Trace)
      Trace->counter("reduce_cache_hits", 1);
    return *Hit;
  }
  if (Trace)
    Trace->counter("reduce_cache_misses", 1);
  ReduceResult R = reduceToGround(M, Psi, Opts, VennOracle, ExternalCounters,
                                  ExtraIndexTerms, Trace);
  Cache->insert(Key, R);
  return R;
}
