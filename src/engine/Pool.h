//===- engine/Pool.h - Fixed thread pool and cancellation -------*- C++ -*-===//
//
// Part of sharpie. A small fixed-size thread pool used by the parallel
// set-tuple search (synth/Synth.cpp): callers submit jobs, wait for the
// batch to drain, and signal cooperative cancellation through a shared
// token. Workers in this codebase own all their state (TermManager, SMT
// solver, reduction caches), so the pool needs no affinity or stealing
// machinery beyond a shared queue -- load balancing happens at the job
// level via an atomic work cursor.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_ENGINE_POOL_H
#define SHARPIE_ENGINE_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace sharpie {
namespace engine {

/// Cooperative cancellation flag shared between a driver and its workers.
/// Cancellation is one-way and sticky.
class CancellationToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// A fixed pool of threads draining a shared job queue. A job that
/// throws does not kill its worker: the exception is contained, counted,
/// and the first error message is recorded for the driver to report.
/// The destructor waits for queued jobs to finish.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues \p Job for execution on some pool thread.
  void submit(std::function<void()> Job);

  /// Blocks until every submitted job has completed.
  void wait();

  /// Number of jobs that escaped with an exception.
  uint64_t jobFailures() const { return Failures.load(std::memory_order_relaxed); }

  /// Jobs currently queued or running -- a point-in-time depth gauge for
  /// monitoring; racy by nature, never used for synchronization.
  unsigned pending() const {
    std::lock_guard<std::mutex> L(Mu);
    return Pending;
  }

  /// what() of the first escaped exception ("" when none, "unknown
  /// exception" for non-std throws). Read after wait().
  std::string firstJobError() const;

  /// The effective worker count for a requested \p NumWorkers: 0 means
  /// "one per hardware thread", anything else is taken literally.
  static unsigned effectiveWorkers(unsigned NumWorkers);

private:
  void workerLoop();

  std::vector<std::thread> Threads;
  std::queue<std::function<void()>> Jobs;
  std::atomic<uint64_t> Failures{0};
  std::string FirstError; ///< Guarded by Mu.
  mutable std::mutex Mu;
  std::condition_variable JobReady;  ///< Signals workers: job or shutdown.
  std::condition_variable AllIdle;   ///< Signals wait(): queue drained.
  unsigned Pending = 0;              ///< Queued + running jobs.
  bool Shutdown = false;
};

} // namespace engine
} // namespace sharpie

#endif // SHARPIE_ENGINE_POOL_H
