//===- synth/Stats.cpp - Stats rendering shared by the drivers ----------------===//
//
// Part of sharpie. Renders SynthStats (including the tracer's merged
// metrics) as a human table and as JSON fields. Both return strings: src/
// never writes to stdout/stderr itself (enforced by the logging lint
// test); the CLI drivers decide where the rendering goes.
//
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "obs/Export.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

using namespace sharpie;
using namespace sharpie::synth;

namespace {

__attribute__((format(printf, 2, 3))) void appendf(std::string &Out,
                                                   const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

} // namespace

std::string sharpie::synth::renderStatsTable(const SynthStats &S,
                                             double WallSeconds) {
  std::string Out;
  appendf(Out, "  search    tuples=%u smt_checks=%u workers=%u util=%.2f\n",
          S.TuplesTried, S.SmtChecks, S.NumWorkers, S.WorkerUtilization);
  appendf(Out, "  atoms     pool=%u prefilter=%u invariant=%u\n",
          S.AtomsInPool, S.AtomsAfterPrefilter, S.AtomsInInvariant);
  appendf(Out, "  explicit  states=%u\n", S.ExplicitStates);
  appendf(Out, "  cache     hits=%u misses=%u\n", S.CacheHits, S.CacheMisses);
  appendf(Out,
          "  resil     retries=%llu fallbacks=%llu faults=%llu skipped=%u\n",
          static_cast<unsigned long long>(S.Retries),
          static_cast<unsigned long long>(S.Fallbacks),
          static_cast<unsigned long long>(S.FaultsInjected), S.TuplesSkipped);
  appendf(Out,
          "  unknowns  timeout=%llu incomplete=%llu exceptions=%llu/%u\n",
          static_cast<unsigned long long>(S.UnknownTimeouts),
          static_cast<unsigned long long>(S.UnknownIncomplete),
          static_cast<unsigned long long>(S.SolverExceptions),
          S.WorkerExceptions);

  struct PhaseRow {
    const char *Name;
    double Seconds;
  } Phases[] = {
      {"cache_lookup", S.CacheLookupSeconds},
      {"explicit", S.ExplicitSeconds},
      {"enumerate", S.EnumerateSeconds},
      {"prefilter", S.PrefilterSeconds},
      {"reduce", S.ReduceSeconds},
      {"houdini", S.HoudiniSeconds},
      {"recheck", S.RecheckSeconds},
  };
  // Phase times are busy (per-worker) seconds; with several workers they
  // legitimately sum past the wall clock, so the share is vs. worker-time.
  double Denom = WallSeconds * std::max(1u, S.NumWorkers);
  appendf(Out, "  phase busy seconds (wall %.2fs, %u worker%s)\n", WallSeconds,
          S.NumWorkers, S.NumWorkers == 1 ? "" : "s");
  double Accounted = 0;
  for (const PhaseRow &P : Phases) {
    appendf(Out, "    %-12s %8.3fs %5.1f%%\n", P.Name, P.Seconds,
            Denom > 0 ? 100.0 * P.Seconds / Denom : 0.0);
    Accounted += P.Seconds;
  }
  appendf(Out, "    %-12s %8.3fs %5.1f%%\n", "(total)", Accounted,
          Denom > 0 ? 100.0 * Accounted / Denom : 0.0);

  if (!S.Metrics.Counters.empty()) {
    Out += "  counters\n";
    for (const auto &[Name, V] : S.Metrics.Counters)
      appendf(Out, "    %-28s %lld\n", Name.c_str(),
              static_cast<long long>(V));
  }
  if (!S.Metrics.Hists.empty()) {
    Out += "  histograms (ms)\n";
    appendf(Out, "    %-20s %8s %9s %9s %9s %9s %9s\n", "", "count", "mean",
            "p50", "p90", "p99", "max");
    for (const auto &[Name, H] : S.Metrics.Hists)
      appendf(Out, "    %-20s %8llu %9.3f %9.3f %9.3f %9.3f %9.3f\n",
              Name.c_str(), static_cast<unsigned long long>(H.Count),
              H.mean(), H.P50, H.P90, H.P99, H.Max);
  }
  return Out;
}

std::string sharpie::synth::renderInconclusiveReport(const SynthResult &Res) {
  const SynthStats &S = Res.Stats;
  std::string Out;
  appendf(Out,
          "failure classes: unknown_timeouts=%llu unknown_incomplete=%llu"
          " solver_exceptions=%llu worker_exceptions=%u"
          " tuples_skipped=%u faults_injected=%llu\n",
          static_cast<unsigned long long>(S.UnknownTimeouts),
          static_cast<unsigned long long>(S.UnknownIncomplete),
          static_cast<unsigned long long>(S.SolverExceptions),
          S.WorkerExceptions, S.TuplesSkipped,
          static_cast<unsigned long long>(S.FaultsInjected));
  if (!Res.Best)
    return Out;
  const PartialCandidate &P = *Res.Best;
  appendf(Out, "best candidate (tuple rank %u; failed on %s):\n", P.Rank,
          P.FailedOn.c_str());
  for (const std::string &SB : P.SetBodies)
    appendf(Out, "  #{t | %s}\n", SB.c_str());
  for (const std::string &A : P.Atoms)
    appendf(Out, "  %s\n", A.c_str());
  Out += "clauses discharged:";
  for (const std::string &C : P.VerifiedClauses)
    Out += " " + C;
  Out += "\n";
  return Out;
}

std::string sharpie::synth::statsJsonFields(const SynthStats &S) {
  std::string Out;
  appendf(Out, "\"tuples_tried\": %u, \"smt_checks\": %u", S.TuplesTried,
          S.SmtChecks);
  appendf(Out, ", \"atoms_pool\": %u, \"atoms_prefilter\": %u"
               ", \"atoms_invariant\": %u",
          S.AtomsInPool, S.AtomsAfterPrefilter, S.AtomsInInvariant);
  appendf(Out, ", \"explicit_states\": %u", S.ExplicitStates);
  appendf(Out, ", \"workers\": %u, \"worker_utilization\": %.3f",
          S.NumWorkers, S.WorkerUtilization);
  appendf(Out, ", \"cache_hits\": %u, \"cache_misses\": %u", S.CacheHits,
          S.CacheMisses);
  appendf(Out,
          ", \"retries\": %llu, \"fallbacks\": %llu"
          ", \"faults_injected\": %llu, \"tuples_skipped\": %u"
          ", \"unknown_timeouts\": %llu, \"unknown_incomplete\": %llu"
          ", \"solver_exceptions\": %llu, \"worker_exceptions\": %u",
          static_cast<unsigned long long>(S.Retries),
          static_cast<unsigned long long>(S.Fallbacks),
          static_cast<unsigned long long>(S.FaultsInjected), S.TuplesSkipped,
          static_cast<unsigned long long>(S.UnknownTimeouts),
          static_cast<unsigned long long>(S.UnknownIncomplete),
          static_cast<unsigned long long>(S.SolverExceptions),
          S.WorkerExceptions);
  appendf(Out,
          ", \"explicit_seconds\": %.3f, \"enumerate_seconds\": %.3f"
          ", \"prefilter_seconds\": %.3f, \"reduce_seconds\": %.3f"
          ", \"houdini_seconds\": %.3f, \"recheck_seconds\": %.3f",
          S.ExplicitSeconds, S.EnumerateSeconds, S.PrefilterSeconds,
          S.ReduceSeconds, S.HoudiniSeconds, S.RecheckSeconds);
  for (const auto &[Name, V] : S.Metrics.Counters)
    appendf(Out, ", \"ctr_%s\": %lld", obs::jsonEscape(Name).c_str(),
            static_cast<long long>(V));
  for (const auto &[Name, H] : S.Metrics.Hists)
    appendf(Out,
            ", \"hist_%s\": {\"count\": %llu, \"min\": %.3f, \"max\": %.3f"
            ", \"mean\": %.3f, \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f}",
            obs::jsonEscape(Name).c_str(),
            static_cast<unsigned long long>(H.Count), H.Min, H.Max, H.mean(),
            H.P50, H.P90, H.P99);
  return Out;
}
