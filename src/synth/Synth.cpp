//===- synth/Synth.cpp - The #Pi invariant synthesis driver -------------------===//
//
// Part of sharpie. See Synth.h.
//
// The set-tuple search (the outer loop of paper Fig. 5) runs either
// serially or across a fixed worker pool (SynthOptions::NumWorkers). Each
// worker owns a full private copy of the world -- TermManager, cloned
// ParamSystem, SMT solver, reduction cache -- so the hash-consing tables
// and solver state need no locks; the only shared mutable state is the
// atomic tuple cursor, the best-verified-rank watermark, and the
// mutex-guarded per-rank outcome table. Results merge by rank: the
// lowest-ranked verified tuple wins, exactly what the serial search would
// have returned, so the invariant is independent of thread timing (see
// DESIGN.md, "Parallel search & determinism").
//
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "engine/Pool.h"
#include "logic/TermOps.h"
#include "quant/Quant.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <set>

using namespace sharpie;
using namespace sharpie::synth;
using logic::Kind;
using logic::Sort;
using logic::Subst;
using logic::Term;
using logic::TermManager;
using smt::SatResult;

Formals sharpie::synth::formalsFor(TermManager &M,
                                   const ShapeTemplate &Shape) {
  return makeFormals(M, Shape); // Deterministic names: same vars each call.
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// One instantiated occurrence of the unknown inv_0 in a reduced clause.
///
/// The invariant is split as  InvGlobal AND forall q: QGuard -> (meas AND
/// inv_0), where InvGlobal collects the atoms mentioning neither template
/// quantifiers nor counters (e.g. "n >= 2"); without the split such facts
/// would be trapped under the quantifier guard and unusable to discharge
/// the guard itself.
struct PlaceholderInst {
  Term P;          ///< Opaque Bool variable in the ground formula.
  Subst AtomSubst; ///< Formals (and state for post occurrences) -> actuals.
  bool IsHead;     ///< The skolemized head occurrence (one per clause).
  bool GlobalOnly; ///< Stands for InvGlobal rather than inv_0.
};

struct ReducedClause {
  std::string Name;
  Term Ground;
  std::vector<PlaceholderInst> Insts;
  bool HasHead = false;
  bool IsSafety = false;
  /// The unreduced clause conjunction and its extra index terms, retained
  /// so the incremental path can escalate from the lazy (relevancy-
  /// filtered) reduction to the full one on demand.
  Term Raw;
  std::vector<Term> Extra;
  /// True when the lazy reduction deferred axioms or instances, i.e.
  /// Ground is a weakening of the full reduction: a Sat answer must be
  /// confirmed against the full reduction before a model is trusted.
  bool LazyWeakened = false;
  /// Refine mode: the deferred-instance manifest of the clause's reduction
  /// (engine::ReduceResult::Deferred). Ground AND every entry is the full
  /// reduction; entries are asserted individually as candidate models
  /// violate them (incCheck's refinement loop).
  std::vector<Term> Deferred;
  /// Quantifier instances the reduction expanded into Ground; summed per
  /// Houdini check into the instantiations_per_check histogram.
  uint64_t NumInstances = 0;
};

class Synthesizer {
public:
  Synthesizer(sys::ParamSystem &Sys, const SynthOptions &Opts)
      : Sys(Sys), M(Sys.manager()), Opts(Opts),
        F(makeFormals(M, Opts.Shape)),
        Deadline(Opts.TimeBudgetSeconds > 0
                     ? std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   Opts.TimeBudgetSeconds))
                     : std::chrono::steady_clock::time_point::max()) {
    if (Opts.Supervise.Enabled && Opts.Faults && !Opts.Faults->empty())
      Faults.emplace(*Opts.Faults);
    // Bound here (not in run()) so parallel workers -- which are driven
    // through tryTuple directly -- share a caller-provided cache too.
    if (Opts.ReuseReduceCache)
      RC = Opts.ReuseReduceCache;
  }

  // External cancellation rides the budget path: every "did the budget
  // run out?" poll also observes the caller's token, so a cancelled run
  // winds down exactly like a budget-exhausted one.
  bool outOfTime() const {
    if (Opts.Cancel && Opts.Cancel->cancelled())
      return true;
    return std::chrono::steady_clock::now() > Deadline;
  }

  /// True when this tuple attempt should stop early: the time budget ran
  /// out, or (parallel search) a lower-ranked tuple already verified.
  bool aborted() const {
    return outOfTime() || (ExternAbort && ExternAbort());
  }

  SynthResult run();

private:
  /// Everything a finished tuple attempt produces, in this synthesizer's
  /// own TermManager.
  struct TupleOutcome {
    bool Verified = false;
    std::vector<Term> Atoms;
    Term Invariant;
    std::string Why;
    /// Near-miss data: Houdini reached a fixpoint that discharged every
    /// inductiveness clause, but the safety check failed or went Unknown.
    bool HasPartial = false;
    std::vector<Term> PartialAtoms;
    std::vector<std::string> VerifiedClauses;
    std::string FailedOn;
  };

  // -- Search-space assembly -------------------------------------------------
  std::vector<std::vector<size_t>> rankTuples(
      const std::vector<SetCandidate> &Cands) const;
  std::vector<Term> prefilterAtoms(const std::vector<Term> &Pool,
                                   const std::vector<Term> &SetBodies,
                                   const std::vector<sys::ParamSystem::State>
                                       &States) const;

  // -- Per-tuple pipeline (prefilter -> reduce -> Houdini -> recheck) -----------
  TupleOutcome tryTuple(const std::vector<Term> &SetBodies,
                        const std::vector<Term> &Pool,
                        const std::vector<sys::ParamSystem::State> &States);
  /// tryTuple plus the resilience envelope: fault-injection scoping for
  /// rank \p Rank, the "worker_task" injection site, and exception
  /// containment -- a throwing attempt marks the tuple skipped (with the
  /// reason recorded) and the search continues with a fresh solver.
  TupleOutcome attemptTuple(size_t Rank, const std::vector<Term> &SetBodies,
                            const std::vector<Term> &Pool,
                            const std::vector<sys::ParamSystem::State>
                                &States);

  // -- Serial / parallel drivers over the ranked tuples ------------------------
  void runSerial(const std::vector<std::vector<Term>> &TupleBodies,
                 const std::vector<Term> &Pool,
                 const std::vector<sys::ParamSystem::State> &States,
                 SynthResult &Res);
  void runParallel(unsigned Workers,
                   const std::vector<std::vector<Term>> &TupleBodies,
                   const std::vector<Term> &Pool,
                   const std::vector<sys::ParamSystem::State> &States,
                   SynthResult &Res);

  // -- Clause construction (INSTQ + measurements + placeholders) ---------------
  /// Deterministic clause-local variables: the same (clause, position)
  /// always names the same variable, so rebuilding a clause for the same
  /// set tuple yields the pointer-identical formula and the reduction
  /// cache can key on the term id. '$' keeps the namespace disjoint from
  /// protocol variables and freshVar's "!" names.
  Term clauseVar(const char *Base, const std::string &CN, unsigned &Ctr,
                 Sort S) {
    return M.mkVar(std::string(Base) + "$" + CN + "$" + std::to_string(Ctr++),
                   S);
  }
  Term cardAt(const std::vector<Term> &SetBodies, size_t I,
              const std::vector<Term> &Sigma, bool Post) const;
  Term qGuardAt(const std::vector<Term> &Sigma) const;
  void addInvInstance(const std::vector<Term> &SetBodies,
                      const std::vector<Term> &Sigma, bool Post, bool IsHead,
                      const std::string &CN, unsigned &Ctr,
                      std::vector<Term> &Conj,
                      std::vector<PlaceholderInst> &Insts);
  std::vector<std::vector<Term>>
  bodyInstances(const std::vector<Term> &HeadSk, bool IsTrans,
                const std::vector<Term> &ExtraTids,
                const std::vector<Term> &ExtraInts) const;
  std::vector<ReducedClause>
  buildClauses(const std::vector<Term> &SetBodies, smt::SmtSolver *Oracle);

  // -- SOLVE (Houdini over the atom pool) ----------------------------------------
  bool houdini(const std::vector<ReducedClause> &Clauses,
               std::vector<Term> &Cand, TupleOutcome &Out);
  bool isGlobalAtom(logic::Term A) const;
  Term substitutedClause(const ReducedClause &C,
                         const std::vector<Term> &Cand) const;

  void minimizeAtoms(const std::vector<ReducedClause> &Clauses,
                     std::vector<Term> &Cand);
  Term closedInvariant(const std::vector<Term> &SetBodies,
                       const std::vector<Term> &Atoms) const;
  bool recheck(Term Inv, const std::vector<sys::ParamSystem::State> &States,
               std::string &Why);

  // -- Incremental assumption-based solving (Opts.Incremental) -----------------
  //
  // Per tuple, ALL reduced clauses are asserted ONCE into one merged
  // solver context, each behind a selector literal (sel[i] -> ground_i),
  // with every placeholder tied to per-atom indicator variables
  // (ind[k] <=> atom k is live) and Or(sel_0..sel_n) asserted. A Houdini
  // iteration is then ONE checkAssuming over the indicator literals:
  // Unsat means no clause -- the safety clause included -- has a
  // counterexample under the live set, so the fixpoint and the safety
  // verdict arrive in a single answer, while a Sat model names the
  // violated clauses through their selectors and refutes atoms in every
  // one of them at once. A model that violates the safety clause ends the
  // tuple immediately: the candidate occurs only positively in the safety
  // body, so that counterexample survives every later drop and the
  // eventual fixpoint would reject the tuple anyway. Selectors are
  // asserted, never assumed, so unsat cores range over pure indicator
  // literals; while the recorded core is consistent with the live set the
  // merged context is provably still Unsat and minimize accepts removals
  // without a solver call ("core_drops"). Clauses are built with the lazy
  // (relevancy-filtered) reduction; a model that picks a weakened clause
  // may be spurious, so that clause escalates once to its full reduction
  // before any model is trusted -- every accepting answer is an Unsat
  // (sound under weakening) and every counterexample satisfies the full
  // ground, which is why verdicts and invariants match the monolithic
  // path.
  struct IncCtx {
    bool Active = false;
    std::vector<Term> Atoms; ///< Candidate pool, fixing indicator indices.
    std::vector<Term> Ind;   ///< Ind[k]: atom k is live.
    std::map<Term, size_t> IndIndex; ///< Ind[k] -> k, for core mapping.
    std::vector<char> Live;
    /// The tuple's merged context: every clause ground behind its
    /// selector, the indicator-guarded placeholder definitions, and the
    /// selector disjunction, asserted once.
    std::unique_ptr<smt::SmtSolver> S;
    std::vector<Term> Sel;          ///< Sel[i] guards clause i's ground.
    std::vector<char> Lazy;         ///< Clause i's reduction was weakened.
    std::vector<char> FullAsserted; ///< Clause i escalated to full.
    /// Refine mode: InstSel[i] guards clause i's refinement conjuncts
    /// (houdini$inst$<i>). Sel[i] -> InstSel[i] is asserted at setup, so
    /// manifest items asserted as InstSel[i] -> item bind exactly when the
    /// clause is selected and retract with it.
    std::vector<Term> InstSel;
    /// Refine mode: DefAsserted[i][j] marks clause i's manifest entry j as
    /// already asserted into the live context.
    std::vector<std::vector<char>> DefAsserted;
    size_t SafetyIdx = static_cast<size_t>(-1);
    /// Unsat core of the last Unsat answer, as (atom index, assumed
    /// polarity) pairs over the indicator literals. Empty is valid (the
    /// guarded grounds alone are Unsat) and stays consistent forever.
    std::vector<std::pair<size_t, bool>> Core;
    bool CoreKnown = false;
    unsigned Checks = 0; ///< Checks answered by this context.
    /// Quantifier instances asserted into the merged context so far
    /// (lazy grounds at setup plus full-reduction escalations); sampled
    /// per incCheck as instantiations_per_check.
    uint64_t Instances = 0;
    smt::SmtSolver *Oracle = nullptr; ///< Borrowed, for escalation reduces.
  };

  /// The lazy variant of Opts.Reduce: relevancy-filtered CARD axioms and
  /// quantifier instances (see card::AxiomOptions::RelevancyFilter).
  engine::ReduceOptions lazyReduceOptions() const {
    engine::ReduceOptions RO = Opts.Reduce;
    RO.Card.RelevancyFilter = true;
    RO.Expand.RelevancyFilter = true;
    return RO;
  }
  /// The manifest variant of Opts.Reduce for the refinement loop: the full
  /// pipeline with witness-bearing conjuncts routed into a deferred
  /// manifest instead of being skipped, so Ground AND the manifest equals
  /// the full reduction (engine::ReduceOptions::DeferManifest).
  engine::ReduceOptions refineReduceOptions() const {
    engine::ReduceOptions RO = Opts.Reduce;
    RO.DeferManifest = true;
    return RO;
  }
  void incSetup(const std::vector<ReducedClause> &Clauses,
                const std::vector<Term> &Cand, smt::SmtSolver *Oracle);
  /// Destroys the merged context and forgets the tuple's state.
  /// Idempotent; called on every tryTuple exit path and by resetSolver.
  void incTeardown();
  std::vector<Term> incAssumptions() const;
  bool coreConsistent() const;
  void incRecordCore();
  void ensureFullAsserted(const ReducedClause &C, size_t CI);
  /// Refine mode: asserts every not-yet-asserted manifest entry of clause
  /// \p CI -- the full grounding, reached without a re-reduction because
  /// core AND manifest is the full reduction by construction.
  void assertAllDeferred(const ReducedClause &C, size_t CI);
  /// One refinement round against a surviving candidate model: evaluates
  /// every selected, still-lazy clause's manifest under \p Model and
  /// asserts exactly the violated entries (a clause whose model evaluation
  /// fails degrades to assertAllDeferred -- never an unsound keep).
  /// Returns true when anything was asserted (the model is refuted and the
  /// caller must re-check); false certifies the model against the full
  /// reduction of every selected clause.
  bool refineAgainstModel(const std::vector<ReducedClause> &Clauses,
                          smt::SmtModel &Model, unsigned Round);
  /// One assumption-based check of the merged context, with the
  /// lazy->full escalation loop folded in: an Unsat records the core; a
  /// returned Sat comes with a model in which no selected clause's ground
  /// is a weakening (each was escalated if needed), so the model is a
  /// genuine counterexample for every clause it selects.
  SatResult incCheck(const std::vector<ReducedClause> &Clauses,
                     const char *Hist,
                     std::unique_ptr<smt::SmtModel> &Model);
  std::vector<Term> liveAtoms() const;
  bool houdiniInc(const std::vector<ReducedClause> &Clauses,
                  std::vector<Term> &Cand, TupleOutcome &Out);
  void minimizeAtomsInc(const std::vector<ReducedClause> &Clauses,
                        std::vector<Term> &Cand);
  bool recheckInc(Term Inv,
                  const std::vector<sys::ParamSystem::State> &States,
                  std::string &Why);

  /// Builds this synthesizer's standard solver stack for injection site
  /// \p Site: supervised Z3 with a MiniSolver fallback factory, wired to
  /// this synthesizer's counters, injector, trace buffer and deadline.
  /// With supervision disabled, the bare Z3 back end (the A/B baseline).
  std::unique_ptr<smt::SmtSolver> makeSolver(const char *Site);
  /// Replaces the member Solver after an exception may have left it with
  /// stale pushed frames (reusing it could discharge clauses vacuously).
  /// The incremental context dies with the solver it was asserted on.
  void resetSolver() {
    Solver = makeSolver("smt_check");
    Inc = IncCtx();
  }

  sys::ParamSystem &Sys;
  TermManager &M;
  SynthOptions Opts;
  Formals F;
  SynthStats Stats;
  std::unique_ptr<smt::SmtSolver> Solver;
  /// The merged per-tuple context of the incremental path (Opts.Incremental).
  IncCtx Inc;
  std::chrono::steady_clock::time_point Deadline;
  /// Retry/fallback/fault tallies from every supervised solver this
  /// synthesizer creates; folded into Stats at the end of the run.
  resil::ResilCounters RCnt;
  /// Engaged when a non-empty fault plan is configured (and supervision
  /// is on). One injector per synthesizer: deterministic per worker.
  std::optional<resil::FaultInjector> Faults;
  /// Memoizes reduceToGround per (clause formula, axiom config); owned by
  /// this synthesizer, hence by one TermManager and one thread.
  engine::ReduceCache OwnRCache;
  /// Points at OwnRCache, or at Opts.ReuseReduceCache when the caller
  /// shares a cache across runs (serial path; bound to the same manager).
  engine::ReduceCache *RC = &OwnRCache;
  /// This synthesizer's trace buffer: rank 0 for the driver and the serial
  /// search, rank W+1 on parallel worker W. Null => zero-overhead path.
  obs::TraceBuffer *TB = nullptr;
  /// The tracer the run reports into (driver only): Opts.Trace, or the
  /// internal Verbose-mapped one.
  obs::Tracer *TraceSink = nullptr;
  std::unique_ptr<obs::Tracer> OwnTracer;
  /// Parallel search: set on worker synthesizers to abandon tuples that a
  /// lower-ranked verified tuple has made irrelevant.
  std::function<bool()> ExternAbort;
  /// The skolemized negated safety property, computed once per synthesizer
  /// (it does not depend on the set tuple).
  std::optional<quant::SkolemResult> NotSafeSk;
};

// -- Tuple ranking ---------------------------------------------------------------

std::vector<std::vector<size_t>>
Synthesizer::rankTuples(const std::vector<SetCandidate> &Cands) const {
  unsigned m = Opts.Shape.NumSets;
  std::vector<std::vector<size_t>> Tuples;
  if (m == 0) {
    Tuples.push_back({});
    return Tuples;
  }
  // Select the candidate pool with per-origin diversity: a strict global
  // rank cut lets one prolific bucket (e.g. guard+pc conjunctions) crowd
  // out the quantifier-relative sets that quantified templates need.
  std::vector<size_t> Selected;
  {
    std::map<std::string, std::vector<size_t>> ByOrigin;
    std::vector<std::string> OriginOrder;
    for (size_t I = 0; I < Cands.size(); ++I) {
      auto It = ByOrigin.find(Cands[I].Origin);
      if (It == ByOrigin.end()) {
        OriginOrder.push_back(Cands[I].Origin);
        It = ByOrigin.emplace(Cands[I].Origin, std::vector<size_t>()).first;
      }
      It->second.push_back(I); // Cands is already rank-sorted.
    }
    for (size_t Round = 0; Selected.size() < Opts.MaxCandidateSets;
         ++Round) {
      bool Any = false;
      for (const std::string &O : OriginOrder) {
        const std::vector<size_t> &Bucket = ByOrigin[O];
        if (Round < Bucket.size() &&
            Selected.size() < Opts.MaxCandidateSets) {
          Selected.push_back(Bucket[Round]);
          Any = true;
        }
      }
      if (!Any)
        break;
    }
  }

  // A set body "covers" a template quantifier if the quantifier occurs in
  // it; tuples must jointly cover all template quantifiers, otherwise the
  // declared shape is not exercised.
  auto Covers = [&](size_t I, Term Q) {
    return logic::freeVars(Cands[I].Body).count(Q) != 0;
  };

  std::vector<size_t> Idx(m);
  std::function<void(size_t, size_t)> Rec = [&](size_t Pos, size_t Start) {
    if (Pos == m) {
      for (Term Q : F.Q) {
        bool Covered = false;
        for (size_t I : Idx)
          if (Covers(I, Q))
            Covered = true;
        if (!Covered)
          return;
      }
      Tuples.push_back(Idx);
      return;
    }
    for (size_t I = Start; I < Selected.size(); ++I) {
      Idx[Pos] = Selected[I];
      Rec(Pos + 1, I + 1);
    }
  };
  Rec(0, 0);
  std::stable_sort(Tuples.begin(), Tuples.end(),
                   [&](const std::vector<size_t> &A,
                       const std::vector<size_t> &B) {
                     int RA = 0, RB = 0;
                     for (size_t I : A)
                       RA += Cands[I].Rank;
                     for (size_t I : B)
                       RB += Cands[I].Rank;
                     return RA < RB;
                   });
  if (Tuples.size() > Opts.MaxTuples)
    Tuples.resize(Opts.MaxTuples);
  return Tuples;
}

// -- Explicit pre-filter ------------------------------------------------------------

std::vector<Term> Synthesizer::prefilterAtoms(
    const std::vector<Term> &Pool, const std::vector<Term> &SetBodies,
    const std::vector<sys::ParamSystem::State> &States) const {
  std::vector<Term> Out;
  // Bind counter formals to the cardinality terms themselves so the finite
  // evaluator counts exactly.
  Subst KSub;
  for (size_t I = 0; I < SetBodies.size(); ++I)
    KSub[F.K[I]] = M.mkCard(F.BoundVar, SetBodies[I]);
  for (Term A : Pool) {
    Term Inner = logic::substitute(M, A, KSub);
    if (!Opts.QGuard.isNull())
      Inner = M.mkImplies(Opts.QGuard, Inner);
    Term Quantified = F.Q.empty() ? Inner : M.mkForall(F.Q, Inner);
    bool Holds = true;
    for (const sys::ParamSystem::State &S : States) {
      logic::Evaluator Ev(S);
      if (!Ev.evalBool(Quantified)) {
        Holds = false;
        break;
      }
    }
    if (Holds)
      Out.push_back(A);
  }
  return Out;
}

// -- Clause construction -------------------------------------------------------------

Term Synthesizer::cardAt(const std::vector<Term> &SetBodies, size_t I,
                         const std::vector<Term> &Sigma, bool Post) const {
  Subst S;
  for (size_t J = 0; J < F.Q.size(); ++J)
    S[F.Q[J]] = Sigma[J];
  if (Post)
    for (const auto &[Pre, Prim] : Sys.primeSubst())
      S[Pre] = Prim;
  return M.mkCard(F.BoundVar, logic::substitute(M, SetBodies[I], S));
}

Term Synthesizer::qGuardAt(const std::vector<Term> &Sigma) const {
  if (Opts.QGuard.isNull())
    return M.mkTrue();
  Subst S;
  for (size_t J = 0; J < F.Q.size(); ++J)
    S[F.Q[J]] = Sigma[J];
  return logic::substitute(M, Opts.QGuard, S);
}

void Synthesizer::addInvInstance(const std::vector<Term> &SetBodies,
                                 const std::vector<Term> &Sigma, bool Post,
                                 bool IsHead, const std::string &CN,
                                 unsigned &Ctr, std::vector<Term> &Conj,
                                 std::vector<PlaceholderInst> &Insts) {
  PlaceholderInst Inst;
  Inst.IsHead = IsHead;
  Inst.GlobalOnly = false;
  for (size_t I = 0; I < SetBodies.size(); ++I) {
    Term KV = clauseVar("k_inst", CN, Ctr, Sort::Int);
    Conj.push_back(M.mkEq(cardAt(SetBodies, I, Sigma, Post), KV));
    Inst.AtomSubst[F.K[I]] = KV;
  }
  for (size_t J = 0; J < F.Q.size(); ++J)
    Inst.AtomSubst[F.Q[J]] = Sigma[J];
  if (Post)
    for (const auto &[Pre, Prim] : Sys.primeSubst())
      Inst.AtomSubst[Pre] = Prim;
  Term Guard = qGuardAt(Sigma);
  Inst.P = clauseVar(IsHead ? "P_head" : "P_body", CN, Ctr, Sort::Bool);
  if (IsHead) {
    // !Inv' = !InvGlobal' \/ exists q: QGuard /\ !inv_0; the measurement
    // equations above are definitional and stay conjoined.
    PlaceholderInst Glob;
    Glob.IsHead = false;
    Glob.GlobalOnly = true;
    Glob.P = clauseVar("P_head_glob", CN, Ctr, Sort::Bool);
    if (Post)
      Glob.AtomSubst = Sys.primeSubst();
    Conj.push_back(M.mkOr(M.mkNot(Glob.P),
                          M.mkAnd(Guard, M.mkNot(Inst.P))));
    Insts.push_back(std::move(Glob));
  } else {
    // Body occurrence: the global part holds unconditionally (added once
    // per clause), the quantified part under its instance guard.
    bool HaveGlob = false;
    for (const PlaceholderInst &Prev : Insts)
      if (Prev.GlobalOnly && !Prev.IsHead && Prev.AtomSubst.empty() == !Post)
        HaveGlob = true;
    if (!HaveGlob) {
      PlaceholderInst Glob;
      Glob.IsHead = false;
      Glob.GlobalOnly = true;
      Glob.P = clauseVar("P_body_glob", CN, Ctr, Sort::Bool);
      if (Post)
        Glob.AtomSubst = Sys.primeSubst();
      Conj.push_back(Glob.P);
      Insts.push_back(std::move(Glob));
    }
    Conj.push_back(M.mkImplies(Guard, Inst.P));
  }
  Insts.push_back(std::move(Inst));
}

std::vector<std::vector<Term>>
Synthesizer::bodyInstances(const std::vector<Term> &HeadSk, bool IsTrans,
                           const std::vector<Term> &ExtraTids,
                           const std::vector<Term> &ExtraInts) const {
  // Per-position candidate terms.
  std::vector<std::vector<Term>> PerPos;
  for (size_t J = 0; J < F.Q.size(); ++J) {
    std::vector<Term> L;
    // Every head skolem of matching sort: mutual-exclusion style proofs
    // need the symmetric instance (q2, q1) as well as (q1, q2).
    for (size_t J2 = 0; J2 < HeadSk.size(); ++J2)
      if (F.Q[J2].sort() == F.Q[J].sort())
        L.push_back(HeadSk[J2]);
    if (F.Q[J].sort() == Sort::Tid) {
      if (IsTrans && Sys.mode() == sys::Composition::Async)
        L.push_back(Sys.self());
      for (Term T : ExtraTids)
        L.push_back(T);
    } else {
      for (Term T : ExtraInts)
        L.push_back(T);
      if (IsTrans) {
        // Globals and their successors: unlock's s+1 is the ticket lock's
        // pivotal instance of the per-ticket counting quantifier.
        for (Term G : Sys.globals()) {
          L.push_back(G);
          L.push_back(M.mkAdd(G, M.mkInt(1)));
        }
        if (Sys.mode() == sys::Composition::Async)
          for (Term Loc : Sys.locals()) {
            L.push_back(M.mkRead(Loc, Sys.self()));
            L.push_back(M.mkAdd(M.mkRead(Loc, Sys.self()), M.mkInt(1)));
          }
      }
    }
    // Deduplicate, preserving order.
    std::vector<Term> U;
    for (Term T : L)
      if (std::find(U.begin(), U.end(), T) == U.end())
        U.push_back(T);
    PerPos.push_back(U);
  }
  // Bounded product.
  std::vector<std::vector<Term>> Out;
  std::vector<Term> Cur(F.Q.size());
  std::function<void(size_t)> Rec = [&](size_t Pos) {
    if (Out.size() >= Opts.MaxBodyInstances)
      return;
    if (Pos == F.Q.size()) {
      Out.push_back(Cur);
      return;
    }
    for (Term T : PerPos[Pos]) {
      Cur[Pos] = T;
      Rec(Pos + 1);
    }
  };
  Rec(0);
  return Out;
}

std::vector<ReducedClause>
Synthesizer::buildClauses(const std::vector<Term> &SetBodies,
                          smt::SmtSolver *Oracle) {
  std::vector<ReducedClause> Out;
  auto Externals = Sys.externalCounters();

  // Template-quantifier instances live only inside placeholder
  // substitutions, so the reduction cannot see them; hand them to the
  // index sets explicitly (without this, a cardinality-free clause never
  // instantiates the system's universals at the head skolems).
  auto InstanceTerms = [&](const std::vector<PlaceholderInst> &Insts) {
    std::vector<Term> Extra;
    for (const PlaceholderInst &I : Insts)
      for (Term Q : F.Q) {
        auto It = I.AtomSubst.find(Q);
        if (It != I.AtomSubst.end())
          Extra.push_back(It->second);
      }
    return Extra;
  };

  auto MakeHeadSk = [&](const std::string &CN, unsigned &Ctr) {
    std::vector<Term> Sk;
    for (Term Q : F.Q)
      Sk.push_back(clauseVar("q_hd", CN, Ctr, Q.sort()));
    return Sk;
  };

  // Incremental mode reduces lazily: refine mode (the default) partitions
  // the full reduction into a core ground plus a deferred-instance
  // manifest (model-guided refinement asserts manifest entries on demand);
  // --no-refine keeps the PR5 relevancy-filtered reduction whose surviving
  // models trigger one whole-clause escalation (ensureFullAsserted). The
  // raw conjunction and index terms are retained for that coarse path.
  const engine::ReduceOptions BuildRO =
      !Opts.Incremental ? Opts.Reduce
      : Opts.Refine     ? refineReduceOptions()
                        : lazyReduceOptions();
  auto Reduce = [&](ReducedClause &C, const std::vector<Term> &Conj) {
    obs::Span Sp(TB, "reduce_clause", [&] { return C.Name; });
    C.Raw = M.mkAnd(Conj);
    C.Extra = InstanceTerms(C.Insts);
    engine::ReduceResult R = engine::reduceToGroundCached(
        RC, M, C.Raw, BuildRO, Oracle, Externals, C.Extra, TB);
    C.Ground = R.Ground;
    C.Deferred = std::move(R.Deferred);
    C.LazyWeakened = BuildRO.DeferManifest
                         ? !C.Deferred.empty()
                         : R.NumDeferred + R.NumFilteredInstances > 0;
    C.NumInstances = R.NumInstances;
    SHARPIE_LOGF(TB, obs::LogLevel::Debug,
                 "[reduce] %-16s size=%-7zu inst=%-6u axioms=%-5u venn=%s/%u"
                 " deferred=%u manifest=%zu",
                 C.Name.c_str(), logic::termSize(C.Ground), R.NumInstances,
                 R.NumAxioms, R.VennApplied ? "yes" : "no", R.NumVennRegions,
                 R.NumDeferred + R.NumFilteredInstances, C.Deferred.size());
  };

  // Clause (a): init /\ !Inv.
  {
    ReducedClause C;
    C.Name = "init";
    C.HasHead = true;
    unsigned Ctr = 0;
    std::vector<Term> Conj{Sys.init()};
    std::vector<Term> HeadSk = MakeHeadSk(C.Name, Ctr);
    addInvInstance(SetBodies, HeadSk, /*Post=*/false, /*IsHead=*/true,
                   C.Name, Ctr, Conj, C.Insts);
    Reduce(C, Conj);
    Out.push_back(std::move(C));
  }

  // Clauses (b): Inv /\ next_T /\ !Inv' per transition.
  for (const sys::Transition &T : Sys.transitions()) {
    ReducedClause C;
    C.Name = "ind:" + T.Name;
    C.HasHead = true;
    unsigned Ctr = 0;
    std::vector<Term> Conj{Sys.transitionFormula(T)};
    std::vector<Term> HeadSk = MakeHeadSk(C.Name, Ctr);
    addInvInstance(SetBodies, HeadSk, /*Post=*/true, /*IsHead=*/true,
                   C.Name, Ctr, Conj, C.Insts);
    for (const std::vector<Term> &Sigma :
         bodyInstances(HeadSk, /*IsTrans=*/true, {}, {}))
      addInvInstance(SetBodies, Sigma, /*Post=*/false, /*IsHead=*/false,
                     C.Name, Ctr, Conj, C.Insts);
    Reduce(C, Conj);
    Out.push_back(std::move(C));
  }

  // Clause (c): Inv /\ !safe.
  {
    ReducedClause C;
    C.Name = "safe";
    C.IsSafety = true;
    unsigned Ctr = 0;
    // The safety skolemization is tuple-independent; doing it once keeps
    // the clause formula pointer-identical across tuples with equal
    // bodies, which is what lets the reduction cache hit.
    if (!NotSafeSk)
      NotSafeSk = quant::skolemize(M, M.mkNot(Sys.safe()));
    std::vector<Term> Conj{NotSafeSk->Formula};
    std::vector<Term> ExtraTids, ExtraInts;
    for (Term Sk : NotSafeSk->Skolems)
      (Sk.sort() == Sort::Tid ? ExtraTids : ExtraInts).push_back(Sk);
    // Int-sorted ground subterms of the property (e.g. n-1 in the filter
    // lock's property) are natural instance candidates.
    for (Term S : logic::collectSubterms(Sys.safe(), [](Term X) {
           return X.sort() == Sort::Int &&
                  (X.kind() == Kind::Sub || X.kind() == Kind::Add ||
                   X.kind() == Kind::IntConst);
         })) {
      std::set<Term> FV = logic::freeVars(S);
      bool OnlyGlobals = true;
      for (Term V : FV)
        if (std::find(Sys.globals().begin(), Sys.globals().end(), V) ==
            Sys.globals().end())
          OnlyGlobals = false;
      if (OnlyGlobals)
        ExtraInts.push_back(S);
    }
    for (const std::vector<Term> &Sigma :
         bodyInstances({}, /*IsTrans=*/false, ExtraTids, ExtraInts))
      addInvInstance(SetBodies, Sigma, /*Post=*/false, /*IsHead=*/false,
                     C.Name, Ctr, Conj, C.Insts);
    Reduce(C, Conj);
    Out.push_back(std::move(C));
  }
  return Out;
}

// -- SOLVE --------------------------------------------------------------------------

bool Synthesizer::isGlobalAtom(Term A) const {
  for (Term V : logic::freeVars(A)) {
    if (std::find(F.Q.begin(), F.Q.end(), V) != F.Q.end())
      return false;
    if (std::find(F.K.begin(), F.K.end(), V) != F.K.end())
      return false;
  }
  return true;
}

Term Synthesizer::substitutedClause(const ReducedClause &C,
                                    const std::vector<Term> &Cand) const {
  std::map<Term, Term> Rep;
  for (const PlaceholderInst &I : C.Insts) {
    std::vector<Term> As;
    As.reserve(Cand.size());
    for (Term A : Cand) {
      if (I.GlobalOnly && !isGlobalAtom(A))
        continue;
      As.push_back(logic::substitute(M, A, I.AtomSubst));
    }
    Rep[I.P] = M.mkAnd(As);
  }
  return logic::replaceAll(M, C.Ground, Rep);
}

bool Synthesizer::houdini(const std::vector<ReducedClause> &Clauses,
                          std::vector<Term> &Cand, TupleOutcome &Out) {
  std::string &Why = Out.Why;
  auto Bail = [&](std::string &W) {
    W = outOfTime() ? "time budget exhausted"
                    : "superseded by a lower-ranked tuple";
    return false;
  };
  unsigned MaxIters = static_cast<unsigned>(Cand.size()) + 8;
  for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
    if (aborted())
      return Bail(Why);
    obs::Span IterSp(TB, "houdini_iter", [&] {
      return "iter=" + std::to_string(Iter) +
             " atoms=" + std::to_string(Cand.size());
    });
    bool AllPassed = true;
    for (const ReducedClause &C : Clauses) {
      if (C.IsSafety)
        continue;
      // Cancellation must be prompt under parallelism: the budget is
      // polled between the SMT checks of one iteration, not only between
      // iterations.
      if (aborted())
        return Bail(Why);
      Solver->push();
      Solver->add(substitutedClause(C, Cand));
      SatResult R =
          smt::checkTraced(*Solver, TB, "smt_ms.houdini", C.Name.c_str());
      ++Stats.SmtChecks;
      // Monolithic checks see exactly one clause's ground formula, so the
      // per-check instantiation load is that clause's expansion count.
      if (TB)
        TB->sample("instantiations_per_check",
                   static_cast<double>(C.NumInstances));
      if (R == SatResult::Unsat) {
        Solver->pop();
        continue;
      }
      if (R == SatResult::Unknown) {
        Solver->pop();
        Why = "smt unknown on " + C.Name;
        return false;
      }
      std::unique_ptr<smt::SmtModel> Model = Solver->model();
      const PlaceholderInst *Head = nullptr;
      for (const PlaceholderInst &I : C.Insts)
        if (I.IsHead)
          Head = &I;
      assert(Head && "inductive clause without head instance");
      std::vector<Term> Kept;
      for (Term A : Cand) {
        std::optional<bool> V =
            Model ? Model->evalBool(logic::substitute(M, A, Head->AtomSubst))
                  : std::nullopt;
        if (V.has_value() && !*V) {
          SHARPIE_LOGF(TB, obs::LogLevel::Debug, "[houdini] %s drops %s",
                       C.Name.c_str(), logic::toString(A).c_str());
          continue; // Refuted at the head: drop.
        }
        Kept.push_back(A);
      }
      Solver->pop();
      if (Kept.size() == Cand.size()) {
        Why = "stuck on " + C.Name + " (no atom refuted by model)";
        return false;
      }
      if (TB) {
        int64_t Dropped = static_cast<int64_t>(Cand.size() - Kept.size());
        TB->counter("houdini_atoms_dropped", Dropped);
        TB->instant("houdini_drop", C.Name, Dropped);
      }
      Cand = std::move(Kept);
      AllPassed = false;
    }
    if (AllPassed) {
      if (TB && TB->logEnabled(obs::LogLevel::Debug)) {
        TB->logf(obs::LogLevel::Debug, "[houdini] fixpoint with %zu atoms",
                 Cand.size());
        for (Term A : Cand)
          TB->logf(obs::LogLevel::Debug, "  %s", logic::toString(A).c_str());
      }
      // Fixpoint reached; check the safety clause.
      for (const ReducedClause &C : Clauses) {
        if (!C.IsSafety)
          continue;
        Solver->push();
        Solver->add(substitutedClause(C, Cand));
        SatResult R =
            smt::checkTraced(*Solver, TB, "smt_ms.safety", C.Name.c_str());
        ++Stats.SmtChecks;
        if (TB)
          TB->sample("instantiations_per_check",
                     static_cast<double>(C.NumInstances));
        Solver->pop();
        if (R == SatResult::Unsat)
          return true;
        Why = R == SatResult::Sat ? "fixpoint too weak for safety"
                                  : "smt unknown on safety";
        // The fixpoint discharged every inductiveness clause -- record it
        // as the run's near-miss so an inconclusive outcome can report
        // the best candidate and exactly which clause stopped it.
        Out.HasPartial = true;
        Out.PartialAtoms = Cand;
        for (const ReducedClause &C2 : Clauses)
          if (!C2.IsSafety)
            Out.VerifiedClauses.push_back(C2.Name);
        Out.FailedOn = C.Name;
        // The failing safety clause is large; it renders only at the most
        // verbose level (--log-level trace), replacing the old
        // SHARPIE_DUMP_SAFETY environment hack.
        SHARPIE_LOGF(TB, obs::LogLevel::Trace, "[safety clause] %s",
                     logic::toString(substitutedClause(C, Cand)).c_str());
        return false;
      }
      return true; // No safety clause (not expected).
    }
  }
  Why = "houdini iteration budget exhausted";
  return false;
}

/// Greedily drops atoms whose removal keeps every clause (including
/// safety) discharged. Yields the concise invariants the paper reports and
/// shrinks the final re-check's instantiation.
void Synthesizer::minimizeAtoms(const std::vector<ReducedClause> &Clauses,
                                std::vector<Term> &Cand) {
  auto AllPass = [&](const std::vector<Term> &Trial) {
    for (const ReducedClause &C : Clauses) {
      Solver->push();
      Solver->add(substitutedClause(C, Trial));
      SatResult R =
          smt::checkTraced(*Solver, TB, "smt_ms.minimize", C.Name.c_str());
      ++Stats.SmtChecks;
      Solver->pop();
      if (R != SatResult::Unsat)
        return false;
    }
    return true;
  };
  for (size_t I = Cand.size(); I-- > 0;) {
    if (aborted())
      return;
    std::vector<Term> Trial = Cand;
    Trial.erase(Trial.begin() + I);
    if (AllPass(Trial))
      Cand = std::move(Trial);
  }
}

// -- Incremental assumption-based solving --------------------------------------------

void Synthesizer::incSetup(const std::vector<ReducedClause> &Clauses,
                           const std::vector<Term> &Cand,
                           smt::SmtSolver *Oracle) {
  Inc = IncCtx();
  Inc.Oracle = Oracle;
  Inc.Atoms = Cand;
  Inc.Live.assign(Cand.size(), 1);
  Inc.Active = true;
  for (size_t K = 0; K < Cand.size(); ++K) {
    // Deterministic per-index names (like clauseVar's): rebuilding the
    // context for another tuple reuses the same interned variables.
    Term IndK = M.mkVar("houdini$ind$" + std::to_string(K), Sort::Bool);
    Inc.Ind.push_back(IndK);
    Inc.IndIndex.emplace(IndK, K);
  }
  Inc.S = makeSolver("smt_check");
  Inc.Lazy.assign(Clauses.size(), 0);
  Inc.FullAsserted.assign(Clauses.size(), 0);
  for (size_t CI = 0; CI < Clauses.size(); ++CI) {
    const ReducedClause &C = Clauses[CI];
    Term Sel = M.mkVar("houdini$sel$" + std::to_string(CI), Sort::Bool);
    Inc.Sel.push_back(Sel);
    Inc.Lazy[CI] = C.LazyWeakened;
    if (C.IsSafety)
      Inc.SafetyIdx = CI;
    Inc.S->add(M.mkImplies(Sel, C.Ground));
    Inc.Instances += C.NumInstances;
    // Refinement conjuncts ride behind a dedicated per-clause selector
    // (deterministically named like houdini$sel$): Sel -> InstSel is
    // asserted once, manifest entries are added as InstSel -> entry, so
    // they apply exactly when the clause is selected and retract with it
    // while the assumption literals (the indicators) stay untouched.
    Term ISel = M.mkVar("houdini$inst$" + std::to_string(CI), Sort::Bool);
    Inc.InstSel.push_back(ISel);
    Inc.DefAsserted.emplace_back(C.Deferred.size(), 0);
    if (!C.Deferred.empty())
      Inc.S->add(M.mkImplies(Sel, ISel));
    // Tie every placeholder occurrence to the indicators: P_I holds iff
    // every live atom holds at instance I. Only the implication direction
    // a placeholder's polarity in the ground formula needs is asserted
    // (Plaisted-Greenbaum): the ground formula is in NNF, so a P that
    // never occurs negated only needs P -> def (and dually), which keeps
    // the per-check formula close to substitutedClause's size. Under
    // fixed indicator assumptions either direction set is equisatisfiable
    // with the monolithic replacement. Placeholder names embed the clause
    // name, so the definitions of different clauses never collide in the
    // merged context.
    std::set<Term> NegOcc;
    for (Term N : logic::collectSubterms(C.Ground, [](Term S) {
           return S.kind() == Kind::Not;
         }))
      NegOcc.insert(N->kid(0));
    for (const PlaceholderInst &I : C.Insts) {
      std::vector<Term> Guarded;
      Guarded.reserve(Cand.size());
      for (size_t K = 0; K < Cand.size(); ++K) {
        if (I.GlobalOnly && !isGlobalAtom(Cand[K]))
          continue;
        Guarded.push_back(M.mkImplies(
            Inc.Ind[K], logic::substitute(M, Cand[K], I.AtomSubst)));
      }
      Term Conj = M.mkAnd(Guarded);
      // The definitions ride behind the selector as well: with Sel false
      // the clause's placeholders are unconstrained and its definitions
      // are inert, so a check only ever evaluates the atom instantiations
      // of the clauses its model actually selects.
      Inc.S->add(M.mkImplies(Sel, M.mkImplies(I.P, Conj)));
      if (NegOcc.count(I.P))
        Inc.S->add(M.mkImplies(Sel, M.mkImplies(Conj, I.P)));
    }
  }
  // Every check must be answered by some clause: a Sat model names the
  // violated clauses through its true selectors, and Unsat means every
  // clause (safety included) is discharged under the live indicators.
  Inc.S->add(M.mkOr(Inc.Sel));
}

void Synthesizer::incTeardown() {
  if (!Inc.Active)
    return;
  Inc = IncCtx(); // Destroys the merged context.
}

std::vector<Term> Synthesizer::incAssumptions() const {
  std::vector<Term> A;
  A.reserve(Inc.Ind.size());
  for (size_t K = 0; K < Inc.Ind.size(); ++K)
    A.push_back(Inc.Live[K] ? Inc.Ind[K] : M.mkNot(Inc.Ind[K]));
  return A;
}

/// The recorded core still proves the merged context Unsat exactly when
/// its indicator literals match the current live set (the asserted
/// grounds never change, they only grow by escalation conjuncts).
bool Synthesizer::coreConsistent() const {
  for (const auto &[K, Pos] : Inc.Core)
    if (static_cast<bool>(Inc.Live[K]) != Pos)
      return false;
  return true;
}

void Synthesizer::incRecordCore() {
  Inc.Core.clear();
  for (Term T : Inc.S->unsatCore()) {
    bool Neg = T.kind() == Kind::Not;
    Term V = Neg ? T->kid(0) : T;
    auto It = Inc.IndIndex.find(V);
    if (It != Inc.IndIndex.end())
      Inc.Core.push_back({It->second, !Neg});
  }
  Inc.CoreKnown = true;
}

void Synthesizer::ensureFullAsserted(const ReducedClause &C, size_t CI) {
  obs::Span Sp(TB, "refine_full", [&] { return C.Name; });
  engine::ReduceResult R = engine::reduceToGroundCached(
      RC, M, C.Raw, Opts.Reduce, Inc.Oracle, Sys.externalCounters(), C.Extra,
      TB);
  // Conjoining the full ground with the lazy one (both behind the same
  // selector) is sound: both are reductions of the same obligation over
  // disjoint fresh constants, so any model of the obligation extends to
  // their conjunction.
  Inc.S->add(M.mkImplies(Inc.Sel[CI], R.Ground));
  Inc.FullAsserted[CI] = 1;
  Inc.Instances += R.NumInstances;
  if (TB)
    TB->counter("refine_full_groundings", 1);
  SHARPIE_LOGF(TB, obs::LogLevel::Debug,
               "[lazy] %s: model survived the lazy ground, escalating to the "
               "full reduction (size %zu)",
               C.Name.c_str(), logic::termSize(R.Ground));
}

void Synthesizer::assertAllDeferred(const ReducedClause &C, size_t CI) {
  obs::Span Sp(TB, "refine_full", [&] { return C.Name; });
  std::vector<char> &Done = Inc.DefAsserted[CI];
  unsigned Added = 0;
  for (size_t I = 0; I < C.Deferred.size(); ++I) {
    if (Done[I])
      continue;
    Inc.S->add(M.mkImplies(Inc.InstSel[CI], C.Deferred[I]));
    Done[I] = 1;
    ++Added;
  }
  // Core plus the whole manifest is the unpartitioned full reduction by
  // construction, so no re-reduction is needed (unlike the coarse
  // --no-refine path, which must rebuild the clause without its filter).
  Inc.FullAsserted[CI] = 1;
  Inc.Instances += Added;
  if (TB)
    TB->counter("refine_full_groundings", 1);
  SHARPIE_LOGF(TB, obs::LogLevel::Debug,
               "[refine] %s: grounding the remaining manifest (%u of %zu "
               "entries)",
               C.Name.c_str(), Added, C.Deferred.size());
}

bool Synthesizer::refineAgainstModel(const std::vector<ReducedClause> &Clauses,
                                     smt::SmtModel &Model, unsigned Round) {
  obs::Span Sp(TB, "refine",
               [&] { return "round=" + std::to_string(Round + 1); });
  if (Faults) {
    resil::FaultDecision D = Faults->next("refine");
    if (D.Kind != resil::FaultKind::None) {
      ++RCnt.FaultsInjected;
      if (TB)
        TB->counter("faults_injected", 1);
      if (D.Kind == resil::FaultKind::Latency)
        std::this_thread::sleep_for(std::chrono::milliseconds(D.LatencyMs));
      else if (D.Kind == resil::FaultKind::Throw)
        throw resil::InjectedFault("refine"); // Contained at attemptTuple.
      else {
        // Timeout/Unknown: the model became unusable mid-refinement.
        // Degrade exactly like an evaluation failure -- fully ground
        // every selected pending clause. Never an unsound "keep".
        bool Any = false;
        for (size_t CI = 0; CI < Clauses.size(); ++CI)
          if (Inc.Lazy[CI] && !Inc.FullAsserted[CI]) {
            assertAllDeferred(Clauses[CI], CI);
            Any = true;
          }
        return Any;
      }
    }
  }
  // Pass 1 (read-only): evaluate the selectors and every pending manifest
  // entry against the model BEFORE touching the solver -- SmtModel handles
  // are valid only until the owning solver is mutated, so all evalBool
  // calls must precede the first add().
  struct ClausePlan {
    size_t CI;
    quant::ViolatedResult V;
  };
  std::vector<ClausePlan> Plans;
  std::vector<size_t> Failed; // Eval failure => full grounding (sound).
  for (size_t CI = 0; CI < Clauses.size(); ++CI) {
    if (!Inc.Lazy[CI] || Inc.FullAsserted[CI])
      continue;
    if (!Model.evalBool(Inc.Sel[CI]).value_or(false))
      continue; // Not selected: its ground (and manifest) are inert.
    const std::vector<char> &Done = Inc.DefAsserted[CI];
    quant::ViolatedResult V =
        quant::selectViolated(Model, Clauses[CI].Deferred, Done);
    if (V.EvalFailed) {
      Failed.push_back(CI);
      continue;
    }
    if (!V.Violated.empty())
      Plans.push_back({CI, std::move(V)});
  }
  // Pass 2 (mutating): assert exactly the manifest entries the model
  // violates, behind the clause's instance selector so they retract with
  // the clause. Each round either asserts >= 1 new entry or fully grounds
  // a clause, so the loop terminates with or without a budget.
  bool Progress = false;
  unsigned Asserted = 0;
  for (size_t CI : Failed) {
    assertAllDeferred(Clauses[CI], CI);
    Progress = true;
  }
  for (const ClausePlan &P : Plans) {
    const ReducedClause &C = Clauses[P.CI];
    std::vector<char> &Done = Inc.DefAsserted[P.CI];
    for (size_t I : P.V.Violated) {
      Inc.S->add(M.mkImplies(Inc.InstSel[P.CI], C.Deferred[I]));
      Done[I] = 1;
      ++Asserted;
    }
    if (std::count(Done.begin(), Done.end(), 1) ==
        static_cast<long>(Done.size()))
      Inc.FullAsserted[P.CI] = 1;
    Progress = true;
    SHARPIE_LOGF(TB, obs::LogLevel::Debug,
                 "[refine] %s: model violates %zu of %zu pending manifest "
                 "entries",
                 C.Name.c_str(), P.V.Violated.size(), C.Deferred.size());
  }
  Inc.Instances += Asserted;
  if (TB && Asserted > 0)
    TB->counter("refine_instances_asserted", Asserted);
  return Progress;
}

SatResult Synthesizer::incCheck(const std::vector<ReducedClause> &Clauses,
                                const char *Hist,
                                std::unique_ptr<smt::SmtModel> &Model) {
  unsigned RefineRounds = 0;
  auto FlushRounds = [&] {
    if (TB && RefineRounds > 0)
      TB->sample("refine_rounds", static_cast<double>(RefineRounds));
  };
  for (;;) {
    std::vector<Term> A = incAssumptions();
    if (TB && Inc.Checks > 0)
      TB->counter("solver_context_reuses", 1);
    ++Inc.Checks;
    // Span detail = the phase part of the histogram name ("houdini",
    // "minimize"), so merged-context checks stay tellable apart in a
    // trace viewer now that one span covers all clauses at once.
    const char *Detail = std::strncmp(Hist, "smt_ms.", 7) == 0 ? Hist + 7 : Hist;
    SatResult R = smt::checkAssumingTraced(*Inc.S, A, TB, Hist, Detail);
    ++Stats.SmtChecks;
    // The merged context carries every clause's expansions at once; the
    // running total is this check's instantiation load.
    if (TB)
      TB->sample("instantiations_per_check",
                 static_cast<double>(Inc.Instances));
    if (R == SatResult::Unsat) {
      incRecordCore();
      FlushRounds();
      return R;
    }
    if (R != SatResult::Sat) {
      // An Unknown over a lean refined context gets one more chance on
      // the fully-grounded one: grounding every pending manifest is
      // always sound, changes the formula the back end (or the
      // supervisor's fallback ladder) sees, and leaves nothing pending
      // -- so a second Unknown returns here instead of looping.
      if (Opts.Incremental && Opts.Refine) {
        bool Any = false;
        for (size_t CI = 0; CI < Clauses.size(); ++CI)
          if (Inc.Lazy[CI] && !Inc.FullAsserted[CI]) {
            assertAllDeferred(Clauses[CI], CI);
            Any = true;
          }
        if (Any)
          continue;
      }
      FlushRounds();
      return R;
    }
    Model = Inc.S->model();
    if (!Model) {
      FlushRounds();
      return R; // Callers treat a model-less Sat as a stuck iteration.
    }
    bool Refined = false;
    if (Opts.Incremental && Opts.Refine) {
      // Model-guided refinement (CEGAR instantiation): assert only the
      // manifest entries this model violates; the escalation budget
      // bounds the rounds per check, falling back to full grounding.
      if (RefineRounds >= Opts.RefineBudget) {
        if (TB)
          TB->counter("refine_budget_exhausted", 1);
        for (size_t CI = 0; CI < Clauses.size(); ++CI)
          if (Inc.Lazy[CI] && !Inc.FullAsserted[CI] &&
              Model->evalBool(Inc.Sel[CI]).value_or(false)) {
            assertAllDeferred(Clauses[CI], CI);
            Refined = true;
          }
      } else {
        Refined = refineAgainstModel(Clauses, *Model, RefineRounds);
      }
      if (Refined)
        ++RefineRounds;
    } else {
      // Coarse --no-refine path (and the eager mode's no-op): a surviving
      // model escalates every selected weakened clause to its full
      // reduction in one step.
      for (size_t CI = 0; CI < Clauses.size(); ++CI) {
        if (!Inc.Lazy[CI] || Inc.FullAsserted[CI])
          continue;
        if (Model->evalBool(Inc.Sel[CI]).value_or(false)) {
          ensureFullAsserted(Clauses[CI], CI);
          Refined = true;
        }
      }
    }
    if (!Refined) {
      FlushRounds();
      // Genuine: every selected clause's asserted ground satisfies its
      // whole manifest (refine) or is the full reduction (coarse).
      return R;
    }
    // A model that only survived because instances were deferred is
    // counterexample-driven refinement's cue: add them and re-check.
  }
}

std::vector<Term> Synthesizer::liveAtoms() const {
  std::vector<Term> Out;
  for (size_t K = 0; K < Inc.Atoms.size(); ++K)
    if (Inc.Live[K])
      Out.push_back(Inc.Atoms[K]);
  return Out;
}

bool Synthesizer::houdiniInc(const std::vector<ReducedClause> &Clauses,
                             std::vector<Term> &Cand, TupleOutcome &Out) {
  std::string &Why = Out.Why;
  auto Bail = [&](std::string &W) {
    W = outOfTime() ? "time budget exhausted"
                    : "superseded by a lower-ranked tuple";
    return false;
  };
  unsigned MaxIters = static_cast<unsigned>(Cand.size()) + 8;
  for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
    if (aborted())
      return Bail(Why);
    obs::Span IterSp(TB, "houdini_iter", [&] {
      return "iter=" + std::to_string(Iter) +
             " atoms=" + std::to_string(liveAtoms().size());
    });
    std::unique_ptr<smt::SmtModel> Model;
    SatResult R = incCheck(Clauses, "smt_ms.houdini", Model);
    if (R == SatResult::Unsat) {
      // No clause -- the safety clause included -- has a counterexample
      // under the live set: the fixpoint and the safety verdict in one
      // answer.
      Cand = liveAtoms();
      if (TB && TB->logEnabled(obs::LogLevel::Debug)) {
        TB->logf(obs::LogLevel::Debug, "[houdini] fixpoint with %zu atoms",
                 Cand.size());
        for (Term A : Cand)
          TB->logf(obs::LogLevel::Debug, "  %s", logic::toString(A).c_str());
      }
      return true;
    }
    if (R == SatResult::Unknown) {
      Why = "smt unknown on houdini iteration";
      return false;
    }
    std::vector<size_t> Violated;
    for (size_t CI = 0; CI < Clauses.size(); ++CI)
      if (Model && Model->evalBool(Inc.Sel[CI]).value_or(false))
        Violated.push_back(CI);
    if (std::find(Violated.begin(), Violated.end(), Inc.SafetyIdx) !=
        Violated.end()) {
      // The candidate occurs only positively in the safety body, so this
      // counterexample survives every later drop: the eventual fixpoint
      // would fail safety too, and the tuple is rejected now instead of
      // after the remaining iterations.
      const ReducedClause &C = Clauses[Inc.SafetyIdx];
      Cand = liveAtoms();
      Why = "candidate too weak for safety";
      Out.HasPartial = true;
      Out.PartialAtoms = Cand;
      Out.FailedOn = C.Name;
      SHARPIE_LOGF(TB, obs::LogLevel::Trace, "[safety clause] %s",
                   logic::toString(substitutedClause(C, Cand)).c_str());
      return false;
    }
    int64_t TotalDropped = 0;
    for (size_t CI : Violated) {
      const ReducedClause &C = Clauses[CI];
      const PlaceholderInst *Head = nullptr;
      for (const PlaceholderInst &I : C.Insts)
        if (I.IsHead)
          Head = &I;
      assert(Head && "inductive clause without head instance");
      int64_t Dropped = 0;
      for (size_t K = 0; K < Inc.Atoms.size(); ++K) {
        if (!Inc.Live[K])
          continue;
        std::optional<bool> V = Model->evalBool(
            logic::substitute(M, Inc.Atoms[K], Head->AtomSubst));
        if (V.has_value() && !*V) {
          SHARPIE_LOGF(TB, obs::LogLevel::Debug, "[houdini] %s drops %s",
                       C.Name.c_str(),
                       logic::toString(Inc.Atoms[K]).c_str());
          Inc.Live[K] = 0;
          ++Dropped;
        }
      }
      if (TB && Dropped) {
        TB->counter("houdini_atoms_dropped", Dropped);
        TB->instant("houdini_drop", C.Name, Dropped);
      }
      TotalDropped += Dropped;
    }
    if (TotalDropped == 0) {
      Why = "stuck on " +
            (Violated.empty() ? std::string("houdini model")
                              : Clauses[Violated.front()].Name) +
            " (no atom refuted by model)";
      return false;
    }
  }
  Why = "houdini iteration budget exhausted";
  return false;
}

/// The incremental greedy minimizer: same trial order and accept/reject
/// semantics as minimizeAtoms (each trial asks whether every clause --
/// safety included -- stays Unsat, exactly AllPass's question, so the two
/// paths converge on the same atom set), but a trial whose dropped atom
/// the recorded core ignores is accepted without any solver call: the
/// core's literals all kept their polarity, so the merged context is
/// provably still Unsat.
void Synthesizer::minimizeAtomsInc(const std::vector<ReducedClause> &Clauses,
                                   std::vector<Term> &Cand) {
  std::vector<size_t> LiveIdx; // Pool indices of Cand's atoms, in order.
  for (size_t K = 0; K < Inc.Live.size(); ++K)
    if (Inc.Live[K])
      LiveIdx.push_back(K);
  assert(LiveIdx.size() == Cand.size() && "live set out of sync with Cand");
  for (size_t I = LiveIdx.size(); I-- > 0;) {
    if (aborted())
      return;
    size_t K = LiveIdx[I];
    Inc.Live[K] = 0; // Trial: drop atom K.
    bool Pass;
    if (Inc.CoreKnown && coreConsistent()) {
      if (TB)
        TB->counter("core_drops", 1);
      Pass = true;
    } else {
      std::unique_ptr<smt::SmtModel> Model;
      Pass = incCheck(Clauses, "smt_ms.minimize", Model) == SatResult::Unsat;
    }
    if (Pass) {
      Cand.erase(Cand.begin() + I);
      LiveIdx.erase(LiveIdx.begin() + I);
    } else {
      Inc.Live[K] = 1;
    }
  }
}

// -- Output and re-checking -------------------------------------------------------------

Term Synthesizer::closedInvariant(const std::vector<Term> &SetBodies,
                                  const std::vector<Term> &Atoms) const {
  Subst KSub;
  for (size_t I = 0; I < SetBodies.size(); ++I)
    KSub[F.K[I]] = M.mkCard(F.BoundVar, SetBodies[I]);
  std::vector<Term> GlobalAs, QuantAs;
  for (Term A : Atoms)
    (isGlobalAtom(A) ? GlobalAs : QuantAs)
        .push_back(logic::substitute(M, A, KSub));
  Term Inner = M.mkAnd(QuantAs);
  if (!Opts.QGuard.isNull())
    Inner = M.mkImplies(Opts.QGuard, Inner);
  Term Quant = F.Q.empty() ? Inner : M.mkForall(F.Q, Inner);
  return M.mkAnd(M.mkAnd(GlobalAs), Quant);
}

bool Synthesizer::recheck(Term Inv,
                          const std::vector<sys::ParamSystem::State> &States,
                          std::string &Why) {
  if (!explct::holdsInAll(States, Inv)) {
    Why = "recheck: invariant fails on an explicit reachable state";
    return false;
  }
  std::unique_ptr<smt::SmtSolver> Oracle = makeSolver("reduce");
  for (const sys::Obligation &O : sys::safetyObligations(Sys, Inv)) {
    engine::ReduceResult R = engine::reduceToGroundCached(
        RC, M, O.Psi, Opts.Reduce, Oracle.get(), Sys.externalCounters(), {},
        TB);
    std::unique_ptr<smt::SmtSolver> S = makeSolver("smt_check");
    S->add(R.Ground);
    ++Stats.SmtChecks;
    if (smt::checkTraced(*S, TB, "smt_ms.recheck", O.Name.c_str()) !=
        SatResult::Unsat) {
      Why = "recheck: obligation " + O.Name + " not discharged";
      SHARPIE_LOGF(TB, obs::LogLevel::Debug,
                   "recheck failed on %s (ground size %zu)", O.Name.c_str(),
                   logic::termSize(R.Ground));
      return false;
    }
  }
  return true;
}

/// The incremental recheck. Two levers over the monolithic one, which paid
/// a full reduction AND a cold solver per obligation: (1) every obligation
/// is first reduced lazily -- Unsat under the weaker lazy ground already
/// discharges it, and only a surviving answer pays the full reduction;
/// (2) all checks share the member solver (push/pop scoped), whose
/// back-end translation cache is already warm from the Houdini phase.
/// Anything the monolithic recheck discharges is discharged here too, and
/// vice versa: the full reduction always has the final word.
bool Synthesizer::recheckInc(
    Term Inv, const std::vector<sys::ParamSystem::State> &States,
    std::string &Why) {
  if (!explct::holdsInAll(States, Inv)) {
    Why = "recheck: invariant fails on an explicit reachable state";
    return false;
  }
  std::unique_ptr<smt::SmtSolver> Oracle = makeSolver("reduce");
  const engine::ReduceOptions Lazy = lazyReduceOptions();
  bool FirstCheck = true;
  for (const sys::Obligation &O : sys::safetyObligations(Sys, Inv)) {
    bool Discharged = false;
    size_t LastGroundSize = 0;
    for (int Phase = 0; Phase < 2; ++Phase) {
      const engine::ReduceOptions &RO = Phase == 0 ? Lazy : Opts.Reduce;
      engine::ReduceResult R = engine::reduceToGroundCached(
          RC, M, O.Psi, RO, Oracle.get(), Sys.externalCounters(), {}, TB);
      LastGroundSize = logic::termSize(R.Ground);
      Solver->push();
      Solver->add(R.Ground);
      if (TB && !FirstCheck)
        TB->counter("solver_context_reuses", 1);
      FirstCheck = false;
      ++Stats.SmtChecks;
      SatResult SR =
          smt::checkTraced(*Solver, TB, "smt_ms.recheck", O.Name.c_str());
      Solver->pop();
      if (SR == SatResult::Unsat) {
        Discharged = true;
        break;
      }
      // An undischarged lazy phase is conclusive only when nothing was
      // deferred (the lazy ground IS the full one); otherwise escalate.
      if (Phase == 0 && R.NumDeferred + R.NumFilteredInstances == 0)
        break;
    }
    if (!Discharged) {
      Why = "recheck: obligation " + O.Name + " not discharged";
      SHARPIE_LOGF(TB, obs::LogLevel::Debug,
                   "recheck failed on %s (ground size %zu)", O.Name.c_str(),
                   LastGroundSize);
      return false;
    }
  }
  return true;
}

// -- Per-tuple pipeline ----------------------------------------------------------------

std::unique_ptr<smt::SmtSolver> Synthesizer::makeSolver(const char *Site) {
  if (!Opts.Supervise.Enabled) {
    // The bare back end, not a disabled wrapper: the overhead A/B
    // comparison should measure supervision against exactly yesterday's
    // code path.
    auto S = smt::makeZ3Solver(M);
    S->setTimeoutMs(Opts.SmtTimeoutMs);
    return S;
  }
  resil::SupervisedSolver::Factory Fb;
  if (Opts.Supervise.CrossCheckFallback)
    Fb = [this] { return smt::makeMiniSolver(M); };
  auto S = std::make_unique<resil::SupervisedSolver>(
      smt::makeZ3Solver(M), std::move(Fb), Opts.Supervise, &RCnt,
      Faults ? &*Faults : nullptr, Site, TB, Deadline);
  S->setTimeoutMs(Opts.SmtTimeoutMs);
  return S;
}

Synthesizer::TupleOutcome Synthesizer::attemptTuple(
    size_t Rank, const std::vector<Term> &SetBodies,
    const std::vector<Term> &Pool,
    const std::vector<sys::ParamSystem::State> &States) {
  bool InjectThrow = false;
  if (Faults) {
    // Scope the per-site invocation indices to this tuple: a rule like
    // "reduce:unknown@every=2" then fires at the same point of every
    // tuple's pipeline regardless of which worker claims it.
    Faults->beginScope(static_cast<uint64_t>(Rank) + 1);
    resil::FaultDecision D = Faults->next("worker_task");
    if (D.Kind != resil::FaultKind::None) {
      ++RCnt.FaultsInjected;
      if (TB)
        TB->counter("faults_injected", 1);
      if (D.Kind == resil::FaultKind::Latency)
        std::this_thread::sleep_for(std::chrono::milliseconds(D.LatencyMs));
      else if (D.Kind == resil::FaultKind::Throw)
        InjectThrow = true; // Thrown below, through the containment path.
      else {
        TupleOutcome Out;
        Out.Why = "injected fault at worker_task";
        ++Stats.TuplesSkipped;
        if (TB)
          TB->counter("tuples_skipped", 1);
        return Out;
      }
    }
  }
  try {
    if (InjectThrow)
      throw resil::InjectedFault("worker_task");
    return tryTuple(SetBodies, Pool, States);
  } catch (const std::exception &E) {
    TupleOutcome Out;
    Out.Why = std::string("exception: ") + E.what();
    ++Stats.TuplesSkipped;
    ++Stats.WorkerExceptions;
    if (TB) {
      TB->counter("tuples_skipped", 1);
      TB->logf(obs::LogLevel::Info, "[resil] tuple %zu skipped: %s",
               Rank + 1, Out.Why.c_str());
    }
    // The escape may have unwound through a push()ed solver scope;
    // reusing those stale frames could discharge later clauses
    // vacuously, so the solver is rebuilt from scratch.
    resetSolver();
    return Out;
  }
}

Synthesizer::TupleOutcome
Synthesizer::tryTuple(const std::vector<Term> &SetBodies,
                      const std::vector<Term> &Pool,
                      const std::vector<sys::ParamSystem::State> &States) {
  obs::Span TupleSp(TB, "tuple", [&] {
    std::string D;
    for (Term SB : SetBodies)
      D += (D.empty() ? "" : " ") + ("#{t | " + logic::toString(SB) + "}");
    return D;
  });
  TupleOutcome Out;
  ++Stats.TuplesTried;
  if (TB)
    TB->counter("tuples_tried", 1);

  std::vector<Term> Cand = Pool;
  auto TPre = std::chrono::steady_clock::now();
  if (Opts.ExplicitPrefilter && !States.empty()) {
    obs::Span Sp(TB, "prefilter");
    Cand = prefilterAtoms(Pool, SetBodies, States);
  }
  double PreSec = secondsSince(TPre);
  Stats.PrefilterSeconds += PreSec;
  Stats.AtomsAfterPrefilter = static_cast<unsigned>(Cand.size());
  SHARPIE_LOGF(TB, obs::LogLevel::Debug,
               "atoms: %zu of %zu survive the explicit pre-filter (%.2fs)",
               Cand.size(), Pool.size(), PreSec);

  // The build timer starts before the oracle is created: per-tuple solver
  // setup is part of the clause-building cost, and keeping the phase
  // timers contiguous lets --stats account (nearly) all of the wall time.
  auto TBuild = std::chrono::steady_clock::now();
  std::unique_ptr<smt::SmtSolver> Oracle = makeSolver("reduce");
  std::vector<ReducedClause> Clauses;
  {
    obs::Span Sp(TB, "build_clauses");
    Clauses = buildClauses(SetBodies, Oracle.get());
  }
  Stats.ReduceSeconds += secondsSince(TBuild);
  auto THou = std::chrono::steady_clock::now();
  SHARPIE_LOGF(TB, obs::LogLevel::Debug, "clauses built in %.2fs",
               secondsSince(TBuild));

  bool HoudiniOk;
  {
    obs::Span Sp(TB, "houdini");
    if (Opts.Incremental) {
      incSetup(Clauses, Cand, Oracle.get());
      HoudiniOk = houdiniInc(Clauses, Cand, Out);
    } else {
      HoudiniOk = houdini(Clauses, Cand, Out);
    }
  }
  SHARPIE_LOGF(TB, obs::LogLevel::Debug, "houdini %s in %.2fs",
               HoudiniOk ? "ok" : "failed", secondsSince(THou));
  if (!HoudiniOk) {
    incTeardown();
    Stats.HoudiniSeconds += secondsSince(THou);
    SHARPIE_LOGF(TB, obs::LogLevel::Debug, "houdini failed: %s",
                 Out.Why.c_str());
    return Out;
  }
  if (Opts.MinimizeInvariant) {
    obs::Span Sp(TB, "minimize");
    auto TMin = std::chrono::steady_clock::now();
    size_t Before = Cand.size();
    if (Opts.Incremental)
      minimizeAtomsInc(Clauses, Cand);
    else
      minimizeAtoms(Clauses, Cand);
    SHARPIE_LOGF(TB, obs::LogLevel::Debug, "minimized %zu -> %zu atoms in %.2fs",
                 Before, Cand.size(), secondsSince(TMin));
  }
  // Free the merged context before the recheck: the invariant is
  // fixed now, so only the shared member solver is needed from here on.
  incTeardown();
  Stats.HoudiniSeconds += secondsSince(THou);

  Term Inv = closedInvariant(SetBodies, Cand);
  auto TRe = std::chrono::steady_clock::now();
  bool RecheckOk;
  {
    obs::Span Sp(TB, "recheck");
    RecheckOk = !Opts.FinalRecheck ||
                (Opts.Incremental ? recheckInc(Inv, States, Out.Why)
                                  : recheck(Inv, States, Out.Why));
  }
  Stats.RecheckSeconds += secondsSince(TRe);
  SHARPIE_LOGF(TB, obs::LogLevel::Debug, "recheck %s in %.2fs",
               RecheckOk ? "ok" : "failed", secondsSince(TRe));
  if (!RecheckOk)
    return Out;

  Out.Verified = true;
  Out.Invariant = Inv;
  Out.Atoms = std::move(Cand);
  return Out;
}

// -- Serial driver ---------------------------------------------------------------------

void Synthesizer::runSerial(
    const std::vector<std::vector<Term>> &TupleBodies,
    const std::vector<Term> &Pool,
    const std::vector<sys::ParamSystem::State> &States, SynthResult &Res) {
  std::string LastWhy = "no candidate set tuple succeeded";
  for (size_t Rank = 0; Rank < TupleBodies.size(); ++Rank) {
    const std::vector<Term> &SetBodies = TupleBodies[Rank];
    if (outOfTime()) {
      LastWhy = "time budget exhausted";
      break;
    }
    if (TB && TB->logEnabled(obs::LogLevel::Debug)) {
      std::string Bodies;
      for (Term SB : SetBodies)
        Bodies += " #{t | " + logic::toString(SB) + "}";
      TB->logf(obs::LogLevel::Debug, "[tuple %u]%s", Stats.TuplesTried + 1,
               Bodies.c_str());
    }
    TupleOutcome O = attemptTuple(Rank, SetBodies, Pool, States);
    if (!O.Verified) {
      LastWhy = O.Why;
      if (O.HasPartial && !Res.Best) {
        PartialCandidate P;
        P.Rank = static_cast<unsigned>(Rank) + 1;
        for (Term SB : SetBodies)
          P.SetBodies.push_back(logic::toString(SB));
        for (Term A : O.PartialAtoms)
          P.Atoms.push_back(logic::toString(A));
        P.VerifiedClauses = std::move(O.VerifiedClauses);
        P.FailedOn = std::move(O.FailedOn);
        Res.Best = std::move(P);
      }
      continue;
    }
    Res.Verified = true;
    Res.Invariant = O.Invariant;
    Res.SetBodies = SetBodies;
    Res.Atoms = std::move(O.Atoms);
    Stats.AtomsInInvariant = static_cast<unsigned>(Res.Atoms.size());
    break;
  }
  if (!Res.Verified)
    Res.Note = LastWhy;
}

// -- Parallel driver -------------------------------------------------------------------

void Synthesizer::runParallel(
    unsigned Workers, const std::vector<std::vector<Term>> &TupleBodies,
    const std::vector<Term> &Pool,
    const std::vector<sys::ParamSystem::State> &States, SynthResult &Res) {
  auto SearchStart = std::chrono::steady_clock::now();
  Stats.NumWorkers = Workers;

  // A caller-provided cache is shared with every worker. Sharing must be
  // on before the first worker spawns: it moves the entries into the
  // cache's own manager, after which all access is mutex-guarded and
  // manager-independent (see ReduceCache::enableSharing).
  if (Opts.ReuseReduceCache)
    Opts.ReuseReduceCache->enableSharing();

  /// Shared per-rank outcome table. A rank is Done once some worker fully
  /// processed it, Skipped when it was claimed after a lower rank had
  /// already verified (such ranks can never win).
  struct RankSlot {
    bool Done = false;
    bool Skipped = false;
    bool Verified = false;
    unsigned Worker = 0;
    std::string Why;
    std::vector<Term> Atoms; ///< In the processing worker's manager.
    Term Invariant;          ///< Likewise.
    /// Near-miss data, already rendered (manager-independent).
    bool HasPartial = false;
    std::vector<std::string> PartialAtoms;
    std::vector<std::string> VerifiedClauses;
    std::string FailedOn;
  };
  std::vector<RankSlot> Slots(TupleBodies.size());
  std::mutex SlotsMu;
  std::atomic<size_t> Cursor{0};
  std::atomic<size_t> BestVerified{SIZE_MAX};
  engine::CancellationToken Cancel;

  /// Per-worker world; kept alive past pool shutdown so the winning
  /// tuple's terms can be translated back into the main manager.
  struct WorkerCtx {
    std::unique_ptr<TermManager> M;
    std::unique_ptr<sys::ParamSystem> Sys;
    std::unique_ptr<Synthesizer> Synth;
    double BusySeconds = 0;
  };
  std::vector<WorkerCtx> Ctxs(Workers);

  auto WorkerMain = [&](unsigned W) {
    auto TSetup = std::chrono::steady_clock::now();
    WorkerCtx &C = Ctxs[W];
    C.M = std::make_unique<TermManager>();
    C.Sys = Sys.cloneInto(*C.M);
    logic::TermTranslator Tr(*C.M);
    SynthOptions WOpts = Opts;
    WOpts.QGuard = Tr(Opts.QGuard);
    WOpts.FixedSetBodies.clear();
    WOpts.NumWorkers = 1;
    WOpts.Trace = nullptr; // Buffers are handed out by rank below.
    // The shared cache (flipped into shared mode above) is safe from any
    // manager; a worker either shares it or runs its own private cache.
    WOpts.ReuseReduceCache = Opts.ReuseReduceCache;
    C.Synth = std::make_unique<Synthesizer>(*C.Sys, WOpts);
    C.Synth->Deadline = Deadline; // One budget for the whole search.
    // Worker W owns trace rank W+1 (rank 0 is the driver); registration is
    // the one mutex-guarded step, the buffer itself is thread-local.
    C.Synth->TB = TraceSink ? TraceSink->worker(W + 1) : nullptr;
    // Fault rules with a worker=N trigger key on the same rank numbering
    // as the traces (0 = driver/serial, W+1 = parallel worker W).
    if (C.Synth->Faults)
      C.Synth->Faults->setWorker(W + 1);
    C.Synth->Solver = C.Synth->makeSolver("smt_check");
    std::vector<Term> WPool;
    WPool.reserve(Pool.size());
    for (Term A : Pool)
      WPool.push_back(Tr(A));
    std::vector<sys::ParamSystem::State> WStates;
    WStates.reserve(States.size());
    for (const sys::ParamSystem::State &S : States) {
      sys::ParamSystem::State WS;
      WS.DomainSize = S.DomainSize;
      WS.IntBound = S.IntBound;
      for (const auto &[V, Val] : S.Scalars)
        WS.Scalars[Tr(V)] = Val;
      for (const auto &[A, Vals] : S.Arrays)
        WS.Arrays[Tr(A)] = Vals;
      WStates.push_back(std::move(WS));
    }
    C.BusySeconds += secondsSince(TSetup);

    for (;;) {
      size_t Rank = Cursor.fetch_add(1);
      if (Rank >= TupleBodies.size())
        break;
      if (Cancel.cancelled() || C.Synth->outOfTime())
        break;
      if (Rank > BestVerified.load()) {
        std::lock_guard<std::mutex> L(SlotsMu);
        Slots[Rank].Skipped = true;
        continue;
      }
      C.Synth->ExternAbort = [&BestVerified, &Cancel, Rank] {
        return BestVerified.load() < Rank || Cancel.cancelled();
      };
      std::vector<Term> WBodies;
      WBodies.reserve(TupleBodies[Rank].size());
      for (Term B : TupleBodies[Rank])
        WBodies.push_back(Tr(B));
      if (obs::TraceBuffer *WTB = C.Synth->TB;
          WTB && WTB->logEnabled(obs::LogLevel::Debug)) {
        std::string Bodies;
        for (Term SB : WBodies)
          Bodies += " #{t | " + logic::toString(SB) + "}";
        WTB->logf(obs::LogLevel::Debug, "[tuple %zu]%s", Rank + 1,
                  Bodies.c_str());
      }
      auto T0 = std::chrono::steady_clock::now();
      TupleOutcome O = C.Synth->attemptTuple(Rank, WBodies, WPool, WStates);
      C.BusySeconds += secondsSince(T0);
      if (O.Verified) {
        size_t Cur = BestVerified.load();
        while (Rank < Cur &&
               !BestVerified.compare_exchange_weak(Cur, Rank)) {
        }
      }
      bool AllBelowBestDone = false;
      {
        std::lock_guard<std::mutex> L(SlotsMu);
        RankSlot &S = Slots[Rank];
        S.Done = true;
        S.Verified = O.Verified;
        S.Worker = W;
        S.Why = std::move(O.Why);
        S.Atoms = std::move(O.Atoms);
        S.Invariant = O.Invariant;
        if (O.HasPartial) {
          S.HasPartial = true;
          for (Term A : O.PartialAtoms)
            S.PartialAtoms.push_back(logic::toString(A));
          S.VerifiedClauses = std::move(O.VerifiedClauses);
          S.FailedOn = std::move(O.FailedOn);
        }
        size_t BV = BestVerified.load();
        if (BV != SIZE_MAX) {
          AllBelowBestDone = true;
          for (size_t I = 0; I < BV; ++I)
            if (!Slots[I].Done)
              AllBelowBestDone = false;
        }
      }
      // Once every rank below the best verified one has completed (and
      // failed -- otherwise the watermark would be lower), the winner is
      // decided; everything still in flight is wasted work.
      if (AllBelowBestDone)
        Cancel.cancel();
    }
  };

  {
    engine::ThreadPool TP(Workers);
    for (unsigned W = 0; W < Workers; ++W)
      TP.submit([&WorkerMain, W] { WorkerMain(W); });
    TP.wait();
  } // Joins all workers; Ctxs stay alive below.

  // Deterministic merge: the lowest-ranked verified tuple wins, which is
  // exactly the serial search's answer whenever every lower rank completed.
  size_t Winner = SIZE_MAX;
  for (size_t R = 0; R < Slots.size(); ++R)
    if (Slots[R].Done && Slots[R].Verified) {
      Winner = R;
      break;
    }
  if (Winner != SIZE_MAX) {
    RankSlot &S = Slots[Winner];
    WorkerCtx &C = Ctxs[S.Worker];
    logic::TermTranslator Back(M);
    Res.Verified = true;
    Res.SetBodies = TupleBodies[Winner]; // Main-manager originals.
    Res.Atoms.clear();
    for (Term A : S.Atoms)
      Res.Atoms.push_back(Back(A));
    Res.Invariant = Back(S.Invariant);
    Stats.AtomsInInvariant = static_cast<unsigned>(Res.Atoms.size());
    (void)C;
  } else {
    // Prefer the most informative failure: the last processed rank's Why,
    // falling back to the budget/default notes.
    std::string Why;
    for (const RankSlot &S : Slots)
      if (S.Done && !S.Why.empty())
        Why = S.Why;
    if (Why.empty())
      Why = outOfTime() ? "time budget exhausted"
                        : "no candidate set tuple succeeded";
    Res.Note = Why;
    // Lowest-ranked near-miss, mirroring the serial search's "first
    // partial wins" (rank order, not completion order, so the report is
    // deterministic).
    for (size_t R = 0; R < Slots.size() && !Res.Best; ++R)
      if (Slots[R].Done && Slots[R].HasPartial) {
        PartialCandidate P;
        P.Rank = static_cast<unsigned>(R) + 1;
        for (Term SB : TupleBodies[R])
          P.SetBodies.push_back(logic::toString(SB));
        P.Atoms = std::move(Slots[R].PartialAtoms);
        P.VerifiedClauses = std::move(Slots[R].VerifiedClauses);
        P.FailedOn = std::move(Slots[R].FailedOn);
        Res.Best = std::move(P);
      }
  }

  // Fold worker stats into the driver's.
  double Busy = 0;
  for (WorkerCtx &C : Ctxs) {
    if (!C.Synth)
      continue;
    const SynthStats &WS = C.Synth->Stats;
    Stats.TuplesTried += WS.TuplesTried;
    Stats.SmtChecks += WS.SmtChecks;
    Stats.PrefilterSeconds += WS.PrefilterSeconds;
    Stats.ReduceSeconds += WS.ReduceSeconds;
    Stats.HoudiniSeconds += WS.HoudiniSeconds;
    Stats.RecheckSeconds += WS.RecheckSeconds;
    // A shared cache's totals are folded once by the driver's delta
    // accounting in run(); only private per-worker caches are summed here.
    if (C.Synth->RC == &C.Synth->OwnRCache) {
      Stats.CacheHits += C.Synth->RC->hits();
      Stats.CacheMisses += C.Synth->RC->misses();
    }
    Stats.TuplesSkipped += WS.TuplesSkipped;
    Stats.WorkerExceptions += WS.WorkerExceptions;
    const resil::ResilCounters &WR = C.Synth->RCnt;
    Stats.Retries += WR.Retries;
    Stats.Fallbacks += WR.Fallbacks;
    Stats.FaultsInjected += WR.FaultsInjected;
    Stats.UnknownTimeouts += WR.UnknownTimeout;
    Stats.UnknownIncomplete += WR.UnknownIncomplete;
    Stats.SolverExceptions += WR.SolverExceptions;
    if (Winner != SIZE_MAX && Slots[Winner].Worker ==
                                  static_cast<unsigned>(&C - Ctxs.data()))
      Stats.AtomsAfterPrefilter = WS.AtomsAfterPrefilter;
    Busy += C.BusySeconds;
  }
  double Wall = secondsSince(SearchStart);
  Stats.WorkerUtilization =
      Wall > 0 ? Busy / (static_cast<double>(Workers) * Wall) : 1.0;
}

// -- Driver ---------------------------------------------------------------------------------

SynthResult Synthesizer::run() {
  auto Start = std::chrono::steady_clock::now();

  // Wire up observability: the caller's tracer, or -- Verbose back-compat
  // -- an internal Debug-level tracer logging to stdout (where the old
  // printf output went). Null TB keeps the whole pipeline on the
  // zero-overhead path.
  TraceSink = Opts.Trace;
  if (!TraceSink && Opts.Verbose) {
    obs::TracerConfig Cfg;
    Cfg.Level = obs::LogLevel::Debug;
    Cfg.LogStream = stdout;
    OwnTracer = std::make_unique<obs::Tracer>(Cfg);
    TraceSink = OwnTracer.get();
  }
  if (TraceSink)
    TB = TraceSink->worker(0);
  // Shared caches carry hits/misses from earlier runs; report deltas.
  unsigned BaseHits = RC->hits(), BaseMisses = RC->misses();
  obs::Span RunSp(TB, "synthesize");
  SynthResult Res;

  // Explicit exploration: counterexample detection + pre-filter states.
  std::vector<sys::ParamSystem::State> States;
  if (Opts.ExplicitPrefilter || Opts.StopOnExplicitCex) {
    auto T0 = std::chrono::steady_clock::now();
    explct::ExplicitResult ER = explct::explore(Sys, Opts.Explicit, TB);
    Stats.ExplicitStates = ER.NumStates;
    Stats.ExplicitSeconds = secondsSince(T0);
    SHARPIE_LOGF(TB, obs::LogLevel::Info, "[explicit] %u states in %.2fs",
                 ER.NumStates, secondsSince(T0));
    if (!ER.Safe && Opts.StopOnExplicitCex) {
      Res.Cex = ER.Cex;
      Res.Note = "explicit counterexample with N=" +
                 std::to_string(Opts.Explicit.NumThreads);
      Res.Stats = Stats;
      Res.Stats.Seconds = secondsSince(Start);
      if (TraceSink)
        Res.Stats.Metrics = TraceSink->metrics();
      return Res;
    }
    // Sample evenly up to the cap. This reachable-state set is computed
    // once and shared read-only by every search worker.
    size_t Step = std::max<size_t>(1, ER.States.size() /
                                          std::max(1u, Opts.MaxPrefilterStates));
    for (size_t I = 0; I < ER.States.size(); I += Step)
      States.push_back(std::move(ER.States[I]));
  }

  auto TEnum = std::chrono::steady_clock::now();
  std::vector<SetCandidate> Cands = enumerateSetBodies(Sys, F);
  std::vector<Term> Pool = enumerateInvAtoms(Sys, F);
  Stats.AtomsInPool = static_cast<unsigned>(Pool.size());

  Solver = makeSolver("smt_check");

  std::vector<std::vector<Term>> TupleBodies;
  if (!Opts.FixedSetBodies.empty()) {
    assert(Opts.FixedSetBodies.size() == Opts.Shape.NumSets &&
           "FixedSetBodies must match the shape");
    TupleBodies.push_back(Opts.FixedSetBodies);
  } else {
    for (const std::vector<size_t> &Tuple : rankTuples(Cands)) {
      std::vector<Term> Bodies;
      for (size_t I : Tuple)
        Bodies.push_back(Cands[I].Body);
      TupleBodies.push_back(std::move(Bodies));
    }
  }
  Stats.EnumerateSeconds = secondsSince(TEnum);

  unsigned Workers = engine::ThreadPool::effectiveWorkers(Opts.NumWorkers);
  Workers = static_cast<unsigned>(
      std::min<size_t>(Workers, std::max<size_t>(1, TupleBodies.size())));
  if (Workers > 1 && !outOfTime())
    runParallel(Workers, TupleBodies, Pool, States, Res);
  else
    runSerial(TupleBodies, Pool, States, Res);

  Stats.CacheHits += RC->hits() - BaseHits;
  Stats.CacheMisses += RC->misses() - BaseMisses;

  // Fold the driver-side supervision tallies (serial search, driver
  // solver); worker tallies were folded by runParallel.
  Stats.Retries += RCnt.Retries;
  Stats.Fallbacks += RCnt.Fallbacks;
  Stats.FaultsInjected += RCnt.FaultsInjected;
  Stats.UnknownTimeouts += RCnt.UnknownTimeout;
  Stats.UnknownIncomplete += RCnt.UnknownIncomplete;
  Stats.SolverExceptions += RCnt.SolverExceptions;

  // An unverified, unrefuted run is "inconclusive" (not merely UNKNOWN)
  // exactly when some failure could have hidden a proof: the verdict
  // "no invariant in this search space" would be unsound to report.
  Res.Inconclusive =
      !Res.Verified && !Res.Cex &&
      (outOfTime() || Stats.TuplesSkipped > 0 || Stats.UnknownTimeouts > 0 ||
       Stats.UnknownIncomplete > 0 || Stats.WorkerExceptions > 0 ||
       Stats.SolverExceptions > 0 || Stats.FaultsInjected > 0);

  if (TB) {
    // Zero-delta touches so the resilience counters always exist in the
    // exported metrics (ctr_retries etc. in every --json run, faulted or
    // not), which keeps benchmark schemas stable.
    TB->counter("retries", 0);
    TB->counter("fallbacks", 0);
    TB->counter("faults_injected", 0);
    TB->counter("tuples_skipped", 0);
    // Same for the incremental-Houdini counters, so an A/B pair of runs
    // (--no-incremental vs default) emits the same JSON keys.
    TB->counter("core_drops", 0);
    TB->counter("solver_context_reuses", 0);
    TB->counter("axioms_lazy_deferred", 0);
    // Refinement-loop counters: present in every mode so eager /
    // --no-refine / CEGAR runs stay schema-comparable.
    TB->counter("refine_full_groundings", 0);
    TB->counter("refine_instances_asserted", 0);
    TB->counter("refine_budget_exhausted", 0);
    TB->counter("quant_instances_filtered", 0);
    TB->counter("manifest_instances", 0);
  }

  Res.Stats = Stats;
  Res.Stats.Seconds = secondsSince(Start);
  if (TraceSink)
    Res.Stats.Metrics = TraceSink->metrics();
  return Res;
}

} // namespace

SynthResult sharpie::synth::synthesize(sys::ParamSystem &Sys,
                                       const SynthOptions &Opts) {
  return Synthesizer(Sys, Opts).run();
}
