//===- synth/Synth.cpp - The #Pi invariant synthesis driver -------------------===//
//
// Part of sharpie. See Synth.h.
//
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "logic/TermOps.h"
#include "quant/Quant.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace sharpie;
using namespace sharpie::synth;
using logic::Kind;
using logic::Sort;
using logic::Subst;
using logic::Term;
using logic::TermManager;
using smt::SatResult;

Formals sharpie::synth::formalsFor(TermManager &M,
                                   const ShapeTemplate &Shape) {
  return makeFormals(M, Shape); // Deterministic names: same vars each call.
}

namespace {

/// One instantiated occurrence of the unknown inv_0 in a reduced clause.
///
/// The invariant is split as  InvGlobal AND forall q: QGuard -> (meas AND
/// inv_0), where InvGlobal collects the atoms mentioning neither template
/// quantifiers nor counters (e.g. "n >= 2"); without the split such facts
/// would be trapped under the quantifier guard and unusable to discharge
/// the guard itself.
struct PlaceholderInst {
  Term P;          ///< Opaque Bool variable in the ground formula.
  Subst AtomSubst; ///< Formals (and state for post occurrences) -> actuals.
  bool IsHead;     ///< The skolemized head occurrence (one per clause).
  bool GlobalOnly; ///< Stands for InvGlobal rather than inv_0.
};

struct ReducedClause {
  std::string Name;
  Term Ground;
  std::vector<PlaceholderInst> Insts;
  bool HasHead = false;
  bool IsSafety = false;
};

class Synthesizer {
public:
  Synthesizer(sys::ParamSystem &Sys, const SynthOptions &Opts)
      : Sys(Sys), M(Sys.manager()), Opts(Opts),
        F(makeFormals(M, Opts.Shape)),
        Deadline(Opts.TimeBudgetSeconds > 0
                     ? std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   Opts.TimeBudgetSeconds))
                     : std::chrono::steady_clock::time_point::max()) {}

  bool outOfTime() const {
    return std::chrono::steady_clock::now() > Deadline;
  }

  SynthResult run();

private:
  // -- Search-space assembly -------------------------------------------------
  std::vector<std::vector<size_t>> rankTuples(
      const std::vector<SetCandidate> &Cands) const;
  std::vector<Term> prefilterAtoms(const std::vector<Term> &Pool,
                                   const std::vector<Term> &SetBodies,
                                   const std::vector<sys::ParamSystem::State>
                                       &States) const;

  // -- Clause construction (INSTQ + measurements + placeholders) ---------------
  Term cardAt(const std::vector<Term> &SetBodies, size_t I,
              const std::vector<Term> &Sigma, bool Post) const;
  Term qGuardAt(const std::vector<Term> &Sigma) const;
  void addInvInstance(const std::vector<Term> &SetBodies,
                      const std::vector<Term> &Sigma, bool Post, bool IsHead,
                      std::vector<Term> &Conj,
                      std::vector<PlaceholderInst> &Insts);
  std::vector<std::vector<Term>>
  bodyInstances(const std::vector<Term> &HeadSk, bool IsTrans,
                const std::vector<Term> &ExtraTids,
                const std::vector<Term> &ExtraInts) const;
  std::vector<ReducedClause>
  buildClauses(const std::vector<Term> &SetBodies, smt::SmtSolver *Oracle);

  // -- SOLVE (Houdini over the atom pool) ----------------------------------------
  bool houdini(const std::vector<ReducedClause> &Clauses,
               std::vector<Term> &Cand, std::string &Why);
  bool isGlobalAtom(logic::Term A) const;
  Term substitutedClause(const ReducedClause &C,
                         const std::vector<Term> &Cand) const;

  void minimizeAtoms(const std::vector<ReducedClause> &Clauses,
                     std::vector<Term> &Cand);
  Term closedInvariant(const std::vector<Term> &SetBodies,
                       const std::vector<Term> &Atoms) const;
  bool recheck(Term Inv, const std::vector<sys::ParamSystem::State> &States,
               std::string &Why);

  sys::ParamSystem &Sys;
  TermManager &M;
  SynthOptions Opts;
  Formals F;
  SynthStats Stats;
  std::unique_ptr<smt::SmtSolver> Solver;
  std::chrono::steady_clock::time_point Deadline;
};

// -- Tuple ranking ---------------------------------------------------------------

std::vector<std::vector<size_t>>
Synthesizer::rankTuples(const std::vector<SetCandidate> &Cands) const {
  unsigned m = Opts.Shape.NumSets;
  std::vector<std::vector<size_t>> Tuples;
  if (m == 0) {
    Tuples.push_back({});
    return Tuples;
  }
  // Select the candidate pool with per-origin diversity: a strict global
  // rank cut lets one prolific bucket (e.g. guard+pc conjunctions) crowd
  // out the quantifier-relative sets that quantified templates need.
  std::vector<size_t> Selected;
  {
    std::map<std::string, std::vector<size_t>> ByOrigin;
    std::vector<std::string> OriginOrder;
    for (size_t I = 0; I < Cands.size(); ++I) {
      auto It = ByOrigin.find(Cands[I].Origin);
      if (It == ByOrigin.end()) {
        OriginOrder.push_back(Cands[I].Origin);
        It = ByOrigin.emplace(Cands[I].Origin, std::vector<size_t>()).first;
      }
      It->second.push_back(I); // Cands is already rank-sorted.
    }
    for (size_t Round = 0; Selected.size() < Opts.MaxCandidateSets;
         ++Round) {
      bool Any = false;
      for (const std::string &O : OriginOrder) {
        const std::vector<size_t> &Bucket = ByOrigin[O];
        if (Round < Bucket.size() &&
            Selected.size() < Opts.MaxCandidateSets) {
          Selected.push_back(Bucket[Round]);
          Any = true;
        }
      }
      if (!Any)
        break;
    }
  }

  // A set body "covers" a template quantifier if the quantifier occurs in
  // it; tuples must jointly cover all template quantifiers, otherwise the
  // declared shape is not exercised.
  auto Covers = [&](size_t I, Term Q) {
    return logic::freeVars(Cands[I].Body).count(Q) != 0;
  };

  std::vector<size_t> Idx(m);
  std::function<void(size_t, size_t)> Rec = [&](size_t Pos, size_t Start) {
    if (Pos == m) {
      for (Term Q : F.Q) {
        bool Covered = false;
        for (size_t I : Idx)
          if (Covers(I, Q))
            Covered = true;
        if (!Covered)
          return;
      }
      Tuples.push_back(Idx);
      return;
    }
    for (size_t I = Start; I < Selected.size(); ++I) {
      Idx[Pos] = Selected[I];
      Rec(Pos + 1, I + 1);
    }
  };
  Rec(0, 0);
  std::stable_sort(Tuples.begin(), Tuples.end(),
                   [&](const std::vector<size_t> &A,
                       const std::vector<size_t> &B) {
                     int RA = 0, RB = 0;
                     for (size_t I : A)
                       RA += Cands[I].Rank;
                     for (size_t I : B)
                       RB += Cands[I].Rank;
                     return RA < RB;
                   });
  if (Tuples.size() > Opts.MaxTuples)
    Tuples.resize(Opts.MaxTuples);
  return Tuples;
}

// -- Explicit pre-filter ------------------------------------------------------------

std::vector<Term> Synthesizer::prefilterAtoms(
    const std::vector<Term> &Pool, const std::vector<Term> &SetBodies,
    const std::vector<sys::ParamSystem::State> &States) const {
  std::vector<Term> Out;
  // Bind counter formals to the cardinality terms themselves so the finite
  // evaluator counts exactly.
  Subst KSub;
  for (size_t I = 0; I < SetBodies.size(); ++I)
    KSub[F.K[I]] = M.mkCard(F.BoundVar, SetBodies[I]);
  for (Term A : Pool) {
    Term Inner = logic::substitute(M, A, KSub);
    if (!Opts.QGuard.isNull())
      Inner = M.mkImplies(Opts.QGuard, Inner);
    Term Quantified = F.Q.empty() ? Inner : M.mkForall(F.Q, Inner);
    bool Holds = true;
    for (const sys::ParamSystem::State &S : States) {
      logic::Evaluator Ev(S);
      if (!Ev.evalBool(Quantified)) {
        Holds = false;
        break;
      }
    }
    if (Holds)
      Out.push_back(A);
  }
  return Out;
}

// -- Clause construction -------------------------------------------------------------

Term Synthesizer::cardAt(const std::vector<Term> &SetBodies, size_t I,
                         const std::vector<Term> &Sigma, bool Post) const {
  Subst S;
  for (size_t J = 0; J < F.Q.size(); ++J)
    S[F.Q[J]] = Sigma[J];
  if (Post)
    for (const auto &[Pre, Prim] : Sys.primeSubst())
      S[Pre] = Prim;
  return M.mkCard(F.BoundVar, logic::substitute(M, SetBodies[I], S));
}

Term Synthesizer::qGuardAt(const std::vector<Term> &Sigma) const {
  if (Opts.QGuard.isNull())
    return M.mkTrue();
  Subst S;
  for (size_t J = 0; J < F.Q.size(); ++J)
    S[F.Q[J]] = Sigma[J];
  return logic::substitute(M, Opts.QGuard, S);
}

void Synthesizer::addInvInstance(const std::vector<Term> &SetBodies,
                                 const std::vector<Term> &Sigma, bool Post,
                                 bool IsHead, std::vector<Term> &Conj,
                                 std::vector<PlaceholderInst> &Insts) {
  PlaceholderInst Inst;
  Inst.IsHead = IsHead;
  Inst.GlobalOnly = false;
  for (size_t I = 0; I < SetBodies.size(); ++I) {
    Term KV = M.freshVar("k_inst", Sort::Int);
    Conj.push_back(M.mkEq(cardAt(SetBodies, I, Sigma, Post), KV));
    Inst.AtomSubst[F.K[I]] = KV;
  }
  for (size_t J = 0; J < F.Q.size(); ++J)
    Inst.AtomSubst[F.Q[J]] = Sigma[J];
  if (Post)
    for (const auto &[Pre, Prim] : Sys.primeSubst())
      Inst.AtomSubst[Pre] = Prim;
  Term Guard = qGuardAt(Sigma);
  Inst.P = M.freshVar(IsHead ? "P_head" : "P_body", Sort::Bool);
  if (IsHead) {
    // !Inv' = !InvGlobal' \/ exists q: QGuard /\ !inv_0; the measurement
    // equations above are definitional and stay conjoined.
    PlaceholderInst Glob;
    Glob.IsHead = false;
    Glob.GlobalOnly = true;
    Glob.P = M.freshVar("P_head_glob", Sort::Bool);
    if (Post)
      Glob.AtomSubst = Sys.primeSubst();
    Conj.push_back(M.mkOr(M.mkNot(Glob.P),
                          M.mkAnd(Guard, M.mkNot(Inst.P))));
    Insts.push_back(std::move(Glob));
  } else {
    // Body occurrence: the global part holds unconditionally (added once
    // per clause), the quantified part under its instance guard.
    bool HaveGlob = false;
    for (const PlaceholderInst &Prev : Insts)
      if (Prev.GlobalOnly && !Prev.IsHead && Prev.AtomSubst.empty() == !Post)
        HaveGlob = true;
    if (!HaveGlob) {
      PlaceholderInst Glob;
      Glob.IsHead = false;
      Glob.GlobalOnly = true;
      Glob.P = M.freshVar("P_body_glob", Sort::Bool);
      if (Post)
        Glob.AtomSubst = Sys.primeSubst();
      Conj.push_back(Glob.P);
      Insts.push_back(std::move(Glob));
    }
    Conj.push_back(M.mkImplies(Guard, Inst.P));
  }
  Insts.push_back(std::move(Inst));
}

std::vector<std::vector<Term>>
Synthesizer::bodyInstances(const std::vector<Term> &HeadSk, bool IsTrans,
                           const std::vector<Term> &ExtraTids,
                           const std::vector<Term> &ExtraInts) const {
  // Per-position candidate terms.
  std::vector<std::vector<Term>> PerPos;
  for (size_t J = 0; J < F.Q.size(); ++J) {
    std::vector<Term> L;
    // Every head skolem of matching sort: mutual-exclusion style proofs
    // need the symmetric instance (q2, q1) as well as (q1, q2).
    for (size_t J2 = 0; J2 < HeadSk.size(); ++J2)
      if (F.Q[J2].sort() == F.Q[J].sort())
        L.push_back(HeadSk[J2]);
    if (F.Q[J].sort() == Sort::Tid) {
      if (IsTrans && Sys.mode() == sys::Composition::Async)
        L.push_back(Sys.self());
      for (Term T : ExtraTids)
        L.push_back(T);
    } else {
      for (Term T : ExtraInts)
        L.push_back(T);
      if (IsTrans) {
        // Globals and their successors: unlock's s+1 is the ticket lock's
        // pivotal instance of the per-ticket counting quantifier.
        for (Term G : Sys.globals()) {
          L.push_back(G);
          L.push_back(M.mkAdd(G, M.mkInt(1)));
        }
        if (Sys.mode() == sys::Composition::Async)
          for (Term Loc : Sys.locals()) {
            L.push_back(M.mkRead(Loc, Sys.self()));
            L.push_back(M.mkAdd(M.mkRead(Loc, Sys.self()), M.mkInt(1)));
          }
      }
    }
    // Deduplicate, preserving order.
    std::vector<Term> U;
    for (Term T : L)
      if (std::find(U.begin(), U.end(), T) == U.end())
        U.push_back(T);
    PerPos.push_back(U);
  }
  // Bounded product.
  std::vector<std::vector<Term>> Out;
  std::vector<Term> Cur(F.Q.size());
  std::function<void(size_t)> Rec = [&](size_t Pos) {
    if (Out.size() >= Opts.MaxBodyInstances)
      return;
    if (Pos == F.Q.size()) {
      Out.push_back(Cur);
      return;
    }
    for (Term T : PerPos[Pos]) {
      Cur[Pos] = T;
      Rec(Pos + 1);
    }
  };
  Rec(0);
  return Out;
}

std::vector<ReducedClause>
Synthesizer::buildClauses(const std::vector<Term> &SetBodies,
                          smt::SmtSolver *Oracle) {
  std::vector<ReducedClause> Out;
  auto Externals = Sys.externalCounters();

  // Template-quantifier instances live only inside placeholder
  // substitutions, so the reduction cannot see them; hand them to the
  // index sets explicitly (without this, a cardinality-free clause never
  // instantiates the system's universals at the head skolems).
  auto InstanceTerms = [&](const std::vector<PlaceholderInst> &Insts) {
    std::vector<Term> Extra;
    for (const PlaceholderInst &I : Insts)
      for (Term Q : F.Q) {
        auto It = I.AtomSubst.find(Q);
        if (It != I.AtomSubst.end())
          Extra.push_back(It->second);
      }
    return Extra;
  };

  auto MakeHeadSk = [&]() {
    std::vector<Term> Sk;
    for (Term Q : F.Q)
      Sk.push_back(M.freshVar("q_hd", Q.sort()));
    return Sk;
  };

  // Clause (a): init /\ !Inv.
  {
    ReducedClause C;
    C.Name = "init";
    C.HasHead = true;
    std::vector<Term> Conj{Sys.init()};
    std::vector<Term> HeadSk = MakeHeadSk();
    addInvInstance(SetBodies, HeadSk, /*Post=*/false, /*IsHead=*/true, Conj,
                   C.Insts);
    engine::ReduceResult R =
        engine::reduceToGround(M, M.mkAnd(Conj), Opts.Reduce, Oracle,
                               Externals, InstanceTerms(C.Insts));
    C.Ground = R.Ground;
    if (Opts.Verbose)
      std::printf("    [reduce] %-16s size=%-7zu inst=%-6u axioms=%-5u "
                  "venn=%s/%u\n",
                  C.Name.c_str(), logic::termSize(C.Ground), R.NumInstances,
                  R.NumAxioms, R.VennApplied ? "yes" : "no",
                  R.NumVennRegions);
    Out.push_back(std::move(C));
  }

  // Clauses (b): Inv /\ next_T /\ !Inv' per transition.
  for (const sys::Transition &T : Sys.transitions()) {
    ReducedClause C;
    C.Name = "ind:" + T.Name;
    C.HasHead = true;
    std::vector<Term> Conj{Sys.transitionFormula(T)};
    std::vector<Term> HeadSk = MakeHeadSk();
    addInvInstance(SetBodies, HeadSk, /*Post=*/true, /*IsHead=*/true, Conj,
                   C.Insts);
    for (const std::vector<Term> &Sigma :
         bodyInstances(HeadSk, /*IsTrans=*/true, {}, {}))
      addInvInstance(SetBodies, Sigma, /*Post=*/false, /*IsHead=*/false,
                     Conj, C.Insts);
    engine::ReduceResult R =
        engine::reduceToGround(M, M.mkAnd(Conj), Opts.Reduce, Oracle,
                               Externals, InstanceTerms(C.Insts));
    C.Ground = R.Ground;
    if (Opts.Verbose)
      std::printf("    [reduce] %-16s size=%-7zu inst=%-6u axioms=%-5u "
                  "venn=%s/%u\n",
                  C.Name.c_str(), logic::termSize(C.Ground), R.NumInstances,
                  R.NumAxioms, R.VennApplied ? "yes" : "no",
                  R.NumVennRegions);
    Out.push_back(std::move(C));
  }

  // Clause (c): Inv /\ !safe.
  {
    ReducedClause C;
    C.Name = "safe";
    C.IsSafety = true;
    quant::SkolemResult NotSafe = quant::skolemize(M, M.mkNot(Sys.safe()));
    std::vector<Term> Conj{NotSafe.Formula};
    std::vector<Term> ExtraTids, ExtraInts;
    for (Term Sk : NotSafe.Skolems)
      (Sk.sort() == Sort::Tid ? ExtraTids : ExtraInts).push_back(Sk);
    // Int-sorted ground subterms of the property (e.g. n-1 in the filter
    // lock's property) are natural instance candidates.
    for (Term S : logic::collectSubterms(Sys.safe(), [](Term X) {
           return X.sort() == Sort::Int &&
                  (X.kind() == Kind::Sub || X.kind() == Kind::Add ||
                   X.kind() == Kind::IntConst);
         })) {
      std::set<Term> FV = logic::freeVars(S);
      bool OnlyGlobals = true;
      for (Term V : FV)
        if (std::find(Sys.globals().begin(), Sys.globals().end(), V) ==
            Sys.globals().end())
          OnlyGlobals = false;
      if (OnlyGlobals)
        ExtraInts.push_back(S);
    }
    for (const std::vector<Term> &Sigma :
         bodyInstances({}, /*IsTrans=*/false, ExtraTids, ExtraInts))
      addInvInstance(SetBodies, Sigma, /*Post=*/false, /*IsHead=*/false,
                     Conj, C.Insts);
    engine::ReduceResult R =
        engine::reduceToGround(M, M.mkAnd(Conj), Opts.Reduce, Oracle,
                               Externals, InstanceTerms(C.Insts));
    C.Ground = R.Ground;
    if (Opts.Verbose)
      std::printf("    [reduce] %-16s size=%-7zu inst=%-6u axioms=%-5u "
                  "venn=%s/%u\n",
                  C.Name.c_str(), logic::termSize(C.Ground), R.NumInstances,
                  R.NumAxioms, R.VennApplied ? "yes" : "no",
                  R.NumVennRegions);
    Out.push_back(std::move(C));
  }
  return Out;
}

// -- SOLVE --------------------------------------------------------------------------

bool Synthesizer::isGlobalAtom(Term A) const {
  for (Term V : logic::freeVars(A)) {
    if (std::find(F.Q.begin(), F.Q.end(), V) != F.Q.end())
      return false;
    if (std::find(F.K.begin(), F.K.end(), V) != F.K.end())
      return false;
  }
  return true;
}

Term Synthesizer::substitutedClause(const ReducedClause &C,
                                    const std::vector<Term> &Cand) const {
  std::map<Term, Term> Rep;
  for (const PlaceholderInst &I : C.Insts) {
    std::vector<Term> As;
    As.reserve(Cand.size());
    for (Term A : Cand) {
      if (I.GlobalOnly && !isGlobalAtom(A))
        continue;
      As.push_back(logic::substitute(M, A, I.AtomSubst));
    }
    Rep[I.P] = M.mkAnd(As);
  }
  return logic::replaceAll(M, C.Ground, Rep);
}

bool Synthesizer::houdini(const std::vector<ReducedClause> &Clauses,
                          std::vector<Term> &Cand, std::string &Why) {
  unsigned MaxIters = static_cast<unsigned>(Cand.size()) + 8;
  for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
    if (outOfTime()) {
      Why = "time budget exhausted";
      return false;
    }
    bool AllPassed = true;
    for (const ReducedClause &C : Clauses) {
      if (C.IsSafety)
        continue;
      Solver->push();
      Solver->add(substitutedClause(C, Cand));
      SatResult R = Solver->check();
      ++Stats.SmtChecks;
      if (R == SatResult::Unsat) {
        Solver->pop();
        continue;
      }
      if (R == SatResult::Unknown) {
        Solver->pop();
        Why = "smt unknown on " + C.Name;
        return false;
      }
      std::unique_ptr<smt::SmtModel> Model = Solver->model();
      const PlaceholderInst *Head = nullptr;
      for (const PlaceholderInst &I : C.Insts)
        if (I.IsHead)
          Head = &I;
      assert(Head && "inductive clause without head instance");
      std::vector<Term> Kept;
      for (Term A : Cand) {
        std::optional<bool> V =
            Model ? Model->evalBool(logic::substitute(M, A, Head->AtomSubst))
                  : std::nullopt;
        if (V.has_value() && !*V) {
          if (Opts.Verbose)
            std::printf("      [houdini] %s drops %s\n", C.Name.c_str(),
                        logic::toString(A).c_str());
          continue; // Refuted at the head: drop.
        }
        Kept.push_back(A);
      }
      Solver->pop();
      if (Kept.size() == Cand.size()) {
        Why = "stuck on " + C.Name + " (no atom refuted by model)";
        return false;
      }
      Cand = std::move(Kept);
      AllPassed = false;
    }
    if (AllPassed) {
      if (Opts.Verbose) {
        std::printf("      [houdini] fixpoint with %zu atoms:\n",
                    Cand.size());
        for (Term A : Cand)
          std::printf("        %s\n", logic::toString(A).c_str());
      }
      // Fixpoint reached; check the safety clause.
      for (const ReducedClause &C : Clauses) {
        if (!C.IsSafety)
          continue;
        Solver->push();
        Solver->add(substitutedClause(C, Cand));
        SatResult R = Solver->check();
        ++Stats.SmtChecks;
        Solver->pop();
        if (R == SatResult::Unsat)
          return true;
        Why = R == SatResult::Sat ? "fixpoint too weak for safety"
                                  : "smt unknown on safety";
        if (Opts.Verbose && std::getenv("SHARPIE_DUMP_SAFETY"))
          std::printf("      [safety clause]\n%s\n",
                      logic::toString(substitutedClause(C, Cand)).c_str());
        return false;
      }
      return true; // No safety clause (not expected).
    }
  }
  Why = "houdini iteration budget exhausted";
  return false;
}

/// Greedily drops atoms whose removal keeps every clause (including
/// safety) discharged. Yields the concise invariants the paper reports and
/// shrinks the final re-check's instantiation.
void Synthesizer::minimizeAtoms(const std::vector<ReducedClause> &Clauses,
                                std::vector<Term> &Cand) {
  auto AllPass = [&](const std::vector<Term> &Trial) {
    for (const ReducedClause &C : Clauses) {
      Solver->push();
      Solver->add(substitutedClause(C, Trial));
      SatResult R = Solver->check();
      ++Stats.SmtChecks;
      Solver->pop();
      if (R != SatResult::Unsat)
        return false;
    }
    return true;
  };
  for (size_t I = Cand.size(); I-- > 0;) {
    if (outOfTime())
      return;
    std::vector<Term> Trial = Cand;
    Trial.erase(Trial.begin() + I);
    if (AllPass(Trial))
      Cand = std::move(Trial);
  }
}

// -- Output and re-checking -------------------------------------------------------------

Term Synthesizer::closedInvariant(const std::vector<Term> &SetBodies,
                                  const std::vector<Term> &Atoms) const {
  Subst KSub;
  for (size_t I = 0; I < SetBodies.size(); ++I)
    KSub[F.K[I]] = M.mkCard(F.BoundVar, SetBodies[I]);
  std::vector<Term> GlobalAs, QuantAs;
  for (Term A : Atoms)
    (isGlobalAtom(A) ? GlobalAs : QuantAs)
        .push_back(logic::substitute(M, A, KSub));
  Term Inner = M.mkAnd(QuantAs);
  if (!Opts.QGuard.isNull())
    Inner = M.mkImplies(Opts.QGuard, Inner);
  Term Quant = F.Q.empty() ? Inner : M.mkForall(F.Q, Inner);
  return M.mkAnd(M.mkAnd(GlobalAs), Quant);
}

bool Synthesizer::recheck(Term Inv,
                          const std::vector<sys::ParamSystem::State> &States,
                          std::string &Why) {
  if (!explct::holdsInAll(States, Inv)) {
    Why = "recheck: invariant fails on an explicit reachable state";
    return false;
  }
  std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
  for (const sys::Obligation &O : sys::safetyObligations(Sys, Inv)) {
    engine::ReduceResult R = engine::reduceToGround(
        M, O.Psi, Opts.Reduce, Oracle.get(), Sys.externalCounters());
    std::unique_ptr<smt::SmtSolver> S = smt::makeZ3Solver(M);
    S->setTimeoutMs(Opts.SmtTimeoutMs);
    S->add(R.Ground);
    ++Stats.SmtChecks;
    if (S->check() != SatResult::Unsat) {
      Why = "recheck: obligation " + O.Name + " not discharged";
      if (Opts.Verbose)
        std::printf("    recheck failed on %s (ground size %zu)\n",
                    O.Name.c_str(), logic::termSize(R.Ground));
      return false;
    }
  }
  return true;
}

// -- Driver ---------------------------------------------------------------------------------

SynthResult Synthesizer::run() {
  auto Start = std::chrono::steady_clock::now();
  auto Since = [](std::chrono::steady_clock::time_point T0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  };
  SynthResult Res;

  // Explicit exploration: counterexample detection + pre-filter states.
  std::vector<sys::ParamSystem::State> States;
  if (Opts.ExplicitPrefilter || Opts.StopOnExplicitCex) {
    auto T0 = std::chrono::steady_clock::now();
    explct::ExplicitResult ER = explct::explore(Sys, Opts.Explicit);
    Stats.ExplicitStates = ER.NumStates;
    if (Opts.Verbose)
      std::printf("  [explicit] %u states in %.2fs\n", ER.NumStates,
                  Since(T0));
    if (!ER.Safe && Opts.StopOnExplicitCex) {
      Res.Cex = ER.Cex;
      Res.Note = "explicit counterexample with N=" +
                 std::to_string(Opts.Explicit.NumThreads);
      Res.Stats = Stats;
      Res.Stats.Seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
      return Res;
    }
    // Sample evenly up to the cap.
    size_t Step = std::max<size_t>(1, ER.States.size() /
                                          std::max(1u, Opts.MaxPrefilterStates));
    for (size_t I = 0; I < ER.States.size(); I += Step)
      States.push_back(std::move(ER.States[I]));
  }

  std::vector<SetCandidate> Cands = enumerateSetBodies(Sys, F);
  std::vector<Term> Pool = enumerateInvAtoms(Sys, F);
  Stats.AtomsInPool = static_cast<unsigned>(Pool.size());

  Solver = smt::makeZ3Solver(M);
  Solver->setTimeoutMs(Opts.SmtTimeoutMs);

  std::vector<std::vector<Term>> TupleBodies;
  if (!Opts.FixedSetBodies.empty()) {
    assert(Opts.FixedSetBodies.size() == Opts.Shape.NumSets &&
           "FixedSetBodies must match the shape");
    TupleBodies.push_back(Opts.FixedSetBodies);
  } else {
    for (const std::vector<size_t> &Tuple : rankTuples(Cands)) {
      std::vector<Term> Bodies;
      for (size_t I : Tuple)
        Bodies.push_back(Cands[I].Body);
      TupleBodies.push_back(std::move(Bodies));
    }
  }

  std::string LastWhy = "no candidate set tuple succeeded";
  for (const std::vector<Term> &SetBodies : TupleBodies) {
    if (outOfTime()) {
      LastWhy = "time budget exhausted";
      break;
    }
    ++Stats.TuplesTried;
    if (Opts.Verbose) {
      std::printf("  [tuple %u]", Stats.TuplesTried);
      for (Term SB : SetBodies)
        std::printf(" #{t | %s}", logic::toString(SB).c_str());
      std::printf("\n");
    }

    std::vector<Term> Cand = Pool;
    auto TPre = std::chrono::steady_clock::now();
    if (Opts.ExplicitPrefilter && !States.empty())
      Cand = prefilterAtoms(Pool, SetBodies, States);
    double PreSec = Since(TPre);
    Stats.AtomsAfterPrefilter = static_cast<unsigned>(Cand.size());
    if (Opts.Verbose)
      std::printf("    atoms: %zu of %zu survive the explicit pre-filter "
                  "(%.2fs)\n",
                  Cand.size(), Pool.size(), PreSec);

    std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
    auto TBuild = std::chrono::steady_clock::now();
    std::vector<ReducedClause> Clauses = buildClauses(SetBodies, Oracle.get());
    auto THou = std::chrono::steady_clock::now();
    if (Opts.Verbose)
      std::printf("    clauses built in %.2fs\n", Since(TBuild));

    std::string Why;
    bool HoudiniOk = houdini(Clauses, Cand, Why);
    if (Opts.Verbose)
      std::printf("    houdini %s in %.2fs\n", HoudiniOk ? "ok" : "failed",
                  Since(THou));
    if (!HoudiniOk) {
      LastWhy = Why;
      if (Opts.Verbose)
        std::printf("    houdini failed: %s\n", Why.c_str());
      continue;
    }
    if (Opts.MinimizeInvariant) {
      auto TMin = std::chrono::steady_clock::now();
      size_t Before = Cand.size();
      minimizeAtoms(Clauses, Cand);
      if (Opts.Verbose)
        std::printf("    minimized %zu -> %zu atoms in %.2fs\n", Before,
                    Cand.size(), Since(TMin));
    }
    Term Inv = closedInvariant(SetBodies, Cand);
    auto TRe = std::chrono::steady_clock::now();
    bool RecheckOk = !Opts.FinalRecheck || recheck(Inv, States, Why);
    if (Opts.Verbose)
      std::printf("    recheck %s in %.2fs\n", RecheckOk ? "ok" : "failed",
                  Since(TRe));
    if (!RecheckOk) {
      LastWhy = Why;
      continue;
    }
    Res.Verified = true;
    Res.Invariant = Inv;
    Res.SetBodies = SetBodies;
    Res.Atoms = Cand;
    Stats.AtomsInInvariant = static_cast<unsigned>(Cand.size());
    break;
  }
  if (!Res.Verified)
    Res.Note = LastWhy;
  Res.Stats = Stats;
  Res.Stats.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Res;
}

} // namespace

SynthResult sharpie::synth::synthesize(sys::ParamSystem &Sys,
                                       const SynthOptions &Opts) {
  return Synthesizer(Sys, Opts).run();
}
