//===- synth/Grammar.h - Search-space grammars ------------------*- C++ -*-===//
//
// Part of sharpie. The paper's Horn solver searches for (i) the unknown
// set-defining predicates s_i of the shape template and (ii) the scalar
// part inv_0 relating cardinalities to program data (Sec. 6.1). This module
// spans the same search space syntactically:
//
//   * enumerateSetBodies produces candidate set predicates over the bound
//     thread variable, ranked so that predicates harvested from the safety
//     property and from transition guards come first (these are where every
//     inferred cardinality in the paper's tables comes from);
//   * enumerateInvAtoms produces the candidate-atom pool from which the
//     Houdini solver (Solve.h) assembles inv_0 as a maximal inductive
//     conjunction: difference bounds over cardinality counters, globals and
//     template quantifiers, threshold atoms (3k > 2n) for heard-of systems,
//     and guarded per-thread atoms for quantified invariants.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SYNTH_GRAMMAR_H
#define SHARPIE_SYNTH_GRAMMAR_H

#include "system/System.h"

#include <string>
#include <vector>

namespace sharpie {
namespace synth {

/// The shape template of paper Sec. 6.1: the number of cardinality sets and
/// the sorts of the universally quantified template variables.
struct ShapeTemplate {
  unsigned NumSets = 0;
  std::vector<logic::Sort> Quantifiers; ///< Sort::Tid or Sort::Int each.
};

/// A candidate set-defining predicate.
struct SetCandidate {
  logic::Term Body;    ///< Over BoundVar, state, and the template formals.
  int Rank = 0;        ///< Lower is tried earlier.
  std::string Origin;  ///< "safety", "guard", "pc", "quantifier", ...
};

/// Formal variables of the invariant template shared by set bodies, atoms
/// and instances.
struct Formals {
  logic::Term BoundVar;               ///< The set-comprehension variable t.
  std::vector<logic::Term> Q;         ///< Template quantifier variables.
  std::vector<logic::Term> K;         ///< One counter formal per set.
};

/// Creates the formal vocabulary for \p Shape (deterministic names).
Formals makeFormals(logic::TermManager &M, const ShapeTemplate &Shape);

/// Enumerates ranked candidate set bodies for \p Sys.
std::vector<SetCandidate> enumerateSetBodies(const sys::ParamSystem &Sys,
                                             const Formals &F);

/// Enumerates the candidate atom pool for inv_0 over the formals \p F.
/// Atoms are pre-state formulas; per-instance substitutions map the formals
/// (and, for post-state occurrences, the state variables) to actuals.
std::vector<logic::Term> enumerateInvAtoms(const sys::ParamSystem &Sys,
                                           const Formals &F);

/// All integer constants appearing in the system's formulas (guards,
/// updates, init, safety), sorted. The workhorse constant pool of both
/// grammars.
std::vector<int64_t> systemConstants(const sys::ParamSystem &Sys);

/// Per-local constant pools: the constants the system itself compares with
/// or assigns to each local array. Keeps one local's sentinel values (the
/// ticket lock's m = -1) out of another local's location atoms.
std::map<logic::Term, std::vector<int64_t>>
perLocalConstants(const sys::ParamSystem &Sys);

} // namespace synth
} // namespace sharpie

#endif // SHARPIE_SYNTH_GRAMMAR_H
