//===- synth/Grammar.cpp - Search-space grammars ------------------------------===//
//
// Part of sharpie. See Grammar.h.
//
//===----------------------------------------------------------------------===//

#include "synth/Grammar.h"

#include "logic/TermOps.h"

#include <algorithm>
#include <set>

using namespace sharpie;
using namespace sharpie::synth;
using logic::Kind;
using logic::Sort;
using logic::Subst;
using logic::Term;
using logic::TermManager;

Formals sharpie::synth::makeFormals(TermManager &M,
                                    const ShapeTemplate &Shape) {
  Formals F;
  F.BoundVar = M.mkVar("%set_t", Sort::Tid);
  for (size_t I = 0; I < Shape.Quantifiers.size(); ++I)
    F.Q.push_back(M.mkVar("%q" + std::to_string(I), Shape.Quantifiers[I]));
  for (unsigned I = 0; I < Shape.NumSets; ++I)
    F.K.push_back(M.mkVar("%k" + std::to_string(I), Sort::Int));
  return F;
}

std::vector<int64_t>
sharpie::synth::systemConstants(const sys::ParamSystem &Sys) {
  std::set<int64_t> Cs;
  auto Harvest = [&Cs](Term T) {
    if (T.isNull())
      return;
    for (Term C : logic::collectSubterms(
             T, [](Term S) { return S.kind() == Kind::IntConst; }))
      Cs.insert(C->value());
  };
  Harvest(Sys.init());
  Harvest(Sys.safe());
  for (const sys::Transition &T : Sys.transitions()) {
    Harvest(T.Guard);
    Harvest(T.SyncRelation);
    for (const auto &[V, U] : T.GlobalUpd)
      Harvest(U);
    for (const auto &[V, U] : T.LocalUpd)
      Harvest(U);
  }
  return std::vector<int64_t>(Cs.begin(), Cs.end());
}

std::map<Term, std::vector<int64_t>>
sharpie::synth::perLocalConstants(const sys::ParamSystem &Sys) {
  std::map<Term, std::set<int64_t>> Pools;
  // Comparisons Read(L, .) op c anywhere in the system's formulas.
  auto HarvestAtoms = [&](Term T) {
    if (T.isNull())
      return;
    for (Term A : logic::collectSubterms(T, [](Term S) {
           Kind K = S.kind();
           return K == Kind::Eq || K == Kind::Le || K == Kind::Lt;
         })) {
      Term L = A->kid(0), R = A->kid(1);
      if (R.kind() == Kind::Read)
        std::swap(L, R);
      if (L.kind() == Kind::Read && L->kid(0).kind() == Kind::Var &&
          R.kind() == Kind::IntConst)
        Pools[L->kid(0)].insert(R->value());
    }
  };
  HarvestAtoms(Sys.init());
  HarvestAtoms(Sys.safe());
  auto HarvestValue = [&](Term L, Term V) {
    if (V.kind() == Kind::IntConst)
      Pools[L].insert(V->value());
  };
  for (const sys::Transition &T : Sys.transitions()) {
    HarvestAtoms(T.Guard);
    HarvestAtoms(T.SyncRelation);
    for (const auto &[L, V] : T.LocalUpd)
      HarvestValue(L, V);
    for (const sys::Transition::ArrayWrite &W : T.Writes)
      HarvestValue(W.Arr, W.Val);
  }
  std::map<Term, std::vector<int64_t>> Out;
  for (auto &[L, S] : Pools)
    Out.emplace(L, std::vector<int64_t>(S.begin(), S.end()));
  return Out;
}

namespace {

/// Collects boolean atoms of \p T that mention a read of a local at the
/// system's self() variable, rewritten to be about \p NewIdx instead. These
/// are the guard atoms the paper's inferred sets are made of (e.g.
/// "m(t) <= s" from the ticket lock's unlock guard).
std::vector<Term> guardAtomsAt(const sys::ParamSystem &Sys, Term Phi,
                               Term NewIdx) {
  TermManager &M = Sys.manager();
  if (Phi.isNull())
    return {};
  std::set<Term> StateVars;
  for (Term G : Sys.globals())
    StateVars.insert(G);
  for (Term L : Sys.locals())
    StateVars.insert(L);
  std::set<Term> Atoms = logic::collectSubterms(Phi, [&](Term S) {
    if (S.sort() != Sort::Bool)
      return false;
    Kind K = S.kind();
    if (K != Kind::Eq && K != Kind::Le && K != Kind::Lt)
      return false;
    if (logic::containsKind(S, Kind::Card))
      return false;
    // Must mention self(), and be closed over self() and the state --
    // atoms harvested from inside a guard's set comprehension would leak
    // the comprehension's bound variable.
    std::set<Term> FV = logic::freeVars(S);
    if (!FV.count(Sys.self()))
      return false;
    bool HasGlobalOrSecondArray = false;
    unsigned NumArrays = 0;
    for (Term V : FV) {
      if (V != Sys.self() && !StateVars.count(V))
        return false;
      if (V.sort() == logic::Sort::Int)
        HasGlobalOrSecondArray = true;
      if (V.sort() == logic::Sort::Array)
        ++NumArrays;
    }
    // Pure "pc(t) = loc" comparisons are already produced by the location
    // grammar; only *relational* guard atoms (local vs. global, or across
    // two locals, like the ticket lock's "m(t) <= s") are kept here.
    return HasGlobalOrSecondArray || NumArrays >= 2;
  });
  Subst Rename;
  Rename[Sys.self()] = NewIdx;
  std::vector<Term> Out;
  for (Term A : Atoms)
    Out.push_back(logic::substitute(M, A, Rename));
  return Out;
}

void addCandidate(std::vector<SetCandidate> &Out, std::set<Term> &Seen,
                  Term Body, int Rank, const char *Origin) {
  if (Body.isNull() || Body.kind() == Kind::BoolConst)
    return;
  if (!Seen.insert(Body).second)
    return;
  Out.push_back({Body, Rank, Origin});
}

} // namespace

std::vector<SetCandidate>
sharpie::synth::enumerateSetBodies(const sys::ParamSystem &Sys,
                                   const Formals &F) {
  TermManager &M = Sys.manager();
  Term T = F.BoundVar;
  std::vector<SetCandidate> Out;
  std::set<Term> Seen;
  std::vector<int64_t> Consts = systemConstants(Sys);

  // Rank 0: the exact set bodies of cardinality terms in the safety
  // property (e.g. #{t | pc(t) = 3} <= 1 seeds {pc(t) = 3}).
  for (Term C : logic::collectSubterms(
           Sys.safe(), [](Term S) { return S.kind() == Kind::Card; })) {
    Subst Rn;
    Rn[C->binders()[0]] = T;
    addCandidate(Out, Seen, logic::substitute(M, C->body(), Rn), 0, "safety");
  }
  // Rank 1: location atoms of the safety property itself (a property
  // "pc(t) = 5 -> fl = 1" makes {pc = 5}, {pc >= 5}, {pc >= 4} natural
  // counting regions).
  for (Term A : logic::collectSubterms(Sys.safe(), [&](Term S) {
         if (S.kind() != Kind::Eq && S.kind() != Kind::Le &&
             S.kind() != Kind::Lt)
           return false;
         Term L = S.node()->kid(0), R = S.node()->kid(1);
         if (R.kind() == Kind::Read)
           std::swap(L, R);
         return L.kind() == Kind::Read && R.kind() == Kind::IntConst;
       })) {
    Term L = A->kid(0), R = A->kid(1);
    if (R.kind() == Kind::Read)
      std::swap(L, R);
    Term Arr = L->kid(0);
    if (Arr.kind() != Kind::Var ||
        std::find(Sys.locals().begin(), Sys.locals().end(), Arr) ==
            Sys.locals().end())
      continue;
    int64_t C = R->value();
    Term Rd = M.mkRead(Arr, T);
    addCandidate(Out, Seen, M.mkEq(Rd, M.mkInt(C)), 1, "safety-loc");
    addCandidate(Out, Seen, M.mkGe(Rd, M.mkInt(C)), 1, "safety-loc");
    addCandidate(Out, Seen, M.mkGe(Rd, M.mkInt(C - 1)), 1, "safety-loc");
    addCandidate(Out, Seen, M.mkLe(Rd, M.mkInt(C)), 1, "safety-loc");
  }

  // Also bodies of cardinality sets used in guards (filter lock line 5).
  for (const sys::Transition &Tr : Sys.transitions()) {
    Term Src = Tr.SyncRelation.isNull() ? Tr.Guard : Tr.SyncRelation;
    for (Term C : logic::collectSubterms(
             Src, [](Term S) { return S.kind() == Kind::Card; })) {
      Subst Rn;
      Rn[C->binders()[0]] = T;
      Term Body = logic::substitute(M, C->body(), Rn);
      // Guard set bodies may mention the mover's locals; re-index those to
      // a template quantifier of matching sort if available, otherwise
      // drop the candidate (it is not closed under the formals).
      std::set<Term> FV = logic::freeVars(Body);
      if (FV.count(Sys.self())) {
        for (Term Q : F.Q) {
          if (Q.sort() == Sort::Tid) {
            Subst S2;
            S2[Sys.self()] = Q;
            addCandidate(Out, Seen, logic::substitute(M, Body, S2), 1,
                         "guard-card");
          }
        }
        continue;
      }
      addCandidate(Out, Seen, Body, 1, "guard-card");
    }
  }

  // Guard atoms at the bound variable; locations constants.
  std::vector<Term> GuardAtoms;
  {
    std::set<Term> GSeen;
    for (const sys::Transition &Tr : Sys.transitions())
      for (Term A : guardAtomsAt(Sys, Tr.Guard, T))
        if (GSeen.insert(A).second)
          GuardAtoms.push_back(A);
  }

  // Rank 2: a relational guard atom conjoined with a location atom *from
  // the same transition guard* -- exactly the shape of the ticket lock's
  // inferred set {t | m(t) <= s /\ pc(t) = 2} (the enter guard restricted
  // to an arbitrary thread).
  for (const sys::Transition &Tr : Sys.transitions()) {
    std::vector<Term> Rel = guardAtomsAt(Sys, Tr.Guard, T);
    if (Rel.empty() || Tr.Guard.isNull())
      continue;
    // Location atoms of the same guard: Read(L, self) op const.
    std::vector<Term> Locs;
    for (Term A : logic::collectSubterms(Tr.Guard, [&](Term S) {
           Kind K = S.kind();
           if (K != Kind::Eq && K != Kind::Le && K != Kind::Lt)
             return false;
           Term L = S->kid(0), R = S->kid(1);
           if (L.kind() != Kind::Read)
             std::swap(L, R);
           return L.kind() == Kind::Read && L->kid(1) == Sys.self() &&
                  R.kind() == Kind::IntConst;
         })) {
      Subst Rn;
      Rn[Sys.self()] = T;
      Locs.push_back(logic::substitute(M, A, Rn));
    }
    for (Term R : Rel)
      for (Term L : Locs)
        addCandidate(Out, Seen, M.mkAnd(R, L), 2, "guard+pc");
  }

  // Identify a "pc-like" classification: atoms L(t) = c / >= c / <= c,
  // using only the constants the system itself relates to each local.
  std::map<Term, std::vector<int64_t>> LocalCs = perLocalConstants(Sys);
  std::vector<Term> PcAtoms;
  for (Term L : Sys.locals()) {
    Term Rd = M.mkRead(L, T);
    for (int64_t C : LocalCs[L]) {
      PcAtoms.push_back(M.mkEq(Rd, M.mkInt(C)));
      PcAtoms.push_back(M.mkGe(Rd, M.mkInt(C)));
      PcAtoms.push_back(M.mkLe(Rd, M.mkInt(C)));
    }
  }

  // Rank 3: quantifier-relative sets: L(t) ~ q (Int q), L(t) = L(q) (Tid q).
  for (Term Q : F.Q) {
    for (Term L : Sys.locals()) {
      Term Rd = M.mkRead(L, T);
      if (Q.sort() == Sort::Int) {
        addCandidate(Out, Seen, M.mkGe(Rd, Q), 3, "quantifier");
        addCandidate(Out, Seen, M.mkEq(Rd, Q), 3, "quantifier");
        addCandidate(Out, Seen, M.mkLe(Rd, Q), 4, "quantifier");
      } else {
        Term RdQ = M.mkRead(L, Q);
        addCandidate(Out, Seen, M.mkEq(Rd, RdQ), 3, "quantifier");
        addCandidate(Out, Seen, M.mkLe(Rd, RdQ), 5, "quantifier");
      }
    }
  }

  // Rank 4: plain pc atoms and two-sided ranges c1 <= L(t) <= c2.
  for (Term P : PcAtoms)
    addCandidate(Out, Seen, P, 4, "pc");
  for (Term L : Sys.locals()) {
    Term Rd = M.mkRead(L, T);
    const std::vector<int64_t> &Cs = LocalCs[L];
    for (size_t I = 0; I < Cs.size(); ++I)
      for (size_t J = I + 1; J < Cs.size(); ++J)
        addCandidate(Out, Seen,
                     M.mkAnd(M.mkGe(Rd, M.mkInt(Cs[I])),
                             M.mkLe(Rd, M.mkInt(Cs[J]))),
                     4, "range");
  }

  // Rank 5: guard atoms alone, and local-vs-global comparisons.
  for (Term G : GuardAtoms)
    addCandidate(Out, Seen, G, 5, "guard");
  for (Term L : Sys.locals()) {
    Term Rd = M.mkRead(L, T);
    for (Term G : Sys.globals()) {
      addCandidate(Out, Seen, M.mkLe(Rd, G), 5, "local-global");
      addCandidate(Out, Seen, M.mkGe(Rd, G), 6, "local-global");
      addCandidate(Out, Seen, M.mkEq(Rd, G), 6, "local-global");
    }
  }

  std::stable_sort(Out.begin(), Out.end(),
                   [](const SetCandidate &A, const SetCandidate &B) {
                     return A.Rank < B.Rank;
                   });
  return Out;
}

std::vector<Term>
sharpie::synth::enumerateInvAtoms(const sys::ParamSystem &Sys,
                                  const Formals &F) {
  TermManager &M = Sys.manager();
  std::vector<Term> Out;
  std::set<Term> Seen;
  auto Add = [&](Term A) {
    if (A.isNull() || A.kind() == Kind::BoolConst)
      return;
    if (Seen.insert(A).second)
      Out.push_back(A);
  };

  std::vector<int64_t> Consts = systemConstants(Sys);
  std::vector<int64_t> SmallCs = {0, 1};
  std::optional<Term> N = Sys.sizeVar();

  // -- Counter atoms ----------------------------------------------------------
  for (Term K : F.K) {
    for (int64_t C : SmallCs) {
      Add(M.mkLe(K, M.mkInt(C)));
      Add(M.mkGe(K, M.mkInt(C + 1)));
    }
    // Against globals, with small offsets (intro's "#{pc>=2} <= a").
    for (Term G : Sys.globals()) {
      for (int64_t Off : {-1, 0, 1}) {
        Add(M.mkLe(K, M.mkAdd(G, M.mkInt(Off))));
        Add(M.mkGe(K, M.mkAdd(G, M.mkInt(Off))));
      }
      // Against differences of globals (ticket: counts bounded by t - s;
      // intro: #{pc=2} = a - b needs both directions).
      for (Term G2 : Sys.globals()) {
        if (G == G2)
          continue;
        Add(M.mkLe(K, M.mkSub(G, G2)));
        Add(M.mkGe(K, M.mkSub(G, G2)));
      }
    }
    // Flag-style couplings between a counter and a global (bluetooth: the
    // stop flag set implies no active worker; gc: the lock free implies no
    // mutator in the critical region).
    for (Term G : Sys.globals())
      for (int64_t C : Consts) {
        Add(M.mkImplies(M.mkGe(K, M.mkInt(1)), M.mkLe(G, M.mkInt(C))));
        Add(M.mkImplies(M.mkGe(K, M.mkInt(1)), M.mkGe(G, M.mkInt(C))));
        Add(M.mkImplies(M.mkGe(G, M.mkInt(C)), M.mkLe(K, M.mkInt(0))));
        Add(M.mkImplies(M.mkLe(G, M.mkInt(C)), M.mkLe(K, M.mkInt(0))));
      }
    // Int-sorted quantifier vs. global thresholds (ticket: no thread holds
    // a ticket >= the dispenser, forall q >= tick: #{m(t)=q} = 0).
    for (Term Q : F.Q) {
      if (Q.sort() != Sort::Int)
        continue;
      for (Term G : Sys.globals()) {
        Add(M.mkImplies(M.mkGe(Q, G), M.mkLe(K, M.mkInt(0))));
        Add(M.mkImplies(M.mkLt(Q, G), M.mkLe(K, M.mkInt(1))));
      }
    }
    // Against Int-sorted template quantifiers and the system size
    // (filter lock: #{lv(t) >= q} <= n - q).
    for (Term Q : F.Q) {
      if (Q.sort() != Sort::Int)
        continue;
      Add(M.mkLe(K, Q));
      if (N) {
        Add(M.mkLe(K, M.mkSub(*N, Q)));
        Add(M.mkLe(M.mkAdd(K, Q), *N));
      }
    }
    if (N) {
      Add(M.mkLe(K, *N));
      // Heard-of thresholds (one-third rule: 3k > 2n).
      Add(M.mkGt(M.mkMul(M.mkInt(3), K), M.mkMul(M.mkInt(2), *N)));
      Add(M.mkLe(M.mkMul(M.mkInt(3), K), M.mkMul(M.mkInt(2), *N)));
    }
  }
  // Sums of two counters (ticket mutual exclusion:
  // #{m<=s /\ pc=2} + #{pc=3} <= 1), bounded by constants and by
  // differences of globals (ticket: in-flight threads <= tick - serv).
  for (size_t I = 0; I < F.K.size(); ++I)
    for (size_t J = I + 1; J < F.K.size(); ++J) {
      Term Sum = M.mkAdd(F.K[I], F.K[J]);
      for (int64_t C : SmallCs)
        Add(M.mkLe(Sum, M.mkInt(C)));
      Add(M.mkLe(F.K[I], F.K[J]));
      Add(M.mkLe(F.K[J], F.K[I]));
      for (Term G : Sys.globals())
        for (Term G2 : Sys.globals()) {
          if (G == G2)
            continue;
          Add(M.mkLe(Sum, M.mkSub(G, G2)));
        }
    }
  // Emptiness couplings between counters (barriers: someone past the
  // barrier implies nobody before it).
  for (size_t I = 0; I < F.K.size(); ++I)
    for (size_t J = 0; J < F.K.size(); ++J) {
      if (I == J)
        continue;
      Add(M.mkImplies(M.mkGe(F.K[I], M.mkInt(1)),
                      M.mkLe(F.K[J], M.mkInt(0))));
    }

  // -- Global-only atoms --------------------------------------------------------
  for (Term G : Sys.globals()) {
    Add(M.mkGe(G, M.mkInt(0)));
    for (Term G2 : Sys.globals()) {
      if (G == G2)
        continue;
      Add(M.mkLe(G, G2));
    }
    for (int64_t C : Consts) {
      Add(M.mkEq(G, M.mkInt(C)));
      Add(M.mkGe(G, M.mkInt(C)));
      Add(M.mkLe(G, M.mkInt(C)));
    }
  }
  // Guarded global-global implications (reader/writer: readers present
  // implies no writer).
  for (Term G1 : Sys.globals())
    for (Term G2 : Sys.globals()) {
      if (G1 == G2)
        continue;
      Term Busy = M.mkGe(G1, M.mkInt(1));
      for (int64_t C : Consts) {
        Add(M.mkImplies(Busy, M.mkLe(G2, M.mkInt(C))));
        Add(M.mkImplies(Busy, M.mkGe(G2, M.mkInt(C))));
        Add(M.mkImplies(Busy, M.mkEq(G2, M.mkInt(C))));
      }
    }

  // Three-global linear relations (tree traverse: leaves + pending =
  // nodes + 1; dining philosophers: sticks + 2*eating = n), as two
  // inequalities each.
  for (size_t I = 0; I < Sys.globals().size(); ++I)
    for (size_t J = 0; J < Sys.globals().size(); ++J) {
      if (I == J)
        continue;
      for (size_t L = 0; L < Sys.globals().size(); ++L) {
        if (L == I || L == J)
          continue;
        for (int64_t Coef : {1, 2}) {
          if (Coef == 1 && J < I)
            continue; // g1 + g2 is symmetric; emit once.
          Term Sum = M.mkAdd(
              Sys.globals()[I],
              M.mkMul(M.mkInt(Coef), Sys.globals()[J]));
          for (int64_t C : SmallCs) {
            Add(M.mkLe(Sum, M.mkAdd(Sys.globals()[L], M.mkInt(C))));
            Add(M.mkGe(Sum, M.mkAdd(Sys.globals()[L], M.mkInt(C))));
          }
        }
      }
    }

  // -- Quantifier / per-thread atoms ----------------------------------------------
  // Base atoms about a template thread q: comparisons of locals of q with
  // globals and constants, and between two template threads.
  std::vector<Term> TidQs, IntQs;
  for (Term Q : F.Q)
    (Q.sort() == Sort::Tid ? TidQs : IntQs).push_back(Q);

  std::map<Term, std::vector<int64_t>> LocalCs = perLocalConstants(Sys);
  auto PerThreadAtoms = [&](Term Q) {
    std::vector<Term> Res;
    for (Term L : Sys.locals()) {
      Term Rd = M.mkRead(L, Q);
      for (int64_t C : LocalCs[L]) {
        Res.push_back(M.mkEq(Rd, M.mkInt(C)));
        Res.push_back(M.mkGe(Rd, M.mkInt(C)));
        Res.push_back(M.mkLe(Rd, M.mkInt(C)));
      }
      for (Term G : Sys.globals()) {
        Res.push_back(M.mkLe(Rd, G));
        Res.push_back(M.mkGe(Rd, G));
        Res.push_back(M.mkEq(Rd, G));
        Res.push_back(M.mkLt(Rd, G));
      }
      for (int64_t C : LocalCs[L])
        Res.push_back(M.mkNe(Rd, M.mkInt(C)));
      // Same-thread local-local relations (one-third: x(q) = res(q)).
      for (Term L2 : Sys.locals()) {
        if (L2 == L)
          continue;
        Term Rd2 = M.mkRead(L2, Q);
        Res.push_back(M.mkEq(Rd, Rd2));
        Res.push_back(M.mkLe(Rd, Rd2));
      }
    }
    return Res;
  };

  // Guards for guarded atoms: "pc-like" classifications of q. For the
  // quadratic two-thread buckets the guards are restricted to pc-like
  // locals (those the system compares with three or more constants);
  // per-thread guards range over every local.
  std::vector<Term> PcLike;
  for (Term L : Sys.locals())
    if (LocalCs[L].size() >= 3)
      PcLike.push_back(L);
  if (PcLike.empty())
    PcLike = Sys.locals();
  auto GuardsOver = [&](Term Q, const std::vector<Term> &Ls) {
    std::vector<Term> Res;
    for (Term L : Ls) {
      Term Rd = M.mkRead(L, Q);
      for (int64_t C : LocalCs[L]) {
        Res.push_back(M.mkEq(Rd, M.mkInt(C)));
        Res.push_back(M.mkGe(Rd, M.mkInt(C)));
      }
    }
    return Res;
  };
  auto GuardsFor = [&](Term Q) { return GuardsOver(Q, Sys.locals()); };
  auto EqGuardsOver = [&](Term Q, const std::vector<Term> &Ls) {
    std::vector<Term> Res;
    for (Term L : Ls) {
      Term Rd = M.mkRead(L, Q);
      for (int64_t C : LocalCs[L])
        Res.push_back(M.mkEq(Rd, M.mkInt(C)));
    }
    return Res;
  };

  // Classify locals for the quadratic two-thread bucket:
  //  * Ranked locals are compared across threads by the system itself
  //    (guards or the property), e.g. bakery numbers, work items.
  //  * IdLike locals are pairwise distinct by initialization (bakery
  //    priorities) -- natural tie-breaks.
  //  * CopyPairs (La, Lb) have a transition assigning Lb(self) into La
  //    (bakery: num := tmp) -- the only cross-local comparisons needed.
  std::set<Term> Ranked, IdLike;
  {
    auto HarvestRanked = [&](Term T) {
      if (T.isNull())
        return;
      for (Term A : logic::collectSubterms(T, [](Term S) {
             Kind K = S.kind();
             return K == Kind::Le || K == Kind::Lt || K == Kind::Eq;
           })) {
        Term L = A->kid(0), R = A->kid(1);
        if (L.kind() == Kind::Read && R.kind() == Kind::Read &&
            L->kid(0) == R->kid(0) && L->kid(1) != R->kid(1))
          Ranked.insert(L->kid(0));
      }
    };
    HarvestRanked(Sys.safe());
    for (const sys::Transition &Tr : Sys.transitions()) {
      HarvestRanked(Tr.Guard);
      HarvestRanked(Tr.SyncRelation);
    }
    for (Term A : logic::collectSubterms(Sys.init(), [](Term S) {
           if (S.kind() != Kind::Not || S->kid(0).kind() != Kind::Eq)
             return false;
           Term E = S.node()->kid(0);
           return E->kid(0).kind() == Kind::Read &&
                  E->kid(1).kind() == Kind::Read &&
                  E->kid(0).node()->kid(0) == E->kid(1).node()->kid(0);
         }))
      IdLike.insert(A->kid(0)->kid(0)->kid(0));
  }
  std::vector<std::pair<Term, Term>> CopyPairs;
  for (const sys::Transition &Tr : Sys.transitions())
    for (const auto &[La, V] : Tr.LocalUpd)
      if (V.kind() == Kind::Read && V.node()->kid(1) == Sys.self())
        CopyPairs.push_back({La, V.node()->kid(0)});
  std::set<Term> Ordered = Ranked;
  Ordered.insert(IdLike.begin(), IdLike.end());
  if (Ordered.empty())
    for (Term L : Sys.locals())
      Ordered.insert(L);

  for (Term Q : TidQs) {
    std::vector<Term> Base = PerThreadAtoms(Q);
    for (Term A : Base)
      Add(A);
    std::vector<Term> Guards = GuardsFor(Q);
    for (Term G : Guards)
      for (Term A : Base) {
        if (G == A)
          continue;
        Add(M.mkImplies(G, A));
      }
    // Guarded counter atoms (one-third: res(q) >= 0 -> 3k > 2n; barriers:
    // a thread past the last barrier implies nobody before it).
    for (Term G : Guards)
      for (Term K : F.K) {
        Add(M.mkImplies(G, M.mkGe(K, M.mkInt(1))));
        Add(M.mkImplies(G, M.mkLe(K, M.mkInt(0))));
        if (N)
          Add(M.mkImplies(
              G, M.mkGt(M.mkMul(M.mkInt(3), K), M.mkMul(M.mkInt(2), *N))));
      }
  }

  // Two-thread relational atoms (bakery-style), including the uniqueness
  // pattern "m(q1) = m(q2) -> q1 = q2".
  for (size_t I = 0; I < TidQs.size(); ++I)
    for (size_t J = 0; J < TidQs.size(); ++J) {
      if (I == J)
        continue;
      Term Q1 = TidQs[I], Q2 = TidQs[J];
      for (Term L : Sys.locals()) {
        Term R1 = M.mkRead(L, Q1), R2 = M.mkRead(L, Q2);
        if (I < J) {
          Add(M.mkImplies(M.mkEq(R1, R2), M.mkEq(Q1, Q2)));
          Add(M.mkEq(R1, R2));
        }
        Add(M.mkLe(R1, R2));
      }
      // Guarded two-thread atoms: a pc-like guard on both sides implies a
      // relation between the threads' locals (possibly across two
      // different locals -- the bakery relates one thread's ticket to
      // another's pending ticket), a lexicographic order (bakery
      // tie-break), or is outright impossible (pairwise mutual exclusion).
      for (Term G1 : EqGuardsOver(Q1, PcLike))
        for (Term G2 : EqGuardsOver(Q2, PcLike)) {
          Term Guard = M.mkAnd({M.mkNe(Q1, Q2), G1, G2});
          for (Term La : Ordered) {
            Term S1 = M.mkRead(La, Q1), S2 = M.mkRead(La, Q2);
            Add(M.mkImplies(Guard, M.mkLt(S1, S2)));
            Add(M.mkImplies(Guard, M.mkLe(S1, S2)));
            Add(M.mkImplies(Guard, M.mkNe(S1, S2)));
            // Lexicographic with an id-like tie-break (bakery).
            for (Term Tie : IdLike) {
              if (Tie == La)
                continue;
              Add(M.mkImplies(
                  Guard,
                  M.mkOr(M.mkLt(S1, S2),
                         M.mkAnd(M.mkEq(S1, S2),
                                 M.mkLt(M.mkRead(Tie, Q1),
                                        M.mkRead(Tie, Q2))))));
            }
          }
          // Cross-local comparisons only along copy chains (num vs tmp).
          for (const auto &[La, Lb] : CopyPairs) {
            Add(M.mkImplies(Guard, M.mkLt(M.mkRead(La, Q1),
                                          M.mkRead(Lb, Q2))));
            Add(M.mkImplies(Guard, M.mkLt(M.mkRead(Lb, Q1),
                                          M.mkRead(La, Q2))));
          }
          Add(M.mkImplies(Guard, M.mkFalse()));
        }
      // Unguarded distinctness up to one or two coordinates (robot swarm:
      // two robots never share a grid cell).
      if (I < J) {
        Term Distinct = M.mkNe(Q1, Q2);
        for (size_t A = 0; A < Sys.locals().size(); ++A) {
          Term L1 = Sys.locals()[A];
          Add(M.mkImplies(Distinct, M.mkNe(M.mkRead(L1, Q1),
                                           M.mkRead(L1, Q2))));
          for (size_t Bx = A + 1; Bx < Sys.locals().size(); ++Bx) {
            Term L2 = Sys.locals()[Bx];
            Add(M.mkImplies(
                Distinct,
                M.mkOr(M.mkNe(M.mkRead(L1, Q1), M.mkRead(L1, Q2)),
                       M.mkNe(M.mkRead(L2, Q1), M.mkRead(L2, Q2)))));
          }
        }
      }
    }

  // Int-sorted quantifier guards for counter atoms were added above; also
  // allow bounding q itself (filter lock: 0 <= q <= n-1 region).
  for (Term Q : IntQs) {
    Add(M.mkGe(Q, M.mkInt(0)));
    if (N)
      Add(M.mkLe(Q, M.mkSub(*N, M.mkInt(1))));
  }

  return Out;
}
