//===- synth/Synth.h - The #Pi invariant synthesis driver -------*- C++ -*-===//
//
// Part of sharpie. Implements algorithm #Pi (paper Fig. 5): given a
// parameterized system and a shape template (number of cardinality sets m
// and universally quantified variables q_1..q_n), synthesize a safe
// inductive invariant
//
//   forall q: QGuard -> ( /\_i #{t | s_i(t, q)} = k_i  /\  inv_0(k, g, q) ).
//
// Pipeline per candidate set tuple (s_1..s_m), drawn from the ranked
// grammar of Grammar.h:
//
//   1. INSTQ: the template quantifiers are instantiated over a small set of
//      relevant terms (head skolems, the mover, safety witnesses, local
//      reads); each instance contributes "measurement" equations
//      #{t|s_i(t,sigma)} = k_{i,sigma} and an opaque placeholder variable
//      standing for inv_0 at that instance.
//   2. The three Horn clauses (init / inductiveness per transition /
//      safety) are reduced once to ground, cardinality-free formulas by
//      engine/Reduce.h -- the expensive part, independent of inv_0.
//   3. SOLVE: a Houdini-style fixpoint over the candidate atom pool finds
//      the strongest conjunction closed under all clauses, seeded by an
//      explicit-state pre-filter (atoms violated in a reachable state of a
//      small instance are discarded before any SMT call); then the safety
//      clause is checked.
//   4. The resulting invariant is independently re-checked end to end
//      (fresh reduction of the concrete invariant, plus evaluation on the
//      explicit reachable states).
//
// The paper delegates step 3 to an off-the-shelf Horn solver over the
// unknowns s_i and inv_0; enumerating s_i from the grammar and solving
// inv_0 by Houdini realizes the same search space with predictable
// performance (see DESIGN.md, "Faithfulness notes").
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_SYNTH_SYNTH_H
#define SHARPIE_SYNTH_SYNTH_H

#include "engine/Pool.h"
#include "engine/Reduce.h"
#include "explicit/Explicit.h"
#include "obs/Obs.h"
#include "resil/Resil.h"
#include "synth/Grammar.h"
#include "system/System.h"

#include <optional>
#include <string>

namespace sharpie {
namespace synth {

struct SynthOptions {
  ShapeTemplate Shape;
  /// Optional guard on the Int-sorted template quantifiers, e.g.
  /// 0 <= q <= n-1 for the filter lock's level quantifier. Built by the
  /// caller over the formals returned by formalsFor().
  logic::Term QGuard;

  /// When non-empty, skip the set search and use exactly these set bodies
  /// (over formalsFor()'s BoundVar/Q). Lets a user hand #Pi the paper's
  /// templates verbatim, and the test suite pin known tuples.
  std::vector<logic::Term> FixedSetBodies;

  engine::ReduceOptions Reduce;          ///< Axiom/expansion configuration.
  explct::ExplicitOptions Explicit;      ///< Pre-filter instance size.
  bool ExplicitPrefilter = true;
  bool StopOnExplicitCex = true;         ///< Bail out if the instance is unsafe.
  unsigned MaxPrefilterStates = 400;
  unsigned MaxTuples = 150;              ///< Set-tuple search budget.
  unsigned MaxCandidateSets = 24;        ///< Top-ranked set bodies considered.
  unsigned MaxBodyInstances = 12;        ///< INSTQ budget per clause.
  unsigned SmtTimeoutMs = 30000;
  /// Incremental assumption-based Houdini (the default). Per tuple, every
  /// reduced clause is asserted once behind a selector literal with the
  /// placeholder atoms tied to per-atom indicator variables; each Houdini
  /// iteration is then a checkAssuming() over the live indicators instead
  /// of a push/assert/check/pop rebuild. Unsat cores over the indicators
  /// let clauses whose core is still consistent with the live set skip
  /// re-checks entirely, the greedy minimizer remove atoms no clause's
  /// core depends on without a solver call, and the recheck phase reuse
  /// the warmed solver context. Clauses are reduced lazily (relevancy-
  /// filtered CARD axioms / quantifier instances, see
  /// card::AxiomOptions::RelevancyFilter) with on-demand escalation to the
  /// full reduction whenever a lazy model survives, so verdicts and
  /// invariants match the monolithic path exactly. false restores the
  /// monolithic per-check rebuild (--no-incremental in the drivers), the
  /// A/B baseline for BENCH_PR5.
  bool Incremental = true;
  /// Model-guided instance refinement (CEGAR-style lazy instantiation, on
  /// by default; only meaningful with Incremental). Clauses are reduced in
  /// manifest mode (engine::ReduceOptions::DeferManifest): the live solver
  /// context starts from each clause's core grounding, and when a
  /// candidate model survives a check the deferred manifest is evaluated
  /// *against that model* and only the violated instances are asserted
  /// (behind a per-clause houdini$inst$ selector so they retract with the
  /// clause), iterating until Unsat or until every manifest entry is
  /// satisfied -- at which point the model is a genuine model of the full
  /// reduction. Bounded by RefineBudget; exhaustion (or an unevaluable
  /// model) asserts the whole remaining manifest, which IS the full
  /// grounding, so verdicts and invariants match the eager path exactly.
  /// false restores the PR5 coarse behavior: relevancy-filtered lazy
  /// reduction with a single whole-clause escalation (--no-refine).
  bool Refine = true;
  /// Maximum refinement rounds per incremental check before the remaining
  /// manifest is asserted wholesale (counted per incCheck call). Each
  /// round asserts at least one new instance or fully grounds a clause,
  /// so the loop terminates with or without the budget; the budget caps
  /// solver round-trips on adversarial models.
  unsigned RefineBudget = 16;
  /// Parallel set-tuple search width: 0 = one worker per hardware thread,
  /// 1 = today's serial search, N = exactly N workers. Each worker owns a
  /// private TermManager, SMT solver and reduction state (no shared-state
  /// locking); candidate tuples are claimed from an atomic cursor and
  /// results are merged by rank (first-verified-by-rank wins), so the
  /// outcome is independent of thread timing. See DESIGN.md, "Parallel
  /// search & determinism".
  unsigned NumWorkers = 0;
  /// Wall-clock budget for the whole synthesis run; 0 disables. Checked
  /// between tuples, between Houdini iterations, and between the SMT
  /// checks inside one Houdini iteration (coarse, not a hard kill).
  double TimeBudgetSeconds = 0;
  bool FinalRecheck = true;
  /// Greedily minimize the surviving atom set before output and re-check.
  bool MinimizeInvariant = true;
  /// Back-compat debug switch. When set without a Trace, the synthesis
  /// creates an internal stdout tracer at Debug level, so the old verbose
  /// output survives (now with level/worker prefixes).
  bool Verbose = false;
  /// Observability sink (see obs/Obs.h). When non-null the synthesis emits
  /// spans (synthesize > tuple > houdini > smt_check), counters, latency
  /// histograms and leveled log lines into it: the driver and the serial
  /// search use worker rank 0, parallel search worker W uses rank W+1.
  /// SynthStats::Metrics is filled from it at the end of the run. Not
  /// owned; must outlive the call.
  obs::Tracer *Trace = nullptr;
  /// Solver supervision (retry, cross-back-end fallback, per-check
  /// deadline clamping; see resil/Resil.h). Supervise.Enabled = false
  /// reproduces the bare back end exactly -- the overhead A/B switch.
  resil::SupervisionOptions Supervise;
  /// Deterministic fault plan (resil/Fault.h); null or empty disables
  /// injection. Applied only when supervision is enabled. Not owned; must
  /// outlive the call.
  const resil::FaultPlan *Faults = nullptr;
  /// Cross-run reduction cache. Within one run every reduction input is
  /// distinct (see ReduceCache's doc), so sharing a cache across runs is
  /// where hits come from (re-verification, pinned tuples). On the serial
  /// path the cache is bound to Sys's manager and hits are id-based pure
  /// lookups. The parallel path flips it into shared mode
  /// (ReduceCache::enableSharing): entries move into a manager the cache
  /// itself owns, keys become ids of the host-translated key terms
  /// (manager-independent and collision-free), and every worker consults
  /// the cache under a mutex, with hits materialized into its private
  /// manager and skolems re-freshened -- so a 4-worker re-verification
  /// hits the entries a previous run's workers stored. Once shared, a
  /// cache stays shared (later serial runs keep hitting the same
  /// entries). Not owned; must outlive every run that uses it.
  engine::ReduceCache *ReuseReduceCache = nullptr;
  /// Cooperative external cancellation (the serving stack's
  /// client-disconnect signal; see serve/Server.h). Polled wherever the
  /// time budget is polled -- between tuples, between Houdini iterations,
  /// between the checks inside one iteration -- so cancellation is
  /// coarse-grained like the budget, never a hard kill. A cancelled run
  /// returns like a budget-exhausted one (Inconclusive with the best
  /// partial candidate). Not owned; must outlive the call.
  const engine::CancellationToken *Cancel = nullptr;
};

struct SynthStats {
  unsigned TuplesTried = 0;
  unsigned SmtChecks = 0;
  unsigned AtomsInPool = 0;
  unsigned AtomsAfterPrefilter = 0;
  unsigned AtomsInInvariant = 0;
  unsigned ExplicitStates = 0;
  double Seconds = 0;

  // -- Parallel-search observability ----------------------------------------
  /// Effective worker count of the search (1 for the serial path).
  unsigned NumWorkers = 1;
  /// Reduction-cache hits/misses, summed over all workers.
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  /// Per-phase busy time, summed over all workers (so in a parallel run
  /// the phases can exceed Seconds, which stays wall-clock).
  double ExplicitSeconds = 0;
  /// Candidate enumeration: set-body/atom-pool grammar walks, tuple
  /// ranking, and main-solver setup (driver only, once per run).
  double EnumerateSeconds = 0;
  double PrefilterSeconds = 0;
  double ReduceSeconds = 0;
  double HoudiniSeconds = 0;
  double RecheckSeconds = 0;
  /// Result-store lookup time, set by the drivers (the store sits above
  /// the synthesis; synthesize() leaves this 0) so the phase table
  /// accounts for cache-tier latency next to the engine phases.
  double CacheLookupSeconds = 0;
  /// Busy worker-seconds divided by workers * search wall time; 1.0 means
  /// every worker was processing tuples the whole search.
  double WorkerUtilization = 1.0;

  // -- Resilience observability (see resil/Resil.h) --------------------------
  /// Same-back-end retries after timeout-class Unknowns.
  uint64_t Retries = 0;
  /// Escalations to the cross-checking back end.
  uint64_t Fallbacks = 0;
  /// FaultPlan rules that fired (0 outside fault-injection runs).
  uint64_t FaultsInjected = 0;
  /// Unknown answers classified as timeouts / as incompleteness, summed
  /// over all attempts (a retried check counts each attempt).
  uint64_t UnknownTimeouts = 0;
  uint64_t UnknownIncomplete = 0;
  /// check() calls whose back end threw (contained by the supervisor).
  uint64_t SolverExceptions = 0;
  /// Tuples abandoned because their attempt threw or a worker-task fault
  /// fired; the search continued past them.
  unsigned TuplesSkipped = 0;
  /// Exceptions that escaped a tuple attempt (contained per tuple).
  unsigned WorkerExceptions = 0;

  /// Merged counters and histogram summaries (SMT latency per phase,
  /// reduction latency, per-CARD-rule axiom counts, ...) from the tracer
  /// that observed the run. Empty when no tracer was configured.
  obs::MetricsSummary Metrics;
};

/// The strongest candidate a failed run got to: a Houdini fixpoint that
/// discharged every inductiveness clause but not safety. Rendered terms
/// (not Terms) so it survives the owning worker's TermManager and can be
/// reported verbatim by the drivers.
struct PartialCandidate {
  unsigned Rank = 0;                        ///< 1-based tuple rank.
  std::vector<std::string> SetBodies;       ///< Rendered set bodies.
  std::vector<std::string> Atoms;           ///< Fixpoint atoms.
  std::vector<std::string> VerifiedClauses; ///< Clauses that discharged.
  std::string FailedOn;                     ///< The clause that did not.
};

struct SynthResult {
  bool Verified = false;
  /// The closed invariant formula (pre-state vocabulary), when Verified.
  logic::Term Invariant;
  /// The inferred cardinality set bodies, over the template formals.
  std::vector<logic::Term> SetBodies;
  /// The surviving inv_0 atoms, over the template formals.
  std::vector<logic::Term> Atoms;
  /// Set when the explicit checker found a real counterexample.
  std::optional<explct::Counterexample> Cex;
  /// True when the run neither verified nor refuted AND some failure
  /// (timeout, skipped tuple, contained exception, injected fault,
  /// exhausted budget) makes "not verifiable" an unsound conclusion. The
  /// drivers report this as a distinct outcome (exit code 4).
  bool Inconclusive = false;
  /// Best near-miss of an unverified run, for the inconclusive report.
  std::optional<PartialCandidate> Best;
  SynthStats Stats;
  std::string Note;
};

/// The formal variables a caller needs to phrase SynthOptions::QGuard.
Formals formalsFor(logic::TermManager &M, const ShapeTemplate &Shape);

/// Runs #Pi on \p Sys.
SynthResult synthesize(sys::ParamSystem &Sys, const SynthOptions &Opts);

/// Renders \p S as an aligned human-readable table (multi-line string,
/// trailing newline): search counters, per-phase busy seconds with their
/// share of \p WallSeconds, and the histogram five-number summaries from
/// S.Metrics. Returned as a string so drivers outside src/ decide where it
/// goes (src/ itself never prints).
std::string renderStatsTable(const SynthStats &S, double WallSeconds);

/// Renders the inconclusive-outcome report: per-failure-class tallies and
/// -- when a run got as far as a Houdini fixpoint -- the best partial
/// candidate with the clauses it did discharge. Multi-line, trailing
/// newline; empty-failure lines are omitted. Drivers print this under the
/// INCONCLUSIVE banner (exit code 4).
std::string renderInconclusiveReport(const SynthResult &Res);

/// The stats as comma-separated `"key": value` JSON fields (no braces), a
/// shared fragment so every driver emits the same schema: the scalar
/// counters and phase seconds, plus `"hist_<name>": {count,min,max,mean,
/// p50,p90,p99}` per histogram and `"ctr_<name>": total` per counter.
std::string statsJsonFields(const SynthStats &S);

} // namespace synth
} // namespace sharpie

#endif // SHARPIE_SYNTH_SYNTH_H
