//===- quant/Quant.h - Quantifier elimination by instantiation --*- C++ -*-===//
//
// Part of sharpie. Reduces quantified satisfiability queries to ground ones
// in the style of the array property fragment (Bradley-Manna-Sipma; paper
// Sec. 5.1 and Remark 1):
//
//   * Existentials not below a universal are skolemized by fresh constants
//     (equisatisfiable).
//   * Universals are expanded into finite conjunctions over an index set of
//     ground terms (a weakening, hence sound for proving unsatisfiability;
//     complete within the array property fragment when the index set covers
//     all ground index terms).
//
// All reductions preserve "Unsat implies Unsat": if the reduced formula is
// unsatisfiable so is the original. When a step loses information (an
// existential below a universal, or an expansion budget overrun), the
// result is flagged incomplete; incompleteness can only make sharpie reject
// invariants, never accept bad ones.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_QUANT_QUANT_H
#define SHARPIE_QUANT_QUANT_H

#include "logic/Term.h"

#include <set>
#include <vector>

namespace sharpie {
namespace quant {

struct SkolemResult {
  logic::Term Formula;               ///< NNF, existential-free formula.
  std::vector<logic::Term> Skolems;  ///< Fresh constants introduced.
  bool Complete = true;              ///< False if an exists sat below a forall
                                     ///< and was weakened to true.
};

/// Converts \p T (a formula whose satisfiability is being checked) to NNF
/// and replaces every existential that is not in the scope of a universal
/// by fresh skolem constants. Existentials below universals would need
/// skolem *functions*; they are weakened to true and flagged.
SkolemResult skolemize(logic::TermManager &M, logic::Term T);

struct ExpandOptions {
  unsigned MaxInstantiations = 20000; ///< Total budget of binder instances.
  unsigned MaxIntTerms = 24;          ///< Cap on Int-sorted index terms.
  /// Relevancy-filtered instantiation (lazy mode): a Tid-sorted binder is
  /// instantiated only at index terms the formula actually reads one of
  /// the binder's arrays with -- a universal whose body reads pc(t) need
  /// not be instantiated at a term that never indexes pc anywhere in the
  /// formula. Skipping instances only weakens the expansion (still sound
  /// for Unsat), and when the filter would empty a domain the full domain
  /// is kept instead, so it never manufactures a vacuous expansion. A Sat
  /// answer obtained under the filter may be spurious; callers escalate
  /// to an unfiltered expansion before trusting one.
  bool RelevancyFilter = false;
};

struct ExpandResult {
  logic::Term Formula;   ///< Universal-free formula.
  unsigned NumInstances = 0;
  unsigned NumFiltered = 0; ///< Instances skipped by RelevancyFilter.
  bool Complete = true;  ///< False if the budget truncated an expansion.
};

/// Expands every universal quantifier in the NNF, existential-free formula
/// \p T into a conjunction of instances: Tid-sorted binders range over
/// \p TidTerms, Int-sorted binders over \p IntTerms. Universals that exceed
/// the budget are weakened to true (sound, flagged incomplete).
ExpandResult expandForalls(logic::TermManager &M, logic::Term T,
                           const std::vector<logic::Term> &TidTerms,
                           const std::vector<logic::Term> &IntTerms,
                           const ExpandOptions &Opts = {});

/// Collects the Tid-sorted index set of \p T: all free Tid variables. (The
/// term language has no compound Tid-sorted terms.)
std::set<logic::Term> tidIndexTerms(logic::Term T);

/// Collects candidate instance terms for Int-sorted universals in \p T:
/// free Int variables, integer literals, and ground array reads occurring
/// in \p T.
std::set<logic::Term> intIndexTerms(logic::Term T);

} // namespace quant
} // namespace sharpie

#endif // SHARPIE_QUANT_QUANT_H
