//===- quant/Quant.h - Quantifier elimination by instantiation --*- C++ -*-===//
//
// Part of sharpie. Reduces quantified satisfiability queries to ground ones
// in the style of the array property fragment (Bradley-Manna-Sipma; paper
// Sec. 5.1 and Remark 1):
//
//   * Existentials not below a universal are skolemized by fresh constants
//     (equisatisfiable).
//   * Universals are expanded into finite conjunctions over an index set of
//     ground terms (a weakening, hence sound for proving unsatisfiability;
//     complete within the array property fragment when the index set covers
//     all ground index terms).
//
// All reductions preserve "Unsat implies Unsat": if the reduced formula is
// unsatisfiable so is the original. When a step loses information (an
// existential below a universal, or an expansion budget overrun), the
// result is flagged incomplete; incompleteness can only make sharpie reject
// invariants, never accept bad ones.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_QUANT_QUANT_H
#define SHARPIE_QUANT_QUANT_H

#include "logic/Term.h"

#include <set>
#include <vector>

namespace sharpie {
namespace smt {
class SmtModel;
}
namespace quant {

struct SkolemResult {
  logic::Term Formula;               ///< NNF, existential-free formula.
  std::vector<logic::Term> Skolems;  ///< Fresh constants introduced.
  bool Complete = true;              ///< False if an exists sat below a forall
                                     ///< and was weakened to true.
};

/// Converts \p T (a formula whose satisfiability is being checked) to NNF
/// and replaces every existential that is not in the scope of a universal
/// by fresh skolem constants. Existentials below universals would need
/// skolem *functions*; they are weakened to true and flagged.
SkolemResult skolemize(logic::TermManager &M, logic::Term T);

struct ExpandOptions {
  unsigned MaxInstantiations = 20000; ///< Total budget of binder instances.
  unsigned MaxIntTerms = 24;          ///< Cap on Int-sorted index terms.
  /// Relevancy-filtered instantiation (lazy mode): a Tid-sorted binder is
  /// instantiated only at index terms the formula actually reads one of
  /// the binder's arrays with -- a universal whose body reads pc(t) need
  /// not be instantiated at a term that never indexes pc anywhere in the
  /// formula. Skipping instances only weakens the expansion (still sound
  /// for Unsat), and when the filter would empty a domain the full domain
  /// is kept instead, so it never manufactures a vacuous expansion. A Sat
  /// answer obtained under the filter may be spurious; callers escalate
  /// to an unfiltered expansion before trusting one.
  bool RelevancyFilter = false;
  /// Partitioned expansion (model-guided refinement mode): instead of
  /// *skipping* instances, every universal at a conjunctive position is
  /// expanded over the full domain, and each instance is routed either
  /// into the returned formula (the core) or into ExpandResult::Deferred,
  /// so that Formula AND Deferred equals the unpartitioned expansion by
  /// construction. An instance is core when every Tid binder draws from
  /// \p CoreTids (when set) and survives the relevancy filter; everything
  /// else -- witness-cascade instances in particular -- is deferred.
  /// Universals below an Or cannot be split off (their instances are not
  /// conjuncts of the whole) and are expanded fully in place.
  bool CollectDeferred = false;
  /// The explicit core instance worklist for CollectDeferred: Tid terms a
  /// core instance may bind. Null means "no worklist restriction" (the
  /// relevancy filter alone decides the routing).
  const std::vector<logic::Term> *CoreTids = nullptr;
};

struct ExpandResult {
  logic::Term Formula;   ///< Universal-free formula.
  unsigned NumInstances = 0;
  unsigned NumFiltered = 0; ///< Instances skipped by RelevancyFilter.
  bool Complete = true;  ///< False if the budget truncated an expansion.
  /// CollectDeferred only: the routed-out instances (each universal-free).
  /// Invariant: mkAnd(Formula, mkAnd(Deferred)) == the full expansion.
  std::vector<logic::Term> Deferred;
};

/// Expands every universal quantifier in the NNF, existential-free formula
/// \p T into a conjunction of instances: Tid-sorted binders range over
/// \p TidTerms, Int-sorted binders over \p IntTerms. Universals that exceed
/// the budget are weakened to true (sound, flagged incomplete).
ExpandResult expandForalls(logic::TermManager &M, logic::Term T,
                           const std::vector<logic::Term> &TidTerms,
                           const std::vector<logic::Term> &IntTerms,
                           const ExpandOptions &Opts = {});

/// Result of evaluating a deferred-instance manifest against a candidate
/// model (the refinement step of CEGAR-style lazy instantiation).
struct ViolatedResult {
  /// Indices into the manifest of instances the model falsifies. Asserting
  /// exactly these rules out the model while keeping the context minimal.
  std::vector<size_t> Violated;
  /// True when some instance could not be evaluated (a partial model, e.g.
  /// MiniSolver's structural evaluator). The caller must then treat the
  /// model as unvetted and fall back to asserting the whole manifest --
  /// degrading to full grounding is sound, keeping the model is not.
  bool EvalFailed = false;
};

/// Evaluates each manifest entry \p Items[I] with \p Skip[I] == 0 against
/// \p Model and collects the violated ones. An entry that evaluates to
/// true is genuinely satisfied (the conjuncts are ground and the model
/// total when EvalFailed stays false), so a round that returns no
/// violations certifies the model against the full reduction.
ViolatedResult selectViolated(smt::SmtModel &Model,
                              const std::vector<logic::Term> &Items,
                              const std::vector<char> &Skip);

/// Collects the Tid-sorted index set of \p T: all free Tid variables. (The
/// term language has no compound Tid-sorted terms.)
std::set<logic::Term> tidIndexTerms(logic::Term T);

/// Collects candidate instance terms for Int-sorted universals in \p T:
/// free Int variables, integer literals, and ground array reads occurring
/// in \p T.
std::set<logic::Term> intIndexTerms(logic::Term T);

} // namespace quant
} // namespace sharpie

#endif // SHARPIE_QUANT_QUANT_H
