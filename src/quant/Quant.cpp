//===- quant/Quant.cpp - Quantifier elimination by instantiation ------------===//
//
// Part of sharpie. See Quant.h.
//
//===----------------------------------------------------------------------===//

#include "quant/Quant.h"

#include "logic/TermOps.h"
#include "smt/SmtSolver.h"

using namespace sharpie;
using namespace sharpie::quant;
using logic::Kind;
using logic::Sort;
using logic::Subst;
using logic::Term;
using logic::TermManager;

// -- Skolemization ------------------------------------------------------------

namespace {

/// Walks an NNF formula outside-in, replacing existential binders by fresh
/// constants while no universal has been crossed.
class Skolemizer {
public:
  Skolemizer(TermManager &M, SkolemResult &R) : M(M), R(R) {}

  Term walk(Term T, bool UnderForall) {
    const logic::Node *N = T.node();
    switch (N->kind()) {
    case Kind::And:
    case Kind::Or: {
      std::vector<Term> Kids;
      Kids.reserve(N->numKids());
      for (Term K : N->kids())
        Kids.push_back(walk(K, UnderForall));
      return N->kind() == Kind::And ? M.mkAnd(Kids) : M.mkOr(Kids);
    }
    case Kind::Exists: {
      if (UnderForall) {
        // Would need a skolem function; weaken (positive polarity) to true.
        R.Complete = false;
        return M.mkTrue();
      }
      Subst S;
      for (Term B : N->binders()) {
        Term C = M.freshVar("sk_" + B->name(), B.sort());
        S[B] = C;
        R.Skolems.push_back(C);
      }
      return walk(substitute(M, N->body(), S), UnderForall);
    }
    case Kind::Forall:
      return M.mkForall(N->binders(), walk(N->body(), /*UnderForall=*/true));
    default:
      // Atom or negated atom: NNF guarantees no boolean structure below.
      return T;
    }
  }

private:
  TermManager &M;
  SkolemResult &R;
};

} // namespace

SkolemResult sharpie::quant::skolemize(TermManager &M, Term T) {
  SkolemResult R;
  Term N = logic::toNnf(M, T);
  R.Formula = Skolemizer(M, R).walk(N, /*UnderForall=*/false);
  return R;
}

// -- Universal expansion --------------------------------------------------------

namespace {

class Expander {
public:
  Expander(TermManager &M, Term Root, const std::vector<Term> &TidTerms,
           const std::vector<Term> &IntTerms, const ExpandOptions &Opts,
           ExpandResult &R)
      : M(M), TidTerms(TidTerms), IntTerms(IntTerms), Opts(Opts), R(R) {
    if (Opts.CollectDeferred && Opts.CoreTids)
      CoreTidSet.insert(Opts.CoreTids->begin(), Opts.CoreTids->end());
    if (!Opts.RelevancyFilter)
      return;
    // Relevancy pre-pass: which arrays is each candidate index term used
    // with anywhere in the formula? (Read indices are always Tid-sorted
    // and the term language has no compound Tid terms, so the index of a
    // Read is directly a variable comparable against the domain.)
    for (Term Rd : logic::collectSubterms(
             Root, [](Term S) { return S.kind() == Kind::Read; }))
      ArraysIndexedBy[Rd->kid(1)].insert(Rd->kid(0));
  }

  /// \p Conjunctive: T is at a conjunctive position of the root -- every
  /// conjunct of an expansion here is itself a conjunct of the whole, so
  /// partition mode may route instances into the deferred manifest. Below
  /// an Or that no longer holds and universals are expanded fully in
  /// place.
  Term walk(Term T, bool Conjunctive) {
    const logic::Node *N = T.node();
    switch (N->kind()) {
    case Kind::And:
    case Kind::Or: {
      bool KidConj = Conjunctive && N->kind() == Kind::And;
      std::vector<Term> Kids;
      Kids.reserve(N->numKids());
      for (Term K : N->kids())
        Kids.push_back(walk(K, KidConj));
      return N->kind() == Kind::And ? M.mkAnd(Kids) : M.mkOr(Kids);
    }
    case Kind::Forall:
      return expand(T, Conjunctive);
    case Kind::Exists:
      assert(false && "expandForalls requires an existential-free formula");
      return T;
    default:
      return T;
    }
  }

private:
  Term expand(Term Q, bool Conjunctive) {
    const logic::Node *N = Q.node();
    const std::vector<Term> &Bs = N->binders();
    // Routing instances into the manifest is only sound at conjunctive
    // positions; in partition mode enumeration always runs over the full
    // domains (core AND deferred must equal the full expansion).
    bool Partition = Opts.CollectDeferred && Conjunctive;
    // Per-binder domains, relevancy-filtered when enabled (lazy mode) or
    // full (partition mode, where the filter only steers routing).
    std::vector<std::vector<Term>> Doms;
    Doms.reserve(Bs.size());
    std::vector<std::set<Term>> CoreDoms;
    if (Partition)
      CoreDoms.reserve(Bs.size());
    for (Term B : Bs) {
      if (!Opts.CollectDeferred) {
        Doms.push_back(domainFor(N, B));
        continue;
      }
      Doms.push_back(B.sort() == Sort::Tid ? TidTerms : IntTerms);
      if (!Partition)
        continue;
      // The core sub-domain: filter-kept terms intersected with the
      // explicit worklist. Int binders are never the bloat source and
      // stay core.
      std::set<Term> Core;
      if (B.sort() == Sort::Tid) {
        for (Term D : domainFor(N, B))
          if (CoreTidSet.empty() || CoreTidSet.count(D))
            Core.insert(D);
      } else {
        Core.insert(Doms.back().begin(), Doms.back().end());
      }
      CoreDoms.push_back(std::move(Core));
    }
    // Estimate the instance count; weaken to true on budget overrun.
    uint64_t Count = 1;
    for (const std::vector<Term> &Dom : Doms) {
      if (Dom.empty()) {
        // No instance terms for this sort: nothing to say, weaken.
        R.Complete = false;
        return M.mkTrue();
      }
      Count *= Dom.size();
      if (Count + R.NumInstances > Opts.MaxInstantiations) {
        R.Complete = false;
        return M.mkTrue();
      }
    }
    std::vector<Term> Instances;
    Subst S;
    enumerate(N, Doms, Partition ? &CoreDoms : nullptr, 0, S, Instances);
    return M.mkAnd(Instances);
  }

  /// The instantiation domain for binder \p B of quantifier \p N: the full
  /// per-sort index set, or the relevancy-filtered subset of it. A term is
  /// relevant to B when it indexes (anywhere in the formula) one of the
  /// arrays the quantifier body reads at B; if the body reads no array at
  /// B, or the filter would empty the domain, the full domain is kept.
  std::vector<Term> domainFor(const logic::Node *N, Term B) {
    const std::vector<Term> &Full =
        B.sort() == Sort::Tid ? TidTerms : IntTerms;
    if (!Opts.RelevancyFilter || B.sort() != Sort::Tid)
      return Full;
    std::set<Term> BodyArrays;
    for (Term Rd : logic::collectSubterms(N->body(), [&](Term S) {
           return S.kind() == Kind::Read && S->kid(1) == B;
         }))
      BodyArrays.insert(Rd->kid(0));
    if (BodyArrays.empty())
      return Full;
    std::vector<Term> Kept;
    for (Term D : Full) {
      auto It = ArraysIndexedBy.find(D);
      bool Relevant = false;
      if (It != ArraysIndexedBy.end())
        for (Term A : It->second)
          if (BodyArrays.count(A)) {
            Relevant = true;
            break;
          }
      if (Relevant)
        Kept.push_back(D);
    }
    if (Kept.empty())
      return Full;
    R.NumFiltered += static_cast<unsigned>(Full.size() - Kept.size());
    return Kept;
  }

  void enumerate(const logic::Node *N,
                 const std::vector<std::vector<Term>> &Doms,
                 const std::vector<std::set<Term>> *CoreDoms, size_t I,
                 Subst &S, std::vector<Term> &Out) {
    const std::vector<Term> &Bs = N->binders();
    if (I == Bs.size()) {
      ++R.NumInstances;
      bool Core = true;
      if (CoreDoms)
        for (size_t K = 0; K < Bs.size(); ++K)
          if (!(*CoreDoms)[K].count(S.at(Bs[K]))) {
            Core = false;
            break;
          }
      if (CoreDoms && !Core) {
        // Routed out: a deferred instance is a standalone conjunct, so any
        // universal nested inside it is expanded fully in place.
        R.Deferred.push_back(walk(substitute(M, N->body(), S),
                                  /*Conjunctive=*/false));
        return;
      }
      // Recurse to expand nested universals inside the instantiated body.
      Out.push_back(walk(substitute(M, N->body(), S),
                         /*Conjunctive=*/CoreDoms != nullptr));
      return;
    }
    Term B = Bs[I];
    for (Term D : Doms[I]) {
      S[B] = D;
      enumerate(N, Doms, CoreDoms, I + 1, S, Out);
    }
    S.erase(B);
  }

  TermManager &M;
  const std::vector<Term> &TidTerms;
  const std::vector<Term> &IntTerms;
  const ExpandOptions &Opts;
  ExpandResult &R;
  /// index term -> arrays it is read with, over the whole input formula.
  /// Populated only when Opts.RelevancyFilter is set.
  std::map<Term, std::set<Term>> ArraysIndexedBy;
  /// The explicit core worklist (partition mode); empty = no restriction.
  std::set<Term> CoreTidSet;
};

} // namespace

ExpandResult sharpie::quant::expandForalls(TermManager &M, Term T,
                                           const std::vector<Term> &TidTerms,
                                           const std::vector<Term> &IntTerms,
                                           const ExpandOptions &Opts) {
  ExpandResult R;
  std::vector<Term> BoundedInt = IntTerms;
  if (BoundedInt.size() > Opts.MaxIntTerms) {
    BoundedInt.resize(Opts.MaxIntTerms);
    R.Complete = false;
  }
  R.Formula = Expander(M, T, TidTerms, BoundedInt, Opts, R)
                  .walk(T, /*Conjunctive=*/true);
  return R;
}

// -- Violated-instance extraction ---------------------------------------------

ViolatedResult sharpie::quant::selectViolated(smt::SmtModel &Model,
                                              const std::vector<Term> &Items,
                                              const std::vector<char> &Skip) {
  ViolatedResult R;
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I < Skip.size() && Skip[I])
      continue;
    std::optional<bool> V = Model.evalBool(Items[I]);
    if (!V) {
      R.EvalFailed = true;
      continue;
    }
    if (!*V)
      R.Violated.push_back(I);
  }
  return R;
}

// -- Index-term collection --------------------------------------------------------

std::set<Term> sharpie::quant::tidIndexTerms(Term T) {
  std::set<Term> Out;
  for (Term V : logic::freeVars(T))
    if (V.sort() == Sort::Tid)
      Out.insert(V);
  return Out;
}

std::set<Term> sharpie::quant::intIndexTerms(Term T) {
  // Bare Int variables are deliberately excluded: in the array property
  // fragment only read terms and literals act as index/pivot terms, and
  // including the (numerous) auxiliary counter variables makes expansion
  // blow up without adding provable facts.
  std::set<Term> Out;
  std::set<Term> FV = logic::freeVars(T);
  auto IsGround = [&FV](Term S) {
    for (Term V : logic::freeVars(S))
      if (!FV.count(V))
        return false;
    return true;
  };
  std::set<Term> Candidates = logic::collectSubterms(T, [&](Term S) {
    if (S.sort() != Sort::Int)
      return false;
    switch (S.kind()) {
    case Kind::IntConst:
      return true;
    case Kind::Read:
    case Kind::Sub:
    case Kind::Add:
      // Ground pivot terms only (no bound variables inside).
      return IsGround(S);
    default:
      return false;
    }
  });
  Out.insert(Candidates.begin(), Candidates.end());
  return Out;
}
