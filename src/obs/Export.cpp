//===- obs/Export.cpp - Trace sinks: Chrome trace, JSONL, skeleton ------------===//
//
// Part of sharpie. See Export.h.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"

#include <set>

using namespace sharpie;
using namespace sharpie::obs;

std::string sharpie::obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void sharpie::obs::writeChromeTrace(const Tracer &T, FILE *Out) {
  std::vector<Event> Events = T.mergedEvents();
  std::fprintf(Out, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool First = true;
  auto Sep = [&] {
    std::fprintf(Out, First ? "\n" : ",\n");
    First = false;
  };
  // Name each worker's track; ranks appear in ascending order so Perfetto
  // lists the driver (rank 0) first.
  std::set<uint32_t> Ranks;
  for (const Event &E : Events)
    Ranks.insert(E.Worker);
  for (uint32_t R : Ranks) {
    Sep();
    std::fprintf(Out,
                 "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":\"worker %u\"}}",
                 R, R);
  }
  for (const Event &E : Events) {
    Sep();
    switch (E.Kind) {
    case EventKind::SpanBegin:
      std::fprintf(Out,
                   "{\"ph\":\"B\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                   "\"cat\":\"sharpie\",\"name\":\"%s\"",
                   E.Worker, E.TimeUs, jsonEscape(E.Name).c_str());
      if (!E.Detail.empty())
        std::fprintf(Out, ",\"args\":{\"detail\":\"%s\"}",
                     jsonEscape(E.Detail).c_str());
      std::fprintf(Out, "}");
      break;
    case EventKind::SpanEnd:
      std::fprintf(Out,
                   "{\"ph\":\"E\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                   "\"cat\":\"sharpie\",\"name\":\"%s\"}",
                   E.Worker, E.TimeUs, jsonEscape(E.Name).c_str());
      break;
    case EventKind::Counter:
      // Per-worker counter tracks: suffix the name with the rank so the
      // running totals do not overwrite each other in the viewer.
      std::fprintf(Out,
                   "{\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                   "\"name\":\"%s (w%u)\",\"args\":{\"value\":%lld}}",
                   E.Worker, E.TimeUs, jsonEscape(E.Name).c_str(), E.Worker,
                   static_cast<long long>(E.Value));
      break;
    case EventKind::Instant:
      std::fprintf(Out,
                   "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                   "\"s\":\"t\",\"name\":\"%s\",\"args\":{\"detail\":\"%s\","
                   "\"value\":%lld}}",
                   E.Worker, E.TimeUs, jsonEscape(E.Name).c_str(),
                   jsonEscape(E.Detail).c_str(),
                   static_cast<long long>(E.Value));
      break;
    }
  }
  std::fprintf(Out, "\n]}\n");
}

void sharpie::obs::writeJsonl(const Tracer &T, FILE *Out) {
  for (const Event &E : T.mergedEvents()) {
    const char *Kind = E.Kind == EventKind::SpanBegin  ? "begin"
                       : E.Kind == EventKind::SpanEnd  ? "end"
                       : E.Kind == EventKind::Counter  ? "counter"
                                                       : "instant";
    std::fprintf(Out,
                 "{\"kind\":\"%s\",\"worker\":%u,\"name\":\"%s\","
                 "\"detail\":\"%s\",\"value\":%lld,\"ts_us\":%.3f}\n",
                 Kind, E.Worker, jsonEscape(E.Name).c_str(),
                 jsonEscape(E.Detail).c_str(),
                 static_cast<long long>(E.Value), E.TimeUs);
  }
}

std::vector<std::string> sharpie::obs::eventSkeleton(const Tracer &T) {
  std::vector<std::string> Out;
  for (const Event &E : T.mergedEvents()) {
    std::string L;
    switch (E.Kind) {
    case EventKind::SpanBegin:
      L = "B w" + std::to_string(E.Worker) + " " + E.Name;
      if (!E.Detail.empty())
        L += " | " + E.Detail;
      break;
    case EventKind::SpanEnd:
      L = "E w" + std::to_string(E.Worker) + " " + E.Name;
      break;
    case EventKind::Counter:
      L = "C w" + std::to_string(E.Worker) + " " + E.Name + " = " +
          std::to_string(E.Value);
      break;
    case EventKind::Instant:
      L = "I w" + std::to_string(E.Worker) + " " + E.Name;
      if (!E.Detail.empty())
        L += " | " + E.Detail;
      L += " = " + std::to_string(E.Value);
      break;
    }
    Out.push_back(std::move(L));
  }
  return Out;
}
