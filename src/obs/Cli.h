//===- obs/Cli.h - Shared observability wiring for CLI drivers --*- C++ -*-===//
//
// Part of sharpie. Every driver (tools/sharpie, examples/run_protocol)
// exposes the same observability surface:
//
//   --trace-out FILE    Chrome trace-event / Perfetto JSON  (SHARPIE_TRACE)
//   --events-out FILE   JSONL event stream                  (SHARPIE_EVENTS)
//   --log-level LVL     quiet|info|debug|trace          (SHARPIE_LOG_LEVEL)
//   --stats             per-phase stats table on stderr after the run
//
// This helper owns the flag/env parsing, tracer construction and sink
// writing so the drivers stay thin and agree on behavior. Flags win over
// the environment; the environment exists so sweep.sh can turn tracing on
// without touching every command line.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_OBS_CLI_H
#define SHARPIE_OBS_CLI_H

#include "obs/Obs.h"

#include <memory>
#include <string>

namespace sharpie {
namespace obs {

struct CliObs {
  std::string TraceOut;  ///< Chrome trace path; empty = off.
  std::string EventsOut; ///< JSONL path; empty = off.
  LogLevel Level = LogLevel::Quiet;
  bool Stats = false;

  /// Seeds the fields from SHARPIE_TRACE / SHARPIE_EVENTS /
  /// SHARPIE_LOG_LEVEL (a bad env level is ignored). Call before the
  /// argv loop so flags override.
  void readEnv();

  /// Consumes argv[I] when it is one of the observability flags (advancing
  /// \p I past a flag's value). Returns false for a foreign argument; on a
  /// malformed value (e.g. --log-level typo) returns true with \p Err set.
  bool parseArg(int argc, char **argv, int &I, std::string &Err);

  /// True when any sink is configured (so a tracer is worth creating).
  bool enabled() const {
    return Stats || Level != LogLevel::Quiet || !TraceOut.empty() ||
           !EventsOut.empty();
  }

  /// Builds the tracer for the configuration: log level as given, event
  /// collection on iff a trace/events file was requested. Returns null
  /// when enabled() is false -- the caller passes the null straight into
  /// SynthOptions::Trace and the pipeline stays on the zero-cost path.
  std::unique_ptr<Tracer> makeTracer() const;

  /// Writes the configured trace/JSONL files. Returns false with \p Err
  /// set on an I/O failure.
  bool writeOutputs(const Tracer &T, std::string &Err) const;

  /// The usage-line fragment shared by the drivers' --help output.
  static const char *usageFragment() {
    return "[--trace-out FILE] [--events-out FILE]"
           " [--log-level quiet|info|debug|trace] [--stats]";
  }
};

} // namespace obs
} // namespace sharpie

#endif // SHARPIE_OBS_CLI_H
