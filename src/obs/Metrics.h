//===- obs/Metrics.h - Process-wide metrics registry for serving -*- C++ -*-===//
//
// Part of sharpie. PR 3's per-request metrics (the ctr_*/hist_* fields of
// a MetricsSummary) die with the request; a long-running daemon needs
// them to accumulate into service health. The MetricsRegistry is that
// accumulator:
//
//   * each finished request is record()ed once, labeled by its outcome
//     (verified / not_verified / inconclusive / error) and by the cache
//     tier that answered it (t1_hit / t2_warm / cold);
//   * counters sum; histograms merge through HistSummary's log2 buckets
//     (obs/Obs.h), so cumulative percentiles stay available without the
//     registry ever retaining a raw sample;
//   * the snapshot renders two ways: structured JSON (serve/Server.cpp,
//     the `metrics` wire op) and Prometheus text exposition
//     (renderProm(), scrapeable by a stock Prometheus).
//
// Thread safety: record() and snapshot() take one internal mutex; they
// are called once per request / per scrape, never on the synthesis hot
// path, so contention is irrelevant. The zero-overhead contract of the
// obs layer is untouched -- a pipeline with no tracer never reaches the
// registry at all.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_OBS_METRICS_H
#define SHARPIE_OBS_METRICS_H

#include "obs/Obs.h"

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sharpie {
namespace obs {

/// Request outcome label, derived from the driver exit code.
enum class Outcome : unsigned { Verified, NotVerified, Inconclusive, Error };
constexpr unsigned NumOutcomes = 4;
const char *outcomeName(Outcome O);

/// Which cache tier answered the request: a tier-1 verdict replay, a
/// solve warmed by tier-2 reduce-cache hits, or a fully cold solve.
enum class CacheTier : unsigned { T1Hit, T2Warm, Cold };
constexpr unsigned NumCacheTiers = 3;
const char *cacheTierName(CacheTier T);

/// A point-in-time server gauge handed to the renderers by the caller
/// (the registry itself stores only cumulative request data). Labels are
/// optional key/value pairs; values are escaped by the Prometheus
/// renderer.
struct PromGauge {
  std::string Name; ///< Metric name without the "sharpie_" prefix.
  std::string Help;
  double Value = 0;
  std::vector<std::pair<std::string, std::string>> Labels;
};

class MetricsRegistry {
public:
  struct Snapshot {
    uint64_t Requests[NumOutcomes][NumCacheTiers] = {};
    double RequestSeconds[NumOutcomes][NumCacheTiers] = {};
    std::vector<std::pair<std::string, int64_t>> Counters;
    std::vector<std::pair<std::string, HistSummary>> Hists;
  };

  /// Folds one finished request's merged metrics into the cumulative
  /// state. \p Seconds is the request's server-side wall time.
  void record(Outcome O, CacheTier T, const MetricsSummary &S,
              double Seconds);

  Snapshot snapshot() const;

  /// Increments a service-level counter that belongs to no single
  /// request (requests shed at admission, drain cancellations): those
  /// events never produce a MetricsSummary to record(), but must still
  /// reach the metrics/Prometheus surface. Does not count as a recorded
  /// request.
  void bump(std::string_view Name, int64_t V = 1);

  /// Cumulative sum of counter \p Name over all recorded requests (0
  /// when never emitted).
  int64_t counterSum(std::string_view Name) const;

  /// Total requests recorded, all labels.
  uint64_t recorded() const;

private:
  mutable std::mutex Mu;
  uint64_t Requests[NumOutcomes][NumCacheTiers] = {};
  double RequestSeconds[NumOutcomes][NumCacheTiers] = {};
  std::map<std::string, int64_t> Counters;
  std::map<std::string, HistSummary> Hists;
};

/// Sanitizes an internal metric name ("card_axioms.unary") into a
/// Prometheus metric-name fragment: [a-zA-Z0-9_:], everything else
/// becomes '_', and a leading digit gains a '_' prefix.
std::string promSanitizeName(std::string_view Name);

/// Escapes a Prometheus label value: backslash, double quote, newline.
std::string promEscapeLabel(std::string_view Value);

/// Renders the full Prometheus text exposition (version 0.0.4): the
/// outcome/cache-tier labeled request totals, every cumulative counter
/// as `sharpie_ctr_<name>_total`, every merged histogram as a native
/// Prometheus histogram (`_bucket{le=...}/_sum/_count`) under
/// `sharpie_hist_<name>`, then the caller's gauges. Deterministic for a
/// given snapshot (names sorted, all label combinations emitted).
std::string renderProm(const MetricsRegistry::Snapshot &S,
                       const std::vector<PromGauge> &Gauges);

} // namespace obs
} // namespace sharpie

#endif // SHARPIE_OBS_METRICS_H
