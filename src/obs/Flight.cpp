//===- obs/Flight.cpp - Continuous flight recorder for the daemon -------------===//
//
// Part of sharpie. See Flight.h.
//
//===----------------------------------------------------------------------===//

#include "obs/Flight.h"

#include "obs/Export.h"

#include <cstdio>

using namespace sharpie;
using namespace sharpie::obs;

size_t FlightRecorder::eventBytes(const Event &E) {
  return sizeof(Event) + E.Detail.capacity();
}

void FlightRecorder::record(FlightRecord R) {
  if (!Cfg.Capacity)
    return;
  if (R.Events.size() > Cfg.MaxEventsPerRequest) {
    R.DroppedEvents += R.Events.size() - Cfg.MaxEventsPerRequest;
    R.Events.resize(Cfg.MaxEventsPerRequest);
  }
  size_t NewBytes = 0;
  for (Event &E : R.Events) {
    if (E.Detail.size() > Cfg.MaxDetailBytes)
      E.Detail.resize(Cfg.MaxDetailBytes);
    if (E.Detail.capacity() > Cfg.MaxDetailBytes)
      E.Detail.shrink_to_fit();
    NewBytes += eventBytes(E);
  }
  R.Events.shrink_to_fit();
  std::lock_guard<std::mutex> L(Mu);
  while (Ring.size() >= Cfg.Capacity) {
    for (const Event &E : Ring.front().Events)
      Bytes -= eventBytes(E);
    Ring.pop_front();
  }
  Bytes += NewBytes;
  Ring.push_back(std::move(R));
}

std::vector<FlightRecord> FlightRecorder::dump(uint64_t RequestId) const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<FlightRecord> Out;
  for (const FlightRecord &R : Ring)
    if (!RequestId || R.RequestId == RequestId)
      Out.push_back(R);
  return Out;
}

size_t FlightRecorder::retained() const {
  std::lock_guard<std::mutex> L(Mu);
  return Ring.size();
}

size_t FlightRecorder::approxBytes() const {
  std::lock_guard<std::mutex> L(Mu);
  return Bytes;
}

size_t FlightRecorder::memoryCeilingBytes() const {
  // Each retained event is the Event struct plus a detail string clipped
  // to MaxDetailBytes; string capacity never exceeds the pre-clip size
  // after shrink_to_fit, and small-string storage is inside the struct,
  // so a per-event allowance of MaxDetailBytes + slack covers it.
  size_t PerEvent = sizeof(Event) + Cfg.MaxDetailBytes + 32;
  return Cfg.Capacity * Cfg.MaxEventsPerRequest * PerEvent;
}

namespace {

void appendEscaped(std::string &Out, const char *S) {
  Out += jsonEscape(S);
}

const char *kindName(EventKind K) {
  switch (K) {
  case EventKind::SpanBegin:
    return "begin";
  case EventKind::SpanEnd:
    return "end";
  case EventKind::Counter:
    return "counter";
  case EventKind::Instant:
    return "instant";
  }
  return "?";
}

} // namespace

std::string
sharpie::obs::renderFlightTrace(const std::vector<FlightRecord> &Records) {
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char Buf[256];
  bool First = true;
  auto Sep = [&] {
    Out += First ? "\n" : ",\n";
    First = false;
  };
  for (const FlightRecord &R : Records) {
    unsigned long long Pid = R.RequestId;
    // Name the process after the request so the Perfetto track list reads
    // "r17 verified (a1b2c3...)".
    Sep();
    std::string PName = "r" + std::to_string(R.RequestId);
    if (!R.Outcome.empty())
      PName += " " + R.Outcome;
    if (!R.Hash.empty())
      PName += " (" + R.Hash.substr(0, 12) + ")";
    std::snprintf(Buf, sizeof(Buf),
                  "{\"ph\":\"M\",\"pid\":%llu,\"tid\":0,\"name\":"
                  "\"process_name\",\"args\":{\"name\":\"",
                  Pid);
    Out += Buf;
    Out += jsonEscape(PName) + "\"}}";
    for (const Event &E : R.Events) {
      Sep();
      switch (E.Kind) {
      case EventKind::SpanBegin:
        std::snprintf(Buf, sizeof(Buf),
                      "{\"ph\":\"B\",\"pid\":%llu,\"tid\":%u,\"ts\":%.3f,"
                      "\"cat\":\"sharpie\",\"name\":\"",
                      Pid, E.Worker, E.TimeUs);
        Out += Buf;
        appendEscaped(Out, E.Name);
        Out += "\"";
        if (!E.Detail.empty())
          Out += ",\"args\":{\"detail\":\"" + jsonEscape(E.Detail) + "\"}";
        Out += "}";
        break;
      case EventKind::SpanEnd:
        std::snprintf(Buf, sizeof(Buf),
                      "{\"ph\":\"E\",\"pid\":%llu,\"tid\":%u,\"ts\":%.3f,"
                      "\"cat\":\"sharpie\",\"name\":\"",
                      Pid, E.Worker, E.TimeUs);
        Out += Buf;
        appendEscaped(Out, E.Name);
        Out += "\"}";
        break;
      case EventKind::Counter:
        std::snprintf(Buf, sizeof(Buf),
                      "{\"ph\":\"C\",\"pid\":%llu,\"tid\":%u,\"ts\":%.3f,"
                      "\"name\":\"",
                      Pid, E.Worker, E.TimeUs);
        Out += Buf;
        appendEscaped(Out, E.Name);
        std::snprintf(Buf, sizeof(Buf),
                      " (w%u)\",\"args\":{\"value\":%lld}}", E.Worker,
                      static_cast<long long>(E.Value));
        Out += Buf;
        break;
      case EventKind::Instant:
        std::snprintf(Buf, sizeof(Buf),
                      "{\"ph\":\"i\",\"pid\":%llu,\"tid\":%u,\"ts\":%.3f,"
                      "\"s\":\"t\",\"name\":\"",
                      Pid, E.Worker, E.TimeUs);
        Out += Buf;
        appendEscaped(Out, E.Name);
        Out += "\",\"args\":{\"detail\":\"" + jsonEscape(E.Detail) + "\"";
        std::snprintf(Buf, sizeof(Buf), ",\"value\":%lld}}",
                      static_cast<long long>(E.Value));
        Out += Buf;
        break;
      }
    }
  }
  Out += "\n]}\n";
  return Out;
}

std::string
sharpie::obs::renderFlightJsonl(const std::vector<FlightRecord> &Records) {
  std::string Out;
  char Buf[256];
  for (const FlightRecord &R : Records)
    for (const Event &E : R.Events) {
      std::snprintf(Buf, sizeof(Buf),
                    "{\"request\":%llu,\"kind\":\"%s\",\"worker\":%u,"
                    "\"name\":\"",
                    static_cast<unsigned long long>(R.RequestId),
                    kindName(E.Kind), E.Worker);
      Out += Buf;
      appendEscaped(Out, E.Name);
      Out += "\",\"detail\":\"" + jsonEscape(E.Detail) + "\"";
      std::snprintf(Buf, sizeof(Buf), ",\"value\":%lld,\"ts_us\":%.3f}\n",
                    static_cast<long long>(E.Value), E.TimeUs);
      Out += Buf;
    }
  return Out;
}
