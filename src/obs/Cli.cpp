//===- obs/Cli.cpp - Shared observability wiring for CLI drivers --------------===//
//
// Part of sharpie. See Cli.h.
//
//===----------------------------------------------------------------------===//

#include "obs/Cli.h"
#include "obs/Export.h"

#include <cstdlib>
#include <cstring>

using namespace sharpie;
using namespace sharpie::obs;

void CliObs::readEnv() {
  if (const char *V = std::getenv("SHARPIE_TRACE"))
    TraceOut = V;
  if (const char *V = std::getenv("SHARPIE_EVENTS"))
    EventsOut = V;
  if (const char *V = std::getenv("SHARPIE_LOG_LEVEL"))
    if (auto L = parseLogLevel(V))
      Level = *L;
}

bool CliObs::parseArg(int argc, char **argv, int &I, std::string &Err) {
  auto Value = [&](const char *Flag) -> const char * {
    if (I + 1 >= argc) {
      Err = std::string("missing value for ") + Flag;
      return nullptr;
    }
    return argv[++I];
  };
  if (!std::strcmp(argv[I], "--trace-out")) {
    if (const char *V = Value("--trace-out"))
      TraceOut = V;
    return true;
  }
  if (!std::strcmp(argv[I], "--events-out")) {
    if (const char *V = Value("--events-out"))
      EventsOut = V;
    return true;
  }
  if (!std::strcmp(argv[I], "--log-level")) {
    if (const char *V = Value("--log-level")) {
      if (auto L = parseLogLevel(V))
        Level = *L;
      else
        Err = std::string("bad --log-level '") + V +
              "' (want quiet|info|debug|trace)";
    }
    return true;
  }
  if (!std::strcmp(argv[I], "--stats")) {
    Stats = true;
    return true;
  }
  return false;
}

std::unique_ptr<Tracer> CliObs::makeTracer() const {
  if (!enabled())
    return nullptr;
  TracerConfig Cfg;
  Cfg.Level = Level;
  Cfg.CollectEvents = !TraceOut.empty() || !EventsOut.empty();
  return std::make_unique<Tracer>(Cfg);
}

bool CliObs::writeOutputs(const Tracer &T, std::string &Err) const {
  auto WriteTo = [&](const std::string &Path, auto &&Writer) {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      Err = "cannot write " + Path;
      return false;
    }
    Writer(T, F);
    std::fclose(F);
    return true;
  };
  if (!TraceOut.empty() &&
      !WriteTo(TraceOut, [](const Tracer &Tr, std::FILE *F) {
        writeChromeTrace(Tr, F);
      }))
    return false;
  if (!EventsOut.empty() &&
      !WriteTo(EventsOut,
               [](const Tracer &Tr, std::FILE *F) { writeJsonl(Tr, F); }))
    return false;
  return true;
}
