//===- obs/Flight.h - Continuous flight recorder for the daemon -*- C++ -*-===//
//
// Part of sharpie. Post-hoc debugging for the serving stack: the daemon
// traces every request into its per-request Tracer anyway (bounded by
// TracerConfig::MaxEvents); when the request finishes, its event stream
// is captured into this bounded ring buffer. A `dump_trace` wire op then
// renders the retained requests as one Perfetto-loadable Chrome
// trace-event document (one process per request, tracks per worker, all
// pinned to t=0 at request arrival) or as JSONL -- so a slow or wedged
// request from five minutes ago can be inspected without tracing having
// been pre-enabled.
//
// Memory is fixed by construction: at most Capacity requests are
// retained, each truncated to MaxEventsPerRequest events with details
// clipped to MaxDetailBytes. memoryCeilingBytes() is the hard bound the
// bench asserts; approxBytes() the live footprint estimate.
//
// Event::Name pointers are static string literals by the obs layer's
// contract (span/counter identity), so retaining events beyond their
// tracer's lifetime is safe; Detail strings are owned copies.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_OBS_FLIGHT_H
#define SHARPIE_OBS_FLIGHT_H

#include "obs/Obs.h"

#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace sharpie {
namespace obs {

/// One retained request: identity, verdict, and the deterministic event
/// stream (with timestamps relative to request arrival).
struct FlightRecord {
  uint64_t RequestId = 0;
  std::string Hash;    ///< Canonical problem hash; empty on parse errors.
  std::string Outcome; ///< outcomeName() of the request's result.
  double TotalSeconds = 0;
  /// Events discarded before capture (tracer MaxEvents cap) plus events
  /// clipped by the recorder's own MaxEventsPerRequest truncation.
  uint64_t DroppedEvents = 0;
  std::vector<Event> Events;
};

class FlightRecorder {
public:
  struct Config {
    size_t Capacity = 32;             ///< Requests retained; 0 disables.
    size_t MaxEventsPerRequest = 4096;
    size_t MaxDetailBytes = 96;       ///< Detail strings clipped to this.
  };

  explicit FlightRecorder(Config C) : Cfg(C) {}

  const Config &config() const { return Cfg; }

  /// Truncates \p R to the per-request limits and appends it, evicting
  /// the oldest record when the ring is full. No-op when Capacity is 0.
  void record(FlightRecord R);

  /// The retained records, oldest first. \p RequestId 0 returns all;
  /// otherwise only the matching record (empty when not retained).
  std::vector<FlightRecord> dump(uint64_t RequestId = 0) const;

  size_t retained() const;

  /// Estimated bytes currently held by the retained event streams.
  size_t approxBytes() const;

  /// The fixed upper bound implied by the configuration -- what
  /// approxBytes() can never exceed.
  size_t memoryCeilingBytes() const;

  /// Estimated footprint of one retained event (struct + clipped detail).
  static size_t eventBytes(const Event &E);

private:
  Config Cfg;
  mutable std::mutex Mu;
  std::deque<FlightRecord> Ring;
  size_t Bytes = 0; ///< Sum of eventBytes over Ring.
};

/// Renders \p Records as one Chrome trace-event / Perfetto JSON document:
/// pid = request id (with process_name metadata naming the request and
/// its outcome), tid = worker rank, ts relative to each request's
/// arrival. Loadable in ui.perfetto.dev.
std::string renderFlightTrace(const std::vector<FlightRecord> &Records);

/// Renders \p Records as JSON Lines, one event per line, each carrying
/// its request id.
std::string renderFlightJsonl(const std::vector<FlightRecord> &Records);

} // namespace obs
} // namespace sharpie

#endif // SHARPIE_OBS_FLIGHT_H
