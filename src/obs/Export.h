//===- obs/Export.h - Trace sinks: Chrome trace, JSONL, skeleton -*- C++ -*-===//
//
// Part of sharpie. Serializers over a finished Tracer (all workers joined):
//
//   * writeChromeTrace: Chrome trace-event format ("traceEvents" array of
//     B/E/C/i phases), loadable in Perfetto (ui.perfetto.dev) and
//     chrome://tracing. One track (tid) per worker rank, nested spans for
//     tuple -> Houdini iteration -> SMT check; ts is microseconds since
//     the tracer epoch.
//   * writeJsonl: one JSON object per event per line -- the stable stream
//     format for ad-hoc scripting (jq-friendly).
//   * eventSkeleton: the deterministic projection of the merged stream
//     (kind, worker, name, detail, counter value -- no timestamps), one
//     line per event. The golden-trace test pins this exactly.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_OBS_EXPORT_H
#define SHARPIE_OBS_EXPORT_H

#include "obs/Obs.h"

#include <cstdio>
#include <string>
#include <vector>

namespace sharpie {
namespace obs {

/// Escapes \p S for inclusion in a JSON string literal (quotes, backslash,
/// control characters).
std::string jsonEscape(const std::string &S);

/// Writes the Chrome trace-event JSON document for \p T to \p Out.
void writeChromeTrace(const Tracer &T, FILE *Out);

/// Writes the merged event stream as JSON Lines to \p Out.
void writeJsonl(const Tracer &T, FILE *Out);

/// The deterministic skeleton of the merged stream:
///   "B w<rank> <name>[ | <detail>]"   span begin
///   "E w<rank> <name>"                span end
///   "C w<rank> <name> = <total>"      counter (running total)
///   "I w<rank> <name>[ | <detail>][ = <value>]"  instant
std::vector<std::string> eventSkeleton(const Tracer &T);

} // namespace obs
} // namespace sharpie

#endif // SHARPIE_OBS_EXPORT_H
