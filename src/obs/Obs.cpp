//===- obs/Obs.cpp - Structured tracing & metrics for #Pi ---------------------===//
//
// Part of sharpie. See Obs.h.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>

using namespace sharpie;
using namespace sharpie::obs;

const char *sharpie::obs::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Quiet:
    return "quiet";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Trace:
    return "trace";
  }
  return "?";
}

std::optional<LogLevel> sharpie::obs::parseLogLevel(std::string_view Name) {
  if (Name == "quiet")
    return LogLevel::Quiet;
  if (Name == "info")
    return LogLevel::Info;
  if (Name == "debug")
    return LogLevel::Debug;
  if (Name == "trace")
    return LogLevel::Trace;
  return std::nullopt;
}

// -- HistSummary -------------------------------------------------------------

unsigned HistSummary::bucketFor(double V) {
  if (!(V > bucketUpperBound(0)))
    return 0; // Includes NaN and everything at or below 2^MinExp.
  int E = 0;
  double Mant = std::frexp(V, &E); // V = Mant * 2^E, Mant in [0.5, 1).
  // frexp(2^k) yields (0.5, k+1); the bucket upper bound is inclusive,
  // so an exact power of two belongs one bucket lower.
  if (Mant == 0.5)
    --E;
  long B = static_cast<long>(E) - MinExp;
  if (B < 0)
    return 0;
  if (B >= static_cast<long>(NumBuckets))
    return NumBuckets - 1;
  return static_cast<unsigned>(B);
}

double HistSummary::bucketUpperBound(unsigned B) {
  return std::ldexp(1.0, static_cast<int>(B) + MinExp);
}

double HistSummary::percentileFromBuckets(double Q) const {
  if (!Count)
    return 0;
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  if (Rank == 0)
    Rank = 1;
  uint64_t Cum = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Cum += Buckets[B];
    if (Cum >= Rank)
      return std::min(Max, std::max(Min, bucketUpperBound(B)));
  }
  return Max;
}

void HistSummary::merge(const HistSummary &O) {
  if (!O.Count)
    return;
  Min = Count ? std::min(Min, O.Min) : O.Min;
  Max = Count ? std::max(Max, O.Max) : O.Max;
  Count += O.Count;
  Sum += O.Sum;
  for (unsigned B = 0; B < NumBuckets; ++B)
    Buckets[B] += O.Buckets[B];
  P50 = percentileFromBuckets(0.50);
  P90 = percentileFromBuckets(0.90);
  P99 = percentileFromBuckets(0.99);
}

const int64_t *MetricsSummary::counter(std::string_view Name) const {
  for (const auto &[N, V] : Counters)
    if (N == Name)
      return &V;
  return nullptr;
}

const HistSummary *MetricsSummary::hist(std::string_view Name) const {
  for (const auto &[N, H] : Hists)
    if (N == Name)
      return &H;
  return nullptr;
}

// -- TraceBuffer -------------------------------------------------------------

bool TraceBuffer::eventsEnabled() const { return T.Cfg.CollectEvents; }

bool TraceBuffer::admitEvent() {
  if (!eventsEnabled())
    return false;
  if (T.Cfg.MaxEvents && Events.size() >= T.Cfg.MaxEvents) {
    ++Dropped;
    return false;
  }
  return true;
}

void TraceBuffer::begin(const char *Name, std::string Detail) {
  if (!admitEvent())
    return;
  Events.push_back({EventKind::SpanBegin, Worker, Name, std::move(Detail), 0,
                    T.microsSinceEpoch()});
}

void TraceBuffer::end(const char *Name) {
  if (!admitEvent())
    return;
  Events.push_back(
      {EventKind::SpanEnd, Worker, Name, {}, 0, T.microsSinceEpoch()});
}

void TraceBuffer::counter(const char *Name, int64_t Delta) {
  int64_t Total = (Counters[Name] += Delta);
  if (!admitEvent())
    return;
  Events.push_back(
      {EventKind::Counter, Worker, Name, {}, Total, T.microsSinceEpoch()});
}

void TraceBuffer::sample(const char *Name, double Value) {
  Hists[Name].push_back(Value);
}

void TraceBuffer::instant(const char *Name, std::string Detail,
                          int64_t Value) {
  if (!admitEvent())
    return;
  Events.push_back({EventKind::Instant, Worker, Name, std::move(Detail),
                    Value, T.microsSinceEpoch()});
}

bool TraceBuffer::logEnabled(LogLevel L) const {
  return static_cast<int>(L) <= static_cast<int>(T.Cfg.Level) &&
         L != LogLevel::Quiet;
}

void TraceBuffer::logf(LogLevel L, const char *Fmt, ...) {
  if (!logEnabled(L))
    return;
  char Buf[4096];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  T.writeLogLine(L, Worker, Buf);
}

// -- Tracer ------------------------------------------------------------------

Tracer::Tracer(TracerConfig Cfg)
    : Cfg(Cfg), Epoch(Cfg.EpochAt ? *Cfg.EpochAt
                                  : std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

TraceBuffer *Tracer::worker(unsigned Rank) {
  std::lock_guard<std::mutex> L(Mu);
  std::unique_ptr<TraceBuffer> &B = Buffers[Rank];
  if (!B)
    B.reset(new TraceBuffer(*this, Rank));
  return B.get();
}

double Tracer::microsSinceEpoch() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void Tracer::writeLogLine(LogLevel L, unsigned Worker, const char *Text) {
  std::lock_guard<std::mutex> Lk(Mu);
  FILE *Out = Cfg.LogStream ? Cfg.LogStream : stderr;
  std::fprintf(Out, "[%c%s%s w%u] %s\n", std::toupper(logLevelName(L)[0]),
               Cfg.LogPrefix.empty() ? "" : " ", Cfg.LogPrefix.c_str(), Worker,
               Text);
  std::fflush(Out);
}

uint64_t Tracer::droppedEvents() const {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t N = 0;
  for (const auto &[Rank, B] : Buffers)
    N += B->Dropped;
  return N;
}

unsigned Tracer::workerCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return static_cast<unsigned>(Buffers.size());
}

std::vector<Event> Tracer::mergedEvents() const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<Event> Out;
  for (const auto &[Rank, B] : Buffers) // std::map: ascending rank order.
    Out.insert(Out.end(), B->Events.begin(), B->Events.end());
  return Out;
}

namespace {

HistSummary summarize(std::vector<double> Samples) {
  HistSummary S;
  S.Count = Samples.size();
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  S.Min = Samples.front();
  S.Max = Samples.back();
  for (double V : Samples) {
    S.Sum += V;
    ++S.Buckets[HistSummary::bucketFor(V)];
  }
  // Nearest-rank: the sample at 1-based rank ceil(Q * n). Exact here (the
  // samples are at hand); HistSummary::merge() approximates the same
  // definition from the buckets.
  auto Pct = [&](double Q) {
    size_t R = static_cast<size_t>(
        std::ceil(Q * static_cast<double>(Samples.size())));
    if (R == 0)
      R = 1;
    return Samples[R - 1];
  };
  S.P50 = Pct(0.50);
  S.P90 = Pct(0.90);
  S.P99 = Pct(0.99);
  return S;
}

} // namespace

MetricsSummary Tracer::metrics() const {
  std::lock_guard<std::mutex> L(Mu);
  std::map<std::string, int64_t> Counters;
  std::map<std::string, std::vector<double>> Hists;
  for (const auto &[Rank, B] : Buffers) {
    for (const auto &[N, V] : B->Counters)
      Counters[N] += V;
    for (const auto &[N, Samples] : B->Hists) {
      std::vector<double> &Dst = Hists[N];
      Dst.insert(Dst.end(), Samples.begin(), Samples.end());
    }
  }
  MetricsSummary Out;
  for (auto &[N, V] : Counters)
    Out.Counters.emplace_back(N, V);
  for (auto &[N, Samples] : Hists)
    Out.Hists.emplace_back(N, summarize(std::move(Samples)));
  return Out;
}
