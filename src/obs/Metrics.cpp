//===- obs/Metrics.cpp - Process-wide metrics registry for serving ------------===//
//
// Part of sharpie. See Metrics.h.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace sharpie;
using namespace sharpie::obs;

const char *sharpie::obs::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Verified:
    return "verified";
  case Outcome::NotVerified:
    return "not_verified";
  case Outcome::Inconclusive:
    return "inconclusive";
  case Outcome::Error:
    return "error";
  }
  return "?";
}

const char *sharpie::obs::cacheTierName(CacheTier T) {
  switch (T) {
  case CacheTier::T1Hit:
    return "t1_hit";
  case CacheTier::T2Warm:
    return "t2_warm";
  case CacheTier::Cold:
    return "cold";
  }
  return "?";
}

void MetricsRegistry::record(Outcome O, CacheTier T, const MetricsSummary &S,
                             double Seconds) {
  std::lock_guard<std::mutex> L(Mu);
  unsigned OI = static_cast<unsigned>(O), TI = static_cast<unsigned>(T);
  ++Requests[OI][TI];
  RequestSeconds[OI][TI] += Seconds;
  for (const auto &[N, V] : S.Counters)
    Counters[N] += V;
  for (const auto &[N, H] : S.Hists)
    Hists[N].merge(H);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  Snapshot Out;
  for (unsigned O = 0; O < NumOutcomes; ++O)
    for (unsigned T = 0; T < NumCacheTiers; ++T) {
      Out.Requests[O][T] = Requests[O][T];
      Out.RequestSeconds[O][T] = RequestSeconds[O][T];
    }
  for (const auto &[N, V] : Counters)
    Out.Counters.emplace_back(N, V);
  for (const auto &[N, H] : Hists)
    Out.Hists.emplace_back(N, H);
  return Out;
}

void MetricsRegistry::bump(std::string_view Name, int64_t V) {
  std::lock_guard<std::mutex> L(Mu);
  Counters[std::string(Name)] += V;
}

int64_t MetricsRegistry::counterSum(std::string_view Name) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Counters.find(std::string(Name));
  return It == Counters.end() ? 0 : It->second;
}

uint64_t MetricsRegistry::recorded() const {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t N = 0;
  for (unsigned O = 0; O < NumOutcomes; ++O)
    for (unsigned T = 0; T < NumCacheTiers; ++T)
      N += Requests[O][T];
  return N;
}

std::string sharpie::obs::promSanitizeName(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    bool Ok = std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
              C == ':';
    Out += Ok ? C : '_';
  }
  if (!Out.empty() && std::isdigit(static_cast<unsigned char>(Out[0])))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string sharpie::obs::promEscapeLabel(std::string_view Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

namespace {

__attribute__((format(printf, 2, 3))) void appendf(std::string &Out,
                                                   const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

/// Formats a double the Prometheus way: integral values without a
/// decimal point, everything else with enough digits to round-trip.
std::string promNumber(double V) {
  char Buf[64];
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      V > -1e15 && V < 1e15) {
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  }
  return Buf;
}

} // namespace

std::string sharpie::obs::renderProm(const MetricsRegistry::Snapshot &S,
                                     const std::vector<PromGauge> &Gauges) {
  std::string Out;

  Out += "# HELP sharpie_requests_total Completed verify requests by outcome"
         " and cache tier.\n";
  Out += "# TYPE sharpie_requests_total counter\n";
  for (unsigned O = 0; O < NumOutcomes; ++O)
    for (unsigned T = 0; T < NumCacheTiers; ++T)
      appendf(Out,
              "sharpie_requests_total{outcome=\"%s\",cache_tier=\"%s\"}"
              " %llu\n",
              outcomeName(static_cast<Outcome>(O)),
              cacheTierName(static_cast<CacheTier>(T)),
              static_cast<unsigned long long>(S.Requests[O][T]));

  Out += "# HELP sharpie_request_seconds_total Server wall seconds spent on"
         " requests by outcome and cache tier.\n";
  Out += "# TYPE sharpie_request_seconds_total counter\n";
  for (unsigned O = 0; O < NumOutcomes; ++O)
    for (unsigned T = 0; T < NumCacheTiers; ++T)
      appendf(Out,
              "sharpie_request_seconds_total{outcome=\"%s\","
              "cache_tier=\"%s\"} %s\n",
              outcomeName(static_cast<Outcome>(O)),
              cacheTierName(static_cast<CacheTier>(T)),
              promNumber(S.RequestSeconds[O][T]).c_str());

  for (const auto &[Name, V] : S.Counters) {
    std::string N = "sharpie_ctr_" + promSanitizeName(Name) + "_total";
    appendf(Out, "# HELP %s Cumulative per-request counter %s.\n", N.c_str(),
            promSanitizeName(Name).c_str());
    appendf(Out, "# TYPE %s counter\n", N.c_str());
    appendf(Out, "%s %lld\n", N.c_str(), static_cast<long long>(V));
  }

  for (const auto &[Name, H] : S.Hists) {
    std::string N = "sharpie_hist_" + promSanitizeName(Name);
    appendf(Out, "# HELP %s Merged per-request histogram %s.\n", N.c_str(),
            promSanitizeName(Name).c_str());
    appendf(Out, "# TYPE %s histogram\n", N.c_str());
    // Cumulative le-buckets; only boundaries where the count advances are
    // emitted (plus +Inf), which keeps the exposition compact while
    // remaining a valid Prometheus histogram.
    uint64_t Cum = 0;
    for (unsigned B = 0; B < HistSummary::NumBuckets; ++B) {
      if (!H.Buckets[B])
        continue;
      Cum += H.Buckets[B];
      appendf(Out, "%s_bucket{le=\"%s\"} %llu\n", N.c_str(),
              promNumber(HistSummary::bucketUpperBound(B)).c_str(),
              static_cast<unsigned long long>(Cum));
    }
    appendf(Out, "%s_bucket{le=\"+Inf\"} %llu\n", N.c_str(),
            static_cast<unsigned long long>(H.Count));
    appendf(Out, "%s_sum %s\n", N.c_str(), promNumber(H.Sum).c_str());
    appendf(Out, "%s_count %llu\n", N.c_str(),
            static_cast<unsigned long long>(H.Count));
  }

  for (const PromGauge &G : Gauges) {
    std::string N = "sharpie_" + promSanitizeName(G.Name);
    appendf(Out, "# HELP %s %s\n", N.c_str(), G.Help.c_str());
    appendf(Out, "# TYPE %s gauge\n", N.c_str());
    Out += N;
    if (!G.Labels.empty()) {
      Out += "{";
      bool First = true;
      for (const auto &[K, V] : G.Labels) {
        if (!First)
          Out += ",";
        First = false;
        Out += promSanitizeName(K) + "=\"" + promEscapeLabel(V) + "\"";
      }
      Out += "}";
    }
    Out += " " + promNumber(G.Value) + "\n";
  }
  return Out;
}
