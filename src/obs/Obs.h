//===- obs/Obs.h - Structured tracing & metrics for #Pi ---------*- C++ -*-===//
//
// Part of sharpie. The pipeline's one observability channel: a Tracer owns
// one TraceBuffer per search worker; code holding a buffer emits
//
//   * RAII spans (obs::Span) nesting tuple -> Houdini iteration -> SMT
//     check, exported as Chrome trace-event / Perfetto tracks;
//   * counters (reduction-cache hits, axiom instantiations per CARD rule,
//     atoms dropped per Houdini iteration), merged across workers;
//   * histograms (SMT-check latency per phase, reduction latency),
//     summarized into count/min/max/percentiles;
//   * a leveled human log (quiet < info < debug < trace) replacing the old
//     scattered `Opts.Verbose` fprintf calls.
//
// Determinism rules (mirroring the parallel-search design, DESIGN.md):
// every event carries the *rank* of the worker that produced it, buffers
// are strictly thread-local (no lock on the hot path), and the merged
// stream orders buffers by rank, events within a buffer by emission order.
// Timestamps are recorded for the trace exporters but are excluded from
// the deterministic skeleton the golden tests pin (obs/Export.h).
//
// Zero-overhead path: all emission goes through a nullable TraceBuffer
// pointer. With no tracer configured the pointer is null and every span,
// counter, histogram and log macro reduces to one branch -- no allocation,
// no lock, no clock read (verified by bench/bench_obs.cpp).
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_OBS_OBS_H
#define SHARPIE_OBS_OBS_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sharpie {
namespace obs {

/// Human-log verbosity. Events and metrics are independent of the level;
/// the level only gates the textual log sink.
enum class LogLevel : int { Quiet = 0, Info = 1, Debug = 2, Trace = 3 };

const char *logLevelName(LogLevel L);
/// Parses "quiet" | "info" | "debug" | "trace" (case-sensitive).
std::optional<LogLevel> parseLogLevel(std::string_view Name);

enum class EventKind : uint8_t { SpanBegin, SpanEnd, Counter, Instant };

/// One buffered trace event. Name is a static string literal (span/counter
/// identity); Detail carries deterministic, human-readable arguments.
/// TimeUs is wall time relative to the tracer epoch -- nondeterministic,
/// used only by the trace exporters.
struct Event {
  EventKind Kind;
  uint32_t Worker;
  const char *Name;
  std::string Detail;
  int64_t Value = 0;
  double TimeUs = 0;
};

/// Summary of a histogram, produced at merge time. Alongside the exact
/// five-number summary it carries fixed log2-spaced bucket counts, which
/// makes two summaries *mergeable* (counts, sum, min/max and buckets all
/// add) -- the property the process-wide MetricsRegistry needs to
/// aggregate per-request summaries without retaining raw samples.
///
/// Percentiles are nearest-rank: P(q) is the smallest sample whose rank
/// r (1-based, over the sorted samples) satisfies r >= ceil(q * count).
/// For 1 sample every percentile is that sample; for 2 samples P50 is
/// the lower and P90/P99 the upper. After a merge() the percentiles are
/// recomputed from the buckets and become upper-bound approximations
/// (clamped to [Min, Max]); summarize()'s are exact.
struct HistSummary {
  /// Bucket b counts samples in (upperBound(b-1), upperBound(b)], with
  /// upperBound(b) = 2^(b + MinExp). Everything <= 2^MinExp lands in
  /// bucket 0, everything > 2^(NumBuckets-1+MinExp) in the last bucket.
  /// The range 2^-10 (~1us in ms units) .. 2^29 (~5e8) covers every
  /// latency and count histogram the pipeline emits.
  static constexpr unsigned NumBuckets = 40;
  static constexpr int MinExp = -10;

  uint64_t Count = 0;
  double Min = 0, Max = 0, Sum = 0;
  double P50 = 0, P90 = 0, P99 = 0;
  uint64_t Buckets[NumBuckets] = {};

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }

  /// The bucket index a sample value falls into.
  static unsigned bucketFor(double V);
  /// The inclusive upper bound of bucket \p B (2^(B + MinExp)).
  static double bucketUpperBound(unsigned B);

  /// Folds \p O into this summary (counts/sum/min/max/buckets add) and
  /// recomputes P50/P90/P99 from the merged buckets.
  void merge(const HistSummary &O);
  /// Nearest-rank percentile over the bucket counts: the upper bound of
  /// the bucket holding rank ceil(Q * Count), clamped to [Min, Max].
  double percentileFromBuckets(double Q) const;
};

/// Counters summed and histograms merged over all workers, sorted by name
/// so the summary itself is deterministic.
struct MetricsSummary {
  std::vector<std::pair<std::string, int64_t>> Counters;
  std::vector<std::pair<std::string, HistSummary>> Hists;

  const int64_t *counter(std::string_view Name) const;
  const HistSummary *hist(std::string_view Name) const;
};

class Tracer;

/// Per-worker event/metric buffer. Strictly single-owner: exactly one
/// thread (the worker of the given rank) may emit into it; the tracer
/// merges buffers only after the owning threads joined.
class TraceBuffer {
public:
  unsigned rank() const { return Worker; }

  /// True when span/counter/instant events are buffered (a trace or event
  /// sink is attached). Metrics (counters/histograms) are always recorded.
  bool eventsEnabled() const;

  void begin(const char *Name, std::string Detail = {});
  void end(const char *Name);
  /// Adds \p Delta to counter \p Name; the buffered event carries the
  /// post-update running total (what Chrome's counter track displays).
  void counter(const char *Name, int64_t Delta);
  /// Records a histogram sample (e.g. an SMT check latency in ms).
  /// Samples never enter the event stream: their values are wall-clock
  /// dependent and would break the deterministic skeleton.
  void sample(const char *Name, double Value);
  void instant(const char *Name, std::string Detail = {}, int64_t Value = 0);

  /// True when a message at \p L would be written by the log sink.
  bool logEnabled(LogLevel L) const;
  /// printf-style leveled log line, written immediately (mutex-guarded in
  /// the tracer) and prefixed with the level and worker rank.
  void logf(LogLevel L, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));

private:
  friend class Tracer;
  TraceBuffer(Tracer &T, unsigned Worker) : T(T), Worker(Worker) {}

  /// True when another event may be buffered (events enabled and the
  /// MaxEvents cap, if any, not yet reached); counts the drop otherwise.
  bool admitEvent();

  Tracer &T;
  unsigned Worker;
  std::vector<Event> Events;
  uint64_t Dropped = 0; ///< Events discarded by the MaxEvents cap.
  std::map<std::string, int64_t> Counters;
  std::map<std::string, std::vector<double>> Hists;
};

struct TracerConfig {
  LogLevel Level = LogLevel::Quiet; ///< Human-log threshold.
  bool CollectEvents = false;       ///< Buffer events for trace export.
  FILE *LogStream = nullptr;        ///< Log sink; nullptr means stderr.
  /// Tag inserted into every log line after the level letter. The daemon
  /// sets it to the request id ("r17") so interleaved per-request tracer
  /// output stays attributable; empty adds nothing.
  std::string LogPrefix;
  /// When set, event timestamps are relative to this instant instead of
  /// the tracer's construction time. The daemon pins it to the request
  /// arrival, so flight-recorder dumps from different requests all start
  /// at t=0 and phase offsets are comparable across requests.
  std::optional<std::chrono::steady_clock::time_point> EpochAt;
  /// Per-buffer cap on buffered events; 0 = unbounded. Once a buffer is
  /// full further events are counted (droppedEvents()) but not stored --
  /// the flight recorder's fixed-memory guarantee. A truncated stream
  /// can end with unbalanced span begins; the exporters tolerate that.
  uint32_t MaxEvents = 0;
};

/// Owns the per-worker buffers and the log sink. Thread-safe operations:
/// worker() registration and log-line writing. Merging (mergedEvents,
/// metrics) must only run after every emitting thread has joined.
class Tracer {
public:
  explicit Tracer(TracerConfig Cfg = {});
  ~Tracer();

  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Returns the buffer for worker \p Rank, creating it on first use.
  /// The pointer is stable for the tracer's lifetime.
  TraceBuffer *worker(unsigned Rank);

  const TracerConfig &config() const { return Cfg; }

  /// All events, buffers ordered by worker rank, events within a buffer in
  /// emission order -- the deterministic merge.
  std::vector<Event> mergedEvents() const;

  /// Counters summed and histograms merged over all workers.
  MetricsSummary metrics() const;

  /// Events discarded because a buffer hit Cfg.MaxEvents, summed over
  /// all workers.
  uint64_t droppedEvents() const;

  /// Number of distinct workers that registered a buffer -- the peak
  /// worker count of the traced run.
  unsigned workerCount() const;

  /// Microseconds since the trace epoch (construction time, or
  /// Cfg.EpochAt when set).
  double microsSinceEpoch() const;

private:
  friend class TraceBuffer;
  void writeLogLine(LogLevel L, unsigned Worker, const char *Text);

  TracerConfig Cfg;
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu; ///< Guards Buffers registration and log writes.
  std::map<unsigned, std::unique_ptr<TraceBuffer>> Buffers;
};

/// RAII span. Null buffer => complete no-op (single branch per endpoint).
/// The lazy-detail constructor only renders the detail string when events
/// are actually buffered, keeping the disabled path allocation-free.
class Span {
public:
  Span(TraceBuffer *B, const char *Name) : B(B), Name(Name) {
    if (B)
      B->begin(Name);
  }
  template <typename DetailFn>
  Span(TraceBuffer *B, const char *Name, DetailFn &&Detail) : B(B), Name(Name) {
    if (B)
      B->begin(Name, B->eventsEnabled() ? Detail() : std::string());
  }
  ~Span() {
    if (B)
      B->end(Name);
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  TraceBuffer *B;
  const char *Name;
};

} // namespace obs
} // namespace sharpie

/// Leveled log with zero-cost gating: the format arguments are not
/// evaluated unless the buffer exists and the level is enabled, so
/// expensive renderings (logic::toString of a whole clause) stay behind
/// the check.
#define SHARPIE_LOGF(TB, LVL, ...)                                             \
  do {                                                                         \
    ::sharpie::obs::TraceBuffer *ObsTB_ = (TB);                                \
    if (ObsTB_ && ObsTB_->logEnabled(LVL))                                     \
      ObsTB_->logf(LVL, __VA_ARGS__);                                          \
  } while (0)

#endif // SHARPIE_OBS_OBS_H
