//===- logic/Eval.h - Finite-model evaluation -------------------*- C++ -*-===//
//
// Part of sharpie. Evaluates terms of the combined theory in an explicit
// finite model: the thread domain Omega is {0, ..., DomainSize-1}, arrays
// are explicit value vectors, and cardinalities are counted exactly. This
// is the reference semantics used by property tests (the cardinality axioms
// of paper Sec. 5 must be sound in every finite model, Theorem 1) and by
// the explicit-state checker.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_LOGIC_EVAL_H
#define SHARPIE_LOGIC_EVAL_H

#include "logic/Term.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace sharpie {
namespace logic {

/// An explicit first-order structure for the combined theory. Tid-sorted
/// values range over {0, ..., DomainSize-1}; Int-sorted quantifiers are
/// evaluated over [-IntBound, IntBound] (a test-only approximation, flagged
/// by Evaluator::sawIntQuantifier).
struct FiniteModel {
  int64_t DomainSize = 2;
  int64_t IntBound = 4;
  std::map<Term, int64_t> Scalars;              ///< Int/Tid variable values.
  std::map<Term, std::vector<int64_t>> Arrays;  ///< Array variable contents.
};

/// Evaluates closed terms in a FiniteModel. Unbound variables evaluate to 0
/// (and are recorded in missing()). The evaluator is cheap to construct;
/// create one per (model, query) batch.
class Evaluator {
public:
  explicit Evaluator(const FiniteModel &Model) : Model(Model) {}

  /// Evaluates an Int- or Tid-sorted term.
  int64_t evalInt(Term T);

  /// Evaluates a formula.
  bool evalBool(Term T);

  /// Evaluates an Array-sorted term to its explicit contents.
  std::vector<int64_t> evalArray(Term T);

  /// True if evaluation met an Int-sorted quantifier (whose enumeration over
  /// [-IntBound, IntBound] is only an approximation of Int semantics).
  bool sawIntQuantifier() const { return SawIntQuantifier; }

  /// Variables that had no interpretation and defaulted to 0 / all-0.
  const std::vector<Term> &missing() const { return Missing; }

private:
  int64_t lookupScalar(Term Var);
  std::vector<int64_t> lookupArray(Term Var);
  bool evalQuant(Term T, bool IsForall);

  const FiniteModel &Model;
  std::map<Term, int64_t> Env;                 ///< Bound-variable values.
  bool SawIntQuantifier = false;
  std::vector<Term> Missing;
};

} // namespace logic
} // namespace sharpie

#endif // SHARPIE_LOGIC_EVAL_H
