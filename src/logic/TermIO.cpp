//===- logic/TermIO.cpp - Textual term serialization --------------------------===//
//
// Part of sharpie. See TermIO.h.
//
//===----------------------------------------------------------------------===//

#include "logic/TermIO.h"

#include "logic/TermOps.h"

#include <cctype>
#include <cstdlib>

using namespace sharpie;
using namespace sharpie::logic;

namespace {

char sortCode(Sort S) {
  switch (S) {
  case Sort::Bool:
    return 'b';
  case Sort::Int:
    return 'i';
  case Sort::Tid:
    return 't';
  case Sort::Array:
    return 'a';
  }
  return '?';
}

bool sortFromCode(std::string_view Code, Sort &S) {
  if (Code.size() != 1)
    return false;
  switch (Code[0]) {
  case 'b':
    S = Sort::Bool;
    return true;
  case 'i':
    S = Sort::Int;
    return true;
  case 't':
    S = Sort::Tid;
    return true;
  case 'a':
    S = Sort::Array;
    return true;
  }
  return false;
}

void quoteInto(std::string &Out, const std::string &Name) {
  Out += '"';
  for (char C : Name) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

void writeTerm(std::string &Out, Term T) {
  if (T.isNull()) {
    Out += "()";
    return;
  }
  switch (T.kind()) {
  case Kind::Var:
    Out += "(v ";
    Out += sortCode(T.sort());
    Out += ' ';
    quoteInto(Out, T->name());
    Out += ')';
    return;
  case Kind::IntConst:
    Out += std::to_string(T->value());
    return;
  case Kind::BoolConst:
    Out += T->value() ? "#t" : "#f";
    return;
  default:
    break;
  }
  const char *Op = nullptr;
  switch (T.kind()) {
  case Kind::Add:
    Op = "+";
    break;
  case Kind::Sub:
    Op = "-";
    break;
  case Kind::Neg:
    Op = "~";
    break;
  case Kind::Mul:
    Op = "*";
    break;
  case Kind::Ite:
    Op = "ite";
    break;
  case Kind::Read:
    Op = "rd";
    break;
  case Kind::Store:
    Op = "st";
    break;
  case Kind::Eq:
    Op = "=";
    break;
  case Kind::Le:
    Op = "<=";
    break;
  case Kind::Lt:
    Op = "<";
    break;
  case Kind::And:
    Op = "and";
    break;
  case Kind::Or:
    Op = "or";
    break;
  case Kind::Not:
    Op = "not";
    break;
  case Kind::Implies:
    Op = "=>";
    break;
  case Kind::Forall:
    Op = "forall";
    break;
  case Kind::Exists:
    Op = "exists";
    break;
  case Kind::Card:
    Op = "card";
    break;
  default:
    Op = "?";
    break;
  }
  Out += '(';
  Out += Op;
  if (T.kind() == Kind::Forall || T.kind() == Kind::Exists) {
    Out += " (";
    bool First = true;
    for (Term B : T->binders()) {
      if (!First)
        Out += ' ';
      First = false;
      writeTerm(Out, B);
    }
    Out += ')';
    Out += ' ';
    writeTerm(Out, T->body());
  } else if (T.kind() == Kind::Card) {
    Out += ' ';
    writeTerm(Out, T->binders()[0]);
    Out += ' ';
    writeTerm(Out, T->body());
  } else {
    for (Term K : T->kids()) {
      Out += ' ';
      writeTerm(Out, K);
    }
  }
  Out += ')';
}

// -- Parser -------------------------------------------------------------------

/// Recursive-descent reader over the s-expression text. All sort checking
/// happens here, before any TermManager builder runs: the builders assert
/// their preconditions, and asserts are compiled out of release builds,
/// so a corrupt cache file must be rejected at this layer.
struct Reader {
  TermManager &M;
  std::string_view In;
  size_t Pos = 0;
  std::string Err;
  /// Bounded so crafted input cannot blow the stack.
  static constexpr unsigned MaxDepth = 2000;

  explicit Reader(TermManager &M, std::string_view In) : M(M), In(In) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < In.size() && std::isspace(static_cast<unsigned char>(In[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipWs();
    return Pos >= In.size();
  }

  bool expect(char C) {
    skipWs();
    if (Pos >= In.size() || In[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool peekIs(char C) {
    skipWs();
    return Pos < In.size() && In[Pos] == C;
  }

  /// Reads a bare symbol token (operator name, sort code, #t/#f, number).
  std::string symbol() {
    skipWs();
    size_t Start = Pos;
    while (Pos < In.size()) {
      char C = In[Pos];
      if (C == '(' || C == ')' || C == '"' ||
          std::isspace(static_cast<unsigned char>(C)))
        break;
      ++Pos;
    }
    return std::string(In.substr(Start, Pos - Start));
  }

  bool quotedString(std::string &Out) {
    skipWs();
    if (Pos >= In.size() || In[Pos] != '"')
      return fail("expected quoted name");
    ++Pos;
    Out.clear();
    while (Pos < In.size() && In[Pos] != '"') {
      char C = In[Pos++];
      if (C == '\\') {
        if (Pos >= In.size())
          return fail("truncated escape");
        C = In[Pos++];
      }
      Out += C;
    }
    if (Pos >= In.size())
      return fail("unterminated quoted name");
    ++Pos; // Closing quote.
    return true;
  }

  /// Parses a variable form "(v <sort> \"name\")", validating the sort
  /// against the destination manager's live binding for that name.
  Term parseVar() {
    // Caller consumed "(v".
    std::string Code = symbol();
    Sort S;
    if (!sortFromCode(Code, S)) {
      fail("bad sort code '" + Code + "'");
      return Term();
    }
    std::string Name;
    if (!quotedString(Name))
      return Term();
    if (Name.empty()) {
      fail("empty variable name");
      return Term();
    }
    if (!expect(')'))
      return Term();
    if (Term Live = M.findVar(Name); Live && Live.sort() != S) {
      fail("variable '" + Name + "' re-declared at another sort");
      return Term();
    }
    return M.mkVar(Name, S);
  }

  Term parse(unsigned Depth) {
    if (Depth > MaxDepth) {
      fail("nesting too deep");
      return Term();
    }
    skipWs();
    if (Pos >= In.size()) {
      fail("unexpected end of input");
      return Term();
    }
    char C = In[Pos];
    if (C != '(') {
      std::string Tok = symbol();
      if (Tok == "#t")
        return M.mkBool(true);
      if (Tok == "#f")
        return M.mkBool(false);
      if (!Tok.empty() &&
          (Tok[0] == '-' ? Tok.size() > 1 : true) &&
          Tok.find_first_not_of("-0123456789") == std::string::npos) {
        errno = 0;
        char *End = nullptr;
        long long V = std::strtoll(Tok.c_str(), &End, 10);
        if (errno != 0 || !End || *End != '\0') {
          fail("bad integer literal '" + Tok + "'");
          return Term();
        }
        return M.mkInt(V);
      }
      fail("unexpected token '" + Tok + "'");
      return Term();
    }
    ++Pos; // '('
    if (peekIs(')')) { // "()" is the null term.
      ++Pos;
      return Term();
    }
    std::string Op = symbol();
    if (Op == "v")
      return parseVar();
    if (Op == "forall" || Op == "exists")
      return parseBinder(Op == "forall", Depth);
    if (Op == "card")
      return parseCard(Depth);

    std::vector<Term> Kids;
    while (!peekIs(')')) {
      if (Pos >= In.size() && atEnd()) {
        fail("unterminated list");
        return Term();
      }
      Term K = parse(Depth + 1);
      if (!Err.empty())
        return Term();
      if (K.isNull()) {
        fail("null operand");
        return Term();
      }
      Kids.push_back(K);
    }
    ++Pos; // ')'
    return apply(Op, Kids);
  }

  bool allSort(const std::vector<Term> &Ts, Sort S) {
    for (Term T : Ts)
      if (T.sort() != S)
        return false;
    return true;
  }

  Term apply(const std::string &Op, std::vector<Term> Kids) {
    auto Arity = [&](size_t N) {
      if (Kids.size() == N)
        return true;
      fail("operator '" + Op + "' expects " + std::to_string(N) +
           " operands, got " + std::to_string(Kids.size()));
      return false;
    };
    auto IntSorted = [&](size_t From = 0) {
      for (size_t I = From; I < Kids.size(); ++I)
        if (Kids[I].sort() != Sort::Int) {
          fail("operator '" + Op + "' expects Int operands");
          return false;
        }
      return true;
    };
    auto BoolSorted = [&]() {
      if (allSort(Kids, Sort::Bool))
        return true;
      fail("operator '" + Op + "' expects Bool operands");
      return false;
    };
    if (Op == "+")
      return !Kids.empty() && IntSorted() ? M.mkAdd(std::move(Kids)) : Term();
    if (Op == "-")
      return Arity(2) && IntSorted() ? M.mkSub(Kids[0], Kids[1]) : Term();
    if (Op == "~")
      return Arity(1) && IntSorted() ? M.mkNeg(Kids[0]) : Term();
    if (Op == "*") {
      if (!Arity(2) || !IntSorted())
        return Term();
      // mkMul requires at least one constant side.
      if (Kids[0].kind() != Kind::IntConst && Kids[1].kind() != Kind::IntConst) {
        fail("nonlinear multiplication");
        return Term();
      }
      return M.mkMul(Kids[0], Kids[1]);
    }
    if (Op == "ite") {
      if (!Arity(3))
        return Term();
      if (Kids[0].sort() != Sort::Bool || Kids[1].sort() != Kids[2].sort()) {
        fail("ite sorts");
        return Term();
      }
      return M.mkIte(Kids[0], Kids[1], Kids[2]);
    }
    if (Op == "rd") {
      if (!Arity(2))
        return Term();
      if (Kids[0].sort() != Sort::Array || Kids[1].sort() != Sort::Tid) {
        fail("read sorts");
        return Term();
      }
      return M.mkRead(Kids[0], Kids[1]);
    }
    if (Op == "st") {
      if (!Arity(3))
        return Term();
      if (Kids[0].sort() != Sort::Array || Kids[1].sort() != Sort::Tid ||
          Kids[2].sort() != Sort::Int) {
        fail("store sorts");
        return Term();
      }
      return M.mkStore(Kids[0], Kids[1], Kids[2]);
    }
    if (Op == "=") {
      if (!Arity(2))
        return Term();
      if (Kids[0].sort() != Kids[1].sort()) {
        fail("eq sorts differ");
        return Term();
      }
      return M.mkEq(Kids[0], Kids[1]);
    }
    if (Op == "<=")
      return Arity(2) && IntSorted() ? M.mkLe(Kids[0], Kids[1]) : Term();
    if (Op == "<")
      return Arity(2) && IntSorted() ? M.mkLt(Kids[0], Kids[1]) : Term();
    if (Op == "and")
      return BoolSorted() ? M.mkAnd(std::move(Kids)) : Term();
    if (Op == "or")
      return BoolSorted() ? M.mkOr(std::move(Kids)) : Term();
    if (Op == "not")
      return Arity(1) && BoolSorted() ? M.mkNot(Kids[0]) : Term();
    if (Op == "=>")
      return Arity(2) && BoolSorted() ? M.mkImplies(Kids[0], Kids[1]) : Term();
    fail("unknown operator '" + Op + "'");
    return Term();
  }

  Term parseBinder(bool IsForall, unsigned Depth) {
    if (!expect('('))
      return Term();
    std::vector<Term> Vars;
    while (!peekIs(')')) {
      if (atEnd()) {
        fail("unterminated binder list");
        return Term();
      }
      Term V = parse(Depth + 1);
      if (!Err.empty())
        return Term();
      if (V.isNull() || V.kind() != Kind::Var ||
          (V.sort() != Sort::Tid && V.sort() != Sort::Int)) {
        fail("binder must be a Tid/Int variable");
        return Term();
      }
      Vars.push_back(V);
    }
    ++Pos; // ')'
    if (Vars.empty()) {
      fail("empty binder list");
      return Term();
    }
    Term Body = parse(Depth + 1);
    if (!Err.empty())
      return Term();
    if (Body.isNull() || Body.sort() != Sort::Bool) {
      fail("binder body must be Bool");
      return Term();
    }
    if (!expect(')'))
      return Term();
    return IsForall ? M.mkForall(std::move(Vars), Body)
                    : M.mkExists(std::move(Vars), Body);
  }

  Term parseCard(unsigned Depth) {
    Term V = parse(Depth + 1);
    if (!Err.empty())
      return Term();
    if (V.isNull() || V.kind() != Kind::Var || V.sort() != Sort::Tid) {
      fail("card binder must be a Tid variable");
      return Term();
    }
    Term Body = parse(Depth + 1);
    if (!Err.empty())
      return Term();
    if (Body.isNull() || Body.sort() != Sort::Bool ||
        containsKind(Body, Kind::Store)) {
      fail("card body must be a Store-free Bool");
      return Term();
    }
    if (!expect(')'))
      return Term();
    return M.mkCard(V, Body);
  }
};

} // namespace

std::string sharpie::logic::serializeTerm(Term T) {
  std::string Out;
  writeTerm(Out, T);
  return Out;
}

Term sharpie::logic::deserializeTerm(TermManager &M, std::string_view Text,
                                     std::string *Err) {
  Reader R(M, Text);
  if (R.atEnd()) {
    if (Err)
      *Err = "empty input";
    return Term();
  }
  // "()" at top level is the serialized null term.
  if (Text.size() >= 2) {
    Reader Probe(M, Text);
    if (Probe.peekIs('(')) {
      ++Probe.Pos;
      if (Probe.peekIs(')')) {
        ++Probe.Pos;
        if (Probe.atEnd())
          return Term();
      }
    }
  }
  Term T = R.parse(0);
  if (!R.Err.empty() || T.isNull()) {
    if (Err)
      *Err = R.Err.empty() ? "null term" : R.Err;
    return Term();
  }
  if (!R.atEnd()) {
    if (Err)
      *Err = "trailing input after term";
    return Term();
  }
  return T;
}
