//===- logic/Term.h - Hash-consed terms of the combined theory -*- C++ -*-===//
//
// Part of sharpie, a reproduction of "Cardinalities and Universal Quantifiers
// for Verifying Parameterized Systems" (PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Terms and formulas of the combined theory of linear integer arithmetic,
/// arrays, and cardinality constraints (paper Sec. 5). Terms are hash-consed
/// by a TermManager, so structural equality is pointer equality. The theory
/// is two-sorted over data: integers support arithmetic, thread identifiers
/// (sort Tid) support only (dis)equality, and arrays map Tid to Int.
/// Cardinality terms #{t | phi} bind a Tid variable and have sort Int.
///
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_LOGIC_TERM_H
#define SHARPIE_LOGIC_TERM_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace sharpie {
namespace logic {

class TermManager;

/// The sorts of the combined theory.
enum class Sort : uint8_t {
  Bool,  ///< Formulas.
  Int,   ///< Data values; full linear arithmetic.
  Tid,   ///< Thread identifiers; equality and array indexing only.
  Array, ///< Total functions Tid -> Int (process-local state).
};

/// Returns a human-readable name for \p S.
const char *sortName(Sort S);

/// Term constructors. Builders normalize Ge/Gt/Ne/Iff away, so the kinds
/// below are the complete vocabulary seen by traversals.
enum class Kind : uint8_t {
  Var,       ///< Named variable of any sort.
  IntConst,  ///< Integer literal.
  BoolConst, ///< true / false.
  Add,       ///< n-ary integer addition.
  Sub,       ///< Binary integer subtraction.
  Neg,       ///< Unary integer negation.
  Mul,       ///< Binary multiplication (at least one side constant).
  Ite,       ///< If-then-else over Int terms.
  Read,      ///< Array read f(t): kids = {array, index}.
  Store,     ///< Array update f[t <- v]: kids = {array, index, value}.
  Eq,        ///< Equality; both sides of equal sort (incl. Array = Store).
  Le,        ///< Integer <=.
  Lt,        ///< Integer <.
  And,       ///< n-ary conjunction.
  Or,        ///< n-ary disjunction.
  Not,       ///< Negation.
  Implies,   ///< Implication (kept for readable printing).
  Forall,    ///< Universal quantifier; binds one or more variables.
  Exists,    ///< Existential quantifier; binds one or more variables.
  Card,      ///< #{t | phi}: Int-sorted cardinality of a set of threads.
};

/// Returns a human-readable name for \p K.
const char *kindName(Kind K);

class Node;

/// A value-semantics handle to a hash-consed term node. Equality is pointer
/// identity; ordering uses the node's stable creation id, so iteration
/// orders derived from Term keys are deterministic.
class Term {
public:
  Term() = default;
  explicit Term(const Node *N) : Ptr(N) {}

  bool isNull() const { return Ptr == nullptr; }
  explicit operator bool() const { return Ptr != nullptr; }

  const Node *node() const {
    assert(Ptr && "dereferencing null Term");
    return Ptr;
  }
  const Node *operator->() const { return node(); }

  Kind kind() const;
  Sort sort() const;
  uint32_t id() const;

  bool operator==(const Term &O) const { return Ptr == O.Ptr; }
  bool operator!=(const Term &O) const { return Ptr != O.Ptr; }
  bool operator<(const Term &O) const;

private:
  const Node *Ptr = nullptr;
};

/// An immutable, hash-consed term node owned by a TermManager.
class Node {
public:
  Kind kind() const { return K; }
  Sort sort() const { return S; }
  uint32_t id() const { return Id; }

  /// Children. For Read: {array, index}; for Store: {array, index, value};
  /// for binders and Card: {body}.
  const std::vector<Term> &kids() const { return Kids; }
  Term kid(unsigned I) const {
    assert(I < Kids.size() && "kid index out of range");
    return Kids[I];
  }
  unsigned numKids() const { return static_cast<unsigned>(Kids.size()); }

  /// Variable name; only meaningful for Kind::Var.
  const std::string &name() const {
    assert(K == Kind::Var && "name() on non-variable");
    return Name;
  }

  /// Literal value; only meaningful for IntConst (the value) and BoolConst
  /// (0 or 1).
  int64_t value() const {
    assert((K == Kind::IntConst || K == Kind::BoolConst) &&
           "value() on non-literal");
    return Value;
  }

  /// Bound variables; only meaningful for Forall/Exists/Card. For Card the
  /// list has exactly one Tid-sorted entry.
  const std::vector<Term> &binders() const {
    assert((K == Kind::Forall || K == Kind::Exists || K == Kind::Card) &&
           "binders() on non-binder");
    return Binders;
  }

  /// The body of a binder or Card term.
  Term body() const {
    assert((K == Kind::Forall || K == Kind::Exists || K == Kind::Card) &&
           "body() on non-binder");
    return Kids[0];
  }

private:
  friend class TermManager;
  Node() = default;

  Kind K = Kind::Var;
  Sort S = Sort::Bool;
  uint32_t Id = 0;
  std::vector<Term> Kids;
  std::vector<Term> Binders;
  std::string Name;
  int64_t Value = 0;
};

inline Kind Term::kind() const { return node()->kind(); }
inline Sort Term::sort() const { return node()->sort(); }
inline uint32_t Term::id() const { return node()->id(); }
inline bool Term::operator<(const Term &O) const {
  if (Ptr == O.Ptr)
    return false;
  if (!Ptr)
    return true;
  if (!O.Ptr)
    return false;
  return Ptr->id() < O.Ptr->id();
}

/// Creates and uniquifies terms. All terms built by one manager may be mixed
/// freely; terms from different managers must never meet. Builders perform
/// light, local normalization (constant folding, flattening of And/Or/Add,
/// unit laws) so that trivially equal formulas are pointer-equal.
class TermManager {
public:
  TermManager();
  TermManager(const TermManager &) = delete;
  TermManager &operator=(const TermManager &) = delete;
  ~TermManager();

  // -- Leaves ---------------------------------------------------------------

  /// Returns the unique variable with \p Name and \p S. Reuse of a name with
  /// a different sort is a programming error.
  Term mkVar(const std::string &Name, Sort S);

  /// Returns a fresh variable "Prefix!n" guaranteed not to collide with any
  /// variable created so far.
  Term freshVar(const std::string &Prefix, Sort S);

  /// Returns the live variable bound to \p Name, or a null Term. Lets
  /// deserializers (logic/TermIO.h) reject a name/sort conflict with this
  /// manager's existing bindings instead of tripping mkVar's assert.
  Term findVar(const std::string &Name) const {
    auto It = Vars.find(Name);
    return It == Vars.end() ? Term() : It->second;
  }

  Term mkInt(int64_t V);
  Term mkBool(bool V);
  Term mkTrue() { return mkBool(true); }
  Term mkFalse() { return mkBool(false); }

  // -- Arithmetic -----------------------------------------------------------

  Term mkAdd(std::vector<Term> Ts);
  Term mkAdd(Term A, Term B) { return mkAdd(std::vector<Term>{A, B}); }
  Term mkSub(Term A, Term B);
  Term mkNeg(Term A);
  Term mkMul(Term A, Term B);
  Term mkIte(Term C, Term T, Term E);

  // -- Arrays ---------------------------------------------------------------

  Term mkRead(Term Array, Term Index);
  Term mkStore(Term Array, Term Index, Term Value);

  // -- Atoms ----------------------------------------------------------------

  Term mkEq(Term A, Term B);
  Term mkNe(Term A, Term B) { return mkNot(mkEq(A, B)); }
  Term mkLe(Term A, Term B);
  Term mkLt(Term A, Term B);
  Term mkGe(Term A, Term B) { return mkLe(B, A); }
  Term mkGt(Term A, Term B) { return mkLt(B, A); }

  // -- Boolean structure ----------------------------------------------------

  Term mkAnd(std::vector<Term> Ts);
  Term mkAnd(Term A, Term B) { return mkAnd(std::vector<Term>{A, B}); }
  Term mkOr(std::vector<Term> Ts);
  Term mkOr(Term A, Term B) { return mkOr(std::vector<Term>{A, B}); }
  Term mkNot(Term A);
  Term mkImplies(Term A, Term B);
  Term mkIff(Term A, Term B);

  // -- Binders and cardinality ----------------------------------------------

  /// Builds forall Vars. Body. Vars must be Tid- or Int-sorted variables.
  Term mkForall(std::vector<Term> Vars, Term Body);
  Term mkExists(std::vector<Term> Vars, Term Body);

  /// Builds the cardinality term #{BoundVar | Body} of sort Int. BoundVar
  /// must be Tid-sorted; Body must not contain Store (paper Sec. 5).
  Term mkCard(Term BoundVar, Term Body);

  /// Number of terms created so far (diagnostics).
  size_t numTerms() const { return NumTerms; }

private:
  Term intern(Kind K, Sort S, std::vector<Term> Kids,
              std::vector<Term> Binders, std::string Name, int64_t Value);

  struct NodeKey;
  struct NodeKeyHash;
  struct NodeKeyEq;

  std::unordered_map<std::string, Term> Vars;
  // Keyed by structural content; owns nothing (nodes owned by Pool).
  std::unique_ptr<
      std::unordered_map<size_t, std::vector<std::unique_ptr<Node>>>>
      Buckets;
  uint32_t NextId = 0;
  uint64_t FreshCounter = 0;
  size_t NumTerms = 0;
};

/// Hash functor so Term can key unordered containers.
struct TermHash {
  size_t operator()(const Term &T) const {
    return std::hash<const void *>()(T.isNull() ? nullptr : T.node());
  }
};

using TermVec = std::vector<Term>;

} // namespace logic
} // namespace sharpie

#endif // SHARPIE_LOGIC_TERM_H
