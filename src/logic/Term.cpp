//===- logic/Term.cpp - Hash-consed terms ---------------------------------===//
//
// Part of sharpie. See Term.h for the interface description.
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"

#include <algorithm>

using namespace sharpie;
using namespace sharpie::logic;

const char *sharpie::logic::sortName(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "Bool";
  case Sort::Int:
    return "Int";
  case Sort::Tid:
    return "Tid";
  case Sort::Array:
    return "Array";
  }
  return "?";
}

const char *sharpie::logic::kindName(Kind K) {
  switch (K) {
  case Kind::Var:
    return "Var";
  case Kind::IntConst:
    return "IntConst";
  case Kind::BoolConst:
    return "BoolConst";
  case Kind::Add:
    return "Add";
  case Kind::Sub:
    return "Sub";
  case Kind::Neg:
    return "Neg";
  case Kind::Mul:
    return "Mul";
  case Kind::Ite:
    return "Ite";
  case Kind::Read:
    return "Read";
  case Kind::Store:
    return "Store";
  case Kind::Eq:
    return "Eq";
  case Kind::Le:
    return "Le";
  case Kind::Lt:
    return "Lt";
  case Kind::And:
    return "And";
  case Kind::Or:
    return "Or";
  case Kind::Not:
    return "Not";
  case Kind::Implies:
    return "Implies";
  case Kind::Forall:
    return "Forall";
  case Kind::Exists:
    return "Exists";
  case Kind::Card:
    return "Card";
  }
  return "?";
}

TermManager::TermManager()
    : Buckets(std::make_unique<
              std::unordered_map<size_t, std::vector<std::unique_ptr<Node>>>>()) {
}

TermManager::~TermManager() = default;

static size_t hashNode(Kind K, Sort S, const std::vector<Term> &Kids,
                       const std::vector<Term> &Binders,
                       const std::string &Name, int64_t Value) {
  size_t H = static_cast<size_t>(K) * 1099511628211ULL +
             static_cast<size_t>(S) * 131;
  for (const Term &T : Kids)
    H = H * 1000003 + T.id();
  for (const Term &T : Binders)
    H = H * 1000033 + T.id();
  H = H * 1000037 + std::hash<std::string>()(Name);
  H = H * 1000039 + std::hash<int64_t>()(Value);
  return H;
}

static bool sameNode(const Node &N, Kind K, Sort S,
                     const std::vector<Term> &Kids,
                     const std::vector<Term> &Binders,
                     const std::string &Name, int64_t Value) {
  if (N.kind() != K || N.sort() != S || N.kids() != Kids)
    return false;
  bool HasBinders =
      K == Kind::Forall || K == Kind::Exists || K == Kind::Card;
  if (HasBinders && N.binders() != Binders)
    return false;
  if (K == Kind::Var && N.name() != Name)
    return false;
  if ((K == Kind::IntConst || K == Kind::BoolConst) && N.value() != Value)
    return false;
  return true;
}

Term TermManager::intern(Kind K, Sort S, std::vector<Term> Kids,
                         std::vector<Term> Binders, std::string Name,
                         int64_t Value) {
  size_t H = hashNode(K, S, Kids, Binders, Name, Value);
  auto &Bucket = (*Buckets)[H];
  for (const auto &N : Bucket)
    if (sameNode(*N, K, S, Kids, Binders, Name, Value))
      return Term(N.get());

  auto N = std::unique_ptr<Node>(new Node());
  N->K = K;
  N->S = S;
  N->Id = NextId++;
  N->Kids = std::move(Kids);
  N->Binders = std::move(Binders);
  N->Name = std::move(Name);
  N->Value = Value;
  ++NumTerms;
  Term T(N.get());
  Bucket.push_back(std::move(N));
  return T;
}

// -- Leaves -------------------------------------------------------------

Term TermManager::mkVar(const std::string &Name, Sort S) {
  auto It = Vars.find(Name);
  if (It != Vars.end()) {
    assert(It->second.sort() == S && "variable re-declared at another sort");
    return It->second;
  }
  Term T = intern(Kind::Var, S, {}, {}, Name, 0);
  Vars.emplace(Name, T);
  return T;
}

Term TermManager::freshVar(const std::string &Prefix, Sort S) {
  for (;;) {
    std::string Name = Prefix + "!" + std::to_string(FreshCounter++);
    if (!Vars.count(Name))
      return mkVar(Name, S);
  }
}

Term TermManager::mkInt(int64_t V) {
  return intern(Kind::IntConst, Sort::Int, {}, {}, "", V);
}

Term TermManager::mkBool(bool V) {
  return intern(Kind::BoolConst, Sort::Bool, {}, {}, "", V ? 1 : 0);
}

// -- Arithmetic ----------------------------------------------------------

Term TermManager::mkAdd(std::vector<Term> Ts) {
  std::vector<Term> Flat;
  int64_t C = 0;
  for (Term T : Ts) {
    assert(T.sort() == Sort::Int && "Add over non-integers");
    if (T.kind() == Kind::IntConst) {
      C += T->value();
      continue;
    }
    if (T.kind() == Kind::Add) {
      for (Term K : T->kids())
        Flat.push_back(K);
      continue;
    }
    Flat.push_back(T);
  }
  if (C != 0 || Flat.empty())
    Flat.push_back(mkInt(C));
  if (Flat.size() == 1)
    return Flat[0];
  return intern(Kind::Add, Sort::Int, std::move(Flat), {}, "", 0);
}

Term TermManager::mkSub(Term A, Term B) {
  assert(A.sort() == Sort::Int && B.sort() == Sort::Int && "Sub sorts");
  if (A.kind() == Kind::IntConst && B.kind() == Kind::IntConst)
    return mkInt(A->value() - B->value());
  if (B.kind() == Kind::IntConst && B->value() == 0)
    return A;
  if (A == B)
    return mkInt(0);
  return intern(Kind::Sub, Sort::Int, {A, B}, {}, "", 0);
}

Term TermManager::mkNeg(Term A) {
  assert(A.sort() == Sort::Int && "Neg sort");
  if (A.kind() == Kind::IntConst)
    return mkInt(-A->value());
  if (A.kind() == Kind::Neg)
    return A->kid(0);
  return intern(Kind::Neg, Sort::Int, {A}, {}, "", 0);
}

Term TermManager::mkMul(Term A, Term B) {
  assert(A.sort() == Sort::Int && B.sort() == Sort::Int && "Mul sorts");
  // Keep constants on the left for canonical form.
  if (B.kind() == Kind::IntConst && A.kind() != Kind::IntConst)
    std::swap(A, B);
  if (A.kind() == Kind::IntConst) {
    if (A->value() == 0)
      return mkInt(0);
    if (A->value() == 1)
      return B;
    if (B.kind() == Kind::IntConst)
      return mkInt(A->value() * B->value());
  }
  return intern(Kind::Mul, Sort::Int, {A, B}, {}, "", 0);
}

Term TermManager::mkIte(Term C, Term T, Term E) {
  assert(C.sort() == Sort::Bool && "Ite condition sort");
  assert(T.sort() == E.sort() && "Ite branch sorts differ");
  if (C.kind() == Kind::BoolConst)
    return C->value() ? T : E;
  if (T == E)
    return T;
  return intern(Kind::Ite, T.sort(), {C, T, E}, {}, "", 0);
}

// -- Arrays ---------------------------------------------------------------

Term TermManager::mkRead(Term Array, Term Index) {
  assert(Array.sort() == Sort::Array && "Read of non-array");
  assert(Index.sort() == Sort::Tid && "Read at non-Tid index");
  // Read-over-write: store(f, i, v)(i) = v; store(f, i, v)(j) = f(j) only
  // when i and j are syntactically identical or distinct constants - here
  // indices are symbolic, so fold only the exact-match case.
  if (Array.kind() == Kind::Store && Array->kid(1) == Index)
    return Array->kid(2);
  return intern(Kind::Read, Sort::Int, {Array, Index}, {}, "", 0);
}

Term TermManager::mkStore(Term Array, Term Index, Term Value) {
  assert(Array.sort() == Sort::Array && "Store of non-array");
  assert(Index.sort() == Sort::Tid && "Store at non-Tid index");
  assert(Value.sort() == Sort::Int && "Store of non-Int value");
  return intern(Kind::Store, Sort::Array, {Array, Index, Value}, {}, "", 0);
}

// -- Atoms -----------------------------------------------------------------

Term TermManager::mkEq(Term A, Term B) {
  assert(A.sort() == B.sort() && "Eq sorts differ");
  if (A == B)
    return mkTrue();
  if (A.kind() == Kind::IntConst && B.kind() == Kind::IntConst)
    return mkBool(A->value() == B->value());
  if (A.sort() == Sort::Bool)
    return mkIff(A, B);
  // Canonical argument order for the symmetric operator; constants go to
  // the right so formulas print naturally ("f(t) = 2").
  bool AConst = A.kind() == Kind::IntConst;
  bool BConst = B.kind() == Kind::IntConst;
  if (AConst != BConst ? AConst : B < A)
    std::swap(A, B);
  return intern(Kind::Eq, Sort::Bool, {A, B}, {}, "", 0);
}

Term TermManager::mkLe(Term A, Term B) {
  assert(A.sort() == Sort::Int && B.sort() == Sort::Int && "Le sorts");
  if (A.kind() == Kind::IntConst && B.kind() == Kind::IntConst)
    return mkBool(A->value() <= B->value());
  if (A == B)
    return mkTrue();
  return intern(Kind::Le, Sort::Bool, {A, B}, {}, "", 0);
}

Term TermManager::mkLt(Term A, Term B) {
  assert(A.sort() == Sort::Int && B.sort() == Sort::Int && "Lt sorts");
  if (A.kind() == Kind::IntConst && B.kind() == Kind::IntConst)
    return mkBool(A->value() < B->value());
  if (A == B)
    return mkFalse();
  return intern(Kind::Lt, Sort::Bool, {A, B}, {}, "", 0);
}

// -- Boolean structure ------------------------------------------------------

Term TermManager::mkAnd(std::vector<Term> Ts) {
  std::vector<Term> Flat;
  for (Term T : Ts) {
    assert(T.sort() == Sort::Bool && "And over non-Bool");
    if (T.kind() == Kind::BoolConst) {
      if (!T->value())
        return mkFalse();
      continue;
    }
    if (T.kind() == Kind::And) {
      for (Term K : T->kids())
        Flat.push_back(K);
      continue;
    }
    Flat.push_back(T);
  }
  // Deduplicate while preserving first-occurrence order.
  std::vector<Term> Uniq;
  for (Term T : Flat)
    if (std::find(Uniq.begin(), Uniq.end(), T) == Uniq.end())
      Uniq.push_back(T);
  if (Uniq.empty())
    return mkTrue();
  if (Uniq.size() == 1)
    return Uniq[0];
  return intern(Kind::And, Sort::Bool, std::move(Uniq), {}, "", 0);
}

Term TermManager::mkOr(std::vector<Term> Ts) {
  std::vector<Term> Flat;
  for (Term T : Ts) {
    assert(T.sort() == Sort::Bool && "Or over non-Bool");
    if (T.kind() == Kind::BoolConst) {
      if (T->value())
        return mkTrue();
      continue;
    }
    if (T.kind() == Kind::Or) {
      for (Term K : T->kids())
        Flat.push_back(K);
      continue;
    }
    Flat.push_back(T);
  }
  std::vector<Term> Uniq;
  for (Term T : Flat)
    if (std::find(Uniq.begin(), Uniq.end(), T) == Uniq.end())
      Uniq.push_back(T);
  if (Uniq.empty())
    return mkFalse();
  if (Uniq.size() == 1)
    return Uniq[0];
  return intern(Kind::Or, Sort::Bool, std::move(Uniq), {}, "", 0);
}

Term TermManager::mkNot(Term A) {
  assert(A.sort() == Sort::Bool && "Not over non-Bool");
  if (A.kind() == Kind::BoolConst)
    return mkBool(!A->value());
  if (A.kind() == Kind::Not)
    return A->kid(0);
  return intern(Kind::Not, Sort::Bool, {A}, {}, "", 0);
}

Term TermManager::mkImplies(Term A, Term B) {
  assert(A.sort() == Sort::Bool && B.sort() == Sort::Bool && "Implies sorts");
  if (A.kind() == Kind::BoolConst)
    return A->value() ? B : mkTrue();
  if (B.kind() == Kind::BoolConst)
    return B->value() ? mkTrue() : mkNot(A);
  if (A == B)
    return mkTrue();
  return intern(Kind::Implies, Sort::Bool, {A, B}, {}, "", 0);
}

Term TermManager::mkIff(Term A, Term B) {
  if (A == B)
    return mkTrue();
  return mkAnd(mkImplies(A, B), mkImplies(B, A));
}

// -- Binders and cardinality --------------------------------------------------

Term TermManager::mkForall(std::vector<Term> Vars, Term Body) {
  assert(Body.sort() == Sort::Bool && "quantified body must be Bool");
  for ([[maybe_unused]] Term V : Vars)
    assert(V.kind() == Kind::Var &&
           (V.sort() == Sort::Tid || V.sort() == Sort::Int) &&
           "binder must be a Tid or Int variable");
  if (Vars.empty() || Body.kind() == Kind::BoolConst)
    return Body;
  if (Body.kind() == Kind::Forall) {
    std::vector<Term> Merged = Vars;
    for (Term V : Body->binders())
      Merged.push_back(V);
    return intern(Kind::Forall, Sort::Bool, {Body->body()}, std::move(Merged),
                  "", 0);
  }
  return intern(Kind::Forall, Sort::Bool, {Body}, std::move(Vars), "", 0);
}

Term TermManager::mkExists(std::vector<Term> Vars, Term Body) {
  assert(Body.sort() == Sort::Bool && "quantified body must be Bool");
  for ([[maybe_unused]] Term V : Vars)
    assert(V.kind() == Kind::Var &&
           (V.sort() == Sort::Tid || V.sort() == Sort::Int) &&
           "binder must be a Tid or Int variable");
  if (Vars.empty() || Body.kind() == Kind::BoolConst)
    return Body;
  if (Body.kind() == Kind::Exists) {
    std::vector<Term> Merged = Vars;
    for (Term V : Body->binders())
      Merged.push_back(V);
    return intern(Kind::Exists, Sort::Bool, {Body->body()}, std::move(Merged),
                  "", 0);
  }
  return intern(Kind::Exists, Sort::Bool, {Body}, std::move(Vars), "", 0);
}

Term TermManager::mkCard(Term BoundVar, Term Body) {
  assert(BoundVar.kind() == Kind::Var && BoundVar.sort() == Sort::Tid &&
         "Card binds one Tid variable");
  assert(Body.sort() == Sort::Bool && "Card body must be Bool");
  return intern(Kind::Card, Sort::Int, {Body}, {BoundVar}, "", 0);
}
