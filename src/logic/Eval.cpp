//===- logic/Eval.cpp - Finite-model evaluation -----------------------------===//
//
// Part of sharpie. See Eval.h.
//
//===----------------------------------------------------------------------===//

#include "logic/Eval.h"

using namespace sharpie;
using namespace sharpie::logic;

int64_t Evaluator::lookupScalar(Term Var) {
  auto EnvIt = Env.find(Var);
  if (EnvIt != Env.end())
    return EnvIt->second;
  auto It = Model.Scalars.find(Var);
  if (It != Model.Scalars.end())
    return It->second;
  Missing.push_back(Var);
  return 0;
}

std::vector<int64_t> Evaluator::lookupArray(Term Var) {
  auto It = Model.Arrays.find(Var);
  if (It != Model.Arrays.end()) {
    std::vector<int64_t> V = It->second;
    V.resize(static_cast<size_t>(Model.DomainSize), 0);
    return V;
  }
  Missing.push_back(Var);
  return std::vector<int64_t>(static_cast<size_t>(Model.DomainSize), 0);
}

int64_t Evaluator::evalInt(Term T) {
  const Node *N = T.node();
  switch (N->kind()) {
  case Kind::Var:
    return lookupScalar(T);
  case Kind::IntConst:
    return N->value();
  case Kind::Add: {
    int64_t S = 0;
    for (Term K : N->kids())
      S += evalInt(K);
    return S;
  }
  case Kind::Sub:
    return evalInt(N->kid(0)) - evalInt(N->kid(1));
  case Kind::Neg:
    return -evalInt(N->kid(0));
  case Kind::Mul:
    return evalInt(N->kid(0)) * evalInt(N->kid(1));
  case Kind::Ite:
    return evalBool(N->kid(0)) ? evalInt(N->kid(1)) : evalInt(N->kid(2));
  case Kind::Read: {
    std::vector<int64_t> A = evalArray(N->kid(0));
    int64_t I = evalInt(N->kid(1));
    assert(I >= 0 && I < static_cast<int64_t>(A.size()) &&
           "array read out of the Tid domain");
    return A[static_cast<size_t>(I)];
  }
  case Kind::Card: {
    Term B = N->binders()[0];
    int64_t Count = 0;
    auto Saved = Env.find(B) != Env.end()
                     ? std::optional<int64_t>(Env[B])
                     : std::nullopt;
    for (int64_t V = 0; V < Model.DomainSize; ++V) {
      Env[B] = V;
      if (evalBool(N->body()))
        ++Count;
    }
    if (Saved)
      Env[B] = *Saved;
    else
      Env.erase(B);
    return Count;
  }
  default:
    assert(false && "evalInt on a non-arithmetic term");
    return 0;
  }
}

bool Evaluator::evalQuant(Term T, bool IsForall) {
  const Node *N = T.node();
  const std::vector<Term> &Bs = N->binders();
  // Enumerate assignments to all binders recursively.
  std::vector<std::optional<int64_t>> Saved;
  Saved.reserve(Bs.size());
  for (Term B : Bs) {
    auto It = Env.find(B);
    Saved.push_back(It != Env.end() ? std::optional<int64_t>(It->second)
                                    : std::nullopt);
  }
  std::function<bool(size_t)> Rec = [&](size_t I) -> bool {
    if (I == Bs.size())
      return evalBool(N->body());
    Term B = Bs[I];
    int64_t Lo, Hi;
    if (B.sort() == Sort::Tid) {
      Lo = 0;
      Hi = Model.DomainSize - 1;
    } else {
      SawIntQuantifier = true;
      Lo = -Model.IntBound;
      Hi = Model.IntBound;
    }
    for (int64_t V = Lo; V <= Hi; ++V) {
      Env[B] = V;
      bool R = Rec(I + 1);
      if (IsForall && !R)
        return false;
      if (!IsForall && R)
        return true;
    }
    return IsForall;
  };
  bool Result = Rec(0);
  for (size_t I = 0; I < Bs.size(); ++I) {
    if (Saved[I])
      Env[Bs[I]] = *Saved[I];
    else
      Env.erase(Bs[I]);
  }
  return Result;
}

bool Evaluator::evalBool(Term T) {
  const Node *N = T.node();
  switch (N->kind()) {
  case Kind::BoolConst:
    return N->value() != 0;
  case Kind::Eq:
    if (N->kid(0).sort() == Sort::Array)
      return evalArray(N->kid(0)) == evalArray(N->kid(1));
    return evalInt(N->kid(0)) == evalInt(N->kid(1));
  case Kind::Le:
    return evalInt(N->kid(0)) <= evalInt(N->kid(1));
  case Kind::Lt:
    return evalInt(N->kid(0)) < evalInt(N->kid(1));
  case Kind::And:
    for (Term K : N->kids())
      if (!evalBool(K))
        return false;
    return true;
  case Kind::Or:
    for (Term K : N->kids())
      if (evalBool(K))
        return true;
    return false;
  case Kind::Not:
    return !evalBool(N->kid(0));
  case Kind::Implies:
    return !evalBool(N->kid(0)) || evalBool(N->kid(1));
  case Kind::Forall:
    return evalQuant(T, /*IsForall=*/true);
  case Kind::Exists:
    return evalQuant(T, /*IsForall=*/false);
  default:
    assert(false && "evalBool on a non-formula");
    return false;
  }
}

std::vector<int64_t> Evaluator::evalArray(Term T) {
  const Node *N = T.node();
  switch (N->kind()) {
  case Kind::Var:
    return lookupArray(T);
  case Kind::Store: {
    std::vector<int64_t> A = evalArray(N->kid(0));
    int64_t I = evalInt(N->kid(1));
    assert(I >= 0 && I < static_cast<int64_t>(A.size()) &&
           "array store out of the Tid domain");
    A[static_cast<size_t>(I)] = evalInt(N->kid(2));
    return A;
  }
  case Kind::Ite:
    return evalBool(N->kid(0)) ? evalArray(N->kid(1)) : evalArray(N->kid(2));
  default:
    assert(false && "evalArray on a non-array term");
    return {};
  }
}
