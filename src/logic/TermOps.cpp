//===- logic/TermOps.cpp - Traversals over terms ---------------------------===//
//
// Part of sharpie. See TermOps.h.
//
//===----------------------------------------------------------------------===//

#include "logic/TermOps.h"

#include <sstream>

using namespace sharpie;
using namespace sharpie::logic;

// -- Node rebuilding ----------------------------------------------------------

/// Rebuilds a non-leaf, non-binder node of kind \p K from new children,
/// re-running builder normalization.
static Term rebuildApplied(TermManager &M, Kind K,
                           const std::vector<Term> &Kids) {
  switch (K) {
  case Kind::Add:
    return M.mkAdd(Kids);
  case Kind::Sub:
    return M.mkSub(Kids[0], Kids[1]);
  case Kind::Neg:
    return M.mkNeg(Kids[0]);
  case Kind::Mul:
    return M.mkMul(Kids[0], Kids[1]);
  case Kind::Ite:
    return M.mkIte(Kids[0], Kids[1], Kids[2]);
  case Kind::Read:
    return M.mkRead(Kids[0], Kids[1]);
  case Kind::Store:
    return M.mkStore(Kids[0], Kids[1], Kids[2]);
  case Kind::Eq:
    return M.mkEq(Kids[0], Kids[1]);
  case Kind::Le:
    return M.mkLe(Kids[0], Kids[1]);
  case Kind::Lt:
    return M.mkLt(Kids[0], Kids[1]);
  case Kind::And:
    return M.mkAnd(Kids);
  case Kind::Or:
    return M.mkOr(Kids);
  case Kind::Not:
    return M.mkNot(Kids[0]);
  case Kind::Implies:
    return M.mkImplies(Kids[0], Kids[1]);
  default:
    assert(false && "unexpected kind in rebuildApplied");
    return Term();
  }
}

// -- Substitution -----------------------------------------------------------

namespace {

/// Recursive capture-avoiding substitution. A memo map caches results per
/// active substitution; crossing a binder narrows the substitution, so the
/// memo is only reused while no binder has been crossed (each recursive
/// scope owns its own memo).
class Substituter {
public:
  Substituter(TermManager &M, const Subst &S) : M(M), S(S) {}

  Term run(Term T) {
    std::map<Term, Term> Memo;
    return walk(T, S, Memo);
  }

private:
  Term walk(Term T, const Subst &Sub, std::map<Term, Term> &Memo) {
    if (Sub.empty())
      return T;
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    Term R = rebuild(T, Sub, Memo);
    Memo.emplace(T, R);
    return R;
  }

  Term rebuild(Term T, const Subst &Sub, std::map<Term, Term> &Memo) {
    const Node *N = T.node();
    switch (N->kind()) {
    case Kind::Var: {
      auto It = Sub.find(T);
      return It == Sub.end() ? T : It->second;
    }
    case Kind::IntConst:
    case Kind::BoolConst:
      return T;
    case Kind::Forall:
    case Kind::Exists:
    case Kind::Card: {
      // Narrow the substitution: bound variables shadow outer bindings.
      Subst Inner = Sub;
      for (Term B : N->binders())
        Inner.erase(B);
      if (Inner.empty())
        return T;
      // Rename bound variables that would capture free variables of the
      // replacement terms.
      std::set<Term> RangeVars;
      for (const auto &[K, V] : Inner) {
        (void)K;
        std::set<Term> FV = freeVars(V);
        RangeVars.insert(FV.begin(), FV.end());
      }
      std::vector<Term> NewBinders;
      Subst Rename;
      bool Renamed = false;
      for (Term B : N->binders()) {
        if (RangeVars.count(B)) {
          Term Fresh = M.freshVar(B->name(), B.sort());
          Rename[B] = Fresh;
          NewBinders.push_back(Fresh);
          Renamed = true;
        } else {
          NewBinders.push_back(B);
        }
      }
      Term Body = N->body();
      if (Renamed) {
        std::map<Term, Term> RenameMemo;
        Body = walk(Body, Rename, RenameMemo);
      }
      std::map<Term, Term> InnerMemo;
      Term NewBody = walk(Body, Inner, InnerMemo);
      if (N->kind() == Kind::Forall)
        return M.mkForall(NewBinders, NewBody);
      if (N->kind() == Kind::Exists)
        return M.mkExists(NewBinders, NewBody);
      return M.mkCard(NewBinders[0], NewBody);
    }
    default: {
      std::vector<Term> Kids;
      Kids.reserve(N->numKids());
      bool Changed = false;
      for (Term K : N->kids()) {
        Term NK = walk(K, Sub, Memo);
        Changed |= NK != K;
        Kids.push_back(NK);
      }
      if (!Changed)
        return T;
      return rebuildApplied(M, N->kind(), Kids);
    }
    }
  }

  TermManager &M;
  const Subst &S;
};

} // namespace

Term sharpie::logic::substitute(TermManager &M, Term T, const Subst &S) {
#ifndef NDEBUG
  for (const auto &[K, V] : S) {
    assert(K.kind() == Kind::Var && "substitution key must be a variable");
    assert(K.sort() == V.sort() && "substitution changes sort");
  }
#endif
  return Substituter(M, S).run(T);
}

// -- Free variables -----------------------------------------------------------

static void freeVarsRec(Term T, std::set<Term> &Bound, std::set<Term> &Out) {
  const Node *N = T.node();
  switch (N->kind()) {
  case Kind::Var:
    if (!Bound.count(T))
      Out.insert(T);
    return;
  case Kind::IntConst:
  case Kind::BoolConst:
    return;
  case Kind::Forall:
  case Kind::Exists:
  case Kind::Card: {
    std::vector<Term> Added;
    for (Term B : N->binders())
      if (Bound.insert(B).second)
        Added.push_back(B);
    freeVarsRec(N->body(), Bound, Out);
    for (Term B : Added)
      Bound.erase(B);
    return;
  }
  default:
    for (Term K : N->kids())
      freeVarsRec(K, Bound, Out);
    return;
  }
}

std::set<Term> sharpie::logic::freeVars(Term T) {
  std::set<Term> Bound, Out;
  freeVarsRec(T, Bound, Out);
  return Out;
}

// -- Collection ----------------------------------------------------------------

static void collectRec(Term T, const std::function<bool(Term)> &Pred,
                       std::set<Term> &Seen, std::set<Term> &Out) {
  if (!Seen.insert(T).second)
    return;
  if (Pred(T))
    Out.insert(T);
  const Node *N = T.node();
  for (Term K : N->kids())
    collectRec(K, Pred, Seen, Out);
}

std::set<Term>
sharpie::logic::collectSubterms(Term T,
                                const std::function<bool(Term)> &Pred) {
  std::set<Term> Seen, Out;
  collectRec(T, Pred, Seen, Out);
  return Out;
}

bool sharpie::logic::containsKind(Term T, Kind K) {
  std::set<Term> Hits =
      collectSubterms(T, [K](Term S) { return S.kind() == K; });
  return !Hits.empty();
}

// -- Whole-subterm replacement ---------------------------------------------------

static Term replaceRec(TermManager &M, Term T,
                       const std::map<Term, Term> &Map,
                       std::map<Term, Term> &Memo) {
  auto Hit = Map.find(T);
  if (Hit != Map.end())
    return Hit->second;
  auto MemoIt = Memo.find(T);
  if (MemoIt != Memo.end())
    return MemoIt->second;
  const Node *N = T.node();
  Term R = T;
  switch (N->kind()) {
  case Kind::Var:
  case Kind::IntConst:
  case Kind::BoolConst:
    break;
  case Kind::Forall:
  case Kind::Exists:
  case Kind::Card: {
    Term Body = replaceRec(M, N->body(), Map, Memo);
    if (Body != N->body()) {
      if (N->kind() == Kind::Forall)
        R = M.mkForall(N->binders(), Body);
      else if (N->kind() == Kind::Exists)
        R = M.mkExists(N->binders(), Body);
      else
        R = M.mkCard(N->binders()[0], Body);
    }
    break;
  }
  default: {
    std::vector<Term> Kids;
    Kids.reserve(N->numKids());
    bool Changed = false;
    for (Term K : N->kids()) {
      Term NK = replaceRec(M, K, Map, Memo);
      Changed |= NK != K;
      Kids.push_back(NK);
    }
    if (Changed)
      R = rebuildApplied(M, N->kind(), Kids);
    break;
  }
  }
  Memo.emplace(T, R);
  return R;
}

Term sharpie::logic::replaceAll(TermManager &M, Term T,
                                const std::map<Term, Term> &Map) {
  if (Map.empty())
    return T;
  std::map<Term, Term> Memo;
  return replaceRec(M, T, Map, Memo);
}

// -- Negation normal form ------------------------------------------------------

static Term nnf(TermManager &M, Term T, bool Negate) {
  const Node *N = T.node();
  switch (N->kind()) {
  case Kind::BoolConst:
    return M.mkBool(Negate ? !N->value() : N->value() != 0);
  case Kind::Not:
    return nnf(M, N->kid(0), !Negate);
  case Kind::And: {
    std::vector<Term> Kids;
    for (Term K : N->kids())
      Kids.push_back(nnf(M, K, Negate));
    return Negate ? M.mkOr(Kids) : M.mkAnd(Kids);
  }
  case Kind::Or: {
    std::vector<Term> Kids;
    for (Term K : N->kids())
      Kids.push_back(nnf(M, K, Negate));
    return Negate ? M.mkAnd(Kids) : M.mkOr(Kids);
  }
  case Kind::Implies: {
    Term A = nnf(M, N->kid(0), !Negate);
    Term B = nnf(M, N->kid(1), Negate);
    return Negate ? M.mkAnd(A, B) : M.mkOr(A, B);
  }
  case Kind::Forall: {
    Term Body = nnf(M, N->body(), Negate);
    return Negate ? M.mkExists(N->binders(), Body)
                  : M.mkForall(N->binders(), Body);
  }
  case Kind::Exists: {
    Term Body = nnf(M, N->body(), Negate);
    return Negate ? M.mkForall(N->binders(), Body)
                  : M.mkExists(N->binders(), Body);
  }
  default:
    // Atom (comparison over Int/Tid/Array terms, possibly with Card inside).
    return Negate ? M.mkNot(T) : T;
  }
}

Term sharpie::logic::toNnf(TermManager &M, Term T) {
  assert(T.sort() == Sort::Bool && "NNF of a non-formula");
  return nnf(M, T, false);
}

// -- Printing --------------------------------------------------------------------

namespace {

void print(std::ostringstream &OS, Term T);

void printNary(std::ostringstream &OS, const Node *N, const char *Op) {
  OS << "(";
  for (unsigned I = 0; I < N->numKids(); ++I) {
    if (I)
      OS << " " << Op << " ";
    print(OS, N->kid(I));
  }
  OS << ")";
}

void printBinders(std::ostringstream &OS, const Node *N) {
  for (unsigned I = 0; I < N->binders().size(); ++I) {
    if (I)
      OS << ",";
    OS << N->binders()[I]->name();
  }
}

void print(std::ostringstream &OS, Term T) {
  const Node *N = T.node();
  switch (N->kind()) {
  case Kind::Var:
    OS << N->name();
    return;
  case Kind::IntConst:
    OS << N->value();
    return;
  case Kind::BoolConst:
    OS << (N->value() ? "true" : "false");
    return;
  case Kind::Add:
    printNary(OS, N, "+");
    return;
  case Kind::Sub:
    printNary(OS, N, "-");
    return;
  case Kind::Neg:
    OS << "-";
    print(OS, N->kid(0));
    return;
  case Kind::Mul:
    printNary(OS, N, "*");
    return;
  case Kind::Ite:
    OS << "ite(";
    print(OS, N->kid(0));
    OS << ", ";
    print(OS, N->kid(1));
    OS << ", ";
    print(OS, N->kid(2));
    OS << ")";
    return;
  case Kind::Read:
    print(OS, N->kid(0));
    OS << "(";
    print(OS, N->kid(1));
    OS << ")";
    return;
  case Kind::Store:
    print(OS, N->kid(0));
    OS << "[";
    print(OS, N->kid(1));
    OS << " <- ";
    print(OS, N->kid(2));
    OS << "]";
    return;
  case Kind::Eq:
    OS << "(";
    print(OS, N->kid(0));
    OS << " = ";
    print(OS, N->kid(1));
    OS << ")";
    return;
  case Kind::Le:
    OS << "(";
    print(OS, N->kid(0));
    OS << " <= ";
    print(OS, N->kid(1));
    OS << ")";
    return;
  case Kind::Lt:
    OS << "(";
    print(OS, N->kid(0));
    OS << " < ";
    print(OS, N->kid(1));
    OS << ")";
    return;
  case Kind::And:
    printNary(OS, N, "/\\");
    return;
  case Kind::Or:
    printNary(OS, N, "\\/");
    return;
  case Kind::Not:
    OS << "~";
    print(OS, N->kid(0));
    return;
  case Kind::Implies:
    OS << "(";
    print(OS, N->kid(0));
    OS << " -> ";
    print(OS, N->kid(1));
    OS << ")";
    return;
  case Kind::Forall:
    OS << "(forall ";
    printBinders(OS, N);
    OS << ". ";
    print(OS, N->body());
    OS << ")";
    return;
  case Kind::Exists:
    OS << "(exists ";
    printBinders(OS, N);
    OS << ". ";
    print(OS, N->body());
    OS << ")";
    return;
  case Kind::Card:
    OS << "#{";
    printBinders(OS, N);
    OS << " | ";
    print(OS, N->body());
    OS << "}";
    return;
  }
}

} // namespace

size_t sharpie::logic::termSize(Term T) {
  return collectSubterms(T, [](Term) { return true; }).size();
}

std::string sharpie::logic::toString(Term T) {
  if (T.isNull())
    return "<null>";
  std::ostringstream OS;
  print(OS, T);
  return OS.str();
}

Term sharpie::logic::TermTranslator::operator()(Term T) {
  if (T.isNull())
    return T;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  const Node *N = T.node();
  std::vector<Term> Kids;
  Kids.reserve(N->numKids());
  for (Term K : N->kids())
    Kids.push_back((*this)(K));
  Term Out;
  switch (N->kind()) {
  case Kind::Var:
    if (MapVar)
      Out = MapVar(T);
    if (Out.isNull())
      Out = Dst.mkVar(N->name(), N->sort());
    break;
  case Kind::IntConst:
    Out = Dst.mkInt(N->value());
    break;
  case Kind::BoolConst:
    Out = Dst.mkBool(N->value() != 0);
    break;
  case Kind::Add:
    Out = Dst.mkAdd(std::move(Kids));
    break;
  case Kind::Sub:
    Out = Dst.mkSub(Kids[0], Kids[1]);
    break;
  case Kind::Neg:
    Out = Dst.mkNeg(Kids[0]);
    break;
  case Kind::Mul:
    Out = Dst.mkMul(Kids[0], Kids[1]);
    break;
  case Kind::Ite:
    Out = Dst.mkIte(Kids[0], Kids[1], Kids[2]);
    break;
  case Kind::Read:
    Out = Dst.mkRead(Kids[0], Kids[1]);
    break;
  case Kind::Store:
    Out = Dst.mkStore(Kids[0], Kids[1], Kids[2]);
    break;
  case Kind::Eq:
    Out = Dst.mkEq(Kids[0], Kids[1]);
    break;
  case Kind::Le:
    Out = Dst.mkLe(Kids[0], Kids[1]);
    break;
  case Kind::Lt:
    Out = Dst.mkLt(Kids[0], Kids[1]);
    break;
  case Kind::And:
    Out = Dst.mkAnd(std::move(Kids));
    break;
  case Kind::Or:
    Out = Dst.mkOr(std::move(Kids));
    break;
  case Kind::Not:
    Out = Dst.mkNot(Kids[0]);
    break;
  case Kind::Implies:
    Out = Dst.mkImplies(Kids[0], Kids[1]);
    break;
  case Kind::Forall:
  case Kind::Exists: {
    std::vector<Term> Vars;
    Vars.reserve(N->binders().size());
    for (Term B : N->binders())
      Vars.push_back((*this)(B));
    Out = N->kind() == Kind::Forall ? Dst.mkForall(std::move(Vars), Kids[0])
                                    : Dst.mkExists(std::move(Vars), Kids[0]);
    break;
  }
  case Kind::Card:
    Out = Dst.mkCard((*this)(N->binders()[0]), Kids[0]);
    break;
  }
  Memo.emplace(T, Out);
  return Out;
}
