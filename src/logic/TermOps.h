//===- logic/TermOps.h - Traversals over terms ------------------*- C++ -*-===//
//
// Part of sharpie. Substitution, free variables, subterm collection, and
// negation normal form for the term language of Term.h.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_LOGIC_TERMOPS_H
#define SHARPIE_LOGIC_TERMOPS_H

#include "logic/Term.h"

#include <functional>
#include <map>
#include <set>
#include <string>

namespace sharpie {
namespace logic {

/// Maps variables to replacement terms (same sort).
using Subst = std::map<Term, Term>;

/// Replaces free occurrences of the variables in \p S inside \p T.
/// Capture-avoiding: bound variables that clash with free variables of the
/// replacement terms are renamed to fresh variables.
Term substitute(TermManager &M, Term T, const Subst &S);

/// Returns the free variables of \p T in deterministic (creation id) order.
std::set<Term> freeVars(Term T);

/// Collects all subterms of \p T (including under binders) for which
/// \p Pred holds, deduplicated, in deterministic order. Does not recurse
/// into subterms that matched (a matched Card term's body is still visited).
std::set<Term> collectSubterms(Term T,
                               const std::function<bool(Term)> &Pred);

/// True iff \p T contains a subterm of kind \p K anywhere (incl. binders).
bool containsKind(Term T, Kind K);

/// Replaces every occurrence of each key of \p Map (an arbitrary subterm,
/// not necessarily a variable) by its value. Matching is purely structural;
/// keys that contain variables bound inside \p T never match (the bound
/// occurrences are distinct terms), so the replacement cannot capture.
Term replaceAll(TermManager &M, Term T, const std::map<Term, Term> &Map);

/// Negation normal form: eliminates Implies, pushes Not down to atoms, and
/// flips quantifiers under negation. Card terms are left untouched (they are
/// Int-sorted and opaque to NNF); their bodies are *not* normalized.
Term toNnf(TermManager &M, Term T);

/// Structurally clones terms from one TermManager into another. Variables
/// map by (name, sort) via mkVar, so two translations of overlapping terms
/// agree, and a round trip through a third manager is the identity on
/// names. Nodes are rebuilt through the destination's builders (the same
/// normalizations both managers apply, so shapes are preserved) and
/// memoized, keeping the translation linear in the source DAG.
///
/// The translator only reads the source manager; many translators may read
/// the same source concurrently, which is how per-worker managers are
/// seeded from the shared system without locking (see DESIGN.md, "Parallel
/// search & determinism").
class TermTranslator {
public:
  explicit TermTranslator(TermManager &Dst) : Dst(Dst) {}

  /// Translates \p T (from any foreign manager) into the destination.
  Term operator()(Term T);

  /// Optional variable hook, consulted before the default (name, sort)
  /// mapping. Return a null Term to fall through to the default. The
  /// result is memoized per source node, so every occurrence of one
  /// foreign variable -- bound occurrences included -- maps to the same
  /// destination term (remapping a binder is a plain alpha-rename). The
  /// shared reduction cache uses this to re-skolemize freshVar-minted
  /// witnesses on the way out of the cache, so skolems from different
  /// source managers can never alias in one destination manager.
  std::function<Term(Term)> MapVar;

private:
  TermManager &Dst;
  std::unordered_map<Term, Term, TermHash> Memo;
};

/// Renders \p T in a compact, paper-style syntax, e.g.
/// "#{t | pc(t) = 2} <= a" or "forall t. pc(t) = 1".
std::string toString(Term T);

/// Number of distinct subterms of \p T (DAG size; diagnostics).
size_t termSize(Term T);

} // namespace logic
} // namespace sharpie

#endif // SHARPIE_LOGIC_TERMOPS_H
