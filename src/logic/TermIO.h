//===- logic/TermIO.h - Textual term serialization --------------*- C++ -*-===//
//
// Part of sharpie. A deterministic, manager-independent text encoding of
// terms, used by two consumers that must agree on it:
//
//   * the canonical content hash of a lowered protocol (front/Canon.h):
//     two structurally equal terms -- same shapes, same variable names --
//     serialize to the same bytes regardless of which TermManager built
//     them or in what order its nodes were interned;
//   * the persistent reduction cache (engine/Reduce.h, serve/Store.h):
//     cached ground formulas round-trip through disk and are re-interned
//     into a fresh manager on load.
//
// The format is a compact s-expression per term, e.g.
//
//   (and (= (rd (v a "pc") (v t "s")) 1) (<= (v i "n") 3))
//
// with sort codes b/i/t/a (Bool/Int/Tid/Array), integer literals bare,
// booleans as #t/#f, and binders carrying their variable list:
// (forall ((v t "q")) body), (card (v t "t") body).
//
// Robustness contract: deserializeTerm never crashes or corrupts the
// manager on malformed input. Every operator application is sort-checked
// before the corresponding TermManager builder runs (the builders only
// assert, and NDEBUG builds must reject corrupt cache files, not build
// broken terms over them), variable sorts are checked against both the
// input's own declarations and the destination manager's live bindings,
// and recursion depth is bounded. Any violation yields a null Term and a
// message -- a corrupt cache entry is a miss, never a crash.
//
//===----------------------------------------------------------------------===//

#ifndef SHARPIE_LOGIC_TERMIO_H
#define SHARPIE_LOGIC_TERMIO_H

#include "logic/Term.h"

#include <string>
#include <string_view>

namespace sharpie {
namespace logic {

/// Serializes \p T as one s-expression (no trailing newline). Null terms
/// serialize as "()" and deserialize back to null -- optional fields like
/// an absent QGuard survive the round trip.
std::string serializeTerm(Term T);

/// Parses one serialized term into \p M. Returns a null Term and sets
/// \p Err (when non-null) on any malformed input; "()" parses to a null
/// Term with no error. Never throws, never calls a builder whose sort
/// preconditions do not hold.
Term deserializeTerm(TermManager &M, std::string_view Text,
                     std::string *Err = nullptr);

} // namespace logic
} // namespace sharpie

#endif // SHARPIE_LOGIC_TERMIO_H
