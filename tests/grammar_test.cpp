//===- tests/grammar_test.cpp - Search-space grammar tests ----------------------===//
//
// Part of sharpie. The grammars must produce the paper's inferred
// cardinality sets among their candidates, with safety-derived sets ranked
// first, and keep per-local constants separated.
//
//===----------------------------------------------------------------------===//

#include "synth/Grammar.h"
#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <gtest/gtest.h>

using namespace sharpie;
using namespace sharpie::logic;
using namespace sharpie::synth;

namespace {

bool containsBody(const std::vector<SetCandidate> &Cands, Term Body) {
  for (const SetCandidate &C : Cands)
    if (C.Body == Body)
      return true;
  return false;
}

TEST(Grammar, TicketLockCandidatesIncludeThePaperSets) {
  TermManager M;
  protocols::ProtocolBundle B = protocols::makeTicketLock(M);
  Formals F = makeFormals(M, B.Shape);
  std::vector<SetCandidate> Cands = enumerateSetBodies(*B.Sys, F);
  Term PC = M.mkVar("pc", Sort::Array);
  Term Mv = M.mkVar("m", Sort::Array);
  Term Serv = M.mkVar("serv", Sort::Int);
  Term T = F.BoundVar;
  // The three sets of the paper's Fig. 6 row.
  EXPECT_TRUE(containsBody(Cands, M.mkEq(M.mkRead(PC, T), M.mkInt(3))));
  EXPECT_TRUE(containsBody(
      Cands, M.mkAnd(M.mkLe(M.mkRead(Mv, T), Serv),
                     M.mkEq(M.mkRead(PC, T), M.mkInt(2)))));
  EXPECT_TRUE(containsBody(Cands, M.mkEq(M.mkRead(Mv, T), F.Q[0])));
  // The safety-derived set must rank first.
  EXPECT_EQ(Cands.front().Body, M.mkEq(M.mkRead(PC, T), M.mkInt(3)));
  EXPECT_EQ(Cands.front().Origin, "safety");
}

TEST(Grammar, FilterLockCandidatesIncludeThePaperSet) {
  TermManager M;
  protocols::ProtocolBundle B = protocols::makeFilterLock(M);
  Formals F = makeFormals(M, B.Shape);
  std::vector<SetCandidate> Cands = enumerateSetBodies(*B.Sys, F);
  Term Lv = M.mkVar("lv", Sort::Array);
  EXPECT_TRUE(
      containsBody(Cands, M.mkGe(M.mkRead(Lv, F.BoundVar), F.Q[0])));
}

TEST(Grammar, PerLocalConstantsDoNotLeakAcrossLocals) {
  TermManager M;
  protocols::ProtocolBundle B = protocols::makeTicketLock(M);
  std::map<Term, std::vector<int64_t>> Cs = perLocalConstants(*B.Sys);
  Term PC = M.mkVar("pc", Sort::Array);
  Term Mv = M.mkVar("m", Sort::Array);
  // pc compares with locations 1..3 but never with the ticket sentinel -1.
  ASSERT_TRUE(Cs.count(PC));
  for (int64_t C : Cs[PC])
    EXPECT_NE(C, -1);
  // m is initialized to -1.
  ASSERT_TRUE(Cs.count(Mv));
  EXPECT_NE(std::find(Cs[Mv].begin(), Cs[Mv].end(), -1), Cs[Mv].end());
}

TEST(Grammar, AtomPoolCoversThePaperInvariants) {
  TermManager M;
  protocols::ProtocolBundle B = protocols::makeTicketLock(M);
  Formals F = makeFormals(M, B.Shape);
  std::vector<Term> Pool = enumerateInvAtoms(*B.Sys, F);
  Term Tick = M.mkVar("tick", Sort::Int);
  Term Serv = M.mkVar("serv", Sort::Int);
  auto Has = [&](Term A) {
    return std::find(Pool.begin(), Pool.end(), A) != Pool.end();
  };
  // Mutual exclusion: k0 + k1 <= 1.
  EXPECT_TRUE(Has(M.mkLe(M.mkAdd(F.K[0], F.K[1]), M.mkInt(1))));
  // Per-ticket uniqueness: k2 <= 1.
  EXPECT_TRUE(Has(M.mkLe(F.K[2], M.mkInt(1))));
  // No ticket at or above the dispenser: q >= tick -> k2 <= 0.
  EXPECT_TRUE(Has(M.mkImplies(M.mkGe(F.Q[0], Tick),
                              M.mkLe(F.K[2], M.mkInt(0)))));
  // Service never passes the dispenser: serv <= tick.
  EXPECT_TRUE(Has(M.mkLe(Serv, Tick)));
  // In-flight bound: k <= tick - serv.
  EXPECT_TRUE(Has(M.mkLe(F.K[0], M.mkSub(Tick, Serv))));
}

TEST(Grammar, SystemConstantsAreSortedAndDeduped) {
  TermManager M;
  protocols::ProtocolBundle B = protocols::makeCache(M);
  std::vector<int64_t> Cs = systemConstants(*B.Sys);
  EXPECT_TRUE(std::is_sorted(Cs.begin(), Cs.end()));
  EXPECT_EQ(std::adjacent_find(Cs.begin(), Cs.end()), Cs.end());
  EXPECT_TRUE(std::find(Cs.begin(), Cs.end(), 3) != Cs.end());
}

} // namespace
