//===- tests/serve_store_test.cpp - Persistent store robustness tests ---------===//
//
// Part of sharpie. The acceptance contract of serve/Store.h: round trips
// are exact, and every flavor of on-disk damage -- truncation, garbage,
// version skew -- degrades to a cache miss with a counter, never to an
// error or a wrong result. Tier 2 additionally pins the cross-process
// re-keying: entries serialized from one ReduceCache produce hits in a
// fresh one.
//
//===----------------------------------------------------------------------===//

#include "serve/Store.h"

#include "logic/TermIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace sharpie;
using namespace sharpie::serve;
using logic::Sort;
using logic::Term;

namespace {

class StoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "sharpie_store_" +
          std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string Cmd = "rm -rf '" + Dir + "'";
    ASSERT_EQ(0, std::system(Cmd.c_str()));
  }

  void TearDown() override {
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)std::system(Cmd.c_str());
  }

  front::CanonicalHash hash(uint64_t Hi, uint64_t Lo) { return {Hi, Lo}; }

  ResultStore::T1Entry entry() {
    ResultStore::T1Entry E;
    E.Exit = 0;
    E.Protocol = "increment";
    E.StatsJson = "\"tuples_tried\": 2, \"smt_checks\": 9";
    E.SynthSeconds = 1.25;
    E.Verdict = "VERIFIED in 1.25s (2 tuples, 9 SMT checks; parse 0.2ms)\n"
                "inferred cardinalities:\n  #{t | (2 <= pc(%set_t))}\n"
                "invariant atoms (1):\n  (%k0 <= a)\n";
    return E;
  }

  void corruptT1(const front::CanonicalHash &H, const std::string &Content) {
    std::ofstream Out(Dir + "/t1/" + H.hex() + ".entry",
                      std::ios::binary | std::ios::trunc);
    Out << Content;
  }

  std::string Dir;
};

TEST_F(StoreTest, DisabledStoreMissesAndRefusesWrites) {
  ResultStore S("");
  EXPECT_FALSE(S.enabled());
  EXPECT_FALSE(S.lookup(hash(1, 2)).has_value());
  EXPECT_FALSE(S.store(hash(1, 2), entry()));
  EXPECT_EQ(0u, S.stats().T1Misses); // Disabled stores do not even count.
}

TEST_F(StoreTest, Tier1RoundTripIsExact) {
  ResultStore S(Dir);
  ResultStore::T1Entry E = entry();
  ASSERT_TRUE(S.store(hash(0xabcd, 0x1234), E));
  auto Hit = S.lookup(hash(0xabcd, 0x1234));
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(E.Exit, Hit->Exit);
  EXPECT_EQ(E.Protocol, Hit->Protocol);
  EXPECT_EQ(E.StatsJson, Hit->StatsJson);
  EXPECT_DOUBLE_EQ(E.SynthSeconds, Hit->SynthSeconds);
  EXPECT_EQ(E.Verdict, Hit->Verdict); // Byte-exact: the warm output.
  StoreStats St = S.stats();
  EXPECT_EQ(1u, St.T1Writes);
  EXPECT_EQ(1u, St.T1Hits);
  EXPECT_EQ(0u, St.T1Corrupt);
}

TEST_F(StoreTest, Tier1MissOnAbsentHash) {
  ResultStore S(Dir);
  EXPECT_FALSE(S.lookup(hash(7, 7)).has_value());
  EXPECT_EQ(1u, S.stats().T1Misses);
}

TEST_F(StoreTest, UnsafeVerdictsRoundTripTooButNothingElseWrites) {
  ResultStore S(Dir);
  ResultStore::T1Entry E = entry();
  E.Exit = 1;
  E.Verdict = "UNSAFE: explicit counterexample (3 steps):\n  a\n  b\n  c\n";
  EXPECT_TRUE(S.store(hash(1, 1), E));
  E.Exit = 2; // Unknown: never cacheable.
  EXPECT_FALSE(S.store(hash(2, 2), E));
  E.Exit = 4; // Inconclusive: never cacheable.
  EXPECT_FALSE(S.store(hash(3, 3), E));
  EXPECT_EQ(1u, S.stats().T1Writes);
}

TEST_F(StoreTest, TruncatedEntryIsAMissNotACrash) {
  ResultStore S(Dir);
  ASSERT_TRUE(S.store(hash(5, 5), entry()));
  // Re-write the file with its second half cut off.
  std::string Path = Dir + "/t1/" + hash(5, 5).hex() + ".entry";
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Full = SS.str();
  corruptT1(hash(5, 5), Full.substr(0, Full.size() / 2));
  EXPECT_FALSE(S.lookup(hash(5, 5)).has_value());
  StoreStats St = S.stats();
  EXPECT_EQ(1u, St.T1Corrupt);
  EXPECT_EQ(1u, St.T1Misses);
}

TEST_F(StoreTest, GarbageEntryIsAMiss) {
  ResultStore S(Dir);
  corruptT1(hash(6, 6), "not a store file at all \x01\x02\x03 {]");
  EXPECT_FALSE(S.lookup(hash(6, 6)).has_value());
  EXPECT_EQ(1u, S.stats().T1Corrupt);
}

TEST_F(StoreTest, WrongVersionIsAMiss) {
  ResultStore S(Dir);
  ASSERT_TRUE(S.store(hash(8, 8), entry()));
  std::string Path = Dir + "/t1/" + hash(8, 8).hex() + ".entry";
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Full = SS.str();
  size_t P = Full.find("v1");
  ASSERT_NE(std::string::npos, P);
  Full.replace(P, 2, "v9");
  corruptT1(hash(8, 8), Full);
  EXPECT_FALSE(S.lookup(hash(8, 8)).has_value());
  EXPECT_EQ(1u, S.stats().T1Corrupt);
}

TEST_F(StoreTest, ExitFieldOutsideSettledRangeIsCorruption) {
  ResultStore S(Dir);
  ASSERT_TRUE(S.store(hash(9, 9), entry()));
  std::string Path = Dir + "/t1/" + hash(9, 9).hex() + ".entry";
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Full = SS.str();
  size_t P = Full.find("exit 0");
  ASSERT_NE(std::string::npos, P);
  Full.replace(P, 6, "exit 4");
  corruptT1(hash(9, 9), Full);
  EXPECT_FALSE(S.lookup(hash(9, 9)).has_value());
  EXPECT_EQ(1u, S.stats().T1Corrupt);
}

// -- Tier 2 ------------------------------------------------------------------

class Tier2Test : public StoreTest {
protected:
  /// Builds a shared-mode cache holding one entry keyed by a small
  /// obligation over f/k.
  void populate(engine::ReduceCache &C, logic::TermManager &M,
                int GuardConst = 2) {
    C.enableSharing();
    Term T = M.mkVar("t", Sort::Tid);
    Term F = M.mkVar("f", Sort::Array);
    Term K = M.mkVar("k", Sort::Int);
    Term Psi =
        M.mkAnd({M.mkForall({T}, M.mkGe(M.mkRead(F, T), M.mkInt(GuardConst))),
                 M.mkGe(K, M.mkInt(1))});
    engine::ReduceResult R;
    R.Ground = M.mkGe(K, M.mkInt(GuardConst));
    R.NumRounds = 2;
    R.NumAxioms = 3;
    R.CardVars[M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(GuardConst)))] = K;
    C.insertShared(Psi, Opts, {{K, M.mkTrue()}}, {}, R);
  }

  engine::ReduceOptions Opts;
};

TEST_F(Tier2Test, RoundTripServesHitsInAFreshCache) {
  ResultStore S(Dir);
  logic::TermManager M;
  engine::ReduceCache C;
  populate(C, M);
  EXPECT_EQ(1u, C.size());
  ASSERT_EQ(1u, S.saveReduceCache(C));

  engine::ReduceCache C2;
  C2.enableSharing();
  ASSERT_EQ(1u, S.loadReduceCache(C2));
  EXPECT_EQ(1u, C2.size());

  // A different manager rebuilding the same obligation must hit.
  logic::TermManager M2;
  Term T = M2.mkVar("t", Sort::Tid);
  Term F = M2.mkVar("f", Sort::Array);
  Term K = M2.mkVar("k", Sort::Int);
  Term Psi = M2.mkAnd({M2.mkForall({T}, M2.mkGe(M2.mkRead(F, T), M2.mkInt(2))),
                       M2.mkGe(K, M2.mkInt(1))});
  auto Hit = C2.lookupShared(M2, Psi, Opts, {{K, M2.mkTrue()}}, {});
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(2u, Hit->NumRounds);
  EXPECT_EQ(3u, Hit->NumAxioms);
  EXPECT_EQ(1u, Hit->CardVars.size());
  EXPECT_FALSE(Hit->Ground.isNull());

  // A semantically different obligation must miss.
  Term Psi3 = M2.mkAnd({M2.mkForall({T}, M2.mkGe(M2.mkRead(F, T), M2.mkInt(3))),
                        M2.mkGe(K, M2.mkInt(1))});
  EXPECT_FALSE(C2.lookupShared(M2, Psi3, Opts, {{K, M2.mkTrue()}}, {})
                   .has_value());
}

TEST_F(Tier2Test, CorruptTailKeepsParsedPrefix) {
  ResultStore S(Dir);
  logic::TermManager M;
  engine::ReduceCache C;
  populate(C, M, 2);
  populate(C, M, 3); // Second, distinct entry.
  ASSERT_EQ(2u, S.saveReduceCache(C));

  // Chop the file mid-way through the second entry.
  std::string Path = Dir + "/t2/reduce.cache";
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Full = SS.str();
  size_t Cut = Full.find("entry v1", Full.find("entry v1") + 1);
  ASSERT_NE(std::string::npos, Cut);
  Cut += 20; // Inside the second entry's body.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Full.substr(0, Cut);
  }

  engine::ReduceCache C2;
  C2.enableSharing();
  std::string Note;
  EXPECT_EQ(1u, S.loadReduceCache(C2, &Note)); // Prefix survived.
  EXPECT_EQ(1u, C2.size());
  EXPECT_NE(std::string::npos, Note.find("corrupt_store"));
  EXPECT_EQ(1u, S.stats().T2Corrupt);
}

TEST_F(Tier2Test, GarbageFileLoadsAsEmpty) {
  ResultStore S(Dir);
  {
    std::ofstream Out(Dir + "/t2/reduce.cache",
                      std::ios::binary | std::ios::trunc);
    Out << "complete nonsense \xff\xfe\n\n\n";
  }
  engine::ReduceCache C;
  C.enableSharing();
  std::string Note;
  EXPECT_EQ(0u, S.loadReduceCache(C, &Note));
  EXPECT_EQ(0u, C.size());
  EXPECT_NE(std::string::npos, Note.find("corrupt_store"));
}

TEST_F(Tier2Test, WrongVersionHeaderLoadsAsEmpty) {
  ResultStore S(Dir);
  logic::TermManager M;
  engine::ReduceCache C;
  populate(C, M);
  ASSERT_EQ(1u, S.saveReduceCache(C));
  std::string Path = Dir + "/t2/reduce.cache";
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Full = SS.str();
  size_t P = Full.find("t2 v1");
  ASSERT_NE(std::string::npos, P);
  Full.replace(P, 5, "t2 v2");
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Full;
  }
  engine::ReduceCache C2;
  C2.enableSharing();
  EXPECT_EQ(0u, S.loadReduceCache(C2));
  EXPECT_EQ(0u, C2.size());
  EXPECT_EQ(1u, S.stats().T2Corrupt);
}

// -- Term codec (the foundation both tiers stand on) -------------------------

TEST(TermIO, RoundTripsRepresentativeTerms) {
  logic::TermManager M;
  Term T = M.mkVar("t", Sort::Tid);
  Term F = M.mkVar("f", Sort::Array);
  Term K = M.mkVar("k weird\"name\\", Sort::Int);
  Term Terms[] = {
      M.mkTrue(),
      M.mkInt(-42),
      M.mkAdd({K, M.mkInt(3)}),
      M.mkIte(M.mkLe(K, M.mkInt(0)), K, M.mkNeg(K)),
      M.mkForall({T}, M.mkGe(M.mkRead(F, T), M.mkInt(1))),
      M.mkCard(T, M.mkLt(M.mkRead(F, T), K)),
      M.mkStore(F, T, M.mkInt(9)),
  };
  for (Term X : Terms) {
    std::string Text = logic::serializeTerm(X);
    std::string Err;
    Term Back = logic::deserializeTerm(M, Text, &Err);
    EXPECT_TRUE(Err.empty()) << Err << " for " << Text;
    // Hash-consing makes round-trip identity a pointer check.
    EXPECT_EQ(X, Back) << Text;
  }
}

TEST(TermIO, MalformedInputsNeverCrash) {
  logic::TermManager M;
  const char *Bad[] = {
      "",
      "(",
      ")",
      "(and",
      "(v q \"x\")",         // Bad sort code.
      "(+ #t #f)",           // Sort mismatch.
      "(rd (v i \"k\") (v t \"t\"))", // rd of non-array.
      "(card (v i \"k\") #t)",        // Card binder must be Tid.
      "(= (v i \"a\"))",              // Arity.
      "(v t \"t\") trailing",
      "(unknownop #t #t)",
  };
  for (const char *Text : Bad) {
    std::string Err;
    Term X = logic::deserializeTerm(M, Text, &Err);
    EXPECT_TRUE(X.isNull()) << Text;
    EXPECT_FALSE(Err.empty()) << Text;
  }
  // Deep nesting is bounded, not stack-fatal.
  std::string Deep;
  for (int I = 0; I < 5000; ++I)
    Deep += "(not ";
  Deep += "#t";
  for (int I = 0; I < 5000; ++I)
    Deep += ")";
  std::string Err;
  EXPECT_TRUE(logic::deserializeTerm(M, Deep, &Err).isNull());
  EXPECT_FALSE(Err.empty());
}

TEST(TermIO, NullTermRoundTrips) {
  logic::TermManager M;
  EXPECT_EQ("()", logic::serializeTerm(Term()));
  std::string Err;
  Term Back = logic::deserializeTerm(M, "()", &Err);
  EXPECT_TRUE(Back.isNull());
  EXPECT_TRUE(Err.empty());
}

} // namespace
