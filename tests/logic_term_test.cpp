//===- tests/logic_term_test.cpp - Term AST unit tests ----------------------===//
//
// Part of sharpie. Unit tests for hash-consing, builder normalization,
// substitution, free variables, NNF, and printing.
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace sharpie::logic;

namespace {

class TermTest : public ::testing::Test {
protected:
  TermManager M;
  Term X = M.mkVar("x", Sort::Int);
  Term Y = M.mkVar("y", Sort::Int);
  Term T = M.mkVar("t", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);
  Term F = M.mkVar("f", Sort::Array);
};

TEST_F(TermTest, HashConsingGivesPointerEquality) {
  Term A = M.mkAdd(X, Y);
  Term B = M.mkAdd(X, Y);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.node(), B.node());
}

TEST_F(TermTest, VariablesAreUniquePerName) {
  EXPECT_EQ(M.mkVar("x", Sort::Int), X);
  Term Fresh1 = M.freshVar("x", Sort::Int);
  Term Fresh2 = M.freshVar("x", Sort::Int);
  EXPECT_NE(Fresh1, Fresh2);
  EXPECT_NE(Fresh1, X);
}

TEST_F(TermTest, AddFoldsConstantsAndFlattens) {
  Term A = M.mkAdd({M.mkInt(2), X, M.mkInt(3)});
  // 2 + x + 3 contains a single folded constant 5.
  ASSERT_EQ(A.kind(), Kind::Add);
  int64_t ConstSum = 0;
  for (Term K : A->kids())
    if (K.kind() == Kind::IntConst)
      ConstSum += K->value();
  EXPECT_EQ(ConstSum, 5);
  Term Nested = M.mkAdd(A, Y);
  EXPECT_EQ(Nested.kind(), Kind::Add);
  for (Term K : Nested->kids())
    EXPECT_NE(K.kind(), Kind::Add) << "Add must be flattened";
}

TEST_F(TermTest, ArithmeticIdentities) {
  EXPECT_EQ(M.mkSub(X, M.mkInt(0)), X);
  EXPECT_EQ(M.mkSub(X, X), M.mkInt(0));
  EXPECT_EQ(M.mkMul(M.mkInt(1), X), X);
  EXPECT_EQ(M.mkMul(M.mkInt(0), X), M.mkInt(0));
  EXPECT_EQ(M.mkNeg(M.mkNeg(X)), X);
  EXPECT_EQ(M.mkNeg(M.mkInt(7)), M.mkInt(-7));
}

TEST_F(TermTest, BooleanIdentities) {
  Term P = M.mkLe(X, Y);
  EXPECT_EQ(M.mkAnd(P, M.mkTrue()), P);
  EXPECT_EQ(M.mkAnd(P, M.mkFalse()), M.mkFalse());
  EXPECT_EQ(M.mkOr(P, M.mkTrue()), M.mkTrue());
  EXPECT_EQ(M.mkOr(P, M.mkFalse()), P);
  EXPECT_EQ(M.mkNot(M.mkNot(P)), P);
  EXPECT_EQ(M.mkAnd(P, P), P);
  EXPECT_EQ(M.mkImplies(P, P), M.mkTrue());
}

TEST_F(TermTest, ComparisonFolding) {
  EXPECT_EQ(M.mkLe(M.mkInt(1), M.mkInt(2)), M.mkTrue());
  EXPECT_EQ(M.mkLt(M.mkInt(2), M.mkInt(2)), M.mkFalse());
  EXPECT_EQ(M.mkEq(M.mkInt(3), M.mkInt(3)), M.mkTrue());
  EXPECT_EQ(M.mkEq(X, X), M.mkTrue());
  EXPECT_EQ(M.mkGe(X, Y), M.mkLe(Y, X));
  EXPECT_EQ(M.mkGt(X, Y), M.mkLt(Y, X));
}

TEST_F(TermTest, EqIsCanonicallyOrdered) {
  EXPECT_EQ(M.mkEq(X, Y), M.mkEq(Y, X));
}

TEST_F(TermTest, ReadOverStoreSameIndexFolds) {
  Term St = M.mkStore(F, T, X);
  EXPECT_EQ(M.mkRead(St, T), X);
  // Different symbolic index must not fold.
  EXPECT_EQ(M.mkRead(St, U).kind(), Kind::Read);
}

TEST_F(TermTest, FreeVarsSeeThroughBinders) {
  Term Body = M.mkEq(M.mkRead(F, T), X);
  Term Q = M.mkForall({T}, Body);
  std::set<Term> FV = freeVars(Q);
  EXPECT_TRUE(FV.count(F));
  EXPECT_TRUE(FV.count(X));
  EXPECT_FALSE(FV.count(T));
}

TEST_F(TermTest, CardBindsItsVariable) {
  Term C = M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(2)));
  EXPECT_EQ(C.sort(), Sort::Int);
  std::set<Term> FV = freeVars(C);
  EXPECT_TRUE(FV.count(F));
  EXPECT_FALSE(FV.count(T));
}

TEST_F(TermTest, SubstituteReplacesFreeOnly) {
  Term Body = M.mkEq(M.mkRead(F, T), X);
  Term Q = M.mkForall({T}, Body);
  Subst S;
  S[X] = M.mkInt(5);
  Term R = substitute(M, Q, S);
  EXPECT_EQ(R, M.mkForall({T}, M.mkEq(M.mkRead(F, T), M.mkInt(5))));
  // Substituting the bound variable is a no-op.
  Subst S2;
  S2[T] = U;
  EXPECT_EQ(substitute(M, Q, S2), Q);
}

TEST_F(TermTest, SubstituteAvoidsCapture) {
  // Substituting u -> t under "forall t" must rename the binder so the
  // free t of the replacement is not captured.
  Term G = M.mkVar("g", Sort::Array);
  Term Q2 = M.mkForall({T}, M.mkEq(M.mkRead(F, T), M.mkRead(G, U)));
  Subst S3;
  S3[U] = T; // replacement mentions the bound variable t
  Term R = substitute(M, Q2, S3);
  ASSERT_EQ(R.kind(), Kind::Forall);
  Term NewBinder = R->binders()[0];
  EXPECT_NE(NewBinder, T) << "binder must be renamed to avoid capture";
  std::set<Term> FV = freeVars(R);
  EXPECT_TRUE(FV.count(T)) << "t must now occur free (from g(t))";
}

TEST_F(TermTest, NnfPushesNegations) {
  Term P = M.mkLe(X, Y);
  Term Q = M.mkLt(Y, X);
  Term Phi = M.mkNot(M.mkAnd(P, M.mkImplies(Q, P)));
  Term N = toNnf(M, Phi);
  EXPECT_FALSE(containsKind(N, Kind::Implies));
  // NNF is logically equivalent: ~(P /\ (Q -> P)) == ~P \/ (Q /\ ~P).
  EXPECT_EQ(N, M.mkOr(M.mkNot(P), M.mkAnd(Q, M.mkNot(P))));
}

TEST_F(TermTest, NnfFlipsQuantifiers) {
  Term Phi = M.mkNot(M.mkForall({T}, M.mkEq(M.mkRead(F, T), M.mkInt(1))));
  Term N = toNnf(M, Phi);
  ASSERT_EQ(N.kind(), Kind::Exists);
  EXPECT_EQ(N->body(),
            M.mkNot(M.mkEq(M.mkRead(F, T), M.mkInt(1))));
}

TEST_F(TermTest, PrinterProducesPaperSyntax) {
  Term C = M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(2)));
  EXPECT_EQ(toString(C), "#{t | (f(t) = 2)}");
  Term Q = M.mkForall({T, U}, M.mkImplies(M.mkEq(M.mkRead(F, T),
                                                 M.mkRead(F, U)),
                                          M.mkEq(T, U)));
  EXPECT_EQ(toString(Q),
            "(forall t,u. ((f(t) = f(u)) -> (t = u)))");
}

TEST_F(TermTest, CollectSubtermsFindsCards) {
  Term C = M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(2)));
  Term Phi = M.mkLe(C, X);
  std::set<Term> Cards =
      collectSubterms(Phi, [](Term S) { return S.kind() == Kind::Card; });
  ASSERT_EQ(Cards.size(), 1u);
  EXPECT_EQ(*Cards.begin(), C);
}

TEST_F(TermTest, ForallMergesNestedBinders) {
  Term Inner = M.mkForall({U}, M.mkEq(T, U));
  Term Outer = M.mkForall({T}, Inner);
  ASSERT_EQ(Outer.kind(), Kind::Forall);
  EXPECT_EQ(Outer->binders().size(), 2u);
}

} // namespace
