//===- tests/reduce_test.cpp - ELIMCARD + instantiation pipeline tests -------===//
//
// Part of sharpie. Exercises the reduction pipeline on the worked examples
// of the paper: Sec. 3 (increment program), Sec. 5 Example 1 (axiom
// instantiation), Sec. 5.2 Example 2 (Venn decomposition), and Sec. 5.3
// Example 3 (documented incompletenesses).
//
//===----------------------------------------------------------------------===//

#include "engine/Reduce.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace sharpie;
using namespace sharpie::logic;
using sharpie::smt::SatResult;

namespace {

class ReduceTest : public ::testing::Test {
protected:
  /// Reduces Psi and reports the SMT verdict on the ground residue.
  SatResult checkSat(Term Psi, bool Venn = false,
                     std::vector<std::pair<Term, Term>> External = {}) {
    engine::ReduceOptions Opts;
    Opts.Card.Venn = Venn;
    std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
    engine::ReduceResult R =
        engine::reduceToGround(M, Psi, Opts, Oracle.get(), External);
    std::unique_ptr<smt::SmtSolver> S = smt::makeZ3Solver(M);
    S->add(R.Ground);
    return S->check();
  }

  TermManager M;
  Term T = M.mkVar("t", Sort::Tid);
  Term J = M.mkVar("j", Sort::Tid);
  Term F = M.mkVar("f", Sort::Array);
  Term G = M.mkVar("g", Sort::Array);
  Term KV = M.mkVar("k", Sort::Int);
  Term LV = M.mkVar("l", Sort::Int);
};

// Paper Sec. 5, Example 1, first formula:
// (forall t: f(t) = 1) /\ #{t | f(t) >= 2} = k /\ k >= 1 is unsat.
TEST_F(ReduceTest, Example1EmptySetAxiom) {
  Term Card = M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(2)));
  Term Psi = M.mkAnd({M.mkForall({T}, M.mkEq(M.mkRead(F, T), M.mkInt(1))),
                      M.mkEq(Card, KV), M.mkGe(KV, M.mkInt(1))});
  EXPECT_EQ(checkSat(Psi), SatResult::Unsat);
}

// Same setup but k = 0 is satisfiable: the reduction must not over-prune.
TEST_F(ReduceTest, Example1SatisfiableVariant) {
  Term Card = M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(2)));
  Term Psi = M.mkAnd({M.mkForall({T}, M.mkEq(M.mkRead(F, T), M.mkInt(1))),
                      M.mkEq(Card, KV), M.mkEq(KV, M.mkInt(0))});
  EXPECT_EQ(checkSat(Psi), SatResult::Sat);
}

// Paper Sec. 5, Example 1, second formula (update axiom):
// #{t|f(t)=2}=k /\ #{t|g(t)=2}=l /\ f(j)=1 /\ g=f[j<-2] /\ l<=k is unsat,
// because the update axiom derives l = k + 1.
TEST_F(ReduceTest, Example1UpdateAxiom) {
  Term CardF = M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(2)));
  Term CardG = M.mkCard(T, M.mkEq(M.mkRead(G, T), M.mkInt(2)));
  Term Psi = M.mkAnd({M.mkEq(CardF, KV), M.mkEq(CardG, LV),
                      M.mkEq(M.mkRead(F, J), M.mkInt(1)),
                      M.mkEq(G, M.mkStore(F, J, M.mkInt(2))),
                      M.mkLe(LV, KV)});
  EXPECT_EQ(checkSat(Psi), SatResult::Unsat);
}

// Update in the other direction: when the updated position was already in
// the set and leaves it, l = k - 1, so l >= k is unsat.
TEST_F(ReduceTest, UpdateAxiomRemoval) {
  Term CardF = M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(2)));
  Term CardG = M.mkCard(T, M.mkEq(M.mkRead(G, T), M.mkInt(2)));
  Term Psi = M.mkAnd({M.mkEq(CardF, KV), M.mkEq(CardG, LV),
                      M.mkEq(M.mkRead(F, J), M.mkInt(2)),
                      M.mkEq(G, M.mkStore(F, J, M.mkInt(0))),
                      M.mkGe(LV, KV)});
  EXPECT_EQ(checkSat(Psi), SatResult::Unsat);
}

// CARD>0 derived rule: a set with a known member has positive cardinality.
TEST_F(ReduceTest, InhabitedSetPositive) {
  Term Card = M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(2)));
  Term Psi = M.mkAnd({M.mkEq(Card, KV),
                      M.mkEq(M.mkRead(F, J), M.mkInt(5)),
                      M.mkLe(KV, M.mkInt(0))});
  EXPECT_EQ(checkSat(Psi), SatResult::Unsat);
}

// CARD<= between sets: {f(t) >= 3} is a subset of {f(t) >= 2}.
TEST_F(ReduceTest, SubsetMonotone) {
  Term C3 = M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(3)));
  Term C2 = M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(2)));
  Term Psi = M.mkAnd({M.mkEq(C3, KV), M.mkEq(C2, LV), M.mkGt(KV, LV)});
  EXPECT_EQ(checkSat(Psi), SatResult::Unsat);
}

// CARD<: a strict witness (a member of the superset that is not in the
// subset) forces a strict inequality.
TEST_F(ReduceTest, StrictSubsetStrictCount) {
  Term C3 = M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(3)));
  Term C2 = M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(2)));
  Term Psi = M.mkAnd({M.mkEq(C3, KV), M.mkEq(C2, LV),
                      M.mkEq(M.mkRead(F, J), M.mkInt(2)), // in C2 \ C3
                      M.mkGe(KV, LV)});
  EXPECT_EQ(checkSat(Psi), SatResult::Unsat);
}

// Paper Sec. 5.2, Example 2 (one-third rule argument): two sets that each
// hold more than two thirds of n processes cannot be disjoint. Requires the
// Venn decomposition; the order axioms alone cannot refute it.
TEST_F(ReduceTest, Example2VennDecomposition) {
  Term N = M.mkVar("n", Sort::Int);
  Term A = M.mkEq(M.mkRead(F, T), M.mkInt(1));
  Term B = M.mkEq(M.mkRead(G, T), M.mkInt(1));
  Term CardA = M.mkCard(T, A);
  Term CardB = M.mkCard(T, B);
  Term CardAB = M.mkCard(T, M.mkAnd(A, B));
  // 3*#A > 2n /\ 3*#B > 2n /\ #Omega = n /\ #(A /\ B) = 0.
  Term Psi = M.mkAnd({M.mkGt(M.mkMul(M.mkInt(3), CardA),
                             M.mkMul(M.mkInt(2), N)),
                      M.mkGt(M.mkMul(M.mkInt(3), CardB),
                             M.mkMul(M.mkInt(2), N)),
                      M.mkEq(CardAB, M.mkInt(0))});
  std::vector<std::pair<Term, Term>> Omega = {{N, M.mkTrue()}};
  EXPECT_EQ(checkSat(Psi, /*Venn=*/true, Omega), SatResult::Unsat);
  // Without Venn the order axioms are too weak (paper Sec. 5.2).
  EXPECT_EQ(checkSat(Psi, /*Venn=*/false, Omega), SatResult::Sat);
}

// Paper Sec. 5.3, Example 3: the swap-induced equality between #{f=1} and
// #{g=1} is *not* derivable -- the axiomatization deliberately trades this
// completeness for tractability. The test documents the limitation.
TEST_F(ReduceTest, Example3SwapLimitation) {
  Term I = M.mkVar("i", Sort::Tid);
  Term CardF = M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(1)));
  Term CardG = M.mkCard(T, M.mkEq(M.mkRead(G, T), M.mkInt(1)));
  Term Swap = M.mkAnd(
      {M.mkNe(I, J),
       M.mkForall({T}, M.mkImplies(M.mkAnd(M.mkNe(T, I), M.mkNe(T, J)),
                                   M.mkAnd(M.mkEq(M.mkRead(F, T),
                                                  M.mkRead(G, T)),
                                           M.mkEq(M.mkRead(G, T),
                                                  M.mkInt(1))))),
       M.mkEq(M.mkRead(F, I), M.mkInt(1)), M.mkEq(M.mkRead(G, I), M.mkInt(2)),
       M.mkEq(M.mkRead(F, J), M.mkInt(2)), M.mkEq(M.mkRead(G, J), M.mkInt(1))});
  Term Psi = M.mkAnd({Swap, M.mkEq(CardF, KV), M.mkEq(CardG, LV),
                      M.mkNe(KV, LV)});
  // Semantically unsat, but the axioms cannot refute it.
  EXPECT_EQ(checkSat(Psi), SatResult::Sat);
}

// Paper Sec. 3: the increment program. inv = (#{t | pc(t) >= 2} <= a).
// All three Horn clauses hold under the reduction.
TEST_F(ReduceTest, Section3IncrementProgram) {
  Term PC = M.mkVar("pc", Sort::Array);
  Term PCp = M.mkVar("pc_post", Sort::Array);
  Term AV = M.mkVar("a", Sort::Int);
  Term APp = M.mkVar("a_post", Sort::Int);
  Term Mover = M.mkVar("mover", Sort::Tid);
  auto Inv = [&](Term Arr, Term Scalar) {
    return M.mkLe(M.mkCard(T, M.mkGe(M.mkRead(Arr, T), M.mkInt(2))), Scalar);
  };

  // (a) init => inv: (forall t: pc(t)=1) /\ a=0 /\ !inv is unsat.
  Term Init = M.mkAnd(M.mkForall({T}, M.mkEq(M.mkRead(PC, T), M.mkInt(1))),
                      M.mkEq(AV, M.mkInt(0)));
  EXPECT_EQ(checkSat(M.mkAnd(Init, M.mkNot(Inv(PC, AV)))), SatResult::Unsat);

  // (b) inv /\ next => inv': counterexample query is unsat.
  Term Next = M.mkAnd({M.mkEq(M.mkRead(PC, Mover), M.mkInt(1)),
                       M.mkEq(PCp, M.mkStore(PC, Mover, M.mkInt(2))),
                       M.mkEq(APp, M.mkAdd(AV, M.mkInt(1)))});
  EXPECT_EQ(checkSat(M.mkAnd({Inv(PC, AV), Next, M.mkNot(Inv(PCp, APp))})),
            SatResult::Unsat);

  // (c) inv => safe: inv /\ (exists t: pc(t) > 1) /\ a <= 0 is unsat.
  Term Unsafe = M.mkAnd(M.mkExists({T}, M.mkGt(M.mkRead(PC, T), M.mkInt(1))),
                        M.mkLe(AV, M.mkInt(0)));
  EXPECT_EQ(checkSat(M.mkAnd(Inv(PC, AV), Unsafe)), SatResult::Unsat);

  // Sanity: dropping the invariant from (c) must leave it satisfiable.
  EXPECT_EQ(checkSat(Unsafe), SatResult::Sat);
}

} // namespace
