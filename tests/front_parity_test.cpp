//===- tests/front_parity_test.cpp - .sharpie vs hand-built bundle parity -----===//
//
// Part of sharpie. Round-trip check for the textual frontend: parsing
// examples/protocols/*.sharpie and running #Pi must give the same verdict
// (and the same template metadata) as the hand-built protocols::make*
// bundle under identical SynthOptions. Increment and cache run the full
// set search; the ticket lock pins the paper's set bodies on BOTH sides
// so the parity claim stays cheap on one core.
//
//===----------------------------------------------------------------------===//

#include "front/Front.h"
#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <gtest/gtest.h>

#ifndef SHARPIE_REPO_ROOT
#error "SHARPIE_REPO_ROOT must be defined by the build"
#endif

using namespace sharpie;
using namespace sharpie::protocols;
using logic::Sort;
using logic::Term;
using logic::TermManager;

namespace {

std::string protoPath(const char *Stem) {
  return std::string(SHARPIE_REPO_ROOT) + "/examples/protocols/" + Stem +
         ".sharpie";
}

struct Side {
  TermManager M;
  std::unique_ptr<sys::ParamSystem> Sys;
  synth::ShapeTemplate Shape;
  Term QGuard;
  explct::ExplicitOptions Explicit;
  bool ExpectSafe = true;
  bool NeedsVenn = false;
};

void fromFactory(Side &S, BundleFactory Make) {
  ProtocolBundle B = Make(S.M);
  S.Sys = std::move(B.Sys);
  S.Shape = B.Shape;
  S.QGuard = B.QGuard;
  S.Explicit = B.Explicit;
  S.ExpectSafe = B.ExpectSafe;
  S.NeedsVenn = B.NeedsVenn;
}

void fromFile(Side &S, const char *Stem) {
  front::LoadResult R = front::loadProtocolFile(S.M, protoPath(Stem));
  ASSERT_TRUE(R.ok()) << (R.Error ? R.Error->render() : "");
  S.Sys = std::move(R.Bundle->Sys);
  S.Shape = R.Bundle->Shape;
  S.QGuard = R.Bundle->QGuard;
  S.Explicit = R.Bundle->Explicit;
  S.ExpectSafe = R.Bundle->ExpectSafe;
  S.NeedsVenn = R.Bundle->NeedsVenn;
}

synth::SynthResult run(Side &S, const std::vector<Term> &Fixed = {}) {
  synth::SynthOptions Opts;
  Opts.Shape = S.Shape;
  Opts.QGuard = S.QGuard;
  Opts.Reduce.Card.Venn = S.NeedsVenn;
  Opts.Explicit = S.Explicit;
  Opts.FixedSetBodies = Fixed;
  return synth::synthesize(*S.Sys, Opts);
}

std::vector<std::string> strs(const std::vector<Term> &Ts) {
  std::vector<std::string> Out;
  for (Term T : Ts)
    Out.push_back(logic::toString(T));
  return Out;
}

void expectMetadataParity(const Side &File, const Side &Hand) {
  EXPECT_EQ(File.Shape.NumSets, Hand.Shape.NumSets);
  EXPECT_EQ(File.Shape.Quantifiers, Hand.Shape.Quantifiers);
  EXPECT_EQ(File.ExpectSafe, Hand.ExpectSafe);
  EXPECT_EQ(File.NeedsVenn, Hand.NeedsVenn);
  EXPECT_EQ(File.Sys->mode(), Hand.Sys->mode());
  EXPECT_EQ(File.Sys->globals().size(), Hand.Sys->globals().size());
  EXPECT_EQ(File.Sys->locals().size(), Hand.Sys->locals().size());
  EXPECT_EQ(File.Sys->transitions().size(), Hand.Sys->transitions().size());
}

TEST(FrontParity, Increment) {
  Side File, Hand;
  fromFile(File, "increment");
  fromFactory(Hand, makeIncrement);
  expectMetadataParity(File, Hand);
  synth::SynthResult RF = run(File), RH = run(Hand);
  EXPECT_TRUE(RH.Verified) << RH.Note;
  EXPECT_EQ(RF.Verified, RH.Verified) << RF.Note;
  // The full search is deterministic and both systems declare the same
  // variables in the same order, so the inferred bodies print identically.
  EXPECT_EQ(strs(RF.SetBodies), strs(RH.SetBodies));
}

TEST(FrontParity, Cache) {
  Side File, Hand;
  fromFile(File, "cache");
  fromFactory(Hand, makeCache);
  expectMetadataParity(File, Hand);
  synth::SynthResult RF = run(File), RH = run(Hand);
  EXPECT_TRUE(RH.Verified) << RH.Note;
  EXPECT_EQ(RF.Verified, RH.Verified) << RF.Note;
  EXPECT_EQ(strs(RF.SetBodies), strs(RH.SetBodies));
}

// The paper's ticket-lock template (Fig. 1), concretized over a side's own
// manager: s1 = m(t) <= serv /\ pc(t) = 2, s2 = pc(t) = 3, s3 = m(t) = q.
std::vector<Term> ticketBodies(Side &S) {
  TermManager &M = S.M;
  synth::Formals F = synth::formalsFor(M, S.Shape);
  Term PC = M.mkVar("pc", Sort::Array);
  Term Mv = M.mkVar("m", Sort::Array);
  Term Serv = M.mkVar("serv", Sort::Int);
  Term T = F.BoundVar;
  return {M.mkAnd(M.mkLe(M.mkRead(Mv, T), Serv),
                  M.mkEq(M.mkRead(PC, T), M.mkInt(2))),
          M.mkEq(M.mkRead(PC, T), M.mkInt(3)),
          M.mkEq(M.mkRead(Mv, T), F.Q[0])};
}

TEST(FrontParity, TicketLockWithPinnedTemplate) {
  Side File, Hand;
  fromFile(File, "ticket_lock");
  fromFactory(Hand, makeTicketLock);
  expectMetadataParity(File, Hand);
  synth::SynthResult RF = run(File, ticketBodies(File));
  synth::SynthResult RH = run(Hand, ticketBodies(Hand));
  EXPECT_TRUE(RH.Verified) << RH.Note;
  EXPECT_EQ(RF.Verified, RH.Verified) << RF.Note;
  EXPECT_EQ(strs(RF.Atoms), strs(RH.Atoms));
}

} // namespace
