#!/bin/sh
# Part of sharpie. Lint: the library never prints directly. All human
# output from src/ goes through the obs layer (leveled log, trace sinks)
# so drivers control verbosity and destinations; raw printf-family calls
# belong only in src/obs/ (the sinks themselves), tools/, examples/ and
# bench/. Checked by grep so a stray debug fprintf fails CI, not review.
#
#   usage: lint_logging.sh <repo-root>
#
# \b keeps snprintf/vsnprintf (string formatting, no I/O) out of scope.
ROOT=${1:?usage: lint_logging.sh repo-root}

BAD=$(grep -rnE '\b(printf|fprintf|fputs|puts)[[:space:]]*\(' \
        "$ROOT/src" --include='*.cpp' --include='*.h' \
      | grep -v "^$ROOT/src/obs/")

if [ -n "$BAD" ]; then
  echo "raw printing in src/ outside src/obs/ (route it through the"
  echo "tracer's log, or return a string and let the driver print):"
  echo "$BAD"
  exit 1
fi
exit 0
