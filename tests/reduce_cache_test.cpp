//===- tests/reduce_cache_test.cpp - Reduction memoization tests --------------===//
//
// Part of sharpie. The ReduceCache memoizes reduceToGround per (input
// formula id, axiom configuration, counters, extra index terms). Because
// terms are hash-consed, rebuilding the same obligation yields the same
// id and must hit; changing any axiom knob or auxiliary input must miss.
//
//===----------------------------------------------------------------------===//

#include "engine/Reduce.h"
#include "logic/TermOps.h"
#include "protocols/Protocols.h"

#include <gtest/gtest.h>

using namespace sharpie;
using namespace sharpie::logic;

namespace {

class ReduceCacheTest : public ::testing::Test {
protected:
  Term obligation() {
    Term Card = M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(2)));
    return M.mkAnd({M.mkForall({T}, M.mkEq(M.mkRead(F, T), M.mkInt(1))),
                    M.mkEq(Card, KV), M.mkGe(KV, M.mkInt(1))});
  }

  engine::ReduceResult reduce(engine::ReduceCache &Cache,
                              const engine::ReduceOptions &Opts,
                              Term Psi) {
    std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
    return engine::reduceToGroundCached(&Cache, M, Psi, Opts, Oracle.get());
  }

  TermManager M;
  Term T = M.mkVar("t", Sort::Tid);
  Term F = M.mkVar("f", Sort::Array);
  Term KV = M.mkVar("k", Sort::Int);
};

TEST_F(ReduceCacheTest, RepeatedObligationHits) {
  engine::ReduceCache Cache;
  engine::ReduceOptions Opts;
  engine::ReduceResult R1 = reduce(Cache, Opts, obligation());
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 1u);

  // Rebuilding the obligation from scratch hash-conses to the same term,
  // so the second reduction is a pure lookup with an identical result.
  engine::ReduceResult R2 = reduce(Cache, Opts, obligation());
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(R1.Ground, R2.Ground);
  EXPECT_EQ(R1.NumAxioms, R2.NumAxioms);
  EXPECT_EQ(R1.NumInstances, R2.NumInstances);
}

TEST_F(ReduceCacheTest, AxiomConfigChangeMisses) {
  engine::ReduceCache Cache;
  engine::ReduceOptions Opts;
  reduce(Cache, Opts, obligation());

  // Any knob that changes the reduction's output must change the key.
  engine::ReduceOptions VennOpts = Opts;
  VennOpts.Card.Venn = true;
  reduce(Cache, VennOpts, obligation());
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 2u);

  engine::ReduceOptions RoundOpts = Opts;
  RoundOpts.MaxRounds = Opts.MaxRounds + 1;
  reduce(Cache, RoundOpts, obligation());
  EXPECT_EQ(Cache.misses(), 3u);

  // The original configuration still hits its old entry.
  reduce(Cache, Opts, obligation());
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 3u);
}

TEST_F(ReduceCacheTest, DistinctObligationsMiss) {
  engine::ReduceCache Cache;
  engine::ReduceOptions Opts;
  reduce(Cache, Opts, obligation());
  reduce(Cache, Opts, M.mkAnd(obligation(), M.mkGe(KV, M.mkInt(2))));
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 2u);
}

TEST_F(ReduceCacheTest, ExternalCountersPartOfKey) {
  engine::ReduceCache Cache;
  engine::ReduceOptions Opts;
  Term N = M.mkVar("n", Sort::Int);
  std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
  engine::reduceToGroundCached(&Cache, M, obligation(), Opts, Oracle.get());
  engine::reduceToGroundCached(&Cache, M, obligation(), Opts, Oracle.get(),
                               {{N, M.mkTrue()}});
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 2u);

  // Same counters again: hit.
  engine::reduceToGroundCached(&Cache, M, obligation(), Opts, Oracle.get(),
                               {{N, M.mkTrue()}});
  EXPECT_EQ(Cache.hits(), 1u);
}

TEST_F(ReduceCacheTest, NullCacheIsPlainCall) {
  engine::ReduceOptions Opts;
  std::unique_ptr<smt::SmtSolver> Oracle = smt::makeZ3Solver(M);
  engine::ReduceResult R = engine::reduceToGroundCached(
      nullptr, M, obligation(), Opts, Oracle.get());
  EXPECT_FALSE(R.Ground.isNull());
}

// Within one synthesis run the cache never hits -- the ranked tuple
// enumeration is duplicate-free and each clause formula embeds its tuple's
// measurement terms, so every reduction input is a distinct hash-consed
// term (the all-zero cache_hits columns in BENCH_PR1/PR2 are by
// construction, not a keying bug; see ReduceCache's doc). Hits come from
// *sharing* a cache across runs on the same TermManager, which
// SynthOptions::ReuseReduceCache enables. Both halves pinned here.
TEST(ReduceCacheSharing, HitsComeFromCrossRunSharingOnly) {
  logic::TermManager M;
  protocols::ProtocolBundle B = protocols::makeIncrement(M);
  engine::ReduceCache Shared;
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = 1; // The parallel twin lives in synth_parallel_test.
  Opts.ReuseReduceCache = &Shared;

  synth::SynthResult R1 = synth::synthesize(*B.Sys, Opts);
  ASSERT_TRUE(R1.Verified) << R1.Note;
  EXPECT_EQ(R1.Stats.CacheHits, 0u) << "single-run hits must be impossible";
  EXPECT_GT(R1.Stats.CacheMisses, 0u);

  // Re-verification on the same manager replays mostly identical
  // obligations: now the lookups land. (Not *all* of them: a few
  // obligations embed variables gensymmed fresh per run, so a residual
  // trickle of misses is expected -- the pin is that hits dominate.)
  synth::SynthResult R2 = synth::synthesize(*B.Sys, Opts);
  ASSERT_TRUE(R2.Verified) << R2.Note;
  EXPECT_GT(R2.Stats.CacheHits, 0u) << "second run must reuse reductions";
  EXPECT_LT(R2.Stats.CacheMisses, R1.Stats.CacheMisses);
  EXPECT_GT(R2.Stats.CacheHits, R2.Stats.CacheMisses);
}

} // namespace
