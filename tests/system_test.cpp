//===- tests/system_test.cpp - ParamSystem modeling-layer tests ----------------===//
//
// Part of sharpie. Unit tests for the system layer: priming, transition
// relation construction (stores at the mover, frames, sync rounds, array
// writes at arbitrary indices), and the safety proof rule.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"
#include "system/System.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace sharpie;
using namespace sharpie::logic;
using sys::ParamSystem;
using sys::Transition;

namespace {

TEST(System, PrimingCreatesTwins) {
  TermManager M;
  ParamSystem S(M, "sys");
  Term G = S.addGlobal("g");
  Term L = S.addLocal("l");
  EXPECT_EQ(S.post(G), M.mkVar("g'", Sort::Int));
  EXPECT_EQ(S.post(L), M.mkVar("l'", Sort::Array));
  EXPECT_EQ(S.primeSubst().at(G), S.post(G));
}

TEST(System, AsyncTransitionBuildsStoresAndFrames) {
  TermManager M;
  ParamSystem S(M, "sys");
  Term G = S.addGlobal("g");
  Term H = S.addGlobal("h");
  Term L = S.addLocal("l");
  Term K = S.addLocal("k");
  Transition &T = S.addTransition("t", M.mkEq(S.my(L), M.mkInt(1)));
  T.GlobalUpd[G] = M.mkAdd(G, M.mkInt(1));
  T.LocalUpd[L] = M.mkInt(2);
  Term Rel = S.transitionFormula(T);
  // Updated local becomes a store at self; untouched one is framed.
  EXPECT_TRUE(containsKind(Rel, Kind::Store));
  std::set<Term> Eqs = collectSubterms(Rel, [&](Term X) {
    return X.kind() == Kind::Eq && X->kid(0).sort() == Sort::Array;
  });
  bool FoundFrame = false, FoundStore = false;
  for (Term E : Eqs) {
    if (E == M.mkEq(S.post(K), K))
      FoundFrame = true;
    if (E == M.mkEq(S.post(L), M.mkStore(L, S.self(), M.mkInt(2))))
      FoundStore = true;
  }
  EXPECT_TRUE(FoundFrame);
  EXPECT_TRUE(FoundStore);
  // Untouched global framed, updated one equated to its new value.
  std::set<Term> FV = freeVars(Rel);
  EXPECT_TRUE(FV.count(S.post(H)));
  EXPECT_TRUE(FV.count(S.post(G)));
}

TEST(System, ArrayWriteAtChosenIndex) {
  TermManager M;
  ParamSystem S(M, "sys");
  Term L = S.addLocal("color");
  Transition &T = S.addTransition("w", M.mkTrue());
  Term Addr = S.addTidChoice(T, "addr");
  T.Writes.push_back({L, Addr, M.mkInt(1)});
  Term Rel = S.transitionFormula(T);
  std::set<Term> Stores =
      collectSubterms(Rel, [](Term X) { return X.kind() == Kind::Store; });
  ASSERT_EQ(Stores.size(), 1u);
  EXPECT_EQ(Stores.begin()->node()->kid(1), Addr);
}

TEST(System, SyncRoundQuantifiesTheRelation) {
  TermManager M;
  ParamSystem S(M, "sys", sys::Composition::Sync);
  Term L = S.addLocal("x");
  Term Rel = M.mkEq(M.mkRead(S.post(L), S.self()), M.mkRead(L, S.self()));
  S.addSyncRound("round", Rel);
  Term F = S.transitionFormula(S.transitions()[0]);
  EXPECT_TRUE(containsKind(F, Kind::Forall));
  // self() must have been replaced by the round-quantified variable.
  EXPECT_FALSE(freeVars(F).count(S.self()));
}

TEST(System, SafetyObligationsFollowTheProofRule) {
  TermManager M;
  ParamSystem S(M, "sys");
  Term G = S.addGlobal("g");
  S.setInit(M.mkEq(G, M.mkInt(0)));
  S.setSafe(M.mkGe(G, M.mkInt(0)));
  Transition &T = S.addTransition("inc", M.mkTrue());
  T.GlobalUpd[G] = M.mkAdd(G, M.mkInt(1));
  Term Inv = M.mkGe(G, M.mkInt(0));
  std::vector<sys::Obligation> Obs = sys::safetyObligations(S, Inv);
  ASSERT_EQ(Obs.size(), 3u); // init, one transition, safe.
  EXPECT_EQ(Obs[0].Name, "init");
  EXPECT_EQ(Obs[1].Name, "ind:inc");
  EXPECT_EQ(Obs[2].Name, "safe");
  // All three must be unsat (the invariant is inductive and sufficient).
  for (const sys::Obligation &O : Obs) {
    std::unique_ptr<sharpie::smt::SmtSolver> Solver = sharpie::smt::makeZ3Solver(M);
    Solver->add(O.Psi);
    EXPECT_EQ(Solver->check(), sharpie::smt::SatResult::Unsat) << O.Name;
  }
}

TEST(System, ExternalCountersDeclareOmega) {
  TermManager M;
  ParamSystem S(M, "sys");
  Term N = S.addGlobal("n");
  EXPECT_TRUE(S.externalCounters().empty());
  S.setSizeVar(N);
  auto Ext = S.externalCounters();
  ASSERT_EQ(Ext.size(), 1u);
  EXPECT_EQ(Ext[0].first, N);
  EXPECT_EQ(Ext[0].second, M.mkTrue());
}

} // namespace
