//===- tests/explicit_test.cpp - Explicit-state checker tests ------------------===//
//
// Part of sharpie. The explicit checker must (1) prove small instances of
// every correct protocol safe, (2) produce concrete counterexample traces
// for every buggy variant, and (3) respect the synchronous round semantics
// of custom steppers.
//
//===----------------------------------------------------------------------===//

#include "explicit/Explicit.h"
#include "protocols/Protocols.h"

#include <gtest/gtest.h>

using namespace sharpie;
using namespace sharpie::protocols;

namespace {

void expectSafe(ProtocolBundle B) {
  explct::ExplicitResult R = explct::explore(*B.Sys, B.Explicit);
  EXPECT_TRUE(R.Safe) << B.Sys->name();
  EXPECT_GT(R.NumStates, 1u) << B.Sys->name();
}

void expectCex(ProtocolBundle B) {
  explct::ExplicitResult R = explct::explore(*B.Sys, B.Explicit);
  EXPECT_FALSE(R.Safe) << B.Sys->name();
  ASSERT_TRUE(R.Cex.has_value()) << B.Sys->name();
  EXPECT_FALSE(R.Cex->TransitionNames.empty()) << B.Sys->name();
}

TEST(Explicit, CorrectModelsAreSafe) {
  {
    logic::TermManager M;
    expectSafe(makeMax(M, true));
  }
  {
    logic::TermManager M;
    expectSafe(makeReaderWriter(M, true));
  }
  {
    logic::TermManager M;
    expectSafe(makeParentChild(M, true));
  }
  {
    logic::TermManager M;
    expectSafe(makeSimpBar(M, true));
  }
  {
    logic::TermManager M;
    expectSafe(makeDynBarrier(M, true));
  }
  {
    logic::TermManager M;
    expectSafe(makeAsMany(M, true));
  }
}

TEST(Explicit, BuggyVariantsHaveCounterexamples) {
  {
    logic::TermManager M;
    expectCex(makeMax(M, false));
  }
  {
    logic::TermManager M;
    expectCex(makeReaderWriter(M, false));
  }
  {
    logic::TermManager M;
    expectCex(makeParentChild(M, false));
  }
  {
    logic::TermManager M;
    expectCex(makeSimpBar(M, false));
  }
  {
    logic::TermManager M;
    expectCex(makeDynBarrier(M, false));
  }
  {
    logic::TermManager M;
    expectCex(makeAsMany(M, false));
  }
}

TEST(Explicit, BogusBakeryIsBuggyAndOthersAreNot) {
  {
    logic::TermManager M;
    expectSafe(makeSimplifiedBakery(M));
  }
  {
    logic::TermManager M;
    expectSafe(makeLamportBakery(M));
  }
  {
    logic::TermManager M;
    expectCex(makeBogusBakery(M));
  }
  {
    logic::TermManager M;
    expectSafe(makeTicketMutex(M));
  }
}

TEST(Explicit, SanchezModelsAreSafe) {
  {
    logic::TermManager M;
    expectSafe(makeBarrier(M));
  }
  {
    logic::TermManager M;
    expectSafe(makeCentralBarrier(M));
  }
  {
    logic::TermManager M;
    expectSafe(makeWorkStealing(M));
  }
  {
    logic::TermManager M;
    expectSafe(makeDiningPhilosophers(M));
  }
  {
    logic::TermManager M;
    expectSafe(makeRobot(M, 2, 2));
  }
  {
    logic::TermManager M;
    expectSafe(makeTreeTraverse(M));
  }
  {
    logic::TermManager M;
    expectSafe(makeGarbageCollection(M));
  }
}

TEST(Explicit, CexTraceReplaysToViolation) {
  // The counterexample trace of reader/writer-bug must be executable: its
  // length bounds the BFS depth of the violation.
  logic::TermManager M;
  ProtocolBundle B = makeReaderWriter(M, false);
  explct::ExplicitResult R = explct::explore(*B.Sys, B.Explicit);
  ASSERT_TRUE(R.Cex.has_value());
  // Reader acquires while a writer writes: at least two steps.
  EXPECT_GE(R.Cex->TransitionNames.size(), 2u);
  logic::Evaluator Ev(R.Cex->BadState);
  EXPECT_FALSE(Ev.evalBool(B.Sys->safe()));
}

TEST(Explicit, HoldsInAllDetectsViolations) {
  logic::TermManager M;
  ProtocolBundle B = makeCache(M);
  explct::ExplicitResult R = explct::explore(*B.Sys, B.Explicit);
  ASSERT_TRUE(R.Safe);
  // The property holds in all reachable states; its negation in none.
  EXPECT_TRUE(explct::holdsInAll(R.States, B.Sys->safe()));
  EXPECT_FALSE(explct::holdsInAll(R.States, M.mkNot(B.Sys->safe())));
}

} // namespace
