//===- tests/eval_test.cpp - Finite-model evaluator tests ----------------------===//
//
// Part of sharpie. The evaluator of logic/Eval.h is the reference
// semantics everything else is validated against, so it gets its own
// direct tests: cardinality counting, quantifier enumeration, array
// stores, and agreement with hand-computed values.
//
//===----------------------------------------------------------------------===//

#include "logic/Eval.h"
#include "logic/TermOps.h"

#include <gtest/gtest.h>

using namespace sharpie::logic;

namespace {

class EvalTest : public ::testing::Test {
protected:
  EvalTest() {
    Model.DomainSize = 4;
    Model.Scalars[A] = 7;
    Model.Arrays[F] = {1, 2, 2, 3};
  }

  TermManager M;
  Term A = M.mkVar("a", Sort::Int);
  Term F = M.mkVar("f", Sort::Array);
  Term T = M.mkVar("t", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);
  FiniteModel Model;
};

TEST_F(EvalTest, Arithmetic) {
  Evaluator Ev(Model);
  EXPECT_EQ(Ev.evalInt(M.mkAdd({A, M.mkInt(3), M.mkNeg(M.mkInt(2))})), 8);
  EXPECT_EQ(Ev.evalInt(M.mkMul(M.mkInt(3), A)), 21);
  EXPECT_EQ(Ev.evalInt(M.mkSub(A, M.mkInt(10))), -3);
  EXPECT_EQ(Ev.evalInt(M.mkIte(M.mkLe(A, M.mkInt(5)), M.mkInt(1),
                               M.mkInt(0))),
            0);
}

TEST_F(EvalTest, CardinalityCountsExactly) {
  Evaluator Ev(Model);
  EXPECT_EQ(Ev.evalInt(M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkInt(2)))), 2);
  EXPECT_EQ(Ev.evalInt(M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(1)))), 4);
  EXPECT_EQ(Ev.evalInt(M.mkCard(T, M.mkGe(M.mkRead(F, T), M.mkInt(9)))), 0);
  // Cardinality of the universal set is the domain size.
  EXPECT_EQ(Ev.evalInt(M.mkCard(T, M.mkTrue())), 4);
}

TEST_F(EvalTest, NestedCardinalityUnderQuantifier) {
  // forall u: #{t | f(t) = f(u)} >= 1 (every value occurs at least once).
  Evaluator Ev(Model);
  Term Inner = M.mkCard(T, M.mkEq(M.mkRead(F, T), M.mkRead(F, U)));
  EXPECT_TRUE(Ev.evalBool(M.mkForall({U}, M.mkGe(Inner, M.mkInt(1)))));
  EXPECT_FALSE(Ev.evalBool(M.mkForall({U}, M.mkGe(Inner, M.mkInt(2)))));
  // But some value occurs twice.
  EXPECT_TRUE(Ev.evalBool(M.mkExists({U}, M.mkGe(Inner, M.mkInt(2)))));
}

TEST_F(EvalTest, StoreSemantics) {
  Evaluator Ev(Model);
  Model.Scalars[T] = 1;
  Evaluator Ev2(Model);
  Term Stored = M.mkStore(F, T, M.mkInt(9));
  std::vector<int64_t> Expect{1, 9, 2, 3};
  EXPECT_EQ(Ev2.evalArray(Stored), Expect);
  // Reading back at the stored index folds at build time already.
  EXPECT_EQ(M.mkRead(Stored, T), M.mkInt(9));
}

TEST_F(EvalTest, QuantifierOverTidDomain) {
  Evaluator Ev(Model);
  EXPECT_TRUE(Ev.evalBool(
      M.mkForall({T}, M.mkGe(M.mkRead(F, T), M.mkInt(1)))));
  EXPECT_FALSE(Ev.evalBool(
      M.mkForall({T}, M.mkGe(M.mkRead(F, T), M.mkInt(2)))));
  EXPECT_TRUE(Ev.evalBool(
      M.mkExists({T}, M.mkEq(M.mkRead(F, T), M.mkInt(3)))));
}

TEST_F(EvalTest, IntQuantifierIsFlagged) {
  FiniteModel Mod = Model;
  Mod.IntBound = 3;
  Evaluator Ev(Mod);
  Term Q = M.mkVar("q", Sort::Int);
  EXPECT_TRUE(Ev.evalBool(M.mkForall(
      {Q}, M.mkImplies(M.mkGe(Q, M.mkInt(0)),
                       M.mkGe(M.mkAdd(Q, M.mkInt(1)), M.mkInt(1))))));
  EXPECT_TRUE(Ev.sawIntQuantifier());
}

TEST_F(EvalTest, MissingVariablesDefaultAndRecord) {
  Evaluator Ev(Model);
  Term Z = M.mkVar("zz", Sort::Int);
  EXPECT_EQ(Ev.evalInt(Z), 0);
  ASSERT_EQ(Ev.missing().size(), 1u);
  EXPECT_EQ(Ev.missing()[0], Z);
}

} // namespace
