//===- tests/serve_server_test.cpp - In-process server tests ------------------===//
//
// Part of sharpie. Drives serve::Server through its in-process API (no
// sockets, no subprocesses) -- the same methods the socket shell calls,
// so these tests pin the request semantics the wire exposes: cold
// verify, warm tier-1 hit with byte-identical output, chaos bypass,
// error surfaces, cooperative cancellation, and concurrent requests
// against one store (the TSan target).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "front/ExitCodes.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace sharpie;
using namespace sharpie::serve;

namespace {

const char *IncrementProtocol = R"(
protocol increment {
  global a;
  local pc;

  init: a == 0 && forall t. pc[t] == 1;
  safe: forall t. pc[t] >= 2 ==> a > 0;

  transition inc {
    guard: pc[self] == 1;
    a := a + 1;
    pc[self] := 2;
  }

  template {
    sets: 1;
  }

  check {
    threads: 3;
    start { pc := 1; }
  }

  property "(exists t: pc(t) >= 2) -> a > 0";
  expect safe;
}
)";

class ServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "sharpie_serve_" +
          std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string Cmd = "rm -rf '" + Dir + "'";
    ASSERT_EQ(0, std::system(Cmd.c_str()));
  }

  void TearDown() override {
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)std::system(Cmd.c_str());
  }

  ServerOptions options() {
    ServerOptions O;
    O.StoreDir = Dir;
    O.RequestWorkers = 2;
    O.SynthWorkers = 1;
    return O;
  }

  VerifyRequest request() {
    VerifyRequest R;
    R.ProtocolText = IncrementProtocol;
    R.File = "increment.sharpie";
    return R;
  }

  std::string Dir;
};

TEST_F(ServerTest, ColdVerifySolvesAndPopulatesTheStore) {
  Server Srv(options());
  VerifyResponse Resp = Srv.verify(request());
  EXPECT_EQ(front::ExitVerified, Resp.Exit);
  EXPECT_EQ("miss", Resp.Cache);
  EXPECT_EQ(32u, Resp.Hash.size());
  EXPECT_NE(std::string::npos, Resp.Output.find("== increment =="));
  EXPECT_NE(std::string::npos, Resp.Output.find("VERIFIED"));
  EXPECT_TRUE(Resp.Error.empty());
  StoreStats St = Srv.store().stats();
  EXPECT_EQ(1u, St.T1Writes);
  EXPECT_EQ(1u, St.T1Misses);
}

TEST_F(ServerTest, WarmVerifyReplaysTheIdenticalOutput) {
  Server Srv(options());
  VerifyResponse Cold = Srv.verify(request());
  ASSERT_EQ(front::ExitVerified, Cold.Exit);
  VerifyResponse Warm = Srv.verify(request());
  EXPECT_EQ(front::ExitVerified, Warm.Exit);
  EXPECT_EQ("hit", Warm.Cache);
  EXPECT_EQ(Cold.Hash, Warm.Hash);
  // The stored verdict is byte-exact, so without the timing-bearing JSON
  // line the warm output is the cold output.
  EXPECT_EQ(Cold.Output, Warm.Output);
}

TEST_F(ServerTest, WarmHitSurvivesAServerRestart) {
  {
    Server Srv(options());
    ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
  }
  Server Srv2(options()); // Fresh process stand-in: same store dir.
  VerifyResponse Warm = Srv2.verify(request());
  EXPECT_EQ(front::ExitVerified, Warm.Exit);
  EXPECT_EQ("hit", Warm.Cache);
}

TEST_F(ServerTest, ReformattedSourceStillHits) {
  Server Srv(options());
  ASSERT_EQ("miss", Srv.verify(request()).Cache);
  VerifyRequest R = request();
  R.ProtocolText =
      "// a comment the lexer erases\n" + R.ProtocolText + "\n\n";
  EXPECT_EQ("hit", Srv.verify(R).Cache);
}

TEST_F(ServerTest, JsonLineCarriesCacheLookupTiming) {
  Server Srv(options());
  VerifyRequest R = request();
  R.JsonLine = true;
  VerifyResponse Cold = Srv.verify(R);
  EXPECT_NE(std::string::npos, Cold.Output.find("\"cache_lookup_seconds\":"));
  VerifyResponse Warm = Srv.verify(R);
  EXPECT_EQ("hit", Warm.Cache);
  EXPECT_NE(std::string::npos, Warm.Output.find("\"cache_lookup_seconds\":"));
  EXPECT_NE(std::string::npos, Warm.Output.find("\"synth_seconds\":0.000"));
}

TEST_F(ServerTest, ParseErrorReturnsExitErrorWithDiagnostic) {
  Server Srv(options());
  VerifyRequest R = request();
  R.ProtocolText = "protocol broken {";
  VerifyResponse Resp = Srv.verify(R);
  EXPECT_EQ(front::ExitError, Resp.Exit);
  EXPECT_FALSE(Resp.Error.empty());
  EXPECT_TRUE(Resp.Hash.empty()); // No lowered problem, no identity.
  EXPECT_EQ(0u, Srv.store().stats().T1Writes);
}

TEST_F(ServerTest, BadFaultPlanReturnsExitError) {
  Server Srv(options());
  VerifyRequest R = request();
  R.Faults = "this is not a fault plan";
  VerifyResponse Resp = Srv.verify(R);
  EXPECT_EQ(front::ExitError, Resp.Exit);
  EXPECT_NE(std::string::npos, Resp.Error.find("bad fault plan"));
}

TEST_F(ServerTest, ChaosRequestsBypassTheCacheBothWays) {
  Server Srv(options());
  // Warm the cache first so a fault request *could* hit if it looked.
  ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
  VerifyRequest R = request();
  R.Faults = "seed=7;smt_check:timeout@p=0.3";
  VerifyResponse Resp = Srv.verify(R);
  EXPECT_EQ("off", Resp.Cache); // Never looked at tier 1.
  StoreStats St = Srv.store().stats();
  EXPECT_EQ(1u, St.T1Writes); // And never wrote, whatever the outcome.
  EXPECT_EQ(1u, St.T1Hits + St.T1Misses); // Only the warming run looked.
}

TEST_F(ServerTest, PreCancelledRequestIsInconclusiveNotWedged) {
  Server Srv(options());
  engine::CancellationToken Tok;
  Tok.cancel();
  VerifyResponse Resp = Srv.verify(request(), &Tok);
  EXPECT_EQ(front::ExitInconclusive, Resp.Exit);
  // A cancelled run must never publish its partial result.
  EXPECT_EQ(0u, Srv.store().stats().T1Writes);
}

TEST_F(ServerTest, HandleDispatchesAndRejectsUnknownOps) {
  Server Srv(options());
  Json Status = Srv.handle(parseJson("{\"op\":\"status\"}", nullptr));
  EXPECT_TRUE(Status.get("ok").asBool());
  EXPECT_TRUE(Status.get("store_enabled").asBool());
  EXPECT_EQ(2, Status.get("request_workers").asInt());

  Json Stats = Srv.handle(parseJson("{\"op\":\"cache_stats\"}", nullptr));
  EXPECT_TRUE(Stats.get("ok").asBool());
  EXPECT_EQ(0, Stats.get("t1_hits").asInt());

  Json Bad = Srv.handle(parseJson("{\"op\":\"frobnicate\"}", nullptr));
  EXPECT_FALSE(Bad.get("ok").asBool());
  EXPECT_NE(std::string::npos, Bad.get("error").asString().find("frobnicate"));

  Json Down = Srv.handle(parseJson("{\"op\":\"shutdown\"}", nullptr));
  EXPECT_TRUE(Down.get("ok").asBool());
  EXPECT_TRUE(Srv.shutdownRequested());
}

TEST_F(ServerTest, VerifyViaHandleRoundTripsTheWireEncoding) {
  Server Srv(options());
  VerifyRequest R = request();
  R.JsonLine = true;
  Json Wire = Srv.handle(R.encode());
  VerifyResponse Resp = VerifyResponse::decode(Wire);
  EXPECT_EQ(front::ExitVerified, Resp.Exit);
  EXPECT_NE(std::string::npos, Resp.Output.find("VERIFIED"));
  EXPECT_EQ("miss", Resp.Cache);
}

// -- Telemetry ---------------------------------------------------------------

TEST_F(ServerTest, MetricsLabelColdThenWarmRequests) {
  Server Srv(options());
  ASSERT_EQ("miss", Srv.verify(request()).Cache);
  ASSERT_EQ("hit", Srv.verify(request()).Cache);
  EXPECT_EQ(2u, Srv.registry().recorded());

  Json M = Srv.metricsJson();
  EXPECT_TRUE(M.get("ok").asBool());
  EXPECT_TRUE(M.get("telemetry").asBool());
  // The cold miss and the tier-1 replay land in distinct labeled cells.
  EXPECT_EQ(1, M.get("requests").get("verified").get("cold").asInt());
  EXPECT_EQ(1, M.get("requests").get("verified").get("t1_hit").asInt());
  EXPECT_EQ(0, M.get("requests").get("error").get("cold").asInt());
  EXPECT_GT(M.get("request_seconds").get("verified").get("cold").asDouble(),
            0.0);
  // Each request counted its own store-tier probe.
  EXPECT_EQ(1, M.get("counters").get("serve_t1_hits").asInt());
  EXPECT_EQ(1, M.get("counters").get("serve_t1_misses").asInt());
  // The cold solve sampled engine histograms into the registry.
  EXPECT_GE(M.get("hists").get("reduce_ms").get("count").asInt(), 1);
  EXPECT_GE(M.get("hists").get("formula_atoms").get("count").asInt(), 1);
  EXPECT_GE(M.get("hists").get("instantiations_per_check").get("count")
                .asInt(), 1);
  EXPECT_EQ(2.0, M.get("gauges").get("served_requests").asDouble());

  std::string P = Srv.metricsProm();
  EXPECT_NE(std::string::npos,
            P.find("sharpie_requests_total{outcome=\"verified\","
                   "cache_tier=\"cold\"} 1\n"));
  EXPECT_NE(std::string::npos,
            P.find("sharpie_requests_total{outcome=\"verified\","
                   "cache_tier=\"t1_hit\"} 1\n"));
  EXPECT_NE(std::string::npos,
            P.find("sharpie_ctr_serve_t1_hits_total 1\n"));
  EXPECT_NE(std::string::npos, P.find("# TYPE sharpie_hist_reduce_ms"
                                      " histogram\n"));
  EXPECT_NE(std::string::npos, P.find("# TYPE sharpie_served_requests"
                                      " gauge\n"));
}

TEST_F(ServerTest, MetricsOpSpeaksJsonAndPromOnTheWire) {
  Server Srv(options());
  ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);

  Json J = Srv.handle(parseJson("{\"op\":\"metrics\"}", nullptr));
  EXPECT_TRUE(J.get("ok").asBool());
  EXPECT_EQ(1, J.get("requests").get("verified").get("cold").asInt());

  Json P = Srv.handle(
      parseJson("{\"op\":\"metrics\",\"format\":\"prom\"}", nullptr));
  EXPECT_TRUE(P.get("ok").asBool());
  EXPECT_EQ("prom", P.get("format").asString());
  EXPECT_NE(std::string::npos,
            P.get("text").asString().find(
                "# TYPE sharpie_requests_total counter\n"));

  Json Bad = Srv.handle(
      parseJson("{\"op\":\"metrics\",\"format\":\"xml\"}", nullptr));
  EXPECT_FALSE(Bad.get("ok").asBool());
}

TEST_F(ServerTest, DumpTraceCoversNeverExplicitlyTracedRequests) {
  // No tracing was requested anywhere: the flight recorder alone must be
  // able to produce a loadable trace for a past request.
  Server Srv(options());
  ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
  EXPECT_EQ(1u, Srv.flight().retained());
  EXPECT_LE(Srv.flight().approxBytes(), Srv.flight().memoryCeilingBytes());

  Json D = Srv.handle(parseJson("{\"op\":\"dump_trace\"}", nullptr));
  EXPECT_TRUE(D.get("ok").asBool());
  EXPECT_EQ("perfetto", D.get("format").asString());
  EXPECT_EQ(1, D.get("matched").asInt());
  const std::string &Doc = D.get("trace").asString();
  std::string Err;
  Json T = parseJson(Doc, &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  ASSERT_TRUE(T.get("traceEvents").isArray());
  EXPECT_GT(T.get("traceEvents").asArray().size(), 4u);
  // The request's phase spans all made it into the document.
  for (const char *Phase :
       {"request", "parse", "hash_lookup", "synth", "render"})
    EXPECT_NE(std::string::npos,
              Doc.find("\"name\":\"" + std::string(Phase) + "\""))
        << Phase;

  Json L = Srv.dumpTraceJson(1, "jsonl");
  EXPECT_TRUE(L.get("ok").asBool());
  EXPECT_EQ(1, L.get("matched").asInt());
  EXPECT_NE(std::string::npos, L.get("trace").asString().find(
                                   "\"request\":1,"));
  EXPECT_EQ(0, Srv.dumpTraceJson(999).get("matched").asInt());
  EXPECT_FALSE(Srv.dumpTraceJson(0, "xml").get("ok").asBool());
}

TEST_F(ServerTest, AccessLogWritesOneParseableJsonLinePerRequest) {
  std::string LogPath = Dir + "_access.log";
  ::unlink(LogPath.c_str());
  ServerOptions O = options();
  O.AccessLogPath = LogPath;
  {
    Server Srv(O);
    ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
    ASSERT_EQ("hit", Srv.verify(request()).Cache);
  }
  std::ifstream In(LogPath);
  ASSERT_TRUE(In.good());
  std::vector<Json> Lines;
  std::string Line;
  while (std::getline(In, Line)) {
    std::string Err;
    Json J = parseJson(Line, &Err);
    ASSERT_TRUE(Err.empty()) << Err << " in: " << Line;
    Lines.push_back(J);
  }
  ::unlink(LogPath.c_str());
  ASSERT_EQ(2u, Lines.size());
  EXPECT_EQ("request", Lines[0].get("event").asString());
  EXPECT_EQ(1, Lines[0].get("id").asInt());
  EXPECT_EQ(2, Lines[1].get("id").asInt());
  EXPECT_EQ("verified", Lines[0].get("outcome").asString());
  EXPECT_EQ("cold", Lines[0].get("cache_tier").asString());
  EXPECT_EQ("t1_hit", Lines[1].get("cache_tier").asString());
  EXPECT_EQ(32u, Lines[0].get("hash").asString().size());
  EXPECT_EQ(Lines[0].get("hash").asString(),
            Lines[1].get("hash").asString());
  EXPECT_GT(Lines[0].get("server_seconds").asDouble(), 0.0);
  EXPECT_GE(Lines[0].get("workers").asInt(), 1);
  EXPECT_FALSE(Lines[0].get("slow").asBool());
}

TEST_F(ServerTest, WatchdogFlagsSlowRequestsAndStampsTheTrace) {
  ServerOptions O = options();
  O.SlowRequestSeconds = 0.0001; // Everything is slow at 100us.
  Server Srv(O);
  ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
  EXPECT_GE(Srv.slowRequests(), 1u);
  Json D = Srv.dumpTraceJson(1);
  ASSERT_TRUE(D.get("ok").asBool());
  EXPECT_NE(std::string::npos,
            D.get("trace").asString().find("slow_request"));
  EXPECT_GE(Srv.statusJson().get("slow_requests").asInt(), 1);
}

TEST_F(ServerTest, StatusCarriesCumulativeCountersAndTierTraffic) {
  Server Srv(options());
  ASSERT_EQ("miss", Srv.verify(request()).Cache);
  ASSERT_EQ("hit", Srv.verify(request()).Cache);
  Json S = Srv.statusJson();
  EXPECT_TRUE(S.get("telemetry").asBool());
  EXPECT_EQ(1, S.get("t1_hits").asInt());
  EXPECT_EQ(1, S.get("t1_misses").asInt());
  EXPECT_EQ(0, S.get("slow_requests").asInt());
  // The clean run retried/fell back/skipped nothing, but the cumulative
  // fields are present (distinguish 0 from absent).
  EXPECT_EQ(Json::Type::Int, S.get("ctr_retries").type());
  EXPECT_EQ(Json::Type::Int, S.get("ctr_fallbacks").type());
  EXPECT_EQ(Json::Type::Int, S.get("ctr_tuples_skipped").type());
  EXPECT_GE(S.get("t2_misses").asInt() + S.get("t2_hits").asInt(), 0);
}

TEST_F(ServerTest, NoTelemetryDisablesRegistryAndFlightRecorder) {
  ServerOptions O = options();
  O.Telemetry = false;
  Server Srv(O);
  ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
  EXPECT_EQ(0u, Srv.registry().recorded());
  EXPECT_EQ(0u, Srv.flight().retained());
  Json M = Srv.metricsJson();
  EXPECT_TRUE(M.get("ok").asBool());
  EXPECT_FALSE(M.get("telemetry").asBool());
  EXPECT_EQ(0, M.get("requests").get("verified").get("cold").asInt());
  EXPECT_FALSE(Srv.statusJson().get("telemetry").asBool());
}

TEST_F(ServerTest, ConcurrentRequestsMetricsScrapesAndDumpsAreSafe) {
  // The TSan companion to ConcurrentRequestsShareOneStoreSafely: verify
  // traffic racing metrics scrapes, trace dumps and the watchdog. Pins
  // the registry/flight/live-table locking the telemetry layer adds.
  ServerOptions O = options();
  O.SlowRequestSeconds = 0.001;
  Server Srv(O);
  std::vector<std::thread> Ts;
  std::atomic<int> Verified{0};
  for (int I = 0; I < 4; ++I)
    Ts.emplace_back([&, I] {
      VerifyRequest R = request();
      R.File = "req" + std::to_string(I) + ".sharpie";
      if (Srv.verify(R).Exit == front::ExitVerified)
        Verified.fetch_add(1);
      (void)Srv.metricsJson().dump();
      (void)Srv.metricsProm();
      (void)Srv.dumpTraceJson().dump();
      (void)Srv.statusJson().dump();
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(4, Verified.load());
  EXPECT_EQ(4u, Srv.registry().recorded());
  EXPECT_EQ(4u, Srv.flight().retained());
  EXPECT_LE(Srv.flight().approxBytes(), Srv.flight().memoryCeilingBytes());
}

TEST_F(ServerTest, ConcurrentRequestsShareOneStoreSafely) {
  // Four threads, one server, one store: mixed cold/warm traffic plus
  // status/cache_stats probes racing the solves. Run under TSan this
  // pins the locking of ResultStore, ReduceCache and the counters.
  Server Srv(options());
  std::vector<std::thread> Ts;
  std::atomic<int> Verified{0};
  for (int I = 0; I < 4; ++I)
    Ts.emplace_back([&, I] {
      VerifyRequest R = request();
      R.File = "req" + std::to_string(I) + ".sharpie";
      VerifyResponse Resp = Srv.verify(R);
      if (Resp.Exit == front::ExitVerified)
        Verified.fetch_add(1);
      (void)Srv.statusJson().dump();
      (void)Srv.cacheStatsJson().dump();
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(4, Verified.load());
  StoreStats St = Srv.store().stats();
  // Every request either hit or missed tier 1; post-race totals add up.
  EXPECT_EQ(4u, St.T1Hits + St.T1Misses);
  EXPECT_GE(St.T1Writes, 1u);
}

} // namespace
