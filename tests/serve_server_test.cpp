//===- tests/serve_server_test.cpp - In-process server tests ------------------===//
//
// Part of sharpie. Drives serve::Server through its in-process API (no
// sockets, no subprocesses) -- the same methods the socket shell calls,
// so these tests pin the request semantics the wire exposes: cold
// verify, warm tier-1 hit with byte-identical output, chaos bypass,
// error surfaces, cooperative cancellation, and concurrent requests
// against one store (the TSan target).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "front/ExitCodes.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace sharpie;
using namespace sharpie::serve;

namespace {

const char *IncrementProtocol = R"(
protocol increment {
  global a;
  local pc;

  init: a == 0 && forall t. pc[t] == 1;
  safe: forall t. pc[t] >= 2 ==> a > 0;

  transition inc {
    guard: pc[self] == 1;
    a := a + 1;
    pc[self] := 2;
  }

  template {
    sets: 1;
  }

  check {
    threads: 3;
    start { pc := 1; }
  }

  property "(exists t: pc(t) >= 2) -> a > 0";
  expect safe;
}
)";

class ServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "sharpie_serve_" +
          std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string Cmd = "rm -rf '" + Dir + "'";
    ASSERT_EQ(0, std::system(Cmd.c_str()));
  }

  void TearDown() override {
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)std::system(Cmd.c_str());
  }

  ServerOptions options() {
    ServerOptions O;
    O.StoreDir = Dir;
    O.RequestWorkers = 2;
    O.SynthWorkers = 1;
    return O;
  }

  VerifyRequest request() {
    VerifyRequest R;
    R.ProtocolText = IncrementProtocol;
    R.File = "increment.sharpie";
    return R;
  }

  std::string Dir;
};

TEST_F(ServerTest, ColdVerifySolvesAndPopulatesTheStore) {
  Server Srv(options());
  VerifyResponse Resp = Srv.verify(request());
  EXPECT_EQ(front::ExitVerified, Resp.Exit);
  EXPECT_EQ("miss", Resp.Cache);
  EXPECT_EQ(32u, Resp.Hash.size());
  EXPECT_NE(std::string::npos, Resp.Output.find("== increment =="));
  EXPECT_NE(std::string::npos, Resp.Output.find("VERIFIED"));
  EXPECT_TRUE(Resp.Error.empty());
  StoreStats St = Srv.store().stats();
  EXPECT_EQ(1u, St.T1Writes);
  EXPECT_EQ(1u, St.T1Misses);
}

TEST_F(ServerTest, WarmVerifyReplaysTheIdenticalOutput) {
  Server Srv(options());
  VerifyResponse Cold = Srv.verify(request());
  ASSERT_EQ(front::ExitVerified, Cold.Exit);
  VerifyResponse Warm = Srv.verify(request());
  EXPECT_EQ(front::ExitVerified, Warm.Exit);
  EXPECT_EQ("hit", Warm.Cache);
  EXPECT_EQ(Cold.Hash, Warm.Hash);
  // The stored verdict is byte-exact, so without the timing-bearing JSON
  // line the warm output is the cold output.
  EXPECT_EQ(Cold.Output, Warm.Output);
}

TEST_F(ServerTest, WarmHitSurvivesAServerRestart) {
  {
    Server Srv(options());
    ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
  }
  Server Srv2(options()); // Fresh process stand-in: same store dir.
  VerifyResponse Warm = Srv2.verify(request());
  EXPECT_EQ(front::ExitVerified, Warm.Exit);
  EXPECT_EQ("hit", Warm.Cache);
}

TEST_F(ServerTest, ReformattedSourceStillHits) {
  Server Srv(options());
  ASSERT_EQ("miss", Srv.verify(request()).Cache);
  VerifyRequest R = request();
  R.ProtocolText =
      "// a comment the lexer erases\n" + R.ProtocolText + "\n\n";
  EXPECT_EQ("hit", Srv.verify(R).Cache);
}

TEST_F(ServerTest, JsonLineCarriesCacheLookupTiming) {
  Server Srv(options());
  VerifyRequest R = request();
  R.JsonLine = true;
  VerifyResponse Cold = Srv.verify(R);
  EXPECT_NE(std::string::npos, Cold.Output.find("\"cache_lookup_seconds\":"));
  VerifyResponse Warm = Srv.verify(R);
  EXPECT_EQ("hit", Warm.Cache);
  EXPECT_NE(std::string::npos, Warm.Output.find("\"cache_lookup_seconds\":"));
  EXPECT_NE(std::string::npos, Warm.Output.find("\"synth_seconds\":0.000"));
}

TEST_F(ServerTest, ParseErrorReturnsExitErrorWithDiagnostic) {
  Server Srv(options());
  VerifyRequest R = request();
  R.ProtocolText = "protocol broken {";
  VerifyResponse Resp = Srv.verify(R);
  EXPECT_EQ(front::ExitError, Resp.Exit);
  EXPECT_FALSE(Resp.Error.empty());
  EXPECT_TRUE(Resp.Hash.empty()); // No lowered problem, no identity.
  EXPECT_EQ(0u, Srv.store().stats().T1Writes);
}

TEST_F(ServerTest, BadFaultPlanReturnsExitError) {
  Server Srv(options());
  VerifyRequest R = request();
  R.Faults = "this is not a fault plan";
  VerifyResponse Resp = Srv.verify(R);
  EXPECT_EQ(front::ExitError, Resp.Exit);
  EXPECT_NE(std::string::npos, Resp.Error.find("bad fault plan"));
}

TEST_F(ServerTest, ChaosRequestsBypassTheCacheBothWays) {
  Server Srv(options());
  // Warm the cache first so a fault request *could* hit if it looked.
  ASSERT_EQ(front::ExitVerified, Srv.verify(request()).Exit);
  VerifyRequest R = request();
  R.Faults = "seed=7;smt_check:timeout@p=0.3";
  VerifyResponse Resp = Srv.verify(R);
  EXPECT_EQ("off", Resp.Cache); // Never looked at tier 1.
  StoreStats St = Srv.store().stats();
  EXPECT_EQ(1u, St.T1Writes); // And never wrote, whatever the outcome.
  EXPECT_EQ(1u, St.T1Hits + St.T1Misses); // Only the warming run looked.
}

TEST_F(ServerTest, PreCancelledRequestIsInconclusiveNotWedged) {
  Server Srv(options());
  engine::CancellationToken Tok;
  Tok.cancel();
  VerifyResponse Resp = Srv.verify(request(), &Tok);
  EXPECT_EQ(front::ExitInconclusive, Resp.Exit);
  // A cancelled run must never publish its partial result.
  EXPECT_EQ(0u, Srv.store().stats().T1Writes);
}

TEST_F(ServerTest, HandleDispatchesAndRejectsUnknownOps) {
  Server Srv(options());
  Json Status = Srv.handle(parseJson("{\"op\":\"status\"}", nullptr));
  EXPECT_TRUE(Status.get("ok").asBool());
  EXPECT_TRUE(Status.get("store_enabled").asBool());
  EXPECT_EQ(2, Status.get("request_workers").asInt());

  Json Stats = Srv.handle(parseJson("{\"op\":\"cache_stats\"}", nullptr));
  EXPECT_TRUE(Stats.get("ok").asBool());
  EXPECT_EQ(0, Stats.get("t1_hits").asInt());

  Json Bad = Srv.handle(parseJson("{\"op\":\"frobnicate\"}", nullptr));
  EXPECT_FALSE(Bad.get("ok").asBool());
  EXPECT_NE(std::string::npos, Bad.get("error").asString().find("frobnicate"));

  Json Down = Srv.handle(parseJson("{\"op\":\"shutdown\"}", nullptr));
  EXPECT_TRUE(Down.get("ok").asBool());
  EXPECT_TRUE(Srv.shutdownRequested());
}

TEST_F(ServerTest, VerifyViaHandleRoundTripsTheWireEncoding) {
  Server Srv(options());
  VerifyRequest R = request();
  R.JsonLine = true;
  Json Wire = Srv.handle(R.encode());
  VerifyResponse Resp = VerifyResponse::decode(Wire);
  EXPECT_EQ(front::ExitVerified, Resp.Exit);
  EXPECT_NE(std::string::npos, Resp.Output.find("VERIFIED"));
  EXPECT_EQ("miss", Resp.Cache);
}

TEST_F(ServerTest, ConcurrentRequestsShareOneStoreSafely) {
  // Four threads, one server, one store: mixed cold/warm traffic plus
  // status/cache_stats probes racing the solves. Run under TSan this
  // pins the locking of ResultStore, ReduceCache and the counters.
  Server Srv(options());
  std::vector<std::thread> Ts;
  std::atomic<int> Verified{0};
  for (int I = 0; I < 4; ++I)
    Ts.emplace_back([&, I] {
      VerifyRequest R = request();
      R.File = "req" + std::to_string(I) + ".sharpie";
      VerifyResponse Resp = Srv.verify(R);
      if (Resp.Exit == front::ExitVerified)
        Verified.fetch_add(1);
      (void)Srv.statusJson().dump();
      (void)Srv.cacheStatsJson().dump();
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(4, Verified.load());
  StoreStats St = Srv.store().stats();
  // Every request either hit or missed tier 1; post-race totals add up.
  EXPECT_EQ(4u, St.T1Hits + St.T1Misses);
  EXPECT_GE(St.T1Writes, 1u);
}

} // namespace
