//===- tests/obs_trace_test.cpp - Tracing & trace-export tests ----------------===//
//
// Part of sharpie. Three layers of coverage for src/obs:
//
//   * unit tests of the Tracer/TraceBuffer primitives: rank-ordered
//     deterministic merge, counter running totals, histogram summaries,
//     level parsing, and the disabled (null-buffer / events-off) paths;
//   * a golden-trace test: the deterministic event skeleton of a full
//     serial `increment` synthesis run is pinned exactly against
//     tests/golden/increment_w1.trace (set SHARPIE_UPDATE_GOLDEN=1 to
//     regenerate after an intentional pipeline change);
//   * schema validation of the exported artifacts: the Chrome trace JSON
//     parses, has one named track per worker, balanced and well-nested
//     B/E spans per track, and monotone timestamps; the JSONL stream is
//     one valid object per line.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"
#include "obs/Obs.h"
#include "protocols/Protocols.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace sharpie;
using namespace sharpie::protocols;

namespace {

// -- Minimal JSON reader ---------------------------------------------------------------
//
// Just enough of a recursive-descent parser to structurally validate the
// exporters' output without adding a dependency. Numbers are kept as
// doubles, objects as ordered key/value vectors.

struct JsonValue {
  enum Type { Null, Bool, Number, String, Array, Object } T = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Fields;

  const JsonValue *field(const std::string &K) const {
    for (const auto &[Key, V] : Fields)
      if (Key == K)
        return &V;
    return nullptr;
  }
};

class JsonParser {
public:
  JsonParser(const std::string &S) : S(S) {}

  bool parse(JsonValue &Out) {
    bool Ok = value(Out);
    skipWs();
    return Ok && Pos == S.size();
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool lit(const char *L, JsonValue &V, JsonValue::Type T, bool B) {
    size_t N = std::string(L).size();
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    V.T = T;
    V.B = B;
    return true;
  }
  bool string(std::string &Out) {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        if (Pos + 1 >= S.size())
          return false;
        char E = S[Pos + 1];
        if (E == 'u') {
          if (Pos + 5 >= S.size())
            return false;
          Out += '?'; // Escaped control char; exact value irrelevant here.
          Pos += 6;
          continue;
        }
        static const std::string Simple = "\"\\/bfnrt";
        if (Simple.find(E) == std::string::npos)
          return false;
        Out += E == 'n' ? '\n' : E == 't' ? '\t' : E;
        Pos += 2;
        continue;
      }
      Out += S[Pos++];
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }
  bool value(JsonValue &V) {
    skipWs();
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == 'n')
      return lit("null", V, JsonValue::Null, false);
    if (C == 't')
      return lit("true", V, JsonValue::Bool, true);
    if (C == 'f')
      return lit("false", V, JsonValue::Bool, false);
    if (C == '"') {
      V.T = JsonValue::String;
      return string(V.Str);
    }
    if (C == '[') {
      ++Pos;
      V.T = JsonValue::Array;
      skipWs();
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        JsonValue E;
        if (!value(E))
          return false;
        V.Elems.push_back(std::move(E));
        skipWs();
        if (Pos < S.size() && S[Pos] == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      if (Pos >= S.size() || S[Pos] != ']')
        return false;
      ++Pos;
      return true;
    }
    if (C == '{') {
      ++Pos;
      V.T = JsonValue::Object;
      skipWs();
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipWs();
        std::string K;
        if (!string(K))
          return false;
        skipWs();
        if (Pos >= S.size() || S[Pos] != ':')
          return false;
        ++Pos;
        JsonValue E;
        if (!value(E))
          return false;
        V.Fields.emplace_back(std::move(K), std::move(E));
        skipWs();
        if (Pos < S.size() && S[Pos] == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      if (Pos >= S.size() || S[Pos] != '}')
        return false;
      ++Pos;
      return true;
    }
    // Number.
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return false;
    V.T = JsonValue::Number;
    V.Num = std::strtod(S.substr(Start, Pos - Start).c_str(), nullptr);
    return true;
  }

  const std::string &S;
  size_t Pos = 0;
};

/// Renders a FILE*-writing exporter into a string via a temp file (the
/// exporters take FILE* so the CLI can stream; tests want strings).
template <typename Writer> std::string renderToString(Writer &&W) {
  std::FILE *F = std::tmpfile();
  EXPECT_NE(F, nullptr);
  W(F);
  long N = std::ftell(F);
  std::rewind(F);
  std::string Out(static_cast<size_t>(N), '\0');
  size_t Read = std::fread(Out.data(), 1, Out.size(), F);
  Out.resize(Read);
  std::fclose(F);
  return Out;
}

/// A full serial synthesis run of `increment` observed by \p T.
void runIncrement(obs::Tracer &T) {
  logic::TermManager M;
  ProtocolBundle B = makeIncrement(M);
  synth::SynthOptions Opts;
  Opts.Shape = B.Shape;
  Opts.QGuard = B.QGuard;
  Opts.Explicit = B.Explicit;
  Opts.NumWorkers = 1;
  Opts.Trace = &T;
  synth::SynthResult R = synth::synthesize(*B.Sys, Opts);
  ASSERT_TRUE(R.Verified) << R.Note;
}

// -- Tracer primitives -----------------------------------------------------------------

TEST(ObsTracer, MergeOrdersByRankThenEmission) {
  obs::TracerConfig Cfg;
  Cfg.CollectEvents = true;
  obs::Tracer T(Cfg);
  // Register and emit out of rank order; the merge must not care.
  obs::TraceBuffer *W2 = T.worker(2);
  obs::TraceBuffer *W0 = T.worker(0);
  W2->begin("b");
  W0->begin("a");
  W2->end("b");
  W0->end("a");
  std::vector<std::string> Lines = obs::eventSkeleton(T);
  std::vector<std::string> Want = {"B w0 a", "E w0 a", "B w2 b", "E w2 b"};
  EXPECT_EQ(Lines, Want);
}

TEST(ObsTracer, CounterEventsCarryRunningTotal) {
  obs::TracerConfig Cfg;
  Cfg.CollectEvents = true;
  obs::Tracer T(Cfg);
  obs::TraceBuffer *B = T.worker(0);
  B->counter("n", 2);
  B->counter("n", 3);
  std::vector<std::string> Lines = obs::eventSkeleton(T);
  std::vector<std::string> Want = {"C w0 n = 2", "C w0 n = 5"};
  EXPECT_EQ(Lines, Want);
  const int64_t *Total = T.metrics().counter("n");
  ASSERT_NE(Total, nullptr);
  EXPECT_EQ(*Total, 5);
}

TEST(ObsTracer, MetricsMergeAcrossWorkers) {
  obs::Tracer T;
  T.worker(0)->counter("n", 1);
  T.worker(3)->counter("n", 4);
  T.worker(0)->sample("ms", 1.0);
  T.worker(3)->sample("ms", 3.0);
  obs::MetricsSummary S = T.metrics();
  const int64_t *N = S.counter("n");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(*N, 5);
  const obs::HistSummary *H = S.hist("ms");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Count, 2u);
  EXPECT_DOUBLE_EQ(H->Min, 1.0);
  EXPECT_DOUBLE_EQ(H->Max, 3.0);
  EXPECT_DOUBLE_EQ(H->mean(), 2.0);
}

TEST(ObsTracer, SamplesStayOutOfTheEventStream) {
  obs::TracerConfig Cfg;
  Cfg.CollectEvents = true;
  obs::Tracer T(Cfg);
  T.worker(0)->sample("ms", 42.0);
  EXPECT_TRUE(T.mergedEvents().empty());
  EXPECT_NE(T.metrics().hist("ms"), nullptr);
}

TEST(ObsTracer, EventsOffBuffersNothingButMetricsRemain) {
  obs::Tracer T; // CollectEvents defaults to false.
  obs::TraceBuffer *B = T.worker(0);
  EXPECT_FALSE(B->eventsEnabled());
  {
    obs::Span Sp(B, "work", [] {
      ADD_FAILURE() << "lazy detail must not render with events off";
      return std::string();
    });
    B->counter("n", 1);
  }
  EXPECT_TRUE(T.mergedEvents().empty());
  const int64_t *N = T.metrics().counter("n");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(*N, 1);
}

TEST(ObsTracer, NullBufferSpanAndLogAreNoOps) {
  obs::TraceBuffer *B = nullptr;
  {
    obs::Span Sp(B, "nothing", [] {
      ADD_FAILURE() << "lazy detail must not render on a null buffer";
      return std::string();
    });
  }
  SHARPIE_LOGF(B, obs::LogLevel::Info, "unreachable %d", 1);
}

TEST(ObsTracer, ParseLogLevel) {
  EXPECT_EQ(obs::parseLogLevel("quiet"), obs::LogLevel::Quiet);
  EXPECT_EQ(obs::parseLogLevel("info"), obs::LogLevel::Info);
  EXPECT_EQ(obs::parseLogLevel("debug"), obs::LogLevel::Debug);
  EXPECT_EQ(obs::parseLogLevel("trace"), obs::LogLevel::Trace);
  EXPECT_FALSE(obs::parseLogLevel("verbose").has_value());
  EXPECT_FALSE(obs::parseLogLevel("").has_value());
}

TEST(ObsTracer, LogLevelGatesTheSink) {
  std::string Out = renderToString([](std::FILE *F) {
    obs::TracerConfig Cfg;
    Cfg.Level = obs::LogLevel::Info;
    Cfg.LogStream = F;
    obs::Tracer T(Cfg);
    obs::TraceBuffer *B = T.worker(7);
    EXPECT_TRUE(B->logEnabled(obs::LogLevel::Info));
    EXPECT_FALSE(B->logEnabled(obs::LogLevel::Debug));
    B->logf(obs::LogLevel::Info, "hello %s", "world");
    SHARPIE_LOGF(B, obs::LogLevel::Debug, "filtered out");
  });
  EXPECT_EQ(Out, "[I w7] hello world\n");
}

// -- Golden trace ----------------------------------------------------------------------

// The serial increment run's deterministic skeleton, pinned exactly. The
// skeleton excludes timestamps and histogram samples by construction, so
// any diff here is a real pipeline change (event added/removed/reordered,
// counter total changed) -- regenerate with SHARPIE_UPDATE_GOLDEN=1 and
// review the diff like source.
TEST(ObsGolden, IncrementSerialSkeleton) {
  obs::TracerConfig Cfg;
  Cfg.CollectEvents = true;
  obs::Tracer T(Cfg);
  runIncrement(T);
  std::vector<std::string> Lines = obs::eventSkeleton(T);
  ASSERT_FALSE(Lines.empty());

  std::string Path = std::string(SHARPIE_REPO_ROOT) +
                     "/tests/golden/increment_w1.trace";
  if (std::getenv("SHARPIE_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    for (const std::string &L : Lines)
      Out << L << "\n";
    GTEST_SKIP() << "golden file regenerated: " << Path;
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with SHARPIE_UPDATE_GOLDEN=1)";
  std::vector<std::string> Want;
  for (std::string L; std::getline(In, L);)
    Want.push_back(L);

  ASSERT_EQ(Lines.size(), Want.size())
      << "event count changed: got " << Lines.size() << ", golden has "
      << Want.size();
  for (size_t I = 0; I < Lines.size(); ++I)
    ASSERT_EQ(Lines[I], Want[I]) << "first divergence at event " << I;
}

// Two serial runs produce byte-identical skeletons (the determinism the
// golden test relies on, checked directly so a golden failure can be told
// apart from plain nondeterminism).
TEST(ObsGolden, SerialSkeletonIsReproducible) {
  auto Skeleton = [] {
    obs::TracerConfig Cfg;
    Cfg.CollectEvents = true;
    obs::Tracer T(Cfg);
    runIncrement(T);
    return obs::eventSkeleton(T);
  };
  EXPECT_EQ(Skeleton(), Skeleton());
}

// The incremental Houdini path's observability contract: the counters and
// the assumption-check histogram it feeds must survive a full run. These
// are the fields the bench tooling (tools/sweep.sh --bench-pr10) keys on,
// so a rename or a dropped emission fails here instead of producing a
// silently empty benchmark column.
TEST(ObsGolden, IncrementalRunEmitsCoreDropAndAssumeMetrics) {
  obs::TracerConfig Cfg;
  Cfg.CollectEvents = true;
  obs::Tracer T(Cfg);
  runIncrement(T);
  obs::MetricsSummary S = T.metrics();

  // Emitted even when zero (run() flushes a zero delta) so consumers can
  // tell "feature off" from "field renamed".
  for (const char *C :
       {"core_drops", "solver_context_reuses", "axioms_lazy_deferred",
        "refine_full_groundings", "refine_instances_asserted",
        "refine_budget_exhausted", "quant_instances_filtered",
        "manifest_instances"}) {
    const int64_t *V = S.counter(C);
    ASSERT_NE(V, nullptr) << "missing counter " << C;
    EXPECT_GE(*V, 0) << C;
  }
  // The merged per-tuple context runs every Houdini iteration as one
  // checkAssuming; on increment that must both reuse the context and
  // convert at least one unsat core into a free minimize pass.
  EXPECT_GT(*S.counter("solver_context_reuses"), 0);
  EXPECT_GT(*S.counter("core_drops"), 0);

  const obs::HistSummary *Assume = S.hist("smt_ms.assume");
  ASSERT_NE(Assume, nullptr) << "missing smt_ms.assume histogram";
  EXPECT_GT(Assume->Count, 0u);
  const obs::HistSummary *Houdini = S.hist("smt_ms.houdini");
  ASSERT_NE(Houdini, nullptr) << "missing smt_ms.houdini histogram";
  // Every Houdini-phase check is assumption-based, so the phase histogram
  // can never outgrow the assume histogram.
  EXPECT_LE(Houdini->Count, Assume->Count);
}

// -- Exported artifact schemas ---------------------------------------------------------

class ObsExportTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::TracerConfig Cfg;
    Cfg.CollectEvents = true;
    T = std::make_unique<obs::Tracer>(Cfg);
    runIncrement(*T);
  }
  std::unique_ptr<obs::Tracer> T;
};

TEST_F(ObsExportTest, ChromeTraceSchema) {
  std::string Doc = renderToString(
      [&](std::FILE *F) { obs::writeChromeTrace(*T, F); });
  JsonValue Root;
  ASSERT_TRUE(JsonParser(Doc).parse(Root)) << "trace JSON does not parse";
  ASSERT_EQ(Root.T, JsonValue::Object);
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->T, JsonValue::Array);
  ASSERT_FALSE(Events->Elems.empty());

  std::map<double, std::vector<std::string>> OpenSpans; // tid -> name stack
  std::map<double, double> LastTs;
  std::set<double> NamedTracks;
  for (const JsonValue &E : Events->Elems) {
    ASSERT_EQ(E.T, JsonValue::Object);
    const JsonValue *Ph = E.field("ph");
    const JsonValue *Pid = E.field("pid");
    const JsonValue *Tid = E.field("tid");
    const JsonValue *Name = E.field("name");
    ASSERT_NE(Ph, nullptr);
    ASSERT_NE(Pid, nullptr);
    ASSERT_NE(Tid, nullptr);
    ASSERT_NE(Name, nullptr);
    EXPECT_EQ(Pid->Num, 1.0);
    ASSERT_EQ(Ph->T, JsonValue::String);
    ASSERT_EQ(Ph->Str.size(), 1u);
    char P = Ph->Str[0];
    ASSERT_TRUE(P == 'B' || P == 'E' || P == 'C' || P == 'i' || P == 'M')
        << "unexpected phase " << Ph->Str;
    if (P == 'M') {
      EXPECT_EQ(Name->Str, "thread_name");
      NamedTracks.insert(Tid->Num);
      continue;
    }
    const JsonValue *Ts = E.field("ts");
    ASSERT_NE(Ts, nullptr);
    EXPECT_GE(Ts->Num, 0.0);
    // Timestamps are nondecreasing per track (each worker's buffer is in
    // emission order).
    auto It = LastTs.find(Tid->Num);
    if (It != LastTs.end())
      EXPECT_GE(Ts->Num, It->second) << "ts regressed on tid " << Tid->Num;
    LastTs[Tid->Num] = Ts->Num;
    if (P == 'B')
      OpenSpans[Tid->Num].push_back(Name->Str);
    else if (P == 'E') {
      // Stack discipline: E closes the innermost open B of the same name.
      ASSERT_FALSE(OpenSpans[Tid->Num].empty())
          << "E without B on tid " << Tid->Num;
      EXPECT_EQ(OpenSpans[Tid->Num].back(), Name->Str);
      OpenSpans[Tid->Num].pop_back();
    } else if (P == 'C') {
      const JsonValue *Args = E.field("args");
      ASSERT_NE(Args, nullptr);
      EXPECT_NE(Args->field("value"), nullptr);
    }
  }
  for (const auto &[Tid, Stack] : OpenSpans)
    EXPECT_TRUE(Stack.empty()) << "unbalanced spans on tid " << Tid;
  for (const auto &[Tid, Unused] : LastTs)
    EXPECT_TRUE(NamedTracks.count(Tid))
        << "tid " << Tid << " has no thread_name metadata";

  // The serial pipeline's signature nesting made it into the trace.
  EXPECT_NE(Doc.find("\"synthesize\""), std::string::npos);
  EXPECT_NE(Doc.find("\"tuple\""), std::string::npos);
  EXPECT_NE(Doc.find("\"houdini_iter\""), std::string::npos);
  EXPECT_NE(Doc.find("\"smt_check\""), std::string::npos);
}

TEST_F(ObsExportTest, JsonlOneValidObjectPerLine) {
  std::string Doc =
      renderToString([&](std::FILE *F) { obs::writeJsonl(*T, F); });
  std::istringstream In(Doc);
  size_t N = 0;
  for (std::string Line; std::getline(In, Line); ++N) {
    JsonValue V;
    ASSERT_TRUE(JsonParser(Line).parse(V)) << "line " << N << ": " << Line;
    ASSERT_EQ(V.T, JsonValue::Object) << "line " << N;
    for (const char *K : {"kind", "worker", "name", "ts_us"})
      EXPECT_NE(V.field(K), nullptr) << "line " << N << " lacks " << K;
  }
  EXPECT_EQ(N, T->mergedEvents().size());
}

} // namespace
