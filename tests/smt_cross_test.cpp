//===- tests/smt_cross_test.cpp - MiniSolver vs. Z3 cross-validation -----------===//
//
// Part of sharpie. The from-scratch MiniSolver and the Z3 back end must
// agree on every formula in the MiniSolver's fragment. Random ground
// formulas over linear integer arithmetic, booleans and array reads are
// generated; whenever MiniSolver answers Sat/Unsat, Z3's answer must
// match, and Sat answers must come with a model that evaluates the
// formula to true.
//
//===----------------------------------------------------------------------===//

#include "logic/TermOps.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>
#include <random>

using namespace sharpie;
using namespace sharpie::logic;
using smt::SatResult;

namespace {

class FormulaGen {
public:
  FormulaGen(TermManager &M, unsigned Seed) : M(M), Rng(Seed * 2654435761u) {
    for (int I = 0; I < 4; ++I)
      Vars.push_back(M.mkVar("cv" + std::to_string(I), Sort::Int));
    for (int I = 0; I < 2; ++I)
      Tids.push_back(M.mkVar("ct" + std::to_string(I), Sort::Tid));
    Arr = M.mkVar("carr", Sort::Array);
  }

  Term intTerm(int Depth) {
    switch (pick(Depth > 0 ? 5 : 2)) {
    case 0:
      return Vars[pick(Vars.size())];
    case 1:
      return M.mkInt(static_cast<int64_t>(pick(9)) - 4);
    case 2:
      return M.mkAdd(intTerm(Depth - 1), intTerm(Depth - 1));
    case 3:
      return M.mkSub(intTerm(Depth - 1), intTerm(Depth - 1));
    default:
      return M.mkRead(Arr, Tids[pick(Tids.size())]);
    }
  }

  Term atom(int Depth) {
    Term A = intTerm(Depth), B = intTerm(Depth);
    switch (pick(3)) {
    case 0:
      return M.mkLe(A, B);
    case 1:
      return M.mkLt(A, B);
    default:
      return M.mkEq(A, B);
    }
  }

  Term formula(int Depth) {
    if (Depth == 0)
      return atom(1);
    switch (pick(5)) {
    case 0:
      return M.mkAnd(formula(Depth - 1), formula(Depth - 1));
    case 1:
      return M.mkOr(formula(Depth - 1), formula(Depth - 1));
    case 2:
      return M.mkNot(formula(Depth - 1));
    case 3:
      return M.mkImplies(formula(Depth - 1), formula(Depth - 1));
    default:
      return atom(1);
    }
  }

private:
  unsigned pick(size_t N) { return Rng() % static_cast<unsigned>(N); }

  TermManager &M;
  std::mt19937 Rng;
  std::vector<Term> Vars, Tids;
  Term Arr;
};

class SmtCrossTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SmtCrossTest, MiniSolverAgreesWithZ3) {
  TermManager M;
  FormulaGen Gen(M, GetParam());
  Term F = Gen.formula(3);

  std::unique_ptr<smt::SmtSolver> Mini = smt::makeMiniSolver(M);
  Mini->add(F);
  SatResult RM = Mini->check();
  if (RM == SatResult::Unknown)
    GTEST_SKIP() << "outside MiniSolver fragment";

  std::unique_ptr<smt::SmtSolver> Z3 = smt::makeZ3Solver(M);
  Z3->add(F);
  SatResult RZ = Z3->check();
  ASSERT_NE(RZ, SatResult::Unknown);
  EXPECT_EQ(RM, RZ) << "disagree on " << toString(F);

  if (RM == SatResult::Sat) {
    std::unique_ptr<smt::SmtModel> Model = Mini->model();
    ASSERT_NE(Model, nullptr);
    std::optional<bool> V = Model->evalBool(F);
    if (V.has_value())
      EXPECT_TRUE(*V) << "MiniSolver model does not satisfy " << toString(F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtCrossTest, ::testing::Range(0u, 200u));

TEST(SmtCross, StoreEquationsAtTopLevel) {
  TermManager M;
  Term F = M.mkVar("f", Sort::Array);
  Term G = M.mkVar("g", Sort::Array);
  Term J = M.mkVar("j", Sort::Tid);
  Term U = M.mkVar("u", Sort::Tid);
  // g = f[j <- 7] /\ g(u) = 3 /\ f(u) = 3 is sat (u != j);
  // adding u = j makes it unsat.
  Term Base = M.mkAnd({M.mkEq(G, M.mkStore(F, J, M.mkInt(7))),
                       M.mkEq(M.mkRead(G, U), M.mkInt(3)),
                       M.mkEq(M.mkRead(F, U), M.mkInt(3))});
  std::unique_ptr<smt::SmtSolver> S1 = smt::makeMiniSolver(M);
  S1->add(Base);
  EXPECT_EQ(S1->check(), SatResult::Sat);
  std::unique_ptr<smt::SmtSolver> S2 = smt::makeMiniSolver(M);
  S2->add(M.mkAnd(Base, M.mkEq(U, J)));
  EXPECT_EQ(S2->check(), SatResult::Unsat);
}

TEST(SmtCross, AckermannCongruence) {
  TermManager M;
  Term F = M.mkVar("f", Sort::Array);
  Term T1 = M.mkVar("t1", Sort::Tid);
  Term T2 = M.mkVar("t2", Sort::Tid);
  // t1 = t2 /\ f(t1) != f(t2) is unsat.
  Term Phi = M.mkAnd(M.mkEq(T1, T2),
                     M.mkNe(M.mkRead(F, T1), M.mkRead(F, T2)));
  std::unique_ptr<smt::SmtSolver> S = smt::makeMiniSolver(M);
  S->add(Phi);
  EXPECT_EQ(S->check(), SatResult::Unsat);
}

TEST(SmtCross, PushPopScoping) {
  TermManager M;
  Term X = M.mkVar("x", Sort::Int);
  std::unique_ptr<smt::SmtSolver> S = smt::makeMiniSolver(M);
  S->add(M.mkGe(X, M.mkInt(5)));
  EXPECT_EQ(S->check(), SatResult::Sat);
  S->push();
  S->add(M.mkLe(X, M.mkInt(3)));
  EXPECT_EQ(S->check(), SatResult::Unsat);
  S->pop();
  EXPECT_EQ(S->check(), SatResult::Sat);
}

} // namespace
